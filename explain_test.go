package rjoin

import (
	"hash/fnv"
	"strings"
	"testing"

	"rjoin/internal/agg"
	"rjoin/internal/refeval"
	"rjoin/internal/relation"
	"rjoin/internal/sqlparse"
)

// pubRec remembers one published tuple so tests can reconstruct it from
// a lineage step: the engine's publish sequence is global, 1-based, and
// assigned in call order, so pubs[seq-1] is the tuple with PubSeq seq.
type pubRec struct {
	rel  string
	vals []int
	at   int64 // virtual publish time (the network is drained, so Now() is it)
	seq  int64
}

// recorder wraps a network so every publication is remembered alongside
// its engine-assigned sequence number.
type recorder struct {
	net  *Network
	pubs []pubRec
}

func (r *recorder) publish(rel string, vals ...int) {
	args := make([]interface{}, len(vals))
	for i, v := range vals {
		args[i] = v
	}
	r.net.MustPublish(rel, args...)
	r.pubs = append(r.pubs, pubRec{rel: rel, vals: vals, at: r.net.Now(), seq: int64(len(r.pubs) + 1)})
}

// tupleOf reconstructs the published tuple a lineage step names,
// including the publication time and sequence the window and epoch
// rules key on.
func (r *recorder) tupleOf(t *testing.T, seq int64) *relation.Tuple {
	t.Helper()
	if seq < 1 || seq > int64(len(r.pubs)) {
		t.Fatalf("lineage names publish seq %d outside [1, %d]", seq, len(r.pubs))
	}
	rec := r.pubs[seq-1]
	s, ok := r.net.cat.Schema(rec.rel)
	if !ok {
		t.Fatalf("unknown relation %s", rec.rel)
	}
	vals := make([]relation.Value, len(rec.vals))
	for i, v := range rec.vals {
		vals[i] = Int(int64(v))
	}
	tp, err := relation.NewTuple(s, vals...)
	if err != nil {
		t.Fatal(err)
	}
	tp.PubTime = rec.at
	tp.PubSeq = rec.seq
	return tp
}

// lineageTuples dedups a row's lineage into the base tuples it names
// (consumption order can visit a tuple once per rewrite hop chain; the
// base multiset is what the reference evaluator wants).
func (r *recorder) lineageTuples(t *testing.T, lin []LineageStep) []*relation.Tuple {
	t.Helper()
	seen := make(map[int64]bool)
	var tuples []*relation.Tuple
	for _, st := range lin {
		if seen[st.Seq] {
			continue
		}
		seen[st.Seq] = true
		tuples = append(tuples, r.tupleOf(t, st.Seq))
	}
	return tuples
}

// certifyAnswers replays every answer row's lineage through the
// centralized reference evaluator: feeding exactly the base tuples the
// lineage names back into the subscriber's own query must reproduce the
// delivered row. strict additionally requires the lineage to name
// exactly one base tuple per FROM relation and the replay to produce
// exactly one row — the plain-join shape; sharing fan-out and
// containment replays may legitimately carry wider lineage.
func certifyAnswers(t *testing.T, rec *recorder, sub *Subscription, strict bool) {
	t.Helper()
	q, err := sqlparse.Parse(sub.SQL, rec.net.cat)
	if err != nil {
		t.Fatal(err)
	}
	answers := sub.Answers()
	if len(answers) == 0 {
		t.Fatalf("%s: no answers to certify", sub.SQL)
	}
	for i, a := range answers {
		if len(a.Lineage) == 0 {
			t.Fatalf("%s: answer %d has no lineage", sub.SQL, i)
		}
		tuples := rec.lineageTuples(t, a.Lineage)
		rows := refeval.Evaluate(q, tuples)
		if strict {
			if len(tuples) != len(q.Relations) {
				t.Fatalf("%s: answer %d lineage names %d base tuples, want one per relation (%d)",
					sub.SQL, i, len(tuples), len(q.Relations))
			}
			if len(rows) != 1 {
				t.Fatalf("%s: answer %d lineage replay produced %d rows, want exactly 1", sub.SQL, i, len(rows))
			}
		}
		want := refeval.Row(a.Row).Key()
		found := false
		for _, row := range rows {
			if row.Key() == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s: answer %d %v not reproduced by replaying its lineage %v (replay gave %d rows)",
				sub.SQL, i, a.Row, a.Lineage, len(rows))
		}
	}
}

// explainWorkload drives a fixed-seed fully-drained mixed workload —
// plain, 3-way, DISTINCT, value-selection and grouped-aggregate
// queries — with the profiler and provenance on, and digests every
// subscription's EXPLAIN ANALYZE text. Full drains after every publish
// keep the event timeline schedule-independent, so the digest is a
// worker-count invariant (the same argument that pins config 0's
// parallel Stats to the serial golden values).
func explainWorkload(opts Options) (uint64, []*ExplainReport) {
	opts.Profile = &ProfileOptions{SampleInterval: 32}
	opts.Provenance = true
	net := MustNetwork(opts)
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	net.MustDefineRelation("T", "A", "B")

	subs := []*Subscription{
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A"),
		net.MustSubscribe("select R.B, T.B from R,S,T where R.A=S.A and S.B=T.B"),
		net.MustSubscribe("select distinct S.B from R,S where R.A=S.A"),
		net.MustSubscribe("select S.B from S where 3=S.A"),
		net.MustSubscribe("select R.A, count(*), sum(S.B) from R,S where R.A=S.A group by R.A"),
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A within 64 ticks tumbling"),
	}
	net.Run()
	skew := []int{0, 0, 0, 1, 1, 2, 3, 4}
	for i := 0; i < 32; i++ {
		net.MustPublish("R", skew[i%8], i)
		net.MustPublish("S", skew[(i+1)%8], i%6)
		if i%3 == 0 {
			net.MustPublish("T", skew[i%8], (i+2)%6)
		}
		net.Run()
	}

	h := fnv.New64a()
	reports := make([]*ExplainReport, len(subs))
	for i, s := range subs {
		rep, err := s.Explain()
		if err != nil {
			panic(err)
		}
		reports[i] = rep
		h.Write([]byte(rep.Text()))
	}
	return h.Sum64(), reports
}

// TestExplainDigestWorkerInvariant pins the introspection layer's
// determinism contract: on a fully-drained golden workload the digest
// over every subscription's EXPLAIN ANALYZE text — placements, observed
// counters, selectivities, state series, delivery totals — is
// bit-identical across Workers ∈ {1, 2, 4, 8} and matches the pinned
// baseline. Profiler attribution runs on per-shard cells merged at
// barriers; any scheduling dependence would move this digest.
func TestExplainDigestWorkerInvariant(t *testing.T) {
	const goldenExplain = uint64(0x663694b3c732d5ce)
	var pinned uint64
	for wi, w := range []int{1, 2, 4, 8} {
		d, reports := explainWorkload(Options{Nodes: 96, Seed: 42, Workers: w})
		for _, rep := range reports {
			if !rep.Profiled || !rep.Provenance {
				t.Fatalf("workers %d: report %s does not reflect enabled introspection", w, rep.Query)
			}
		}
		if wi == 0 {
			pinned = d
			if d != goldenExplain {
				t.Fatalf("explain digest %#016x drifted from golden %#016x", d, goldenExplain)
			}
			continue
		}
		if d != pinned {
			t.Fatalf("workers %d: explain digest %#016x != workers 1 digest %#016x", w, d, pinned)
		}
	}
}

// TestExplainReportShape sanity-checks the structured report on the
// golden workload: static placements cover every candidate in clause
// order, the profiled counters join up with delivery totals, and the
// state series is a running (non-negative at the tail) footprint.
func TestExplainReportShape(t *testing.T) {
	_, reports := explainWorkload(Options{Nodes: 96, Seed: 42})
	plain := reports[0] // select R.B, S.B from R,S where R.A=S.A
	if plain.Answers == 0 {
		t.Fatal("plain query delivered no answers")
	}
	if len(plain.Placements) < 2 {
		t.Fatalf("plain 2-way join should occupy at least its two attribute keys: %+v", plain.Placements)
	}
	wantClause := 0
	var arrivals, completions int64
	for _, pl := range plain.Placements {
		if pl.Clause >= 0 {
			if pl.Clause != wantClause {
				t.Fatalf("static placements out of clause order: %+v", plain.Placements)
			}
			wantClause++
			if pl.Level != "attribute" && pl.Level != "value" {
				t.Fatalf("static placement level %q", pl.Level)
			}
		}
		arrivals += pl.Arrivals
		completions += pl.Completions
	}
	if arrivals == 0 || completions == 0 {
		t.Fatalf("profiled counters empty: arrivals=%d completions=%d", arrivals, completions)
	}
	if len(plain.Series) == 0 {
		t.Fatal("no state-footprint series for an active pipeline")
	}
	if tail := plain.Series[len(plain.Series)-1].Bytes; tail < 0 {
		t.Fatalf("state footprint went negative: %d", tail)
	}
	if !strings.Contains(plain.Text(), "EXPLAIN ANALYZE") {
		t.Fatalf("Text() lost its header:\n%s", plain.Text())
	}
	agg := reports[4] // grouped aggregate
	var partials int64
	for _, pl := range agg.Placements {
		if pl.Level == "aggregate" && pl.Clause != -1 {
			t.Fatalf("aggregator key %s not marked runtime", pl.Key)
		}
		partials += pl.AggPartials
	}
	if partials == 0 || agg.AggUpdates == 0 {
		t.Fatalf("aggregate introspection empty: partials=%d updates=%d", partials, agg.AggUpdates)
	}
}

// TestExplainWithoutProfiler: Explain must still work with profiling
// off — static plan and delivery totals only, flagged as unprofiled —
// and unknown query IDs must error.
func TestExplainWithoutProfiler(t *testing.T) {
	net := MustNetwork(Options{Nodes: 32, Seed: 7})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	sub := net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A")
	net.MustPublish("R", 1, 2)
	net.MustPublish("S", 1, 3)
	net.Run()
	rep, err := sub.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profiled || rep.Provenance {
		t.Fatalf("report claims introspection that is off: %+v", rep)
	}
	if len(rep.Placements) == 0 || rep.Answers != 1 {
		t.Fatalf("static plan or delivery totals missing: %+v", rep)
	}
	for _, pl := range rep.Placements {
		if pl.Arrivals != 0 || pl.Rewrites != 0 {
			t.Fatalf("unprofiled report carries observed counters: %+v", pl)
		}
	}
	if _, err := net.Explain("no-such-query"); err == nil {
		t.Fatal("Explain of unknown query must error")
	}
	if a := sub.Answers(); len(a) != 1 || a[0].Lineage != nil {
		t.Fatalf("provenance off must leave lineage nil: %+v", a)
	}
}

// TestProvenanceCertified replays every delivered row's lineage through
// the centralized reference evaluator: for plain, 3-way, DISTINCT and
// value-selection continuous queries, the base tuples a row's lineage
// names must — fed back into the subscriber's own query — reproduce
// exactly that row.
func TestProvenanceCertified(t *testing.T) {
	net := MustNetwork(Options{Nodes: 64, Seed: 11, Provenance: true})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	net.MustDefineRelation("T", "A", "B")
	rec := &recorder{net: net}

	subs := []*Subscription{
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A"),
		net.MustSubscribe("select R.B, T.B from R,S,T where R.A=S.A and S.B=T.B"),
		net.MustSubscribe("select S.B from S where 3=S.A"),
	}
	distinct := net.MustSubscribe("select distinct S.B from R,S where R.A=S.A")
	net.Run()
	skew := []int{0, 0, 3, 1, 1, 2, 3, 4}
	for i := 0; i < 24; i++ {
		rec.publish("R", skew[i%8], i)
		rec.publish("S", skew[(i+1)%8], i%5)
		if i%3 == 0 {
			rec.publish("T", skew[i%8], (i+2)%5)
		}
		net.Run()
	}
	for _, sub := range subs {
		certifyAnswers(t, rec, sub, true)
	}
	// DISTINCT suppresses duplicate rows but each survivor still carries
	// the lineage of the combination that produced it.
	certifyAnswers(t, rec, distinct, true)
}

// TestProvenanceSharingCertified certifies lineage through the
// multi-query sharing machinery under churn with replication: exact
// duplicates, a clause-permuted variant and a residual-filter variant
// riding one shared pipeline, plus a containment child extending
// another pipeline's completions — every subscriber's every row must
// replay through its own query, crashes included (ReplicationFactor 2
// keeps the answer stream and its lineage lossless).
func TestProvenanceSharingCertified(t *testing.T) {
	net := MustNetwork(Options{
		Nodes: 96, Seed: 42, Provenance: true, Sharing: true, ReplicationFactor: 2,
		Churn: ChurnOptions{CrashRate: 20, Interval: 8, StabilizeInterval: 16, MinNodes: 64},
	})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	net.MustDefineRelation("T", "A", "B")
	rec := &recorder{net: net}

	subs := []*Subscription{
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A"),
		net.MustSubscribe("select S.B, R.B from S,R where S.A=R.A"),               // permuted duplicate
		net.MustSubscribe("select S.B from S,R where R.A=S.A and 3=R.A"),          // residual filter
		net.MustSubscribe("select R.B, T.B from R,S,T where R.A=S.A and S.B=T.B"), // contains the 2-way class
	}
	net.Run()
	skew := []int{0, 0, 3, 1, 1, 2, 3, 4}
	for i := 0; i < 24; i++ {
		rec.publish("R", skew[i%8], i)
		rec.publish("S", skew[(i+1)%8], i%5)
		if i%3 == 0 {
			rec.publish("T", skew[i%8], (i+2)%5)
		}
		net.Run()
	}
	st := net.Stats()
	if st.QueriesShared == 0 || st.SharedFanoutRows == 0 {
		t.Fatalf("sharing machinery idle: %+v", st)
	}
	if st.Crashes == 0 {
		t.Fatal("churn configuration produced no crashes; the replication path went unexercised")
	}
	if st.RewritesLost != 0 || st.TuplesLost != 0 {
		t.Fatalf("replication failed to mask crashes: %d rewrites / %d tuples lost", st.RewritesLost, st.TuplesLost)
	}
	for _, sub := range subs {
		// Fan-out subscribers and containment children inherit pipeline
		// lineage; replay must reproduce each row, but the one-tuple-per-
		// relation shape only holds for the subscriber's own join width.
		certifyAnswers(t, rec, sub, false)
	}
}

// TestProvenanceAggCertified certifies aggregate-view lineage: each view
// row's lineage (the union over its contributing answer rows) replayed
// through the reference evaluator and refolded by the centralized
// aggregation reference must reproduce the view row's aggregates for
// its (group, epoch) — for an unwindowed and a tumbling-windowed
// grouped aggregate.
func TestProvenanceAggCertified(t *testing.T) {
	net := MustNetwork(Options{Nodes: 64, Seed: 11, Provenance: true})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	rec := &recorder{net: net}

	subs := []*Subscription{
		net.MustSubscribe("select R.A, count(*), sum(S.B), max(S.B) from R,S where R.A=S.A group by R.A"),
		net.MustSubscribe("select R.A, count(*), sum(S.B) from R,S where R.A=S.A group by R.A within 64 ticks tumbling"),
	}
	net.Run()
	skew := []int{0, 0, 0, 1, 1, 2, 3, 4}
	for i := 0; i < 24; i++ {
		rec.publish("R", skew[i%8], i)
		rec.publish("S", skew[(i+1)%8], i%5)
		net.Run()
	}
	for _, sub := range subs {
		q, err := sqlparse.Parse(sub.SQL, net.cat)
		if err != nil {
			t.Fatal(err)
		}
		spec := agg.SpecOf(q)
		if spec == nil {
			t.Fatalf("%s parsed as non-aggregate", sub.SQL)
		}
		view := sub.AggregateRows()
		if len(view) == 0 {
			t.Fatalf("%s: empty aggregate view", sub.SQL)
		}
		for _, vr := range view {
			if len(vr.Lineage) == 0 {
				t.Fatalf("%s: view row %v has no lineage", sub.SQL, vr.Row)
			}
			for i := 1; i < len(vr.Lineage); i++ {
				a, b := vr.Lineage[i-1], vr.Lineage[i]
				if a.Pub > b.Pub || (a.Pub == b.Pub && a.Seq > b.Seq) {
					t.Fatalf("%s: view lineage not in canonical order: %v", sub.SQL, vr.Lineage)
				}
			}
			tuples := rec.lineageTuples(t, vr.Lineage)
			rows, clocks := refeval.EvaluateSpanClocked(q, tuples)
			vals := make([][]relation.Value, len(rows))
			for i, r := range rows {
				vals[i] = r
			}
			ref := agg.Reference(q, vals, clocks)
			found := false
			for _, rr := range ref {
				if rr.Epoch != vr.Epoch || len(rr.Row) != len(vr.Row) {
					continue
				}
				same := true
				for i := range rr.Row {
					if rr.Row[i] != vr.Row[i] {
						same = false
						break
					}
				}
				if same {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: view row epoch %d %v not reproduced by refolding its lineage (reference gave %+v)",
					sub.SQL, vr.Epoch, vr.Row, ref)
			}
		}
	}
}

// TestWriteProfileJSON smoke-checks the live-inspection surface the
// demo binary serves over expvar: valid JSON keyed by query ID, sorted,
// errors with no live subscriptions.
func TestWriteProfileJSON(t *testing.T) {
	net := MustNetwork(Options{Nodes: 32, Seed: 3, Profile: &ProfileOptions{}})
	if err := net.WriteProfileJSON(&strings.Builder{}); err == nil {
		t.Fatal("no-subscription profile dump must error")
	}
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	sub := net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A")
	net.MustPublish("R", 1, 2)
	net.MustPublish("S", 1, 3)
	net.Run()
	var b strings.Builder
	if err := net.WriteProfileJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, sub.ID) || !strings.Contains(out, `"placements"`) {
		t.Fatalf("profile JSON missing query or placements:\n%s", out)
	}
}
