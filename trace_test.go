package rjoin

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// tracedWorkload drives a fixed mixed workload — multi-way joins, an
// aggregate, racing tuples — with tracing and metrics enabled, and
// returns the network for trace/metrics inspection. Unit hop delays and
// RIC placement draw no random numbers, so the serial engine and every
// parallel worker count share one event timeline.
func tracedWorkload(workers int) *Network {
	net := MustNetwork(Options{
		Nodes: 64, Seed: 7, Workers: workers,
		Trace:   &TraceOptions{},
		Metrics: &MetricsOptions{SampleInterval: 32},
	})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	net.MustDefineRelation("T", "A", "B")

	net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A")
	net.MustSubscribe("select R.B, T.B from R,S,T where R.A=S.A and S.B=T.B")
	net.MustSubscribe("select R.A, count(*), sum(S.B) from R,S where R.A=S.A group by R.A")
	skew := []int{0, 0, 1, 1, 2, 3}
	for i := 0; i < 24; i++ {
		net.MustPublish("R", skew[i%6], i)
		net.MustPublish("S", skew[(i+1)%6], i%5)
		if i%4 == 0 {
			net.MustPublish("T", skew[i%6], (i+2)%5)
		}
		if i%3 == 0 {
			net.Run()
		} else {
			net.RunFor(2) // keep deliveries racing across barriers
		}
	}
	net.Run()
	return net
}

// Golden trace digests for tracedWorkload, pinned exactly the way the
// repo pins its replay digests: one value for the serial engine and one
// for parallel execution at every worker count. The two differ for the
// same documented reasons the golden Stats digests do — the parallel
// barrier schedule orders same-tick deliveries by sub-round rather than
// heap position, which moves schedule-sensitive intermediate state
// (candidate-table hits, walk contents, quiescence-flush timing) while
// leaving final answers untouched. Within a mode the trace is
// bit-identical run over run, and across Workers ∈ {2, 4, 8} it is
// bit-identical because the barrier schedule is keyed by the fixed
// logical-shard space, never by the worker count. Recapture (and
// justify) whenever the traced workload legitimately changes.
const (
	goldenTraceSerial   = uint64(0x9b271adc1f9ef815)
	goldenTraceParallel = uint64(0x0e3d4193803eb99e)
)

// TestTraceGoldenDeterminism is the tentpole guarantee of the tracer:
// the full causal trace — publishes, index placements, lookups, rewrite
// hops, completions, aggregation, answer deliveries — replays
// bit-identically for a given seed, and is invariant across every
// parallel worker count, because trace IDs derive from (publisher,
// pubSeq)/query IDs, per-shard buffers merge in canonical order at
// driver barriers, and no event carries schedule-dependent identifiers.
func TestTraceGoldenDeterminism(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		want := goldenTraceParallel
		if w == 1 {
			want = goldenTraceSerial
		}
		net := tracedWorkload(w)
		if d := net.TraceDigest(); d != want {
			t.Fatalf("workers %d: trace digest %#x, want %#x", w, d, want)
		}
		if net.TraceDropped() != 0 {
			t.Fatalf("workers %d: trace truncated (%d dropped)", w, net.TraceDropped())
		}
		if w == 1 {
			// The trace must actually cover the lifecycle, not vacuously
			// match an empty stream.
			kinds := map[string]bool{}
			for _, ev := range net.TraceEvents() {
				kinds[ev.Kind.String()] = true
			}
			for _, want := range []string{
				"publish", "tuple.arrive", "tuple.store", "altt.store",
				"query.submit", "query.eval", "ric.walk", "rewrite",
				"complete", "answer", "agg.partial", "agg.update",
			} {
				if !kinds[want] {
					t.Fatalf("trace has no %q events; kinds seen: %v", want, kinds)
				}
			}
		}
	}
}

// TestObsDoesNotPerturbReplay: enabling tracing and metrics must not
// move the golden workload by a single bit — same Stats, same
// order-sensitive answer digest as the pinned obs-off baseline.
func TestObsDoesNotPerturbReplay(t *testing.T) {
	base := Options{Nodes: 96, Seed: 42}
	wantStats, wantDigest := goldenWorkload(base)
	traced := base
	traced.Trace = &TraceOptions{}
	traced.Metrics = &MetricsOptions{}
	st, d := goldenWorkload(traced)
	if st != wantStats || d != wantDigest {
		t.Fatalf("observability perturbed the replay:\nwith obs %+v digest %x\nwithout  %+v digest %x",
			st, d, wantStats, wantDigest)
	}
}

// TestLatencyAndMetricsSurface exercises the public observability
// surface end to end: per-subscription latency summaries, the global
// latency histogram, the metrics CSV and both trace exporters.
func TestLatencyAndMetricsSurface(t *testing.T) {
	net := MustNetwork(Options{
		Nodes: 48, Seed: 3,
		Trace:   &TraceOptions{},
		Metrics: &MetricsOptions{SampleInterval: 16},
	})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	sub := net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A")
	for i := 0; i < 16; i++ {
		net.MustPublish("R", i%3, i)
		net.MustPublish("S", i%3, i)
	}
	net.Run()

	if sub.Count() == 0 {
		t.Fatal("workload produced no answers")
	}
	ls := sub.LatencyStats()
	if ls.Count != int64(sub.Count()) {
		t.Fatalf("latency observations %d != answers %d", ls.Count, sub.Count())
	}
	if ls.Min <= 0 || ls.P50 == 0 || ls.Max < ls.Min {
		t.Fatalf("degenerate latency summary: %+v", ls)
	}
	g := net.LatencyStats()
	if g.Count < ls.Count {
		t.Fatalf("global latency count %d < subscription's %d", g.Count, ls.Count)
	}

	var csv bytes.Buffer
	if err := net.WriteMetricsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.HasPrefix(out, "window_start,interval,scope,name,count\n") {
		t.Fatalf("bad CSV header:\n%s", out)
	}
	var nodeRows, tagRows, queryRows int
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		switch strings.Split(ln, ",")[2] {
		case "node":
			nodeRows++
		case "tag":
			tagRows++
		case "query":
			queryRows++
		}
	}
	if nodeRows == 0 || tagRows == 0 || queryRows == 0 {
		t.Fatalf("CSV missing a scope: node %d, tag %d, query %d rows\n%s",
			nodeRows, tagRows, queryRows, out)
	}

	var chrome bytes.Buffer
	if err := net.WriteTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &evs); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("chrome trace is empty")
	}
	var jsonl bytes.Buffer
	if err := net.WriteTraceJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	for _, ln := range strings.Split(strings.TrimSpace(jsonl.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("JSONL line %q invalid: %v", ln, err)
		}
	}

	// Observability off: the accessors degrade gracefully.
	off := MustNetwork(Options{Nodes: 8, Seed: 1})
	if off.TraceDigest() != 0 || off.TraceEvents() != nil {
		t.Fatal("trace accessors must be inert when tracing is off")
	}
	if ls := off.LatencyStats(); ls.Count != 0 {
		t.Fatal("latency stats must be zero when metrics are off")
	}
	if err := off.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTrace must error when tracing is off")
	}
	if err := off.WriteMetricsCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteMetricsCSV must error when metrics are off")
	}
}
