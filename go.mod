module rjoin

go 1.24
