module rjoin

go 1.24

// First external dependency: the go/analysis framework behind
// cmd/rjoin-lint. The container building this repo has no module-proxy
// access, so the dependency is satisfied from a vendored subset (the
// toolchain's own copy) under third_party/ via the replace below.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e

replace golang.org/x/tools => ./third_party/golang.org/x/tools
