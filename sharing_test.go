package rjoin

import (
	"fmt"
	"sort"
	"testing"
)

// answerBag renders a subscription's answers as a sorted multiset, so
// runs that deliver the same rows in different orders compare equal.
func answerBag(sub *Subscription) []string {
	var out []string
	for _, a := range sub.Answers() {
		out = append(out, fmt.Sprint(a.Row))
	}
	sort.Strings(out)
	return out
}

func bagsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// defineShareRels declares the two-relation schema the sharing tests
// use and publishes a small deterministic workload.
func defineShareRels(net *Network) {
	net.MustDefineRelation("Trades", "Sym", "Px")
	net.MustDefineRelation("Quotes", "Sym", "Bid")
	net.MustDefineRelation("News", "Sym", "Score")
}

func publishShareWorkload(net *Network) {
	for i := 0; i < 12; i++ {
		net.MustPublish("Trades", i%4, 100+i)
		net.MustPublish("Quotes", i%4, 90+i)
		if i%2 == 0 {
			net.MustPublish("News", i%4, i)
		}
	}
	net.Run()
}

// TestDuplicateSubmitShares is the regression test for the silent
// duplicate-submit hole: a byte-identical resubmission must attach to
// the existing pipeline — stored-query state stays flat — while both
// subscriptions keep receiving the full answer stream.
func TestDuplicateSubmitShares(t *testing.T) {
	net := quickNet(t, Options{Seed: 11})
	defineShareRels(net)
	const sql = "select Trades.Px, Quotes.Bid from Trades,Quotes where Trades.Sym=Quotes.Sym"
	s1 := net.MustSubscribe(sql)
	net.Run()
	q0, _, _ := net.Engine().StoredState()
	s2 := net.MustSubscribe(sql)
	net.Run()
	q1, _, _ := net.Engine().StoredState()
	if q1 != q0 {
		t.Fatalf("duplicate submit grew stored queries: %d -> %d", q0, q1)
	}
	if got := net.Stats().QueriesShared; got != 1 {
		t.Fatalf("QueriesShared = %d, want 1", got)
	}
	if s1.ID == s2.ID {
		t.Fatal("duplicate subscriptions share an ID")
	}
	publishShareWorkload(net)
	b1, b2 := answerBag(s1), answerBag(s2)
	if len(b1) == 0 || !bagsEqual(b1, b2) {
		t.Fatalf("duplicate subscribers diverge: %d vs %d answers", len(b1), len(b2))
	}
}

// TestSharingEquivalentForms: with Sharing on, clause-order permutations
// and projection/selection variants of one join graph collapse onto one
// pipeline, and every subscriber's answer bag matches what the same
// query receives on an unshared network.
func TestSharingEquivalentForms(t *testing.T) {
	queries := []string{
		"select Trades.Px, Quotes.Bid from Trades,Quotes where Trades.Sym=Quotes.Sym",
		"select Quotes.Bid from Quotes,Trades where Quotes.Sym=Trades.Sym",
		"select Trades.Px from Trades,Quotes where Trades.Sym=Quotes.Sym and Trades.Sym=2",
	}
	run := func(sharing bool) ([][]string, Stats) {
		net := quickNet(t, Options{Seed: 12, Sharing: sharing})
		defineShareRels(net)
		var subs []*Subscription
		for _, sql := range queries {
			subs = append(subs, net.MustSubscribe(sql))
		}
		net.Run()
		publishShareWorkload(net)
		bags := make([][]string, len(subs))
		for i, s := range subs {
			bags[i] = answerBag(s)
		}
		return bags, net.Stats()
	}
	shared, sst := run(true)
	plain, _ := run(false)
	for i := range queries {
		if len(shared[i]) == 0 {
			t.Fatalf("query %d delivered nothing under sharing", i)
		}
		if !bagsEqual(shared[i], plain[i]) {
			t.Fatalf("query %d: shared bag (%d rows) != unshared bag (%d rows)",
				i, len(shared[i]), len(plain[i]))
		}
	}
	if sst.QueriesShared != 2 {
		t.Fatalf("QueriesShared = %d, want 2", sst.QueriesShared)
	}
	if sst.SharedFanoutRows == 0 {
		t.Fatal("no rows went through the shared fan-out")
	}
}

// TestContainmentSharing: a three-way join whose graph strictly
// contains a live two-way class attaches to its completions instead of
// placing a pipeline, and still receives exactly the unshared bag.
func TestContainmentSharing(t *testing.T) {
	const parent = "select Trades.Px, Quotes.Bid from Trades,Quotes where Trades.Sym=Quotes.Sym"
	const child = "select Trades.Px, News.Score from Trades,Quotes,News where Trades.Sym=Quotes.Sym and Quotes.Sym=News.Sym"
	run := func(sharing bool) ([]string, []string, Stats, int) {
		net := quickNet(t, Options{Seed: 13, Sharing: sharing})
		defineShareRels(net)
		ps := net.MustSubscribe(parent)
		net.Run()
		cs := net.MustSubscribe(child)
		net.Run()
		q, _, _ := net.Engine().StoredState()
		publishShareWorkload(net)
		return answerBag(ps), answerBag(cs), net.Stats(), q
	}
	sp, sc, sst, sq := run(true)
	pp, pc, _, pq := run(false)
	if len(sc) == 0 {
		t.Fatal("containment child delivered nothing")
	}
	if !bagsEqual(sp, pp) {
		t.Fatalf("parent bags diverge: %d vs %d rows", len(sp), len(pp))
	}
	if !bagsEqual(sc, pc) {
		t.Fatalf("child bags diverge: %d vs %d rows", len(sc), len(pc))
	}
	if sst.ContainmentRewrites == 0 {
		t.Fatal("containment child never used the parent's completions")
	}
	if sq >= pq {
		t.Fatalf("containment stored %d queries, unshared %d — no saving", sq, pq)
	}
}

// TestUnsubscribe: dropping subscribers releases their share of the
// in-network state — the stored-query footprint returns exactly to its
// pre-subscribe level once the last subscriber of each pipeline leaves.
func TestUnsubscribe(t *testing.T) {
	net := quickNet(t, Options{Seed: 14, Sharing: true})
	defineShareRels(net)
	warm := net.MustSubscribe("select News.Score from News where News.Sym=1")
	net.Run()
	base, _, _ := net.Engine().StoredState()

	s1 := net.MustSubscribe("select Trades.Px, Quotes.Bid from Trades,Quotes where Trades.Sym=Quotes.Sym")
	s2 := net.MustSubscribe("select Quotes.Bid from Quotes,Trades where Quotes.Sym=Trades.Sym")
	net.Run()
	publishShareWorkload(net)
	grown, _, _ := net.Engine().StoredState()
	if grown <= base {
		t.Fatalf("subscriptions stored nothing: %d -> %d", base, grown)
	}

	if err := s1.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	net.Run()
	mid, _, _ := net.Engine().StoredState()
	if mid != grown {
		t.Fatalf("first unsubscribe of a shared pipeline changed stored queries: %d -> %d", grown, mid)
	}
	got := len(s2.Answers())
	net.MustPublish("Trades", 1, 500)
	net.MustPublish("Quotes", 1, 400)
	net.Run()
	if len(s2.Answers()) <= got {
		t.Fatal("remaining subscriber stopped receiving answers")
	}

	if err := s2.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	net.Run()
	final, _, _ := net.Engine().StoredState()
	if final != base {
		t.Fatalf("stored queries after teardown: %d, want pre-subscribe %d", final, base)
	}
	if err := s2.Unsubscribe(); err == nil {
		t.Fatal("double unsubscribe succeeded")
	}
	if got := net.Stats().QueriesUnsubscribed; got != 2 {
		t.Fatalf("QueriesUnsubscribed = %d, want 2", got)
	}
	_ = warm // keeps its own pipeline live through the teardown above
}
