// Benchmarks regenerating every figure of the paper's evaluation
// (Section 8), plus ablations for the system's main design choices
// (candidate-table caching, the ALTT completeness mechanism, placement
// strategies, message grouping). Each figure benchmark runs the
// corresponding experiment at a reduced scale per iteration and reports
// the domain metrics the paper plots (messages per node, QPL, SL) via
// b.ReportMetric; the full paper-scale series are produced by
// cmd/rjoin-experiments.
package rjoin

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"rjoin/internal/chord"
	"rjoin/internal/core"
	"rjoin/internal/experiments"
	"rjoin/internal/id"
	"rjoin/internal/metrics"
	"rjoin/internal/overlay"
	"rjoin/internal/query"
	"rjoin/internal/relation"
	"rjoin/internal/sim"
	"rjoin/internal/sqlparse"
)

// benchParams is a reduced workload: 100 nodes, 4000 queries, tuple
// counts at 15% of the paper's. Shapes (orderings, growth directions)
// are preserved; see experiments_test.go for the assertions.
func benchParams() experiments.Params {
	return experiments.Params{Nodes: 100, Queries: 4000, Seed: 1, Scale: 0.15}
}

// lastCell parses the numeric cell at (last row, col) of a table.
func lastCell(t *metrics.Table, col int) float64 {
	row := t.Rows[len(t.Rows)-1]
	v, _ := strconv.ParseFloat(row[col], 64)
	return v
}

// BenchmarkFig2RICStrategies regenerates Figure 2: Worst vs Random vs
// RJoin placement. Reported metrics are total messages per node at the
// final checkpoint.
func BenchmarkFig2RICStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs := experiments.Fig2(benchParams())
		b.ReportMetric(lastCell(tabs[0], 1), "worst-msgs/node")
		b.ReportMetric(lastCell(tabs[0], 2), "random-msgs/node")
		b.ReportMetric(lastCell(tabs[0], 3), "rjoin-msgs/node")
		b.ReportMetric(lastCell(tabs[0], 4), "ric-msgs/node")
	}
}

// BenchmarkFig3TupleScaling regenerates Figure 3: cost growth with the
// number of incoming tuples.
func BenchmarkFig3TupleScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs := experiments.Fig3(benchParams())
		b.ReportMetric(lastCell(tabs[0], 1), "hops/node/tuple")
		b.ReportMetric(lastCell(tabs[0], 2), "ric/node/tuple")
	}
}

// BenchmarkFig4QueryScaling regenerates Figure 4: cost growth with the
// number of indexed queries.
func BenchmarkFig4QueryScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs := experiments.Fig4(benchParams())
		b.ReportMetric(lastCell(tabs[0], 1), "hops/node/tuple@32k")
	}
}

// BenchmarkFig5Skew regenerates Figure 5: the effect of Zipf theta.
func BenchmarkFig5Skew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs := experiments.Fig5(benchParams())
		b.ReportMetric(lastCell(tabs[0], 1), "hops/node/tuple@0.9")
	}
}

// BenchmarkFig6JoinArity regenerates Figure 6: 4/6/8-way joins.
func BenchmarkFig6JoinArity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs := experiments.Fig6(benchParams())
		b.ReportMetric(lastCell(tabs[0], 1), "hops/node/tuple@8way")
	}
}

// BenchmarkFig7WindowSize regenerates Figure 7: sliding-window sizes.
func BenchmarkFig7WindowSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs := experiments.Fig7(benchParams())
		b.ReportMetric(lastCell(tabs[0], 1), "hops/node/tuple@Wmax")
	}
}

// BenchmarkFig8CumulativeLoad regenerates Figure 8: cumulative QPL/SL
// per window size.
func BenchmarkFig8CumulativeLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs := experiments.Fig8(benchParams())
		row := tabs[0].Rows[len(tabs[0].Rows)-1]
		small, _ := strconv.ParseFloat(row[1], 64)
		large, _ := strconv.ParseFloat(row[len(row)-1], 64)
		b.ReportMetric(small, "cumQPL@Wmin")
		b.ReportMetric(large, "cumQPL@Wmax")
	}
}

// BenchmarkFig9IDMovement regenerates Figure 9: identifier-movement
// load balancing on/off.
func BenchmarkFig9IDMovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs := experiments.Fig9(benchParams())
		without, _ := strconv.ParseFloat(tabs[0].Rows[0][1], 64)
		with, _ := strconv.ParseFloat(tabs[0].Rows[1][1], 64)
		b.ReportMetric(without, "maxQPL-without")
		b.ReportMetric(with, "maxQPL-with")
	}
}

// ablationNetwork runs one fixed workload under the given options and
// returns its stats.
func ablationNetwork(opts Options) Stats {
	opts.Nodes = 100
	opts.Seed = 5
	net := MustNetwork(opts)
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	net.MustDefineRelation("T", "A", "B")
	// Warm the stream so placement has rate signal. Values are skewed
	// (half the mass on value 0) so placement choices actually differ.
	skew := []int{0, 0, 0, 0, 1, 1, 2, 3}
	pub := func(n int) {
		for i := 0; i < n; i++ {
			net.MustPublish("R", skew[i%8], skew[(i+1)%8])
			net.MustPublish("S", skew[i%8], skew[(i+2)%8])
			if i%3 == 0 { // T arrives at a third of the rate
				net.MustPublish("T", skew[i%8], skew[(i+3)%8])
			}
			net.Run()
		}
	}
	pub(30)
	for i := 0; i < 150; i++ {
		net.MustSubscribe("select R.B, T.B from R,S,T where R.A=S.A and S.B=T.B")
	}
	net.Run()
	pub(50)
	return net.Stats()
}

// BenchmarkAblationCandidateTable measures the Section 7 CT cache: RIC
// traffic with and without it.
func BenchmarkAblationCandidateTable(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "ct-on"
		if disabled {
			name = "ct-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := ablationNetwork(Options{DisableCT: disabled, DisablePiggyback: disabled})
				b.ReportMetric(float64(st.RICMessages), "ric-msgs")
				b.ReportMetric(float64(st.Messages), "msgs")
			}
		})
	}
}

// BenchmarkAblationALTT measures the completeness machinery's cost:
// answers delivered with the ALTT enabled vs disabled under message
// racing.
func BenchmarkAblationALTT(b *testing.B) {
	run := func(delta int64) Stats {
		net := MustNetwork(Options{Nodes: 100, Seed: 9, Delta: delta, MinHopDelay: 1, MaxHopDelay: 20})
		net.MustDefineRelation("R", "A", "B")
		net.MustDefineRelation("S", "A", "B")
		for i := 0; i < 50; i++ {
			net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A")
		}
		// No Run between subscribe and publish: tuples race queries.
		for i := 0; i < 50; i++ {
			net.MustPublish("R", i%5, i)
			net.MustPublish("S", i%5, i)
		}
		net.Run()
		return net.Stats()
	}
	for _, delta := range []int64{0, -1} {
		name := "altt-on"
		if delta < 0 {
			name = "altt-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := run(delta)
				b.ReportMetric(float64(st.Answers), "answers")
			}
		})
	}
}

// BenchmarkAblationStrategy measures per-strategy totals on one fixed
// workload (the Figure 2 comparison as a micro harness).
func BenchmarkAblationStrategy(b *testing.B) {
	for _, s := range []Strategy{StrategyWorst, StrategyRandom, StrategyRIC} {
		b.Run(fmt.Sprint(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := ablationNetwork(Options{Strategy: s})
				b.ReportMetric(float64(st.Messages), "msgs")
				b.ReportMetric(float64(st.QueryProcessingLoad), "qpl")
			}
		})
	}
}

// --- microbenchmarks on the hot paths ---

var benchCat = func() *relation.Catalog {
	cat, _ := relation.NewCatalog(
		relation.MustSchema("R", "A", "B", "C"),
		relation.MustSchema("S", "A", "B", "C"),
		relation.MustSchema("J", "A", "B", "C"),
		relation.MustSchema("M", "A", "B", "C"),
	)
	return cat
}()

// BenchmarkQueryRewrite measures one rewriting step, the operation
// performed for every (stored query, arriving tuple) match.
func BenchmarkQueryRewrite(b *testing.B) {
	q := sqlparse.MustParse(
		"select S.B, M.A from R,S,J,M where R.A=S.A and S.B=J.B and J.C=M.C", benchCat)
	s, _ := benchCat.Schema("R")
	tup := relation.MustTuple(s, relation.Int64(2), relation.Int64(5), relation.Int64(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q2, ok := query.Rewrite(q, tup)
		if !ok {
			b.Fatal("rewrite failed")
		}
		query.Release(q2)
	}
}

// BenchmarkKeyHash measures index-key construction: the interned path
// (cache hit: no concatenation, no SHA-1) that every hot-path key
// derivation now takes, against the raw consistent hash it memoizes.
func BenchmarkKeyHash(b *testing.B) {
	b.Run("interned-value", func(b *testing.B) {
		v := relation.Int64(7)
		relation.ValueKeyOf("R", "A", v) // warm the intern table
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if relation.ValueKeyOf("R", "A", v).ID() == 0 {
				b.Fatal("unexpected zero ring id")
			}
		}
	})
	b.Run("interned-string", func(b *testing.B) {
		relation.KeyOf("R+A+7")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if relation.KeyOf("R+A+7").ID() == 0 {
				b.Fatal("unexpected zero ring id")
			}
		}
	})
	b.Run("sha1", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if id.HashKey("R+A+7") == 0 {
				b.Fatal("unexpected zero ring id")
			}
		}
	})
}

// BenchmarkCandidates measures index-candidate enumeration (including
// the implied-selection closure of Section 6).
func BenchmarkCandidates(b *testing.B) {
	q := sqlparse.MustParse(
		"select S.B, M.A from R,S,J,M where R.A=S.A and S.B=J.B and J.C=M.C", benchCat)
	s, _ := benchCat.Schema("R")
	tup := relation.MustTuple(s, relation.Int64(2), relation.Int64(5), relation.Int64(8))
	q1, _ := query.Rewrite(q, tup)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(q1.Candidates()) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkSQLParse measures front-end parsing.
func BenchmarkSQLParse(b *testing.B) {
	src := "select S.B, M.A from R,S,J,M where R.A=S.A and S.B=J.B and J.C=M.C within 100 tuples"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(src, benchCat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublishTuple measures the end-to-end cost of Procedure 1
// plus all triggered processing for one tuple on a loaded network.
func BenchmarkPublishTuple(b *testing.B) {
	net := MustNetwork(Options{Nodes: 128, Seed: 11})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	// Distinct window sizes keep the 100 standing queries in 100
	// distinct pipelines: exact-duplicate dedup would otherwise
	// collapse them into one and the bench would stop measuring
	// per-tuple cost against a populated query store.
	for i := 0; i < 100; i++ {
		net.MustSubscribe(fmt.Sprintf("select R.B, S.B from R,S where R.A=S.A within %d ticks", 1_000_000+i))
	}
	net.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.MustPublish("R", i%50, i)
		net.Run()
	}
}

// BenchmarkPublishTupleReplicated is BenchmarkPublishTuple with durable
// state replication at factor 2: every state mutation the publish
// cascade performs additionally batches into replica-update messages
// for the owner's successor. Comparing ns/op and allocs/op against the
// unreplicated benchmark quantifies the durability overhead on the hot
// path (see CHANGES.md for the A/B numbers).
func BenchmarkPublishTupleReplicated(b *testing.B) {
	net := MustNetwork(Options{Nodes: 128, Seed: 11, ReplicationFactor: 2})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	// Distinct window sizes, as in BenchmarkPublishTuple: keep 100
	// standing pipelines instead of one exact-dedup'd class.
	for i := 0; i < 100; i++ {
		net.MustSubscribe(fmt.Sprintf("select R.B, S.B from R,S where R.A=S.A within %d ticks", 1_000_000+i))
	}
	net.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.MustPublish("R", i%50, i)
		net.Run()
	}
}

// BenchmarkEngineThroughput measures raw simulator throughput: events
// processed per second on a mixed workload.
func BenchmarkEngineThroughput(b *testing.B) {
	net := MustNetwork(Options{Nodes: 100, Seed: 13})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	// Distinct window sizes, as in BenchmarkPublishTuple: keep 50
	// standing pipelines instead of one exact-dedup'd class.
	for i := 0; i < 50; i++ {
		net.MustSubscribe(fmt.Sprintf("select R.B, S.B from R,S where R.A=S.A within %d ticks", 1_000_000+i))
	}
	net.Run()
	before := net.Engine().Sim().Fired()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.MustPublish("R", i%10, i)
		net.MustPublish("S", i%10, i)
		net.Run()
	}
	b.StopTimer()
	b.ReportMetric(float64(net.Engine().Sim().Fired()-before)/float64(b.N), "events/op")
}

// BenchmarkEngineThroughputWorkers is the serial-vs-parallel A/B on a
// wide workload: bursts of publications drain together, so every
// virtual tick carries events for many logical shards and the parallel
// engine's sub-rounds have real width. workers=0 is the serial engine;
// the parallel variants must produce bit-identical results to each
// other (TestGoldenDeterminismParallel), so this benchmark measures
// pure scheduling cost/benefit. On a single-core runner the parallel
// engine pays barrier overhead for no gain; the speedup target lives
// on multi-core CI runners.
func BenchmarkEngineThroughputWorkers(b *testing.B) {
	for _, workers := range []int{0, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			net := MustNetwork(Options{Nodes: 256, Seed: 13, Workers: workers})
			net.MustDefineRelation("R", "A", "B")
			net.MustDefineRelation("S", "A", "B")
			// Distinct window sizes, as in BenchmarkPublishTuple: keep
			// 100 standing pipelines instead of one exact-dedup'd class.
			for i := 0; i < 100; i++ {
				net.MustSubscribe(fmt.Sprintf("select R.B, S.B from R,S where R.A=S.A within %d ticks", 1_000_000+i))
			}
			net.Run()
			before := net.Engine().Sim().Fired()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 16; j++ {
					net.MustPublish("R", (i*16+j)%10, i)
					net.MustPublish("S", (i*16+j)%10, i)
				}
				net.Run()
			}
			b.StopTimer()
			b.ReportMetric(float64(net.Engine().Sim().Fired()-before)/float64(b.N), "events/op")
		})
	}
}

// BenchmarkAblationGrouping compares grouped vs independent multiSend
// (Section 2's message-grouping optimization) on the tuple-publication
// path: the 2k index messages of Procedure 1 either chain along the
// ring (sharing route prefixes) or each pay a full lookup.
func BenchmarkAblationGrouping(b *testing.B) {
	run := func(grouped bool) float64 {
		ring := chord.NewRing()
		idRng := rand.New(rand.NewSource(17))
		for i := 0; i < 128; i++ {
			for {
				if _, err := ring.Join(id.ID(idRng.Uint64())); err == nil {
					break
				}
			}
		}
		ring.BuildPerfect()
		se := sim.NewEngine(17)
		nw := overlay.MustNetwork(ring, se, overlay.Config{
			MinHopDelay: 1, MaxHopDelay: 1, GroupMultiSend: grouped,
		})
		eng := core.NewEngine(ring, se, nw, core.DefaultConfig())
		nodes := ring.Nodes()
		s := relation.MustSchema("R", "A", "B", "C", "D", "E")
		rng := rand.New(rand.NewSource(18))
		const tuples = 200
		for i := 0; i < tuples; i++ {
			vals := make([]relation.Value, s.Arity())
			for j := range vals {
				vals[j] = relation.Int64(int64(rng.Intn(50)))
			}
			eng.PublishTuple(nodes[rng.Intn(len(nodes))], relation.MustTuple(s, vals...))
			eng.Run()
		}
		return float64(nw.Traffic.Total()) / tuples
	}
	for _, grouped := range []bool{true, false} {
		name := "independent"
		if grouped {
			name = "grouped"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(run(grouped), "msgs/tuple")
			}
		})
	}
}
