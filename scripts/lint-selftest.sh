#!/bin/sh
# CI self-test for the rjoin-lint gate: inject a wall-clock read into
# internal/core via a scratch file, run the linter, and require (a) a
# nonzero exit and (b) a novtime diagnostic naming the injected line —
# proving the lint step actually gates instead of rubber-stamping.
set -eu
cd "$(dirname "$0")/.."

probe=internal/core/zz_lint_selftest_probe.go
trap 'rm -f "$probe"' EXIT INT TERM

cat >"$probe" <<'EOF'
package core

import "time"

// lintSelftestProbe exists only while scripts/lint-selftest.sh runs:
// a deliberate determinism violation the CI lint gate must catch.
func lintSelftestProbe() int64 { return time.Now().UnixNano() }
EOF

if out=$(go run ./cmd/rjoin-lint ./internal/core 2>&1); then
	echo "lint self-test FAILED: injected time.Now violation was not flagged" >&2
	exit 1
fi
if ! echo "$out" | grep -q 'zz_lint_selftest_probe\.go.*novtime.*time\.Now'; then
	echo "lint self-test FAILED: linter failed, but not with a novtime finding on the probe:" >&2
	echo "$out" >&2
	exit 1
fi
echo "lint self-test passed; the gate flagged the injected violation:"
echo "$out" | grep 'zz_lint_selftest_probe\.go'
