// Adaptive demonstrates the three optional optimizations layered on the
// base algorithm — batch routing and query migration (the paper's
// Section 10 future work) and attribute-level replication (the [18]
// hotspot remedy) — on one IoT-style workload with a mid-run shift:
// sensor traffic migrates from one building to another, and the
// standing queries adapt. Both configurations deliver identical
// answers; the adaptive one does so with less traffic and a cooler
// hottest node.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"rjoin"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tanswers\tmessages\tmax-node QPL\tparticipants")
	for _, adaptive := range []bool{false, true} {
		name := "baseline"
		opts := rjoin.Options{Nodes: 192, Seed: 13}
		if adaptive {
			name = "adaptive (batch+replicas+migration)"
			opts.BatchWindow = 20
			opts.AttrReplicas = 3
			opts.EnableMigration = true
		}
		answers, st := run(opts)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n",
			name, answers, st.Messages, st.MaxNodeQPL, st.ParticipatingNodes)
	}
	w.Flush()
	fmt.Println("\nSame answers, different bill: adaptivity changes cost, never results.")
}

func run(opts rjoin.Options) (int, rjoin.Stats) {
	net := rjoin.MustNetwork(opts)
	net.MustDefineRelation("Readings", "Sensor", "Level") // temperature band
	net.MustDefineRelation("Sensors", "Sensor", "Room")
	net.MustDefineRelation("Rooms", "Room", "Floor")

	rng := rand.New(rand.NewSource(13))
	sensorsOf := func(building int) []int {
		out := make([]int, 8)
		for i := range out {
			out[i] = building*8 + i
		}
		return out
	}
	// Standing query: overheating readings joined to their floor.
	var subs []*rjoin.Subscription
	for i := 0; i < 40; i++ {
		subs = append(subs, net.MustSubscribe(`
			select Readings.Sensor, Rooms.Floor
			from Readings,Sensors,Rooms
			where Readings.Sensor=Sensors.Sensor and Sensors.Room=Rooms.Room
			  and Readings.Level=9`))
	}
	net.Run()

	// Topology feed — continuous queries only combine tuples published
	// after submission (Definition 1), so the feed follows the
	// subscriptions.
	for b := 0; b < 2; b++ {
		for _, s := range sensorsOf(b) {
			net.MustPublish("Sensors", s, b*4+s%4)
			net.MustPublish("Rooms", b*4+s%4, b)
		}
	}
	net.Run()

	publishFrom := func(building, n int) {
		ss := sensorsOf(building)
		for i := 0; i < n; i++ {
			lvl := rng.Intn(10)
			net.MustPublish("Readings", ss[rng.Intn(len(ss))], lvl)
			net.Run()
		}
	}
	publishFrom(0, 120) // phase 1: building 0 is hot
	publishFrom(1, 120) // phase 2: the workload shifts to building 1

	total := 0
	for _, s := range subs {
		total += s.Count()
	}
	return total, net.Stats()
}
