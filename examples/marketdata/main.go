// Marketdata demonstrates multi-way joins with DISTINCT (set semantics,
// Section 4 of the paper) and tumbling windows on a financial stream: a
// standing query watches for symbols that, in the same window, trade
// above a threshold price band, appear in the news, and show widening
// quotes — reporting each offending symbol once per occurrence pattern.
package main

import (
	"fmt"
	"math/rand"

	"rjoin"
)

func main() {
	net := rjoin.MustNetwork(rjoin.Options{Nodes: 128, Seed: 21})

	net.MustDefineRelation("Trades", "Sym", "Band") // price band 0..4
	net.MustDefineRelation("News", "Sym", "Kind")
	net.MustDefineRelation("Quotes", "Sym", "Spread") // spread bucket

	// DISTINCT collapses repeated identical evidence combinations:
	// twenty trades in the same band produce one alert, not twenty.
	sub := net.MustSubscribe(`
		select distinct Trades.Sym, News.Kind, Quotes.Spread
		from Trades,News,Quotes
		where Trades.Sym=News.Sym and News.Sym=Quotes.Sym and Trades.Band=4
		within 100 tuples tumbling`)
	net.Run()

	rng := rand.New(rand.NewSource(21))
	syms := []string{"ACME", "GLOBO", "INITECH", "HOOLI"}
	for i := 0; i < 300; i++ {
		sym := syms[rng.Intn(len(syms))]
		switch rng.Intn(3) {
		case 0:
			band := rng.Intn(5)
			if sym == "HOOLI" {
				band = 4 // HOOLI keeps printing in the top band
			}
			net.MustPublish("Trades", sym, band)
		case 1:
			kinds := []string{"earnings", "merger", "downgrade"}
			net.MustPublish("News", sym, kinds[rng.Intn(len(kinds))])
		default:
			net.MustPublish("Quotes", sym, rng.Intn(3))
		}
		net.Run()
	}

	fmt.Printf("distinct surveillance hits: %d\n", sub.Count())
	seen := map[string]int{}
	for _, a := range sub.Answers() {
		seen[a.Row[0].String()]++
	}
	for _, s := range syms {
		if n := seen[s]; n > 0 {
			fmt.Printf("  %-8s %d distinct evidence patterns\n", s, n)
		}
	}
	st := net.Stats()
	fmt.Printf("\ncost: %d messages, %d rewrites, storage load %d\n",
		st.Messages, st.RewritesCreated, st.StorageLoad)
}
