// Quickstart: the smallest end-to-end RJoin program. A 64-node overlay
// is simulated in-process; one continuous two-way join is subscribed;
// tuples published anywhere in the network produce answer rows at the
// subscriber.
package main

import (
	"fmt"

	"rjoin"
)

func main() {
	net := rjoin.MustNetwork(rjoin.Options{Nodes: 64, Seed: 1})

	// Declare the schema. Relations are append-only streams.
	net.MustDefineRelation("Trades", "Sym", "Px")
	net.MustDefineRelation("Quotes", "Sym", "Bid")

	// Subscribe a continuous equi-join: every future trade paired with
	// every future quote on the same symbol.
	sub := net.MustSubscribe(
		"select Trades.Px, Quotes.Bid from Trades,Quotes where Trades.Sym=Quotes.Sym")
	net.Run()

	// Publish tuples from random nodes. Values may be ints or strings.
	net.MustPublish("Trades", 7, 101)
	net.MustPublish("Quotes", 7, 99)
	net.MustPublish("Trades", 8, 55) // no matching quote: no answer
	net.Run()

	for _, a := range sub.Answers() {
		fmt.Printf("trade at %s matched quote bid %s (tick %d)\n",
			a.Row[0], a.Row[1], a.At)
	}
	st := net.Stats()
	fmt.Printf("cost: %d messages across %d nodes, %d rewrites\n",
		st.Messages, net.Nodes(), st.RewritesCreated)
}
