// Aggregation demonstrates in-network continuous GROUP BY: a standing
// query aggregates a joined order/fill stream per symbol — counts,
// volume, extrema and an average — inside the DHT. Completed join rows
// never travel to the subscriber; they are routed to per-group
// aggregator nodes, which coalesce them into one update per group and
// window epoch.
package main

import (
	"fmt"
	"math/rand"

	"rjoin"
)

func main() {
	net := rjoin.MustNetwork(rjoin.Options{Nodes: 128, Seed: 7})

	net.MustDefineRelation("Orders", "Sym", "Qty")
	net.MustDefineRelation("Fills", "Sym", "Px")

	// Per-symbol rollup over tumbling windows of 200 tuple arrivals:
	// how many order/fill matches, total matched quantity, the price
	// range and the average price — per epoch.
	sub := net.MustSubscribe(`
		select Orders.Sym, count(*), sum(Orders.Qty), min(Fills.Px), max(Fills.Px), avg(Fills.Px)
		from Orders,Fills
		where Orders.Sym=Fills.Sym
		group by Orders.Sym
		within 200 tuples tumbling`)
	// A running (unwindowed) global tally rides alongside.
	total := net.MustSubscribe(`
		select count(*), sum(Orders.Qty)
		from Orders,Fills
		where Orders.Sym=Fills.Sym`)
	net.Run()

	rng := rand.New(rand.NewSource(7))
	syms := []string{"ACME", "GLOBO", "INITECH"}
	for i := 0; i < 400; i++ {
		sym := syms[rng.Intn(len(syms))]
		if rng.Intn(2) == 0 {
			net.MustPublish("Orders", sym, 1+rng.Intn(9))
		} else {
			net.MustPublish("Fills", sym, 90+rng.Intn(20))
		}
		if i%50 == 49 {
			net.Run()
		}
	}
	net.Run()

	fmt.Println("Per-symbol rollups (group, count, volume, min px, max px, avg px) by epoch:")
	for _, row := range sub.AggregateRows() {
		fmt.Printf("  epoch %2d:", row.Epoch)
		for _, v := range row.Row {
			fmt.Printf("  %8s", v.String())
		}
		fmt.Println()
	}
	for _, row := range total.AggregateRows() {
		fmt.Printf("Global: %s matches, volume %s\n", row.Row[0], row.Row[1])
	}

	st := net.Stats()
	fmt.Printf("\n%d join rows folded in-network, %d group updates delivered (%.1fx subscriber traffic reduction)\n",
		st.AggPartials, st.AggUpdates, float64(st.AggPartials)/float64(st.AggUpdates))
}
