// Churn: continuous joins on an overlay whose membership changes while
// the stream is live. A fleet-telemetry join runs across a ring that
// grows, shrinks gracefully (state handed to successors — no answer is
// lost or duplicated) and suffers outright crashes (state loss is
// counted, input queries are re-indexed and the stream keeps flowing).
//
// Spontaneous churn is driven by Options.Churn rates on the virtual
// clock; the explicit AddNode / RemoveNode / Crash calls below inject
// the deterministic "incidents" the commentary narrates.
package main

import (
	"fmt"

	"rjoin"
)

func main() {
	net := rjoin.MustNetwork(rjoin.Options{
		Nodes: 64,
		Seed:  2026,
		// Background churn: rates are events per 1000 virtual ticks,
		// so 30 means roughly one join and one graceful leave every
		// ~33 ticks, floor at 32 nodes.
		Churn: rjoin.ChurnOptions{JoinRate: 30, LeaveRate: 30, MinNodes: 32},
	})

	net.MustDefineRelation("Position", "Truck", "Zone")
	net.MustDefineRelation("Alert", "Zone", "Severity")

	// Which trucks are inside a zone that raises an alert?
	sub := net.MustSubscribe(
		"select Position.Truck, Alert.Severity from Position,Alert where Position.Zone=Alert.Zone")
	net.Run()

	cursor := 0
	report := func(phase string) {
		batch := sub.AnswersSince(cursor)
		cursor += len(batch)
		st := net.Stats()
		fmt.Printf("%-22s nodes=%-3d answers+%-3d joins=%d leaves=%d crashes=%d handover=%d/%d bounced=%d lost=%d\n",
			phase, net.Nodes(), len(batch), st.Joins, st.Leaves, st.Crashes,
			st.HandoverMessages, st.HandoverEntries, st.MessagesBounced,
			st.RewritesLost+st.TuplesLost)
	}

	stream := func(rounds, base int) {
		for i := 0; i < rounds; i++ {
			net.MustPublish("Position", base+i, (base+i)%7)
			if i%2 == 0 {
				net.MustPublish("Alert", (base+i)%7, i%3)
			}
			net.RunFor(16) // advance the clock so background churn can fire
			net.Run()
		}
	}

	stream(20, 0)
	report("steady state")

	// Incident 1: a third of the fleet is decommissioned gracefully —
	// every stored query and tuple hands over to a successor.
	for i := 0; i < 16 && net.Nodes() > 33; i++ {
		if err := net.RemoveNode((i * 3) % net.Nodes()); err != nil {
			panic(err)
		}
	}
	stream(20, 100)
	report("after graceful drain")

	// Incident 2: a rack dies without warning.
	for i := 0; i < 3; i++ {
		if err := net.Crash(i * 5 % net.Nodes()); err != nil {
			panic(err)
		}
	}
	stream(20, 200)
	report("after crashes")

	// Incident 3: capacity comes back.
	for i := 0; i < 10; i++ {
		if err := net.AddNode(); err != nil {
			panic(err)
		}
	}
	stream(20, 300)
	report("after scale-up")

	st := net.Stats()
	fmt.Printf("\ntotal: %d answers over %d messages; %d membership events, %d state entries handed over, %d recovered query placements\n",
		st.Answers, st.Messages, st.Joins+st.Leaves+st.Crashes, st.HandoverEntries, st.QueriesRecovered)
}
