// Placement compares the three query-placement strategies of the
// paper's Figure 2 on one skewed workload: Worst (adversarial oracle),
// Random, and RJoin's RIC-informed placement. It prints total traffic,
// query-processing load and storage load per strategy — the RIC
// strategy wins on every measure once the stream is flowing, at the
// price of a modest RIC-request overhead.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"rjoin"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tmessages\tric-share\tQPL\tSL\tanswers")
	for _, strat := range []rjoin.Strategy{rjoin.StrategyWorst, rjoin.StrategyRandom, rjoin.StrategyRIC} {
		st := runWorkload(strat)
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%d\t%d\n",
			strat, st.Messages, st.RICMessages,
			st.QueryProcessingLoad, st.StorageLoad, st.Answers)
	}
	w.Flush()
	fmt.Println("\n(RIC pays an up-front polling cost per query; Worst pays forever per tuple.)")
}

func runWorkload(strat rjoin.Strategy) rjoin.Stats {
	net := rjoin.MustNetwork(rjoin.Options{Nodes: 200, Seed: 3, Strategy: strat})
	rng := rand.New(rand.NewSource(3))

	// A skewed schema: relation Hot receives most tuples.
	net.MustDefineRelation("Hot", "A", "B")
	net.MustDefineRelation("Warm", "A", "B")
	net.MustDefineRelation("Cold", "A", "B")

	// Warm up the stream so arrival rates are observable before
	// queries are placed (the RIC predictor works on the last window).
	publish := func(n int) {
		for i := 0; i < n; i++ {
			v := rng.Intn(8)
			switch {
			case rng.Intn(10) < 7:
				net.MustPublish("Hot", v, rng.Intn(8))
			case rng.Intn(10) < 7:
				net.MustPublish("Warm", v, rng.Intn(8))
			default:
				net.MustPublish("Cold", v, rng.Intn(8))
			}
			net.Run()
		}
	}
	publish(150)

	// 200 standing 3-way joins over the three streams.
	for i := 0; i < 200; i++ {
		net.MustSubscribe(
			"select Hot.B, Cold.B from Hot,Warm,Cold where Hot.A=Warm.A and Warm.B=Cold.B")
	}
	net.Run()
	publish(150)
	return net.Stats()
}
