// Netmonitor is the wide-area monitoring scenario that motivates
// continuous multi-way joins in the paper's introduction (and its
// citation of distributed-trigger systems): security events from many
// observation points are published into the DHT, and a standing 3-way
// join correlates an IDS alert with a suspicious flow and the asset
// owner — within a sliding window, so stale events age out and query
// state stays bounded.
package main

import (
	"fmt"
	"math/rand"

	"rjoin"
)

func main() {
	net := rjoin.MustNetwork(rjoin.Options{Nodes: 256, Seed: 7})

	// Streams published by sensors across the network.
	net.MustDefineRelation("Alerts", "Host", "Code") // IDS alerts
	net.MustDefineRelation("Flows", "Host", "Dst")   // egress flows
	net.MustDefineRelation("Assets", "Host", "Team") // ownership feed

	// Correlate: an alert on a host, an egress flow from the same host,
	// and the owning team — all within a 60-tuple sliding window.
	sub := net.MustSubscribe(`
		select Alerts.Code, Flows.Dst, Assets.Team
		from Alerts,Flows,Assets
		where Alerts.Host=Flows.Host and Flows.Host=Assets.Host
		within 60 tuples`)
	net.Run()

	// Synthetic event stream: mostly benign noise, a few correlated
	// incidents on "db7" and "web3".
	rng := rand.New(rand.NewSource(7))
	hosts := []string{"web1", "web2", "web3", "db7", "cache9"}
	teams := map[string]string{
		"web1": "frontend", "web2": "frontend", "web3": "frontend",
		"db7": "storage", "cache9": "platform",
	}
	for _, h := range hosts {
		net.MustPublish("Assets", h, teams[h])
	}
	for i := 0; i < 120; i++ {
		h := hosts[rng.Intn(len(hosts))]
		switch rng.Intn(4) {
		case 0:
			net.MustPublish("Alerts", h, fmt.Sprintf("SIG-%d", 4000+rng.Intn(4)))
		default:
			net.MustPublish("Flows", h, fmt.Sprintf("10.0.0.%d", rng.Intn(32)))
		}
		net.Run()
	}

	fmt.Printf("correlated incidents: %d\n", sub.Count())
	for i, a := range sub.Answers() {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", sub.Count()-8)
			break
		}
		fmt.Printf("  alert %s + egress to %s -> page team %q (tick %d)\n",
			a.Row[0], a.Row[1], a.Row[2], a.At)
	}
	st := net.Stats()
	fmt.Printf("\noverlay cost: %d messages, QPL %d spread over %d of %d nodes (max node %d)\n",
		st.Messages, st.QueryProcessingLoad, st.ParticipatingNodes, net.Nodes(), st.MaxNodeQPL)
}
