package rjoin

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"
)

// goldenWorkload drives a fixed-seed mixed workload — plain, 3-way,
// DISTINCT, sliding- and tumbling-windowed continuous queries plus a
// one-time snapshot query, with tuples racing queries part of the time —
// and returns the final Stats together with an order-sensitive digest of
// every answer stream. Any change to replay behaviour shows up in one of
// the two.
func goldenWorkload(opts Options) (Stats, uint64) {
	net := MustNetwork(opts)
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	net.MustDefineRelation("T", "A", "B")

	subs := []*Subscription{
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A"),
		net.MustSubscribe("select R.B, T.B from R,S,T where R.A=S.A and S.B=T.B"),
		net.MustSubscribe("select distinct S.B from R,S where R.A=S.A"),
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A within 40 tuples"),
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A within 64 ticks tumbling"),
		net.MustSubscribe("select S.B from S where 3=S.A"),
	}
	// Warm stream, fully drained between publications.
	skew := []int{0, 0, 0, 1, 1, 2, 3, 4}
	for i := 0; i < 40; i++ {
		net.MustPublish("R", skew[i%8], i)
		net.MustPublish("S", skew[(i+1)%8], i%6)
		if i%3 == 0 {
			net.MustPublish("T", skew[i%8], (i+2)%6)
		}
		net.Run()
	}
	// Racing phase: tuples and a late batch of queries in flight together.
	for i := 0; i < 30; i++ {
		net.MustPublish("R", i%5, i)
		net.MustPublish("S", i%5, i%4)
	}
	subs = append(subs, net.MustSubscribe("select R.A, S.B from R,S where R.B=S.B"))
	net.RunFor(10)
	for i := 0; i < 20; i++ {
		net.MustPublish("T", i%5, i%4)
	}
	net.Run()
	// One-time snapshot over everything published so far.
	subs = append(subs, net.MustSubscribe("select S.B from R,S where R.A=S.A once"))
	net.Run()

	h := fnv.New64a()
	for _, s := range subs {
		fmt.Fprintf(h, "[%s]", s.SQL)
		for _, a := range s.Answers() {
			fmt.Fprintf(h, "%d:", a.At)
			for _, v := range a.Row {
				fmt.Fprintf(h, "%s,", v.String())
			}
			fmt.Fprint(h, ";")
		}
	}
	return net.Stats(), h.Sum64()
}

// goldenConfigs are the configurations the golden test pins down: the
// paper-default engine; the future-work extensions (batching,
// attribute replication, migration) that exercise every scheduling
// path; and a churn-enabled run whose joins, graceful leaves and
// crashes must replay bit-identically — handover ordering, bounce
// paths, ownership re-routes and crash recovery included.
func goldenConfigs() []Options {
	return []Options{
		{Nodes: 96, Seed: 42},
		{Nodes: 96, Seed: 42, BatchWindow: 4, AttrReplicas: 2, EnableMigration: true, MaxHopDelay: 3},
		{Nodes: 96, Seed: 42, Churn: ChurnOptions{
			JoinRate: 25, LeaveRate: 25, CrashRate: 10, Interval: 8, StabilizeInterval: 16, MinNodes: 48,
		}},
	}
}

// TestGoldenDeterminism asserts the replay guarantee twice over: two
// runs with the same seed are bit-identical, and both match the golden
// values recorded from the pre-refactor baseline (commit adding go.mod),
// so the interned-key / copy-on-write / typed-heap hot-path work cannot
// silently change behaviour.
func TestGoldenDeterminism(t *testing.T) {
	// Golden values captured on the seed implementation (SHA-1 string
	// keys, deep-clone rewrites, container/heap scheduler).
	golden := []struct {
		stats  Stats
		digest uint64
	}{
		{Stats{Messages: 12650, RICMessages: 362, QueryProcessingLoad: 1862, StorageLoad: 1484, Answers: 8746, RewritesCreated: 9933, MaxNodeQPL: 220, ParticipatingNodes: 53,
			TrafficByTag: TagTraffic{RIC: 362, App: 12288}}, 0x631b5dd40811f4a5},
		{Stats{Messages: 12791, RICMessages: 199, QueryProcessingLoad: 2099, StorageLoad: 1728, Answers: 8609, RewritesCreated: 10060, MaxNodeQPL: 255, ParticipatingNodes: 54,
			TrafficByTag: TagTraffic{RIC: 199, App: 12592}}, 0x196e6f513d18ce1d},
		// Churn-enabled: 19 joins, 22 graceful leaves and 10 crashes
		// interleave the mixed workload; the digest pins the handover
		// ordering, bounce paths, ownership re-routes and crash
		// recovery to an exact replay.
		{Stats{Messages: 12572, RICMessages: 552, QueryProcessingLoad: 1607, StorageLoad: 1235, Answers: 8282, RewritesCreated: 9214, MaxNodeQPL: 156, ParticipatingNodes: 63,
			Joins: 19, Leaves: 22, Crashes: 10, HandoverMessages: 22, HandoverEntries: 296, MessagesRerouted: 2, MessagesBounced: 821, RewritesLost: 7, TuplesLost: 16,
			TrafficByTag: TagTraffic{RIC: 552, Churn: 22, App: 11998}}, 0x2b62efaa569da411},
	}
	for i, opts := range goldenConfigs() {
		st1, d1 := goldenWorkload(opts)
		st2, d2 := goldenWorkload(opts)
		if st1 != st2 || d1 != d2 {
			t.Fatalf("config %d: same seed diverged:\nrun1 %+v digest %x\nrun2 %+v digest %x", i, st1, d1, st2, d2)
		}
		if st1 != golden[i].stats || d1 != golden[i].digest {
			t.Fatalf("config %d: replay drifted from golden baseline:\ngot  %+v digest %x\nwant %+v digest %x",
				i, st1, d1, golden[i].stats, golden[i].digest)
		}
	}

	// Aggregation-enabled config: the digest over every subscription's
	// final aggregate view (and a plain subscription's answer multiset)
	// must be bit-identical across Workers ∈ {1, 2, 4, 8} and match the
	// pinned baseline — the distributed fold, partial routing and
	// quiescence flushing may not depend on scheduling interleave in any
	// way that reaches final state.
	const goldenAgg = uint64(0xdeb53ae175c3b7e3)
	for _, w := range []int{1, 2, 4, 8} {
		if d := goldenAggWorkload(Options{Nodes: 96, Seed: 42, Workers: w}); d != goldenAgg {
			t.Fatalf("aggregation config, workers %d: digest %x diverged from golden %x", w, d, goldenAgg)
		}
	}

	// Sharing-enabled config: a duplicate-heavy submission stream (exact
	// duplicates, clause-permuted variants, a residual-filter variant and
	// a containment child) under churn with ReplicationFactor 2, plus a
	// mid-run Unsubscribe. The order-insensitive digest over every
	// surviving subscriber's answer multiset — and the sharing counters —
	// must be bit-identical across Workers ∈ {1, 2, 4, 8} and match the
	// pinned baseline: class registration, fan-out snapshots, containment
	// walks and teardown may not depend on scheduling interleave. The
	// serial run draws different RNG streams than the parallel barrier
	// schedule (as with the other goldens, whose parallel stats are
	// pinned separately), so full Stats equality is asserted across the
	// parallel trio only; the digest and counters hold across all four.
	const goldenSharing = uint64(0xc6f20d7283a81670)
	var sharedPinned Stats
	for wi, w := range []int{1, 2, 4, 8} {
		st, d := goldenSharingWorkload(Options{
			Nodes: 96, Seed: 42, Sharing: true, ReplicationFactor: 2, Workers: w,
			Churn: ChurnOptions{JoinRate: 10, CrashRate: 30, Interval: 8, StabilizeInterval: 16, MinNodes: 48},
		})
		if st.QueriesShared != 6 || st.QueriesUnsubscribed != 1 || st.SharedFanoutRows == 0 ||
			st.ContainmentRewrites == 0 || st.Crashes == 0 || st.RewritesLost != 0 || st.TuplesLost != 0 {
			t.Fatalf("sharing config, workers %d: machinery drifted (shared %d, unsubscribed %d, fan-out %d, containment %d, crashes %d, lost %d/%d)",
				w, st.QueriesShared, st.QueriesUnsubscribed, st.SharedFanoutRows,
				st.ContainmentRewrites, st.Crashes, st.RewritesLost, st.TuplesLost)
		}
		if d != goldenSharing {
			t.Fatalf("sharing config, workers %d: digest %#x diverged from golden %#x (stats %+v)", w, d, goldenSharing, st)
		}
		if wi <= 1 {
			sharedPinned = st // w=1 is overwritten by the parallel pin at w=2
			continue
		}
		if st != sharedPinned {
			t.Fatalf("sharing config, workers %d: stats depend on worker count:\ngot  %+v\nwant %+v", w, st, sharedPinned)
		}
	}
}

// goldenSharingWorkload drives the sharing golden: seven subscriptions
// spanning one shared 2-way class (exact duplicate, permuted variant,
// residual-filter variant), one shared 3-way class that also attaches
// to the 2-way class by containment, and a windowed loner; one
// duplicate is torn down mid-run and a late permuted duplicate attaches
// while tuples are in flight. The digest is order-insensitive (per
// subscriber, the sorted multiset of timestamped answer rows) plus the
// sharing and loss counters, which is what lets one pinned value hold
// across every worker count.
func goldenSharingWorkload(opts Options) (Stats, uint64) {
	net := MustNetwork(opts)
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	net.MustDefineRelation("T", "A", "B")

	subs := []*Subscription{
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A"),
		net.MustSubscribe("select S.B, R.B from S,R where S.A=R.A"),
		net.MustSubscribe("select S.B from S,R where R.A=S.A and 3=R.A"),
		net.MustSubscribe("select R.B, T.B from R,S,T where R.A=S.A and S.B=T.B"),
		net.MustSubscribe("select T.A, R.B from T,S,R where T.B=S.B and S.A=R.A"),
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A within 40 tuples"),
	}
	victim := net.MustSubscribe("select R.A, S.A from R,S where R.A=S.A")
	skew := []int{0, 0, 0, 1, 1, 2, 3, 4}
	for i := 0; i < 40; i++ {
		net.MustPublish("R", skew[i%8], i)
		net.MustPublish("S", skew[(i+1)%8], i%6)
		if i%3 == 0 {
			net.MustPublish("T", skew[i%8], (i+2)%6)
		}
		net.Run()
	}
	if err := victim.Unsubscribe(); err != nil {
		panic(err)
	}
	// Racing phase: tuples in flight while a late duplicate attaches.
	for i := 0; i < 30; i++ {
		net.MustPublish("R", i%5, i)
		net.MustPublish("S", i%5, i%4)
	}
	subs = append(subs, net.MustSubscribe("select S.B, R.B from R,S where S.A=R.A"))
	net.RunFor(10)
	for i := 0; i < 20; i++ {
		net.MustPublish("T", i%5, i%4)
	}
	net.Run()

	st := net.Stats()
	h := fnv.New64a()
	for _, s := range subs {
		fmt.Fprintf(h, "[%s]", s.SQL)
		var rows []string
		for _, a := range s.Answers() {
			row := fmt.Sprintf("%d:", a.At)
			for _, v := range a.Row {
				row += v.String() + ","
			}
			rows = append(rows, row)
		}
		sort.Strings(rows)
		for _, r := range rows {
			fmt.Fprintf(h, "%s;", r)
		}
	}
	fmt.Fprintf(h, "|shared=%d unsub=%d fanout=%d contain=%d lost=%d/%d",
		st.QueriesShared, st.QueriesUnsubscribed, st.SharedFanoutRows, st.ContainmentRewrites,
		st.RewritesLost, st.TuplesLost)
	return st, h.Sum64()
}

// goldenAggWorkload drives a fixed-seed aggregation workload — grouped,
// global, tumbling- and sliding-windowed aggregate queries over every
// function, plus a plain query riding along — and digests the final
// aggregate views together with the plain query's answer multiset. The
// digest is deliberately order-insensitive (views are canonical sorted
// state, the answer stream is sorted before hashing): aggregation
// exactness is a property of final state, not of delivery interleaving,
// which is what lets one pinned value hold across every worker count.
func goldenAggWorkload(opts Options) uint64 {
	net := MustNetwork(opts)
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")

	subs := []*Subscription{
		net.MustSubscribe("select R.A, count(*), sum(S.B), min(S.B), max(S.B), avg(S.B), count(distinct S.B) from R,S where R.A=S.A group by R.A"),
		net.MustSubscribe("select count(*), max(R.B) from R,S where R.A=S.A"),
		net.MustSubscribe("select R.A, count(*), sum(S.B) from R,S where R.A=S.A group by R.A within 32 tuples tumbling"),
		net.MustSubscribe("select R.A, count(*), max(S.B) from R,S where R.A=S.A group by R.A within 32 tuples"),
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A"),
	}
	skew := []int{0, 0, 0, 1, 1, 2, 3, 4}
	for i := 0; i < 48; i++ {
		net.MustPublish("R", skew[i%8], i)
		net.MustPublish("S", skew[(i+1)%8], i%6)
		if i%5 == 4 {
			net.Run()
		} else {
			net.RunFor(2) // keep deliveries racing across barriers
		}
	}
	net.Run()

	h := fnv.New64a()
	for _, s := range subs {
		fmt.Fprintf(h, "[%s]", s.SQL)
		for _, a := range s.AggregateRows() {
			fmt.Fprintf(h, "e%d:", a.Epoch)
			for _, v := range a.Row {
				fmt.Fprintf(h, "%s,", v.String())
			}
			fmt.Fprint(h, ";")
		}
		var rows []string
		for _, a := range s.Answers() {
			row := ""
			for _, v := range a.Row {
				row += v.String() + ","
			}
			rows = append(rows, row)
		}
		sort.Strings(rows)
		for _, r := range rows {
			fmt.Fprintf(h, "%s;", r)
		}
	}
	return h.Sum64()
}

// parallelConfigs returns the golden configurations adapted to
// parallel mode: the batching config's implicit MinHopDelay 0 becomes
// the smallest valid lookahead window.
func parallelConfigs() []Options {
	cfgs := goldenConfigs()
	for i := range cfgs {
		if cfgs[i].MinHopDelay == 0 && cfgs[i].MaxHopDelay != 0 {
			cfgs[i].MinHopDelay = 1
		}
	}
	return cfgs
}

// TestGoldenDeterminismParallel pins the parallel engine's replay the
// same way TestGoldenDeterminism pins the serial one, and additionally
// proves worker-count invariance: for each configuration the stats and
// the order-sensitive answer digest must be bit-identical across
// Workers ∈ {2, 4, 8}, because the barrier schedule is keyed by the
// fixed logical-shard space, never by the worker count. The parallel
// digests differ from the serial ones by construction — sub-round
// ordering and per-node RNG streams — which is why they are pinned
// separately. Config 0 (unit delays, RIC placement) draws no random
// numbers at all, so its parallel Stats equal the serial golden values
// exactly and only the answer-order digest moves.
func TestGoldenDeterminismParallel(t *testing.T) {
	// Golden values captured when parallel execution was introduced.
	golden := []struct {
		stats  Stats
		digest uint64
	}{
		{Stats{Messages: 12650, RICMessages: 362, QueryProcessingLoad: 1862, StorageLoad: 1484, Answers: 8746, RewritesCreated: 9933, MaxNodeQPL: 220, ParticipatingNodes: 53,
			TrafficByTag: TagTraffic{RIC: 362, App: 12288}}, 0xc2547b24d4c721b1},
		{Stats{Messages: 12509, RICMessages: 227, QueryProcessingLoad: 2076, StorageLoad: 1728, Answers: 8288, RewritesCreated: 9716, MaxNodeQPL: 255, ParticipatingNodes: 54,
			TrafficByTag: TagTraffic{RIC: 227, App: 12282}}, 0xa238b08d03877621},
		// Churn under parallel execution: membership changes run as
		// global events between sub-rounds, handovers land in worker
		// context, and the whole history still replays bit-identically.
		{Stats{Messages: 12572, RICMessages: 552, QueryProcessingLoad: 1607, StorageLoad: 1235, Answers: 8282, RewritesCreated: 9214, MaxNodeQPL: 156, ParticipatingNodes: 63,
			Joins: 19, Leaves: 22, Crashes: 10, HandoverMessages: 22, HandoverEntries: 296, MessagesRerouted: 2, MessagesBounced: 821, RewritesLost: 7, TuplesLost: 16,
			TrafficByTag: TagTraffic{RIC: 552, Churn: 22, App: 11998}}, 0x4209cc5b8b00c1f9},
	}
	for i, base := range parallelConfigs() {
		for wi, w := range []int{2, 4, 8} {
			opts := base
			opts.Workers = w
			st, d := goldenWorkload(opts)
			if st != golden[i].stats || d != golden[i].digest {
				if wi == 0 {
					t.Fatalf("config %d workers %d: replay drifted from parallel golden baseline:\ngot  %+v digest %x\nwant %+v digest %x",
						i, w, st, d, golden[i].stats, golden[i].digest)
				}
				t.Fatalf("config %d: digest depends on worker count: workers=%d gave %+v digest %x, want the workers=2 result %+v digest %x",
					i, w, st, d, golden[i].stats, golden[i].digest)
			}
		}
	}
}

// replicatedGoldenOpts is the crash-heavy replicated configuration the
// golden suite pins: unit hop delays (so serial and parallel runs share
// one event timeline), spontaneous churn tilted towards crashes, and
// ReplicationFactor 2 so every crash promotes instead of losing state.
func replicatedGoldenOpts(workers int) Options {
	return Options{
		Nodes: 96, Seed: 42, ReplicationFactor: 2, Workers: workers,
		Churn: ChurnOptions{
			JoinRate: 10, CrashRate: 30, Interval: 8, StabilizeInterval: 16, MinNodes: 48,
		},
	}
}

// goldenReplWorkload drives the mixed golden workload under the
// crash-heavy replicated configuration and digests the final state
// order-insensitively: per subscription, the sorted multiset of
// (time, row) answer strings, plus the stats fields replication
// guarantees — the loss counters (which must stay zero) and the
// replication machinery's own counts. Intra-tick delivery order is the
// only thing that differs between the serial engine and the parallel
// barrier schedule here (unit delays, RIC placement: no random draws),
// so the digest is pinned once across Workers ∈ {1, 2, 4, 8}.
func goldenReplWorkload(opts Options) (Stats, uint64) {
	net := MustNetwork(opts)
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	net.MustDefineRelation("T", "A", "B")

	subs := []*Subscription{
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A"),
		net.MustSubscribe("select R.B, T.B from R,S,T where R.A=S.A and S.B=T.B"),
		net.MustSubscribe("select distinct S.B from R,S where R.A=S.A"),
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A within 40 tuples"),
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A within 64 ticks tumbling"),
		net.MustSubscribe("select R.A, count(*), sum(S.B) from R,S where R.A=S.A group by R.A"),
	}
	skew := []int{0, 0, 0, 1, 1, 2, 3, 4}
	for i := 0; i < 40; i++ {
		net.MustPublish("R", skew[i%8], i)
		net.MustPublish("S", skew[(i+1)%8], i%6)
		if i%3 == 0 {
			net.MustPublish("T", skew[i%8], (i+2)%6)
		}
		net.Run()
	}
	for i := 0; i < 30; i++ {
		net.MustPublish("R", i%5, i)
		net.MustPublish("S", i%5, i%4)
	}
	subs = append(subs, net.MustSubscribe("select R.A, S.B from R,S where R.B=S.B"))
	net.RunFor(10)
	for i := 0; i < 20; i++ {
		net.MustPublish("T", i%5, i%4)
	}
	net.Run()

	st := net.Stats()
	h := fnv.New64a()
	for _, s := range subs {
		fmt.Fprintf(h, "[%s]", s.SQL)
		var rows []string
		for _, a := range s.Answers() {
			row := fmt.Sprintf("%d:", a.At)
			for _, v := range a.Row {
				row += v.String() + ","
			}
			rows = append(rows, row)
		}
		sort.Strings(rows)
		for _, r := range rows {
			fmt.Fprintf(h, "%s;", r)
		}
		for _, a := range s.AggregateRows() {
			fmt.Fprintf(h, "e%d:", a.Epoch)
			for _, v := range a.Row {
				fmt.Fprintf(h, "%s,", v.String())
			}
			fmt.Fprint(h, ";")
		}
	}
	fmt.Fprintf(h, "|crashes=%d lost=%d/%d/%d/%d repl=%d/%d/%d/%d",
		st.Crashes, st.QueriesLost, st.RewritesLost, st.TuplesLost, st.AggStateLost,
		st.ReplUpdates, st.ReplOps, st.ReplSyncs, st.ReplPromotions)
	return st, h.Sum64()
}

// TestGoldenDeterminismReplicated pins the crash-heavy replicated
// configuration: the digest and stats must be bit-identical across the
// serial engine and every parallel worker count, every crash must
// promote rather than lose state (the durability acceptance criterion:
// RewritesLost == TuplesLost == AggStateLost == 0 with crashes > 0),
// and the whole history must replay identically run over run.
func TestGoldenDeterminismReplicated(t *testing.T) {
	// Golden value captured when durable replication was introduced
	// (and recaptured when pending placement walks joined the mirrored
	// state, then again when submission-time walks gained their own
	// coordinator-context flush).
	const goldenDigest = uint64(0xbe639da08b22928a)
	var pinned Stats
	for wi, w := range []int{1, 2, 4, 8} {
		st, d := goldenReplWorkload(replicatedGoldenOpts(w))
		if st.Crashes == 0 {
			t.Fatal("replicated golden drove no crashes; churn config too weak")
		}
		if st.RewritesLost != 0 || st.TuplesLost != 0 || st.AggStateLost != 0 {
			t.Fatalf("workers %d: replicated crashes lost state: rewrites %d, tuples %d, agg %d",
				w, st.RewritesLost, st.TuplesLost, st.AggStateLost)
		}
		if st.ReplPromotions == 0 || st.ReplicationMessages == 0 {
			t.Fatalf("workers %d: replication machinery unused (promotions %d, messages %d)",
				w, st.ReplPromotions, st.ReplicationMessages)
		}
		if wi == 0 {
			pinned = st
			if d != goldenDigest {
				t.Fatalf("replicated golden drifted: digest %#x, want %#x (stats %+v)", d, goldenDigest, st)
			}
			continue
		}
		if st != pinned || d != goldenDigest {
			t.Fatalf("workers %d: replicated golden depends on worker count:\ngot  %+v digest %#x\nwant %+v digest %#x",
				w, st, d, pinned, goldenDigest)
		}
	}
}
