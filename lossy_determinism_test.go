package rjoin

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"
)

// maskTransport zeroes the transport-accounting fields of a Stats
// snapshot. The all-zero fault plan runs every send through the ARQ
// machinery, whose acks and spurious retransmits are real work — but
// work that is deliberately charged to its own counters precisely so
// the paper's workload metrics stay comparable. Masking them is what
// makes "faults-rate-0.0 equals faults-off" a meaningful equation over
// the rest of the struct.
func maskTransport(st Stats) Stats {
	st.Dropped, st.Duplicated, st.Retransmits, st.AckMessages, st.Abandoned = 0, 0, 0, 0, 0
	return st
}

// TestFaultStreamIsolation is the RNG-isolation regression test: on a
// static ring, a fault plan with every rate zero and no partitions must
// reproduce the faults-off golden run byte-for-byte — same
// order-sensitive answer digest (delivery times included), same
// workload stats. Fault-machinery randomness comes only from dedicated
// per-node streams and transport work is background, so flipping the
// machinery on cannot move a single application event. The churn golden
// config is deliberately absent: once nodes die, reliable mode recovers
// in-flight messages through sender-side escalation instead of
// receiver-side bouncing, which is a different (still exact) schedule.
func TestFaultStreamIsolation(t *testing.T) {
	configs := []Options{
		{Nodes: 96, Seed: 42},
		{Nodes: 96, Seed: 42, BatchWindow: 4, AttrReplicas: 2, EnableMigration: true, MaxHopDelay: 3},
		{Nodes: 96, Seed: 42, Workers: 4},
		{Nodes: 96, Seed: 42, ReplicationFactor: 2},
	}
	for i, base := range configs {
		off, offDigest := goldenWorkload(base)
		lossy := base
		lossy.Faults = &FaultOptions{}
		zero, zeroDigest := goldenWorkload(lossy)
		if zeroDigest != offDigest {
			t.Fatalf("config %d: zero-rate fault plan changed the answer schedule: digest %x, want %x",
				i, zeroDigest, offDigest)
		}
		if maskTransport(zero) != off {
			t.Fatalf("config %d: zero-rate fault plan changed workload stats:\ngot  %+v\nwant %+v",
				i, maskTransport(zero), off)
		}
		if zero.Dropped != 0 || zero.Duplicated != 0 || zero.Abandoned != 0 {
			t.Fatalf("config %d: zero-rate plan injected faults: %+v", i, zero)
		}
	}
}

// lossyGoldenOpts is the faulty golden configuration: a static
// replicated ring under the acceptance-criterion fault plan — ten
// percent drops, duplication, delay spikes and one scheduled
// partition/heal cycle splitting off the first third of the ring.
func lossyGoldenOpts(workers int) Options {
	side := make([]int, 32)
	for i := range side {
		side[i] = i
	}
	return Options{
		Nodes: 96, Seed: 42, ReplicationFactor: 2, Workers: workers,
		Faults: &FaultOptions{
			DropProb: 0.10, DupProb: 0.05, SpikeProb: 0.05, SpikeMax: 4,
			Partitions: []FaultPartition{{Start: 40, End: 160, Side: side}},
		},
	}
}

// goldenLossyWorkload drives an unwindowed mixed workload — plain,
// three-way, DISTINCT and grouped-aggregate queries — across the fault
// plan and digests final state order-insensitively: per subscription
// the sorted multiset of answer rows (values only; faults legitimately
// move delivery times) plus the sorted aggregate views. Exactly-once
// delivery makes that digest a pure function of the published tuples,
// which is what lets one pinned value hold across the serial engine
// and every parallel worker count even though their fault schedules
// differ. Windowed queries are deliberately absent: a window's content
// is defined by arrival order, which faults reorder.
func goldenLossyWorkload(opts Options) (Stats, uint64) {
	net := MustNetwork(opts)
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	net.MustDefineRelation("T", "A", "B")

	subs := []*Subscription{
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A"),
		net.MustSubscribe("select R.B, T.B from R,S,T where R.A=S.A and S.B=T.B"),
		net.MustSubscribe("select distinct S.B from R,S where R.A=S.A"),
		net.MustSubscribe("select R.A, count(*), sum(S.B) from R,S where R.A=S.A group by R.A"),
	}
	skew := []int{0, 0, 0, 1, 1, 2, 3, 4}
	for i := 0; i < 40; i++ {
		net.MustPublish("R", skew[i%8], i)
		net.MustPublish("S", skew[(i+1)%8], i%6)
		if i%3 == 0 {
			net.MustPublish("T", skew[i%8], (i+2)%6)
		}
		// Short slices keep tuples in flight across the partition
		// window; the occasional full Run drains retransmit ladders.
		if i%8 == 7 {
			net.Run()
		} else {
			net.RunFor(4)
		}
	}
	net.Run()

	h := fnv.New64a()
	for _, s := range subs {
		fmt.Fprintf(h, "[%s]", s.SQL)
		var rows []string
		for _, a := range s.Answers() {
			row := ""
			for _, v := range a.Row {
				row += v.String() + ","
			}
			rows = append(rows, row)
		}
		sort.Strings(rows)
		for _, r := range rows {
			fmt.Fprintf(h, "%s;", r)
		}
		for _, a := range s.AggregateRows() {
			fmt.Fprintf(h, "e%d:", a.Epoch)
			for _, v := range a.Row {
				fmt.Fprintf(h, "%s,", v.String())
			}
			fmt.Fprint(h, ";")
		}
	}
	return net.Stats(), h.Sum64()
}

// TestGoldenDeterminismLossy pins the faulty golden: the
// order-insensitive digest must be bit-identical across the serial
// engine and Workers ∈ {2, 4, 8}, the full stats must be bit-identical
// within the parallel worker counts (serial draws its base schedule
// from a shared source, so its fault alignment differs), every run must
// replay identically, faults must actually fire, and nothing may be
// lost or abandoned.
func TestGoldenDeterminismLossy(t *testing.T) {
	// Golden value captured when unreliable-network mode was introduced.
	const goldenDigest = uint64(0xec96ed785f6fb3a8)
	var pinnedPar Stats
	for wi, w := range []int{1, 2, 4, 8} {
		st, d := goldenLossyWorkload(lossyGoldenOpts(w))
		if d != goldenDigest {
			t.Fatalf("workers %d: lossy golden digest %#x, want %#x (stats %+v)", w, d, goldenDigest, st)
		}
		if st.Dropped == 0 || st.Duplicated == 0 || st.Retransmits == 0 || st.AckMessages == 0 {
			t.Fatalf("workers %d: fault machinery idle: %+v", w, st)
		}
		if st.Abandoned != 0 {
			t.Fatalf("workers %d: %d messages abandoned", w, st.Abandoned)
		}
		if st.AggStateLost != 0 {
			t.Fatalf("workers %d: %d aggregation partials lost", w, st.AggStateLost)
		}
		st2, d2 := goldenLossyWorkload(lossyGoldenOpts(w))
		if st != st2 || d != d2 {
			t.Fatalf("workers %d: same seed diverged:\nrun1 %+v digest %x\nrun2 %+v digest %x", w, st, d, st2, d2)
		}
		switch wi {
		case 1:
			pinnedPar = st
		case 2, 3:
			if st != pinnedPar {
				t.Fatalf("workers %d: faulty stats depend on worker count:\ngot  %+v\nwant %+v", w, st, pinnedPar)
			}
		}
	}
}
