// Command rjoin-demo runs the paper's Figure 1 scenario step by step on
// a simulated overlay, narrating each event: the 4-way join query is
// submitted, four tuples arrive, the query is recursively rewritten and
// re-indexed across nodes, and the answer (S.B=6, M.A=9) reaches the
// submitting node.
//
// With -fig lossy it instead runs the unreliable-network figure (the
// same experiment rjoin-experiments -fig lossy regenerates, at demo
// scale): recall, duplication and retransmit overhead swept over
// per-transmission drop rates, with a partition/heal cycle riding
// along. -fig sharing runs the multi-query sharing figure the same
// way: stored state and rewriting work per query as the duplicate
// ratio sweeps 0-90%, with every subscriber certified exact.
// With -lossy, the Figure 1 walkthrough itself runs on an
// unreliable overlay — a 20% drop rate masked by the reliable channels
// — and reports the fault counters next to the usual stats.
//
// Observability: -trace FILE writes the walkthrough's causal trace as a
// Chrome trace-event file (one lane per node; load it at
// https://ui.perfetto.dev), -metrics-csv FILE the windowed rate series.
// -pprof ADDR serves net/http/pprof and expvar (live network stats
// under /debug/vars, per-query placement profiles under
// rjoin.profile) on ADDR and keeps the process alive after the
// walkthrough so the endpoints can be scraped. -explain turns on the
// placement profiler and answer provenance, prints each step's EXPLAIN
// ANALYZE report after the final event, and annotates every delivered
// answer with the base tuples it joined.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"rjoin"
	"rjoin/internal/experiments"
	"rjoin/internal/metrics"
)

func main() {
	nodes := flag.Int("nodes", 64, "overlay size")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "event-engine worker threads (0/1 serial, >=2 deterministic parallel)")
	lossy := flag.Bool("lossy", false, "run the Figure 1 scenario on an unreliable overlay (20% drop, duplication, spikes)")
	fig := flag.String("fig", "", `figure to run instead of the demo ("lossy" or "sharing")`)
	traceFile := flag.String("trace", "", "write the walkthrough's Chrome/Perfetto trace to FILE")
	metricsFile := flag.String("metrics-csv", "", "write the walkthrough's rate-series CSV to FILE")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on ADDR (e.g. localhost:6060) and stay alive")
	explain := flag.Bool("explain", false, "profile placements and provenance; print EXPLAIN ANALYZE and per-answer lineage")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "rjoin-demo: pprof: %v\n", err)
			}
		}()
	}

	if *fig != "" {
		figRunners := map[string]func(experiments.Params) []*metrics.Table{
			"lossy":   experiments.FigLossy,
			"sharing": experiments.FigSharing,
		}
		runner, ok := figRunners[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "rjoin-demo: unknown figure %q (\"lossy\" or \"sharing\"; use rjoin-experiments for the rest)\n", *fig)
			os.Exit(2)
		}
		p := experiments.Default(0.15)
		p.Nodes = *nodes * 2 // demo-sized overlay, but big enough for a meaningful split
		p.Queries = 200
		p.Seed = *seed
		p.Workers = *workers
		for _, t := range runner(p) {
			t.WriteTo(os.Stdout)
			fmt.Println()
		}
		return
	}

	opts := rjoin.Options{Nodes: *nodes, Seed: *seed, Workers: *workers}
	if *lossy {
		opts.ReplicationFactor = 2
		opts.Faults = &rjoin.FaultOptions{DropProb: 0.20, DupProb: 0.05, SpikeProb: 0.05, SpikeMax: 4}
	}
	if *traceFile != "" {
		opts.Trace = &rjoin.TraceOptions{}
	}
	if *metricsFile != "" {
		opts.Metrics = &rjoin.MetricsOptions{SampleInterval: 16}
	}
	if *explain {
		opts.Profile = &rjoin.ProfileOptions{SampleInterval: 16}
		opts.Provenance = true
	}
	net := rjoin.MustNetwork(opts)
	expvar.Publish("rjoin.stats", expvar.Func(func() any { return net.Stats() }))
	expvar.Publish("rjoin.profile", expvar.Func(func() any {
		var b strings.Builder
		if err := net.WriteProfileJSON(&b); err != nil {
			return map[string]string{"error": err.Error()}
		}
		return json.RawMessage(b.String())
	}))
	for _, rel := range []string{"R", "S", "J", "M"} {
		net.MustDefineRelation(rel, "A", "B", "C")
	}

	fmt.Printf("Event 1: node submits the continuous query\n")
	sql := "select S.B, M.A from R,S,J,M where R.A=S.A and S.B=J.B and J.C=M.C"
	fmt.Printf("  %s\n", sql)
	sub := net.MustSubscribe(sql)
	net.Run()
	report(net, sub)

	steps := []struct {
		desc string
		rel  string
		vals [3]int
	}{
		{"Event 2: tuple t1=(2,5,8) of R arrives; the query is rewritten to wait at S+A+'2'", "R", [3]int{2, 5, 8}},
		{"Event 3: tuple t2=(2,6,3) of S arrives; rewritten again, now waiting at J+B+'6'", "S", [3]int{2, 6, 3}},
		{"Event 4: tuple t3=(9,1,2) of M arrives early; stored at value level under M+C+'2'", "M", [3]int{9, 1, 2}},
		{"Event 5: tuple t4=(7,6,2) of J arrives; the final rewrite meets the stored t3", "J", [3]int{7, 6, 2}},
	}
	for _, s := range steps {
		fmt.Println(s.desc)
		net.MustPublish(s.rel, s.vals[0], s.vals[1], s.vals[2])
		net.Run()
		report(net, sub)
	}

	fmt.Println("Final answers:")
	for _, a := range sub.Answers() {
		fmt.Printf("  S.B=%s, M.A=%s (delivered at tick %d)\n", a.Row[0], a.Row[1], a.At)
		if *explain {
			for _, l := range a.Lineage {
				fmt.Printf("    <- tuple #%d from publisher %016x, joined at node %016x\n",
					l.Seq, l.Pub, l.Node)
			}
		}
	}
	if *explain {
		rep, err := sub.Explain()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rjoin-demo: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(rep.Text())
		fmt.Printf("explain digest: %#016x\n", rep.Digest())
	}
	st := net.Stats()
	fmt.Printf("\nNetwork stats: %d messages (%d for RIC), %d rewrites, QPL=%d, SL=%d over %d nodes\n",
		st.Messages, st.RICMessages, st.RewritesCreated,
		st.QueryProcessingLoad, st.StorageLoad, net.Nodes())
	if *lossy {
		fmt.Printf("Unreliable network: %d dropped, %d duplicated, masked by %d retransmits and %d acks (%d abandoned)\n",
			st.Dropped, st.Duplicated, st.Retransmits, st.AckMessages, st.Abandoned)
	}
	if *traceFile != "" {
		if err := writeTo(*traceFile, net.WriteTrace); err != nil {
			fmt.Fprintf(os.Stderr, "rjoin-demo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (open at https://ui.perfetto.dev)\n", *traceFile)
	}
	if *metricsFile != "" {
		if err := writeTo(*metricsFile, net.WriteMetricsCSV); err != nil {
			fmt.Fprintf(os.Stderr, "rjoin-demo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metricsFile)
	}
	if *pprofAddr != "" {
		fmt.Printf("pprof and expvar serving on http://%s/debug/ (Ctrl-C to exit)\n", *pprofAddr)
		select {}
	}
}

// writeTo streams one export into a freshly created file.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func report(net *rjoin.Network, sub *rjoin.Subscription) {
	st := net.Stats()
	fmt.Printf("  [tick %4d] messages=%d rewrites=%d answers=%d\n",
		net.Now(), st.Messages, st.RewritesCreated, sub.Count())
}
