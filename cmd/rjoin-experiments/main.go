// Command rjoin-experiments regenerates the figures of the paper's
// experimental analysis (Section 8) and prints each as a table of the
// series the paper plots.
//
// Usage:
//
//	rjoin-experiments [-fig N] [-scale S] [-nodes N] [-queries Q] [-seed S]
//
// With no -fig, every figure runs in paper order. The default scale is
// 0.25 (a quarter of the paper's query and tuple counts at the full
// 1000-node overlay) so the whole suite completes on a laptop in
// minutes; pass -scale 1 for the paper's exact workload sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rjoin/internal/experiments"
	"rjoin/internal/metrics"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (2-9, or churn); empty runs all")
	scale := flag.Float64("scale", 0.25, "workload scale in (0,1]: fraction of the paper's query/tuple counts")
	nodes := flag.Int("nodes", 1000, "overlay size")
	queries := flag.Int("queries", 20000, "continuous queries before scaling")
	seed := flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
	flag.Parse()

	p := experiments.Default(*scale)
	p.Nodes = *nodes
	p.Queries = *queries
	p.Seed = *seed

	runners := map[string]func(experiments.Params) []*metrics.Table{
		"2":     experiments.Fig2,
		"3":     experiments.Fig3,
		"4":     experiments.Fig4,
		"5":     experiments.Fig5,
		"6":     experiments.Fig6,
		"7":     experiments.Fig7,
		"8":     experiments.Fig8,
		"9":     experiments.Fig9,
		"churn": experiments.FigChurn,
	}

	var figs []string
	if *fig == "" {
		// Figures 7 and 8 share one experiment run; the sentinel "7+8"
		// computes both together. "churn" is this reproduction's own
		// dynamic-membership extension.
		figs = []string{"2", "3", "4", "5", "6", "7+8", "9", "churn"}
	} else {
		if _, ok := runners[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "rjoin-experiments: unknown figure %q (want 2-9 or churn)\n", *fig)
			os.Exit(2)
		}
		figs = []string{*fig}
	}

	fmt.Printf("# RJoin experiments  nodes=%d queries=%d scale=%.2f seed=%d\n\n",
		p.Nodes, p.Queries, p.Scale, p.Seed)
	for _, f := range figs {
		start := time.Now()
		if f == "7+8" {
			f7, f8 := experiments.Fig7And8(p)
			printTables(append(f7, f8...), start)
			continue
		}
		printTables(runners[f](p), start)
	}
}

func printTables(tabs []*metrics.Table, start time.Time) {
	for _, t := range tabs {
		t.WriteTo(os.Stdout)
		fmt.Println()
	}
	fmt.Printf("(elapsed %.1fs)\n\n", time.Since(start).Seconds())
}
