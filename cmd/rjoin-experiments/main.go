// Command rjoin-experiments regenerates the figures of the paper's
// experimental analysis (Section 8) and prints each as a table of the
// series the paper plots.
//
// Usage:
//
//	rjoin-experiments [-fig N] [-scale S] [-nodes N] [-queries Q] [-seed S] [-workers W] [-csv DIR]
//
// With no -fig, every figure runs in paper order. The default scale is
// 0.25 (a quarter of the paper's query and tuple counts at the full
// 1000-node overlay) so the whole suite completes on a laptop in
// minutes; pass -scale 1 for the paper's exact workload sizes. With
// -workers >= 2 experiments run on the deterministic parallel event
// engine (runs needing StrategyWorst's cross-shard oracle stay serial).
// With -csv, every table is additionally written to DIR as one CSV file
// named after its title, plottable without scraping the text output.
//
// The latency figure is instrumented end to end; -trace and
// -metrics-csv export its raw observability artifacts — a Chrome
// trace-event file (load it at https://ui.perfetto.dev) and the full
// windowed rate-series CSV behind the figure's tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rjoin/internal/experiments"
	"rjoin/internal/metrics"
	"rjoin/internal/obs"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (2-9, churn, agg, recovery, lossy or sharing); empty runs all")
	scale := flag.Float64("scale", 0.25, "workload scale in (0,1]: fraction of the paper's query/tuple counts")
	nodes := flag.Int("nodes", 1000, "overlay size")
	queries := flag.Int("queries", 20000, "continuous queries before scaling")
	seed := flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
	workers := flag.Int("workers", 0, "event-engine worker threads (0/1 serial, >=2 deterministic parallel)")
	csvDir := flag.String("csv", "", "directory to additionally write each table to as CSV")
	traceFile := flag.String("trace", "", "write the latency figure's Chrome/Perfetto trace to FILE")
	metricsFile := flag.String("metrics-csv", "", "write the latency figure's rate-series CSV to FILE")
	flag.Parse()

	p := experiments.Default(*scale)
	p.Nodes = *nodes
	p.Queries = *queries
	p.Seed = *seed
	p.Workers = *workers

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rjoin-experiments: %v\n", err)
			os.Exit(1)
		}
	}

	runners := map[string]func(experiments.Params) []*metrics.Table{
		"2":        experiments.Fig2,
		"3":        experiments.Fig3,
		"4":        experiments.Fig4,
		"5":        experiments.Fig5,
		"6":        experiments.Fig6,
		"7":        experiments.Fig7,
		"8":        experiments.Fig8,
		"9":        experiments.Fig9,
		"churn":    experiments.FigChurn,
		"agg":      experiments.FigAgg,
		"recovery": experiments.FigRecovery,
		"lossy":    experiments.FigLossy,
		"latency":  experiments.FigLatency,
		"sharing":  experiments.FigSharing,
		"explain":  experiments.FigExplain,
	}

	var figs []string
	if *fig == "" {
		// Figures 7 and 8 share one experiment run; the sentinel "7+8"
		// computes both together. "churn", "agg", "recovery", "lossy",
		// "latency", "sharing" and "explain" are this reproduction's
		// own extensions: dynamic membership, in-network aggregation,
		// durable state replication, reliable delivery over an
		// unreliable network, the observability figure, multi-query
		// sharing and per-query introspection.
		figs = []string{"2", "3", "4", "5", "6", "7+8", "9", "churn", "agg", "recovery", "lossy", "latency", "sharing", "explain"}
	} else {
		if _, ok := runners[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "rjoin-experiments: unknown figure %q (want 2-9, churn, agg, recovery, lossy, latency, sharing or explain)\n", *fig)
			os.Exit(2)
		}
		figs = []string{*fig}
	}

	fmt.Printf("# RJoin experiments  nodes=%d queries=%d scale=%.2f seed=%d workers=%d\n\n",
		p.Nodes, p.Queries, p.Scale, p.Seed, p.Workers)
	for _, f := range figs {
		start := time.Now()
		if f == "7+8" {
			f7, f8 := experiments.Fig7And8(p)
			printTables(append(f7, f8...), start, *csvDir)
			continue
		}
		if f == "latency" && (*traceFile != "" || *metricsFile != "") {
			tabs, tr, om := experiments.FigLatencyObs(p)
			printTables(tabs, start, *csvDir)
			if err := writeArtifacts(*traceFile, *metricsFile, tr, om); err != nil {
				fmt.Fprintf(os.Stderr, "rjoin-experiments: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		printTables(runners[f](p), start, *csvDir)
	}
}

// writeArtifacts exports the latency figure's raw observability data:
// the Chrome/Perfetto trace and the windowed rate-series CSV.
func writeArtifacts(traceFile, metricsFile string, tr *obs.Tracer, om *obs.Metrics) error {
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (open at https://ui.perfetto.dev)\n", traceFile)
	}
	if metricsFile != "" {
		f, err := os.Create(metricsFile)
		if err != nil {
			return err
		}
		if err := om.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", metricsFile)
	}
	return nil
}

func printTables(tabs []*metrics.Table, start time.Time, csvDir string) {
	for _, t := range tabs {
		t.WriteTo(os.Stdout)
		fmt.Println()
		if csvDir != "" {
			if err := writeCSV(csvDir, t); err != nil {
				fmt.Fprintf(os.Stderr, "rjoin-experiments: %v\n", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("(elapsed %.1fs)\n\n", time.Since(start).Seconds())
}

// writeCSV stores one table as <dir>/<slug-of-title>.csv.
func writeCSV(dir string, t *metrics.Table) error {
	f, err := os.Create(filepath.Join(dir, slug(t.Title)+".csv"))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// slug reduces a table title to a file-name-safe form: lower case,
// alphanumeric runs joined by dashes.
func slug(title string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}
