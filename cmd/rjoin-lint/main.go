// Command rjoin-lint statically enforces the engine's determinism
// contract: the invariants the golden-digest replay tests certify
// dynamically are checked here at the source level, before any config
// has to trip them.
//
// Usage:
//
//	go run ./cmd/rjoin-lint ./...
//
// The suite (see DESIGN.md, "Determinism invariants"):
//
//	detrange   map iteration order escaping into observable effects
//	novtime    wall-clock reads and global math/rand draws
//	poolsafe   use-after-release / double release of pooled values
//	shardsafe  per-shard lane state touched outside the barrier rules
//
// Exit status: 0 clean, 1 findings, 2 load/internal error.
package main

import (
	"flag"
	"fmt"
	"os"

	"rjoin/internal/lint/detrange"
	"rjoin/internal/lint/lintdriver"
	"rjoin/internal/lint/novtime"
	"rjoin/internal/lint/poolsafe"
	"rjoin/internal/lint/shardsafe"

	"golang.org/x/tools/go/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rjoin-lint [packages]\n\nRuns the determinism lint suite (detrange, novtime, poolsafe, shardsafe)\nover the given package patterns (default ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := []*analysis.Analyzer{
		detrange.Analyzer,
		novtime.Analyzer,
		poolsafe.Analyzer,
		shardsafe.Analyzer,
	}

	diags, err := lintdriver.Run(patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rjoin-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rjoin-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
