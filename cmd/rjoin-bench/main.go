// Command rjoin-bench runs the repository's hot-path benchmarks as a
// standalone harness and writes machine-readable baselines: one
// BENCH_<area>.json per area with the median ns/op and allocs/op over
// repeated runs, so performance trajectories live in version-controlled
// artifacts instead of CHANGES.md prose.
//
// Usage:
//
//	rjoin-bench [-out DIR] [-runs N]
//
// Areas:
//
//	publish — the Procedure 1 publish cascade on a loaded network,
//	          plain and with durable replication at factor 2
//	          (BENCH_publish.json)
//	engine  — raw event-engine throughput on a mixed workload, the
//	          serial engine and Workers ∈ {2, 4, 8}
//	          (BENCH_engine.json)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"rjoin"
)

// result is one benchmark's aggregated measurement.
type result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	MedianNsOp  float64 `json:"median_ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// area is one BENCH_<name>.json file.
type area struct {
	Area       string   `json:"area"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Timestamp  string   `json:"timestamp"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", ".", "directory to write BENCH_<area>.json files into")
	runs := flag.Int("runs", 5, "benchmark repetitions; the median ns/op is reported")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "rjoin-bench: %v\n", err)
		os.Exit(1)
	}

	areas := []struct {
		name    string
		benches []namedBench
	}{
		{"publish", []namedBench{
			{"PublishTuple", publishBench(0)},
			{"PublishTupleReplicated", publishBench(2)},
		}},
		{"engine", []namedBench{
			{"EngineThroughput", engineBench(0)},
			{"EngineThroughputWorkers2", engineBench(2)},
			{"EngineThroughputWorkers4", engineBench(4)},
			{"EngineThroughputWorkers8", engineBench(8)},
		}},
	}
	for _, a := range areas {
		doc := area{
			Area:       a.name,
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
		}
		for _, nb := range a.benches {
			doc.Benchmarks = append(doc.Benchmarks, measure(nb, *runs))
		}
		path := filepath.Join(*out, "BENCH_"+a.name+".json")
		if err := writeJSON(path, doc); err != nil {
			fmt.Fprintf(os.Stderr, "rjoin-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
		for _, b := range doc.Benchmarks {
			fmt.Printf("  %-26s %12.0f ns/op  %6d allocs/op  %8d B/op\n",
				b.Name, b.MedianNsOp, b.AllocsPerOp, b.BytesPerOp)
		}
	}
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// measure runs one benchmark `runs` times and reports the median ns/op
// run's measurements (median resists the warmup and scheduling noise a
// mean would average in).
func measure(nb namedBench, runs int) result {
	type sample struct {
		ns     float64
		allocs int64
		bytes  int64
		n      int
	}
	samples := make([]sample, 0, runs)
	for i := 0; i < runs; i++ {
		r := testing.Benchmark(nb.fn)
		samples = append(samples, sample{
			ns:     float64(r.NsPerOp()),
			allocs: r.AllocsPerOp(),
			bytes:  r.AllocedBytesPerOp(),
			n:      r.N,
		})
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].ns < samples[j].ns })
	med := samples[len(samples)/2]
	return result{
		Name:        nb.name,
		Runs:        runs,
		MedianNsOp:  med.ns,
		AllocsPerOp: med.allocs,
		BytesPerOp:  med.bytes,
		Iterations:  med.n,
	}
}

// publishBench mirrors BenchmarkPublishTuple: the end-to-end cost of
// one published tuple plus all triggered processing on a network
// carrying 100 identical continuous queries, optionally with durable
// replication.
func publishBench(replication int) func(b *testing.B) {
	return func(b *testing.B) {
		net := rjoin.MustNetwork(rjoin.Options{Nodes: 128, Seed: 11, ReplicationFactor: replication})
		net.MustDefineRelation("R", "A", "B")
		net.MustDefineRelation("S", "A", "B")
		for i := 0; i < 100; i++ {
			net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A")
		}
		net.Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.MustPublish("R", i%50, i)
			net.Run()
		}
	}
}

// engineBench mirrors BenchmarkEngineThroughput(Workers): bursts of
// publications drain together so every virtual tick has real width for
// the parallel engine's sub-rounds; workers 0 is the serial engine.
func engineBench(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		net := rjoin.MustNetwork(rjoin.Options{Nodes: 256, Seed: 13, Workers: workers})
		net.MustDefineRelation("R", "A", "B")
		net.MustDefineRelation("S", "A", "B")
		for i := 0; i < 100; i++ {
			net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A")
		}
		net.Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 16; j++ {
				net.MustPublish("R", (i*16+j)%10, i)
				net.MustPublish("S", (i*16+j)%10, i)
			}
			net.Run()
		}
	}
}

func writeJSON(path string, doc area) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
