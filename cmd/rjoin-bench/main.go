// Command rjoin-bench runs the repository's hot-path benchmarks as a
// standalone harness and writes machine-readable baselines: one
// BENCH_<area>.json per area with the median ns/op and allocs/op over
// repeated runs, so performance trajectories live in version-controlled
// artifacts instead of CHANGES.md prose.
//
// Usage:
//
//	rjoin-bench [-out DIR] [-runs N] [-baseline DIR] [-pprof ADDR] [-trace FILE] [-metrics-csv FILE]
//
// Areas:
//
//	publish — the Procedure 1 publish cascade on a loaded network,
//	          plain and with durable replication at factor 2
//	          (BENCH_publish.json)
//	engine  — raw event-engine throughput on a mixed workload, the
//	          serial engine and Workers ∈ {2, 4, 8}
//	          (BENCH_engine.json)
//	submit  — SubmitQuery cost with multi-query sharing enabled at
//	          duplicate ratios 0%, 50% and 90%; each run also records
//	          the stored-query footprint per submission as the
//	          "storedq/op" extra metric (BENCH_submit.json)
//
// Each file carries environment metadata (Go version, GOOS/GOARCH,
// GOMAXPROCS, CPU count, VCS revision) so baselines from different
// machines are never compared blindly. With -baseline DIR the run is
// compared against the committed BENCH_*.json files there, warning on
// any median ns/op more than 15% above the baseline. -pprof ADDR
// serves net/http/pprof and expvar during the run so the benchmarks
// can be profiled live. -trace/-metrics-csv run one extra instrumented
// (untimed) pass of the publish workload and export its Chrome/Perfetto
// trace and rate-series CSV.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"testing"
	"time"

	"rjoin"
)

// result is one benchmark's aggregated measurement.
type result struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	MedianNsOp  float64            `json:"median_ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Iterations  int                `json:"iterations"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// area is one BENCH_<name>.json file.
type area struct {
	Area       string   `json:"area"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	GitCommit  string   `json:"git_commit,omitempty"`
	Timestamp  string   `json:"timestamp"`
	Benchmarks []result `json:"benchmarks"`
}

// gitCommit reports the VCS revision stamped into the binary at build
// time ("" for builds outside a repository or with -buildvcs=false).
func gitCommit() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	return rev + dirty
}

func main() {
	out := flag.String("out", ".", "directory to write BENCH_<area>.json files into")
	runs := flag.Int("runs", 5, "benchmark repetitions; the median ns/op is reported")
	baseline := flag.String("baseline", "", "directory with committed BENCH_<area>.json files to compare against")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on ADDR (e.g. localhost:6060) during the run")
	traceFile := flag.String("trace", "", "write an instrumented publish-workload Chrome/Perfetto trace to FILE")
	metricsFile := flag.String("metrics-csv", "", "write the instrumented publish workload's rate-series CSV to FILE")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "rjoin-bench: %v\n", err)
		os.Exit(1)
	}

	current := expvar.NewString("rjoin.bench.current")
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "rjoin-bench: pprof: %v\n", err)
			}
		}()
		fmt.Printf("pprof and expvar serving on http://%s/debug/\n", *pprofAddr)
	}

	areas := []struct {
		name    string
		benches []namedBench
	}{
		{"publish", []namedBench{
			{"PublishTuple", publishBench(0)},
			{"PublishTupleReplicated", publishBench(2)},
		}},
		{"engine", []namedBench{
			{"EngineThroughput", engineBench(0)},
			{"EngineThroughputWorkers2", engineBench(2)},
			{"EngineThroughputWorkers4", engineBench(4)},
			{"EngineThroughputWorkers8", engineBench(8)},
		}},
		{"submit", []namedBench{
			{"SubmitQueryDup0", submitBench(0)},
			{"SubmitQueryDup50", submitBench(0.5)},
			{"SubmitQueryDup90", submitBench(0.9)},
		}},
	}
	commit := gitCommit()
	for _, a := range areas {
		doc := area{
			Area:       a.name,
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GitCommit:  commit,
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
		}
		for _, nb := range a.benches {
			current.Set(a.name + "/" + nb.name)
			doc.Benchmarks = append(doc.Benchmarks, measure(nb, *runs))
		}
		path := filepath.Join(*out, "BENCH_"+a.name+".json")
		if err := writeJSON(path, doc); err != nil {
			fmt.Fprintf(os.Stderr, "rjoin-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
		for _, b := range doc.Benchmarks {
			fmt.Printf("  %-26s %12.0f ns/op  %6d allocs/op  %8d B/op\n",
				b.Name, b.MedianNsOp, b.AllocsPerOp, b.BytesPerOp)
		}
		if *baseline != "" {
			compareBaseline(filepath.Join(*baseline, "BENCH_"+a.name+".json"), doc)
		}
	}

	if *traceFile != "" || *metricsFile != "" {
		if err := obsArtifacts(*traceFile, *metricsFile); err != nil {
			fmt.Fprintf(os.Stderr, "rjoin-bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// compareBaseline warns (without failing) about benchmarks whose median
// ns/op regressed by more than 15% against the committed baseline.
// Baselines recorded on a different Go version or architecture are
// compared anyway but flagged, since the delta may be environmental.
func compareBaseline(path string, cur area) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rjoin-bench: baseline: %v (skipping comparison)\n", err)
		return
	}
	var base area
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "rjoin-bench: baseline %s: %v (skipping comparison)\n", path, err)
		return
	}
	if base.GoVersion != cur.GoVersion || base.GOARCH != cur.GOARCH {
		fmt.Printf("  note: baseline recorded on %s/%s, this run is %s/%s\n",
			base.GoVersion, base.GOARCH, cur.GoVersion, cur.GOARCH)
	}
	byName := make(map[string]result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	for _, b := range cur.Benchmarks {
		ref, ok := byName[b.Name]
		if !ok || ref.MedianNsOp <= 0 {
			continue
		}
		delta := (b.MedianNsOp - ref.MedianNsOp) / ref.MedianNsOp
		switch {
		case delta > 0.15:
			fmt.Printf("  WARNING %-22s %+.1f%% vs baseline (%.0f -> %.0f ns/op)\n",
				b.Name, 100*delta, ref.MedianNsOp, b.MedianNsOp)
		default:
			fmt.Printf("  ok      %-22s %+.1f%% vs baseline\n", b.Name, 100*delta)
		}
	}
}

// obsArtifacts runs one untimed, instrumented pass of the publish
// workload and exports its observability artifacts.
func obsArtifacts(traceFile, metricsFile string) error {
	net := rjoin.MustNetwork(rjoin.Options{
		Nodes: 128, Seed: 11,
		Trace:   &rjoin.TraceOptions{},
		Metrics: &rjoin.MetricsOptions{},
	})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	for i := 0; i < 100; i++ {
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A")
	}
	net.Run()
	for i := 0; i < 512; i++ {
		net.MustPublish("R", i%50, i)
		net.MustPublish("S", i%50, i)
		if i%16 == 15 {
			net.Run()
		}
	}
	net.Run()
	if traceFile != "" {
		if err := writeTo(traceFile, net.WriteTrace); err != nil {
			return err
		}
		fmt.Printf("wrote %s (open at https://ui.perfetto.dev)\n", traceFile)
	}
	if metricsFile != "" {
		if err := writeTo(metricsFile, net.WriteMetricsCSV); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", metricsFile)
	}
	return nil
}

// writeTo streams one export into a freshly created file.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// measure runs one benchmark `runs` times and reports the median ns/op
// run's measurements (median resists the warmup and scheduling noise a
// mean would average in).
func measure(nb namedBench, runs int) result {
	type sample struct {
		ns     float64
		allocs int64
		bytes  int64
		n      int
		extra  map[string]float64
	}
	samples := make([]sample, 0, runs)
	for i := 0; i < runs; i++ {
		r := testing.Benchmark(nb.fn)
		s := sample{
			ns:     float64(r.NsPerOp()),
			allocs: r.AllocsPerOp(),
			bytes:  r.AllocedBytesPerOp(),
			n:      r.N,
		}
		if len(r.Extra) > 0 {
			s.extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				s.extra[k] = v
			}
		}
		samples = append(samples, s)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].ns < samples[j].ns })
	med := samples[len(samples)/2]
	return result{
		Name:        nb.name,
		Runs:        runs,
		MedianNsOp:  med.ns,
		AllocsPerOp: med.allocs,
		BytesPerOp:  med.bytes,
		Iterations:  med.n,
		Extra:       med.extra,
	}
}

// publishBench mirrors BenchmarkPublishTuple: the end-to-end cost of
// one published tuple plus all triggered processing on a network
// carrying 100 identical continuous queries, optionally with durable
// replication.
func publishBench(replication int) func(b *testing.B) {
	return func(b *testing.B) {
		net := rjoin.MustNetwork(rjoin.Options{Nodes: 128, Seed: 11, ReplicationFactor: replication})
		net.MustDefineRelation("R", "A", "B")
		net.MustDefineRelation("S", "A", "B")
		// Distinct window sizes keep the 100 standing queries in 100
		// distinct pipelines: exact-duplicate dedup would otherwise
		// collapse them into one and the bench would stop measuring
		// per-tuple cost against a populated query store.
		for i := 0; i < 100; i++ {
			net.MustSubscribe(fmt.Sprintf("select R.B, S.B from R,S where R.A=S.A within %d ticks", 1_000_000+i))
		}
		net.Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.MustPublish("R", i%50, i)
			net.Run()
		}
	}
}

// submitBench measures the end-to-end cost of one continuous-query
// subscription — parse, canonicalize, registry lookup, placement —
// with multi-query sharing enabled, at a controlled duplicate ratio.
// Fresh queries get distinct canonical forms via distinct window
// sizes; duplicates resubmit an earlier query in a clause-permuted
// rendering, so they exercise the canonicalization path rather than
// byte-identical string dedup. The stored-query footprint per
// submission rides along as the "storedq/op" extra metric: at high
// duplicate ratios sharing keeps it far below one.
func submitBench(dup float64) func(b *testing.B) {
	return func(b *testing.B) {
		net := rjoin.MustNetwork(rjoin.Options{Nodes: 128, Seed: 17, Sharing: true})
		net.MustDefineRelation("R", "A", "B")
		net.MustDefineRelation("S", "A", "B")
		rng := rand.New(rand.NewSource(17))
		var protos []string
		fresh := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var sql string
			if len(protos) > 0 && rng.Float64() < dup {
				sql = protos[rng.Intn(len(protos))]
			} else {
				fresh++
				sql = fmt.Sprintf("select R.B, S.B from R,S where R.A=S.A within %d ticks", 1000000+fresh)
				// The duplicate rendering permutes the clause order, so
				// resubmissions are byte-distinct equivalents.
				protos = append(protos, fmt.Sprintf("select R.B, S.B from S,R where S.A=R.A within %d ticks", 1000000+fresh))
			}
			net.MustSubscribe(sql)
			net.Run()
		}
		b.StopTimer()
		q, _, _ := net.Engine().StoredState()
		b.ReportMetric(float64(q)/float64(b.N), "storedq/op")
	}
}

// engineBench mirrors BenchmarkEngineThroughput(Workers): bursts of
// publications drain together so every virtual tick has real width for
// the parallel engine's sub-rounds; workers 0 is the serial engine.
func engineBench(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		net := rjoin.MustNetwork(rjoin.Options{Nodes: 256, Seed: 13, Workers: workers})
		net.MustDefineRelation("R", "A", "B")
		net.MustDefineRelation("S", "A", "B")
		// Distinct window sizes, as in publishBench: keep 100 standing
		// pipelines instead of one exact-dedup'd class.
		for i := 0; i < 100; i++ {
			net.MustSubscribe(fmt.Sprintf("select R.B, S.B from R,S where R.A=S.A within %d ticks", 1_000_000+i))
		}
		net.Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 16; j++ {
				net.MustPublish("R", (i*16+j)%10, i)
				net.MustPublish("S", (i*16+j)%10, i)
			}
			net.Run()
		}
	}
}

func writeJSON(path string, doc area) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
