package rjoin

import (
	"fmt"
	"strings"
	"testing"
)

func quickNet(t testing.TB, opts Options) *Network {
	t.Helper()
	if opts.Nodes == 0 {
		opts.Nodes = 48
	}
	n, err := NewNetwork(opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestQuickstartFlow(t *testing.T) {
	net := quickNet(t, Options{Seed: 1})
	net.MustDefineRelation("Trades", "Sym", "Px")
	net.MustDefineRelation("Quotes", "Sym", "Bid")
	sub := net.MustSubscribe(
		"select Trades.Px, Quotes.Bid from Trades,Quotes where Trades.Sym=Quotes.Sym")
	net.Run()
	net.MustPublish("Trades", 7, 101)
	net.MustPublish("Quotes", 7, 99)
	net.Run()
	ans := sub.Answers()
	if len(ans) != 1 {
		t.Fatalf("answers %v", ans)
	}
	if ans[0].Row[0].Int != 101 || ans[0].Row[1].Int != 99 {
		t.Fatalf("row %v", ans[0].Row)
	}
	if sub.Count() != 1 {
		t.Fatal("Count mismatch")
	}
}

func TestSubscribeRejectsBadSQL(t *testing.T) {
	net := quickNet(t, Options{Seed: 2})
	net.MustDefineRelation("R", "A")
	if _, err := net.Subscribe("select nonsense"); err == nil {
		t.Fatal("bad SQL accepted")
	}
	if _, err := net.Subscribe("select X.A from X,Y where X.A=Y.A"); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

func TestPublishValidation(t *testing.T) {
	net := quickNet(t, Options{Seed: 3})
	net.MustDefineRelation("R", "A", "B")
	if err := net.Publish("Missing", 1, 2); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if err := net.Publish("R", 1); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := net.Publish("R", 1, 3.14); err == nil {
		t.Fatal("float value accepted")
	}
	if err := net.Publish("R", 1, "x"); err != nil {
		t.Fatalf("mixed int/string rejected: %v", err)
	}
	if err := net.Publish("R", int64(5), Str("y")); err != nil {
		t.Fatalf("explicit types rejected: %v", err)
	}
}

func TestDefineRelationValidation(t *testing.T) {
	net := quickNet(t, Options{Seed: 4})
	if err := net.DefineRelation("R"); err == nil {
		t.Fatal("attribute-less relation accepted")
	}
	net.MustDefineRelation("R", "A")
	if err := net.DefineRelation("R", "B"); err == nil {
		t.Fatal("duplicate relation accepted")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (Stats, string) {
		net := quickNet(t, Options{Seed: 99})
		net.MustDefineRelation("R", "A", "B")
		net.MustDefineRelation("S", "A", "B")
		sub := net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A")
		net.Run()
		for i := 0; i < 20; i++ {
			net.MustPublish("R", i%3, i)
			net.MustPublish("S", i%3, 100+i)
		}
		net.Run()
		var sig strings.Builder
		for _, a := range sub.Answers() {
			fmt.Fprintf(&sig, "%v@%d;", a.Row, a.At)
		}
		return net.Stats(), sig.String()
	}
	s1, sig1 := run()
	s2, sig2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	if sig1 != sig2 {
		t.Fatal("answer streams differ across identical runs")
	}
}

func TestStatsPopulated(t *testing.T) {
	net := quickNet(t, Options{Seed: 5})
	net.MustDefineRelation("R", "A")
	net.MustDefineRelation("S", "A")
	net.MustSubscribe("select R.A, S.A from R,S where R.A=S.A")
	net.Run()
	for i := 0; i < 10; i++ {
		net.MustPublish("R", i%2)
		net.MustPublish("S", i%2)
	}
	net.Run()
	st := net.Stats()
	if st.Messages == 0 || st.QueryProcessingLoad == 0 || st.StorageLoad == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.Answers == 0 || st.RewritesCreated == 0 {
		t.Fatalf("no answers recorded: %+v", st)
	}
	if st.ParticipatingNodes == 0 || st.MaxNodeQPL == 0 {
		t.Fatalf("distribution stats empty: %+v", st)
	}
}

func TestWindowedSubscription(t *testing.T) {
	net := quickNet(t, Options{Seed: 6})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	sub := net.MustSubscribe(
		"select R.B, S.B from R,S where R.A=S.A within 3 tuples")
	net.Run()
	net.MustPublish("R", 1, 10)
	net.Run()
	net.MustPublish("S", 1, 20) // distance 2: joins
	net.Run()
	// Push R out of any future window with filler publications.
	net.MustDefineRelation("Junk", "X")
	for i := 0; i < 5; i++ {
		net.MustPublish("Junk", i)
		net.Run()
	}
	net.MustPublish("S", 1, 30) // far from R now
	net.Run()
	if sub.Count() != 1 {
		t.Fatalf("windowed subscription answers = %d, want 1", sub.Count())
	}
}

func TestRunForAdvancesClock(t *testing.T) {
	net := quickNet(t, Options{Seed: 7})
	before := net.Now()
	net.RunFor(500)
	if net.Now() != before+500 {
		t.Fatalf("clock %d, want %d", net.Now(), before+500)
	}
}

func TestMultiWayPublicAPI(t *testing.T) {
	net := quickNet(t, Options{Seed: 8})
	net.MustDefineRelation("R", "A", "B", "C")
	net.MustDefineRelation("S", "A", "B", "C")
	net.MustDefineRelation("J", "A", "B", "C")
	net.MustDefineRelation("M", "A", "B", "C")
	sub := net.MustSubscribe(
		"select S.B, M.A from R,S,J,M where R.A=S.A and S.B=J.B and J.C=M.C")
	net.Run()
	net.MustPublish("R", 2, 5, 8)
	net.Run()
	net.MustPublish("S", 2, 6, 3)
	net.Run()
	net.MustPublish("M", 9, 1, 2)
	net.Run()
	net.MustPublish("J", 7, 6, 2)
	net.Run()
	ans := sub.Answers()
	if len(ans) != 1 || ans[0].Row[0].Int != 6 || ans[0].Row[1].Int != 9 {
		t.Fatalf("figure-1 answer wrong: %v", ans)
	}
}

func TestStringValues(t *testing.T) {
	net := quickNet(t, Options{Seed: 9})
	net.MustDefineRelation("Ev", "Host", "Level")
	net.MustDefineRelation("Owners", "Host", "Team")
	sub := net.MustSubscribe(
		"select Ev.Host, Owners.Team from Ev,Owners where Ev.Host=Owners.Host and Ev.Level='error'")
	net.Run()
	net.MustPublish("Ev", "web1", "error")
	net.MustPublish("Ev", "web2", "info")
	net.MustPublish("Owners", "web1", "platform")
	net.MustPublish("Owners", "web2", "search")
	net.Run()
	ans := sub.Answers()
	if len(ans) != 1 || ans[0].Row[0].Str != "web1" || ans[0].Row[1].Str != "platform" {
		t.Fatalf("string join wrong: %v", ans)
	}
}

func TestInvalidOptions(t *testing.T) {
	if _, err := NewNetwork(Options{Nodes: -5}); err == nil {
		t.Fatal("negative node count accepted")
	}
}

func TestUnplaceableQueryKeepsID(t *testing.T) {
	// A predicate-free single-relation query has no index candidates;
	// the engine drops (and pool-recycles) it, but the subscription must
	// still carry the real query ID, not a zeroed one.
	net := quickNet(t, Options{Seed: 21})
	net.MustDefineRelation("R", "A")
	sub := net.MustSubscribe("select R.A from R")
	if sub.ID == "" {
		t.Fatal("unplaceable query returned an empty ID")
	}
	net.Run()
	if got := net.Engine().Counters.UnplaceableDropped; got != 1 {
		t.Fatalf("UnplaceableDropped = %d, want 1", got)
	}
}
