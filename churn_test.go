package rjoin

import (
	"sort"
	"testing"
)

// churnWorkload drives a fixed pub/sub stream, invoking disturb(round)
// between waves, and returns the sorted answer bag of its subscription.
func churnWorkload(t *testing.T, opts Options, disturb func(net *Network, round int)) ([]string, Stats) {
	t.Helper()
	opts.Nodes = 48
	opts.Seed = 99
	net := MustNetwork(opts)
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	sub := net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A")
	net.Run()
	for i := 0; i < 20; i++ {
		net.MustPublish("R", i%4, i)
		net.MustPublish("S", i%4, 100+i)
		net.RunFor(2) // leave deliveries in flight across the disturbance
		if disturb != nil {
			disturb(net, i)
		}
		net.Run()
	}
	net.Run()
	var rows []string
	for _, a := range sub.Answers() {
		key := ""
		for _, v := range a.Row {
			key += v.String() + "|"
		}
		rows = append(rows, key)
	}
	sort.Strings(rows)
	return rows, net.Stats()
}

// Gracefully removing nodes mid-stream — including while tuples are in
// flight — must leave the answer bag exactly equal to the static run's.
func TestRemoveNodePreservesAnswers(t *testing.T) {
	want, _ := churnWorkload(t, Options{}, nil)
	if len(want) == 0 {
		t.Fatal("static run produced no answers; workload too weak")
	}
	got, st := churnWorkload(t, Options{}, func(net *Network, round int) {
		if round%3 == 0 && net.Nodes() > 24 {
			if err := net.RemoveNode((round * 7) % net.Nodes()); err != nil {
				t.Fatal(err)
			}
		}
	})
	if st.Leaves == 0 {
		t.Fatal("no nodes were removed; the comparison is vacuous")
	}
	if st.HandoverMessages == 0 {
		t.Fatal("removals moved no handover state")
	}
	if len(got) != len(want) {
		t.Fatalf("answers under removal: %d rows, want %d (loss or duplication)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d diverged: %q vs %q", i, got[i], want[i])
		}
	}
}

// AddNode grows the ring mid-stream without disturbing the answer bag.
func TestAddNodePreservesAnswers(t *testing.T) {
	want, _ := churnWorkload(t, Options{}, nil)
	got, st := churnWorkload(t, Options{}, func(net *Network, round int) {
		if round%4 == 0 {
			if err := net.AddNode(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if st.Joins == 0 {
		t.Fatal("no nodes joined")
	}
	if len(got) != len(want) {
		t.Fatalf("answers under joins: %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d diverged: %q vs %q", i, got[i], want[i])
		}
	}
}

// Crash drops state but is repaired well enough that the stream keeps
// flowing, and the damage is visible in Stats rather than silent.
func TestCrashIsCountedAndSurvivable(t *testing.T) {
	got, st := churnWorkload(t, Options{}, func(net *Network, round int) {
		if round == 10 {
			if err := net.Crash(5); err != nil {
				t.Fatal(err)
			}
		}
	})
	if st.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", st.Crashes)
	}
	if len(got) == 0 {
		t.Fatal("network produced nothing after a single crash")
	}
	if st.RewritesLost+st.TuplesLost+st.QueriesRecovered == 0 {
		t.Fatal("crash of a loaded node left no trace in Stats")
	}
}

// Spontaneous churn via Options.Churn: events happen, the network
// keeps answering, and equal seeds replay identically.
func TestOptionsChurnRates(t *testing.T) {
	run := func() (int, Stats) {
		net := MustNetwork(Options{
			Nodes: 64,
			Seed:  7,
			Churn: ChurnOptions{JoinRate: 40, LeaveRate: 40, Interval: 8, MinNodes: 24},
		})
		net.MustDefineRelation("R", "A", "B")
		net.MustDefineRelation("S", "A", "B")
		sub := net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A")
		net.Run()
		for i := 0; i < 25; i++ {
			net.MustPublish("R", i%4, i)
			net.MustPublish("S", i%4, 100+i)
			net.RunFor(24)
			net.Run()
		}
		return sub.Count(), net.Stats()
	}
	count1, st1 := run()
	count2, st2 := run()
	if st1.Joins+st1.Leaves == 0 {
		t.Fatalf("no spontaneous churn happened: %+v", st1)
	}
	if count1 == 0 {
		t.Fatal("no answers under churn")
	}
	if count1 != count2 || st1 != st2 {
		t.Fatalf("same seed diverged under churn:\n%+v (%d answers)\n%+v (%d answers)", st1, count1, st2, count2)
	}
}

func TestRemoveNodeValidation(t *testing.T) {
	net := MustNetwork(Options{Nodes: 4, Seed: 1})
	if err := net.RemoveNode(99); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := net.RemoveNode(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	for net.Nodes() > 1 {
		if err := net.RemoveNode(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.RemoveNode(0); err == nil {
		t.Fatal("removing the last node accepted")
	}
	if err := net.Crash(0); err == nil {
		t.Fatal("crashing the last node accepted")
	}
}

// AnswersSince is an incremental cursor over the delivery order: each
// batch is seen exactly once, and Answers() remains the full history.
func TestAnswersSinceCursor(t *testing.T) {
	net := MustNetwork(Options{Nodes: 32, Seed: 3})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	sub := net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A")
	net.Run()

	cursor := 0
	var streamed int
	for i := 0; i < 6; i++ {
		net.MustPublish("R", 1, i)
		net.MustPublish("S", 1, 100+i)
		net.Run()
		batch := sub.AnswersSince(cursor)
		cursor += len(batch)
		streamed += len(batch)
	}
	if streamed != sub.Count() {
		t.Fatalf("cursor streamed %d answers, Count says %d", streamed, sub.Count())
	}
	if len(sub.Answers()) != sub.Count() {
		t.Fatalf("Answers length %d != Count %d", len(sub.Answers()), sub.Count())
	}
	if got := sub.AnswersSince(cursor); len(got) != 0 {
		t.Fatalf("exhausted cursor returned %d rows", len(got))
	}
	if got := sub.AnswersSince(-5); len(got) != sub.Count() {
		t.Fatal("negative cursor must clamp to the full history")
	}
	if got := sub.AnswersSince(1 << 20); len(got) != 0 {
		t.Fatal("past-the-end cursor must clamp to empty")
	}
}
