package rjoin

import (
	"strings"
	"testing"
)

// TestInvertedDelayBoundsRejected: NewNetwork must refuse inverted or
// negative hop-delay bounds with a descriptive error instead of
// silently clamping.
func TestInvertedDelayBoundsRejected(t *testing.T) {
	if _, err := NewNetwork(Options{Nodes: 8, MinHopDelay: 5, MaxHopDelay: 2}); err == nil {
		t.Fatal("MinHopDelay > MaxHopDelay accepted")
	} else if !strings.Contains(err.Error(), "MinHopDelay 5 exceeds MaxHopDelay 2") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if _, err := NewNetwork(Options{Nodes: 8, MinHopDelay: 3}); err == nil {
		// Max defaults to zero: still inverted, still an error.
		t.Fatal("MinHopDelay above defaulted MaxHopDelay accepted")
	}
	if _, err := NewNetwork(Options{Nodes: 8, MinHopDelay: -1, MaxHopDelay: 4}); err == nil {
		t.Fatal("negative MinHopDelay accepted")
	}
	if _, err := NewNetwork(Options{Nodes: 8, MaxHopDelay: -2}); err == nil {
		t.Fatal("negative MaxHopDelay accepted")
	}
	// Valid shapes still construct.
	for _, opts := range []Options{
		{Nodes: 8},
		{Nodes: 8, MaxHopDelay: 4},
		{Nodes: 8, MinHopDelay: 2, MaxHopDelay: 2},
		{Nodes: 8, MinHopDelay: 1, MaxHopDelay: 9},
	} {
		if _, err := NewNetwork(opts); err != nil {
			t.Fatalf("valid bounds %+v rejected: %v", opts, err)
		}
	}
}

// TestChurnOptionsValidated: negative churn rates and tuning knobs are
// rejected.
func TestChurnOptionsValidated(t *testing.T) {
	if _, err := NewNetwork(Options{Nodes: 8, Churn: ChurnOptions{LeaveRate: -3}}); err == nil {
		t.Fatal("negative churn rate accepted")
	}
	if _, err := NewNetwork(Options{Nodes: 8, Churn: ChurnOptions{StabilizeInterval: -1}}); err == nil {
		t.Fatal("negative stabilize interval accepted")
	}
	if _, err := NewNetwork(Options{Nodes: 8, Churn: ChurnOptions{Interval: -4}}); err == nil {
		t.Fatal("negative churn interval accepted")
	}
	if _, err := NewNetwork(Options{Nodes: 8, Churn: ChurnOptions{MinNodes: -2}}); err == nil {
		t.Fatal("negative MinNodes accepted")
	}
}

// TestFaultOptionsValidated: NewNetwork rejects fault plans with
// out-of-range probabilities, inverted partition windows, or partition
// side indices outside the initial node list — each error naming the
// offending knob — and a negative BatchWindow, while valid plans
// (including the empty zero-rate plan) still construct.
func TestFaultOptionsValidated(t *testing.T) {
	bad := []struct {
		opts Options
		want string
	}{
		{Options{Nodes: 8, Faults: &FaultOptions{DropProb: -0.5}}, "Faults.DropProb"},
		{Options{Nodes: 8, Faults: &FaultOptions{DropProb: 1.01}}, "Faults.DropProb"},
		{Options{Nodes: 8, Faults: &FaultOptions{DupProb: 7}}, "Faults.DupProb"},
		{Options{Nodes: 8, Faults: &FaultOptions{SpikeProb: -1}}, "Faults.SpikeProb"},
		{Options{Nodes: 8, Faults: &FaultOptions{Partitions: []FaultPartition{{Start: 9, End: 3}}}}, "Faults.Partitions[0]"},
		{Options{Nodes: 8, Faults: &FaultOptions{Partitions: []FaultPartition{{Start: 0, End: 9, Side: []int{8}}}}}, "node index 8"},
		{Options{Nodes: 8, Faults: &FaultOptions{Partitions: []FaultPartition{{Start: 0, End: 9, Side: []int{-1}}}}}, "node index -1"},
		{Options{Nodes: 8, BatchWindow: -4}, "BatchWindow"},
	}
	for _, tc := range bad {
		if _, err := NewNetwork(tc.opts); err == nil {
			t.Errorf("%+v accepted, want error naming %q", tc.opts, tc.want)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error %q does not name %q", err, tc.want)
		}
	}
	for _, opts := range []Options{
		{Nodes: 8, Faults: &FaultOptions{}},
		{Nodes: 8, Faults: &FaultOptions{DropProb: 1, DupProb: 1, SpikeProb: 1, SpikeMax: 3}},
		{Nodes: 8, Faults: &FaultOptions{Partitions: []FaultPartition{{Start: 2, End: 10, Side: []int{0, 7}}}}},
	} {
		if _, err := NewNetwork(opts); err != nil {
			t.Errorf("valid fault plan %+v rejected: %v", opts, err)
		}
	}
}

// runFixedWorkload drives one deterministic workload under the given
// options and returns the subscription's answer count plus stats.
func runFixedWorkload(t *testing.T, opts Options) (int, Stats) {
	t.Helper()
	opts.Nodes = 64
	opts.Seed = 77
	net := MustNetwork(opts)
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	net.MustDefineRelation("T", "A", "B")
	// Warm the stream so every placement strategy has rate signal.
	pub := func(n int) {
		for i := 0; i < n; i++ {
			net.MustPublish("R", i%5, i)
			net.MustPublish("S", i%5, i)
			net.MustPublish("T", i%5, i)
			net.Run()
		}
	}
	pub(10)
	sub := net.MustSubscribe("select R.B, T.B from R,S,T where R.A=S.A and S.B=T.B")
	net.Run()
	pub(20)
	return sub.Count(), net.Stats()
}

// TestOptionsPreserveAnswers: every optional feature leaves the answer
// set untouched; only the cost profile may change.
func TestOptionsPreserveAnswers(t *testing.T) {
	base, _ := runFixedWorkload(t, Options{})
	if base == 0 {
		t.Fatal("baseline produced no answers; workload too weak to compare")
	}
	variants := map[string]Options{
		"batching":    {BatchWindow: 25},
		"replication": {AttrReplicas: 3},
		"migration":   {EnableMigration: true},
		"attrRewrite": {AllowAttrRewrites: true},
		"everything":  {BatchWindow: 25, AttrReplicas: 3, EnableMigration: true},
	}
	for name, opts := range variants {
		got, _ := runFixedWorkload(t, opts)
		if got != base {
			t.Errorf("%s: %d answers, baseline %d", name, got, base)
		}
	}
}

// TestBatchingReducesPublicationTraffic at the public API level.
func TestBatchingReducesPublicationTraffic(t *testing.T) {
	_, plain := runFixedWorkload(t, Options{})
	_, batched := runFixedWorkload(t, Options{BatchWindow: 25})
	if batched.Messages >= plain.Messages {
		t.Fatalf("batching did not reduce traffic: %d >= %d", batched.Messages, plain.Messages)
	}
}

// TestOneTimeQueryPublicAPI: the ONCE keyword works end to end.
func TestOneTimeQueryPublicAPI(t *testing.T) {
	net := MustNetwork(Options{Nodes: 48, Seed: 78, Delta: 1 << 40})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	net.MustPublish("R", 1, 10)
	net.MustPublish("S", 1, 20)
	net.Run()
	sub := net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A once")
	net.Run()
	if sub.Count() != 1 {
		t.Fatalf("snapshot answers = %d, want 1", sub.Count())
	}
	// Later tuples are ignored by the one-time query.
	net.MustPublish("R", 1, 11)
	net.MustPublish("S", 1, 21)
	net.Run()
	if sub.Count() != 1 {
		t.Fatalf("one-time query answered future tuples: %d", sub.Count())
	}
}

// TestReplicationFactorValidated: NewNetwork rejects a negative factor
// and a factor above the node count (a key cannot have more replicas
// than there are nodes); valid factors — including the degenerate 0/1
// that disable replication — still construct.
func TestReplicationFactorValidated(t *testing.T) {
	if _, err := NewNetwork(Options{Nodes: 8, ReplicationFactor: -1}); err == nil {
		t.Fatal("negative ReplicationFactor accepted")
	} else if !strings.Contains(err.Error(), "negative ReplicationFactor") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if _, err := NewNetwork(Options{Nodes: 8, ReplicationFactor: 9}); err == nil {
		t.Fatal("ReplicationFactor above node count accepted")
	} else if !strings.Contains(err.Error(), "exceeds node count") {
		t.Fatalf("unhelpful error: %v", err)
	}
	for _, k := range []int{0, 1, 2, 8} {
		if _, err := NewNetwork(Options{Nodes: 8, ReplicationFactor: k}); err != nil {
			t.Fatalf("valid ReplicationFactor %d rejected: %v", k, err)
		}
	}
}

// TestReplicatedCrashKeepsStream: the public-API shape of the
// durability guarantee — with ReplicationFactor 2, crashing nodes
// mid-stream loses no rewritten state, tuples or aggregation partials,
// and the loss counters prove it.
func TestReplicatedCrashKeepsStream(t *testing.T) {
	run := func(k int) Stats {
		net := MustNetwork(Options{Nodes: 48, Seed: 9, ReplicationFactor: k})
		net.MustDefineRelation("R", "A", "B")
		net.MustDefineRelation("S", "A", "B")
		net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A")
		for i := 0; i < 20; i++ {
			net.MustPublish("R", i%5, i)
			net.MustPublish("S", i%5, i%4)
			net.RunFor(2)
			if i%6 == 5 {
				if err := net.Crash(i % net.Nodes()); err != nil {
					t.Fatal(err)
				}
			}
			net.Run()
		}
		net.Run()
		return net.Stats()
	}
	plain := run(0)
	if plain.RewritesLost+plain.TuplesLost == 0 {
		t.Fatal("unreplicated crashes lost nothing; workload too weak to prove the contrast")
	}
	repl := run(2)
	if repl.RewritesLost != 0 || repl.TuplesLost != 0 || repl.AggStateLost != 0 {
		t.Fatalf("replicated crashes lost state: %d rewrites, %d tuples, %d agg partials",
			repl.RewritesLost, repl.TuplesLost, repl.AggStateLost)
	}
	if repl.ReplPromotions == 0 || repl.ReplicationMessages == 0 {
		t.Fatalf("replication machinery unused: promotions %d, messages %d",
			repl.ReplPromotions, repl.ReplicationMessages)
	}
	if repl.Answers < plain.Answers {
		t.Fatalf("replicated run delivered fewer answers (%d) than the lossy one (%d)",
			repl.Answers, plain.Answers)
	}
}
