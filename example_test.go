package rjoin_test

import (
	"fmt"

	"rjoin"
)

// Example runs the smallest complete RJoin program: one continuous
// two-way join over a simulated 64-node overlay.
func Example() {
	net := rjoin.MustNetwork(rjoin.Options{Nodes: 64, Seed: 1})
	net.MustDefineRelation("Trades", "Sym", "Px")
	net.MustDefineRelation("Quotes", "Sym", "Bid")

	sub := net.MustSubscribe(
		"select Trades.Px, Quotes.Bid from Trades,Quotes where Trades.Sym=Quotes.Sym")
	net.Run()

	net.MustPublish("Trades", 7, 101)
	net.MustPublish("Quotes", 7, 99)
	net.Run()

	for _, a := range sub.Answers() {
		fmt.Printf("Px=%s Bid=%s\n", a.Row[0], a.Row[1])
	}
	// Output:
	// Px=101 Bid=99
}

// ExampleNetwork_Subscribe shows the paper's Figure 1 scenario: a 4-way
// continuous join answered by recursive rewriting as tuples arrive in
// an order that exercises both trigger directions (queries waiting for
// tuples, and a tuple stored before its query arrives).
func ExampleNetwork_Subscribe() {
	net := rjoin.MustNetwork(rjoin.Options{Nodes: 64, Seed: 1})
	for _, rel := range []string{"R", "S", "J", "M"} {
		net.MustDefineRelation(rel, "A", "B", "C")
	}
	sub := net.MustSubscribe(
		"select S.B, M.A from R,S,J,M where R.A=S.A and S.B=J.B and J.C=M.C")
	net.Run()

	net.MustPublish("R", 2, 5, 8)
	net.MustPublish("S", 2, 6, 3)
	net.MustPublish("M", 9, 1, 2) // early: stored at the value level
	net.MustPublish("J", 7, 6, 2)
	net.Run()

	for _, a := range sub.Answers() {
		fmt.Printf("S.B=%s M.A=%s\n", a.Row[0], a.Row[1])
	}
	// Output:
	// S.B=6 M.A=9
}

// ExampleNetwork_Stats shows the cost measures of the paper's
// evaluation exposed on a running network.
func ExampleNetwork_Stats() {
	net := rjoin.MustNetwork(rjoin.Options{Nodes: 32, Seed: 2})
	net.MustDefineRelation("R", "A")
	net.MustDefineRelation("S", "A")
	net.MustSubscribe("select R.A, S.A from R,S where R.A=S.A")
	net.Run()
	net.MustPublish("R", 4)
	net.MustPublish("S", 4)
	net.Run()
	st := net.Stats()
	fmt.Println(st.Answers, st.Messages > 0, st.QueryProcessingLoad > 0)
	// Output:
	// 1 true true
}
