// Package rjoin is an implementation of RJoin (Idreos, Liarou,
// Koubarakis: "Continuous Multi-Way Joins over Distributed Hash
// Tables", EDBT 2008): continuous multi-way equi-join queries evaluated
// incrementally over a Chord DHT by recursive query rewriting.
//
// The package runs a complete simulated overlay in-process: a Chord
// ring with real finger-table routing, a deterministic discrete-event
// network with bounded message delays, and one RJoin processor per
// node. Continuous queries are written in a small SQL subset and
// subscribed into the network; published tuples flow through the DHT,
// rewrite matching queries, and produce answer rows delivered back to
// the subscriber.
//
// Quickstart:
//
//	net, _ := rjoin.NewNetwork(rjoin.Options{Nodes: 64, Seed: 1})
//	net.MustDefineRelation("Trades", "Sym", "Px")
//	net.MustDefineRelation("Quotes", "Sym", "Bid")
//	sub, _ := net.Subscribe("select Trades.Px, Quotes.Bid from Trades,Quotes where Trades.Sym=Quotes.Sym")
//	net.MustPublish("Trades", 7, 101)
//	net.MustPublish("Quotes", 7, 99)
//	net.Run()
//	for _, a := range sub.Answers() { fmt.Println(a.Row) }
package rjoin

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"rjoin/internal/chord"
	"rjoin/internal/churn"
	"rjoin/internal/core"
	"rjoin/internal/id"
	"rjoin/internal/obs"
	"rjoin/internal/obs/profile"
	"rjoin/internal/overlay"
	"rjoin/internal/query"
	"rjoin/internal/relation"
	"rjoin/internal/sim"
	"rjoin/internal/sqlparse"
	"rjoin/internal/workload"
)

// Value is one attribute value: an integer or a string.
type Value = relation.Value

// Int builds an integer Value.
func Int(v int64) Value { return relation.Int64(v) }

// Str builds a string Value.
func Str(s string) Value { return relation.String64(s) }

// Strategy selects how queries are placed on nodes; see the package
// documentation of the placement experiment (Figure 2 of the paper).
type Strategy = core.Strategy

// Placement strategies.
const (
	// StrategyRIC places queries where the observed rate of incoming
	// tuples is lowest (RJoin proper).
	StrategyRIC = core.StrategyRIC
	// StrategyRandom places queries at a random candidate.
	StrategyRandom = core.StrategyRandom
	// StrategyWorst places queries at the hottest candidate (the
	// paper's adversarial baseline).
	StrategyWorst = core.StrategyWorst
)

// Options configures a simulated RJoin network. The zero value of every
// field selects a sensible default.
type Options struct {
	// Nodes is the overlay size (default 128).
	Nodes int
	// Seed fixes all randomness; runs with equal seeds are identical.
	Seed int64
	// Strategy is the query placement strategy (default StrategyRIC).
	Strategy Strategy
	// MinHopDelay/MaxHopDelay bound per-hop message delay in virtual
	// ticks (default 1/1: deterministic unit delays).
	MinHopDelay int64
	MaxHopDelay int64
	// Delta overrides the ALTT retention Δ (default: derived bound
	// that preserves eventual completeness; negative disables ALTT).
	Delta int64
	// DisableCT turns off the Section 7 candidate-table cache.
	DisableCT bool
	// DisablePiggyback turns off RIC piggy-backing on rewritten
	// queries.
	DisablePiggyback bool
	// AllowAttrRewrites enables the full Section 6 candidate set for
	// rewritten queries (see core.Config.AllowAttrRewrites for the
	// completeness caveat).
	AllowAttrRewrites bool
	// EnableMigration turns on adaptive query migration, the paper's
	// Section 10 future-work extension: rewritten queries waiting at
	// keys that turn hot relocate themselves to colder candidates,
	// carrying an exclusion set so no answer is duplicated.
	EnableMigration bool
	// SubscriberSideAgg disables in-network aggregation for GROUP BY /
	// aggregate queries: raw answer rows ship to the subscriber, which
	// folds them locally. The aggregate view is identical either way;
	// this is the ablation baseline of the aggregation experiment.
	SubscriberSideAgg bool
	// Sharing enables multi-query optimization: queries whose join
	// graphs are equivalent up to relation/predicate ordering, constant
	// selections and projections collapse onto one shared in-network
	// rewrite pipeline, and a query whose join graph strictly contains
	// an existing shared pipeline's attaches to its completions instead
	// of re-joining from scratch. Each subscriber still receives exactly
	// the answer bag its own query defines — per-subscriber selections,
	// projections and insertion-time cutoffs are applied at the
	// completion fan-out. Requires MinHopDelay >= 1 (the default), so a
	// query attaching to a live pipeline at tick T observes only
	// completions after T. Byte-identical resubmissions of the same SQL
	// are always deduplicated, with or without this option.
	Sharing bool
	// BatchWindow buffers each node's outgoing keyed messages for up
	// to this many ticks and flushes them as one grouped multiSend
	// (the batch-routing future work of Section 10). Zero disables.
	BatchWindow int64
	// AttrReplicas spreads attribute-level keys over this many replica
	// keys (the [18] hotspot remedy); values < 2 disable it. This is
	// load spreading, not durability: each replica key holds a distinct
	// slice of the tuple stream, and a crash still loses that slice.
	// For crash tolerance use ReplicationFactor.
	AttrReplicas int
	// ReplicationFactor k keeps every keyed state entry — stored
	// queries with their DISTINCT memory, indexed tuples, ALTT and
	// candidate-table entries, aggregation partials — on k nodes: the
	// owner plus its k−1 ring successors. Single-node crashes then lose
	// nothing: the surviving replica the ring routes to promotes its
	// mirror (Stats.RewritesLost/TuplesLost/AggStateLost stay zero) and
	// the factor is restored by re-replication. Mutations fan out as
	// batched replica-update messages counted in Stats.ReplicationMessages.
	// Values < 2 (the default) disable replication and keep the
	// counted-loss crash model. Must not exceed Nodes. This is
	// durability, not load spreading — replicas serve no traffic until
	// promoted; to spread a hot attribute key, use AttrReplicas.
	ReplicationFactor int
	// Workers selects the execution mode of the event engine. 0 or 1
	// (the default) runs the serial engine, bit-identical to previous
	// releases. N >= 2 executes same-timestamp events in parallel on N
	// OS threads under a conservative barrier schedule: nodes hash into
	// a fixed set of logical shards, shards execute concurrently, and
	// cross-shard effects merge at barriers in a deterministic order —
	// so a seed still replays bit-identically, and the digests are the
	// same for every N >= 2. They differ from serial digests: parallel
	// mode draws delays and random placements from per-node
	// counter-based streams instead of one shared source (a shared
	// source's draw order would depend on thread interleaving).
	// Parallel mode requires MinHopDelay >= 1 (the lookahead window
	// that makes one virtual tick a safe barrier interval) and is
	// incompatible with StrategyWorst (whose oracle reads rate state
	// across shards).
	Workers int
	// Churn drives runtime membership changes — joins, graceful leaves
	// and crashes — while queries are live. The zero value keeps the
	// overlay static (the paper's setting). Explicit AddNode /
	// RemoveNode / Crash calls work either way.
	Churn ChurnOptions
	// Faults switches the overlay into unreliable-network mode:
	// per-message drop and duplication draws, delay spikes and
	// scheduled partitions, with every keyed send running over a
	// sequence-numbered reliable channel (acks, retransmits with
	// exponential backoff, receiver-side dedup). nil — the default —
	// keeps the reliable overlay bit-identical to previous releases.
	// All fault randomness comes from dedicated per-node streams, so a
	// plan with all rates zero and no partitions also replays the
	// faults-off schedule exactly. Combine with ReplicationFactor >= 2
	// to keep answers exact when partitions overlap crashes.
	Faults *FaultOptions
	// Trace enables the deterministic causal tracer: every tuple's
	// lifecycle (publish, index placement, lookups, each rewrite hop,
	// completion, answer delivery) plus transport annotations (bounces,
	// replication fan-out, retransmits, acks) recorded against the
	// virtual clock. Trace identity derives from (publisher, publish
	// sequence) and query IDs — no wall clock, no extra randomness — so
	// a run's trace is bit-identical for a given seed at every worker
	// count. nil (the default) disables tracing; the hot paths then pay
	// one nil check and allocate nothing.
	Trace *TraceOptions
	// Metrics enables the virtual-time metrics registry: allocation-free
	// latency/depth/hop histograms and windowed per-node, per-traffic-tag
	// and per-query rate series sampled on the virtual clock. nil (the
	// default) disables collection at zero cost.
	Metrics *MetricsOptions
	// Profile enables the per-placement query profiler behind
	// Subscription.Explain: every arrival, evaluation, stored rewrite,
	// rewrite step, completion, candidate-table hit/miss, aggregation
	// partial and state byte is attributed to the (query, placement key)
	// that caused it, plus a virtual-time state-footprint series per
	// pipeline. All counters are per-shard accumulators merged at
	// barriers, so a profile read at a drained virtual time is
	// bit-identical at every worker count. nil (the default) disables
	// profiling; the hot paths then pay one nil check and allocate
	// nothing. Explain still works without it — the report carries the
	// static plan and delivery totals, with observed counters zero.
	Profile *ProfileOptions
	// Provenance threads answer lineage through the network: every
	// delivered row (and aggregate view row) carries the base tuples it
	// joins — by (publisher, publish sequence) — together with the node
	// each rewrite hop executed on, in consumption order. Lineage
	// survives shared-pipeline fan-out, containment replay, in-network
	// aggregation (a view row's lineage is the union over its
	// contributing rows) and replica promotion. Off (the default), rows
	// carry no lineage and the rewrite path allocates nothing extra.
	Provenance bool
}

// ProfileOptions configures the placement profiler (Options.Profile).
type ProfileOptions struct {
	// SampleInterval is the window width, in virtual ticks, of the
	// per-pipeline state-footprint series. 0 means 64.
	SampleInterval int64
}

// TraceOptions configures the causal tracer (Options.Trace).
type TraceOptions struct {
	// MaxEvents caps the retained event count; overflow is truncated
	// deterministically (newest events dropped at flush) and reported by
	// Network.TraceDropped. 0 means 1 << 20; negative means unbounded.
	MaxEvents int64
}

// MetricsOptions configures the metrics registry (Options.Metrics).
type MetricsOptions struct {
	// SampleInterval is the window width, in virtual ticks, of the rate
	// series (per-node deliveries, per-tag sends, per-query answers).
	// 0 means 64.
	SampleInterval int64
}

// FaultOptions is the deterministic fault-injection plan of
// Options.Faults. Probabilities are per transmission (retransmissions
// draw afresh) and must lie in [0, 1]; timers are in virtual ticks.
type FaultOptions struct {
	// DropProb is the probability one transmission is lost. The
	// reliable channel retransmits until the message is acknowledged,
	// so delivered answers stay exact; only latency and traffic change.
	DropProb float64
	// DupProb is the probability one transmission is delivered twice.
	// Receiver-side dedup suppresses the copy before it reaches the
	// join processor.
	DupProb float64
	// SpikeProb is the probability one transmission's delay is
	// inflated by a uniform draw from [0, SpikeMax] extra ticks.
	SpikeProb float64
	SpikeMax  int64
	// Partitions schedules link outages between node sets in virtual
	// time. Messages crossing an active partition are dropped (and
	// retransmitted after it heals).
	Partitions []FaultPartition
	// RTO is the base retransmit timeout; 0 derives a safe bound from
	// the delay model. Retry k waits RTO<<k plus deterministic jitter.
	RTO int64
	// MaxRetries bounds one backoff ladder before the sender
	// re-resolves the destination key and re-routes; 0 means 6.
	MaxRetries int
	// AckDelay is the ack-coalescing window; 0 means 2 ticks.
	AckDelay int64
}

// FaultPartition is one scheduled partition window: during [Start,
// End) in virtual ticks, messages between the nodes listed in Side and
// everyone else are dropped. Side holds positions in the initial
// identifier-ordered node list (the same indexing RemoveNode and Crash
// use at time zero).
type FaultPartition struct {
	Start, End int64
	Side       []int
}

// ChurnOptions configures spontaneous membership churn. Rates are
// expected events per 1000 virtual ticks; an event class with rate
// zero never fires spontaneously. Graceful leaves hand the departing
// node's state to its successor (no answers are lost or duplicated);
// crashes drop state, with the engine re-indexing the input queries
// that died and counting everything else as loss.
type ChurnOptions struct {
	JoinRate  float64
	LeaveRate float64
	CrashRate float64
	// Interval is the cadence in ticks of the churn-rate draws
	// (default 32).
	Interval int64
	// StabilizeInterval is the period in ticks of the incremental
	// Chord maintenance round (default 64).
	StabilizeInterval int64
	// MinNodes floors the overlay size: leave/crash draws below it are
	// skipped (default 2).
	MinNodes int
}

// Answer is one delivered result row.
type Answer struct {
	// Query is the subscription's query ID.
	Query string
	// Row holds the select-list values.
	Row []Value
	// At is the virtual time of delivery.
	At int64
	// Lineage is the row's provenance: the base tuples that joined into
	// it, by (publisher, publish sequence), with the node each rewrite
	// hop executed on, in consumption order. Nil unless
	// Options.Provenance is set.
	Lineage []LineageStep
}

// LineageStep is one hop of an answer row's provenance: the base tuple
// consumed (Pub, Seq) and the node whose stored rewrite it triggered.
type LineageStep = query.LineageStep

// ExplainReport is the structured introspection report returned by
// Subscription.Explain: the placement plan with per-placement observed
// counters, sharing attribution, the state-footprint series and
// delivery totals. Its Text method renders the canonical EXPLAIN
// ANALYZE text and Digest folds that text into one 64-bit value
// (bit-identical across worker counts for a drained run).
type ExplainReport = profile.Report

// Stats is a snapshot of network-wide cost measures, in the paper's
// units.
type Stats struct {
	// Messages is total network traffic (messages sent, including DHT
	// routing).
	Messages int64
	// RICMessages is the share of Messages spent requesting RIC info.
	RICMessages int64
	// QueryProcessingLoad is the paper's QPL: rewritten queries plus
	// tuples received by nodes.
	QueryProcessingLoad int64
	// StorageLoad is the paper's SL: rewritten queries plus tuples
	// stored.
	StorageLoad int64
	// Answers is the number of answer rows delivered.
	Answers int64
	// RewritesCreated counts rewriting steps performed.
	RewritesCreated int64
	// AggPartials counts answer rows folded into aggregation state (at
	// aggregator nodes, or at the subscriber with SubscriberSideAgg);
	// AggUpdates counts finalized group-update rows delivered to
	// subscribers; AggStateLost counts (group, epoch) partials dropped
	// by crashes or unrecoverable departures. All zero without
	// aggregate queries.
	AggPartials  int64
	AggUpdates   int64
	AggStateLost int64
	// MaxNodeQPL and ParticipatingNodes describe the QPL distribution.
	MaxNodeQPL         int64
	ParticipatingNodes int

	// Membership churn accounting. Joins/Leaves/Crashes count events
	// (spontaneous and explicit); HandoverMessages/HandoverEntries
	// measure graceful-leave and join state transfer;
	// MessagesRerouted and MessagesBounced are the healing work of the
	// routing layer; QueriesRecovered, QueriesLost, RewritesLost and
	// TuplesLost describe crash damage and repair. All zero on a
	// static overlay.
	Joins            int64
	Leaves           int64
	Crashes          int64
	HandoverMessages int64
	HandoverEntries  int64
	MessagesRerouted int64
	MessagesBounced  int64
	QueriesRecovered int64
	QueriesLost      int64
	RewritesLost     int64
	TuplesLost       int64

	// Durable-state replication accounting (Options.ReplicationFactor).
	// ReplicationMessages is the share of Messages spent mirroring
	// state to replica groups; ReplUpdates/ReplOps count the update
	// batches shipped and the state operations they carried; ReplSyncs
	// counts full-snapshot streams opened by group repair after
	// membership changes; ReplPromotions/ReplEntriesPromoted count
	// crashed nodes whose mirror a surviving replica promoted and the
	// state entries recovered that way. All zero with replication off.
	ReplicationMessages int64
	ReplUpdates         int64
	ReplOps             int64
	ReplSyncs           int64
	ReplPromotions      int64
	ReplEntriesPromoted int64

	// Unreliable-network accounting (Options.Faults). Dropped and
	// Duplicated count injected transmission faults; Retransmits counts
	// timer-driven resends and AckMessages the standalone (non
	// piggybacked) acknowledgements. Abandoned counts reliable sends
	// given up after exhausting every escalation ladder — zero in any
	// healthy run. None of these are included in Messages: the traffic
	// metric stays comparable with reliable-mode runs, and the ack/
	// retransmit overhead is measured separately. All zero with Faults
	// nil.
	Dropped     int64
	Duplicated  int64
	Retransmits int64
	AckMessages int64
	Abandoned   int64

	// Multi-query sharing accounting (Options.Sharing and exact-duplicate
	// dedup). QueriesShared counts submissions that attached to an
	// existing shared pipeline instead of placing their own;
	// QueriesUnsubscribed counts Unsubscribe calls; SharedFanoutRows
	// counts per-subscriber rows produced at shared-pipeline completion
	// fan-outs; ContainmentRewrites counts rewrite steps spent extending
	// a contained pipeline's completions into a containing query.
	QueriesShared       int64
	QueriesUnsubscribed int64
	SharedFanoutRows    int64
	ContainmentRewrites int64

	// TrafficByTag breaks Messages down by the overlay's traffic tags.
	TrafficByTag TagTraffic
}

// TagTraffic is the per-tag decomposition of total network traffic. The
// tagged lanes are disjoint; App is the untagged remainder (tuple and
// query routing, RIC piggybacks, answer delivery), so the five fields
// sum to Stats.Messages.
type TagTraffic struct {
	// RIC is placement polling (Request-RIC walks); equals RICMessages.
	RIC int64
	// Agg is in-network aggregation traffic: partial shipping and
	// finalized group updates.
	Agg int64
	// Churn is membership-change state transfer: handovers, arc
	// transfers and crash-recovery re-indexing.
	Churn int64
	// Repl is replica-group mirroring; equals ReplicationMessages.
	Repl int64
	// App is everything untagged.
	App int64
}

// Network is a simulated RJoin deployment: a Chord overlay with an
// RJoin processor on every node, driven by a deterministic virtual
// clock. Membership may change at runtime (Options.Churn, AddNode,
// RemoveNode, Crash); node selection for subscriptions and
// publications always draws from the live ring.
type Network struct {
	eng   *core.Engine
	cat   *relation.Catalog
	mgr   *churn.Manager
	rng   *rand.Rand
	subs  map[string]*Subscription
	trace *obs.Tracer       // nil unless Options.Trace was set
	obsM  *obs.Metrics      // nil unless Options.Metrics was set
	prof  *profile.Profiler // nil unless Options.Profile was set
}

// Subscription is a live continuous query.
type Subscription struct {
	// ID is the network-wide query identifier.
	ID string
	// SQL is the submitted query text (as parsed and rendered).
	SQL string

	net   *Network
	cache []Answer // answers already converted; extended incrementally
}

// NewNetwork builds a converged overlay of opts.Nodes nodes and attaches
// the RJoin engine.
func NewNetwork(opts Options) (*Network, error) {
	if opts.Nodes == 0 {
		opts.Nodes = 128
	}
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("rjoin: invalid node count %d", opts.Nodes)
	}
	if opts.MinHopDelay < 0 || opts.MaxHopDelay < 0 {
		return nil, fmt.Errorf("rjoin: negative hop delay bound [%d, %d]",
			opts.MinHopDelay, opts.MaxHopDelay)
	}
	if opts.MinHopDelay == 0 && opts.MaxHopDelay == 0 {
		opts.MinHopDelay, opts.MaxHopDelay = 1, 1
	}
	if opts.MinHopDelay > opts.MaxHopDelay {
		return nil, fmt.Errorf("rjoin: MinHopDelay %d exceeds MaxHopDelay %d",
			opts.MinHopDelay, opts.MaxHopDelay)
	}
	if opts.Sharing && opts.MinHopDelay < 1 {
		return nil, fmt.Errorf("rjoin: Sharing requires MinHopDelay >= 1 (attach-time cutoff needs a strict completion delay)")
	}
	churnRates := workload.ChurnConfig{
		JoinRate:  opts.Churn.JoinRate,
		LeaveRate: opts.Churn.LeaveRate,
		CrashRate: opts.Churn.CrashRate,
	}
	if err := churnRates.Validate(); err != nil {
		return nil, err
	}
	if opts.Churn.Interval < 0 || opts.Churn.StabilizeInterval < 0 || opts.Churn.MinNodes < 0 {
		return nil, fmt.Errorf("rjoin: negative churn tuning (interval %d, stabilize %d, min nodes %d)",
			opts.Churn.Interval, opts.Churn.StabilizeInterval, opts.Churn.MinNodes)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("rjoin: negative worker count %d", opts.Workers)
	}
	if opts.ReplicationFactor < 0 {
		return nil, fmt.Errorf("rjoin: negative ReplicationFactor %d", opts.ReplicationFactor)
	}
	if opts.ReplicationFactor > opts.Nodes {
		return nil, fmt.Errorf("rjoin: ReplicationFactor %d exceeds node count %d (a key cannot have more replicas than nodes)",
			opts.ReplicationFactor, opts.Nodes)
	}
	if opts.Workers > 1 {
		if opts.MinHopDelay < 1 {
			return nil, fmt.Errorf("rjoin: Workers %d requires MinHopDelay >= 1 (the parallel lookahead window)", opts.Workers)
		}
		if opts.Strategy == StrategyWorst {
			return nil, fmt.Errorf("rjoin: Workers %d is incompatible with StrategyWorst (its oracle reads cross-shard state)", opts.Workers)
		}
	}
	if opts.Faults != nil {
		for _, p := range []struct {
			name string
			v    float64
		}{{"DropProb", opts.Faults.DropProb}, {"DupProb", opts.Faults.DupProb}, {"SpikeProb", opts.Faults.SpikeProb}} {
			if p.v < 0 || p.v > 1 {
				return nil, fmt.Errorf("rjoin: Faults.%s %v outside [0, 1]", p.name, p.v)
			}
		}
		for i, p := range opts.Faults.Partitions {
			if p.End < p.Start {
				return nil, fmt.Errorf("rjoin: Faults.Partitions[%d] window [%d, %d) ends before it starts",
					i, p.Start, p.End)
			}
			for _, idx := range p.Side {
				if idx < 0 || idx >= opts.Nodes {
					return nil, fmt.Errorf("rjoin: Faults.Partitions[%d] node index %d outside [0, %d)",
						i, idx, opts.Nodes)
				}
			}
		}
	}
	ring := chord.NewRing()
	idRng := rand.New(rand.NewSource(opts.Seed))
	for i := 0; i < opts.Nodes; i++ {
		for {
			if _, err := ring.Join(id.ID(idRng.Uint64())); err == nil {
				break
			}
		}
	}
	ring.BuildPerfect()
	var faults *overlay.Faults
	if opts.Faults != nil {
		// Resolve partition sides from positions in the initial
		// identifier-ordered node list to identifier sets; the ring is
		// fully built, so the indexing matches what RemoveNode and
		// Crash would see at time zero.
		nodes := ring.Nodes()
		faults = &overlay.Faults{
			DropProb:   opts.Faults.DropProb,
			DupProb:    opts.Faults.DupProb,
			SpikeProb:  opts.Faults.SpikeProb,
			SpikeMax:   opts.Faults.SpikeMax,
			RTO:        opts.Faults.RTO,
			MaxRetries: opts.Faults.MaxRetries,
			AckDelay:   opts.Faults.AckDelay,
		}
		for _, p := range opts.Faults.Partitions {
			side := make(map[id.ID]bool, len(p.Side))
			for _, idx := range p.Side {
				side[nodes[idx].ID()] = true
			}
			faults.Partitions = append(faults.Partitions, overlay.Partition{
				Start: sim.Time(p.Start),
				End:   sim.Time(p.End),
				Side:  side,
			})
		}
	}
	se := sim.NewEngine(opts.Seed)
	if opts.Workers > 1 {
		se.SetWorkers(opts.Workers)
	}
	var tracer *obs.Tracer
	if opts.Trace != nil {
		limit := opts.Trace.MaxEvents
		if limit == 0 {
			limit = 1 << 20
		}
		if limit < 0 {
			limit = 0 // obs convention: 0 = unbounded
		}
		tracer = obs.NewTracer(limit)
	}
	var om *obs.Metrics
	if opts.Metrics != nil {
		om = obs.NewMetrics(opts.Metrics.SampleInterval)
		om.Start(se)
	}
	var prof *profile.Profiler
	if opts.Profile != nil {
		prof = profile.New(opts.Profile.SampleInterval)
	}
	nw, err := overlay.NewNetwork(ring, se, overlay.Config{
		MinHopDelay:    opts.MinHopDelay,
		MaxHopDelay:    opts.MaxHopDelay,
		GroupMultiSend: true,
		BatchWindow:    opts.BatchWindow,
		Faults:         faults,
		Trace:          tracer,
		Metrics:        om,
		// With bouncing on, messages in flight to a node that departs
		// re-route to the key's new owner. On a static ring it never
		// fires, so enabling it unconditionally costs nothing. The
		// reliable channel's retransmit escalation also re-routes
		// through this path, so Faults requires it.
		Bounce: true,
	})
	if err != nil {
		return nil, err
	}
	cat, err := relation.NewCatalog()
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Strategy = opts.Strategy
	cfg.Delta = opts.Delta
	cfg.UseCT = !opts.DisableCT
	cfg.PiggybackRIC = !opts.DisablePiggyback
	cfg.AllowAttrRewrites = opts.AllowAttrRewrites
	cfg.EnableMigration = opts.EnableMigration
	cfg.SubscriberSideAgg = opts.SubscriberSideAgg
	cfg.AttrReplicas = opts.AttrReplicas
	cfg.ReplicationFactor = opts.ReplicationFactor
	cfg.Trace = tracer
	cfg.Metrics = om
	cfg.Profile = prof
	cfg.Provenance = opts.Provenance
	// Exact-duplicate dedup is sound whenever completions are strictly
	// delayed past the attach tick; with the defaulted 1/1 delay model
	// that is always the case, so byte-identical resubmissions share
	// unconditionally. Full canonical-form sharing is opt-in.
	cfg.ShareExact = opts.MinHopDelay >= 1
	cfg.ShareQueries = opts.Sharing
	cfg.Catalog = cat
	eng := core.NewEngine(ring, se, nw, cfg)
	mgr := churn.New(eng, churn.Config{
		Rates:          churnRates,
		Interval:       opts.Churn.Interval,
		StabilizeEvery: opts.Churn.StabilizeInterval,
		MinNodes:       opts.Churn.MinNodes,
		Seed:           opts.Seed + 2,
	})
	// The manager's periodic loops start with the first membership
	// change: immediately when spontaneous churn is configured, lazily
	// on the first AddNode/RemoveNode/Crash otherwise, so a static
	// network pays nothing for stabilization it cannot need.
	if churnRates.Enabled() {
		mgr.Start()
	}
	return &Network{
		eng:   eng,
		cat:   cat,
		mgr:   mgr,
		rng:   rand.New(rand.NewSource(opts.Seed + 1)),
		subs:  make(map[string]*Subscription),
		trace: tracer,
		obsM:  om,
		prof:  prof,
	}, nil
}

// MustNetwork is NewNetwork that panics on error.
func MustNetwork(opts Options) *Network {
	n, err := NewNetwork(opts)
	if err != nil {
		panic(err)
	}
	return n
}

// DefineRelation declares a relation schema that tuples and queries may
// reference.
func (n *Network) DefineRelation(name string, attrs ...string) error {
	s, err := relation.NewSchema(name, attrs...)
	if err != nil {
		return err
	}
	return n.cat.Add(s)
}

// MustDefineRelation is DefineRelation that panics on error.
func (n *Network) MustDefineRelation(name string, attrs ...string) {
	if err := n.DefineRelation(name, attrs...); err != nil {
		panic(err)
	}
}

// Subscribe parses a continuous query and submits it to the network
// from a pseudo-randomly chosen node. Answers accumulate on the
// returned Subscription as the virtual network processes events.
func (n *Network) Subscribe(sql string) (*Subscription, error) {
	q, err := sqlparse.Parse(sql, n.cat)
	if err != nil {
		return nil, err
	}
	qid, err := n.eng.SubmitQuery(n.randomNode(), q)
	if err != nil {
		return nil, err
	}
	sub := &Subscription{ID: qid, SQL: q.String(), net: n}
	n.subs[qid] = sub
	return sub, nil
}

// MustSubscribe is Subscribe that panics on error.
func (n *Network) MustSubscribe(sql string) *Subscription {
	s, err := n.Subscribe(sql)
	if err != nil {
		panic(err)
	}
	return s
}

// Publish inserts one tuple into the named relation from a
// pseudo-randomly chosen node. Values may be int, int64 or string; the
// count must match the relation's arity.
func (n *Network) Publish(rel string, values ...interface{}) error {
	s, ok := n.cat.Schema(rel)
	if !ok {
		return fmt.Errorf("rjoin: unknown relation %s", rel)
	}
	vals := make([]Value, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case int:
			vals[i] = Int(int64(x))
		case int64:
			vals[i] = Int(x)
		case string:
			vals[i] = Str(x)
		case Value:
			vals[i] = x
		default:
			return fmt.Errorf("rjoin: unsupported value type %T at position %d", v, i)
		}
	}
	t, err := relation.NewTuple(s, vals...)
	if err != nil {
		return err
	}
	n.eng.PublishTuple(n.randomNode(), t)
	return nil
}

// randomNode picks a pseudo-random node from the live membership (a
// construction-time snapshot would go stale under churn).
func (n *Network) randomNode() *chord.Node {
	nodes := n.eng.Ring().Nodes()
	return nodes[n.rng.Intn(len(nodes))]
}

// MustPublish is Publish that panics on error.
func (n *Network) MustPublish(rel string, values ...interface{}) {
	if err := n.Publish(rel, values...); err != nil {
		panic(err)
	}
}

// Run processes all in-flight network activity to quiescence.
func (n *Network) Run() { n.eng.Run() }

// RunFor advances the virtual clock by d ticks, processing everything
// scheduled in that span.
func (n *Network) RunFor(d int64) { n.eng.RunUntil(n.eng.Sim().Now() + sim.Time(d)) }

// Now returns the current virtual time in ticks.
func (n *Network) Now() int64 { return int64(n.eng.Sim().Now()) }

// Nodes returns the current overlay size (membership may change at
// runtime under churn).
func (n *Network) Nodes() int { return n.eng.Ring().Size() }

// AddNode joins one new node at a pseudo-random free identifier. The
// node takes over its arc of the key space, receiving the stored state
// that falls in it from its successor.
func (n *Network) AddNode() error {
	_, err := n.mgr.Join()
	return err
}

// RemoveNode removes the node at the given position of the current
// identifier-ordered node list, gracefully: its stored queries,
// tuples, candidate-table entries and RIC state transfer to its
// successor as counted handover messages, so no answer is lost or
// duplicated. The last node of a network cannot be removed.
func (n *Network) RemoveNode(index int) error {
	node, err := n.nodeAt(index, "remove")
	if err != nil {
		return err
	}
	return n.mgr.Leave(node)
}

// Crash abruptly removes the node at the given position of the current
// identifier-ordered node list. Its state is lost; the engine
// re-indexes the input queries that died with it (preserving their
// identity and insertion time), and Stats counts the rewritten queries
// and tuples that could not be saved. The last node cannot be crashed.
func (n *Network) Crash(index int) error {
	node, err := n.nodeAt(index, "crash")
	if err != nil {
		return err
	}
	return n.mgr.Crash(node)
}

// nodeAt resolves a position in the identifier-ordered node list;
// action names the membership operation for the last-node error, so
// Crash does not report that it "cannot remove".
func (n *Network) nodeAt(index int, action string) (*chord.Node, error) {
	nodes := n.eng.Ring().Nodes()
	if index < 0 || index >= len(nodes) {
		return nil, fmt.Errorf("rjoin: node index %d outside [0, %d)", index, len(nodes))
	}
	if len(nodes) <= 1 {
		return nil, fmt.Errorf("rjoin: cannot %s the last node", action)
	}
	return nodes[index], nil
}

// Stats snapshots network-wide cost measures.
func (n *Network) Stats() Stats {
	n.eng.Sync() // fold any unmerged parallel shard deltas in first
	total := n.eng.Net().Traffic.Total()
	byTag := TagTraffic{
		RIC:   n.eng.Net().TaggedTraffic(core.TagRIC).Total(),
		Agg:   n.eng.Net().TaggedTraffic(core.TagAgg).Total(),
		Churn: n.eng.Net().TaggedTraffic(core.TagChurn).Total(),
		Repl:  n.eng.Net().TaggedTraffic(overlay.TagRepl).Total(),
	}
	byTag.App = total - byTag.RIC - byTag.Agg - byTag.Churn - byTag.Repl
	return Stats{
		Messages:            total,
		RICMessages:         byTag.RIC,
		QueryProcessingLoad: n.eng.QPL.Total(),
		StorageLoad:         n.eng.SL.Total(),
		Answers:             n.eng.Counters.AnswersDelivered,
		RewritesCreated:     n.eng.Counters.RewritesCreated,
		AggPartials:         n.eng.Counters.AggPartials,
		AggUpdates:          n.eng.Counters.AggUpdates,
		AggStateLost:        n.eng.Counters.AggStateLost,
		MaxNodeQPL:          n.eng.QPL.Max(),
		ParticipatingNodes:  n.eng.QPL.Participants(),
		Joins:               n.mgr.Stats.Joins,
		Leaves:              n.mgr.Stats.Leaves,
		Crashes:             n.mgr.Stats.Crashes,
		HandoverMessages:    n.eng.Counters.HandoverMessages,
		HandoverEntries:     n.eng.Counters.HandoverEntries,
		MessagesRerouted:    n.eng.Counters.MessagesRerouted,
		MessagesBounced:     n.eng.Net().Bounced,
		QueriesRecovered:    n.eng.Counters.QueriesRecovered,
		QueriesLost:         n.eng.Counters.QueriesLost,
		RewritesLost:        n.eng.Counters.RewritesLost,
		TuplesLost:          n.eng.Counters.TuplesLost,
		ReplicationMessages: n.eng.Net().TaggedTraffic(overlay.TagRepl).Total(),
		ReplUpdates:         n.eng.Counters.ReplUpdates,
		ReplOps:             n.eng.Counters.ReplOps,
		ReplSyncs:           n.eng.Counters.ReplSyncs,
		ReplPromotions:      n.eng.Counters.ReplPromotions,
		ReplEntriesPromoted: n.eng.Counters.ReplEntriesPromoted,
		Dropped:             n.eng.Net().Dropped,
		Duplicated:          n.eng.Net().Duplicated,
		Retransmits:         n.eng.Net().Retransmits,
		AckMessages:         n.eng.Net().AckMessages,
		Abandoned:           n.eng.Net().Abandoned,
		QueriesShared:       n.eng.Counters.QueriesShared,
		QueriesUnsubscribed: n.eng.Counters.QueriesUnsubscribed,
		SharedFanoutRows:    n.eng.Counters.SharedFanoutRows,
		ContainmentRewrites: n.eng.Counters.ContainmentRewrites,
		TrafficByTag:        byTag,
	}
}

// LatencySummary is a histogram snapshot: answer latency in virtual
// ticks between the triggering publish and the answer's delivery.
// Buckets are exponential; Buckets[i] counts observations in
// (BucketBound(i-1), BucketBound(i)].
type LatencySummary = obs.LatencySummary

// TraceEvent is one causal trace event on the virtual clock.
type TraceEvent = obs.Event

// LatencyStats summarizes end-to-end answer latency across all
// subscriptions — the virtual ticks between each triggering publish and
// the delivery of the answer (or aggregate update) it produced. The
// zero summary comes back when Options.Metrics is off.
func (n *Network) LatencyStats() LatencySummary {
	n.eng.Sync()
	if n.obsM == nil {
		return LatencySummary{}
	}
	return n.obsM.AnswerLatency.Summary()
}

// TraceDigest folds the trace recorded so far into one 64-bit value.
// Equal seeds and workloads digest identically at every worker count;
// the golden-trace tests pin this. Zero when tracing is off.
func (n *Network) TraceDigest() uint64 {
	n.eng.Sync()
	return n.trace.Digest()
}

// TraceDropped reports trace events truncated by TraceOptions.MaxEvents.
func (n *Network) TraceDropped() int64 {
	n.eng.Sync()
	return n.trace.Dropped()
}

// TraceEvents returns the canonically ordered trace recorded so far.
// The slice is owned by the network; callers must not mutate it. Nil
// when tracing is off.
func (n *Network) TraceEvents() []TraceEvent {
	n.eng.Sync()
	return n.trace.Events()
}

// WriteTrace writes the trace in Chrome trace-event JSON — load the
// file at ui.perfetto.dev (or chrome://tracing) to see one lane per
// node with every event placed at its virtual time, rendered as
// microseconds. An error is returned when tracing is off.
func (n *Network) WriteTrace(w io.Writer) error {
	n.eng.Sync()
	if n.trace == nil {
		return fmt.Errorf("rjoin: tracing is not enabled (set Options.Trace)")
	}
	return n.trace.WriteChromeTrace(w)
}

// WriteTraceJSONL writes the trace as one JSON object per line, for
// ad-hoc filtering with line-oriented tools. An error is returned when
// tracing is off.
func (n *Network) WriteTraceJSONL(w io.Writer) error {
	n.eng.Sync()
	if n.trace == nil {
		return fmt.Errorf("rjoin: tracing is not enabled (set Options.Trace)")
	}
	return n.trace.WriteJSONL(w)
}

// WriteMetricsCSV writes every completed rate-series window as CSV
// (window_start, interval, scope, name, count): per-node delivery
// rates, per-traffic-tag send rates and per-query answer rates. An
// error is returned when metrics are off.
func (n *Network) WriteMetricsCSV(w io.Writer) error {
	n.eng.Sync()
	if n.obsM == nil {
		return fmt.Errorf("rjoin: metrics are not enabled (set Options.Metrics)")
	}
	n.obsM.Drain(int64(n.eng.Sim().Now()) + n.obsM.Interval())
	return n.obsM.WriteCSV(w)
}

// Explain returns the introspection report of one live or past
// subscription by query ID; see Subscription.Explain.
func (n *Network) Explain(queryID string) (*ExplainReport, error) {
	n.eng.Sync()
	return n.eng.Explain(queryID)
}

// WriteProfileJSON writes the current introspection reports of every
// live subscription as one JSON object keyed by query ID, in sorted
// ID order — the payload the demo binary serves over expvar for live
// inspection. It works with profiling off (reports then carry only
// the static plan and delivery totals), but errors when the network
// has no live subscriptions to report on.
func (n *Network) WriteProfileJSON(w io.Writer) error {
	n.eng.Sync()
	if len(n.subs) == 0 {
		return fmt.Errorf("rjoin: no live subscriptions to profile")
	}
	ids := make([]string, 0, len(n.subs))
	for qid := range n.subs {
		ids = append(ids, qid)
	}
	sort.Strings(ids)
	reports := make(map[string]*ExplainReport, len(ids))
	for _, qid := range ids {
		r, err := n.eng.Explain(qid)
		if err != nil {
			return err
		}
		reports[qid] = r
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

// Engine exposes the underlying engine for advanced use (experiment
// harnesses, metric distributions). Most applications only need the
// Network API.
func (n *Network) Engine() *core.Engine { return n.eng }

// Answers returns the rows delivered so far for this subscription, in
// delivery order. Conversion is incremental: each call converts only
// the rows that arrived since the previous one. The returned slice is
// shared with the subscription; callers must not mutate it.
func (s *Subscription) Answers() []Answer {
	raw := s.net.eng.Answers(s.ID)
	if len(s.cache) == len(raw) {
		return s.cache
	}
	lins := s.net.eng.AnswerLineages(s.ID) // index-aligned; nil unless provenance is on
	for i := len(s.cache); i < len(raw); i++ {
		a := raw[i]
		out := Answer{Query: a.QueryID, Row: a.Values, At: int64(a.At)}
		if i < len(lins) {
			out.Lineage = lins[i]
		}
		s.cache = append(s.cache, out)
	}
	return s.cache
}

// AnswersSince returns the answers delivered at or after the given
// cursor position (an index into the delivery order). A consumer polls
// with its running total — typically cursor += len(batch) after each
// call — and sees every answer exactly once. The returned slice is
// shared; callers must not mutate it.
func (s *Subscription) AnswersSince(cursor int) []Answer {
	all := s.Answers()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(all) {
		cursor = len(all)
	}
	return all[cursor:]
}

// Count returns the number of answers delivered so far, without
// converting or allocating anything.
func (s *Subscription) Count() int { return len(s.net.eng.Answers(s.ID)) }

// Unsubscribe removes this continuous query from the network. The
// subscriber's answer and aggregate state is released immediately; the
// in-network rewrite state follows — when the subscription shares a
// pipeline with others, only its private fan-out entry is dropped, and
// the pipeline itself is torn down once its last subscriber leaves.
// Answers already in flight are discarded on arrival. A second call
// returns an error.
func (s *Subscription) Unsubscribe() error {
	if err := s.net.eng.Unsubscribe(s.ID); err != nil {
		return err
	}
	delete(s.net.subs, s.ID)
	return nil
}

// LatencyStats summarizes this subscription's answer latency: the
// virtual ticks between each triggering publish and the delivery of
// the answer (or aggregate update) it produced. The zero summary comes
// back when Options.Metrics is off.
func (s *Subscription) LatencyStats() LatencySummary {
	s.net.eng.Sync()
	if s.net.obsM == nil {
		return LatencySummary{}
	}
	return s.net.obsM.QueryHist(s.ID).Summary()
}

// Explain returns this subscription's introspection report: the
// placement plan (every index key the query's pipeline occupies, in
// clause order, plus runtime-discovered value-level and aggregator
// keys), the per-placement observed counters when Options.Profile is
// on (arrival rate, evaluations, stored rewrites, rewrite steps,
// completions, candidate-table hits/misses, live state bytes,
// aggregation partials — from which per-placement selectivity and
// fan-out derive), sharing attribution (which pipeline serves this
// query, how many subscribers ride it, the residual applied at
// fan-out), the pipeline's state-footprint series over virtual time,
// and delivery totals. Report.Text renders the EXPLAIN ANALYZE text;
// Report.Digest pins it. Reads are deterministic: at a drained virtual
// time the report is bit-identical at every worker count.
func (s *Subscription) Explain() (*ExplainReport, error) {
	s.net.eng.Sync()
	return s.net.eng.Explain(s.ID)
}

// AggregateRow is one row of an aggregate query's view: the latest
// finalized aggregates of one group in one window epoch. Row has the
// query's select-list shape — grouping columns carry the group's
// values, aggregate positions the aggregates. Epoch is 0 for
// unwindowed queries and clock/windowSize otherwise.
type AggregateRow struct {
	// Query is the subscription's query ID.
	Query string
	// Epoch is the window epoch this row aggregates.
	Epoch int64
	// Row holds the select-list values.
	Row []Value
	// Lineage is the sorted union of the lineage of every answer row
	// folded into this view row. Nil unless Options.Provenance is set.
	Lineage []LineageStep
}

// AggregateRows returns the current aggregate view of a GROUP BY /
// aggregate subscription, sorted canonically (by group, then epoch).
// The view is complete as of the last Run() — aggregator nodes flush
// their dirty group state when the network reaches quiescence. It is
// empty for non-aggregate subscriptions.
func (s *Subscription) AggregateRows() []AggregateRow {
	view := s.net.eng.AggRows(s.ID)
	out := make([]AggregateRow, len(view))
	for i, v := range view {
		out[i] = AggregateRow{Query: s.ID, Epoch: v.Epoch, Row: v.Row, Lineage: v.Lineage}
	}
	return out
}
