package rjoin

import (
	"strings"
	"testing"
)

// TestDistinctNULValuesNotCollapsed is the end-to-end regression test
// for the DISTINCT row-key bug: with the old NUL-separator encoding,
// the rows ("a\x00", "b") and ("a", "\x00b") canonicalized identically
// and the owner-side filter dropped the second real answer. The
// length-prefixed encoding must deliver both.
func TestDistinctNULValuesNotCollapsed(t *testing.T) {
	net := MustNetwork(Options{Nodes: 32, Seed: 6})
	net.MustDefineRelation("R", "A", "B", "C")
	net.MustDefineRelation("S", "C", "D")
	sub := net.MustSubscribe("select distinct R.A, R.B from R,S where R.C=S.C")
	net.Run()
	net.MustPublish("R", "a\x00", "b", 1)
	net.MustPublish("R", "a", "\x00b", 1)
	net.MustPublish("S", 1, 99)
	net.Run()
	ans := sub.Answers()
	if len(ans) != 2 {
		t.Fatalf("got %d answers, want 2 (adversarial NUL rows must stay distinct): %v", len(ans), ans)
	}
	seen := map[[2]string]bool{}
	for _, a := range ans {
		seen[[2]string{a.Row[0].String(), a.Row[1].String()}] = true
	}
	if !seen[[2]string{"a\x00", "b"}] || !seen[[2]string{"a", "\x00b"}] {
		t.Fatalf("wrong answer rows: %v", ans)
	}
	// Equal rows are still deduplicated: republishing the same values
	// adds nothing.
	net.MustPublish("R", "a\x00", "b", 1)
	net.Run()
	if n := sub.Count(); n != 2 {
		t.Fatalf("true duplicate not filtered: %d answers", n)
	}
}

// TestAnswersSinceWithDistinct: the cursor contract must hold under
// DISTINCT filtering — filtered duplicates never surface, never
// advance the stream, and a consumer polling cursor += len(batch) sees
// every retained answer exactly once.
func TestAnswersSinceWithDistinct(t *testing.T) {
	net := MustNetwork(Options{Nodes: 32, Seed: 8})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	sub := net.MustSubscribe("select distinct S.B from R,S where R.A=S.A")
	net.Run()

	cursor := 0
	var collected []string
	poll := func() {
		batch := sub.AnswersSince(cursor)
		cursor += len(batch)
		for _, a := range batch {
			collected = append(collected, a.Row[0].String())
		}
	}

	net.MustPublish("R", 1, 10)
	net.MustPublish("S", 1, 7)
	net.Run()
	poll()
	if len(collected) != 1 {
		t.Fatalf("after first pair: collected %v, want one answer", collected)
	}
	// A second R tuple re-triggers the same S.B=7 projection: DISTINCT
	// filters it, so the poll sees nothing new and the cursor is stable.
	net.MustPublish("R", 1, 11)
	net.Run()
	poll()
	if len(collected) != 1 {
		t.Fatalf("duplicate leaked through AnswersSince: %v", collected)
	}
	// A genuinely new projection arrives exactly once.
	net.MustPublish("S", 1, 8)
	net.Run()
	poll()
	poll() // an extra poll at the tip must return nothing
	if len(collected) != 2 || collected[0] != "7" || collected[1] != "8" {
		t.Fatalf("collected %v, want [7 8]", collected)
	}
	if cursor != sub.Count() {
		t.Fatalf("cursor %d out of step with Count %d", cursor, sub.Count())
	}
	// Out-of-range cursors clamp instead of panicking.
	if got := sub.AnswersSince(-3); len(got) != 2 {
		t.Fatalf("negative cursor returned %d answers, want all 2", len(got))
	}
	if got := sub.AnswersSince(99); len(got) != 0 {
		t.Fatalf("past-the-end cursor returned %d answers, want 0", len(got))
	}
}

// TestRunForZeroAndNegativeDurations: RunFor must never move the clock
// backwards or fire future work early; a zero duration only completes
// work already due at the current instant.
func TestRunForZeroAndNegativeDurations(t *testing.T) {
	net := MustNetwork(Options{Nodes: 16, Seed: 4})
	net.MustDefineRelation("R", "A", "B")
	net.MustDefineRelation("S", "A", "B")
	sub := net.MustSubscribe("select R.B, S.B from R,S where R.A=S.A")
	net.Run()
	before := net.Now()

	net.MustPublish("R", 1, 1)
	net.MustPublish("S", 1, 2)
	// Deliveries take at least one hop delay (>= 1 tick), so neither a
	// zero nor a negative advance may process them.
	net.RunFor(0)
	if net.Now() != before {
		t.Fatalf("RunFor(0) moved the clock %d -> %d", before, net.Now())
	}
	net.RunFor(-25)
	if net.Now() != before {
		t.Fatalf("RunFor(-25) moved the clock %d -> %d", before, net.Now())
	}
	if n := sub.Count(); n != 0 {
		t.Fatalf("non-positive RunFor processed future deliveries: %d answers", n)
	}
	// The work is still queued and completes normally.
	net.Run()
	if n := sub.Count(); n != 1 {
		t.Fatalf("got %d answers after Run, want 1", n)
	}
}

// TestLastNodeMembershipErrors: Crash on the last node must say it
// cannot *crash* it — the shared helper used to report "remove" for
// both operations — and RemoveNode keeps its own verb.
func TestLastNodeMembershipErrors(t *testing.T) {
	net := MustNetwork(Options{Nodes: 1, Seed: 1})
	if err := net.Crash(0); err == nil {
		t.Fatal("crashing the last node succeeded")
	} else if !strings.Contains(err.Error(), "cannot crash the last node") {
		t.Fatalf("crash error has wrong verb: %v", err)
	}
	if err := net.RemoveNode(0); err == nil {
		t.Fatal("removing the last node succeeded")
	} else if !strings.Contains(err.Error(), "cannot remove the last node") {
		t.Fatalf("remove error has wrong verb: %v", err)
	}
	// Index validation is unchanged.
	if err := net.Crash(5); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("out-of-range crash index: %v", err)
	}
}

// TestWorkersOptionValidation pins the parallel-mode contract at the
// public API: negative counts, a missing lookahead window and the
// cross-shard oracle strategy are rejected; 0 and 1 mean the serial
// engine and replay identically.
func TestWorkersOptionValidation(t *testing.T) {
	if _, err := NewNetwork(Options{Nodes: 8, Workers: -1}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	if _, err := NewNetwork(Options{Nodes: 8, Workers: 2, MaxHopDelay: 3}); err == nil {
		t.Fatal("Workers 2 with MinHopDelay 0 accepted (no lookahead window)")
	}
	if _, err := NewNetwork(Options{Nodes: 8, Workers: 2, Strategy: StrategyWorst}); err == nil {
		t.Fatal("Workers 2 with StrategyWorst accepted")
	}
	if _, err := NewNetwork(Options{Nodes: 8, Workers: 2}); err != nil {
		t.Fatalf("defaulted hop delays (1,1) must satisfy the lookahead requirement: %v", err)
	}
	// Workers 0 and 1 are both the serial engine: identical digests.
	base := Options{Nodes: 48, Seed: 42}
	one := base
	one.Workers = 1
	st0, d0 := goldenWorkload(base)
	st1, d1 := goldenWorkload(one)
	if st0 != st1 || d0 != d1 {
		t.Fatalf("Workers 1 diverged from serial: %+v %x vs %+v %x", st0, d0, st1, d1)
	}
}
