package overlay

import (
	"math/rand"
	"testing"

	"rjoin/internal/chord"
	"rjoin/internal/id"
	"rjoin/internal/sim"
)

type fixture struct {
	ring   *chord.Ring
	engine *sim.Engine
	nw     *Network
	nodes  []*chord.Node
	// received[i] collects messages delivered to nodes[i]
	received map[id.ID][]Message
}

func newFixture(t testing.TB, n int, cfg Config) *fixture {
	t.Helper()
	f := &fixture{
		ring:     chord.NewRing(),
		engine:   sim.NewEngine(1),
		received: make(map[id.ID][]Message),
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		for {
			if _, err := f.ring.Join(id.ID(rng.Uint64())); err == nil {
				break
			}
		}
	}
	f.ring.BuildPerfect()
	f.nw = MustNetwork(f.ring, f.engine, cfg)
	f.nodes = f.ring.Nodes()
	for _, node := range f.nodes {
		nid := node.ID()
		f.nw.Attach(node, HandlerFunc(func(now sim.Time, msg Message) {
			f.received[nid] = append(f.received[nid], msg)
		}))
	}
	return f
}

// TestNewNetworkValidatesDelayBounds: the overlay must reject inverted
// or negative hop-delay bounds with an error — the silent repair it
// used to apply let internal callers construct networks the public API
// would have refused.
func TestNewNetworkValidatesDelayBounds(t *testing.T) {
	ring := chord.NewRing()
	if _, err := ring.Join(1); err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine(1)
	for _, cfg := range []Config{
		{MinHopDelay: 5, MaxHopDelay: 2},
		{MinHopDelay: -1, MaxHopDelay: 1},
		{MinHopDelay: 0, MaxHopDelay: -3},
	} {
		if _, err := NewNetwork(ring, engine, cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
	for _, cfg := range []Config{
		{},
		{MinHopDelay: 0, MaxHopDelay: 4},
		{MinHopDelay: 2, MaxHopDelay: 2},
	} {
		if _, err := NewNetwork(ring, engine, cfg); err != nil {
			t.Errorf("valid config %+v rejected: %v", cfg, err)
		}
	}
}

func TestSendDeliversToOwner(t *testing.T) {
	f := newFixture(t, 64, DefaultConfig())
	key := id.HashKey("R+A")
	owner := f.nw.Send(f.nodes[0], key, "hello")
	f.engine.Run()
	if want := f.ring.Owner(key); owner != want {
		t.Fatalf("Send routed to %v, want %v", owner, want)
	}
	got := f.received[owner.ID()]
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("owner received %v", got)
	}
}

func TestSendChargesTrafficAlongPath(t *testing.T) {
	f := newFixture(t, 128, DefaultConfig())
	from := f.nodes[0]
	key := id.HashKey("some-key")
	_, path := from.Lookup(key)
	before := f.nw.Traffic.Total()
	f.nw.Send(from, key, "x")
	charged := f.nw.Traffic.Total() - before
	if int(charged) != len(path) {
		t.Fatalf("charged %d messages for a %d-hop path", charged, len(path))
	}
	if f.nw.Traffic.Get(from.ID()) == 0 && len(path) > 0 {
		t.Fatal("origin not charged")
	}
}

func TestSelfSendIsFree(t *testing.T) {
	f := newFixture(t, 32, DefaultConfig())
	from := f.nodes[5]
	f.nw.Send(from, from.ID(), "self")
	if f.nw.Traffic.Total() != 0 {
		t.Fatalf("self delivery charged %d messages", f.nw.Traffic.Total())
	}
	f.engine.Run()
	if len(f.received[from.ID()]) != 1 {
		t.Fatal("self delivery lost")
	}
}

func TestSendDirectSingleMessage(t *testing.T) {
	f := newFixture(t, 64, DefaultConfig())
	from, to := f.nodes[0], f.nodes[10]
	f.nw.SendDirect(from, to.ID(), "direct")
	if f.nw.Traffic.Total() != 1 {
		t.Fatalf("SendDirect cost %d messages, want 1", f.nw.Traffic.Total())
	}
	f.engine.Run()
	if len(f.received[to.ID()]) != 1 {
		t.Fatal("direct message lost")
	}
}

func TestSendDirectToDeadNodeDropped(t *testing.T) {
	f := newFixture(t, 64, DefaultConfig())
	victim := f.nodes[3]
	f.ring.Fail(victim)
	f.nw.SendDirect(f.nodes[0], victim.ID(), "lost")
	f.engine.Run()
	if len(f.received[victim.ID()]) != 0 {
		t.Fatal("message delivered to dead node")
	}
}

// keyedMsg is a test message implementing Rekeyable.
type keyedMsg struct {
	key  id.ID
	body string
}

func (m keyedMsg) RingKey() id.ID { return m.key }

// An in-flight message whose recipient dies before delivery bounces to
// the current owner of its ring key when Bounce is enabled.
func TestBounceInFlightToNewOwner(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bounce = true
	f := newFixture(t, 64, cfg)
	key := id.HashKey("doomed-key")
	victim := f.ring.Owner(key)
	f.nw.Send(f.nodes[0], key, keyedMsg{key: key, body: "survive"})
	f.ring.Fail(victim) // dies while the message is in flight
	f.ring.StabilizeAll()
	f.engine.Run()
	heir := f.ring.Owner(key)
	if heir == victim {
		t.Fatal("fixture broken: owner unchanged after failure")
	}
	got := f.received[heir.ID()]
	if len(got) != 1 || got[0].(keyedMsg).body != "survive" {
		t.Fatalf("heir received %v, want the bounced message", got)
	}
	if f.nw.Bounced != 1 {
		t.Fatalf("Bounced = %d, want 1", f.nw.Bounced)
	}
}

// Without Bounce (the default), dead-recipient messages keep their
// historical drop semantics even when Rekeyable.
func TestNoBounceByDefault(t *testing.T) {
	f := newFixture(t, 64, DefaultConfig())
	key := id.HashKey("doomed-key")
	victim := f.ring.Owner(key)
	f.nw.Send(f.nodes[0], key, keyedMsg{key: key, body: "lost"})
	f.ring.Fail(victim)
	f.engine.Run()
	heir := f.ring.Owner(key)
	if len(f.received[heir.ID()]) != 0 || f.nw.Bounced != 0 {
		t.Fatal("message must drop when bouncing is disabled")
	}
}

// SendDirect to an identifier that already left re-routes by ring key.
func TestSendDirectBouncesWhenAddresseeGone(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bounce = true
	f := newFixture(t, 64, cfg)
	victim := f.nodes[7]
	vid := victim.ID()
	f.ring.Fail(victim)
	f.nw.SendDirect(f.nodes[0], vid, keyedMsg{key: vid, body: "answer"})
	f.engine.Run()
	heir := f.ring.Owner(vid)
	got := f.received[heir.ID()]
	if len(got) != 1 || got[0].(keyedMsg).body != "answer" {
		t.Fatalf("successor received %v, want the bounced direct message", got)
	}
}

// Non-Rekeyable messages cannot be re-routed and are dropped even with
// bouncing on.
func TestBounceRequiresRingKey(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bounce = true
	f := newFixture(t, 64, cfg)
	victim := f.nodes[3]
	f.ring.Fail(victim)
	f.nw.SendDirect(f.nodes[0], victim.ID(), "opaque")
	f.engine.Run()
	if f.nw.Bounced != 0 {
		t.Fatal("opaque message must not bounce")
	}
}

// Transfer delivers instantly (same tick), costs one message, and is
// ordered before any regular send issued afterwards.
func TestTransferInstantAndCounted(t *testing.T) {
	f := newFixture(t, 64, DefaultConfig())
	from, to := f.nodes[0], f.nodes[9]
	var order []string
	f.nw.Attach(to, HandlerFunc(func(now sim.Time, msg Message) {
		if now != f.engine.Now() && len(order) == 0 {
			t.Fatalf("transfer delivered at %d, want instant", now)
		}
		order = append(order, msg.(string))
	}))
	f.nw.Transfer(from, to.ID(), "state")
	f.nw.SendDirect(from, to.ID(), "later")
	f.engine.Run()
	if len(order) != 2 || order[0] != "state" || order[1] != "later" {
		t.Fatalf("delivery order %v, want [state later]", order)
	}
	if f.nw.Traffic.Get(from.ID()) != 2 {
		t.Fatalf("sender charged %d, want 2", f.nw.Traffic.Get(from.ID()))
	}
}

func TestMultiSendDeliversAll(t *testing.T) {
	for _, grouping := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.GroupMultiSend = grouping
		f := newFixture(t, 128, cfg)
		keys := []id.ID{id.HashKey("a"), id.HashKey("b"), id.HashKey("c"), id.HashKey("d")}
		msgs := []Message{"ma", "mb", "mc", "md"}
		f.nw.MultiSend(f.nodes[0], msgs, keys)
		f.engine.Run()
		for j, k := range keys {
			owner := f.ring.Owner(k)
			found := false
			for _, m := range f.received[owner.ID()] {
				if m == msgs[j] {
					found = true
				}
			}
			if !found {
				t.Fatalf("grouping=%v: message %v not delivered to owner of %v", grouping, msgs[j], k)
			}
		}
	}
}

func TestGroupedMultiSendCheaper(t *testing.T) {
	// With many keys, chaining along the ring must not cost more than
	// independent lookups from the origin (it shares prefixes).
	mk := func(grouping bool) int64 {
		cfg := DefaultConfig()
		cfg.GroupMultiSend = grouping
		f := newFixture(t, 256, cfg)
		var keys []id.ID
		var msgs []Message
		for i := 0; i < 16; i++ {
			keys = append(keys, id.HashKey(string(rune('a'+i))))
			msgs = append(msgs, i)
		}
		f.nw.MultiSend(f.nodes[0], msgs, keys)
		f.engine.Run()
		return f.nw.MessagesSent
	}
	grouped, independent := mk(true), mk(false)
	if grouped > independent {
		t.Fatalf("grouped multiSend (%d msgs) costs more than independent (%d)", grouped, independent)
	}
}

func TestBroadcast(t *testing.T) {
	f := newFixture(t, 64, DefaultConfig())
	keys := []id.ID{id.HashKey("x"), id.HashKey("y")}
	f.nw.Broadcast(f.nodes[0], keys, "all")
	f.engine.Run()
	for _, k := range keys {
		owner := f.ring.Owner(k)
		if len(f.received[owner.ID()]) == 0 {
			t.Fatalf("broadcast missed owner of %v", k)
		}
	}
}

func TestDelaysBounded(t *testing.T) {
	cfg := Config{MinHopDelay: 2, MaxHopDelay: 9, GroupMultiSend: true}
	f := newFixture(t, 64, cfg)
	from := f.nodes[0]
	key := id.HashKey("delay-test")
	_, path := from.Lookup(key)
	start := f.engine.Now()
	var deliveredAt sim.Time = -1
	owner := f.ring.Owner(key)
	f.nw.Attach(owner, HandlerFunc(func(now sim.Time, msg Message) { deliveredAt = now }))
	f.nw.Send(from, key, "m")
	f.engine.Run()
	if deliveredAt < 0 {
		t.Fatal("never delivered")
	}
	hops := int64(len(path))
	if d := int64(deliveredAt - start); d < cfg.MinHopDelay*hops || d > cfg.MaxHopDelay*hops {
		t.Fatalf("delay %d outside [%d,%d] for %d hops", d, cfg.MinHopDelay*hops, cfg.MaxHopDelay*hops, hops)
	}
}

func TestMaxDeltaGrowsWithNetwork(t *testing.T) {
	small := newFixture(t, 8, DefaultConfig())
	large := newFixture(t, 512, DefaultConfig())
	if small.nw.MaxDelta() >= large.nw.MaxDelta() {
		t.Fatalf("MaxDelta small=%d >= large=%d", small.nw.MaxDelta(), large.nw.MaxDelta())
	}
}

func TestMultiSendLengthMismatchPanics(t *testing.T) {
	f := newFixture(t, 8, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	f.nw.MultiSend(f.nodes[0], []Message{"a"}, nil)
}

func TestDeliveredCounter(t *testing.T) {
	f := newFixture(t, 32, DefaultConfig())
	f.nw.Send(f.nodes[0], id.HashKey("k1"), "a")
	f.nw.SendDirect(f.nodes[0], f.nodes[1].ID(), "b")
	f.engine.Run()
	if f.nw.Delivered != 2 {
		t.Fatalf("Delivered = %d, want 2", f.nw.Delivered)
	}
}
