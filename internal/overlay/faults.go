// Unreliable-network mode: deterministic fault injection and the
// end-to-end reliable delivery machinery that masks it.
//
// With Config.Faults set, every routed or direct send (Send, MultiSend,
// SendDirect, batched flushes — everything except the instantaneous
// Transfer/ReplicateTo handoffs and node-local deliveries) runs over a
// per-(source, destination) sequence-numbered channel. The transmission
// of each sequence number is subject to the fault plan: a Bernoulli drop
// draw, a duplication draw, a delay-spike draw, and scheduled link
// partitions between node sets. All draws come from a dedicated
// per-node counter-based stream (salt faultSalt), so enabling faults
// perturbs neither the hop-delay nor the placement draw sequences, and a
// faulty run replays bit-identically for a given seed and worker count.
//
// Masking is classic ARQ. The receiver suppresses duplicate sequence
// numbers with a reliable.Dedup filter and acknowledges cumulatively —
// a coalesced ack message per (receiver, sender) pair after AckDelay
// ticks, plus a piggybacked watermark on every reverse-direction
// envelope. The sender retains each message until acknowledged and
// retransmits on a timer with exponential backoff and jitter.
//
// Everything except a first transmission is a background event: acks,
// retransmit timers and retransmitted copies all execute as the clock
// passes them but never stall quiescence detection or extend a drain.
// This is what keeps the all-zero plan bit-identical to a faults-off
// run — the application schedule quiesces at exactly the same instant,
// with the transport's bookkeeping tail left pending on the heap. The
// core engine's drain loop makes lost payloads terminal anyway: when
// foreground work runs dry it asks NextRetransmit for the earliest
// deadline of an entry the receiver has *not* seen (an entry that is
// merely unacknowledged needs no clock driving; its ack is already
// scheduled) and advances the clock there, repeating until every
// payload is delivered or abandoned. A sender whose ladder is exhausted
// presumes the peer dead and escalates into the bounce path: the
// message is re-routed to the current owner of its ring key on a fresh
// channel. If ground truth says the original peer still owns the key
// (the acks were lost, not the peer), the ladder resets on the same
// channel instead — the receiver-side dedup keeps masking the
// duplicates — for at most relMaxLadders rounds, after which the
// message is abandoned so a black-holed peer cannot spin the
// simulation forever.
//
// Shard discipline (parallel engine): a channel's sender-side state is
// touched only at send time, at ack arrival, and by retransmit timers —
// all events bound to the sender's shard. Receiver-side state is
// touched only at envelope delivery and ack emission — both bound to
// the receiver's shard. Fault counters ride the per-shard lanes and
// fold at Sync like all overlay accounting.
package overlay

import (
	"fmt"

	"rjoin/internal/chord"
	"rjoin/internal/id"
	"rjoin/internal/obs"
	"rjoin/internal/reliable"
	"rjoin/internal/sim"
)

// faultSalt keys the per-node fault-injection streams; distinct from the
// hop-delay (0x0e7a) and placement (0x91ac) salts so enabling faults
// cannot perturb either draw sequence.
const faultSalt = 0xfa17

// relMaxLadders bounds how many times an exhausted retransmit ladder may
// reset against a peer that ground truth still says owns the key. It is
// a termination guard, not a tuning knob: at any drop rate the plan can
// express, losing every transmission and every ack of that many ladders
// is beyond astronomically unlikely, but a deliberately black-holed
// receiver (alive, detached handler) must not keep the drain loop alive
// forever.
const relMaxLadders = 8

// Partition is one scheduled link partition: while the virtual clock is
// in [Start, End), every transmission between a node in Side and a node
// outside it is dropped — payload envelopes, retransmissions and acks
// alike. Ring membership and ground-truth lookups are unaffected: the
// partition models transport loss, not failure detection.
type Partition struct {
	Start, End sim.Time
	Side       map[id.ID]bool
}

// Faults is the fault-injection plan. All probabilities are per
// transmission (retransmissions draw afresh) and must lie in [0, 1].
// The zero plan (all rates zero, no partitions) injects nothing but
// still runs every send through the reliable channel machinery; the
// delivered schedule, traffic metric and answer stream are then
// identical to a faults-off run.
type Faults struct {
	// DropProb is the probability a transmission is lost.
	DropProb float64
	// DupProb is the probability a transmission is duplicated (one
	// extra copy, suppressed by receiver-side dedup).
	DupProb float64
	// SpikeProb is the probability a transmission's delay is inflated
	// by a uniform draw from [0, SpikeMax] extra ticks.
	SpikeProb float64
	SpikeMax  int64
	// Partitions are scheduled link outages; see Partition. More can be
	// added after construction with Network.AddPartition.
	Partitions []Partition
	// RTO is the base retransmit timeout in ticks; 0 derives a bound
	// from the delay model (one round trip at maximum delay plus the
	// ack-coalescing window). Retry k waits RTO<<k plus jitter.
	RTO int64
	// MaxRetries is the length of one backoff ladder; 0 means 6.
	MaxRetries int
	// AckDelay is the ack-coalescing window in ticks; 0 means 2.
	AckDelay int64
}

// validate rejects plans NewNetwork must not accept.
func (f *Faults) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DropProb", f.DropProb}, {"DupProb", f.DupProb}, {"SpikeProb", f.SpikeProb}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("overlay: Faults.%s %v outside [0, 1]", p.name, p.v)
		}
	}
	if f.SpikeMax < 0 {
		return fmt.Errorf("overlay: negative Faults.SpikeMax %d", f.SpikeMax)
	}
	if f.RTO < 0 || f.AckDelay < 0 || f.MaxRetries < 0 {
		return fmt.Errorf("overlay: negative Faults timer parameter (RTO %d, AckDelay %d, MaxRetries %d)",
			f.RTO, f.AckDelay, f.MaxRetries)
	}
	for i, p := range f.Partitions {
		if p.End < p.Start {
			return fmt.Errorf("overlay: Faults.Partitions[%d] window [%d, %d) ends before it starts",
				i, p.Start, p.End)
		}
	}
	return nil
}

// relState is the network's reliable-channel state: per-node channel
// registries plus the resolved timer parameters.
type relState struct {
	nodes      map[id.ID]*relNode
	rto        int64
	maxRetries int
	ackDelay   int64
}

// relNode is one node's channel state: its private fault stream, its
// sender-side channels by destination, and its receiver-side channels
// by source. The nodes map is only mutated from coordinator context
// (Attach); each relNode's interior is touched only by its own shard.
type relNode struct {
	rng *sim.RNG
	tx  map[id.ID]*txChan
	rx  map[id.ID]*rxChan
}

// txChan is the sender side of one (src → dst) channel.
type txChan struct {
	dst     *chord.Node
	next    uint64 // last assigned sequence number
	unacked map[uint64]*txEntry
}

// txEntry is one retained, not-yet-acknowledged message.
type txEntry struct {
	seq      uint64
	msg      Message
	retries  int      // position on the current backoff ladder
	ladders  int      // exhausted ladders reset against a live same-owner peer
	deadline sim.Time // when the armed retransmit timer fires
}

// rxChan is the receiver side of one (src → dst) channel.
type rxChan struct {
	src          *chord.Node
	dedup        reliable.Dedup
	ackScheduled bool
}

// relEnv is the wire envelope of one reliable transmission. The ack
// field piggybacks the sender's receive watermark for the reverse
// channel, so steady bidirectional traffic self-acknowledges.
type relEnv struct {
	src *chord.Node
	seq uint64
	ack uint64
	msg Message
}

// relAck is a standalone cumulative acknowledgment.
type relAck struct {
	from *chord.Node // the acknowledging receiver
	cum  uint64
}

// relTimer identifies the channel entry a retransmit timer guards.
type relTimer struct {
	src *chord.Node
	dst id.ID
	seq uint64
}

// initFaults resolves the plan's timer parameters and allocates the
// channel registry. Called from NewNetwork when cfg.Faults != nil.
func (nw *Network) initFaults() {
	f := nw.cfg.Faults
	rto := f.RTO
	if rto == 0 {
		ackDelay := f.AckDelay
		if ackDelay == 0 {
			ackDelay = 2
		}
		// One full round trip at worst-case delay — outbound hop with a
		// spike, the coalescing window, the ack hop — plus slack.
		rto = 2*(nw.cfg.MaxHopDelay+f.SpikeMax) + ackDelay + 2
	}
	maxRetries := f.MaxRetries
	if maxRetries == 0 {
		maxRetries = 6
	}
	ackDelay := f.AckDelay
	if ackDelay == 0 {
		ackDelay = 2
	}
	nw.rel = &relState{
		nodes:      make(map[id.ID]*relNode),
		rto:        rto,
		maxRetries: maxRetries,
		ackDelay:   ackDelay,
	}
}

// AddPartition schedules an additional link partition after
// construction — harnesses that only learn node identifiers once the
// ring is built use this. Coordinator context only.
func (nw *Network) AddPartition(p Partition) error {
	if nw.cfg.Faults == nil {
		return fmt.Errorf("overlay: AddPartition on a network without Faults")
	}
	if p.End < p.Start {
		return fmt.Errorf("overlay: partition window [%d, %d) ends before it starts", p.Start, p.End)
	}
	nw.cfg.Faults.Partitions = append(nw.cfg.Faults.Partitions, p)
	return nil
}

// partitioned reports whether a transmission between x and y is blocked
// by an active partition window at time now.
func (nw *Network) partitioned(x, y id.ID, now sim.Time) bool {
	for i := range nw.cfg.Faults.Partitions {
		p := &nw.cfg.Faults.Partitions[i]
		if now >= p.Start && now < p.End && p.Side[x] != p.Side[y] {
			return true
		}
	}
	return false
}

// relNodeFor returns a node's channel state, creating it on first use.
// Creation happens from Attach (coordinator context); later calls only
// read the map.
func (nw *Network) relNodeFor(n id.ID) *relNode {
	rn, ok := nw.rel.nodes[n]
	if !ok {
		rn = &relNode{
			rng: sim.NewRNG(nw.Engine.Seed(), uint64(n), faultSalt),
			tx:  make(map[id.ID]*txChan),
			rx:  make(map[id.ID]*rxChan),
		}
		nw.rel.nodes[n] = rn
	}
	return rn
}

// shardOf resolves a node's destination shard for event scheduling.
func (nw *Network) shardOf(n *chord.Node) int {
	if !nw.par {
		return sim.NoShard
	}
	return sim.ShardOfID(uint64(n.ID()))
}

// relHop draws a single-hop delay for transport-control traffic
// (retransmissions, acks) from the node's fault stream. The regular
// hop-delay source is deliberately not used: enabling faults must not
// perturb its draw sequence.
func (nw *Network) relHop(rng *sim.RNG) int64 {
	if nw.cfg.MaxHopDelay == nw.cfg.MinHopDelay {
		return nw.cfg.MinHopDelay
	}
	return nw.cfg.MinHopDelay + rng.Int63n(nw.cfg.MaxHopDelay-nw.cfg.MinHopDelay+1)
}

// sendReliable opens (or continues) the (from → owner) channel with one
// retained message: assign the next sequence number, transmit under the
// fault plan, and arm the first retransmit timer. delay is the routed
// delivery delay already charged by the caller.
func (nw *Network) sendReliable(a actor, from, owner *chord.Node, delay int64, msg Message) {
	rn := nw.relNodeFor(from.ID())
	tc, ok := rn.tx[owner.ID()]
	if !ok {
		tc = &txChan{dst: owner, unacked: make(map[uint64]*txEntry)}
		rn.tx[owner.ID()] = tc
	}
	tc.next++
	e := &txEntry{seq: tc.next, msg: msg}
	tc.unacked[e.seq] = e
	nw.transmit(a, rn, from, tc.dst, e.seq, delay, msg, false)
	nw.armTimer(a, from, owner.ID(), e, delay+nw.rel.rto)
}

// transmit puts one copy of a channel sequence number on the wire,
// subject to the fault plan: partition windows and the drop draw lose
// it, the duplication draw adds a second copy, the spike draw inflates
// a copy's delay. Every draw comes from the sender's fault stream. A
// first transmission delivers as a foreground event (it is the
// application's work); retransmissions are background — they must not
// perturb quiescence, which is what keeps a zero-rate plan's clock
// identical to a faults-off run even when a timer fires spuriously.
func (nw *Network) transmit(a actor, rn *relNode, src, dst *chord.Node, seq uint64, delay int64, msg Message, retx bool) {
	f := nw.cfg.Faults
	now := nw.Engine.Now()
	if nw.partitioned(src.ID(), dst.ID(), now) {
		nw.addFaultDropped(a.l, 1)
		return
	}
	if f.DropProb > 0 && rn.rng.Float64() < f.DropProb {
		nw.addFaultDropped(a.l, 1)
		return
	}
	copies := 1
	if f.DupProb > 0 && rn.rng.Float64() < f.DupProb {
		copies = 2
		nw.addDuplicated(a.l, 1)
	}
	var ack uint64
	if rx, ok := rn.rx[dst.ID()]; ok {
		ack = rx.dedup.Cum()
	}
	env := &relEnv{src: src, seq: seq, ack: ack, msg: msg}
	dstShard := nw.shardOf(dst)
	for i := 0; i < copies; i++ {
		d := delay
		if f.SpikeProb > 0 && rn.rng.Float64() < f.SpikeProb {
			d += rn.rng.Int63n(f.SpikeMax + 1)
		}
		if retx {
			nw.Engine.AfterCtxShardBg(d, deliverReliableEvent, sim.Ctx{A: nw, B: dst, C: env}, a.shard, dstShard)
		} else {
			nw.Engine.AfterCtxShard(d, deliverReliableEvent, sim.Ctx{A: nw, B: dst, C: env}, a.shard, dstShard)
		}
	}
}

// armTimer schedules the retransmit timer guarding one entry, after
// ticks from now, as a background event in the sender's shard.
func (nw *Network) armTimer(a actor, src *chord.Node, dst id.ID, e *txEntry, after int64) {
	e.deadline = nw.Engine.Now() + sim.Time(after)
	tm := &relTimer{src: src, dst: dst, seq: e.seq}
	nw.Engine.AtCtxShardBg(e.deadline, relTimerEvent, sim.Ctx{A: nw, B: tm}, a.shard, nw.shardOf(src))
}

// deliverReliableEvent completes one envelope's delivery at the
// receiver: apply the piggybacked ack, suppress duplicates, schedule a
// coalesced ack, and hand a first-time payload to the handler. A dead
// or detached receiver acknowledges nothing — the sender's ladder
// handles it.
func deliverReliableEvent(now sim.Time, c sim.Ctx) {
	nw := c.A.(*Network)
	owner := c.B.(*chord.Node)
	env := c.C.(*relEnv)
	a := nw.actorFor(owner)
	rn := nw.relNodeFor(owner.ID())
	if env.ack > 0 {
		if tc, ok := rn.tx[env.src.ID()]; ok {
			tc.ackUpTo(env.ack)
		}
	}
	h, ok := nw.handlers[owner.ID()]
	if !ok || !owner.Alive() {
		return
	}
	rx, ok := rn.rx[env.src.ID()]
	if !ok {
		rx = &rxChan{src: env.src}
		rn.rx[env.src.ID()] = rx
	}
	first := rx.dedup.Mark(env.seq)
	nw.scheduleAck(a, owner, rx)
	if !first {
		return // duplicate suppressed
	}
	nw.addDelivered(a.l, 1)
	nw.obsM.IncNode(a.shard, int64(now), uint64(owner.ID()))
	h.HandleMessage(now, env.msg)
}

// ackUpTo releases every retained entry the cumulative watermark
// covers.
func (tc *txChan) ackUpTo(cum uint64) {
	for seq := range tc.unacked {
		if seq <= cum {
			delete(tc.unacked, seq)
		}
	}
}

// scheduleAck arms the receiver's coalesced ack for one channel, unless
// one is already pending. The ack event is background: it flows as the
// clock passes it, but a trailing ack never extends a drain — the
// sender-side entry it would clear is already marked seen on the
// receiver, which is what NextRetransmit consults.
func (nw *Network) scheduleAck(a actor, owner *chord.Node, rx *rxChan) {
	if rx.ackScheduled {
		return
	}
	rx.ackScheduled = true
	nw.Engine.AfterCtxShardBg(nw.rel.ackDelay, ackSendEvent,
		sim.Ctx{A: nw, B: owner, C: rx}, a.shard, nw.shardOf(owner))
}

// ackSendEvent emits one coalesced cumulative ack. The ack itself rides
// the faulty network: partition windows and the drop draw can lose it
// (the sender's retransmission will provoke another).
func ackSendEvent(now sim.Time, c sim.Ctx) {
	nw := c.A.(*Network)
	owner := c.B.(*chord.Node)
	rx := c.C.(*rxChan)
	rx.ackScheduled = false
	if !owner.Alive() {
		return
	}
	a := nw.actorFor(owner)
	rn := nw.relNodeFor(owner.ID())
	nw.addAckMessages(a.l, 1)
	if tr := nw.trace; tr != nil {
		// Arg annotates the ack with the receiver's out-of-order backlog —
		// how many sequence numbers the dedup filter holds above the
		// cumulative watermark this ack carries.
		tr.Emit(a.shard, obs.Event{
			At: int64(now), Kind: obs.KindAck, Node: uint64(owner.ID()),
			Arg: int64(rx.dedup.Outstanding()),
		})
	}
	if nw.partitioned(owner.ID(), rx.src.ID(), now) {
		nw.addFaultDropped(a.l, 1)
		return
	}
	f := nw.cfg.Faults
	if f.DropProb > 0 && rn.rng.Float64() < f.DropProb {
		nw.addFaultDropped(a.l, 1)
		return
	}
	ack := &relAck{from: owner, cum: rx.dedup.Cum()}
	nw.Engine.AfterCtxShardBg(nw.relHop(rn.rng), ackDeliverEvent,
		sim.Ctx{A: nw, B: rx.src, C: ack}, a.shard, nw.shardOf(rx.src))
}

// ackDeliverEvent applies a standalone ack at the original sender.
func ackDeliverEvent(_ sim.Time, c sim.Ctx) {
	nw := c.A.(*Network)
	src := c.B.(*chord.Node)
	ack := c.C.(*relAck)
	rn := nw.relNodeFor(src.ID())
	if tc, ok := rn.tx[ack.from.ID()]; ok {
		tc.ackUpTo(ack.cum)
	}
}

// relTimerEvent fires a retransmit timer: a still-unacknowledged entry
// is retransmitted with exponential backoff and jitter; an exhausted
// ladder escalates.
func relTimerEvent(now sim.Time, c sim.Ctx) {
	nw := c.A.(*Network)
	tm := c.B.(*relTimer)
	rn := nw.relNodeFor(tm.src.ID())
	tc, ok := rn.tx[tm.dst]
	if !ok {
		return
	}
	e, ok := tc.unacked[tm.seq]
	if !ok || e.deadline != now {
		return // acknowledged, or superseded by a re-armed timer
	}
	a := nw.actorFor(tm.src)
	if e.retries >= nw.rel.maxRetries {
		nw.escalate(a, rn, tc, tm, e)
		return
	}
	e.retries++
	nw.addRetransmits(a.l, 1)
	if m := nw.obsM; m != nil {
		m.RetransmitRounds.Observe(int64(e.retries))
	}
	if tr := nw.trace; tr != nil {
		tr.Emit(a.shard, obs.Event{
			At: int64(now), Kind: obs.KindRetransmit,
			Node: uint64(tm.src.ID()), Arg: int64(e.retries),
		})
	}
	delay := nw.relHop(rn.rng)
	nw.transmit(a, rn, tm.src, tc.dst, e.seq, delay, e.msg, true)
	backoff := nw.rel.rto << e.retries
	jitter := rn.rng.Int63n(nw.rel.rto/2 + 1)
	nw.armTimer(a, tm.src, tm.dst, e, delay+backoff+jitter)
}

// escalate handles an exhausted backoff ladder. During an active
// partition the outage is the known cause: the ladder resets without
// consuming an escalation round and probing continues until the window
// heals. Otherwise the sender consults ring ground truth for the
// message's key: a peer that still owns it gets a fresh ladder on the
// same channel (sequence preserved, so receiver-side dedup keeps
// masking); a departed peer's message re-routes to the key's current
// owner over a fresh channel, exactly the bounce path — the dead peer
// never processed these deliveries, so the re-send cannot duplicate.
func (nw *Network) escalate(a actor, rn *relNode, tc *txChan, tm *relTimer, e *txEntry) {
	now := nw.Engine.Now()
	if nw.partitioned(tm.src.ID(), tm.dst, now) {
		e.retries = 0
		nw.armTimer(a, tm.src, tm.dst, e, nw.rel.rto<<nw.rel.maxRetries)
		return
	}
	rk, rekeyable := e.msg.(Rekeyable)
	var owner *chord.Node
	if rekeyable {
		owner = nw.Ring.Owner(rk.RingKey())
	}
	if owner != nil && owner.ID() == tm.dst {
		if e.ladders >= relMaxLadders {
			delete(tc.unacked, tm.seq)
			nw.addAbandoned(a.l, 1)
			return
		}
		e.ladders++
		e.retries = 0
		nw.addRetransmits(a.l, 1)
		if m := nw.obsM; m != nil {
			// A fresh ladder restarts the count; observe the full ladder
			// it exhausted so the histogram's tail records escalations.
			m.RetransmitRounds.Observe(int64(nw.rel.maxRetries) + 1)
		}
		if tr := nw.trace; tr != nil {
			tr.Emit(a.shard, obs.Event{
				At: int64(now), Kind: obs.KindRetransmit,
				Node: uint64(tm.src.ID()), Arg: int64(nw.rel.maxRetries) + 1,
			})
		}
		delay := nw.relHop(rn.rng)
		nw.transmit(a, rn, tm.src, tc.dst, e.seq, delay, e.msg, true)
		nw.armTimer(a, tm.src, tm.dst, e, delay+nw.rel.rto)
		return
	}
	delete(tc.unacked, tm.seq)
	if owner == nil {
		nw.addAbandoned(a.l, 1)
		return // not rekeyable, or the ring is empty: the message is lost
	}
	nw.addBounced(a.l, 1)
	nw.addSent(a.l, 1)
	nw.charge(a.l, owner.ID(), 1)
	if owner == tm.src {
		nw.deliver(a, owner, 0, e.msg) // the key came home; deliver locally
		return
	}
	nw.sendReliable(a, tm.src, owner, nw.relHop(rn.rng), e.msg)
}

// NextRetransmit returns the earliest outstanding retransmit deadline
// of an entry whose payload the receiver has not seen — an entry that
// is merely unacknowledged has its (background) ack already on the
// heap and needs no clock driving. The core engine's drain loop
// advances the clock here when foreground work runs dry, so every lost
// payload is retransmitted, escalated or abandoned before Run returns.
// Coordinator context only: the cross-shard read of receiver dedup
// state is safe because the simulation is quiescent between drains.
func (nw *Network) NextRetransmit() (sim.Time, bool) {
	if nw.rel == nil {
		return 0, false
	}
	var best sim.Time
	found := false
	for srcID, rn := range nw.rel.nodes {
		for dstID, tc := range rn.tx {
			if len(tc.unacked) == 0 {
				continue
			}
			var rx *rxChan
			if rdn, ok := nw.rel.nodes[dstID]; ok {
				rx = rdn.rx[srcID]
			}
			for seq, e := range tc.unacked {
				if rx != nil && rx.dedup.Seen(seq) {
					continue // delivered; the pending ack will clear it
				}
				if !found || e.deadline < best {
					best, found = e.deadline, true
				}
			}
		}
	}
	return best, found
}

// Lossy reports whether the network runs in unreliable mode. The core
// engine gates message-struct recycling on it: a sender retains its
// payload pointers for retransmission, so pooled reuse would corrupt
// retained copies.
func (nw *Network) Lossy() bool { return nw.cfg.Faults != nil }
