package overlay

import (
	"strings"
	"testing"

	"rjoin/internal/chord"
	"rjoin/internal/id"
	"rjoin/internal/sim"
)

// lossyCfg is the default network with a fault plan and the bounce path
// the plan requires.
func lossyCfg(f *Faults) Config {
	cfg := DefaultConfig()
	cfg.Bounce = true
	cfg.Faults = f
	return cfg
}

// drain runs the engine to reliable-delivery quiescence: foreground
// work first, then the clock advances to each outstanding retransmit
// deadline until no channel retains anything (the overlay-level copy of
// the core engine's drain loop).
func drain(f *fixture) {
	for {
		f.engine.Run()
		t, ok := f.nw.NextRetransmit()
		if !ok {
			return
		}
		f.engine.RunUntil(t)
	}
}

// TestNewNetworkValidatesFaults: out-of-range probabilities, negative
// timer parameters, inverted partition windows, and a negative batch
// window must all be rejected at construction.
func TestNewNetworkValidatesFaults(t *testing.T) {
	ring := newTestRing(t, 4)
	engine := sim.NewEngine(1)
	bad := []Config{
		lossyCfg(&Faults{DropProb: -0.1}),
		lossyCfg(&Faults{DropProb: 1.5}),
		lossyCfg(&Faults{DupProb: 2}),
		lossyCfg(&Faults{SpikeProb: -1}),
		lossyCfg(&Faults{SpikeMax: -4}),
		lossyCfg(&Faults{RTO: -1}),
		lossyCfg(&Faults{MaxRetries: -1}),
		lossyCfg(&Faults{AckDelay: -2}),
		lossyCfg(&Faults{Partitions: []Partition{{Start: 10, End: 5}}}),
		{MinHopDelay: 1, MaxHopDelay: 1, BatchWindow: -3},
	}
	for _, cfg := range bad {
		if _, err := NewNetwork(ring, engine, cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
	if _, err := NewNetwork(ring, engine, lossyCfg(&Faults{DropProb: 0.5})); err != nil {
		t.Fatalf("valid fault plan rejected: %v", err)
	}
}

// TestFaultsRequireBounce: the cross-validation error must name the
// knob to flip — retransmit escalation cannot work without the bounce
// path.
func TestFaultsRequireBounce(t *testing.T) {
	ring := newTestRing(t, 4)
	cfg := DefaultConfig()
	cfg.Faults = &Faults{DropProb: 0.1}
	_, err := NewNetwork(ring, sim.NewEngine(1), cfg)
	if err == nil {
		t.Fatal("Faults without Bounce accepted")
	}
	if !strings.Contains(err.Error(), "Bounce") {
		t.Fatalf("error %q does not tell the user to set Bounce", err)
	}
}

// TestReliableDeliveryUnderDrop: at a 30% transmission drop rate every
// keyed send still reaches its owner exactly once, paid for in
// retransmissions and acks that stay out of the traffic metric.
func TestReliableDeliveryUnderDrop(t *testing.T) {
	f := newFixture(t, 64, lossyCfg(&Faults{DropProb: 0.3}))
	const sends = 200
	for i := 0; i < sends; i++ {
		from := f.nodes[i%len(f.nodes)]
		key := id.HashKey("k") + id.ID(i)*0x9e3779b97f4a7c15
		f.nw.Send(from, key, keyedMsg{key: key, body: "payload"})
	}
	drain(f)
	f.nw.Sync()
	delivered := 0
	for _, msgs := range f.received {
		delivered += len(msgs)
	}
	if delivered != sends {
		t.Fatalf("delivered %d messages, want exactly %d (loss or duplication)", delivered, sends)
	}
	if f.nw.Dropped == 0 || f.nw.Retransmits == 0 || f.nw.AckMessages == 0 {
		t.Fatalf("fault machinery idle: dropped %d, retransmits %d, acks %d",
			f.nw.Dropped, f.nw.Retransmits, f.nw.AckMessages)
	}
	if f.nw.Abandoned != 0 {
		t.Fatalf("%d messages abandoned at a survivable drop rate", f.nw.Abandoned)
	}
}

// TestDuplicationSuppressed: with every transmission duplicated, the
// handler still sees each payload once — receiver-side dedup absorbs
// the copies.
func TestDuplicationSuppressed(t *testing.T) {
	f := newFixture(t, 32, lossyCfg(&Faults{DupProb: 1}))
	const sends = 50
	for i := 0; i < sends; i++ {
		key := id.HashKey("dup") + id.ID(i)*0x9e3779b97f4a7c15
		f.nw.Send(f.nodes[i%len(f.nodes)], key, keyedMsg{key: key, body: "d"})
	}
	drain(f)
	f.nw.Sync()
	delivered := 0
	for _, msgs := range f.received {
		delivered += len(msgs)
	}
	if delivered != sends {
		t.Fatalf("delivered %d, want %d: duplication leaked through dedup", delivered, sends)
	}
	if f.nw.Duplicated == 0 {
		t.Fatal("DupProb 1 injected no duplicates")
	}
}

// TestPartitionBlocksThenHeals: a message sent across an active
// partition window is dropped and retransmitted until the window
// closes; after the heal it arrives exactly once.
func TestPartitionBlocksThenHeals(t *testing.T) {
	f := newFixture(t, 16, lossyCfg(&Faults{}))
	from, to := f.nodes[0], f.nodes[8]
	if err := f.nw.AddPartition(Partition{
		Start: 0, End: 60, Side: map[id.ID]bool{from.ID(): true},
	}); err != nil {
		t.Fatal(err)
	}
	f.nw.SendDirect(from, to.ID(), keyedMsg{key: to.ID(), body: "cross"})
	f.engine.RunUntil(50)
	if got := len(f.received[to.ID()]); got != 0 {
		t.Fatalf("partitioned message delivered %d times before the heal", got)
	}
	drain(f)
	f.nw.Sync()
	if got := len(f.received[to.ID()]); got != 1 {
		t.Fatalf("message crossed the healed partition %d times, want 1", got)
	}
	if f.nw.Dropped == 0 {
		t.Fatal("partition dropped nothing")
	}
	if f.nw.Abandoned != 0 {
		t.Fatalf("%d messages abandoned across a healing partition", f.nw.Abandoned)
	}
}

// TestZeroPlanScheduleIdentical: the all-zero fault plan must reproduce
// the faults-off run exactly — same delivery times, same per-node
// receive counts, same traffic metric. This is the overlay-level RNG
// isolation guarantee: the ARQ machinery draws only from its own
// streams and charges only its own counters.
func TestZeroPlanScheduleIdentical(t *testing.T) {
	type rec struct {
		at   sim.Time
		node id.ID
	}
	run := func(cfg Config) ([]rec, int64) {
		f := &fixture{
			ring:     newTestRing(t, 48),
			engine:   sim.NewEngine(3),
			received: make(map[id.ID][]Message),
		}
		f.nw = MustNetwork(f.ring, f.engine, cfg)
		f.nodes = f.ring.Nodes()
		var log []rec
		for _, node := range f.nodes {
			nid := node.ID()
			f.nw.Attach(node, HandlerFunc(func(now sim.Time, msg Message) {
				log = append(log, rec{at: now, node: nid})
			}))
		}
		for i := 0; i < 120; i++ {
			key := id.HashKey("iso") + id.ID(i)*0x9e3779b97f4a7c15
			f.nw.Send(f.nodes[i%len(f.nodes)], key, keyedMsg{key: key, body: "x"})
			if i%3 == 0 {
				f.engine.Run()
			}
		}
		drain(f)
		f.nw.Sync()
		return log, f.nw.Traffic.Total()
	}

	off := DefaultConfig()
	off.Bounce = true
	logOff, trafficOff := run(off)
	logZero, trafficZero := run(lossyCfg(&Faults{}))
	if trafficOff != trafficZero {
		t.Fatalf("zero plan changed the traffic metric: %d vs %d", trafficZero, trafficOff)
	}
	if len(logOff) != len(logZero) {
		t.Fatalf("zero plan changed delivery count: %d vs %d", len(logZero), len(logOff))
	}
	for i := range logOff {
		if logOff[i] != logZero[i] {
			t.Fatalf("delivery %d diverged: faults-off %+v, zero plan %+v", i, logOff[i], logZero[i])
		}
	}
}

// TestMaxDeltaCoversRetransmits: enabling faults must widen the ALTT
// retention bound — the completeness guarantee has to absorb every
// backoff ladder plus the longest partition outage.
func TestMaxDeltaCoversRetransmits(t *testing.T) {
	ring := newTestRing(t, 64)
	base := MustNetwork(ring, sim.NewEngine(1), func() Config {
		c := DefaultConfig()
		c.Bounce = true
		return c
	}())
	lossy := MustNetwork(ring, sim.NewEngine(1), lossyCfg(&Faults{
		DropProb: 0.2, SpikeMax: 8,
		Partitions: []Partition{{Start: 0, End: 500, Side: map[id.ID]bool{}}},
	}))
	d0, d1 := base.MaxDelta(), lossy.MaxDelta()
	if d1 <= d0 {
		t.Fatalf("faulty MaxDelta %d not above faults-off %d", d1, d0)
	}
	if d1 < d0+500 {
		t.Fatalf("faulty MaxDelta %d does not absorb the 500-tick partition (base %d)", d1, d0)
	}
}

// newTestRing builds a small converged ring for construction-level
// tests.
func newTestRing(t testing.TB, n int) *chord.Ring {
	t.Helper()
	ring := chord.NewRing()
	for i := 0; i < n; i++ {
		if _, err := ring.Join(id.ID(uint64(i+1) * 0x3c6ef372fe94f82b)); err != nil {
			t.Fatal(err)
		}
	}
	ring.BuildPerfect()
	return ring
}
