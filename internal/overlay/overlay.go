// Package overlay implements the messaging API of the paper (Section 2)
// on top of the Chord substrate:
//
//	send(msg, id)        — deliver msg to Successor(id) in O(log N) hops
//	multiSend(msg, I)    — deliver msg to every Successor(Ij)
//	multiSend(M, I)      — deliver Mj to Successor(Ij), optionally
//	                       grouping deliveries along the ring
//	sendDirect(msg, addr)— deliver msg to a known node in one hop
//
// Every hop is charged to the sending node's traffic counter exactly as
// the paper defines network traffic ("messages that n creates due to
// RJoin ... and messages that n has to route due to the DHT routing
// protocols"), and every hop adds a bounded random delay on the virtual
// clock, realising the relaxed asynchronous model with maximum delay δ.
//
// On a parallel engine (sim.Engine with workers) the overlay keeps one
// accounting lane per logical shard: traffic counters, the active
// traffic tag, the grouped-send scratch buffer and the batching
// outboxes all live in the lane of the acting node, so concurrent
// handlers never share mutable state. Hop-delay draws come from the
// acting node's private counter-based stream instead of the engine's
// shared source, making the draw sequence independent of scheduling
// interleave. Lane deltas merge into the public aggregate counters at
// Sync, which the core engine calls after every drain.
package overlay

import (
	"fmt"
	"sort"

	"rjoin/internal/chord"
	"rjoin/internal/id"
	"rjoin/internal/metrics"
	"rjoin/internal/obs"
	"rjoin/internal/sim"
)

// Message is an opaque payload delivered to a node's handler.
type Message interface{}

// Rekeyable is implemented by messages that can survive the death of
// their addressee: RingKey returns the ring identifier the message is
// semantically bound to (the index key of a tuple or query, the owner
// identifier of an answer), so an undeliverable copy can be bounced to
// the node currently responsible for that point of the ring. Messages
// without a RingKey are dropped when their recipient is gone.
type Rekeyable interface {
	RingKey() id.ID
}

// Handler consumes messages delivered to one node.
type Handler interface {
	HandleMessage(now sim.Time, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(now sim.Time, msg Message)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(now sim.Time, msg Message) { f(now, msg) }

// Config tunes the message-delay model and optimizations.
type Config struct {
	// MinHopDelay/MaxHopDelay bound the virtual-time delay of a single
	// hop. MaxHopDelay is the per-hop δ of the asynchronous model.
	MinHopDelay int64
	MaxHopDelay int64
	// GroupMultiSend enables the Section 2/7 optimization where a batch
	// of keyed messages is routed as a chain along the ring instead of
	// as independent lookups.
	GroupMultiSend bool
	// BatchWindow enables the batch-routing optimization the paper
	// lists as future work (Section 10): a node buffers its outgoing
	// keyed messages for up to BatchWindow ticks and flushes them as
	// one grouped multiSend, so messages raised within the same window
	// share routing. Zero disables batching. Delivery is delayed by at
	// most BatchWindow; MaxDelta accounts for it, so the ALTT
	// completeness bound still holds.
	BatchWindow int64
	// Bounce re-routes undeliverable Rekeyable messages — sends whose
	// recipient left or crashed before delivery — to the node currently
	// responsible for the message's ring key, instead of dropping them.
	// Required under churn; in a static converged ring it never fires.
	// Off by default so failure-injection tests keep drop semantics.
	Bounce bool
	// Faults switches the network to unreliable mode: transmissions are
	// dropped, duplicated, delayed and partitioned per the plan, and
	// every keyed or direct send runs over an end-to-end reliable
	// channel that masks the injected faults (see faults.go). Requires
	// Bounce — retransmit-ladder exhaustion escalates into the bounce
	// path. Nil keeps the exact reliable-network behavior.
	Faults *Faults
	// Trace, when non-nil, receives annotation events for transport-level
	// activity the core layer cannot see: bounces of undeliverable
	// messages, replication fan-out, retransmissions and acknowledgments.
	// Nil disables tracing at zero cost.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives the hop-count and retransmit-round
	// histograms plus per-node delivery and per-tag send rate series.
	// Nil disables collection at zero cost.
	Metrics *obs.Metrics
}

// DefaultConfig is a deterministic single-tick-per-hop network with
// grouping enabled, the configuration the experiments run under.
func DefaultConfig() Config {
	return Config{MinHopDelay: 1, MaxHopDelay: 1, GroupMultiSend: true}
}

// lane is the per-shard accounting state of a parallel network. Every
// mutation the message layer performs while a handler runs — traffic
// charges, tag scoping, grouped-send scratch, outbox batching — goes to
// the lane of the acting node's shard, which the sub-round schedule
// guarantees is touched by at most one worker at a time.
type lane struct {
	traffic      *metrics.Load
	tagged       map[string]*metrics.Load
	tag          string
	legs         []leg
	outboxes     map[id.ID]*outbox
	messagesSent int64
	delivered    int64
	bounced      int64
	dropped      int64
	duplicated   int64
	retransmits  int64
	ackMessages  int64
	abandoned    int64
}

// actor resolves the execution context of one overlay operation: the
// accounting lane, the hop-delay stream and the logical shard of the
// node performing it. On a serial network all three are zero values and
// the shared root fields are used instead.
type actor struct {
	l     *lane
	rng   *sim.RNG
	shard int
}

// Network binds a Chord ring to the event engine and implements the
// messaging API.
type Network struct {
	Ring    *chord.Ring
	Engine  *sim.Engine
	Traffic *metrics.Load
	cfg     Config

	handlers map[id.ID]Handler
	tagged   map[string]*metrics.Load
	tag      string
	outboxes map[id.ID]*outbox
	legs     []leg // scratch for grouped multiSend, reused across calls

	par   bool               // parallel engine: lane-per-shard accounting
	lanes []lane             // one per logical shard when par
	rngs  map[id.ID]*sim.RNG // per-node hop-delay streams when par

	// MessagesSent counts every point-to-point transmission, i.e. the
	// network-wide total of the traffic metric.
	MessagesSent int64
	// Delivered counts end-to-end deliveries (one per Send/SendDirect,
	// one per target for MultiSend).
	Delivered int64
	// Bounced counts undeliverable messages re-routed to the current
	// owner of their ring key (see Config.Bounce).
	Bounced int64

	// Unreliable-mode transport accounting (zero when Faults is nil).
	// These count transport-level work and are deliberately kept out of
	// MessagesSent and the Traffic metric, so application-traffic
	// figures stay comparable across fault plans; FigLossy reports the
	// overhead from these counters explicitly.
	//
	// Dropped counts transmissions lost to the fault plan — drop draws
	// and partition windows, payload envelopes and acks alike.
	Dropped int64
	// Duplicated counts injected duplicate copies (all suppressed by
	// receiver-side dedup).
	Duplicated int64
	// Retransmits counts retransmitted payload envelopes.
	Retransmits int64
	// AckMessages counts coalesced acknowledgment messages emitted.
	AckMessages int64
	// Abandoned counts messages given up on after exhausting every
	// escalation round — zero in any run the exactness guarantees cover.
	Abandoned int64

	rel *relState // reliable-channel state; nil when Faults is nil

	trace *obs.Tracer  // nil unless Config.Trace is set
	obsM  *obs.Metrics // nil unless Config.Metrics is set
}

// NewNetwork creates an overlay over an existing ring and engine. The
// delay bounds must satisfy 0 <= MinHopDelay <= MaxHopDelay; inverted
// or negative bounds are rejected, matching the public API's contract
// rather than silently repairing them.
func NewNetwork(ring *chord.Ring, engine *sim.Engine, cfg Config) (*Network, error) {
	if cfg.MinHopDelay < 0 || cfg.MaxHopDelay < 0 {
		return nil, fmt.Errorf("overlay: negative hop delay bound [%d, %d]",
			cfg.MinHopDelay, cfg.MaxHopDelay)
	}
	if cfg.MaxHopDelay < cfg.MinHopDelay {
		return nil, fmt.Errorf("overlay: MinHopDelay %d exceeds MaxHopDelay %d",
			cfg.MinHopDelay, cfg.MaxHopDelay)
	}
	if cfg.BatchWindow < 0 {
		return nil, fmt.Errorf("overlay: negative BatchWindow %d", cfg.BatchWindow)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.validate(); err != nil {
			return nil, err
		}
		if !cfg.Bounce {
			return nil, fmt.Errorf("overlay: Faults requires the bounce path " +
				"(retransmit escalation re-routes by ring key); set Config.Bounce = true")
		}
	}
	nw := &Network{
		Ring:     ring,
		Engine:   engine,
		Traffic:  metrics.NewLoad(),
		cfg:      cfg,
		handlers: make(map[id.ID]Handler),
		tagged:   make(map[string]*metrics.Load),
		outboxes: make(map[id.ID]*outbox),
		trace:    cfg.Trace,
		obsM:     cfg.Metrics,
	}
	if engine.Workers() > 0 {
		nw.par = true
		nw.lanes = make([]lane, sim.Shards)
		for i := range nw.lanes {
			nw.lanes[i] = lane{
				traffic:  metrics.NewLoad(),
				tagged:   make(map[string]*metrics.Load),
				outboxes: make(map[id.ID]*outbox),
			}
		}
		nw.rngs = make(map[id.ID]*sim.RNG)
	}
	if cfg.Faults != nil {
		nw.initFaults()
	}
	return nw, nil
}

// MustNetwork is NewNetwork that panics on error, for tests and
// harnesses whose configs are correct by construction.
func MustNetwork(ring *chord.Ring, engine *sim.Engine, cfg Config) *Network {
	nw, err := NewNetwork(ring, engine, cfg)
	if err != nil {
		panic(err)
	}
	return nw
}

// outbox buffers one node's outgoing keyed messages between batch
// flushes.
type outbox struct {
	msgs      []Message
	keys      []id.ID
	scheduled bool
}

// Config returns the network's configuration.
func (nw *Network) Config() Config { return nw.cfg }

// actorFor resolves the execution context of the given acting node.
// Must only be called with a node that has been Attached at some point
// (every ring node is), so its delay stream exists.
func (nw *Network) actorFor(n *chord.Node) actor {
	if !nw.par {
		return actor{shard: sim.NoShard}
	}
	s := sim.ShardOfID(uint64(n.ID()))
	return actor{l: &nw.lanes[s], rng: nw.rngs[n.ID()], shard: s}
}

// Attach registers the message handler for a node. A node without a
// handler silently drops deliveries (tests rely on this for failure
// injection). On a parallel network Attach also derives the node's
// private hop-delay stream; streams outlive Detach so messages bounced
// off a departed node still draw deterministically.
func (nw *Network) Attach(n *chord.Node, h Handler) {
	nw.handlers[n.ID()] = h
	if nw.par {
		if _, ok := nw.rngs[n.ID()]; !ok {
			nw.rngs[n.ID()] = sim.NewRNG(nw.Engine.Seed(), uint64(n.ID()), 0x0e7a)
		}
	}
	if nw.rel != nil {
		nw.relNodeFor(n.ID()) // derive the fault stream in coordinator context
	}
}

// Detach removes a node's handler.
func (nw *Network) Detach(n *chord.Node) {
	delete(nw.handlers, n.ID())
}

// hopDelay draws one hop's delay: from the acting node's private stream
// on a parallel network, from the engine's shared source otherwise.
func (nw *Network) hopDelay(rng *sim.RNG) int64 {
	if nw.cfg.MaxHopDelay == nw.cfg.MinHopDelay {
		return nw.cfg.MinHopDelay
	}
	spread := nw.cfg.MaxHopDelay - nw.cfg.MinHopDelay + 1
	if rng != nil {
		return nw.cfg.MinHopDelay + rng.Int63n(spread)
	}
	return nw.cfg.MinHopDelay + nw.Engine.Rand().Int63n(spread)
}

// chargePath charges one sent message to the origin and to every
// intermediate router on the path (the final element of path is the
// recipient, which receives rather than sends), and returns the total
// virtual delay of the walk.
func (nw *Network) chargePath(a actor, from *chord.Node, path []*chord.Node) int64 {
	senders := 1 + len(path) - 1 // origin + intermediates
	if len(path) == 0 {
		senders = 0 // local delivery, no transmission
	}
	nw.addSent(a.l, int64(senders))
	if m := nw.obsM; m != nil {
		m.HopCount.Observe(int64(len(path)))
		nw.obsSent(a, int64(senders))
	}
	var delay int64
	if len(path) > 0 {
		nw.charge(a.l, from.ID(), 1)
		delay += nw.hopDelay(a.rng)
		for _, hop := range path[:len(path)-1] {
			nw.charge(a.l, hop.ID(), 1)
			delay += nw.hopDelay(a.rng)
		}
	}
	return delay
}

// deliverEvent completes a delivery at its scheduled time. It is a
// package-level CtxFunc so scheduling a delivery allocates nothing —
// the network, recipient and payload ride in the event's inline Ctx.
// A recipient that died while the message was in flight triggers the
// bounce path; a recipient that is alive but detached (failure
// injection in tests) still drops the message silently.
func deliverEvent(now sim.Time, c sim.Ctx) {
	nw := c.A.(*Network)
	owner := c.B.(*chord.Node)
	a := nw.actorFor(owner)
	if h, ok := nw.handlers[owner.ID()]; ok && owner.Alive() {
		nw.addDelivered(a.l, 1)
		nw.obsM.IncNode(a.shard, int64(now), uint64(owner.ID()))
		h.HandleMessage(now, c.C)
		return
	}
	if !owner.Alive() {
		nw.bounce(a, c.C)
	}
}

// bounce re-routes an undeliverable message to the node currently
// responsible for its ring key — the departed recipient's next of kin
// under the successor rule. The recovery hop is charged to the new
// owner (it performs the fetch in a real deployment's key-handoff
// repair) and takes one hop delay. If the new owner also dies before
// delivery, the bounce repeats against fresh ground truth, so the
// message survives any churn that leaves the ring non-empty. The
// actor is the context the failure was discovered in (the dead
// recipient's shard, or the sender's for an already-dead direct
// target).
func (nw *Network) bounce(a actor, msg Message) {
	if !nw.cfg.Bounce {
		return
	}
	rk, ok := msg.(Rekeyable)
	if !ok {
		return
	}
	tgt := nw.Ring.Owner(rk.RingKey())
	if tgt == nil {
		return // ring is empty; nothing can take the message
	}
	nw.addBounced(a.l, 1)
	nw.addSent(a.l, 1)
	nw.obsSent(a, 1)
	nw.charge(a.l, tgt.ID(), 1)
	if tr := nw.trace; tr != nil {
		tr.Emit(a.shard, obs.Event{
			At: int64(nw.Engine.Now()), Kind: obs.KindBounce,
			Node: uint64(tgt.ID()), Key: rk.RingKey().String(),
		})
	}
	nw.deliver(a, tgt, nw.hopDelay(a.rng), msg)
}

// deliver schedules the completion of one delivery. The event is bound
// to the recipient's shard; the actor supplies the source shard the
// barrier merge orders by.
func (nw *Network) deliver(a actor, owner *chord.Node, delay int64, msg Message) {
	dst := sim.NoShard
	if nw.par {
		dst = sim.ShardOfID(uint64(owner.ID()))
	}
	nw.Engine.AfterCtxShard(delay, deliverEvent, sim.Ctx{A: nw, B: owner, C: msg}, a.shard, dst)
}

// deliverFrom is deliver with a known sender: in unreliable mode a
// remote delivery runs over the (from → owner) reliable channel;
// node-local deliveries and reliable networks take the plain path.
// Transfer and ReplicateTo deliberately bypass this — their
// instantaneous-handoff semantics model an already-acknowledged
// primary-backup exchange.
func (nw *Network) deliverFrom(a actor, from, owner *chord.Node, delay int64, msg Message) {
	if nw.rel == nil || owner == from {
		nw.deliver(a, owner, delay, msg)
		return
	}
	nw.sendReliable(a, from, owner, delay, msg)
}

// charge attributes n sent messages to a node, in the lane's counters
// when a lane is given, in the root counters otherwise.
func (nw *Network) charge(l *lane, node id.ID, n int64) {
	if l == nil {
		nw.Traffic.Add(node, n)
		if nw.tag != "" {
			tl, ok := nw.tagged[nw.tag]
			if !ok {
				tl = metrics.NewLoad()
				nw.tagged[nw.tag] = tl
			}
			tl.Add(node, n)
		}
		return
	}
	l.traffic.Add(node, n)
	if l.tag != "" {
		tl, ok := l.tagged[l.tag]
		if !ok {
			tl = metrics.NewLoad()
			l.tagged[l.tag] = tl
		}
		tl.Add(node, n)
	}
}

// obsSent records n sent messages against the acting context's traffic
// tag in the metrics rate series (an empty tag maps to the "app" lane).
// Window attribution uses the current virtual time, so the series is
// schedule-independent. No-op when metrics are disabled.
func (nw *Network) obsSent(a actor, n int64) {
	if nw.obsM == nil || n == 0 {
		return
	}
	tag := nw.tag
	if a.l != nil {
		tag = a.l.tag
	}
	nw.obsM.IncTag(a.shard, int64(nw.Engine.Now()), tag, n)
}

func (nw *Network) addSent(l *lane, n int64) {
	if l == nil {
		nw.MessagesSent += n
	} else {
		l.messagesSent += n
	}
}

func (nw *Network) addDelivered(l *lane, n int64) {
	if l == nil {
		nw.Delivered += n
	} else {
		l.delivered += n
	}
}

func (nw *Network) addBounced(l *lane, n int64) {
	if l == nil {
		nw.Bounced += n
	} else {
		l.bounced += n
	}
}

func (nw *Network) addFaultDropped(l *lane, n int64) {
	if l == nil {
		nw.Dropped += n
	} else {
		l.dropped += n
	}
}

func (nw *Network) addDuplicated(l *lane, n int64) {
	if l == nil {
		nw.Duplicated += n
	} else {
		l.duplicated += n
	}
}

func (nw *Network) addRetransmits(l *lane, n int64) {
	if l == nil {
		nw.Retransmits += n
	} else {
		l.retransmits += n
	}
}

func (nw *Network) addAckMessages(l *lane, n int64) {
	if l == nil {
		nw.AckMessages += n
	} else {
		l.ackMessages += n
	}
}

func (nw *Network) addAbandoned(l *lane, n int64) {
	if l == nil {
		nw.Abandoned += n
	} else {
		l.abandoned += n
	}
}

// WithTag runs fn with every message the given node sends inside it
// additionally charged to the named traffic tag. The experiments use
// the tag "ric" to report the Request-RIC share of total traffic
// separately, as the figures do. The acting node names the lane the
// tag scopes to; on a serial network it is ignored.
func (nw *Network) WithTag(n *chord.Node, tag string, fn func()) {
	if !nw.par {
		prev := nw.tag
		nw.tag = tag
		fn()
		nw.tag = prev
		return
	}
	l := &nw.lanes[sim.ShardOfID(uint64(n.ID()))]
	prev := l.tag
	l.tag = tag
	fn()
	l.tag = prev
}

// WithTagAll runs fn with the tag active on every lane. It is for
// coordinator-context sections (crash recovery) whose sends originate
// from many different nodes; it must never run while workers do.
//
//lint:allow shardsafe coordinator-context by contract: callers run between drains with no handlers in flight
func (nw *Network) WithTagAll(tag string, fn func()) {
	if !nw.par {
		nw.WithTag(nil, tag, fn)
		return
	}
	prevs := make([]string, len(nw.lanes))
	for i := range nw.lanes {
		prevs[i] = nw.lanes[i].tag
		nw.lanes[i].tag = tag
	}
	fn()
	for i := range nw.lanes {
		nw.lanes[i].tag = prevs[i]
	}
}

// TaggedTraffic returns the per-node traffic charged under a tag (nil
// Load semantics: an unused tag returns an empty counter).
func (nw *Network) TaggedTraffic(tag string) *metrics.Load {
	if l, ok := nw.tagged[tag]; ok {
		return l
	}
	return metrics.NewLoad()
}

// TagTotals returns the network-wide message count charged under each
// traffic tag. It folds outstanding lane deltas first, so like Sync it
// must only be called from coordinator context.
func (nw *Network) TagTotals() map[string]int64 {
	nw.Sync()
	out := make(map[string]int64, len(nw.tagged))
	for tag, l := range nw.tagged {
		out[tag] = l.Total()
	}
	return out
}

// Sync folds every lane's accounting deltas into the public aggregate
// counters. The core engine calls it after each drain; it is a no-op on
// a serial network and must only run from coordinator context.
func (nw *Network) Sync() {
	for i := range nw.lanes {
		l := &nw.lanes[i]
		l.traffic.DrainInto(nw.Traffic)
		for tag, tl := range l.tagged {
			dst, ok := nw.tagged[tag]
			if !ok {
				dst = metrics.NewLoad()
				nw.tagged[tag] = dst
			}
			tl.DrainInto(dst)
		}
		nw.MessagesSent += l.messagesSent
		nw.Delivered += l.delivered
		nw.Bounced += l.bounced
		nw.Dropped += l.dropped
		nw.Duplicated += l.duplicated
		nw.Retransmits += l.retransmits
		nw.AckMessages += l.ackMessages
		nw.Abandoned += l.abandoned
		l.messagesSent, l.delivered, l.bounced = 0, 0, 0
		l.dropped, l.duplicated, l.retransmits, l.ackMessages, l.abandoned = 0, 0, 0, 0, 0
	}
}

// RenameNode transfers a node's accumulated traffic accounting to a new
// identifier (identifier movement keeps the physical node).
func (nw *Network) RenameNode(old, new id.ID) {
	nw.Sync()
	nw.Traffic.Rename(old, new)
	for _, l := range nw.tagged {
		l.Rename(old, new)
	}
	if nw.par {
		if rng, ok := nw.rngs[old]; ok {
			nw.rngs[new] = rng
		}
	}
	if nw.rel != nil {
		if rn, ok := nw.rel.nodes[old]; ok {
			nw.rel.nodes[new] = rn
		}
	}
}

// ResetTraffic zeroes all traffic accounting (total and tagged). The
// experiment harness calls it after warmup so measurements start clean.
func (nw *Network) ResetTraffic() {
	nw.Sync()
	nw.Traffic.Reset()
	for _, l := range nw.tagged {
		l.Reset()
	}
	nw.MessagesSent = 0
	nw.Delivered = 0
	nw.Bounced = 0
	nw.Dropped = 0
	nw.Duplicated = 0
	nw.Retransmits = 0
	nw.AckMessages = 0
	nw.Abandoned = 0
}

// Send routes msg from node "from" to Successor(key) through the DHT
// and returns the owner it was routed to. With batch routing enabled
// the message is buffered instead and the return value is nil (the
// owner is resolved at flush time); delivery is asynchronous either
// way.
func (nw *Network) Send(from *chord.Node, key id.ID, msg Message) *chord.Node {
	a := nw.actorFor(from)
	if nw.cfg.BatchWindow > 0 {
		nw.enqueue(a, from, key, msg)
		return nil
	}
	return nw.sendNow(a, from, key, msg)
}

// sendNow performs an immediate routed delivery, bypassing batching.
func (nw *Network) sendNow(a actor, from *chord.Node, key id.ID, msg Message) *chord.Node {
	owner, path := from.Lookup(key)
	delay := nw.chargePath(a, from, path)
	nw.deliverFrom(a, from, owner, delay, msg)
	return owner
}

// outboxFor returns the acting context's outbox map.
func (nw *Network) outboxFor(a actor, node id.ID) *outbox {
	boxes := nw.outboxes
	if a.l != nil {
		boxes = a.l.outboxes
	}
	ob, ok := boxes[node]
	if !ok {
		ob = &outbox{}
		boxes[node] = ob
	}
	return ob
}

// enqueue buffers a keyed message in the sender's outbox and schedules
// a flush at the end of the current batch window.
func (nw *Network) enqueue(a actor, from *chord.Node, key id.ID, msg Message) {
	ob := nw.outboxFor(a, from.ID())
	ob.msgs = append(ob.msgs, msg)
	ob.keys = append(ob.keys, key)
	if !ob.scheduled {
		ob.scheduled = true
		nw.Engine.AfterCtxShard(nw.cfg.BatchWindow, flushEvent, sim.Ctx{A: nw, B: from}, a.shard, a.shard)
	}
}

// flushEvent is the batch-window expiry callback; see deliverEvent for
// why it is a package-level CtxFunc. It executes in the sending node's
// shard.
func flushEvent(_ sim.Time, c sim.Ctx) {
	nw := c.A.(*Network)
	from := c.B.(*chord.Node)
	nw.flush(nw.actorFor(from), from)
}

// flush sends a node's buffered messages as one grouped multiSend.
func (nw *Network) flush(a actor, from *chord.Node) {
	boxes := nw.outboxes
	if a.l != nil {
		boxes = a.l.outboxes
	}
	ob, ok := boxes[from.ID()]
	if !ok || len(ob.msgs) == 0 {
		return
	}
	msgs, keys := ob.msgs, ob.keys
	ob.msgs, ob.keys, ob.scheduled = nil, nil, false
	if !from.Alive() {
		return // sender failed before the window closed
	}
	nw.multiSendNow(a, from, msgs, keys)
}

// SendDirect delivers msg to a node whose address is already known, in a
// single hop (the paper's sendDirect(msg, addr)). A recipient that has
// already left the network loses the message, unless bouncing is
// enabled and the message carries a ring key to re-route by.
func (nw *Network) SendDirect(from *chord.Node, to id.ID, msg Message) {
	a := nw.actorFor(from)
	owner := nw.Ring.Node(to)
	if owner == nil {
		nw.bounce(a, msg)
		return
	}
	var delay int64
	if owner != from {
		nw.charge(a.l, from.ID(), 1)
		nw.addSent(a.l, 1)
		nw.obsSent(a, 1)
		delay = nw.hopDelay(a.rng)
	}
	nw.deliverFrom(a, from, owner, delay, msg)
}

// Transfer delivers msg to a known alive recipient at the current
// instant, charging one message: the synchronous state handoff a
// departing or splitting node completes before responsibility for its
// keys moves on. The handoff is on the wire like any message — and
// counted in the traffic metric — but delivery is instantaneous, so no
// regular (≥ one hop delay) message can observe the new owner before
// its state has arrived. It reports whether the recipient accepted.
func (nw *Network) Transfer(from *chord.Node, to id.ID, msg Message) bool {
	a := nw.actorFor(from)
	owner := nw.Ring.Node(to)
	if owner == nil {
		nw.bounce(a, msg)
		return false
	}
	if owner != from {
		nw.charge(a.l, from.ID(), 1)
		nw.addSent(a.l, 1)
		nw.obsSent(a, 1)
	}
	nw.deliver(a, owner, 0, msg)
	return true
}

// FlushNode immediately flushes a node's batched outbox. A node about
// to leave gracefully empties its buffers first so batching cannot turn
// a clean departure into message loss.
func (nw *Network) FlushNode(from *chord.Node) { nw.flush(nw.actorFor(from), from) }

// TagRepl is the traffic tag replica-update fan-out is charged under,
// so the recovery experiment can report the durability overhead as its
// own share of total traffic, like "ric" does for placement polling.
const TagRepl = "repl"

// ReplicateTo fans one batch of state mutations out to a replica group:
// mk builds the per-target copy (each recipient needs its own message —
// streams are versioned per link), and every copy is delivered as a
// direct, instantaneous transfer charged under TagRepl. Delivery is
// Transfer-like by design: a primary-backup protocol acknowledges a
// mutation only once its backups hold it, which the simulation models
// as the mirror being current before any ≥ one-hop message can observe
// the effects of the mutation. The copies are on the wire — one charged
// message per target — they just cannot be overtaken.
func (nw *Network) ReplicateTo(from *chord.Node, targets []id.ID, mk func(target id.ID) Message) {
	if len(targets) == 0 {
		return
	}
	if tr := nw.trace; tr != nil {
		tr.Emit(nw.actorFor(from).shard, obs.Event{
			At: int64(nw.Engine.Now()), Kind: obs.KindReplFanout,
			Node: uint64(from.ID()), Arg: int64(len(targets)),
		})
	}
	nw.WithTag(from, TagRepl, func() {
		for _, t := range targets {
			nw.Transfer(from, t, mk(t))
		}
	})
}

// MultiSend delivers msgs[j] to Successor(keys[j]) for every j. With
// grouping disabled each delivery is an independent O(log N) lookup
// (cost h*O(log N) as in Section 2); with grouping enabled deliveries
// are chained along the ring so shared route prefixes are paid once.
func (nw *Network) MultiSend(from *chord.Node, msgs []Message, keys []id.ID) {
	if len(msgs) != len(keys) {
		panic(fmt.Sprintf("overlay: MultiSend length mismatch %d vs %d", len(msgs), len(keys)))
	}
	if len(msgs) == 0 {
		return
	}
	a := nw.actorFor(from)
	if nw.cfg.BatchWindow > 0 {
		for j := range msgs {
			nw.enqueue(a, from, keys[j], msgs[j])
		}
		return
	}
	nw.multiSendNow(a, from, msgs, keys)
}

// leg is one delivery of a grouped multiSend.
type leg struct {
	key id.ID
	msg Message
}

// multiSendNow performs the actual delivery for MultiSend and for batch
// flushes.
func (nw *Network) multiSendNow(a actor, from *chord.Node, msgs []Message, keys []id.ID) {
	if !nw.cfg.GroupMultiSend || len(msgs) == 1 {
		for j := range msgs {
			nw.sendNow(a, from, keys[j], msgs[j])
		}
		return
	}
	// Grouped: visit owners in clockwise ring order starting at the
	// origin, each leg routed from the previous owner. The legs buffer
	// is scratch owned by the acting lane; deliveries copy what they
	// need before this function returns.
	scratch := &nw.legs
	if a.l != nil {
		scratch = &a.l.legs
	}
	legs := (*scratch)[:0]
	for j := range msgs {
		legs = append(legs, leg{keys[j], msgs[j]})
	}
	sort.Slice(legs, func(i, j int) bool {
		return id.Dist(from.ID(), legs[i].key) < id.Dist(from.ID(), legs[j].key)
	})
	cur := from
	var accumulated int64
	for _, lg := range legs {
		owner, path := cur.Lookup(lg.key)
		accumulated += nw.chargePath(a, cur, path)
		// The reliable channel is end-to-end: the origin retains and
		// retransmits, even for legs forwarded along the ring.
		nw.deliverFrom(a, from, owner, accumulated, lg.msg)
		cur = owner
	}
	for j := range legs {
		legs[j].msg = nil // drop payload references until next use
	}
	*scratch = legs[:0]
}

// Broadcast delivers one message to every key in keys (the paper's
// multiSend(msg, I) form).
func (nw *Network) Broadcast(from *chord.Node, keys []id.ID, msg Message) {
	msgs := make([]Message, len(keys))
	for i := range keys {
		msgs[i] = msg
	}
	nw.MultiSend(from, msgs, keys)
}

// MaxDelta returns a safe upper bound Δ on end-to-end message delay:
// per-hop δ times the worst-case hop count of a Chord lookup plus
// slack, the quantity Section 4 uses to size the ALTT garbage-collection
// window. The bound uses the current network size.
func (nw *Network) MaxDelta() int64 {
	n := nw.Ring.Size()
	if n == 0 {
		return nw.cfg.MaxHopDelay
	}
	// Worst-case Chord lookup is O(log N) with high probability; use
	// 4*log2(N)+8 as a conservative hop bound.
	hops := int64(8)
	for s := 1; s < n; s *= 2 {
		hops += 4
	}
	// A query transmission traverses at most a handful of batch
	// buffers (the RIC walk legs plus the final send).
	delta := nw.cfg.MaxHopDelay*hops + 8*nw.cfg.BatchWindow
	if f := nw.cfg.Faults; f != nil {
		if f.SpikeProb > 0 {
			delta += f.SpikeMax * hops
		}
		// A first transmission can only be lost to a drop draw or a
		// partition window; a plan with neither never needs retransmit
		// masking, and charging for it anyway would widen the ALTT
		// window — visibly changing retention — on a plan that is
		// supposed to be indistinguishable from faults-off.
		if f.DropProb > 0 || len(f.Partitions) > 0 {
			// A message masked by retransmission arrives late by at most
			// the full backoff ladder (retry k waits RTO<<k plus jitter
			// plus a retransmit hop), repeated for every escalation
			// round, plus the longest partition outage it rode out and a
			// delay spike per hop.
			ladder := int64(0)
			for k := 0; k <= nw.rel.maxRetries; k++ {
				ladder += nw.rel.rto<<k + nw.rel.rto/2 + nw.cfg.MaxHopDelay + f.SpikeMax
			}
			var outage int64
			for _, p := range f.Partitions {
				if span := int64(p.End - p.Start); span > outage {
					outage = span
				}
			}
			delta += int64(relMaxLadders+1)*ladder + outage
		}
	}
	return delta
}
