// Package overlay implements the messaging API of the paper (Section 2)
// on top of the Chord substrate:
//
//	send(msg, id)        — deliver msg to Successor(id) in O(log N) hops
//	multiSend(msg, I)    — deliver msg to every Successor(Ij)
//	multiSend(M, I)      — deliver Mj to Successor(Ij), optionally
//	                       grouping deliveries along the ring
//	sendDirect(msg, addr)— deliver msg to a known node in one hop
//
// Every hop is charged to the sending node's traffic counter exactly as
// the paper defines network traffic ("messages that n creates due to
// RJoin ... and messages that n has to route due to the DHT routing
// protocols"), and every hop adds a bounded random delay on the virtual
// clock, realising the relaxed asynchronous model with maximum delay δ.
package overlay

import (
	"fmt"
	"sort"

	"rjoin/internal/chord"
	"rjoin/internal/id"
	"rjoin/internal/metrics"
	"rjoin/internal/sim"
)

// Message is an opaque payload delivered to a node's handler.
type Message interface{}

// Rekeyable is implemented by messages that can survive the death of
// their addressee: RingKey returns the ring identifier the message is
// semantically bound to (the index key of a tuple or query, the owner
// identifier of an answer), so an undeliverable copy can be bounced to
// the node currently responsible for that point of the ring. Messages
// without a RingKey are dropped when their recipient is gone.
type Rekeyable interface {
	RingKey() id.ID
}

// Handler consumes messages delivered to one node.
type Handler interface {
	HandleMessage(now sim.Time, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(now sim.Time, msg Message)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(now sim.Time, msg Message) { f(now, msg) }

// Config tunes the message-delay model and optimizations.
type Config struct {
	// MinHopDelay/MaxHopDelay bound the virtual-time delay of a single
	// hop. MaxHopDelay is the per-hop δ of the asynchronous model.
	MinHopDelay int64
	MaxHopDelay int64
	// GroupMultiSend enables the Section 2/7 optimization where a batch
	// of keyed messages is routed as a chain along the ring instead of
	// as independent lookups.
	GroupMultiSend bool
	// BatchWindow enables the batch-routing optimization the paper
	// lists as future work (Section 10): a node buffers its outgoing
	// keyed messages for up to BatchWindow ticks and flushes them as
	// one grouped multiSend, so messages raised within the same window
	// share routing. Zero disables batching. Delivery is delayed by at
	// most BatchWindow; MaxDelta accounts for it, so the ALTT
	// completeness bound still holds.
	BatchWindow int64
	// Bounce re-routes undeliverable Rekeyable messages — sends whose
	// recipient left or crashed before delivery — to the node currently
	// responsible for the message's ring key, instead of dropping them.
	// Required under churn; in a static converged ring it never fires.
	// Off by default so failure-injection tests keep drop semantics.
	Bounce bool
}

// DefaultConfig is a deterministic single-tick-per-hop network with
// grouping enabled, the configuration the experiments run under.
func DefaultConfig() Config {
	return Config{MinHopDelay: 1, MaxHopDelay: 1, GroupMultiSend: true}
}

// Network binds a Chord ring to the event engine and implements the
// messaging API.
type Network struct {
	Ring    *chord.Ring
	Engine  *sim.Engine
	Traffic *metrics.Load
	cfg     Config

	handlers map[id.ID]Handler
	tagged   map[string]*metrics.Load
	tag      string
	outboxes map[id.ID]*outbox
	legs     []leg // scratch for grouped multiSend, reused across calls

	// MessagesSent counts every point-to-point transmission, i.e. the
	// network-wide total of the traffic metric.
	MessagesSent int64
	// Delivered counts end-to-end deliveries (one per Send/SendDirect,
	// one per target for MultiSend).
	Delivered int64
	// Bounced counts undeliverable messages re-routed to the current
	// owner of their ring key (see Config.Bounce).
	Bounced int64
}

// NewNetwork creates an overlay over an existing ring and engine.
func NewNetwork(ring *chord.Ring, engine *sim.Engine, cfg Config) *Network {
	if cfg.MaxHopDelay < cfg.MinHopDelay {
		cfg.MaxHopDelay = cfg.MinHopDelay
	}
	if cfg.MinHopDelay < 0 {
		cfg.MinHopDelay = 0
	}
	return &Network{
		Ring:     ring,
		Engine:   engine,
		Traffic:  metrics.NewLoad(),
		cfg:      cfg,
		handlers: make(map[id.ID]Handler),
		tagged:   make(map[string]*metrics.Load),
		outboxes: make(map[id.ID]*outbox),
	}
}

// outbox buffers one node's outgoing keyed messages between batch
// flushes.
type outbox struct {
	msgs      []Message
	keys      []id.ID
	scheduled bool
}

// Config returns the network's configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Attach registers the message handler for a node. A node without a
// handler silently drops deliveries (tests rely on this for failure
// injection).
func (nw *Network) Attach(n *chord.Node, h Handler) {
	nw.handlers[n.ID()] = h
}

// Detach removes a node's handler.
func (nw *Network) Detach(n *chord.Node) {
	delete(nw.handlers, n.ID())
}

func (nw *Network) hopDelay() int64 {
	if nw.cfg.MaxHopDelay == nw.cfg.MinHopDelay {
		return nw.cfg.MinHopDelay
	}
	spread := nw.cfg.MaxHopDelay - nw.cfg.MinHopDelay + 1
	return nw.cfg.MinHopDelay + nw.Engine.Rand().Int63n(spread)
}

// chargePath charges one sent message to the origin and to every
// intermediate router on the path (the final element of path is the
// recipient, which receives rather than sends), and returns the total
// virtual delay of the walk.
func (nw *Network) chargePath(from *chord.Node, path []*chord.Node) int64 {
	senders := 1 + len(path) - 1 // origin + intermediates
	if len(path) == 0 {
		senders = 0 // local delivery, no transmission
	}
	nw.MessagesSent += int64(senders)
	var delay int64
	if len(path) > 0 {
		nw.charge(from.ID(), 1)
		delay += nw.hopDelay()
		for _, hop := range path[:len(path)-1] {
			nw.charge(hop.ID(), 1)
			delay += nw.hopDelay()
		}
	}
	return delay
}

// deliverEvent completes a delivery at its scheduled time. It is a
// package-level CtxFunc so scheduling a delivery allocates nothing —
// the network, recipient and payload ride in the event's inline Ctx.
// A recipient that died while the message was in flight triggers the
// bounce path; a recipient that is alive but detached (failure
// injection in tests) still drops the message silently.
func deliverEvent(now sim.Time, c sim.Ctx) {
	nw := c.A.(*Network)
	owner := c.B.(*chord.Node)
	if h, ok := nw.handlers[owner.ID()]; ok && owner.Alive() {
		nw.Delivered++
		h.HandleMessage(now, c.C)
		return
	}
	if !owner.Alive() {
		nw.bounce(c.C)
	}
}

// bounce re-routes an undeliverable message to the node currently
// responsible for its ring key — the departed recipient's next of kin
// under the successor rule. The recovery hop is charged to the new
// owner (it performs the fetch in a real deployment's key-handoff
// repair) and takes one hop delay. If the new owner also dies before
// delivery, the bounce repeats against fresh ground truth, so the
// message survives any churn that leaves the ring non-empty.
func (nw *Network) bounce(msg Message) {
	if !nw.cfg.Bounce {
		return
	}
	rk, ok := msg.(Rekeyable)
	if !ok {
		return
	}
	tgt := nw.Ring.Owner(rk.RingKey())
	if tgt == nil {
		return // ring is empty; nothing can take the message
	}
	nw.Bounced++
	nw.MessagesSent++
	nw.charge(tgt.ID(), 1)
	nw.deliver(tgt, nw.hopDelay(), msg)
}

func (nw *Network) deliver(owner *chord.Node, delay int64, msg Message) {
	nw.Engine.AfterCtx(delay, deliverEvent, sim.Ctx{A: nw, B: owner, C: msg})
}

func (nw *Network) charge(node id.ID, n int64) {
	nw.Traffic.Add(node, n)
	if nw.tag != "" {
		l, ok := nw.tagged[nw.tag]
		if !ok {
			l = metrics.NewLoad()
			nw.tagged[nw.tag] = l
		}
		l.Add(node, n)
	}
}

// WithTag runs fn with every message sent inside it additionally charged
// to the named traffic tag. The experiments use the tag "ric" to report
// the Request-RIC share of total traffic separately, as the figures do.
func (nw *Network) WithTag(tag string, fn func()) {
	prev := nw.tag
	nw.tag = tag
	fn()
	nw.tag = prev
}

// TaggedTraffic returns the per-node traffic charged under a tag (nil
// Load semantics: an unused tag returns an empty counter).
func (nw *Network) TaggedTraffic(tag string) *metrics.Load {
	if l, ok := nw.tagged[tag]; ok {
		return l
	}
	return metrics.NewLoad()
}

// RenameNode transfers a node's accumulated traffic accounting to a new
// identifier (identifier movement keeps the physical node).
func (nw *Network) RenameNode(old, new id.ID) {
	nw.Traffic.Rename(old, new)
	for _, l := range nw.tagged {
		l.Rename(old, new)
	}
}

// ResetTraffic zeroes all traffic accounting (total and tagged). The
// experiment harness calls it after warmup so measurements start clean.
func (nw *Network) ResetTraffic() {
	nw.Traffic.Reset()
	for _, l := range nw.tagged {
		l.Reset()
	}
	nw.MessagesSent = 0
	nw.Delivered = 0
	nw.Bounced = 0
}

// Send routes msg from node "from" to Successor(key) through the DHT
// and returns the owner it was routed to. With batch routing enabled
// the message is buffered instead and the return value is nil (the
// owner is resolved at flush time); delivery is asynchronous either
// way.
func (nw *Network) Send(from *chord.Node, key id.ID, msg Message) *chord.Node {
	if nw.cfg.BatchWindow > 0 {
		nw.enqueue(from, key, msg)
		return nil
	}
	return nw.sendNow(from, key, msg)
}

// sendNow performs an immediate routed delivery, bypassing batching.
func (nw *Network) sendNow(from *chord.Node, key id.ID, msg Message) *chord.Node {
	owner, path := from.Lookup(key)
	delay := nw.chargePath(from, path)
	nw.deliver(owner, delay, msg)
	return owner
}

// enqueue buffers a keyed message in the sender's outbox and schedules
// a flush at the end of the current batch window.
func (nw *Network) enqueue(from *chord.Node, key id.ID, msg Message) {
	ob, ok := nw.outboxes[from.ID()]
	if !ok {
		ob = &outbox{}
		nw.outboxes[from.ID()] = ob
	}
	ob.msgs = append(ob.msgs, msg)
	ob.keys = append(ob.keys, key)
	if !ob.scheduled {
		ob.scheduled = true
		nw.Engine.AfterCtx(nw.cfg.BatchWindow, flushEvent, sim.Ctx{A: nw, B: from})
	}
}

// flushEvent is the batch-window expiry callback; see deliverEvent for
// why it is a package-level CtxFunc.
func flushEvent(_ sim.Time, c sim.Ctx) {
	c.A.(*Network).flush(c.B.(*chord.Node))
}

// flush sends a node's buffered messages as one grouped multiSend.
func (nw *Network) flush(from *chord.Node) {
	ob, ok := nw.outboxes[from.ID()]
	if !ok || len(ob.msgs) == 0 {
		return
	}
	msgs, keys := ob.msgs, ob.keys
	ob.msgs, ob.keys, ob.scheduled = nil, nil, false
	if !from.Alive() {
		return // sender failed before the window closed
	}
	nw.multiSendNow(from, msgs, keys)
}

// SendDirect delivers msg to a node whose address is already known, in a
// single hop (the paper's sendDirect(msg, addr)). A recipient that has
// already left the network loses the message, unless bouncing is
// enabled and the message carries a ring key to re-route by.
func (nw *Network) SendDirect(from *chord.Node, to id.ID, msg Message) {
	owner := nw.Ring.Node(to)
	if owner == nil {
		nw.bounce(msg)
		return
	}
	var delay int64
	if owner != from {
		nw.charge(from.ID(), 1)
		nw.MessagesSent++
		delay = nw.hopDelay()
	}
	nw.deliver(owner, delay, msg)
}

// Transfer delivers msg to a known alive recipient at the current
// instant, charging one message: the synchronous state handoff a
// departing or splitting node completes before responsibility for its
// keys moves on. The handoff is on the wire like any message — and
// counted in the traffic metric — but delivery is instantaneous, so no
// regular (≥ one hop delay) message can observe the new owner before
// its state has arrived. It reports whether the recipient accepted.
func (nw *Network) Transfer(from *chord.Node, to id.ID, msg Message) bool {
	owner := nw.Ring.Node(to)
	if owner == nil {
		nw.bounce(msg)
		return false
	}
	if owner != from {
		nw.charge(from.ID(), 1)
		nw.MessagesSent++
	}
	nw.deliver(owner, 0, msg)
	return true
}

// FlushNode immediately flushes a node's batched outbox. A node about
// to leave gracefully empties its buffers first so batching cannot turn
// a clean departure into message loss.
func (nw *Network) FlushNode(from *chord.Node) { nw.flush(from) }

// MultiSend delivers msgs[j] to Successor(keys[j]) for every j. With
// grouping disabled each delivery is an independent O(log N) lookup
// (cost h*O(log N) as in Section 2); with grouping enabled deliveries
// are chained along the ring so shared route prefixes are paid once.
func (nw *Network) MultiSend(from *chord.Node, msgs []Message, keys []id.ID) {
	if len(msgs) != len(keys) {
		panic(fmt.Sprintf("overlay: MultiSend length mismatch %d vs %d", len(msgs), len(keys)))
	}
	if len(msgs) == 0 {
		return
	}
	if nw.cfg.BatchWindow > 0 {
		for j := range msgs {
			nw.enqueue(from, keys[j], msgs[j])
		}
		return
	}
	nw.multiSendNow(from, msgs, keys)
}

// leg is one delivery of a grouped multiSend.
type leg struct {
	key id.ID
	msg Message
}

// multiSendNow performs the actual delivery for MultiSend and for batch
// flushes.
func (nw *Network) multiSendNow(from *chord.Node, msgs []Message, keys []id.ID) {
	if !nw.cfg.GroupMultiSend || len(msgs) == 1 {
		for j := range msgs {
			nw.sendNow(from, keys[j], msgs[j])
		}
		return
	}
	// Grouped: visit owners in clockwise ring order starting at the
	// origin, each leg routed from the previous owner. The legs buffer
	// is scratch owned by the network; deliveries copy what they need
	// before this function returns.
	legs := nw.legs[:0]
	for j := range msgs {
		legs = append(legs, leg{keys[j], msgs[j]})
	}
	sort.Slice(legs, func(i, j int) bool {
		return id.Dist(from.ID(), legs[i].key) < id.Dist(from.ID(), legs[j].key)
	})
	cur := from
	var accumulated int64
	for _, lg := range legs {
		owner, path := cur.Lookup(lg.key)
		accumulated += nw.chargePath(cur, path)
		nw.deliver(owner, accumulated, lg.msg)
		cur = owner
	}
	for j := range legs {
		legs[j].msg = nil // drop payload references until next use
	}
	nw.legs = legs[:0]
}

// Broadcast delivers one message to every key in keys (the paper's
// multiSend(msg, I) form).
func (nw *Network) Broadcast(from *chord.Node, keys []id.ID, msg Message) {
	msgs := make([]Message, len(keys))
	for i := range keys {
		msgs[i] = msg
	}
	nw.MultiSend(from, msgs, keys)
}

// MaxDelta returns a safe upper bound Δ on end-to-end message delay:
// per-hop δ times the worst-case hop count of a Chord lookup plus
// slack, the quantity Section 4 uses to size the ALTT garbage-collection
// window. The bound uses the current network size.
func (nw *Network) MaxDelta() int64 {
	n := nw.Ring.Size()
	if n == 0 {
		return nw.cfg.MaxHopDelay
	}
	// Worst-case Chord lookup is O(log N) with high probability; use
	// 4*log2(N)+8 as a conservative hop bound.
	hops := int64(8)
	for s := 1; s < n; s *= 2 {
		hops += 4
	}
	// A query transmission traverses at most a handful of batch
	// buffers (the RIC walk legs plus the final send).
	return nw.cfg.MaxHopDelay*hops + 8*nw.cfg.BatchWindow
}
