package overlay

import (
	"testing"

	"rjoin/internal/id"
	"rjoin/internal/sim"
)

func TestBatchingDeliversEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchWindow = 25
	f := newFixture(t, 64, cfg)
	from := f.nodes[0]
	keys := []id.ID{id.HashKey("a"), id.HashKey("b"), id.HashKey("c")}
	for i, k := range keys {
		if owner := f.nw.Send(from, k, i); owner != nil {
			t.Fatal("batched Send must not resolve the owner synchronously")
		}
	}
	f.engine.Run()
	for i, k := range keys {
		owner := f.ring.Owner(k)
		found := false
		for _, m := range f.received[owner.ID()] {
			if m == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("batched message %d not delivered", i)
		}
	}
}

func TestBatchingDelayBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchWindow = 40
	f := newFixture(t, 64, cfg)
	from := f.nodes[0]
	key := id.HashKey("bounded")
	owner := f.ring.Owner(key)
	var at sim.Time = -1
	f.nw.Attach(owner, HandlerFunc(func(now sim.Time, msg Message) { at = now }))
	start := f.engine.Now()
	f.nw.Send(from, key, "x")
	f.engine.Run()
	if at < 0 {
		t.Fatal("never delivered")
	}
	// Window plus a generous routing allowance.
	if d := int64(at - start); d < cfg.BatchWindow || d > cfg.BatchWindow+64 {
		t.Fatalf("batched delivery delay %d outside [%d, %d]", d, cfg.BatchWindow, cfg.BatchWindow+64)
	}
}

func TestBatchingReducesTrafficOnBursts(t *testing.T) {
	run := func(window int64) int64 {
		cfg := DefaultConfig()
		cfg.BatchWindow = window
		f := newFixture(t, 256, cfg)
		from := f.nodes[0]
		// A burst of 32 sends within one window.
		for i := 0; i < 32; i++ {
			f.nw.Send(from, id.HashKey(string(rune('A'+i))), i)
		}
		f.engine.Run()
		return f.nw.MessagesSent
	}
	batched := run(50)
	unbatched := run(0)
	if batched >= unbatched {
		t.Fatalf("batching did not reduce burst traffic: %d >= %d", batched, unbatched)
	}
}

func TestBatchingFromFailedNodeDropped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchWindow = 30
	f := newFixture(t, 32, cfg)
	from := f.nodes[0]
	key := id.HashKey("doomed")
	f.nw.Send(from, key, "x")
	f.ring.Fail(from) // sender dies before the window closes
	f.engine.Run()
	owner := f.ring.Owner(key)
	if len(f.received[owner.ID()]) != 0 {
		t.Fatal("message from failed sender delivered")
	}
}

func TestBatchWindowExtendsMaxDelta(t *testing.T) {
	plain := newFixture(t, 64, DefaultConfig())
	cfg := DefaultConfig()
	cfg.BatchWindow = 100
	batched := newFixture(t, 64, cfg)
	if batched.nw.MaxDelta() <= plain.nw.MaxDelta() {
		t.Fatal("MaxDelta ignores the batch window")
	}
}

func TestMultiSendBatched(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchWindow = 20
	f := newFixture(t, 64, cfg)
	keys := []id.ID{id.HashKey("m1"), id.HashKey("m2")}
	f.nw.MultiSend(f.nodes[0], []Message{"a", "b"}, keys)
	f.engine.Run()
	for i, k := range keys {
		owner := f.ring.Owner(k)
		if len(f.received[owner.ID()]) == 0 {
			t.Fatalf("batched MultiSend lost message %d", i)
		}
	}
}
