package chord

import (
	"math/rand"
	"testing"

	"rjoin/internal/id"
)

// The partition tests model a network partition at the membership
// layer, which is how the overlay's fault plan presents one to Chord:
// while the window is open, each side sees the other as failed (no
// heartbeats cross the cut), and when it heals the severed nodes come
// back under their original identifiers. The ring protocol itself has
// no partition primitive — exactly as in the paper's deployment model —
// so the sequence is Fail, stabilize the survivors, re-Join, and let
// the incremental TickStabilize cadence reconverge.

// severSide fails every node on one side of the cut and runs the
// survivors' maintenance until their view converges.
func severSide(r *Ring, side []*Node) {
	for _, n := range side {
		r.Fail(n)
	}
	for i := 0; i < 2*ringTickRounds; i++ {
		r.TickStabilize()
	}
}

// healSide rejoins the severed identifiers and reconverges with the
// same incremental cadence a live deployment runs.
func healSide(t *testing.T, r *Ring, ids []id.ID) {
	t.Helper()
	for _, nid := range ids {
		if _, err := r.Join(nid); err != nil {
			t.Fatalf("heal rejoin of %v: %v", nid, err)
		}
	}
	for i := 0; i < 2*ringTickRounds; i++ {
		r.TickStabilize()
	}
}

// verifyConverged checks every alive node against ground truth:
// successor, predecessor and the full finger table.
func verifyConverged(t *testing.T, r *Ring) {
	t.Helper()
	for _, n := range r.Nodes() {
		if want := r.Owner(n.ID() + 1); n.Successor() != want {
			t.Fatalf("successor of %v = %v, want %v", n, n.Successor(), want)
		}
		if p := n.Predecessor(); p == nil || !p.Alive() {
			t.Fatalf("predecessor of %v not repaired: %v", n, p)
		}
		for i := 0; i < id.Bits; i++ {
			if want := r.Owner(id.FingerStart(n.ID(), i)); n.finger[i] != want {
				t.Fatalf("finger[%d] of %v = %v, want %v", i, n, n.finger[i], want)
			}
		}
	}
}

// TestPartitionHealContiguous: a partition that severs a contiguous arc
// of the identifier space — the hardest shape, because the survivor
// bordering the cut loses nearly its whole successor list at once. The
// arc is SuccessorListLen-1 wide, the most simultaneous contiguous
// failures Chord's r-length successor list guarantees recovery from.
// The majority must reconverge among themselves during the outage, and
// the healed ring must return to ground truth.
func TestPartitionHealContiguous(t *testing.T) {
	r := buildRing(t, 64, 41)
	nodes := r.Nodes()
	side := nodes[24 : 24+SuccessorListLen-1]
	ids := make([]id.ID, len(side))
	for i, n := range side {
		ids[i] = n.ID()
	}

	severSide(r, side)
	if got, want := r.Size(), 64-len(side); got != want {
		t.Fatalf("majority size during partition = %d, want %d", got, want)
	}
	verifyConverged(t, r)
	verifyLookups(t, r, 42, 200)

	healSide(t, r, ids)
	if got := r.Size(); got != 64 {
		t.Fatalf("healed ring size = %d, want 64", got)
	}
	verifyConverged(t, r)
	verifyLookups(t, r, 43, 300)
}

// TestPartitionHealScattered: a cut along arbitrary lines — every third
// node severed — so repairs interleave all around the ring rather than
// concentrating at two borders.
func TestPartitionHealScattered(t *testing.T) {
	r := buildRing(t, 60, 44)
	var side []*Node
	var ids []id.ID
	for i, n := range r.Nodes() {
		if i%3 == 0 {
			side = append(side, n)
			ids = append(ids, n.ID())
		}
	}
	severSide(r, side)
	verifyConverged(t, r)
	healSide(t, r, ids)
	verifyConverged(t, r)
	verifyLookups(t, r, 45, 300)
}

// TestPartitionHealRepeated: two back-to-back partition/heal cycles on
// different cuts — state left over from the first repair (stale finger
// entries pointing at first-generation node objects) must not corrupt
// the second.
func TestPartitionHealRepeated(t *testing.T) {
	r := buildRing(t, 48, 46)
	rng := rand.New(rand.NewSource(47))
	for cycle := 0; cycle < 2; cycle++ {
		nodes := r.Nodes()
		var side []*Node
		var ids []id.ID
		for _, n := range nodes {
			if rng.Intn(3) == 0 {
				side = append(side, n)
				ids = append(ids, n.ID())
			}
		}
		severSide(r, side)
		healSide(t, r, ids)
		verifyConverged(t, r)
	}
	verifyLookups(t, r, 48, 300)
}

// TestTwoNodeRingPartitionHeals: the two-node edge ring. The cut leaves
// each side a singleton; the survivor must collapse to self-succession,
// own the entire identifier space for the duration, and re-form the
// two-node ring on heal.
func TestTwoNodeRingPartitionHeals(t *testing.T) {
	r := NewRing()
	a, _ := r.Join(100)
	b, _ := r.Join(200)

	severSide(r, []*Node{b})
	if a.Successor() != a {
		t.Fatal("partitioned survivor must self-succeed")
	}
	if owner, _ := a.Lookup(150); owner != a {
		t.Fatal("survivor must own the whole space during the outage")
	}

	healSide(t, r, []id.ID{200})
	b2 := r.Node(200)
	if b2 == nil || !b2.Alive() {
		t.Fatal("healed node missing")
	}
	if a.Successor() != b2 || b2.Successor() != a {
		t.Fatalf("healed two-node ring not mutual: a→%v, b→%v", a.Successor(), b2.Successor())
	}
	if r.Owner(150) != b2 || r.Owner(250) != a {
		t.Fatal("healed two-node ownership arcs wrong")
	}
	verifyConverged(t, r)
	verifyLookups(t, r, 49, 50)
	_ = b
}

// TestOneNodeRingPartitionHeals: a partition that severs everyone else
// shrinks the ring to a single alive node — the degenerate edge ring —
// which must keep resolving every key locally and then absorb the whole
// membership back on heal.
func TestOneNodeRingPartitionHeals(t *testing.T) {
	r := NewRing()
	survivor, _ := r.Join(500)
	others := []id.ID{100, 200, 300, 400, 600, 700}
	for _, nid := range others {
		if _, err := r.Join(nid); err != nil {
			t.Fatal(err)
		}
	}
	r.BuildPerfect()

	var side []*Node
	for _, n := range r.Nodes() {
		if n != survivor {
			side = append(side, n)
		}
	}
	severSide(r, side)
	if r.Size() != 1 {
		t.Fatalf("ring size during total partition = %d, want 1", r.Size())
	}
	if survivor.Successor() != survivor {
		t.Fatal("sole survivor must self-succeed")
	}
	if owner, _ := survivor.Lookup(123); owner != survivor {
		t.Fatal("sole survivor must resolve all keys locally")
	}

	healSide(t, r, others)
	if r.Size() != 7 {
		t.Fatalf("healed ring size = %d, want 7", r.Size())
	}
	verifyConverged(t, r)
	verifyLookups(t, r, 50, 100)
}
