// Package chord implements the Chord distributed hash table protocol
// (Stoica et al., SIGCOMM'01) as an in-process overlay: every node keeps
// a real finger table and successor list, lookups route greedily through
// fingers in O(log N) hops, and the ring supports joins, voluntary
// leaves, failures and the periodic stabilization protocol.
//
// The RJoin layers above only consume the lookup API (the paper's
// DHT-agnostic design), but the routing below is genuine Chord so the
// per-message hop counts reported by the experiment harness have the
// same O(log N) structure as the paper's testbed.
package chord

import (
	"fmt"
	"sort"

	"rjoin/internal/id"
)

// SuccessorListLen is the length r of each node's successor list. Chord
// recommends r = O(log N); 16 comfortably covers the simulated scales.
const SuccessorListLen = 16

// Node is one Chord participant. All state is protocol-visible routing
// state; application state lives in the layers above, keyed by the
// node's identifier.
type Node struct {
	id    id.ID
	alive bool

	pred   *Node
	succ   []*Node        // successor list, succ[0] is the immediate successor
	finger [id.Bits]*Node // finger[i] = successor(n + 2^i)
	ring   *Ring
}

// ID returns the node's ring identifier.
func (n *Node) ID() id.ID { return n.id }

// Alive reports whether the node is still part of the overlay.
func (n *Node) Alive() bool { return n.alive }

// Successor returns the node's current immediate successor (itself if
// the ring has a single node).
func (n *Node) Successor() *Node {
	for _, s := range n.succ {
		if s != nil && s.alive {
			return s
		}
	}
	return n
}

// Predecessor returns the node's current predecessor, or nil if unknown.
func (n *Node) Predecessor() *Node { return n.pred }

// SuccessorList returns up to k distinct alive successors of n in ring
// order, excluding n itself — the replica-group membership of every key
// n is responsible for. The walk follows each hop's own protocol links
// (Successor skips entries known dead), so the list self-repairs
// through the same stabilization rounds that repair routing: after a
// failure, one Stabilize pass per surviving hop restores it. Rings
// smaller than k+1 nodes yield every other member; a singleton ring
// yields an empty list.
func (r *Ring) SuccessorList(n *Node, k int) []*Node {
	if n == nil || k <= 0 {
		return nil
	}
	out := make([]*Node, 0, k)
	cur := n
	// Each hop advances at least one ring position, so k + Size() steps
	// suffice even when dead entries are skipped along the way.
	for steps := 0; len(out) < k && steps < k+len(r.byID); steps++ {
		next := cur.Successor()
		if next == n || next == cur {
			break // wrapped around, or no live successor known
		}
		dup := false
		for _, s := range out {
			if s == next {
				dup = true
				break
			}
		}
		if dup {
			break // the walk is cycling through a sub-ring
		}
		out = append(out, next)
		cur = next
	}
	return out
}

// String implements fmt.Stringer.
func (n *Node) String() string { return fmt.Sprintf("node(%s)", n.id) }

// Ring is the collection of Chord nodes forming one overlay. It owns
// membership bookkeeping; routing decisions are taken by the individual
// nodes' finger tables.
type Ring struct {
	byID  map[id.ID]*Node
	order []*Node // alive nodes sorted by id; maintained on change
	dirty bool

	// fingerStride rotates which finger indices TickStabilize repairs,
	// so incremental maintenance touches the full table every
	// ringTickRounds rounds.
	fingerStride int
}

// NewRing returns an empty overlay.
func NewRing() *Ring {
	return &Ring{byID: make(map[id.ID]*Node)}
}

// Size returns the number of alive nodes.
func (r *Ring) Size() int { return len(r.sorted()) }

// Nodes returns the alive nodes in identifier order. The returned slice
// is shared; callers must not mutate it.
func (r *Ring) Nodes() []*Node { return r.sorted() }

// Node returns the node owning identifier nid, or nil.
func (r *Ring) Node(nid id.ID) *Node {
	n := r.byID[nid]
	if n == nil || !n.alive {
		return nil
	}
	return n
}

func (r *Ring) sorted() []*Node {
	if r.dirty {
		r.order = r.order[:0]
		for _, n := range r.byID {
			if n.alive {
				r.order = append(r.order, n)
			}
		}
		sort.Slice(r.order, func(i, j int) bool { return r.order[i].id < r.order[j].id })
		r.dirty = false
	}
	return r.order
}

// successorOf returns the first alive node whose identifier is >= target
// (mod ring), i.e. ground-truth Successor(target). Used for membership
// changes and for verifying routing in tests; routing itself goes
// through finger tables.
func (r *Ring) successorOf(target id.ID) *Node {
	nodes := r.sorted()
	if len(nodes) == 0 {
		return nil
	}
	i := sort.Search(len(nodes), func(i int) bool { return nodes[i].id >= target })
	if i == len(nodes) {
		i = 0
	}
	return nodes[i]
}

// Owner returns the ground-truth successor node of the given identifier.
func (r *Ring) Owner(target id.ID) *Node { return r.successorOf(target) }

// Join adds a node with the given identifier to the overlay and fully
// stabilizes its own routing state (the node performs its joining lookup
// through an existing member; fingers are then built by the fix-fingers
// protocol). It returns an error if the identifier is taken.
func (r *Ring) Join(nid id.ID) (*Node, error) {
	if ex, ok := r.byID[nid]; ok && ex.alive {
		return nil, fmt.Errorf("chord: identifier %s already joined", nid)
	}
	n := &Node{id: nid, alive: true, ring: r}
	n.succ = make([]*Node, SuccessorListLen)
	r.byID[nid] = n
	r.dirty = true

	// First node bootstraps a singleton ring.
	if len(r.sorted()) == 1 {
		for i := range n.succ {
			n.succ[i] = n
		}
		for i := range n.finger {
			n.finger[i] = n
		}
		n.pred = n
		return n, nil
	}

	// Locate the successor via ground truth (the joining lookup in real
	// Chord; the result is identical) and splice in.
	succ := r.successorOfExcluding(nid, n)
	n.setSuccessor(succ)
	n.Stabilize()
	succ.Stabilize()
	if p := n.pred; p != nil {
		p.Stabilize()
	}
	n.FixAllFingers()
	return n, nil
}

func (r *Ring) successorOfExcluding(target id.ID, skip *Node) *Node {
	nodes := r.sorted()
	i := sort.Search(len(nodes), func(i int) bool { return nodes[i].id >= target })
	for k := 0; k < len(nodes); k++ {
		cand := nodes[(i+k)%len(nodes)]
		if cand != skip {
			return cand
		}
	}
	return nil
}

// Leave removes a node voluntarily: it hands its position to its
// successor and notifies its neighbours, as in Chord's voluntary-leave
// protocol.
func (r *Ring) Leave(n *Node) {
	if !n.alive {
		return
	}
	n.alive = false
	r.dirty = true
	succ := r.successorOf(n.id)
	if succ != nil && n.pred != nil && n.pred.alive {
		n.pred.setSuccessor(succ)
		succ.pred = n.pred
	}
}

// Fail removes a node abruptly, without notification. Neighbours repair
// via Stabilize/FixAllFingers, as in the Chord failure model.
func (r *Ring) Fail(n *Node) {
	if !n.alive {
		return
	}
	n.alive = false
	r.dirty = true
}

// StabilizeAll runs one round of stabilization on every node, then one
// round of finger fixing — the steady-state maintenance the Chord papers
// prove converges to a correct ring.
func (r *Ring) StabilizeAll() {
	for _, n := range r.sorted() {
		n.Stabilize()
	}
	for _, n := range r.sorted() {
		n.FixAllFingers()
	}
}

// ringTickRounds is how many TickStabilize rounds cover a full finger
// table: each round repairs id.Bits/ringTickRounds finger indices per
// node, the incremental fix_fingers cadence of a running deployment.
const ringTickRounds = 8

// TickStabilize runs one incremental maintenance round, the unit of
// work a deployment performs per stabilization timer fire: every alive
// node stabilizes its successor/predecessor links, then repairs a
// rotating 1/8 slice of its finger table. Repeated rounds converge the
// ring after membership changes without paying FixAllFingers on every
// tick; mid-convergence lookups stay correct because routing falls
// back to the successor chain (and, pathologically, ground truth).
func (r *Ring) TickStabilize() {
	nodes := r.sorted()
	for _, n := range nodes {
		n.Stabilize()
	}
	stride := id.Bits / ringTickRounds
	lo := r.fingerStride * stride
	r.fingerStride = (r.fingerStride + 1) % ringTickRounds
	for _, n := range nodes {
		for i := lo; i < lo+stride; i++ {
			n.FixFinger(i)
		}
	}
}

// BuildPerfect sets every alive node's successor list, predecessor and
// finger table to their ground-truth values. Used by the experiment
// harness to start from a converged overlay (the paper measures a stable
// network), avoiding thousands of stabilization rounds.
func (r *Ring) BuildPerfect() {
	nodes := r.sorted()
	for idx, n := range nodes {
		n.pred = nodes[(idx-1+len(nodes))%len(nodes)]
		for k := 0; k < SuccessorListLen; k++ {
			n.succ[k] = nodes[(idx+1+k)%len(nodes)]
		}
		for i := 0; i < id.Bits; i++ {
			n.finger[i] = r.successorOf(id.FingerStart(n.id, i))
		}
	}
}

func (n *Node) setSuccessor(s *Node) {
	n.succ[0] = s
	n.finger[0] = s
}

// Stabilize runs Chord's stabilize(): ask the successor for its
// predecessor, adopt it if closer, and notify the successor of us. It
// also refreshes the successor list from the (possibly new) successor.
func (n *Node) Stabilize() {
	if !n.alive {
		return
	}
	// Skip dead successors using the successor list.
	s := n.Successor()
	if x := s.pred; x != nil && x.alive && id.Between(x.id, n.id, s.id) {
		s = x
	}
	n.setSuccessor(s)
	s.notify(n)
	// Refresh successor list: our list is successor + its list shifted.
	n.succ[0] = s
	for i := 1; i < SuccessorListLen; i++ {
		prev := n.succ[i-1]
		if prev == nil || !prev.alive {
			n.succ[i] = nil
			continue
		}
		n.succ[i] = prev.Successor()
	}
	if n.pred != nil && !n.pred.alive {
		n.pred = nil
	}
}

func (n *Node) notify(candidate *Node) {
	if n.pred == nil || !n.pred.alive || id.Between(candidate.id, n.pred.id, n.id) {
		n.pred = candidate
	}
}

// FixAllFingers recomputes the node's full finger table, the batched
// equivalent of running fix_fingers() over every index.
func (n *Node) FixAllFingers() {
	if !n.alive {
		return
	}
	for i := 0; i < id.Bits; i++ {
		n.finger[i] = n.ring.successorOf(id.FingerStart(n.id, i))
	}
}

// FixFinger repairs one finger table entry — Chord's fix_fingers()
// step, run incrementally by TickStabilize.
func (n *Node) FixFinger(i int) {
	if !n.alive || i < 0 || i >= id.Bits {
		return
	}
	n.finger[i] = n.ring.successorOf(id.FingerStart(n.id, i))
}

// closestPrecedingNode returns the alive finger (or successor-list
// entry) that most closely precedes target — Chord's routing step.
func (n *Node) closestPrecedingNode(target id.ID) *Node {
	for i := id.Bits - 1; i >= 0; i-- {
		f := n.finger[i]
		if f != nil && f.alive && id.Between(f.id, n.id, target) {
			return f
		}
	}
	for i := len(n.succ) - 1; i >= 0; i-- {
		s := n.succ[i]
		if s != nil && s.alive && id.Between(s.id, n.id, target) {
			return s
		}
	}
	return n
}

// Lookup routes from node n to Successor(target) using iterative
// closest-preceding-finger routing and returns the owner along with the
// hop path taken (excluding n itself). Hop counting is what the traffic
// metric of the experiments is built from: len(path) messages are needed
// to deliver one keyed message.
func (n *Node) Lookup(target id.ID) (owner *Node, path []*Node) {
	// A node knows its own arc (pred, n]: keys there resolve locally.
	if p := n.pred; p != nil && p.alive && id.BetweenRightIncl(target, p.id, n.id) {
		return n, nil
	}
	cur := n
	for hops := 0; hops < 2*id.Bits; hops++ {
		succ := cur.Successor()
		if id.BetweenRightIncl(target, cur.id, succ.id) {
			if succ != n {
				path = append(path, succ)
			}
			return succ, path
		}
		next := cur.closestPrecedingNode(target)
		if next == cur {
			// Routing cannot make progress through fingers (e.g. stale
			// tables mid-churn): fall through to the successor.
			next = succ
		}
		if next != n {
			path = append(path, next)
		}
		cur = next
	}
	// Pathological stale state: fall back to ground truth so the layers
	// above never dead-lock. Counted as one extra hop.
	owner = n.ring.successorOf(target)
	path = append(path, owner)
	return owner, path
}
