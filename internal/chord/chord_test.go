package chord

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rjoin/internal/id"
)

// buildRing joins n nodes with deterministic pseudo-random identifiers
// and converges routing state.
func buildRing(t testing.TB, n int, seed int64) *Ring {
	t.Helper()
	r := NewRing()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for {
			if _, err := r.Join(id.ID(rng.Uint64())); err == nil {
				break
			}
		}
	}
	r.BuildPerfect()
	return r
}

func TestSingletonRing(t *testing.T) {
	r := NewRing()
	n, err := r.Join(42)
	if err != nil {
		t.Fatal(err)
	}
	if n.Successor() != n {
		t.Fatal("singleton node must be its own successor")
	}
	owner, path := n.Lookup(999)
	if owner != n {
		t.Fatal("singleton lookup must return self")
	}
	if len(path) != 0 {
		t.Fatalf("singleton lookup should be local, got %d hops", len(path))
	}
}

func TestJoinDuplicateID(t *testing.T) {
	r := NewRing()
	if _, err := r.Join(7); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Join(7); err == nil {
		t.Fatal("duplicate join must fail")
	}
}

func TestLookupFindsGroundTruthOwner(t *testing.T) {
	r := buildRing(t, 200, 1)
	rng := rand.New(rand.NewSource(2))
	nodes := r.Nodes()
	for i := 0; i < 500; i++ {
		from := nodes[rng.Intn(len(nodes))]
		target := id.ID(rng.Uint64())
		owner, _ := from.Lookup(target)
		if want := r.Owner(target); owner != want {
			t.Fatalf("lookup(%v) from %v = %v, want %v", target, from, owner, want)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		r := buildRing(t, n, int64(n))
		rng := rand.New(rand.NewSource(99))
		nodes := r.Nodes()
		total := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			from := nodes[rng.Intn(len(nodes))]
			_, path := from.Lookup(id.ID(rng.Uint64()))
			total += len(path)
		}
		mean := float64(total) / trials
		// Chord: mean hops ~ (1/2) log2 N. Allow generous slack.
		bound := 1.5*math.Log2(float64(n)) + 2
		if mean > bound {
			t.Errorf("N=%d: mean hops %.2f exceeds bound %.2f", n, mean, bound)
		}
	}
}

func TestOwnerIsSuccessorRule(t *testing.T) {
	r := buildRing(t, 50, 3)
	nodes := r.Nodes()
	// Every key between pred(n) exclusive and n inclusive belongs to n.
	for i, n := range nodes {
		prev := nodes[(i-1+len(nodes))%len(nodes)]
		if got := r.Owner(n.ID()); got != n {
			t.Fatalf("Owner(n.ID()) != n")
		}
		mid := prev.ID() + (n.ID()-prev.ID())/2
		if prev.ID() != n.ID() {
			if got := r.Owner(mid + 1); !id.BetweenRightIncl(mid+1, prev.ID(), n.ID()) || got != n {
				// only assert when mid+1 actually falls in the arc
				if id.BetweenRightIncl(mid+1, prev.ID(), n.ID()) {
					t.Fatalf("Owner(mid) = %v, want %v", got, n)
				}
			}
		}
	}
}

func TestVoluntaryLeave(t *testing.T) {
	r := buildRing(t, 100, 4)
	nodes := append([]*Node(nil), r.Nodes()...)
	victim := nodes[17]
	vid := victim.ID()
	r.Leave(victim)
	r.StabilizeAll()
	if r.Node(vid) != nil {
		t.Fatal("left node still resolvable")
	}
	owner := r.Owner(vid)
	if owner == victim {
		t.Fatal("keys of left node not reassigned")
	}
	// Lookups still converge from every node.
	for _, from := range r.Nodes() {
		got, _ := from.Lookup(vid)
		if got != owner {
			t.Fatalf("post-leave lookup diverged: %v vs %v", got, owner)
		}
	}
}

func TestAbruptFailureRepairedByStabilization(t *testing.T) {
	r := buildRing(t, 100, 5)
	rng := rand.New(rand.NewSource(6))
	// Fail 10 random nodes without notice.
	for i := 0; i < 10; i++ {
		nodes := r.Nodes()
		r.Fail(nodes[rng.Intn(len(nodes))])
	}
	// A few stabilization rounds must repair the ring.
	for i := 0; i < 3; i++ {
		r.StabilizeAll()
	}
	for i := 0; i < 200; i++ {
		nodes := r.Nodes()
		from := nodes[rng.Intn(len(nodes))]
		target := id.ID(rng.Uint64())
		owner, _ := from.Lookup(target)
		if want := r.Owner(target); owner != want {
			t.Fatalf("post-failure lookup(%v) = %v, want %v", target, owner, want)
		}
	}
}

func TestIncrementalJoinConverges(t *testing.T) {
	// Join nodes one at a time with stabilization only (no BuildPerfect)
	// and check lookups stay correct throughout.
	r := NewRing()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		if _, err := r.Join(id.ID(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
		r.StabilizeAll()
	}
	for i := 0; i < 200; i++ {
		nodes := r.Nodes()
		from := nodes[rng.Intn(len(nodes))]
		target := id.ID(rng.Uint64())
		owner, _ := from.Lookup(target)
		if want := r.Owner(target); owner != want {
			t.Fatalf("incremental ring lookup(%v) = %v, want %v", target, owner, want)
		}
	}
}

// Property: ownership partitions the key space — for random keys the
// owner is the unique alive node whose arc covers the key.
func TestOwnershipPartitionProperty(t *testing.T) {
	r := buildRing(t, 128, 8)
	nodes := r.Nodes()
	f := func(key uint64) bool {
		owner := r.Owner(id.ID(key))
		count := 0
		for i, n := range nodes {
			prev := nodes[(i-1+len(nodes))%len(nodes)]
			if id.BetweenRightIncl(id.ID(key), prev.ID(), n.ID()) {
				count++
				if n != owner {
					return false
				}
			}
		}
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerTablesPointAtSuccessors(t *testing.T) {
	r := buildRing(t, 64, 9)
	for _, n := range r.Nodes() {
		for i := 0; i < id.Bits; i += 7 { // sample fingers
			start := id.FingerStart(n.ID(), i)
			if n.finger[i] != r.Owner(start) {
				t.Fatalf("finger[%d] of %v stale", i, n)
			}
		}
	}
}

func TestLookupPathExcludesOrigin(t *testing.T) {
	r := buildRing(t, 128, 10)
	nodes := r.Nodes()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		from := nodes[rng.Intn(len(nodes))]
		_, path := from.Lookup(id.ID(rng.Uint64()))
		for _, p := range path {
			if p == from {
				t.Fatal("origin appears in its own hop path")
			}
		}
	}
}

// verifyLookups asserts that lookups from every node agree with ground
// truth for a batch of random targets.
func verifyLookups(t *testing.T, r *Ring, seed int64, trials int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		nodes := r.Nodes()
		from := nodes[rng.Intn(len(nodes))]
		target := id.ID(rng.Uint64())
		owner, _ := from.Lookup(target)
		if want := r.Owner(target); owner != want {
			t.Fatalf("lookup(%v) from %v = %v, want %v", target, from, owner, want)
		}
	}
}

func TestOneNodeRingLeaveAndRejoin(t *testing.T) {
	r := NewRing()
	n, err := r.Join(11)
	if err != nil {
		t.Fatal(err)
	}
	r.Leave(n)
	if r.Size() != 0 {
		t.Fatalf("size after sole node left = %d, want 0", r.Size())
	}
	if r.Owner(123) != nil {
		t.Fatal("empty ring must own nothing")
	}
	// The identifier is free again and the rejoined node bootstraps a
	// fresh singleton ring.
	n2, err := r.Join(11)
	if err != nil {
		t.Fatalf("rejoin after leave: %v", err)
	}
	if n2.Successor() != n2 || n2.Predecessor() != n2 {
		t.Fatal("rejoined singleton must point at itself")
	}
	if owner, _ := n2.Lookup(999); owner != n2 {
		t.Fatal("singleton lookup must resolve locally")
	}
}

func TestTwoNodeRing(t *testing.T) {
	r := NewRing()
	a, _ := r.Join(100)
	b, err := r.Join(200)
	if err != nil {
		t.Fatal(err)
	}
	if a.Successor() != b || b.Successor() != a {
		t.Fatal("two-node ring successors must point at each other")
	}
	if r.Owner(150) != b || r.Owner(250) != a {
		t.Fatal("two-node ownership arcs wrong")
	}
	verifyLookups(t, r, 21, 50)

	// Leaving one node collapses back to a correct singleton.
	r.Leave(b)
	r.StabilizeAll()
	if a.Successor() != a {
		t.Fatal("survivor must become its own successor")
	}
	if p := a.Predecessor(); p != nil && p != a {
		t.Fatalf("survivor predecessor = %v, want self or nil", p)
	}
	if r.Owner(150) != a {
		t.Fatal("survivor must own the whole ring")
	}
}

func TestTwoNodeRingFailure(t *testing.T) {
	r := NewRing()
	a, _ := r.Join(100)
	b, _ := r.Join(200)
	r.Fail(b)
	for i := 0; i < 3; i++ {
		r.StabilizeAll()
	}
	if a.Successor() != a {
		t.Fatal("survivor of a 2-node failure must self-succeed")
	}
	if owner, _ := a.Lookup(150); owner != a {
		t.Fatal("survivor must resolve all keys locally")
	}
}

// Leave of a node's own successor: the predecessor must splice past it
// and keep routing correct, including when the two are adjacent in a
// larger ring.
func TestLeaveOfOwnSuccessor(t *testing.T) {
	r := buildRing(t, 64, 31)
	nodes := r.Nodes()
	n := nodes[10]
	victim := n.Successor()
	if victim == n {
		t.Fatal("fixture broken: node is its own successor in a 64-ring")
	}
	r.Leave(victim)
	if n.Successor() == victim {
		t.Fatal("leave did not splice the predecessor past the victim")
	}
	r.StabilizeAll()
	if got := n.Successor(); got != r.Owner(victim.ID()) {
		t.Fatalf("successor after leave = %v, want %v", got, r.Owner(victim.ID()))
	}
	verifyLookups(t, r, 32, 200)
}

// Fail followed by StabilizeAll rounds must reconverge successor lists,
// predecessors and fingers to ground truth, even when a node's whole
// nearby neighbourhood fails at once.
func TestFailThenStabilizeConvergence(t *testing.T) {
	r := buildRing(t, 96, 33)
	nodes := append([]*Node(nil), r.Nodes()...)
	// Fail a contiguous run of successors (harder than scattered
	// failures: the survivor's first few successor-list entries all die).
	for k := 1; k <= 5; k++ {
		r.Fail(nodes[(20+k)%len(nodes)])
	}
	for i := 0; i < 4; i++ {
		r.StabilizeAll()
	}
	for _, n := range r.Nodes() {
		if want := r.Owner(n.ID() + 1); n.Successor() != want {
			t.Fatalf("successor of %v = %v, want %v", n, n.Successor(), want)
		}
		if p := n.Predecessor(); p == nil || !p.Alive() {
			t.Fatalf("predecessor of %v not repaired: %v", n, p)
		}
	}
	verifyLookups(t, r, 34, 300)
}

// TickStabilize is the incremental maintenance cadence: after churn,
// enough rounds must converge the ring exactly like StabilizeAll.
func TestTickStabilizeConverges(t *testing.T) {
	r := buildRing(t, 80, 35)
	rng := rand.New(rand.NewSource(36))
	for i := 0; i < 6; i++ {
		nodes := r.Nodes()
		r.Fail(nodes[rng.Intn(len(nodes))])
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Join(id.ID(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	// One full finger rotation plus slack.
	for i := 0; i < 2*ringTickRounds; i++ {
		r.TickStabilize()
	}
	for _, n := range r.Nodes() {
		for i := 0; i < id.Bits; i++ {
			if want := r.Owner(id.FingerStart(n.ID(), i)); n.finger[i] != want {
				t.Fatalf("finger[%d] of %v = %v, want %v", i, n, n.finger[i], want)
			}
		}
	}
	verifyLookups(t, r, 37, 300)
}

func BenchmarkLookup1024(b *testing.B) {
	r := buildRing(b, 1024, 12)
	nodes := r.Nodes()
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := nodes[rng.Intn(len(nodes))]
		from.Lookup(id.ID(rng.Uint64()))
	}
}

func ExampleRing_Owner() {
	r := NewRing()
	r.Join(100)
	r.Join(200)
	r.Join(300)
	r.BuildPerfect()
	fmt.Println(r.Owner(150).ID() == 200)
	fmt.Println(r.Owner(301).ID() == 100) // wraps around
	// Output:
	// true
	// true
}

// TestSuccessorListBasic: in a converged ring, SuccessorList(n, k)
// returns the k next alive nodes in identifier order, n excluded.
func TestSuccessorListBasic(t *testing.T) {
	r := buildRing(t, 16, 5)
	nodes := r.Nodes()
	for i, n := range nodes {
		got := r.SuccessorList(n, 3)
		if len(got) != 3 {
			t.Fatalf("node %d: successor list length %d, want 3", i, len(got))
		}
		for j, s := range got {
			want := nodes[(i+1+j)%len(nodes)]
			if s != want {
				t.Fatalf("node %d: successor %d is %s, want %s", i, j, s, want)
			}
		}
	}
}

// TestSuccessorListSmallRings: a singleton yields an empty list, a
// two-node ring yields exactly the other node, and both are stable when
// k exceeds the ring size.
func TestSuccessorListSmallRings(t *testing.T) {
	r := NewRing()
	a, _ := r.Join(100)
	if got := r.SuccessorList(a, 4); len(got) != 0 {
		t.Fatalf("singleton successor list %v, want empty", got)
	}
	b, _ := r.Join(200)
	r.StabilizeAll()
	if got := r.SuccessorList(a, 4); len(got) != 1 || got[0] != b {
		t.Fatalf("two-node list of a: %v, want [b]", got)
	}
	if got := r.SuccessorList(b, 4); len(got) != 1 || got[0] != a {
		t.Fatalf("two-node list of b: %v, want [a]", got)
	}
	if got := r.SuccessorList(a, 0); got != nil {
		t.Fatalf("k=0 list %v, want nil", got)
	}
}

// TestSuccessorListLargerThanRing: k larger than the ring returns every
// other member exactly once, in ring order.
func TestSuccessorListLargerThanRing(t *testing.T) {
	r := buildRing(t, 5, 9)
	nodes := r.Nodes()
	for i, n := range nodes {
		got := r.SuccessorList(n, 64)
		if len(got) != len(nodes)-1 {
			t.Fatalf("node %d: list length %d, want %d", i, len(got), len(nodes)-1)
		}
		seen := map[*Node]bool{n: true}
		for j, s := range got {
			if seen[s] {
				t.Fatalf("node %d: duplicate entry %s at position %d", i, s, j)
			}
			seen[s] = true
			if want := nodes[(i+1+j)%len(nodes)]; s != want {
				t.Fatalf("node %d: position %d is %s, want %s", i, j, s, want)
			}
		}
	}
}

// TestSuccessorListRepairsAfterFail: failing a node leaves it out of
// every successor list after one stabilization round, and the node that
// followed it moves up one position.
func TestSuccessorListRepairsAfterFail(t *testing.T) {
	r := buildRing(t, 12, 13)
	nodes := append([]*Node(nil), r.Nodes()...)
	victim := nodes[4]
	r.Fail(victim)
	// Immediately after the failure the walk already skips the dead
	// node: Successor() consults liveness.
	for _, n := range r.Nodes() {
		for _, s := range r.SuccessorList(n, 4) {
			if s == victim {
				t.Fatalf("dead node %s still in successor list of %s before stabilize", victim, n)
			}
		}
	}
	r.StabilizeAll()
	alive := r.Nodes()
	for i, n := range alive {
		got := r.SuccessorList(n, 3)
		if len(got) != 3 {
			t.Fatalf("node %s: repaired list length %d, want 3", n, len(got))
		}
		for j, s := range got {
			if want := alive[(i+1+j)%len(alive)]; s != want {
				t.Fatalf("node %s: repaired position %d is %s, want %s", n, j, s, want)
			}
		}
	}
}
