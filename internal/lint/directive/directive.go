// Package directive parses the suppression directives shared by every
// rjoin-lint analyzer.
//
// Two forms are recognised, always as line comments:
//
//	//lint:ordered <reason>            sugar for //lint:allow detrange <reason>
//	//lint:allow <analyzer> <reason>   suppress one analyzer's findings
//
// A directive suppresses diagnostics of the named analyzer on the
// directive's own line and on the line directly below it (so both
// trailing comments and comment-above-statement placements work). A
// directive written in a function declaration's doc comment suppresses
// the analyzer for the whole function body.
//
// The reason string is mandatory: a suppression that does not document
// *why* the flagged code is safe is itself a diagnostic. Every analyzer
// reports reason-less directives addressed to it; directives naming an
// analyzer that does not exist are reported by all analyzers (the
// directive is inert, which is worse than noisy).
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Known is the set of analyzer names a directive may address.
var Known = map[string]bool{
	"detrange":  true,
	"novtime":   true,
	"poolsafe":  true,
	"shardsafe": true,
}

// Directive is one parsed //lint: comment.
type Directive struct {
	Analyzer string    // addressed analyzer ("" when unparsable)
	Reason   string    // documentation string ("" when missing)
	Pos      token.Pos // position of the comment
	File     string    // file the comment sits in
	Line     int       // line the comment sits on
	From, To token.Pos // suppression extent (func body for doc comments)
	used     bool
}

// Index holds every directive of one package, ready for suppression
// lookups by the analyzers.
type Index struct {
	fset *token.FileSet
	all  []*Directive
}

// Build scans the pass's files for //lint: directives. It is cheap
// enough to run once per analyzer; directives are per-package state and
// go/analysis passes are per-package.
func Build(pass *analysis.Pass) *Index {
	ix := &Index{fset: pass.Fset}
	for _, f := range pass.Files {
		// Map doc-comment positions to their function bodies so a
		// directive on a declaration can cover the whole function.
		funcDocs := map[*ast.CommentGroup]*ast.FuncDecl{}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			fd := funcDocs[cg]
			for _, c := range cg.List {
				d, ok := parse(c)
				if !ok {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				d.File, d.Line = p.Filename, p.Line
				if fd != nil {
					d.From, d.To = fd.Pos(), fd.End()
				}
				ix.all = append(ix.all, d)
			}
		}
	}
	return ix
}

// parse extracts a directive from one comment, reporting ok=false for
// comments that are not //lint: directives at all. Malformed directives
// (unknown analyzer, missing reason) parse with the offending field
// left empty so Bad can report them.
func parse(c *ast.Comment) (*Directive, bool) {
	text, ok := strings.CutPrefix(c.Text, "//lint:")
	if !ok {
		return nil, false
	}
	// A reason ends at an embedded "//": anything after it is an
	// ordinary trailing comment (the analyzer goldens use this to put
	// `// want` expectations on directive lines).
	if i := strings.Index(text, "//"); i >= 0 {
		text = text[:i]
	}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return &Directive{Pos: c.Pos()}, true
	}
	d := &Directive{Pos: c.Pos()}
	switch fields[0] {
	case "ordered":
		d.Analyzer = "detrange"
		d.Reason = strings.Join(fields[1:], " ")
	case "allow":
		if len(fields) >= 2 {
			if Known[fields[1]] {
				d.Analyzer = fields[1]
			}
			d.Reason = strings.Join(fields[2:], " ")
		}
	default:
		// Unknown verb: inert directive, reported by Bad.
	}
	return d, true
}

// Suppressed reports whether a diagnostic of the named analyzer at pos
// is covered by a documented directive. Reason-less directives never
// suppress: the finding still fires, alongside the missing-reason
// diagnostic, so an undocumented mute can't hide anything.
func (ix *Index) Suppressed(analyzer string, pos token.Pos) bool {
	p := ix.fset.Position(pos)
	for _, d := range ix.all {
		if d.Analyzer != analyzer || d.Reason == "" {
			continue
		}
		if d.From.IsValid() && d.From <= pos && pos < d.To {
			d.used = true
			return true
		}
		if p.Filename == d.File && (p.Line == d.Line || p.Line == d.Line+1) {
			d.used = true
			return true
		}
	}
	return false
}

// Report emits the malformed-directive diagnostics the given analyzer
// owns: reason-less directives addressed to it, plus directives whose
// analyzer name is unknown or missing — those are reported by every
// analyzer (nobody owns them; the driver deduplicates identical
// positions). Malformed directives never suppress, so Report can run
// any time after Build.
func (ix *Index) Report(pass *analysis.Pass) {
	name := pass.Analyzer.Name
	for _, d := range ix.all {
		switch {
		case d.Analyzer == "":
			pass.Reportf(d.Pos, "malformed //lint: directive: want //lint:ordered <reason> or //lint:allow <analyzer> <reason> with a known analyzer (detrange, novtime, poolsafe, shardsafe)")
		case d.Analyzer == name && d.Reason == "":
			pass.Reportf(d.Pos, "undocumented //lint: suppression for %s: a reason string is required", name)
		}
	}
}
