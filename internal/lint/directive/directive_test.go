package directive

import (
	"fmt"
	"go/parser"
	"go/token"
	"testing"

	"golang.org/x/tools/go/analysis"
)

func build(t *testing.T, srcs ...string) (*token.FileSet, *Index) {
	t.Helper()
	fset := token.NewFileSet()
	pass := &analysis.Pass{Fset: fset}
	for i, src := range srcs {
		f, err := parser.ParseFile(fset, fmt.Sprintf("f%d.go", i), src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		pass.Files = append(pass.Files, f)
	}
	return fset, Build(pass)
}

// lineStart returns the position of the start of a line in the named
// fixture file.
func lineStart(t *testing.T, fset *token.FileSet, name string, line int) token.Pos {
	t.Helper()
	var pos token.Pos
	fset.Iterate(func(tf *token.File) bool {
		if tf.Name() == name {
			pos = tf.LineStart(line)
			return false
		}
		return true
	})
	if !pos.IsValid() {
		t.Fatalf("no fixture file %s", name)
	}
	return pos
}

func TestParseForms(t *testing.T) {
	_, ix := build(t, `package p

//lint:ordered singleton map
//lint:allow poolsafe alias cleared by barrier
//lint:allow poolsafe
//lint:allow nonsense some reason
//lint:ordered trailing ok // want-style tail is not part of the reason
func f() {}
`)
	got := ix.all
	if len(got) != 5 {
		t.Fatalf("parsed %d directives, want 5", len(got))
	}
	checks := []struct{ analyzer, reason string }{
		{"detrange", "singleton map"},
		{"poolsafe", "alias cleared by barrier"},
		{"poolsafe", ""},
		{"", "some reason"},
		{"detrange", "trailing ok"},
	}
	for i, want := range checks {
		if got[i].Analyzer != want.analyzer || got[i].Reason != want.reason {
			t.Errorf("directive %d: got (%q, %q), want (%q, %q)",
				i, got[i].Analyzer, got[i].Reason, want.analyzer, want.reason)
		}
	}
}

func TestSuppressionExtent(t *testing.T) {
	fset, ix := build(t, `package p

//lint:allow novtime benchmark only
var a = 1
var b = 2
`)
	if !ix.Suppressed("novtime", lineStart(t, fset, "f0.go", 3)) {
		t.Error("directive line itself not suppressed")
	}
	if !ix.Suppressed("novtime", lineStart(t, fset, "f0.go", 4)) {
		t.Error("line below directive not suppressed")
	}
	if ix.Suppressed("novtime", lineStart(t, fset, "f0.go", 5)) {
		t.Error("two lines below directive wrongly suppressed")
	}
	if ix.Suppressed("detrange", lineStart(t, fset, "f0.go", 4)) {
		t.Error("directive suppressed a different analyzer")
	}
}

func TestFuncDocCoversBody(t *testing.T) {
	fset, ix := build(t, `package p

//lint:allow shardsafe driver context by contract
func f() {
	_ = 1
	_ = 2
}

func g() {
	_ = 3
}
`)
	if !ix.Suppressed("shardsafe", lineStart(t, fset, "f0.go", 6)) {
		t.Error("func-doc directive did not cover the body")
	}
	if ix.Suppressed("shardsafe", lineStart(t, fset, "f0.go", 10)) {
		t.Error("func-doc directive leaked into the next function")
	}
}

func TestReasonlessNeverSuppresses(t *testing.T) {
	fset, ix := build(t, `package p

//lint:allow novtime
var a = 1
`)
	if ix.Suppressed("novtime", lineStart(t, fset, "f0.go", 4)) {
		t.Error("reason-less directive suppressed a finding")
	}
}

// A directive in one file must not mute findings on the same line
// numbers of a sibling file in the package.
func TestNoCrossFileSuppression(t *testing.T) {
	fset, ix := build(t,
		"package p\n\n//lint:allow novtime benchmark only\nvar a = 1\n",
		"package p\n\nvar b = 2\nvar c = 3\n",
	)
	if ix.Suppressed("novtime", lineStart(t, fset, "f1.go", 3)) {
		t.Error("directive suppressed a finding in a different file")
	}
	if ix.Suppressed("novtime", lineStart(t, fset, "f1.go", 4)) {
		t.Error("directive suppressed a finding in a different file")
	}
}
