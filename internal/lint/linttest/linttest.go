// Package linttest is a self-contained analysistest: it runs one
// analyzer over a directory of Go source files and checks the reported
// diagnostics against `// want "regexp"` comments, the same golden
// convention golang.org/x/tools/go/analysis/analysistest uses (that
// package needs go/packages, which the build environment cannot
// fetch).
//
// A want comment annotates the line it sits on and may carry several
// expectations:
//
//	m.send(k) // want `map iteration order escapes` "second finding"
//
// Every diagnostic must match exactly one unconsumed want expectation
// on its line, and every expectation must be consumed — extra and
// missing findings both fail the test.
//
// Imports in test sources are resolved through `go list -export`, so
// fixtures may import the standard library and real module packages
// (rjoin/internal/sim, say) alike. The fake package path given to Run
// controls the analyzers' package scoping: "example/internal/core" is
// inside the determinism contract, "example/tools" is not.
package linttest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"

	"rjoin/internal/lint/lintdriver"
)

// exportCache memoises `go list -export` lookups across tests in the
// process; stdlib export files are stable for the build session.
var exportCache sync.Map // import path -> export file path (or "")

func exportFile(path string) (string, error) {
	if v, ok := exportCache.Load(path); ok {
		if s := v.(string); s != "" {
			return s, nil
		}
		return "", fmt.Errorf("no export data for %q", path)
	}
	var stderr bytes.Buffer
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		exportCache.Store(path, "")
		return "", fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	file := strings.TrimSpace(string(out))
	exportCache.Store(path, file)
	if file == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	return file, nil
}

// want is one expectation parsed from a // want comment.
type want struct {
	file     string
	line     int
	re       *regexp.Regexp
	raw      string
	consumed bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")

// parseWants extracts expectations from one parsed file.
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*want {
	var wants []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, raw := range splitQuoted(t, pos, m[1]) {
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
				}
				wants = append(wants, &want{
					file: filepath.Base(pos.Filename),
					line: pos.Line,
					re:   re,
					raw:  raw,
				})
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go string literals ("..." or `...`).
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				t.Fatalf("%s: unterminated want string: %s", pos, s)
			}
			lit, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want string %s: %v", pos, s[:end+1], err)
			}
			out = append(out, lit)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", pos, s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: want expects quoted regexps, got %q", pos, s)
		}
	}
	return out
}

// Run applies the analyzer to the package formed by every .go file in
// dir, type-checked under the fake import path pkgPath, and matches
// diagnostics against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath, dir string) {
	t.Helper()
	diags, wants := check(t, a, pkgPath, dir)

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.consumed || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	var missing []*want
	for _, w := range wants {
		if !w.consumed {
			missing = append(missing, w)
		}
	}
	sort.Slice(missing, func(i, j int) bool {
		if missing[i].file != missing[j].file {
			return missing[i].file < missing[j].file
		}
		return missing[i].line < missing[j].line
	})
	for _, w := range missing {
		t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
	}
}

// RunExpectNone applies the analyzer to the fixture under a package
// path where it must stay silent (out of the deterministic scope, or
// in an exempted package); want comments are ignored.
func RunExpectNone(t *testing.T, a *analysis.Analyzer, pkgPath, dir string) {
	t.Helper()
	diags, _ := check(t, a, pkgPath, dir)
	for _, d := range diags {
		t.Errorf("%s: diagnostic outside %s scope: %s", d.Pos, a.Name, d.Message)
	}
}

// check loads the fixture package and returns the analyzer's
// diagnostics alongside the parsed want expectations.
func check(t *testing.T, a *analysis.Analyzer, pkgPath, dir string) ([]lintdriver.Diagnostic, []*want) {
	t.Helper()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		wants = append(wants, parseWants(t, fset, f)...)
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})

	diags, err := lintdriver.Check(fset, pkgPath, files, imp, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return diags, wants
}
