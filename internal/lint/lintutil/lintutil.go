// Package lintutil holds the scope table and small AST helpers shared
// by the rjoin-lint analyzers.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministic is the set of packages whose code executes under the
// simulator's replay contract: everything they do must be a pure
// function of (seed, workload, options). The linters enforce their
// rules only inside these packages — experiment drivers, offline
// metric summaries and the SQL parser are free to use wall clocks and
// unordered iteration.
var deterministic = map[string]bool{
	"core":     true,
	"sim":      true,
	"overlay":  true,
	"chord":    true,
	"agg":      true,
	"churn":    true,
	"reliable": true, // includes what used to be the replication package
	"query":    true,
	"obs":      true,
	// profile (internal/obs/profile) already matches via its "obs" path
	// segment; the explicit entry keeps it covered if it ever moves out
	// from under internal/obs.
	"profile": true,
	"share":   true,
}

// Deterministic reports whether the package at the given import path
// is under the replay contract: any path segment "internal" followed
// by one of the deterministic package names (so forks and testdata
// trees match the same way the real tree does).
func Deterministic(pkgPath string) bool {
	seg := strings.Split(pkgPath, "/")
	for i := 0; i+1 < len(seg); i++ {
		if seg[i] == "internal" && deterministic[seg[i+1]] {
			return true
		}
	}
	return false
}

// WalkStack traverses the AST below root, calling fn with the chain of
// ancestors (outermost first, not including n itself) for every node.
// Returning false prunes the subtree below n.
func WalkStack(root ast.Node, fn func(stack []ast.Node, n ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(stack, n) {
			// Pruned: Inspect sends the nil pop only for nodes whose
			// children were visited, so nothing was pushed.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// EnclosingFunc returns the innermost function declaration or literal
// in the ancestor stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// EnclosingFuncName returns the name of the innermost named function in
// the stack ("" inside a bare function literal at top level).
func EnclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// BaseObject resolves the object an identifier or selector expression
// ultimately denotes: for `x` the variable x, for `a.b.c` the field c.
// Returns nil for anything else.
func BaseObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	}
	return nil
}

// RootObject resolves the leftmost identifier of an expression: for
// `a.b[i].c` the variable a. Returns nil when the root is not a plain
// identifier (a call result, for example).
func RootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// CalleeObject resolves the function or method object a call invokes,
// or nil for builtins, conversions and indirect calls.
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o, ok := info.ObjectOf(fun).(*types.Func); ok {
			return o
		}
	case *ast.SelectorExpr:
		if o, ok := info.ObjectOf(fun.Sel).(*types.Func); ok {
			return o
		}
	}
	return nil
}

// IsWriteTarget reports whether expr (a member of stack position i,
// i.e. stack[i] == expr's parent chain applies) is written through:
// it, or an address taken of it, appears as an assignment LHS, the
// operand of ++/--, or under a unary &. The stack is the ancestor
// chain of expr, outermost first.
func IsWriteTarget(stack []ast.Node, expr ast.Expr) bool {
	child := ast.Node(expr)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if containsNode(lhs, child) {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return containsNode(p.X, child)
		case *ast.UnaryExpr:
			if p.Op.String() == "&" {
				return true
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.ParenExpr, *ast.SliceExpr:
			child = p.(ast.Node)
			continue
		default:
			return false
		}
	}
	return false
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// Mentions reports whether the subtree under root contains an
// identifier resolving to obj.
func Mentions(info *types.Info, root ast.Node, obj types.Object) bool {
	if root == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
