package detrange_test

import (
	"testing"

	"rjoin/internal/lint/detrange"
	"rjoin/internal/lint/linttest"
)

func TestDetrange(t *testing.T) {
	linttest.Run(t, detrange.Analyzer, "example/internal/core", "testdata/core")
}

// Outside the deterministic scope the analyzer must stay silent even
// on the positive fixtures.
func TestDetrangeScope(t *testing.T) {
	linttest.RunExpectNone(t, detrange.Analyzer, "example/tools", "testdata/core")
}
