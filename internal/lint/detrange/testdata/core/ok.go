// Negative cases: the order-insensitive idioms the engine actually
// uses. Nothing in this file may be flagged.
package core

import "sort"

// collect-then-sort: the canonical deterministic map walk.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collect-then-sort through an alias of the collecting slice.
func aliasSorted(m map[string]int) []string {
	var acc []string
	for k := range m {
		acc = append(acc, k)
	}
	tail := acc[0:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	return acc
}

// commutative integer accumulation: Stats-merge style.
func counts(m map[string]int) (n, sum int) {
	for _, v := range m {
		n++
		sum += v
	}
	return
}

// rebuild keyed by the loop variables: order-free by construction.
func rebuild(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// guarded extremum selection.
func maxVal(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// guarded lazy once-only initialisation plus keyed writes.
func lazyInit(m map[string]int) map[string]bool {
	var set map[string]bool
	for k := range m {
		if set == nil {
			set = make(map[string]bool)
		}
		set[k] = true
	}
	return set
}

// boolean-constant flag set: same result for every order.
func flagSet(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v < 0 {
			found = true
		}
	}
	return found
}

// return of a loop-independent value.
func bail(m map[string]int, limit int) int {
	total := 0
	for _, v := range m {
		total += v
		if total > limit {
			return limit
		}
	}
	return total
}
