// Positive cases: map iterations whose order escapes into an
// observable effect. Every line below must be flagged.
package core

type msgr struct{}

func (msgr) Send(k string)  {}
func (msgr) Emit(v float64) {}

func sends(m map[string]int, mr msgr) {
	for k := range m {
		mr.Send(k) // want `Send call inside map range`
	}
}

func emits(m map[string]float64, mr msgr) {
	for _, v := range m {
		mr.Emit(v) // want `Emit call inside map range`
	}
}

func chanSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside map range`
	}
}

func earlyReturn(m map[string]int) string {
	for k, v := range m {
		if v > 10 {
			return k // want `return of a value selected by iteration order`
		}
	}
	return ""
}

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys records entries in iteration order`
	}
	return keys
}

func lastWriter(m map[string]int) int {
	var last int
	for _, v := range m {
		last = v // want `last-writer-wins overwrite of last`
	}
	return last
}

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum`
	}
	return sum
}

func stringConcat(m map[string]string) string {
	s := ""
	for _, v := range m {
		s += v // want `string concatenation into s`
	}
	return s
}

func cursorWrite(m map[string]int, out []string) {
	i := 0
	for k := range m {
		out[i] = k // want `write through cursor i advanced inside the loop`
		i++
	}
}
