// Directive-misuse cases: a reason-less suppression never mutes the
// finding and is itself diagnosed; unknown analyzers are diagnosed too.
package core

func undocumented(m map[string]int, mr msgr) {
	for k := range m {
		mr.Send(k) //lint:ordered // want `undocumented //lint: suppression for detrange` `Send call inside map range`
	}
}

func undocumentedAllow(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k //lint:allow detrange // want `undocumented //lint: suppression for detrange` `channel send inside map range`
	}
}

func unknownAnalyzer(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:allow sortorder keys are sorted by the caller // want `malformed //lint: directive`
		keys = append(keys, k) // want `append to keys records entries in iteration order`
	}
	return keys
}
