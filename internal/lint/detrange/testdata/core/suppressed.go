// Suppressed cases: documented //lint:ordered and //lint:allow
// directives mute the finding. Nothing in this file may be flagged.
package core

// Comment-above-statement placement.
func fanoutAbove(m map[string]int, mr msgr) {
	for k := range m {
		//lint:ordered delivery order is normalized by the reliable channel downstream
		mr.Send(k)
	}
}

// Trailing-comment placement, long form.
func fanoutTrailing(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k //lint:allow detrange consumer drains into a sorted buffer before acting
	}
}

// Function-doc placement covers the whole body.
//
//lint:ordered the map is a singleton by construction in this path
func fanoutDoc(m map[string]int, mr msgr) {
	for k := range m {
		mr.Send(k)
	}
}
