// Package detrange implements the rjoin-lint analyzer that flags map
// iterations whose order escapes into an observable effect inside the
// deterministic packages.
//
// Go randomises map iteration order per run. Inside the replay
// contract (see lintutil.Deterministic) anything a map-range loop does
// that is sensitive to visit order — sending a message, scheduling an
// event, appending to a slice that is not subsequently sorted,
// overwriting a variable last-writer-wins, accumulating floats —
// therefore makes two runs of the same seed diverge. The engine's
// golden-digest tests catch such divergence only when a config happens
// to trip it; this analyzer catches the pattern itself.
//
// Recognised order-insensitive idioms (not flagged):
//   - loops whose only out-of-loop writes are commutative integer
//     accumulations (+=, -=, |=, &=, ^=, ++, --) or boolean-constant
//     flag sets;
//   - min/max selection guarded by a comparison with the target;
//   - writes keyed by the loop variables into another map (rebuild);
//   - appends into a slice that a later statement of the same function
//     passes to sort.* / slices.* (collect-then-sort);
//   - returns of loop-independent values.
//
// Anything else needs an explicit `//lint:ordered <reason>` directive.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"rjoin/internal/lint/directive"
	"rjoin/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "flags map iterations whose order escapes into observable effects in deterministic packages",
	Run:  run,
}

// effectCalls are method/function names that inject their arguments
// into the engine's observable timeline: message sends, event
// schedules, handovers and emissions. Calling one per map entry makes
// the timeline depend on iteration order.
var effectCalls = map[string]bool{
	"Send": true, "MultiSend": true, "SendKeyed": true, "Broadcast": true,
	"Schedule": true, "ScheduleAt": true, "After": true, "AfterBg": true,
	"Every": true, "EveryBg": true, "Push": true, "Publish": true,
	"PublishTuple": true, "Emit": true, "Enqueue": true, "Transfer": true,
	"ReplicateTo": true, "Deliver": true, "Submit": true, "SubmitQuery": true,
	"Observe": false, // histogram buckets are commutative
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	ix := directive.Build(pass)
	ix.Report(pass)
	for _, f := range pass.Files {
		lintutil.WalkStack(f, func(stack []ast.Node, n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := pass.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
				return true
			}
			checkLoop(pass, ix, stack, rs)
			return true
		})
	}
	return nil, nil
}

// checkLoop reports every order-escaping effect in one map-range body.
func checkLoop(pass *analysis.Pass, ix *directive.Index, stack []ast.Node, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if o := info.ObjectOf(id); o != nil {
				loopVars[o] = true
			}
		}
	}
	outer := func(o types.Object) bool {
		// An object is loop-local when it is declared inside the range
		// statement (including the key/value vars themselves).
		if o == nil || loopVars[o] {
			return false
		}
		return !(rs.Pos() <= o.Pos() && o.Pos() < rs.End())
	}
	report := func(pos token.Pos, format string, args ...interface{}) {
		if ix.Suppressed("detrange", pos) {
			return
		}
		pass.Reportf(pos, "map iteration order escapes: "+format+" (sort first, or document with //lint:ordered <reason>)", args...)
	}

	enclosing := lintutil.EnclosingFunc(stack)

	lintutil.WalkStack(rs.Body, func(bodyStack []ast.Node, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n.Pos(), "channel send inside map range")
		case *ast.CallExpr:
			if callee := lintutil.CalleeObject(info, n); callee != nil && effectCalls[callee.Name()] {
				report(n.Pos(), "%s call inside map range puts entries on the timeline in iteration order", callee.Name())
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentionsAny(info, res, loopVars) {
					report(n.Pos(), "return of a value selected by iteration order")
					break
				}
			}
		case *ast.AssignStmt:
			checkAssign(info, report, enclosing, rs, bodyStack, n, outer, loopVars)
		}
		return true
	})
}

// checkAssign classifies one assignment inside the loop body.
func checkAssign(info *types.Info, report func(token.Pos, string, ...interface{}), enclosing ast.Node, rs *ast.RangeStmt, stack []ast.Node, as *ast.AssignStmt, outer func(types.Object) bool, loopVars map[types.Object]bool) {
	if as.Tok == token.DEFINE {
		return
	}
	for i, lhs := range as.Lhs {
		lhs = ast.Unparen(lhs)
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}

		// Indexed writes: m2[k] = v keyed by loop vars is the standard
		// order-independent rebuild; writing through an outer cursor
		// (out[i] with i mutated in the loop) is an append in disguise.
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			if mentionsAny(info, idx.Index, loopVars) {
				continue
			}
			if o := lintutil.BaseObject(info, idx.Index); o != nil && outer(o) && writesTo(info, rs.Body, o) {
				report(as.Pos(), "write through cursor %s advanced inside the loop records entries in iteration order", o.Name())
			}
			continue
		}

		// Outer-ness is judged at the root of the selector chain: a
		// write to a.Values where a is the loop variable stays inside
		// the iteration. The specific field object still names the
		// finding and anchors the collect-then-sort search.
		if !outer(lintutil.RootObject(info, lhs)) {
			continue
		}
		obj := lintutil.BaseObject(info, lhs)
		if obj == nil {
			continue
		}
		t := info.TypeOf(lhs)

		switch as.Tok {
		case token.ASSIGN:
			// append-to-outer-slice: escape unless sorted later.
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
				if !sortedAfter(info, enclosing, rs, obj) {
					report(as.Pos(), "append to %s records entries in iteration order and no later sort restores one", obj.Name())
				}
				continue
			}
			if isOrderInvariant(info, rhs, loopVars) {
				continue // flag = true, x = nil, ... — same for every order
			}
			if guardedMinMax(info, stack, obj) {
				continue
			}
			report(as.Pos(), "last-writer-wins overwrite of %s depends on iteration order", obj.Name())
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			if t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok {
					if b.Info()&types.IsInteger != 0 {
						continue // commutative, associative: order-free
					}
					if b.Info()&types.IsFloat != 0 {
						report(as.Pos(), "float accumulation into %s rounds differently per iteration order", obj.Name())
						continue
					}
					if b.Info()&types.IsString != 0 {
						report(as.Pos(), "string concatenation into %s depends on iteration order", obj.Name())
						continue
					}
				}
			}
			report(as.Pos(), "compound assignment to %s may depend on iteration order", obj.Name())
		case token.MUL_ASSIGN:
			if t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					continue
				}
			}
			report(as.Pos(), "non-integer product accumulation into %s depends on iteration order", obj.Name())
		case token.QUO_ASSIGN, token.REM_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN:
			report(as.Pos(), "order-sensitive compound assignment to %s", obj.Name())
		}
	}
}

// isOrderInvariant reports whether an assigned value is the same
// regardless of which loop entry performs the assignment: constants,
// nil, and expressions mentioning no loop variable.
func isOrderInvariant(info *types.Info, e ast.Expr, loopVars map[types.Object]bool) bool {
	if e == nil {
		return false
	}
	if info.Types[e].Value != nil {
		return true // constant-folded
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	// `found = true`-style: not constant-folded only in odd cases;
	// the common remaining invariant form is an expression with no
	// loop-variable dependence — but loop-independent non-constants
	// can still differ between iterations via aliasing, so only allow
	// basic literals and idents of consts.
	switch ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	}
	return false
}

// guardedMinMax recognises the two guarded-overwrite idioms that are
// order-independent: extremum selection (`if v < best { best = v }`,
// any comparison direction, anywhere in the guarding condition) and
// lazy once-only initialisation (`if m == nil { m = make(...) }`).
// In both cases the guard must mention the assignment target.
func guardedMinMax(info *types.Info, stack []ast.Node, target types.Object) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok {
				return !found
			}
			switch cmp.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				if lintutil.Mentions(info, cmp, target) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// sortedAfter reports whether, after the range loop, the enclosing
// function passes obj — or a local derived from it, like the
// tail-slice `chunk := m.series[start:]` — to a sort.* / slices.*
// call or a helper whose name starts with "sort": the
// collect-then-sort idiom.
func sortedAfter(info *types.Info, enclosing ast.Node, rs *ast.RangeStmt, obj types.Object) bool {
	if enclosing == nil {
		return false
	}
	watched := map[types.Object]bool{obj: true}
	mentionsWatched := func(n ast.Node) bool {
		for o := range watched {
			if lintutil.Mentions(info, n, o) {
				return true
			}
		}
		return false
	}
	found := false
	// Nodes before the loop's end are skipped at the case level rather
	// than pruned: a sibling after the loop lives under the same
	// enclosing block node.
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Pos() < rs.End() {
				return true
			}
			// Track aliases: locals assigned from expressions that
			// mention a watched object.
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if i < len(n.Rhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs != nil && mentionsWatched(rhs) {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if o := info.ObjectOf(id); o != nil {
							watched[o] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if n.Pos() < rs.End() || !isSortCall(info, n) {
				return true
			}
			for _, arg := range n.Args {
				if mentionsWatched(arg) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	if callee := lintutil.CalleeObject(info, call); callee != nil {
		if pkg := callee.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
			return true
		}
		if strings.HasPrefix(strings.ToLower(callee.Name()), "sort") {
			return true
		}
	}
	return false
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// writesTo reports whether any ++/--/assignment inside root mutates obj.
func writesTo(info *types.Info, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if lintutil.BaseObject(info, n.X) == obj {
				found = true
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if lintutil.BaseObject(info, l) == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func mentionsAny(info *types.Info, root ast.Node, objs map[types.Object]bool) bool {
	for o := range objs {
		if lintutil.Mentions(info, root, o) {
			return true
		}
	}
	return false
}
