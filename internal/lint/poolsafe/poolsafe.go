// Package poolsafe implements the rjoin-lint analyzer that flags
// misuse of pooled values: reads after a value went back to its
// sync.Pool or free list, double releases, and releases of values that
// earlier escaped into retained state.
//
// This is exactly the bug class the engine has paid for twice by hand:
// the SubmitQuery fix (a rewrite read after query.Release) and the
// unreliable-network pool gating (messages retained for retransmission
// must never be recycled). A released struct is re-zeroed and handed to
// the next Get; any alias that survives the release reads — or worse,
// writes — somebody else's message.
//
// Recognised release points:
//   - p.Put(x) where p is a sync.Pool;
//   - calls to a function or method named Release or Free whose single
//     argument (or receiver) is the pooled value — query.Release(q) is
//     the canonical in-tree form.
//
// The analysis is a per-function forward scan over statement lists:
// straight-line use-after-release and double-release are always
// caught; if/switch branches that do not terminate (return, panic,
// continue, break) union their release sets into the fall-through, so
// "released on some path, used after" is caught too. Deferred releases
// are ignored (they run at function exit, after every use), as are go
// statements. Cross-function aliasing is out of scope — the golden
// replay tests own that layer.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"rjoin/internal/lint/directive"
	"rjoin/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc:  "flags use-after-release, double release, and retained-then-released pooled values",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ix := directive.Build(pass)
	ix.Report(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, ix, body)
			}
			return true // nested function literals get their own scan
		})
	}
	return nil, nil
}

// releaseTarget resolves the pooled object a call releases, or nil.
func releaseTarget(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		callee, _ := info.ObjectOf(fun.Sel).(*types.Func)
		if callee == nil {
			return nil
		}
		recv := callee.Type().(*types.Signature).Recv()
		switch callee.Name() {
		case "Put":
			// sync.Pool.Put(x)
			if recv != nil && isSyncPool(recv.Type()) && len(call.Args) == 1 {
				return lintutil.BaseObject(info, call.Args[0])
			}
		case "Release", "Free":
			if recv != nil && len(call.Args) == 0 {
				// x.Release()
				return lintutil.BaseObject(info, fun.X)
			}
			if recv == nil && len(call.Args) == 1 {
				// pkg.Release(x)
				return lintutil.BaseObject(info, call.Args[0])
			}
		}
	case *ast.Ident:
		callee, _ := info.ObjectOf(fun).(*types.Func)
		if callee == nil {
			return nil
		}
		if (callee.Name() == "Release" || callee.Name() == "Free") && len(call.Args) == 1 {
			return lintutil.BaseObject(info, call.Args[0])
		}
	}
	return nil
}

func isSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// site is where a tracked event (release, escape) happened.
type site = token.Pos

type state struct {
	released map[types.Object]site
	escaped  map[types.Object]site
}

func (s state) clone() state {
	c := state{released: map[types.Object]site{}, escaped: map[types.Object]site{}}
	for k, v := range s.released {
		c.released[k] = v
	}
	for k, v := range s.escaped {
		c.escaped[k] = v
	}
	return c
}

type checker struct {
	pass    *analysis.Pass
	ix      *directive.Index
	tracked map[types.Object]bool // objects released somewhere in this function
}

func checkFunc(pass *analysis.Pass, ix *directive.Index, body *ast.BlockStmt) {
	c := &checker{pass: pass, ix: ix, tracked: map[types.Object]bool{}}
	// Pass A: which objects does this function ever release? (Skip
	// deferred releases and nested function literals — literals get
	// their own checkFunc.)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if o := releaseTarget(pass.TypesInfo, n); o != nil {
				c.tracked[o] = true
			}
		}
		return true
	})
	if len(c.tracked) == 0 {
		return
	}
	c.stmts(body.List, state{released: map[types.Object]site{}, escaped: map[types.Object]site{}})
}

func (c *checker) reportf(pos token.Pos, format string, args ...interface{}) {
	if !c.ix.Suppressed("poolsafe", pos) {
		c.pass.Reportf(pos, format, args...)
	}
}

func (c *checker) line(p token.Pos) int { return c.pass.Fset.Position(p).Line }

// stmts walks one statement list, threading st through it. The
// returned state reflects fall-through execution of the whole list.
func (c *checker) stmts(list []ast.Stmt, st state) state {
	for _, s := range list {
		st = c.stmt(s, st)
	}
	return st
}

func (c *checker) stmt(s ast.Stmt, st state) state {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return c.stmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		c.uses(s.Cond, st, nil)
		thenSt := c.stmts(s.Body.List, st.clone())
		var elseSt state
		hasElse := s.Else != nil
		if hasElse {
			elseSt = c.stmt(s.Else, st.clone())
		}
		// Union non-terminating branches into the fall-through: a
		// release on some path poisons every later use.
		if !terminates(s.Body) {
			st = merge(st, thenSt)
		}
		if hasElse && !elseTerminates(s.Else) {
			st = merge(st, elseSt)
		}
		return st
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.branches(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		c.uses(s.Cond, st, nil)
		c.stmts(s.Body.List, st.clone()) // loop body: checked, not merged
		return st
	case *ast.RangeStmt:
		c.uses(s.X, st, nil)
		c.stmts(s.Body.List, st.clone())
		return st
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred releases run at exit; go statements are concurrent.
		// Neither participates in the linear path.
		return st
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	default:
		return c.linear(s, st)
	}
}

// branches handles switch-like statements: every clause body starts
// from the pre-switch state; non-terminating clauses union in.
func (c *checker) branches(s ast.Stmt, st state) state {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		c.uses(s.Tag, st, nil)
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = c.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := st
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.uses(e, st, nil)
			}
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
		}
		clSt := c.stmts(stmts, st.clone())
		if !stmtsTerminate(stmts) {
			out = merge(out, clSt)
		}
	}
	return out
}

// linear processes one simple statement: check uses of released
// values, record new releases and escapes, clear rebound names.
func (c *checker) linear(s ast.Stmt, st state) state {
	info := c.pass.TypesInfo

	// Identifiers exempt from the use check: arguments/receivers of
	// release calls in this statement (the release itself is not a
	// use) and plain LHS rebinds.
	exempt := map[*ast.Ident]bool{}
	var releases []struct {
		obj types.Object
		pos token.Pos
	}
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if o := releaseTarget(info, call); o != nil {
			releases = append(releases, struct {
				obj types.Object
				pos token.Pos
			}{o, call.Pos()})
			markIdents(info, call, o, exempt)
		}
		return true
	})

	var rebinds []types.Object
	if as, ok := s.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if o := info.ObjectOf(id); o != nil {
					exempt[id] = true
					rebinds = append(rebinds, o)
				}
			}
		}
	}

	c.uses(s, st, exempt)

	for _, r := range releases {
		if first, ok := st.released[r.obj]; ok {
			c.reportf(r.pos, "%s released twice: already returned to the pool on this path at line %d", r.obj.Name(), c.line(first))
			continue
		}
		if esc, ok := st.escaped[r.obj]; ok {
			c.reportf(r.pos, "%s was retained in escaping state at line %d and is now released to the pool: the retained alias will observe recycled memory", r.obj.Name(), c.line(esc))
		}
		st.released[r.obj] = r.pos
	}

	for _, o := range rebinds {
		delete(st.released, o)
		delete(st.escaped, o)
	}

	c.escapes(s, st)
	return st
}

// uses reports every read of a released object inside n.
func (c *checker) uses(n ast.Node, st state, exempt map[*ast.Ident]bool) {
	if n == nil || len(st.released) == 0 {
		return
	}
	info := c.pass.TypesInfo
	reported := map[types.Object]bool{}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok || exempt[id] {
			return true
		}
		o := info.ObjectOf(id)
		if o == nil || reported[o] {
			return true
		}
		if rel, ok := st.released[o]; ok {
			reported[o] = true
			c.reportf(id.Pos(), "use of %s after it was released to the pool at line %d", o.Name(), c.line(rel))
		}
		return true
	})
}

// escapes records tracked objects stored into retained state: an
// assignment whose RHS mentions the object and whose LHS is a field,
// an element of a container, a dereference, or a package-level
// variable; or a channel send.
func (c *checker) escapes(s ast.Stmt, st state) {
	info := c.pass.TypesInfo
	record := func(rhs ast.Expr, pos token.Pos) {
		for o := range c.tracked {
			if _, done := st.escaped[o]; done {
				continue
			}
			if lintutil.Mentions(info, rhs, o) {
				st.escaped[o] = pos
			}
		}
	}
	switch s := s.(type) {
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			if !retainingLHS(info, lhs) {
				continue
			}
			if i < len(s.Rhs) {
				record(s.Rhs[i], s.Pos())
			} else if len(s.Rhs) == 1 {
				record(s.Rhs[0], s.Pos())
			}
		}
	case *ast.SendStmt:
		record(s.Value, s.Pos())
	}
}

// retainingLHS reports whether an assignment target outlives the
// function body's locals: fields, container elements, dereferences and
// package-level variables.
func retainingLHS(info *types.Info, lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		if v, ok := info.ObjectOf(lhs).(*types.Var); ok {
			return v.Parent() == v.Pkg().Scope()
		}
	}
	return false
}

func markIdents(info *types.Info, call *ast.CallExpr, obj types.Object, exempt map[*ast.Ident]bool) {
	ast.Inspect(call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			exempt[id] = true
		}
		return true
	})
}

func merge(a, b state) state {
	for k, v := range b.released {
		if _, ok := a.released[k]; !ok {
			a.released[k] = v
		}
	}
	for k, v := range b.escaped {
		if _, ok := a.escaped[k]; !ok {
			a.escaped[k] = v
		}
	}
	return a
}

// terminates reports whether a block always leaves the enclosing
// statement list (return, panic, continue, break, goto).
func terminates(b *ast.BlockStmt) bool { return stmtsTerminate(b.List) }

func elseTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.IfStmt:
		return terminates(s.Body) && s.Else != nil && elseTerminates(s.Else)
	}
	return false
}

func stmtsTerminate(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last)
	case *ast.IfStmt:
		return terminates(last.Body) && last.Else != nil && elseTerminates(last.Else)
	}
	return false
}
