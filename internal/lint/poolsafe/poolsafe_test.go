package poolsafe_test

import (
	"testing"

	"rjoin/internal/lint/linttest"
	"rjoin/internal/lint/poolsafe"
)

// poolsafe is not scoped to the deterministic packages: recycled
// memory is a bug everywhere, so the fixture uses a neutral path.
func TestPoolsafe(t *testing.T) {
	linttest.Run(t, poolsafe.Analyzer, "example/pool", "testdata/pool")
}
