// Negative cases: the release discipline the engine actually uses.
// Nothing in this file may be flagged.
package pool

// Read everything you need, then release.
func okUse() int {
	m := msgPool.Get().(*Msg)
	n := m.N
	Release(m)
	return n
}

// Rebinding the name to a fresh Get starts a new lifetime.
func reacquire() {
	m := msgPool.Get().(*Msg)
	Release(m)
	m = msgPool.Get().(*Msg)
	m.N = 1
	Release(m)
}

// Deferred releases run at function exit, after every use.
func deferred() int {
	m := msgPool.Get().(*Msg)
	defer Release(m)
	m.N = 2
	return m.N
}

// A branch that releases and returns does not poison the fall-through.
func branchTerminates(cond bool) int {
	m := msgPool.Get().(*Msg)
	if cond {
		Release(m)
		return 0
	}
	n := m.N
	Release(m)
	return n
}

// Release on both sides of a terminating if/else: no path doubles.
func eitherWay(cond bool) int {
	m := msgPool.Get().(*Msg)
	if cond {
		Release(m)
		return 0
	}
	Release(m)
	return 1
}
