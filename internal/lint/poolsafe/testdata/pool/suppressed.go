// Suppressed cases: documented //lint:allow poolsafe directives mute
// the finding. Nothing in this file may be flagged.
package pool

var sink holder

func gated() {
	m := msgPool.Get().(*Msg)
	sink.last = m
	//lint:allow poolsafe the sink is cleared by the flush barrier before the pool reuses the struct
	Release(m)
}
