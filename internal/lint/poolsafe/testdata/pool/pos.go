// Positive cases: pooled-value misuse. Every line below must be
// flagged.
package pool

import "sync"

type Msg struct{ N int }

var msgPool = sync.Pool{New: func() interface{} { return new(Msg) }}

// Release is the canonical free-list release helper; poolsafe
// recognises it by name and single argument.
func Release(m *Msg) {
	*m = Msg{}
	msgPool.Put(m)
}

func useAfter() int {
	m := msgPool.Get().(*Msg)
	Release(m)
	return m.N // want `use of m after it was released to the pool`
}

func useAfterDirectPut() int {
	m := msgPool.Get().(*Msg)
	msgPool.Put(m)
	return m.N // want `use of m after it was released to the pool`
}

func double() {
	m := msgPool.Get().(*Msg)
	Release(m)
	Release(m) // want `m released twice`
}

func doubleOnSomePath(cond bool) {
	m := msgPool.Get().(*Msg)
	if cond {
		Release(m)
	}
	Release(m) // want `m released twice`
}

type holder struct{ last *Msg }

func retained(h *holder) {
	m := msgPool.Get().(*Msg)
	h.last = m
	Release(m) // want `m was retained in escaping state`
}

func useAfterBranchRelease(cond bool) int {
	m := msgPool.Get().(*Msg)
	if cond {
		Release(m)
	}
	return m.N // want `use of m after it was released to the pool`
}
