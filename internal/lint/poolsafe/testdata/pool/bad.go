// Directive-misuse cases: a reason-less suppression never mutes the
// finding and is itself diagnosed.
package pool

func undocumented() int {
	m := msgPool.Get().(*Msg)
	Release(m)
	return m.N //lint:allow poolsafe // want `undocumented //lint: suppression for poolsafe` `use of m after it was released to the pool`
}
