// Package lintdriver loads Go packages and runs go/analysis analyzers
// over them without golang.org/x/tools/go/packages (unavailable in the
// build environment — see third_party/golang.org/x/tools).
//
// Loading leans entirely on the go command: `go list -deps -export
// -json` yields, for every target package and every dependency, the
// file list plus a build-cache export-data file. Targets are parsed
// from source and type-checked with go/types; every import — stdlib
// and intra-module alike — is satisfied from export data through the
// standard gc importer, so the driver never re-type-checks a
// dependency. Facts are not supported: the rjoin-lint analyzers are
// all package-local.
package lintdriver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"

	"golang.org/x/tools/go/analysis"
)

// listPkg is the subset of `go list -json` output the driver consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Diagnostic is one analyzer finding, position-resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Run loads the packages matched by patterns and applies every
// analyzer to each. It returns all diagnostics sorted by position.
func Run(patterns []string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	for _, a := range analyzers {
		if len(a.Requires) > 0 || len(a.FactTypes) > 0 {
			return nil, fmt.Errorf("lintdriver: analyzer %s needs Requires/Facts support, which this driver does not provide", a.Name)
		}
	}

	pkgs, err := goList(patterns)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var targets []*listPkg
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("lintdriver: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lintdriver: no export data for %q", path)
		}
		return os.Open(f)
	})

	var diags []Diagnostic
	for _, p := range targets {
		ds, err := checkPackage(fset, imp, p, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	// A malformed //lint: directive is reported by every analyzer
	// (nobody owns it); keep one copy.
	return dedup(diags), nil
}

func goList(patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list failed: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, p *listPkg, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return Check(fset, p.ImportPath, files, imp, analyzers)
}

// Check type-checks the given parsed files as one package under the
// given import path and applies the analyzers, returning their
// diagnostics. The linttest harness shares this entry point with the
// command-line driver so goldens exercise exactly the production pass
// construction.
func Check(fset *token.FileSet, pkgPath string, files []*ast.File, imp types.Importer, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: conf.Sizes,
			ResultOf:   map[*analysis.Analyzer]interface{}{},
			ReadFile:   os.ReadFile,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, Diagnostic{
				Analyzer: name,
				Pos:      fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkgPath, err)
		}
	}
	return diags, nil
}

func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 {
			prev := diags[i-1]
			if prev.Pos == d.Pos && prev.Message == d.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}
