// Negative cases: the lane-access discipline the engine actually
// uses. Nothing in this file may be flagged.
package obs

import "rjoin/internal/sim"

// Handler context: index derived from sim.ShardSlot via a local.
func (t *tracer) emit(shard, v int) {
	s := sim.ShardSlot(shard)
	t.slots[s] = append(t.slots[s], v)
}

// Handler context: ShardSlot call used inline as the index.
func (t *tracer) emitInline(shard, v int) {
	t.slots[sim.ShardSlot(shard)] = append(t.slots[sim.ShardSlot(shard)], v)
}

// Conventionally named shard-index parameter.
func (t *tracer) emitNamed(slot, v int) {
	t.slots[slot] = append(t.slots[slot], v)
}

// Barrier function: the Sync/merge family may do cross-slot work.
func (t *tracer) flushMerge() []int {
	var out []int
	for i := range t.slots {
		out = append(out, t.slots[i]...)
		t.slots[i] = t.slots[i][:0]
	}
	return out
}

// make-allocated lanes: writes in the allocating function are init.
type net struct {
	byShard []int
}

func newNet() *net {
	n := &net{}
	n.byShard = make([]int, sim.Shards)
	for i := range n.byShard {
		n.byShard[i] = i
	}
	return n
}
