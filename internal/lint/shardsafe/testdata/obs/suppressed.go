// Suppressed cases: documented //lint:allow shardsafe directives mute
// the finding. Nothing in this file may be flagged.
package obs

// Driver-context maintenance outside the barrier naming convention.
//
//lint:allow shardsafe coordinator context by contract: runs between drains with no handlers in flight
func (t *tracer) retagAll(v int) {
	for i := range t.slots {
		t.slots[i] = append(t.slots[i], v)
	}
}

func (t *tracer) retagOne(i, v int) {
	//lint:allow shardsafe index validated against the owning shard by the caller
	t.slots[i] = append(t.slots[i], v)
}
