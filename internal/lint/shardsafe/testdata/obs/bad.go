// Directive-misuse cases: a reason-less suppression never mutes the
// finding and is itself diagnosed.
package obs

func (t *tracer) undocumented(i, v int) {
	t.slots[i] = append(t.slots[i], v) //lint:allow shardsafe // want `undocumented //lint: suppression for shardsafe` `write to per-shard lane slots indexed by i`
}
