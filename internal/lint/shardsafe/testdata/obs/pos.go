// Positive cases: per-shard lane writes outside the discipline. Every
// marked line must be flagged.
package obs

import "rjoin/internal/sim"

type tracer struct {
	slots [sim.ShardSlots][]int
}

// Arbitrary index in handler context: not derived from ShardSlot.
func (t *tracer) emitWrong(i, v int) {
	t.slots[i] = append(t.slots[i], v) // want `write to per-shard lane slots indexed by i`
}

// Cross-slot loop outside a barrier function.
func (t *tracer) stealAll(v int) {
	for i := range t.slots { // want `cross-slot write loop over per-shard lane slots`
		t.slots[i] = append(t.slots[i], v)
	}
}

// Writing through the range value variable is still a lane write.
type gauges struct {
	lanes [sim.Shards]counter
}

type counter struct{ n int }

func (g *gauges) bumpAll() {
	for i, c := range g.lanes { // want `cross-slot write loop over per-shard lane lanes`
		c.n++
		g.lanes[i] = c
	}
}
