package shardsafe_test

import (
	"testing"

	"rjoin/internal/lint/linttest"
	"rjoin/internal/lint/shardsafe"
)

func TestShardsafe(t *testing.T) {
	linttest.Run(t, shardsafe.Analyzer, "example/internal/obs", "testdata/obs")
}

// The sim package implements the barrier: the analyzer exempts it.
func TestShardsafeExemptsSim(t *testing.T) {
	linttest.RunExpectNone(t, shardsafe.Analyzer, "example/internal/sim", "testdata/obs")
}
