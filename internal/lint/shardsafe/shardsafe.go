// Package shardsafe implements the rjoin-lint analyzer that guards the
// engine's per-shard lane state.
//
// Under deterministic parallel execution (sim.Shards logical shards,
// barrier-merged sub-rounds) components accumulate handler-side state
// in lane arrays: one slot per shard plus one for coordinator context,
// sized by sim.ShardSlots or sim.Shards. The contract has two halves:
//
//  1. Handler context may touch only its own slot, reached through
//     sim.ShardSlot / sim.ShardOfID (or a value derived from one — by
//     convention a variable or field whose name mentions shard, slot,
//     lane or src).
//  2. Cross-slot access — iterating the lanes, or indexing with
//     anything else — is reserved for barrier functions: the
//     Sync/Flush/Drain/merge family that runs in coordinator context
//     with no handlers in flight.
//
// The analyzer finds every lane-state container in the package (struct
// fields or variables of array type [ShardSlots]T / [Shards]T, and
// slices allocated with make(..., sim.Shards) or make(..., ShardSlots))
// and flags writes that satisfy neither half. Reads are deliberately
// not flagged: read-only cross-slot access from the wrong context is a
// race too, but flagging it would drown the one-report-per-bug signal
// in telemetry noise; the race detector owns that half.
//
// The sim package itself is exempt: it implements the barrier, so its
// internals are the mechanism the contract describes, not a client of
// it. Legitimate driver-context cross-slot writers outside the naming
// convention carry //lint:allow shardsafe <reason>.
package shardsafe

import (
	"go/ast"
	"go/format"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"

	"rjoin/internal/lint/directive"
	"rjoin/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "shardsafe",
	Doc:  "flags writes to per-shard lane state outside ShardSlot indexing or barrier functions",
	Run:  run,
}

// barrierFunc matches function names that by convention run in
// coordinator context at a sync barrier and may do cross-slot work.
var barrierFunc = regexp.MustCompile(`(?i)(sync|merge|flush|drain|snapshot|reset|sweep)`)

// shardName matches identifier names that by convention carry a
// shard-slot index derived in handler context.
var shardName = regexp.MustCompile(`(?i)(shard|slot|lane|src)`)

func run(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	if !lintutil.Deterministic(path) || strings.HasSuffix(path, "internal/sim") {
		return nil, nil
	}
	ix := directive.Build(pass)
	ix.Report(pass)

	lanes, initFns := laneObjects(pass)
	if len(lanes) == 0 {
		return nil, nil
	}
	// Writes inside the function that allocates a lane are its
	// initialisation: no handler can hold a reference yet.
	inInitFunc := func(stack []ast.Node, base types.Object) bool {
		fn := lintutil.EnclosingFunc(stack)
		return fn != nil && initFns[base] == fn
	}

	for _, f := range pass.Files {
		lintutil.WalkStack(f, func(stack []ast.Node, n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IndexExpr:
				base := lintutil.BaseObject(pass.TypesInfo, n.X)
				if base == nil || !lanes[base] {
					return true
				}
				if inBarrierFunc(stack) || inInitFunc(stack, base) || allowedIndex(pass.TypesInfo, stack, n.Index) {
					return true
				}
				if insideFlaggedRange(pass.TypesInfo, stack, base, n.Index) {
					return true // the cross-slot loop diagnostic covers it
				}
				if lintutil.IsWriteTarget(stack, n) && !ix.Suppressed("shardsafe", n.Pos()) {
					pass.Reportf(n.Pos(), "write to per-shard lane %s indexed by %s: handler context must index through sim.ShardSlot (or run in a barrier function, or document with //lint:allow shardsafe <reason>)",
						base.Name(), exprString(n.Index))
				}
			case *ast.RangeStmt:
				base := lintutil.BaseObject(pass.TypesInfo, n.X)
				if base == nil || !lanes[base] || inBarrierFunc(stack) || inInitFunc(stack, base) {
					return true
				}
				if writesLane(pass.TypesInfo, n, base) && !ix.Suppressed("shardsafe", n.Pos()) {
					pass.Reportf(n.Pos(), "cross-slot write loop over per-shard lane %s outside a barrier function: only the Sync/merge family may touch other shards' slots (or document with //lint:allow shardsafe <reason>)",
						base.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// laneObjects collects the package's lane-state containers — objects
// whose type is an array sized by a Shards/ShardSlots constant, or
// which are assigned make(...) with such a length — and, for the
// make-allocated ones, the function the allocation lives in.
func laneObjects(pass *analysis.Pass) (map[types.Object]bool, map[types.Object]ast.Node) {
	lanes := map[types.Object]bool{}
	initFns := map[types.Object]ast.Node{}
	for _, f := range pass.Files {
		lintutil.WalkStack(f, func(stack []ast.Node, n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				if at, ok := n.Type.(*ast.ArrayType); ok && isShardConst(pass.TypesInfo, at.Len) {
					for _, name := range n.Names {
						if o := pass.TypesInfo.ObjectOf(name); o != nil {
							lanes[o] = true
						}
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || len(call.Args) < 2 {
						continue
					}
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
						continue
					}
					if !isShardConst(pass.TypesInfo, call.Args[1]) {
						continue
					}
					if i < len(n.Lhs) {
						if o := lintutil.BaseObject(pass.TypesInfo, n.Lhs[i]); o != nil {
							lanes[o] = true
							if fn := lintutil.EnclosingFunc(stack); fn != nil {
								initFns[o] = fn
							}
						}
					}
				}
			}
			return true
		})
	}
	return lanes, initFns
}

// isShardConst reports whether an expression resolves to a constant
// named Shards or ShardSlots (any package — in practice sim's).
func isShardConst(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return false
	}
	o := lintutil.BaseObject(info, e)
	if _, isConst := o.(*types.Const); !isConst {
		return false
	}
	return o.Name() == "Shards" || o.Name() == "ShardSlots"
}

// allowedIndex reports whether an index expression follows the
// handler-context discipline: a ShardSlot/ShardOfID call, a
// conventionally named shard variable, or a local assigned from such a
// call earlier in the enclosing function.
func allowedIndex(info *types.Info, stack []ast.Node, idx ast.Expr) bool {
	idx = ast.Unparen(idx)
	if isShardMapCall(info, idx) {
		return true
	}
	o := lintutil.BaseObject(info, idx)
	if o == nil {
		return false
	}
	if shardName.MatchString(o.Name()) {
		return true
	}
	// Local assigned from a ShardSlot/ShardOfID call anywhere in the
	// enclosing function before this use.
	fn := lintutil.EnclosingFunc(stack)
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() > idx.Pos() {
			return !found
		}
		for i, lhs := range as.Lhs {
			if lintutil.BaseObject(info, lhs) != o {
				continue
			}
			var rhs ast.Expr
			if i < len(as.Rhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			if rhs != nil && isShardMapCall(info, ast.Unparen(rhs)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprString renders a small expression for a diagnostic message.
func exprString(e ast.Expr) string {
	var buf strings.Builder
	if err := format.Node(&buf, token.NewFileSet(), e); err != nil {
		return "?"
	}
	return buf.String()
}

func isShardMapCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := lintutil.CalleeObject(info, call)
	return callee != nil && (callee.Name() == "ShardSlot" || callee.Name() == "ShardOfID")
}

// insideFlaggedRange reports whether an index expression is the loop
// variable of an enclosing range over the same lane container — the
// range statement already carries the diagnostic, one report per loop.
func insideFlaggedRange(info *types.Info, stack []ast.Node, base types.Object, idx ast.Expr) bool {
	idxObj := lintutil.BaseObject(info, ast.Unparen(idx))
	if idxObj == nil {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		rs, ok := stack[i].(*ast.RangeStmt)
		if !ok {
			continue
		}
		if lintutil.BaseObject(info, rs.X) != base {
			continue
		}
		if key, ok := rs.Key.(*ast.Ident); ok && info.ObjectOf(key) == idxObj {
			return true
		}
	}
	return false
}

func inBarrierFunc(stack []ast.Node) bool {
	name := lintutil.EnclosingFuncName(stack)
	return name != "" && barrierFunc.MatchString(name)
}

// writesLane reports whether a range over the lane container writes to
// it (directly, through the value variable, or through a pointer taken
// from an element).
func writesLane(info *types.Info, rs *ast.RangeStmt, base types.Object) bool {
	var valObj types.Object
	if id, ok := rs.Value.(*ast.Ident); ok && id.Name != "_" {
		valObj = info.ObjectOf(id)
	}
	wrote := false
	lintutil.WalkStack(rs.Body, func(stack []ast.Node, n ast.Node) bool {
		if wrote {
			return false
		}
		switch n := n.(type) {
		case *ast.IndexExpr:
			if lintutil.BaseObject(info, n.X) == base && lintutil.IsWriteTarget(stack, n) {
				wrote = true
			}
		case *ast.Ident:
			if valObj != nil && info.ObjectOf(n) == valObj && lintutil.IsWriteTarget(stack, n) {
				wrote = true
			}
		case *ast.UnaryExpr:
			// &lane[i] escaping into a pointer counts as a write path.
			if n.Op.String() == "&" {
				if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && lintutil.BaseObject(info, idx.X) == base {
					wrote = true
				}
			}
		}
		return true
	})
	return wrote
}
