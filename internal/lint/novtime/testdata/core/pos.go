// Positive cases: wall-clock reads and global randomness inside the
// deterministic scope. Every line below must be flagged.
package core

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func wall() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `time.Sleep blocks on the host clock`
}

func timer() *time.Timer {
	return time.NewTimer(time.Second) // want `time.NewTimer fires on the host clock`
}

func draw() int {
	return rand.Intn(10) // want `global rand.Intn draw`
}

func drawV2() uint64 {
	return randv2.Uint64() // want `global rand.Uint64 draw`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle draw`
}
