// Directive-misuse cases: a reason-less suppression never mutes the
// finding and is itself diagnosed.
package core

import "time"

func undocumented() int64 {
	return time.Now().UnixNano() //lint:allow novtime // want `undocumented //lint: suppression for novtime` `time.Now reads the wall clock`
}
