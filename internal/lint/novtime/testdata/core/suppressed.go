// Suppressed cases: documented //lint:allow novtime directives mute
// the finding. Nothing in this file may be flagged.
package core

import "time"

func bench() int64 {
	//lint:allow novtime offline benchmark timing, never on the replay path
	return time.Now().UnixNano()
}

//lint:allow novtime progress logging to stderr is outside the replay contract
func progress(start time.Time) time.Duration {
	return time.Since(start)
}
