// Negative cases: the sanctioned time and randomness idioms. Nothing
// in this file may be flagged.
package core

import (
	"math/rand"
	"time"

	"rjoin/internal/sim"
)

// Seeded *rand.Rand: method draws on an explicit stream are legal.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// The engine's counter-based per-node streams.
func stream(seed int64) uint64 {
	r := sim.NewRNG(seed, 7, 0xfa17)
	return r.Uint64()
}

// Pure time computation: constructors and conversions observe nothing.
func pure(d time.Duration) time.Time {
	return time.Unix(0, int64(d)).Add(d)
}
