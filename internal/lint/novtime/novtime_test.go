package novtime_test

import (
	"testing"

	"rjoin/internal/lint/linttest"
	"rjoin/internal/lint/novtime"
)

func TestNovtime(t *testing.T) {
	linttest.Run(t, novtime.Analyzer, "example/internal/core", "testdata/core")
}

func TestNovtimeScope(t *testing.T) {
	linttest.RunExpectNone(t, novtime.Analyzer, "example/tools", "testdata/core")
}
