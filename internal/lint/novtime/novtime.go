// Package novtime implements the rjoin-lint analyzer that forbids
// wall-clock and global-randomness sources inside the deterministic
// packages.
//
// The replay contract requires every value the engine computes to be a
// pure function of (seed, workload, options). time.Now and friends
// read the host clock; the top-level math/rand functions draw from a
// process-global source whose consumption order depends on goroutine
// interleaving. Both make replays diverge. The only sanctioned
// randomness inside the contract is an explicitly seeded stream: a
// *rand.Rand constructed from rand.NewSource(seed), or the engine's
// counter-based per-node sim.RNG streams (the salt discipline from the
// unreliable-network PR — checked here instead of remembered).
package novtime

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"rjoin/internal/lint/directive"
	"rjoin/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "novtime",
	Doc:  "forbids wall-clock reads and global math/rand draws in deterministic packages",
	Run:  run,
}

// forbiddenTime are package-level functions of "time" that read or
// wait on the host clock. Pure constructors and conversions
// (time.Duration, time.Unix, time.Date) stay legal: they compute, they
// don't observe.
var forbiddenTime = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on the host clock",
	"After":     "fires on the host clock",
	"Tick":      "fires on the host clock",
	"NewTimer":  "fires on the host clock",
	"NewTicker": "fires on the host clock",
	"AfterFunc": "fires on the host clock",
}

// allowedRand are the math/rand and math/rand/v2 package-level
// functions that construct seeded generators rather than drawing from
// the global source.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	ix := directive.Build(pass)
	ix.Report(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.ObjectOf(sel.Sel)
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions: methods on seeded
			// *rand.Rand / *sim.RNG values are exactly the sanctioned
			// idiom.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if why, bad := forbiddenTime[fn.Name()]; bad && !ix.Suppressed("novtime", sel.Pos()) {
					pass.Reportf(sel.Pos(), "time.%s %s: deterministic code must use virtual sim.Time (or document with //lint:allow novtime <reason>)", fn.Name(), why)
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] && !ix.Suppressed("novtime", sel.Pos()) {
					pass.Reportf(sel.Pos(), "global rand.%s draw: deterministic code must draw from a seeded *rand.Rand or a sim.RNG stream (or document with //lint:allow novtime <reason>)", fn.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
