package id

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashKeyDeterministic(t *testing.T) {
	a := HashKey("R+A")
	b := HashKey("R+A")
	if a != b {
		t.Fatalf("HashKey not deterministic: %v != %v", a, b)
	}
	if HashKey("R+A") == HashKey("R+B") {
		t.Fatalf("distinct keys unexpectedly collide")
	}
}

func TestHashBytesMatchesHashKey(t *testing.T) {
	if HashKey("hello") != HashBytes([]byte("hello")) {
		t.Fatal("HashKey and HashBytes disagree")
	}
}

func TestBetweenSimple(t *testing.T) {
	cases := []struct {
		z, x, y ID
		want    bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false},
		{10, 1, 10, false},
		{0, 10, 1, true},  // wrapped interval (10, 1)
		{11, 10, 1, true}, // wrapped interval
		{5, 10, 1, false}, // outside wrapped interval
		{7, 7, 7, false},  // full ring minus {x}
		{8, 7, 7, true},   // full ring minus {x}
	}
	for _, c := range cases {
		if got := Between(c.z, c.x, c.y); got != c.want {
			t.Errorf("Between(%d,%d,%d) = %v, want %v", c.z, c.x, c.y, got, c.want)
		}
	}
}

func TestBetweenRightInclSimple(t *testing.T) {
	cases := []struct {
		z, x, y ID
		want    bool
	}{
		{10, 1, 10, true},
		{1, 1, 10, false},
		{5, 1, 10, true},
		{1, 10, 1, true}, // wrapped, right endpoint included
		{10, 10, 1, false},
		{3, 7, 7, true}, // full ring
	}
	for _, c := range cases {
		if got := BetweenRightIncl(c.z, c.x, c.y); got != c.want {
			t.Errorf("BetweenRightIncl(%d,%d,%d) = %v, want %v", c.z, c.x, c.y, got, c.want)
		}
	}
}

// Property: for any x != y, every z is either in (x,y) or in [y,x) —
// the two arcs partition the ring.
func TestBetweenPartitionsRing(t *testing.T) {
	f := func(z, x, y uint64) bool {
		if x == y {
			return true
		}
		in1 := Between(ID(z), ID(x), ID(y))
		in2 := BetweenRightIncl(ID(z), ID(y), ID(x)) // (y, x]
		if ID(z) == ID(x) {
			return !in1 && in2
		}
		return in1 != in2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: BetweenRightIncl(z, x, y) == Between(z, x, y) || z == y  (x != y).
func TestBetweenRightInclRelation(t *testing.T) {
	f := func(z, x, y uint64) bool {
		if x == y {
			return true
		}
		want := Between(ID(z), ID(x), ID(y)) || ID(z) == ID(y)
		return BetweenRightIncl(ID(z), ID(x), ID(y)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dist obeys the triangle identity on the ring:
// Dist(x,y) + Dist(y,z) ≡ Dist(x,z) (mod 2^64).
func TestDistAdditive(t *testing.T) {
	f := func(x, y, z uint64) bool {
		return Dist(ID(x), ID(y))+Dist(ID(y), ID(z)) == Dist(ID(x), ID(z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerStartWraps(t *testing.T) {
	n := ID(^uint64(0) - 2) // near the top of the ring
	got := FingerStart(n, 2)
	want := n + 4
	if got != want {
		t.Fatalf("FingerStart wrap: got %v want %v", got, want)
	}
	if FingerStart(0, 0) != 1 {
		t.Fatalf("FingerStart(0,0) = %v, want 1", FingerStart(0, 0))
	}
}

func TestFingerStartCoversRingHalves(t *testing.T) {
	// The highest finger of any node starts half a ring away.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		n := ID(rng.Uint64())
		if Dist(n, FingerStart(n, Bits-1)) != uint64(1)<<63 {
			t.Fatalf("finger %d of %v does not start half-ring away", Bits-1, n)
		}
	}
}

func TestStringFixedWidth(t *testing.T) {
	if s := ID(0xff).String(); s != "00000000000000ff" {
		t.Fatalf("String() = %q", s)
	}
}
