// Package id implements the Chord identifier space used by every layer of
// the system: 64-bit ring identifiers produced by consistent hashing, and
// the modular interval arithmetic Chord's routing rules are defined in
// terms of.
//
// The paper uses m-bit identifiers produced by SHA-1 ("large enough to
// avoid collisions"). We truncate SHA-1 to 64 bits, which is collision
// free with overwhelming probability at the simulated scales (10^3-10^4
// nodes, 10^5-10^6 keys) while letting identifiers be ordinary uint64
// values with cheap arithmetic.
package id

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// Bits is the width m of the identifier space. Identifiers live on the
// ring [0, 2^Bits).
const Bits = 64

// ID is a point on the Chord identifier circle.
type ID uint64

// HashKey maps an arbitrary string key to its ring identifier using
// consistent hashing (SHA-1 truncated to 64 bits), mirroring the paper's
// Hash(k) function.
func HashKey(key string) ID {
	sum := sha1.Sum([]byte(key))
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// HashBytes is HashKey for raw byte keys.
func HashBytes(key []byte) ID {
	sum := sha1.Sum(key)
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// String renders the identifier as fixed-width hex, convenient for logs
// and deterministic test output.
func (x ID) String() string { return fmt.Sprintf("%016x", uint64(x)) }

// Add returns x + k (mod 2^Bits). Used to compute finger starts
// (n + 2^(i-1)).
func (x ID) Add(k uint64) ID { return x + ID(k) }

// Dist returns the clockwise distance from x to y on the ring.
func Dist(x, y ID) uint64 { return uint64(y - x) }

// Between reports whether z lies in the open interval (x, y) walking
// clockwise from x to y. When x == y the interval is the whole ring
// minus {x}, matching Chord's convention for a ring with one known node.
func Between(z, x, y ID) bool {
	if x == y {
		return z != x
	}
	if x < y {
		return x < z && z < y
	}
	return z > x || z < y
}

// BetweenRightIncl reports whether z lies in the half-open interval
// (x, y] walking clockwise. This is the interval used by Chord's
// successor rule: Successor(id) is the first node n with
// id in (pred(n), n].
func BetweenRightIncl(z, x, y ID) bool {
	if x == y {
		return true // interval covers the full ring
	}
	if x < y {
		return x < z && z <= y
	}
	return z > x || z <= y
}

// FingerStart returns the start of the i-th finger interval of node n:
// n + 2^i (mod 2^m), for i in [0, Bits).
func FingerStart(n ID, i int) ID {
	return n + ID(uint64(1)<<uint(i))
}
