package reliable

import (
	"reflect"
	"testing"

	"rjoin/internal/id"
)

func payloads(ds []Delivery) []any {
	out := make([]any, len(ds))
	for i, d := range ds {
		out[i] = d.Payload
	}
	return out
}

// TestInboxInOrder: the common case — a snapshot head followed by
// incremental batches applies in order, once each.
func TestInboxInOrder(t *testing.T) {
	b := NewInbox()
	if got := b.Offer(1, true, 1, 2, "snap"); !reflect.DeepEqual(payloads(got), []any{"snap"}) || !got[0].Reset {
		t.Fatalf("snapshot head: %v", got)
	}
	if got := b.Offer(1, false, 3, 1, "a"); !reflect.DeepEqual(payloads(got), []any{"a"}) || got[0].Reset {
		t.Fatalf("first increment: %v", got)
	}
	if got := b.Offer(1, false, 4, 3, "b"); !reflect.DeepEqual(payloads(got), []any{"b"}) {
		t.Fatalf("second increment: %v", got)
	}
	if b.Applied() != 6 {
		t.Fatalf("applied %d, want 6", b.Applied())
	}
}

// TestInboxReplayIdempotent: redelivering any already-applied batch
// releases nothing and counts as stale.
func TestInboxReplayIdempotent(t *testing.T) {
	b := NewInbox()
	b.Offer(1, true, 1, 1, "snap")
	b.Offer(1, false, 2, 2, "a")
	for i := 0; i < 3; i++ {
		if got := b.Offer(1, false, 2, 2, "a"); len(got) != 0 {
			t.Fatalf("replay %d released %v", i, got)
		}
		if got := b.Offer(1, true, 1, 1, "snap"); len(got) != 0 {
			t.Fatalf("snapshot replay %d released %v", i, got)
		}
	}
	if b.Stale != 6 {
		t.Fatalf("stale count %d, want 6", b.Stale)
	}
	if b.Applied() != 3 {
		t.Fatalf("applied %d, want 3", b.Applied())
	}
}

// TestInboxReorderBuffers: a batch arriving before its predecessor is
// buffered and released in order once the gap fills — including the
// snapshot head arriving after its followers.
func TestInboxReorderBuffers(t *testing.T) {
	b := NewInbox()
	if got := b.Offer(1, false, 4, 2, "c"); len(got) != 0 {
		t.Fatalf("gap batch released early: %v", got)
	}
	if got := b.Offer(1, false, 3, 1, "b"); len(got) != 0 {
		t.Fatalf("gap batch released early: %v", got)
	}
	got := b.Offer(1, true, 1, 2, "snap")
	if !reflect.DeepEqual(payloads(got), []any{"snap", "b", "c"}) {
		t.Fatalf("fill released %v, want [snap b c]", payloads(got))
	}
	if !got[0].Reset || got[1].Reset || got[2].Reset {
		t.Fatalf("reset flags %v %v %v", got[0].Reset, got[1].Reset, got[2].Reset)
	}
}

// TestInboxGenerationSupersedes: a new generation's snapshot discards
// the old stream; stragglers of the old generation are dropped whether
// they arrive before or after it.
func TestInboxGenerationSupersedes(t *testing.T) {
	b := NewInbox()
	b.Offer(1, true, 1, 1, "old-snap")
	b.Offer(1, false, 2, 1, "old-a")
	if got := b.Offer(3, true, 1, 1, "new-snap"); !reflect.DeepEqual(payloads(got), []any{"new-snap"}) || !got[0].Reset {
		t.Fatalf("new generation snapshot: %v", got)
	}
	if got := b.Offer(1, false, 3, 1, "old-b"); len(got) != 0 {
		t.Fatalf("old-generation straggler released %v", got)
	}
	// Old straggler buffered before the new snapshot is purged by it.
	b2 := NewInbox()
	b2.Offer(1, true, 1, 1, "s1")
	if got := b2.Offer(1, false, 5, 1, "late"); len(got) != 0 {
		t.Fatal("gap released early")
	}
	if got := b2.Offer(2, true, 1, 1, "s2"); !reflect.DeepEqual(payloads(got), []any{"s2"}) {
		t.Fatalf("second snapshot: %v", got)
	}
	if got := b2.Offer(1, false, 2, 3, "fill"); len(got) != 0 {
		t.Fatalf("filling a purged gap released %v", got)
	}
}

// TestInboxDropAndKill: Drop closes the stream but a higher generation
// reopens it; Kill is terminal.
func TestInboxDropAndKill(t *testing.T) {
	b := NewInbox()
	b.Offer(1, true, 1, 1, "s")
	b.Drop()
	if b.Open() {
		t.Fatal("open after Drop")
	}
	if got := b.Offer(1, false, 2, 1, "tail"); len(got) != 0 {
		t.Fatalf("dropped stream accepted %v", got)
	}
	if got := b.Offer(2, true, 1, 1, "s2"); len(got) != 1 || !b.Open() {
		t.Fatalf("re-established stream rejected: %v open=%v", got, b.Open())
	}
	b.Kill()
	if got := b.Offer(3, true, 1, 1, "s3"); len(got) != 0 || b.Open() {
		t.Fatalf("killed inbox accepted %v", got)
	}
}

// TestStreamSequencing: Next hands out contiguous ranges.
func TestStreamSequencing(t *testing.T) {
	s := &Stream{gen: 1, next: 1}
	if first := s.Next(3); first != 1 {
		t.Fatalf("first range starts at %d", first)
	}
	if first := s.Next(2); first != 4 {
		t.Fatalf("second range starts at %d", first)
	}
}

// TestLinksSync: reconciliation reports additions (with fresh streams)
// and removals in deterministic order, and re-acquired targets get a
// strictly larger generation.
func TestLinksSync(t *testing.T) {
	l := NewLinks()
	added, removed := l.Sync([]id.ID{30, 10})
	if !reflect.DeepEqual(added, []id.ID{10, 30}) || removed != nil {
		t.Fatalf("initial sync: added %v removed %v", added, removed)
	}
	gen10 := l.Stream(10).Gen()
	added, removed = l.Sync([]id.ID{10, 20})
	if !reflect.DeepEqual(added, []id.ID{20}) || !reflect.DeepEqual(removed, []id.ID{30}) {
		t.Fatalf("second sync: added %v removed %v", added, removed)
	}
	if !reflect.DeepEqual(l.Targets(), []id.ID{10, 20}) {
		t.Fatalf("targets %v", l.Targets())
	}
	l.Sync([]id.ID{20})
	added, _ = l.Sync([]id.ID{10, 20})
	if len(added) != 1 || added[0] != 10 {
		t.Fatalf("re-add sync: %v", added)
	}
	if g := l.Stream(10).Gen(); g <= gen10 {
		t.Fatalf("re-acquired generation %d not above original %d", g, gen10)
	}
	// Unchanged sync is a no-op.
	added, removed = l.Sync([]id.ID{10, 20})
	if added != nil || removed != nil {
		t.Fatalf("steady-state sync: added %v removed %v", added, removed)
	}
}
