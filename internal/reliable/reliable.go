// Package reliable implements sequence-numbered channel bookkeeping
// shared by every layer that must apply a message stream exactly once
// over an unreliable or reordering transport: per-link versioned update
// streams with their link registries (the durable-state replication
// layer), the stream-side inbox that makes applying those streams
// idempotent under replays and reorders, and the unordered Dedup filter
// the overlay's end-to-end reliable channels use to suppress duplicate
// deliveries.
//
// The replication use is successor-list replication: every key a node
// owns has the same replica group — the node itself plus its k−1 ring
// successors — so each node maintains one outgoing stream per replica
// target and mirrors its keyed state along all of them. What the
// payloads mean is the caller's business (internal/core encodes RJoin
// state mutations); this package only guarantees that a batch stream is
// applied exactly once, in order, per (origin, target, generation).
//
// Versioning is two-level. Each (origin → target) link carries a
// generation, bumped whenever the link is (re-)established with a full
// state snapshot, and each batch within a generation carries a
// contiguous operation-sequence range. A replica applies a batch iff it
// extends the applied prefix of the current generation: older
// generations are dropped (a superseding snapshot is or was in flight),
// replayed ranges are dropped (idempotency), and gaps are buffered until
// the missing range arrives (reorder tolerance).
package reliable

import (
	"sort"

	"rjoin/internal/id"
)

// Stream is the origin-side state of one outgoing replication link: the
// current generation and the operation sequence already assigned.
type Stream struct {
	gen  int64
	next int64 // next unassigned op sequence (first op of a gen is 1)
}

// Gen returns the stream's current generation.
func (s *Stream) Gen() int64 { return s.gen }

// Next assigns the next n operation sequence numbers and returns the
// first of them.
func (s *Stream) Next(n int) int64 {
	first := s.next
	s.next += int64(n)
	return first
}

// Links is one origin's registry of outgoing replication links, in
// deterministic (ascending target identifier) order. Generations are
// drawn from a single per-origin counter, so a target that is dropped
// and later re-acquired always sees a strictly larger generation than
// any batch of its earlier stream.
type Links struct {
	streams map[id.ID]*Stream
	order   []id.ID
	gens    int64
}

// NewLinks returns an empty registry.
func NewLinks() *Links {
	return &Links{streams: make(map[id.ID]*Stream)}
}

// Targets returns the current targets in ascending identifier order.
// The returned slice is shared; callers must not mutate it.
func (l *Links) Targets() []id.ID { return l.order }

// Stream returns the stream of an established target, or nil.
func (l *Links) Stream(target id.ID) *Stream { return l.streams[target] }

// Sync reconciles the registry with the wanted target set and reports
// the difference: added targets carry a fresh stream (new generation,
// sequence reset — the caller owes each a full state snapshot), removed
// targets are forgotten (the caller should discard the mirror held
// there). Both result slices are in ascending identifier order.
func (l *Links) Sync(want []id.ID) (added, removed []id.ID) {
	inWant := make(map[id.ID]bool, len(want))
	for _, t := range want {
		inWant[t] = true
	}
	for _, t := range l.order {
		if !inWant[t] {
			removed = append(removed, t)
			delete(l.streams, t)
		}
	}
	for _, t := range want {
		if _, ok := l.streams[t]; !ok {
			l.gens++
			l.streams[t] = &Stream{gen: l.gens, next: 1}
			added = append(added, t)
		}
	}
	l.order = l.order[:0]
	for t := range l.streams {
		l.order = append(l.order, t)
	}
	sort.Slice(l.order, func(i, j int) bool { return l.order[i] < l.order[j] })
	sort.Slice(added, func(i, j int) bool { return added[i] < added[j] })
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	return added, removed
}

// Delivery is one batch released by an Inbox for application, in order.
// Reset marks the first batch of a new generation: the caller must
// discard the origin's mirrored state before applying the payload (it
// is the head of a full snapshot).
type Delivery struct {
	Reset   bool
	Payload any
}

// pendingBatch is a buffered out-of-order batch.
type pendingBatch struct {
	gen     int64
	reset   bool
	first   int64
	count   int
	payload any
}

// Inbox is the replica-side state of one incoming origin stream. It
// admits each operation exactly once no matter how batches are
// duplicated or reordered, releasing them strictly in (generation,
// sequence) order.
type Inbox struct {
	gen     int64
	applied int64 // ops applied in the current generation
	open    bool
	killed  bool
	pending []pendingBatch

	// Stale counts batches dropped as replays or superseded
	// generations — the idempotency machinery's visible work.
	Stale int64
}

// NewInbox returns an inbox that accepts the first generation offered.
func NewInbox() *Inbox { return &Inbox{} }

// Applied returns the number of operations applied in the current
// generation.
func (b *Inbox) Applied() int64 { return b.applied }

// Gen returns the generation currently being applied.
func (b *Inbox) Gen() int64 { return b.gen }

// Open reports whether the inbox currently tracks a live stream.
func (b *Inbox) Open() bool { return b.open && !b.killed }

// Drop discards buffered batches and closes the current stream. A later
// snapshot batch with a higher generation reopens the inbox (the link
// was re-established); batches of the dropped generation are ignored.
func (b *Inbox) Drop() {
	b.open = false
	b.pending = nil
}

// Kill closes the inbox permanently: the origin is gone and no future
// stream from it can be valid. All subsequent offers are dropped.
func (b *Inbox) Kill() {
	b.killed = true
	b.open = false
	b.pending = nil
}

// Offer hands the inbox one received batch: generation gen, snapshot
// head if reset, operations [first, first+count). It returns the
// batches this makes applicable, in application order — usually just
// the offered one, but a batch that fills a buffered gap releases its
// followers too, and a stale or replayed batch releases nothing.
func (b *Inbox) Offer(gen int64, reset bool, first int64, count int, payload any) []Delivery {
	if b.killed {
		b.Stale++
		return nil
	}
	if gen < b.gen || (gen == b.gen && !b.open) {
		b.Stale++ // superseded generation, or remnant of a dropped stream
		return nil
	}
	if gen == b.gen && b.open && first+int64(count) <= b.applied+1 {
		b.Stale++ // pure replay of an applied range
		return nil
	}
	b.pending = append(b.pending, pendingBatch{gen: gen, reset: reset, first: first, count: count, payload: payload})

	var out []Delivery
	for {
		idx := -1
		for i, p := range b.pending {
			ready := (p.gen == b.gen && b.open && p.first == b.applied+1) ||
				(p.reset && p.first == 1 && p.gen > b.gen)
			if ready && (idx < 0 || p.gen < b.pending[idx].gen ||
				(p.gen == b.pending[idx].gen && p.first < b.pending[idx].first)) {
				idx = i
			}
		}
		if idx < 0 {
			return out
		}
		p := b.pending[idx]
		b.pending = append(b.pending[:idx], b.pending[idx+1:]...)
		if p.reset && (p.gen > b.gen || !b.open) {
			b.gen, b.applied, b.open = p.gen, 0, true
			// Older-generation stragglers can never apply now.
			kept := b.pending[:0]
			for _, q := range b.pending {
				if q.gen >= b.gen {
					kept = append(kept, q)
				} else {
					b.Stale++
				}
			}
			b.pending = kept
			out = append(out, Delivery{Reset: true, Payload: p.payload})
		} else {
			out = append(out, Delivery{Payload: p.payload})
		}
		b.applied = p.first + int64(p.count) - 1
	}
}

// Dedup is the receiver-side duplicate filter of one unordered reliable
// channel: a cumulative watermark plus a sparse set of seen sequence
// numbers above it. Unlike Inbox it imposes no delivery order — the
// overlay's end-to-end channels deliver messages as they arrive and only
// need each sequence number to pass exactly once; ordering, where it
// matters, is the application layer's business (version counters,
// commutative folds).
type Dedup struct {
	cum    uint64 // every sequence number <= cum has been seen
	sparse map[uint64]struct{}
}

// Cum returns the cumulative watermark: every sequence number up to and
// including it has been seen. Acks carry this value.
func (d *Dedup) Cum() uint64 { return d.cum }

// Outstanding returns the number of sequence numbers seen above the
// cumulative watermark — the out-of-order backlog the filter is holding.
// Zero means every seen sequence number is contiguous. Observability
// uses it to annotate acks with how much reordering a channel is
// masking.
func (d *Dedup) Outstanding() int { return len(d.sparse) }

// Seen reports whether seq has already passed the filter.
func (d *Dedup) Seen(seq uint64) bool {
	if seq <= d.cum {
		return true
	}
	_, ok := d.sparse[seq]
	return ok
}

// Mark records seq as seen and reports whether this was its first
// passage (false = duplicate, the caller must drop the delivery). The
// watermark advances over any contiguous run the sparse set completes.
func (d *Dedup) Mark(seq uint64) bool {
	if d.Seen(seq) {
		return false
	}
	if seq == d.cum+1 {
		d.cum = seq
		for {
			if _, ok := d.sparse[d.cum+1]; !ok {
				break
			}
			d.cum++
			delete(d.sparse, d.cum)
		}
		return true
	}
	if d.sparse == nil {
		d.sparse = make(map[uint64]struct{})
	}
	d.sparse[seq] = struct{}{}
	return true
}
