package sim

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// pnode is one synthetic sharded entity: it logs its firing times and
// forwards work to another entity with an RNG-drawn delay, exercising
// the buffered cross-shard scheduling path and per-node streams.
type pnode struct {
	id    uint64
	log   []Time
	rng   *RNG
	eng   *Engine
	nodes []*pnode
}

func pTick(now Time, c Ctx) {
	n := c.A.(*pnode)
	n.log = append(n.log, now)
	if now >= 40 {
		return
	}
	next := n.nodes[(int(n.id)+5)%len(n.nodes)]
	d := n.rng.Int63n(3) + 1
	n.eng.AfterCtxShard(d, pTick, Ctx{A: next}, ShardOfID(n.id), ShardOfID(next.id))
}

// runSynthetic drives a cascading cross-shard workload on the given
// worker count and digests every node's firing log.
func runSynthetic(workers int) uint64 {
	e := NewEngine(7)
	e.SetWorkers(workers)
	nodes := make([]*pnode, 16)
	for i := range nodes {
		nodes[i] = &pnode{id: uint64(i * 1047), rng: NewRNG(7, uint64(i*1047), 1), eng: e}
	}
	for _, n := range nodes {
		n.nodes = nodes
	}
	for _, n := range nodes {
		e.AtCtxShard(1, pTick, Ctx{A: n}, NoShard, ShardOfID(n.id))
	}
	e.Run()
	h := fnv.New64a()
	for _, n := range nodes {
		fmt.Fprintf(h, "[%d]", n.id)
		for _, t := range n.log {
			fmt.Fprintf(h, "%d,", t)
		}
	}
	return h.Sum64()
}

// TestParallelOrderInvariantAcrossWorkers is the sim-level half of the
// determinism guarantee: the same cascading workload must produce
// bit-identical firing logs for every worker count, including a single
// worker running the full parallel algorithm.
func TestParallelOrderInvariantAcrossWorkers(t *testing.T) {
	ref := runSynthetic(1)
	for _, w := range []int{2, 4, 8} {
		if got := runSynthetic(w); got != ref {
			t.Fatalf("workers=%d digest %x, want workers=1 digest %x", w, got, ref)
		}
	}
}

// TestParallelRunSemantics mirrors the serial engine's Run/RunUntil
// contract on a parallel engine: Run drains foreground work (firing
// background ticks it passes), leaves pending background series
// queued, and RunUntil advances them explicitly.
func TestParallelRunSemantics(t *testing.T) {
	e := NewEngine(1)
	e.SetWorkers(2)
	bgFired := 0
	e.EveryBg(5, func(Time) bool { bgFired++; return true })
	fgFired := 0
	e.AtCtxShard(12, func(Time, Ctx) { fgFired++ }, Ctx{}, NoShard, 3)
	e.Run()
	if fgFired != 1 {
		t.Fatalf("foreground fired %d, want 1", fgFired)
	}
	if bgFired != 2 {
		t.Fatalf("background fired %d times during Run, want 2", bgFired)
	}
	if e.PendingForeground() != 0 {
		t.Fatalf("foreground pending %d after Run", e.PendingForeground())
	}
	if e.Pending() == 0 {
		t.Fatal("background series should remain queued after Run")
	}
	e.RunUntil(30)
	if bgFired != 6 {
		t.Fatalf("background fired %d times after RunUntil(30), want 6", bgFired)
	}
	if e.Now() != 30 {
		t.Fatalf("clock %d after RunUntil(30), want 30", e.Now())
	}
}

// TestParallelZeroDelaySameInstant verifies sub-round handling: an
// event scheduling another event at the same timestamp (a zero-delay
// self-delivery) fires it within the same virtual instant.
func TestParallelZeroDelaySameInstant(t *testing.T) {
	e := NewEngine(1)
	e.SetWorkers(2)
	var times []Time
	second := func(now Time, _ Ctx) { times = append(times, now) }
	first := func(now Time, _ Ctx) {
		times = append(times, now)
		e.AfterCtxShard(0, second, Ctx{}, 4, 4)
	}
	e.AtCtxShard(9, first, Ctx{}, NoShard, 4)
	e.Run()
	if len(times) != 2 || times[0] != 9 || times[1] != 9 {
		t.Fatalf("zero-delay chain fired at %v, want [9 9]", times)
	}
}

func TestSetWorkersRejectsUsedEngine(t *testing.T) {
	e := NewEngine(1)
	e.At(1, func(Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetWorkers on an engine with queued events must panic")
		}
	}()
	e.SetWorkers(2)
}

func TestStepUnsupportedOnParallelEngine(t *testing.T) {
	e := NewEngine(1)
	e.SetWorkers(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Step on a parallel engine must panic")
		}
	}()
	e.Step()
}

// TestRNGStreams pins the stream contract: equal keys replay, and any
// differing key component (seed, node, salt) yields an independent
// stream.
func TestRNGStreams(t *testing.T) {
	a, b := NewRNG(42, 7, 1), NewRNG(42, 7, 1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal keys must give equal streams")
		}
	}
	variants := []*RNG{NewRNG(43, 7, 1), NewRNG(42, 8, 1), NewRNG(42, 7, 2)}
	base := NewRNG(42, 7, 1)
	v0 := base.Uint64()
	for i, v := range variants {
		if v.Uint64() == v0 {
			t.Fatalf("variant %d collides with base stream on first draw", i)
		}
	}
	r := NewRNG(1, 2, 3)
	for i := 0; i < 1000; i++ {
		if n := r.Int63n(5); n < 0 || n >= 5 {
			t.Fatalf("Int63n(5) = %d out of range", n)
		}
		if n := r.Intn(3); n < 0 || n >= 3 {
			t.Fatalf("Intn(3) = %d out of range", n)
		}
	}
}
