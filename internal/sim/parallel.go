package sim

import (
	"sync"
	"sync/atomic"
)

// Deterministic parallel event execution.
//
// The engine optionally executes events on N workers while preserving
// bit-identical replay for a given seed, independent of N. The schedule
// is conservative and time-stepped:
//
//   - Every stateful entity (a simulated node) is assigned one of
//     Shards fixed logical shards by its 64-bit identifier. The shard
//     count is a constant, NOT the worker count, so the execution order
//     defined below never depends on how many workers happen to run it.
//   - All events with the current minimum timestamp T execute in one or
//     more sub-rounds. Within a sub-round, shard-less "global" events
//     (driver callbacks, churn draws, periodic maintenance) run first,
//     serially, in (T, seq) order — they may mutate any state, and no
//     worker is running while they do. Then every shard with events at
//     T executes them in (T, seq) order; distinct shards run
//     concurrently, claimed by workers from a shared work queue.
//   - A handler running on shard s may touch only shard-s state and
//     must route cross-shard effects through scheduling. Schedules made
//     during a sub-round are buffered per *source* shard and merged at
//     the barrier in deterministic order: ascending source shard, then
//     creation order within the shard. Merge assigns the global (at,
//     seq) keys, so the next sub-round's order is again total.
//   - Sub-rounds repeat at T until no event with timestamp T remains
//     (zero-delay self-deliveries land in the next sub-round), then the
//     clock advances to the next pending timestamp.
//
// Workers only parallelize *within* a sub-round, so any MinHopDelay >=
// 1 network has at least one full hop of lookahead per time step and
// the barrier frequency stays at O(virtual ticks), not O(events).

// Shards is the fixed number of logical shards entities hash into.
// It bounds usable parallelism and is deliberately a constant: the
// barrier merge order is keyed by shard index, so digests are identical
// for every worker count.
const Shards = 64

// NoShard marks a scheduling call made from driver or global-event
// context rather than from a shard's handler.
const NoShard = -1

// ShardOfID maps a 64-bit entity identifier to its logical shard.
func ShardOfID(u uint64) int { return int(u % Shards) }

// ShardSlots sizes a per-execution-context accumulation array: one
// slot per logical shard plus one for driver/global (NoShard) context.
// Components that collect state from handler context without locks —
// the observability layer's trace buffers and metric cells — index
// such arrays through ShardSlot.
const ShardSlots = Shards + 1

// ShardSlot maps a scheduling shard (including NoShard) to its slot in
// a ShardSlots-sized array.
func ShardSlot(shard int) int {
	if shard < 0 || shard >= Shards {
		return Shards
	}
	return shard
}

// bufEv is one schedule deferred during a sub-round: the event plus its
// destination heap.
type bufEv struct {
	ev  event
	dst int32
}

// parState is the engine's parallel-mode state; zero and inert on a
// serial engine.
type parState struct {
	workers   int         // 0 = serial engine
	heaps     []eventHeap // one per logical shard
	bufs      [][]bufEv   // deferred schedules, indexed by source shard
	firedSh   []uint64    // events executed per shard this sub-round
	firedFgSh []uint64    // foreground events among them (bg timers excluded)
	inRound   bool        // workers are (possibly) running

	roundTime   Time
	roundShards []int32
	roundIdx    atomic.Int64
}

// SetWorkers switches the engine to deterministic parallel execution
// on n workers (n >= 1), or back to the serial engine (n = 0). The
// event order — and therefore every digest — is identical for every
// n >= 1; n only sets the degree of hardware parallelism. It must be
// called before any event is scheduled or executed.
func (e *Engine) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	if n == e.par.workers {
		return
	}
	if e.fired > 0 || e.Pending() > 0 {
		panic("sim: SetWorkers must be called on a fresh engine")
	}
	e.par.workers = n
	if n > 0 && e.par.heaps == nil {
		e.par.heaps = make([]eventHeap, Shards)
		e.par.bufs = make([][]bufEv, Shards)
		e.par.firedSh = make([]uint64, Shards)
		e.par.firedFgSh = make([]uint64, Shards)
	}
}

// Workers returns the configured worker count (0 = serial engine).
func (e *Engine) Workers() int { return e.par.workers }

// scheduleShard routes a sharded event. From worker context (inside a
// sub-round) the event is buffered on its source shard and receives its
// sequence number at the barrier merge; from coordinator context it is
// pushed directly, exactly like a serial schedule.
func (e *Engine) scheduleShard(t Time, ev event, src, dst int) {
	if t < e.now {
		t = e.now
	}
	ev.at = t
	if e.par.inRound {
		// Only the worker currently executing shard src can make this
		// call, so the buffer needs no lock.
		e.par.bufs[src] = append(e.par.bufs[src], bufEv{ev: ev, dst: int32(dst)})
		return
	}
	e.seq++
	ev.seq = e.seq
	if !ev.bg {
		e.fg++
	}
	e.heapFor(dst).push(ev)
}

// heapFor returns the heap a destination shard's events live in.
func (e *Engine) heapFor(dst int) *eventHeap {
	if dst < 0 {
		return &e.events
	}
	return &e.par.heaps[dst]
}

// nextTime returns the earliest pending timestamp across all heaps.
func (e *Engine) nextTime() (Time, bool) {
	var best Time
	ok := false
	if len(e.events) > 0 {
		best, ok = e.events[0].at, true
	}
	for s := range e.par.heaps {
		if h := e.par.heaps[s]; len(h) > 0 && (!ok || h[0].at < best) {
			best, ok = h[0].at, true
		}
	}
	return best, ok
}

// execShard executes every event of shard s with timestamp t, in seq
// order. Called either by a worker (which owns the shard for the
// duration of the sub-round) or inline by the coordinator.
func (e *Engine) execShard(s int, t Time) {
	h := &e.par.heaps[s]
	var n, nFg uint64
	for len(*h) > 0 && (*h)[0].at == t {
		ev := h.pop()
		n++
		if !ev.bg {
			nFg++
		}
		if ev.fn != nil {
			ev.fn(t)
		} else {
			ev.cb(t, ev.ctx)
		}
	}
	e.par.firedSh[s] += n
	e.par.firedFgSh[s] += nFg
}

// mergeRound folds the sub-round's results back into the engine at the
// barrier: executed-event accounting, then the deferred schedules in
// deterministic order (ascending source shard, creation order within a
// shard), each receiving the next global sequence number.
func (e *Engine) mergeRound() {
	p := &e.par
	var executed, executedFg uint64
	for s := 0; s < Shards; s++ {
		executed += p.firedSh[s]
		executedFg += p.firedFgSh[s]
		p.firedSh[s] = 0
		p.firedFgSh[s] = 0
		buf := p.bufs[s]
		for i := range buf {
			ev := buf[i].ev
			e.seq++
			ev.seq = e.seq
			if !ev.bg {
				e.fg++
			}
			e.heapFor(int(buf[i].dst)).push(ev)
			buf[i] = bufEv{} // release payload references
		}
		p.bufs[s] = buf[:0]
	}
	e.fired += executed
	e.fg -= int(executedFg) // bg timers on shard heaps don't count as work
}

// runParallel is the parallel drain loop behind Run (untilFg=true) and
// RunUntil (untilFg=false, bounded by deadline).
func (e *Engine) runParallel(deadline Time, untilFg bool) {
	p := &e.par
	nWorkers := p.workers

	// Workers are spawned lazily on the first multi-shard sub-round and
	// live until this drain returns — deliberately not a persistent
	// per-engine pool: the engine has no Close, so parked goroutines
	// would pin every abandoned engine (tests and benchmarks create
	// hundreds) and leak. Spawn cost is per drain, not per sub-round,
	// and a drain runs thousands of events. Single-shard sub-rounds run
	// inline on the coordinator: the result is identical (determinism
	// never depends on who executes a shard) and the barrier overhead
	// drops to zero for sparse phases.
	var (
		tokens  chan struct{}
		quit    chan struct{}
		wg      sync.WaitGroup
		spawned bool
	)
	defer func() {
		if spawned {
			close(quit)
		}
	}()
	spawn := func() {
		tokens = make(chan struct{}, nWorkers)
		quit = make(chan struct{})
		for i := 0; i < nWorkers; i++ {
			go func() {
				for {
					select {
					case <-quit:
						return
					case <-tokens:
						for {
							i := p.roundIdx.Add(1) - 1
							if int(i) >= len(p.roundShards) {
								break
							}
							e.execShard(int(p.roundShards[i]), p.roundTime)
						}
						wg.Done()
					}
				}
			}()
		}
		spawned = true
	}

	for {
		if untilFg && e.fg == 0 {
			break
		}
		t, ok := e.nextTime()
		if !ok {
			break
		}
		if !untilFg && t > deadline {
			break
		}
		e.now = t
		for { // sub-rounds at time t
			progress := false
			// Global events first: serial, free to mutate anything.
			for len(e.events) > 0 && e.events[0].at == t {
				ev := e.pop()
				if !ev.bg {
					e.fg--
				}
				e.fired++
				if ev.fn != nil {
					ev.fn(t)
				} else {
					ev.cb(t, ev.ctx)
				}
				progress = true
			}
			// Then every shard with events at t, concurrently.
			p.roundShards = p.roundShards[:0]
			for s := 0; s < Shards; s++ {
				if h := p.heaps[s]; len(h) > 0 && h[0].at == t {
					p.roundShards = append(p.roundShards, int32(s))
				}
			}
			if len(p.roundShards) > 0 {
				progress = true
				p.roundTime = t
				p.inRound = true
				if nWorkers > 1 && len(p.roundShards) > 1 {
					if !spawned {
						spawn()
					}
					p.roundIdx.Store(0)
					wg.Add(nWorkers)
					for i := 0; i < nWorkers; i++ {
						tokens <- struct{}{}
					}
					wg.Wait()
				} else {
					for _, s := range p.roundShards {
						e.execShard(int(s), t)
					}
				}
				p.inRound = false
				e.mergeRound()
			}
			if !progress {
				break
			}
		}
	}
	if !untilFg && e.now < deadline {
		e.now = deadline
	}
}
