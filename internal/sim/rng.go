package sim

// RNG is a counter-based splitmix64 random stream. Parallel execution
// cannot share math/rand the way the serial engine does: the order in
// which concurrent handlers draw from a shared source depends on the
// interleaving, which would make delays — and therefore the whole
// replay — racy. Instead every node owns private streams keyed by
// (engine seed, node identifier, salt); a stream's output depends only
// on its key and on how many draws *that node* has made, both of which
// are deterministic under the barrier schedule regardless of how many
// workers execute it.
//
// splitmix64 passes BigCrush, is allocation-free, and is seedable from
// an arbitrary 64-bit key, which makes it the standard choice for
// reproducible per-entity streams (it is the seeding generator of
// xoshiro and of java.util.SplittableRandom).
type RNG struct {
	state uint64
}

// NewRNG derives an independent stream for one node. Different salts
// yield independent streams for the same node (the overlay's hop-delay
// draws and the processor's placement draws must not share a counter).
func NewRNG(seed int64, node uint64, salt uint64) *RNG {
	// Pre-mix the key parts so correlated inputs (node ids sharing high
	// bits, small seeds) land in uncorrelated stream positions.
	return &RNG{state: mix64(uint64(seed)) ^ mix64(node+0x9E3779B97F4A7C15) ^ mix64(salt^0xD1B54A32D192ED03)}
}

// mix64 is the splitmix64 output function, used here to whiten keys.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	return mix64(r.state)
}

// Int63n returns a uniform value in [0, n). n must be positive. The
// modulo bias is below 2^-52 for every n the simulator uses (delay
// spreads, candidate counts) — far below anything an experiment could
// observe.
func (r *RNG) Int63n(n int64) int64 {
	return int64(r.Uint64()>>1) % n
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	return int(r.Int63n(int64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision
// (the math/rand construction). The overlay's fault-injection draws —
// drop, duplication and delay-spike Bernoulli trials — use this.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
