package sim

import (
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		e.At(at, func(now Time) { got = append(got, now) })
	}
	e.Run()
	want := []Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func(Time) { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	e.At(100, func(now Time) {
		e.After(50, func(now Time) { at = now })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("After fired at %d, want 150", at)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	e.At(100, func(now Time) {
		e.At(10, func(now Time) { at = now }) // in the past
	})
	e.Run()
	if at != 100 {
		t.Fatalf("past event fired at %d, want clamp to 100", at)
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(10, func(Time) { fired++ })
	e.At(20, func(Time) { fired++ })
	e.At(30, func(Time) { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 3 {
		t.Fatalf("fired %d after Run, want 3", fired)
	}
}

func TestDeterministicRand(t *testing.T) {
	a := NewEngine(42)
	b := NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Uint64() != b.Rand().Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

// Property: clock is monotonically non-decreasing over any schedule.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine(1)
		last := Time(-1)
		ok := true
		for _, at := range times {
			e.At(Time(at), func(now Time) {
				if now < last {
					ok = false
				}
				last = now
			})
		}
		e.Run()
		return ok && e.Fired() == uint64(len(times))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine(1)
	if e.Step() {
		t.Fatal("Step on empty queue must return false")
	}
}

func TestEveryRepeatsUntilCancelled(t *testing.T) {
	e := NewEngine(1)
	var at []Time
	e.Every(10, func(now Time) bool {
		at = append(at, now)
		return len(at) < 3
	})
	e.Run()
	want := []Time{10, 20, 30}
	if len(at) != len(want) {
		t.Fatalf("fired %d times, want %d", len(at), len(want))
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("firings at %v, want %v", at, want)
		}
	}
}

// Non-positive intervals are coerced to one tick rather than looping
// at the same instant forever (or panicking): the series stays usable
// and still terminates when the callback returns false.
func TestEveryNonPositiveIntervalCoercesToOne(t *testing.T) {
	for _, interval := range []Duration{0, -7} {
		e := NewEngine(1)
		var at []Time
		e.Every(interval, func(now Time) bool {
			at = append(at, now)
			return len(at) < 3
		})
		e.Run()
		want := []Time{1, 2, 3}
		if len(at) != len(want) {
			t.Fatalf("interval %d: fired %d times, want %d", interval, len(at), len(want))
		}
		for i := range want {
			if at[i] != want[i] {
				t.Fatalf("interval %d: firings at %v, want %v", interval, at, want)
			}
		}
	}
}

// A background periodic series must not keep Run alive: Run drains
// foreground work, interleaving only background ticks whose timestamps
// it passes, and returns with the series still queued.
func TestEveryBgDoesNotStallRun(t *testing.T) {
	e := NewEngine(1)
	bgFired := 0
	e.EveryBg(5, func(Time) bool { bgFired++; return true })
	fgFired := 0
	e.At(12, func(Time) { fgFired++ })
	e.Run() // must terminate
	if fgFired != 1 {
		t.Fatalf("foreground fired %d, want 1", fgFired)
	}
	// Ticks at 5 and 10 precede the foreground event at 12.
	if bgFired != 2 {
		t.Fatalf("background fired %d times during Run, want 2", bgFired)
	}
	if e.PendingForeground() != 0 {
		t.Fatalf("foreground pending %d after Run", e.PendingForeground())
	}
	if e.Pending() == 0 {
		t.Fatal("background series should remain queued after Run")
	}
	// RunUntil advances background series explicitly.
	e.RunUntil(30)
	if bgFired != 6 {
		t.Fatalf("background fired %d times after RunUntil(30), want 6", bgFired)
	}
}

// Background events scheduling foreground work extends Run: the new
// foreground events (and their cascades) drain before Run returns.
func TestBackgroundCanScheduleForeground(t *testing.T) {
	e := NewEngine(1)
	var delivered []Time
	e.EveryBg(10, func(now Time) bool {
		if now == 10 {
			e.After(1, func(at Time) { delivered = append(delivered, at) })
		}
		return true
	})
	e.At(15, func(Time) {})
	e.Run()
	if len(delivered) != 1 || delivered[0] != 11 {
		t.Fatalf("foreground work from background tick delivered %v, want [11]", delivered)
	}
}

func TestAtBgFiresOnlyWhenClockPasses(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.AtBg(100, func(Time) { fired = true })
	e.At(50, func(Time) {})
	e.Run()
	if fired {
		t.Fatal("background event past foreground horizon must not fire in Run")
	}
	e.RunUntil(100)
	if !fired {
		t.Fatal("RunUntil must fire queued background events")
	}
}
