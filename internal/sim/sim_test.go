package sim

import (
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		e.At(at, func(now Time) { got = append(got, now) })
	}
	e.Run()
	want := []Time{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func(Time) { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	e.At(100, func(now Time) {
		e.After(50, func(now Time) { at = now })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("After fired at %d, want 150", at)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	e.At(100, func(now Time) {
		e.At(10, func(now Time) { at = now }) // in the past
	})
	e.Run()
	if at != 100 {
		t.Fatalf("past event fired at %d, want clamp to 100", at)
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(10, func(Time) { fired++ })
	e.At(20, func(Time) { fired++ })
	e.At(30, func(Time) { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock %d, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 3 {
		t.Fatalf("fired %d after Run, want 3", fired)
	}
}

func TestDeterministicRand(t *testing.T) {
	a := NewEngine(42)
	b := NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Uint64() != b.Rand().Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

// Property: clock is monotonically non-decreasing over any schedule.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine(1)
		last := Time(-1)
		ok := true
		for _, at := range times {
			e.At(Time(at), func(now Time) {
				if now < last {
					ok = false
				}
				last = now
			})
		}
		e.Run()
		return ok && e.Fired() == uint64(len(times))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine(1)
	if e.Step() {
		t.Fatal("Step on empty queue must return false")
	}
}
