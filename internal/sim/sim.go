// Package sim provides the deterministic discrete-event engine the
// overlay network runs on. The paper assumes a "relaxed asynchronous
// model" with a known upper bound δ on message delay; here virtual time
// is an integer tick counter, every scheduled event carries a virtual
// timestamp, and events fire in (time, sequence) order so that a given
// seed reproduces an experiment exactly.
//
// The event queue is a typed 4-ary min-heap storing events inline: no
// container/heap interface boxing, no per-push pointer allocation. The
// (time, sequence) ordering key is a total order (sequence numbers are
// unique), so the firing order is independent of heap shape and
// bit-identical to any other correct priority queue — replay
// determinism does not depend on the heap implementation.
package sim

import (
	"math/rand"
)

// Time is a point in virtual time, in ticks. The unit is arbitrary; the
// experiment harness uses one tick = one simulated millisecond.
type Time int64

// Duration is a span of virtual time in ticks.
type Duration = int64

// Ctx carries context to a CtxFunc without allocating: three reference
// slots that hold pointers or pre-boxed interfaces for free. Scalars
// small enough to matter ride inside the objects the slots point at,
// keeping the inline event struct compact (events are copied on every
// heap swap).
type Ctx struct {
	A, B, C interface{}
}

// CtxFunc is an allocation-free scheduled callback: a package-level (or
// otherwise pre-existing) function pointer invoked with the Ctx it was
// scheduled with. Unlike a closure, scheduling one allocates nothing.
type CtxFunc func(now Time, c Ctx)

// event is one scheduled callback, stored inline in the heap slice.
// Exactly one of fn (closure path) and cb (context path) is non-nil.
// Background events (bg) are housekeeping — periodic stabilization,
// churn draws — that fire in timestamp order like any other event but
// do not count as pending work: Run returns once only background
// events remain, so a self-rescheduling maintenance loop cannot keep
// the simulation alive forever.
type event struct {
	at  Time
	seq uint64
	fn  func(Time)
	cb  CtxFunc
	ctx Ctx
	bg  bool
}

// before reports whether e fires before o: (time, sequence) order.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Engine is a deterministic event loop over virtual time.
type Engine struct {
	now    Time
	seq    uint64
	events []event // 4-ary min-heap ordered by (at, seq)
	fg     int     // queued events that are not background
	rng    *rand.Rand
	fired  uint64
}

// NewEngine returns an engine whose randomness derives entirely from
// the given seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. All layers
// share it so one seed fixes an entire experiment.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// push inserts an event into the 4-ary heap.
func (e *Engine) push(ev event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !h[i].before(&h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.events = h
}

// pop removes and returns the minimum event. The caller guarantees the
// heap is non-empty.
func (e *Engine) pop() event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release references held by the vacated slot
	h = h[:n]
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Smallest of up to four children.
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if h[j].before(&h[m]) {
				m = j
			}
		}
		if !h[m].before(&last) {
			break
		}
		h[i] = h[m]
		i = m
	}
	if n > 0 {
		h[i] = last
	}
	e.events = h
	return root
}

// schedule clamps t to now and pushes the event.
func (e *Engine) schedule(t Time, ev event) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev.at = t
	ev.seq = e.seq
	if !ev.bg {
		e.fg++
	}
	e.push(ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past is clamped to "now" (the event still runs, after already-queued
// events for the current instant).
func (e *Engine) At(t Time, fn func(Time)) {
	e.schedule(t, event{fn: fn})
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Duration, fn func(Time)) {
	e.At(e.now+Time(d), fn)
}

// AtCtx schedules cb(t, c) at absolute virtual time t without
// allocating: the context is stored inline in the event queue. Hot
// paths (message delivery, batch flushes) use this instead of closures.
func (e *Engine) AtCtx(t Time, cb CtxFunc, c Ctx) {
	e.schedule(t, event{cb: cb, ctx: c})
}

// AfterCtx schedules cb d ticks from now; see AtCtx.
func (e *Engine) AfterCtx(d Duration, cb CtxFunc, c Ctx) {
	e.AtCtx(e.now+Time(d), cb, c)
}

// Step executes the single next event, if any, and reports whether one
// was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	if !ev.bg {
		e.fg--
	}
	e.now = ev.at
	e.fired++
	if ev.fn != nil {
		ev.fn(e.now)
	} else {
		ev.cb(e.now, ev.ctx)
	}
	return true
}

// Run drains all pending foreground work. Events may schedule further
// events; Run returns when only background events (periodic
// maintenance scheduled with AtBg/EveryBg) remain queued. Background
// events whose timestamps fall before remaining foreground work still
// fire in order along the way.
func (e *Engine) Run() {
	for e.fg > 0 {
		e.Step()
	}
}

// RunUntil executes events with timestamp <= deadline — background
// included — and then advances the clock to the deadline. Later events
// remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// PendingForeground returns the number of queued non-background events
// (the count Run drains to zero).
func (e *Engine) PendingForeground() int { return e.fg }

// AtBg schedules fn at absolute time t as a background event: it fires
// in order like any event when the clock passes t, but a pending
// occurrence does not keep Run alive. Churn traces and other
// pre-scheduled environment events use this so a trace extending past
// the last real message cannot stall quiescence detection.
func (e *Engine) AtBg(t Time, fn func(Time)) {
	e.schedule(t, event{fn: fn, bg: true})
}

// Every schedules fn every interval ticks, starting interval from now,
// until fn returns false. The occurrences are foreground events: Run
// will keep executing them, so Every is for bounded, self-terminating
// series; unbounded housekeeping belongs in EveryBg.
func (e *Engine) Every(interval Duration, fn func(Time) bool) {
	e.every(interval, fn, false)
}

// EveryBg is Every with background occurrences: the periodic series
// fires whenever foreground work (or RunUntil) advances the clock past
// the next tick, but never prevents Run from returning. Periodic
// stabilization and churn-rate draws run on this.
func (e *Engine) EveryBg(interval Duration, fn func(Time) bool) {
	e.every(interval, fn, true)
}

func (e *Engine) every(interval Duration, fn func(Time) bool, bg bool) {
	if interval <= 0 {
		interval = 1
	}
	var tick func(Time)
	tick = func(now Time) {
		if !fn(now) {
			return
		}
		e.schedule(now+Time(interval), event{fn: tick, bg: bg})
	}
	e.schedule(e.now+Time(interval), event{fn: tick, bg: bg})
}
