// Package sim provides the deterministic discrete-event engine the
// overlay network runs on. The paper assumes a "relaxed asynchronous
// model" with a known upper bound δ on message delay; here virtual time
// is an integer tick counter, every scheduled event carries a virtual
// timestamp, and events fire in (time, sequence) order so that a given
// seed reproduces an experiment exactly.
package sim

import (
	"container/heap"
	"math/rand"
)

// Time is a point in virtual time, in ticks. The unit is arbitrary; the
// experiment harness uses one tick = one simulated millisecond.
type Time int64

// Duration is a span of virtual time in ticks.
type Duration = int64

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64
	call func(Time)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic event loop over virtual time.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	fired  uint64
}

// NewEngine returns an engine whose randomness derives entirely from
// the given seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. All layers
// share it so one seed fixes an entire experiment.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past is clamped to "now" (the event still runs, after already-queued
// events for the current instant).
func (e *Engine) At(t Time, fn func(Time)) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, call: fn})
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Duration, fn func(Time)) {
	e.At(e.now+Time(d), fn)
}

// Step executes the single next event, if any, and reports whether one
// was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.fired++
	ev.call(e.now)
	return true
}

// Run drains the event queue completely. Events may schedule further
// events; Run returns only when the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamp <= deadline and then advances
// the clock to the deadline. Later events remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
