// Package sim provides the deterministic discrete-event engine the
// overlay network runs on. The paper assumes a "relaxed asynchronous
// model" with a known upper bound δ on message delay; here virtual time
// is an integer tick counter, every scheduled event carries a virtual
// timestamp, and events fire in (time, sequence) order so that a given
// seed reproduces an experiment exactly.
//
// The event queue is a typed 4-ary min-heap storing events inline: no
// container/heap interface boxing, no per-push pointer allocation. The
// (time, sequence) ordering key is a total order (sequence numbers are
// unique), so the firing order is independent of heap shape and
// bit-identical to any other correct priority queue — replay
// determinism does not depend on the heap implementation.
package sim

import (
	"math/rand"
)

// Time is a point in virtual time, in ticks. The unit is arbitrary; the
// experiment harness uses one tick = one simulated millisecond.
type Time int64

// Duration is a span of virtual time in ticks.
type Duration = int64

// Ctx carries context to a CtxFunc without allocating: three reference
// slots that hold pointers or pre-boxed interfaces for free. Scalars
// small enough to matter ride inside the objects the slots point at,
// keeping the inline event struct compact (events are copied on every
// heap swap).
type Ctx struct {
	A, B, C interface{}
}

// CtxFunc is an allocation-free scheduled callback: a package-level (or
// otherwise pre-existing) function pointer invoked with the Ctx it was
// scheduled with. Unlike a closure, scheduling one allocates nothing.
type CtxFunc func(now Time, c Ctx)

// event is one scheduled callback, stored inline in the heap slice.
// Exactly one of fn (closure path) and cb (context path) is non-nil.
// Background events (bg) are housekeeping — periodic stabilization,
// churn draws — that fire in timestamp order like any other event but
// do not count as pending work: Run returns once only background
// events remain, so a self-rescheduling maintenance loop cannot keep
// the simulation alive forever.
type event struct {
	at  Time
	seq uint64
	fn  func(Time)
	cb  CtxFunc
	ctx Ctx
	bg  bool
}

// before reports whether e fires before o: (time, sequence) order.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Engine is a deterministic event loop over virtual time. By default
// it executes serially; SetWorkers switches it to the deterministic
// parallel schedule described in parallel.go.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap // global events: 4-ary min-heap ordered by (at, seq)
	fg     int       // queued events that are not background
	rng    *rand.Rand
	seed   int64
	fired  uint64

	par parState // parallel execution state; inert while par.workers == 0
}

// NewEngine returns an engine whose randomness derives entirely from
// the given seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the engine was built with. Per-node RNG
// streams (see RNG) derive from it so one seed still fixes an entire
// experiment in parallel mode.
func (e *Engine) Seed() int64 { return e.seed }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. All layers
// share it so one seed fixes an entire experiment.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// eventHeap is a typed 4-ary min-heap of inline events ordered by
// (at, seq). The serial engine owns one; the parallel engine owns one
// per logical shard plus the global one.
type eventHeap []event

// push inserts an event into the 4-ary heap.
func (hp *eventHeap) push(ev event) {
	h := append(*hp, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !h[i].before(&h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*hp = h
}

// pop removes and returns the minimum event. The caller guarantees the
// heap is non-empty.
func (hp *eventHeap) pop() event {
	h := *hp
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release references held by the vacated slot
	h = h[:n]
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Smallest of up to four children.
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if h[j].before(&h[m]) {
				m = j
			}
		}
		if !h[m].before(&last) {
			break
		}
		h[i] = h[m]
		i = m
	}
	if n > 0 {
		h[i] = last
	}
	*hp = h
	return root
}

// push and pop on the engine operate on the global heap.
func (e *Engine) push(ev event) { e.events.push(ev) }
func (e *Engine) pop() event    { return e.events.pop() }

// schedule clamps t to now and pushes the event.
func (e *Engine) schedule(t Time, ev event) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev.at = t
	ev.seq = e.seq
	if !ev.bg {
		e.fg++
	}
	e.push(ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past is clamped to "now" (the event still runs, after already-queued
// events for the current instant).
func (e *Engine) At(t Time, fn func(Time)) {
	e.schedule(t, event{fn: fn})
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Duration, fn func(Time)) {
	e.At(e.now+Time(d), fn)
}

// AtCtx schedules cb(t, c) at absolute virtual time t without
// allocating: the context is stored inline in the event queue. Hot
// paths (message delivery, batch flushes) use this instead of closures.
func (e *Engine) AtCtx(t Time, cb CtxFunc, c Ctx) {
	e.schedule(t, event{cb: cb, ctx: c})
}

// AfterCtx schedules cb d ticks from now; see AtCtx.
func (e *Engine) AfterCtx(d Duration, cb CtxFunc, c Ctx) {
	e.AtCtx(e.now+Time(d), cb, c)
}

// AtCtxShard is AtCtx with shard routing for parallel mode: dst is the
// logical shard whose worker must execute the event (the destination
// node's shard), src is the logical shard of the acting node making the
// call, or NoShard from driver or global-event context. On a serial
// engine both are ignored and the call is exactly AtCtx.
func (e *Engine) AtCtxShard(t Time, cb CtxFunc, c Ctx, src, dst int) {
	if e.par.workers == 0 {
		e.schedule(t, event{cb: cb, ctx: c})
		return
	}
	e.scheduleShard(t, event{cb: cb, ctx: c}, src, dst)
}

// AfterCtxShard schedules cb d ticks from now; see AtCtxShard.
func (e *Engine) AfterCtxShard(d Duration, cb CtxFunc, c Ctx, src, dst int) {
	e.AtCtxShard(e.now+Time(d), cb, c, src, dst)
}

// AtCtxShardBg is AtCtxShard with a background occurrence: the event
// fires in order on its destination shard when the clock passes t, but a
// pending occurrence does not keep Run alive. The overlay's retransmit
// timers use this — a timer guarding an already-acknowledged message
// must not stall quiescence detection (the engine's drain loop advances
// the clock explicitly when unacknowledged channel entries remain).
func (e *Engine) AtCtxShardBg(t Time, cb CtxFunc, c Ctx, src, dst int) {
	if e.par.workers == 0 {
		e.schedule(t, event{cb: cb, ctx: c, bg: true})
		return
	}
	e.scheduleShard(t, event{cb: cb, ctx: c, bg: true}, src, dst)
}

// AfterCtxShardBg schedules cb d ticks from now; see AtCtxShardBg.
func (e *Engine) AfterCtxShardBg(d Duration, cb CtxFunc, c Ctx, src, dst int) {
	e.AtCtxShardBg(e.now+Time(d), cb, c, src, dst)
}

// Step executes the single next event, if any, and reports whether one
// was executed. Step is a serial-engine primitive: a parallel engine
// defines order only at sub-round granularity, so it must be driven
// through Run/RunUntil.
func (e *Engine) Step() bool {
	if e.par.workers > 0 {
		panic("sim: Step is not supported on a parallel engine; use Run or RunUntil")
	}
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	if !ev.bg {
		e.fg--
	}
	e.now = ev.at
	e.fired++
	if ev.fn != nil {
		ev.fn(e.now)
	} else {
		ev.cb(e.now, ev.ctx)
	}
	return true
}

// Run drains all pending foreground work. Events may schedule further
// events; Run returns when only background events (periodic
// maintenance scheduled with AtBg/EveryBg) remain queued. Background
// events whose timestamps fall before remaining foreground work still
// fire in order along the way.
//
// On a parallel engine the drain proceeds in barrier-synchronized time
// steps (see parallel.go) and stops at the first time-step boundary
// with no foreground work left.
func (e *Engine) Run() {
	if e.par.workers > 0 {
		e.runParallel(0, true)
		return
	}
	for e.fg > 0 {
		e.Step()
	}
}

// RunUntil executes events with timestamp <= deadline — background
// included — and then advances the clock to the deadline. Later events
// remain queued.
func (e *Engine) RunUntil(deadline Time) {
	if e.par.workers > 0 {
		e.runParallel(deadline, false)
		return
	}
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int {
	n := len(e.events)
	for i := range e.par.heaps {
		n += len(e.par.heaps[i])
	}
	return n
}

// PendingForeground returns the number of queued non-background events
// (the count Run drains to zero).
func (e *Engine) PendingForeground() int { return e.fg }

// AtBg schedules fn at absolute time t as a background event: it fires
// in order like any event when the clock passes t, but a pending
// occurrence does not keep Run alive. Churn traces and other
// pre-scheduled environment events use this so a trace extending past
// the last real message cannot stall quiescence detection.
func (e *Engine) AtBg(t Time, fn func(Time)) {
	e.schedule(t, event{fn: fn, bg: true})
}

// Every schedules fn every interval ticks, starting interval from now,
// until fn returns false. The occurrences are foreground events: Run
// will keep executing them, so Every is for bounded, self-terminating
// series; unbounded housekeeping belongs in EveryBg.
func (e *Engine) Every(interval Duration, fn func(Time) bool) {
	e.every(interval, fn, false)
}

// EveryBg is Every with background occurrences: the periodic series
// fires whenever foreground work (or RunUntil) advances the clock past
// the next tick, but never prevents Run from returning. Periodic
// stabilization and churn-rate draws run on this.
func (e *Engine) EveryBg(interval Duration, fn func(Time) bool) {
	e.every(interval, fn, true)
}

func (e *Engine) every(interval Duration, fn func(Time) bool, bg bool) {
	if interval <= 0 {
		interval = 1
	}
	var tick func(Time)
	tick = func(now Time) {
		if !fn(now) {
			return
		}
		e.schedule(now+Time(interval), event{fn: tick, bg: bg})
	}
	e.schedule(e.now+Time(interval), event{fn: tick, bg: bg})
}
