package churn

import (
	"math/rand"
	"sort"
	"testing"

	"rjoin/internal/chord"
	"rjoin/internal/core"
	"rjoin/internal/id"
	"rjoin/internal/overlay"
	"rjoin/internal/refeval"
	"rjoin/internal/relation"
	"rjoin/internal/sim"
	"rjoin/internal/sqlparse"
	"rjoin/internal/workload"
)

var testCat = func() *relation.Catalog {
	cat, _ := relation.NewCatalog(
		relation.MustSchema("R", "A", "B"),
		relation.MustSchema("S", "A", "B"),
	)
	return cat
}()

func testEngine(t testing.TB, nodes int, seed int64) *core.Engine {
	t.Helper()
	ring := chord.NewRing()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nodes; i++ {
		for {
			if _, err := ring.Join(id.ID(rng.Uint64())); err == nil {
				break
			}
		}
	}
	ring.BuildPerfect()
	se := sim.NewEngine(seed)
	netCfg := overlay.DefaultConfig()
	netCfg.Bounce = true
	nw := overlay.MustNetwork(ring, se, netCfg)
	return core.NewEngine(ring, se, nw, core.DefaultConfig())
}

func mkTuple(rel string, a, b int64) *relation.Tuple {
	s, _ := testCat.Schema(rel)
	return relation.MustTuple(s, relation.Int64(a), relation.Int64(b))
}

// driveWorkload publishes a fixed stream with clock advancement between
// publications (so background churn can fire) and returns the
// published tuples.
func driveWorkload(eng *core.Engine, rounds int) []*relation.Tuple {
	var published []*relation.Tuple
	for i := 0; i < rounds; i++ {
		r := mkTuple("R", int64(i%4), int64(i))
		s := mkTuple("S", int64(i%4), int64(100+i))
		published = append(published, r, s)
		alive := eng.Ring().Nodes()
		eng.PublishTuple(alive[i%len(alive)], r)
		eng.PublishTuple(alive[(i+1)%len(alive)], s)
		eng.RunUntil(eng.Sim().Now() + 24)
		eng.Run()
	}
	eng.Run()
	return published
}

func TestRateModeProducesChurn(t *testing.T) {
	eng := testEngine(t, 64, 5)
	m := New(eng, Config{
		Rates:    workload.ChurnConfig{JoinRate: 40, LeaveRate: 30, CrashRate: 15},
		Interval: 8,
		Seed:     9,
	})
	m.Start()
	driveWorkload(eng, 30)
	if m.Stats.Joins == 0 || m.Stats.Leaves == 0 || m.Stats.Crashes == 0 {
		t.Fatalf("rate mode produced no churn: %+v", m.Stats)
	}
}

// Two runs with equal seeds must produce the identical churn history
// and identical engine counters.
func TestChurnDeterministic(t *testing.T) {
	run := func() (Stats, core.Counters, int) {
		eng := testEngine(t, 48, 6)
		m := New(eng, Config{
			Rates:    workload.ChurnConfig{JoinRate: 30, LeaveRate: 30, CrashRate: 10},
			Interval: 8,
			Seed:     13,
		})
		m.Start()
		if _, err := eng.SubmitQuery(eng.Ring().Nodes()[3],
			sqlparse.MustParse("select R.B, S.B from R,S where R.A=S.A", testCat)); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		driveWorkload(eng, 25)
		return m.Stats, eng.Counters, eng.Ring().Size()
	}
	s1, c1, n1 := run()
	s2, c2, n2 := run()
	if s1 != s2 || c1 != c2 || n1 != n2 {
		t.Fatalf("same seed diverged:\nrun1 %+v %+v size %d\nrun2 %+v %+v size %d", s1, c1, n1, s2, c2, n2)
	}
	if s1.Joins+s1.Leaves+s1.Crashes == 0 {
		t.Fatal("no churn happened; the determinism check is vacuous")
	}
}

// Graceful-leave-only churn must preserve exactly-once delivery: the
// answer bag under churn equals the reference evaluator's bag.
func TestLeaveOnlyChurnStaysExact(t *testing.T) {
	eng := testEngine(t, 48, 7)
	m := New(eng, Config{
		Rates:    workload.ChurnConfig{LeaveRate: 40},
		Interval: 8,
		MinNodes: 16,
		Seed:     21,
	})
	m.Start()
	q := "select R.B, S.B from R,S where R.A=S.A"
	parsed := sqlparse.MustParse(q, testCat)
	qid, err := eng.SubmitQuery(eng.Ring().Nodes()[1], parsed)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	published := driveWorkload(eng, 25)
	if m.Stats.Leaves == 0 {
		t.Fatal("no leaves happened; the completeness check is vacuous")
	}

	var want []string
	for _, r := range refeval.Evaluate(parsed, published) {
		want = append(want, r.Key())
	}
	var got []string
	for _, a := range eng.Answers(qid) {
		got = append(got, refeval.Row(a.Values).Key())
	}
	sort.Strings(want)
	sort.Strings(got)
	if len(want) == 0 {
		t.Fatal("reference produced no answers")
	}
	if len(got) != len(want) {
		t.Fatalf("answer bag under leave churn: %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d diverged: %q vs %q", i, got[i], want[i])
		}
	}
}

func TestMinNodesFloor(t *testing.T) {
	eng := testEngine(t, 8, 8)
	m := New(eng, Config{MinNodes: 8, Seed: 3})
	if v := m.victim(); v != nil {
		t.Fatal("victim selected at the MinNodes floor")
	}
	if m.Stats.Skipped == 0 {
		t.Fatal("suppressed draw not counted")
	}
}

func TestTraceModeFiresAtTimestamps(t *testing.T) {
	eng := testEngine(t, 32, 9)
	m := New(eng, Config{Seed: 4, StabilizeEvery: -1})
	m.Schedule([]workload.ChurnEvent{
		{At: 10, Kind: workload.ChurnJoin},
		{At: 20, Kind: workload.ChurnLeave},
		{At: 30, Kind: workload.ChurnCrash},
	})
	eng.Run() // background events alone must not stall or fire
	if m.Stats.Joins != 0 {
		t.Fatal("trace fired without the clock advancing")
	}
	eng.RunUntil(15)
	if m.Stats.Joins != 1 {
		t.Fatalf("join not fired by t=15: %+v", m.Stats)
	}
	eng.RunUntil(100)
	eng.Run()
	if m.Stats.Leaves != 1 || m.Stats.Crashes != 1 {
		t.Fatalf("trace incomplete: %+v", m.Stats)
	}
	if eng.Ring().Size() != 32+1-2 {
		t.Fatalf("ring size %d after join+leave+crash, want 31", eng.Ring().Size())
	}
}

func TestStopCancelsPeriodicWork(t *testing.T) {
	eng := testEngine(t, 32, 10)
	m := New(eng, Config{
		Rates:    workload.ChurnConfig{JoinRate: 1000},
		Interval: 4,
		Seed:     5,
	})
	m.Start()
	eng.RunUntil(40)
	if m.Stats.Joins == 0 {
		t.Fatal("no joins before Stop")
	}
	m.Stop()
	eng.RunUntil(50) // let the pending tick observe stopped and cancel
	before := m.Stats
	eng.RunUntil(400)
	if m.Stats != before {
		t.Fatalf("churn continued after Stop: %+v vs %+v", m.Stats, before)
	}
	// The manager is restartable: Start registers fresh series (the
	// dead ones stay dead — no double cadence from stale closures).
	m.Start()
	eng.RunUntil(500)
	if m.Stats.Joins == before.Joins {
		t.Fatal("no joins after restart")
	}
	m.Stop()
	eng.RunUntil(600)
	after := m.Stats
	eng.RunUntil(1000)
	if m.Stats != after {
		t.Fatalf("churn continued after second Stop: %+v vs %+v", m.Stats, after)
	}
}
