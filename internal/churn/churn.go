// Package churn is the membership subsystem of the simulated network:
// it drives node joins, graceful leaves and crashes at runtime, on the
// simulation clock, while continuous queries are live. The paper
// evaluates RJoin on a stable overlay; this package turns the
// simulator into a fault-model testbed by exercising the machinery a
// real DHT deployment depends on — periodic Chord stabilization,
// graceful-leave state handover, in-flight message bouncing, ownership
// re-routing, and engine-level crash recovery (all implemented in
// internal/chord, internal/overlay and internal/core; this package is
// the policy layer deciding when membership changes happen).
//
// Two driving modes are provided. Rate mode (Start) draws Bernoulli
// trials per event class on a fixed cadence, matching the configured
// expected rates; trace mode (Schedule) replays a precomputed
// workload.ChurnTrace. Both schedule their work as background
// simulation events: pending churn never keeps Engine.Run from
// reaching quiescence, it simply happens whenever foreground traffic
// (or an explicit RunUntil) advances the virtual clock.
//
// What a crash costs depends on the engine's replication setting: with
// core.Config.ReplicationFactor < 2 the dead node's keyed state is
// counted as loss (the model experiments.FigChurn measures), while
// with factor k >= 2 every crash this manager injects promotes the
// surviving replica instead and loses nothing (experiments.FigRecovery
// measures that trade). The manager itself is agnostic — membership
// policy here, durability policy in internal/core/replicate.go — and
// every engine path it calls (JoinNode, LeaveNode, CrashNode) ends in
// the replica-group repair pass when replication is on.
//
// Background events are also what makes churn safe — and deterministic
// — under the parallel engine: the simulator executes shard-less
// events serially between worker sub-rounds, so every membership
// change (ring surgery, processor attach/detach, handover
// construction, crash recovery) runs at a barrier with no handler in
// flight, and the handover messages it emits enter the sharded queues
// through the same deterministic merge as any other send.
package churn

import (
	"fmt"
	"math/rand"

	"rjoin/internal/chord"
	"rjoin/internal/core"
	"rjoin/internal/id"
	"rjoin/internal/sim"
	"rjoin/internal/workload"
)

// Config tunes the churn manager. Zero values select defaults.
type Config struct {
	// Rates are expected membership events per 1000 virtual ticks per
	// class (see workload.ChurnConfig). All zero means no spontaneous
	// churn; explicit Join/Leave/Crash calls still work.
	Rates workload.ChurnConfig

	// Interval is the cadence in ticks at which rate mode draws its
	// trials (default 32). Smaller intervals track the configured
	// rates more faithfully; the draw probability per interval is
	// capped at one event per class.
	Interval int64

	// StabilizeEvery is the period in ticks of the incremental Chord
	// maintenance round (default 64). Zero keeps the default;
	// negative disables periodic stabilization (tests only — without
	// it, routing degrades to successor-list and ground-truth
	// fallbacks after membership changes).
	StabilizeEvery int64

	// MinNodes is the floor below which leaves and crashes are skipped
	// (default 2). Joins are always allowed.
	MinNodes int

	// MaxNodes caps ring growth in rate mode; zero means unlimited.
	MaxNodes int

	// Seed drives the manager's private randomness (victim selection,
	// identifier drawing, rate trials). Separate from the simulation
	// seed so enabling churn does not perturb message-delay draws.
	Seed int64
}

// Stats counts what the manager has done.
type Stats struct {
	Joins   int64
	Leaves  int64
	Crashes int64
	// Skipped counts leave/crash draws suppressed by the MinNodes
	// floor (or join draws suppressed by MaxNodes).
	Skipped int64
}

// Manager drives membership changes against one engine.
type Manager struct {
	eng *core.Engine
	cfg Config
	rng *rand.Rand

	// Stats is the manager's event accounting; read-only for callers.
	Stats Stats

	started bool
	stopped bool
	gen     int // invalidates periodic series from earlier Start calls
}

// New builds a manager over the engine, applying config defaults.
func New(eng *core.Engine, cfg Config) *Manager {
	if cfg.Interval <= 0 {
		cfg.Interval = 32
	}
	if cfg.StabilizeEvery == 0 {
		cfg.StabilizeEvery = 64
	}
	if cfg.MinNodes < 2 {
		cfg.MinNodes = 2
	}
	return &Manager{
		eng: eng,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Start registers the periodic background work: the incremental
// stabilization round, and — when any rate is configured — the churn
// trials. Calling Start twice is a no-op; calling it after Stop
// registers fresh series (series from before the Stop stay dead).
func (m *Manager) Start() {
	if m.started {
		return
	}
	m.started = true
	m.stopped = false
	m.gen++
	gen := m.gen
	alive := func() bool { return !m.stopped && m.gen == gen }
	se := m.eng.Sim()
	if m.cfg.StabilizeEvery > 0 {
		se.EveryBg(m.cfg.StabilizeEvery, func(sim.Time) bool {
			if !alive() {
				return false
			}
			m.eng.Ring().TickStabilize()
			return true
		})
	}
	if m.cfg.Rates.Enabled() {
		se.EveryBg(m.cfg.Interval, func(sim.Time) bool {
			if !alive() {
				return false
			}
			m.step()
			return true
		})
	}
}

// Stop cancels the periodic work at its next firing. The manager can
// be restarted: Start (or the next explicit membership call) registers
// fresh series.
func (m *Manager) Stop() {
	m.stopped = true
	m.started = false
}

// step runs one rate-mode trial per event class. The three draws
// happen in a fixed order on the private source, so a seed fixes the
// whole churn history.
func (m *Manager) step() {
	p := func(rate float64) float64 {
		pr := rate * float64(m.cfg.Interval) / 1000
		if pr > 1 {
			pr = 1
		}
		return pr
	}
	if m.rng.Float64() < p(m.cfg.Rates.JoinRate) {
		m.tryJoin()
	}
	if m.rng.Float64() < p(m.cfg.Rates.LeaveRate) {
		if v := m.victim(); v != nil {
			m.Leave(v)
		}
	}
	if m.rng.Float64() < p(m.cfg.Rates.CrashRate) {
		if v := m.victim(); v != nil {
			m.Crash(v)
		}
	}
}

func (m *Manager) tryJoin() {
	if m.cfg.MaxNodes > 0 && m.eng.Ring().Size() >= m.cfg.MaxNodes {
		m.Stats.Skipped++
		return
	}
	if _, err := m.Join(); err != nil {
		m.Stats.Skipped++
	}
}

// victim picks a random alive node, or nil when the ring is at its
// MinNodes floor.
func (m *Manager) victim() *chord.Node {
	nodes := m.eng.Ring().Nodes()
	if len(nodes) <= m.cfg.MinNodes {
		m.Stats.Skipped++
		return nil
	}
	return nodes[m.rng.Intn(len(nodes))]
}

// ensureStarted lazily activates the periodic maintenance loops the
// first time membership actually changes, so a network that stays
// static pays nothing for them.
func (m *Manager) ensureStarted() {
	if !m.started {
		m.Start()
	}
}

// Join adds one node at a pseudo-random unoccupied identifier and
// hands it the stored state of its new arc.
func (m *Manager) Join() (*chord.Node, error) {
	m.ensureStarted()
	for attempt := 0; attempt < 64; attempt++ {
		n, err := m.eng.JoinNode(id.ID(m.rng.Uint64()))
		if err == nil {
			m.Stats.Joins++
			m.settle()
			return n, nil
		}
	}
	return nil, fmt.Errorf("churn: could not find a free identifier")
}

// Leave removes the node gracefully, draining its state to its
// successor first.
func (m *Manager) Leave(n *chord.Node) error {
	m.ensureStarted()
	if err := m.eng.LeaveNode(n); err != nil {
		return err
	}
	m.Stats.Leaves++
	m.settle()
	return nil
}

// Crash removes the node abruptly; its state is lost and the engine
// re-indexes what it can recover.
func (m *Manager) Crash(n *chord.Node) error {
	m.ensureStarted()
	if err := m.eng.CrashNode(n); err != nil {
		return err
	}
	m.Stats.Crashes++
	m.settle()
	return nil
}

// settle runs one incremental stabilization round right after a
// membership change — the burst of maintenance neighbours perform when
// they notice a change — so routing re-converges even when the
// periodic loop is not running.
func (m *Manager) settle() {
	m.eng.Ring().TickStabilize()
}

// Schedule replays a precomputed churn trace: each event fires as a
// background simulation event at its timestamp. Events beyond the last
// foreground work only fire when the clock is advanced explicitly
// (RunUntil/RunFor). Victim and identifier selection still draw from
// the manager's private source at fire time.
func (m *Manager) Schedule(trace []workload.ChurnEvent) {
	se := m.eng.Sim()
	for _, ev := range trace {
		kind := ev.Kind
		se.AtBg(sim.Time(ev.At), func(sim.Time) {
			if m.stopped {
				return
			}
			switch kind {
			case workload.ChurnJoin:
				m.tryJoin()
			case workload.ChurnLeave:
				if v := m.victim(); v != nil {
					m.Leave(v)
				}
			case workload.ChurnCrash:
				if v := m.victim(); v != nil {
					m.Crash(v)
				}
			}
		})
	}
}
