// Package refeval is a centralized reference evaluator for continuous
// multi-way joins, used by tests to check RJoin's formal properties
// (soundness, eventual completeness, no accidental duplicates —
// Section 4). It brute-forces Definition 1: the answer to query q over
// a published stream is the bag of rows produced by combinations of
// tuples, one per FROM relation, all published at or after the query's
// insertion time, satisfying every conjunct of the where clause.
//
// For window queries two semantics are provided, bracketing RJoin's
// operational rules (Section 5): the span semantics (all tuples of a
// combination fall within one window of each other) is a lower bound on
// what RJoin delivers under in-order arrival, and the anchor semantics
// (all tuples within one window of some anchor tuple) is an upper
// bound.
package refeval

import (
	"sort"
	"strings"

	"rjoin/internal/query"
	"rjoin/internal/relation"
)

// Row is one answer row.
type Row []relation.Value

// Key renders a canonical comparison key.
func (r Row) Key() string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(v.String())
		b.WriteByte('\x00')
	}
	return b.String()
}

// windowMode selects how window constraints are checked.
type windowMode uint8

const (
	windowIgnore windowMode = iota
	windowSpan
	windowAnchor
)

// Evaluate returns the full answer bag of q over the given published
// tuples, ignoring window restrictions.
func Evaluate(q *query.Query, tuples []*relation.Tuple) []Row {
	rows, _ := evaluate(q, tuples, windowIgnore, false)
	return rows
}

// EvaluateSpan returns the answer bag under span window semantics: a
// combination qualifies if max(clock)-min(clock)+1 <= window size (for
// tumbling windows: all clocks share an epoch).
func EvaluateSpan(q *query.Query, tuples []*relation.Tuple) []Row {
	rows, _ := evaluate(q, tuples, windowSpan, false)
	return rows
}

// EvaluateAnchor returns the answer bag under anchor window semantics:
// a combination qualifies if some member tuple is within one window of
// every other member.
func EvaluateAnchor(q *query.Query, tuples []*relation.Tuple) []Row {
	rows, _ := evaluate(q, tuples, windowAnchor, false)
	return rows
}

// EvaluateSpanClocked returns the span-semantics answer bag together
// with each row's completion clock — the maximum window-clock over the
// combination's tuples, the value the aggregation subsystem assigns
// epochs by. For unwindowed queries span semantics places no
// restriction and the clock is the maximum publication time. For 2-way
// joins span and anchor semantics coincide with RJoin's operational
// window rules, which is what makes this the aggregation exactness
// reference.
func EvaluateSpanClocked(q *query.Query, tuples []*relation.Tuple) ([]Row, []int64) {
	return evaluate(q, tuples, windowSpan, true)
}

func evaluate(q *query.Query, tuples []*relation.Tuple, mode windowMode, clocked bool) ([]Row, []int64) {
	// Bucket usable tuples per relation.
	byRel := make(map[string][]*relation.Tuple)
	for _, t := range tuples {
		if q.OneTime {
			// One-time queries see the snapshot at submission.
			if t.PubTime > q.InsertTime {
				continue
			}
		} else if t.PubTime < q.InsertTime {
			continue
		}
		byRel[t.Relation()] = append(byRel[t.Relation()], t)
	}
	var out []Row
	var clocks []int64
	combo := make(map[string]*relation.Tuple, len(q.Relations))
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Relations) {
			if !windowOK(q, combo, mode) {
				return
			}
			out = append(out, materialize(q, combo))
			if clocked {
				var c int64
				for _, t := range combo {
					if cl := q.Window.Clock(t); cl > c {
						c = cl
					}
				}
				clocks = append(clocks, c)
			}
			return
		}
		rel := q.Relations[i]
		for _, t := range byRel[rel] {
			if !tupleOK(q, combo, t) {
				continue
			}
			combo[rel] = t
			rec(i + 1)
			delete(combo, rel)
		}
	}
	rec(0)
	return out, clocks
}

// tupleOK checks every conjunct of q that is fully bound once t joins
// the partial combination.
func tupleOK(q *query.Query, combo map[string]*relation.Tuple, t *relation.Tuple) bool {
	rel := t.Relation()
	for _, s := range q.Selections {
		if s.Col.Rel != rel {
			continue
		}
		v, ok := t.Value(s.Col.Attr)
		if !ok || !v.Equal(s.Val) {
			return false
		}
	}
	lookup := func(c query.ColRef) (relation.Value, bool) {
		if c.Rel == rel {
			return t.Value(c.Attr)
		}
		if bt, ok := combo[c.Rel]; ok {
			return bt.Value(c.Attr)
		}
		return relation.Value{}, false
	}
	for _, j := range q.Joins {
		if j.Left.Rel != rel && j.Right.Rel != rel {
			continue
		}
		lv, lok := lookup(j.Left)
		rv, rok := lookup(j.Right)
		if lok && rok && !lv.Equal(rv) {
			return false
		}
	}
	return true
}

func windowOK(q *query.Query, combo map[string]*relation.Tuple, mode windowMode) bool {
	if mode == windowIgnore || !q.Window.Enabled() {
		return true
	}
	clocks := make([]int64, 0, len(combo))
	for _, t := range combo {
		clocks = append(clocks, q.Window.Clock(t))
	}
	switch mode {
	case windowSpan:
		if q.Window.Tumbling {
			for _, c := range clocks[1:] {
				if !q.Window.Valid(clocks[0], c) {
					return false
				}
			}
			return true
		}
		mn, mx := clocks[0], clocks[0]
		for _, c := range clocks[1:] {
			if c < mn {
				mn = c
			}
			if c > mx {
				mx = c
			}
		}
		return mx-mn+1 <= q.Window.Size
	default: // windowAnchor
		for _, anchor := range clocks {
			ok := true
			for _, c := range clocks {
				if !q.Window.Valid(anchor, c) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
}

func materialize(q *query.Query, combo map[string]*relation.Tuple) Row {
	row := make(Row, len(q.Select))
	for i, s := range q.Select {
		if s.IsConst {
			row[i] = s.Const
			continue
		}
		t := combo[s.Col.Rel]
		v, _ := t.Value(s.Col.Attr)
		row[i] = v
	}
	return row
}

// Distinct collapses a bag to set semantics, keeping first occurrences
// in order.
func Distinct(rows []Row) []Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// SortedKeys renders a bag as a sorted multiset of canonical keys,
// convenient for bag comparison in tests.
func SortedKeys(rows []Row) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = r.Key()
	}
	sort.Strings(keys)
	return keys
}

// EqualBags reports whether two answer bags contain the same rows with
// the same multiplicities.
func EqualBags(a, b []Row) bool {
	ka, kb := SortedKeys(a), SortedKeys(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// SubBag reports whether bag a is contained in bag b (respecting
// multiplicity).
func SubBag(a, b []Row) bool {
	count := make(map[string]int)
	for _, k := range SortedKeys(b) {
		count[k]++
	}
	for _, k := range SortedKeys(a) {
		count[k]--
		if count[k] < 0 {
			return false
		}
	}
	return true
}
