package refeval

import (
	"testing"

	"rjoin/internal/query"
	"rjoin/internal/relation"
)

var (
	schR = relation.MustSchema("R", "A", "B")
	schS = relation.MustSchema("S", "A", "B")
	schT = relation.MustSchema("T", "A", "B")
)

func tup(s *relation.Schema, pub int64, vals ...int64) *relation.Tuple {
	vv := make([]relation.Value, len(vals))
	for i, v := range vals {
		vv[i] = relation.Int64(v)
	}
	t := relation.MustTuple(s, vv...)
	t.PubTime = pub
	t.PubSeq = pub
	return t
}

func twoWay() *query.Query {
	return &query.Query{
		Select:    []query.SelectItem{{Col: query.ColRef{Rel: "R", Attr: "B"}}, {Col: query.ColRef{Rel: "S", Attr: "B"}}},
		Relations: []string{"R", "S"},
		Joins:     []query.JoinCond{{Left: query.ColRef{Rel: "R", Attr: "A"}, Right: query.ColRef{Rel: "S", Attr: "A"}}},
	}
}

func TestEvaluateBasicJoin(t *testing.T) {
	q := twoWay()
	tuples := []*relation.Tuple{
		tup(schR, 1, 7, 10),
		tup(schS, 2, 7, 20),
		tup(schS, 3, 8, 30), // no partner
		tup(schR, 4, 7, 11), // second R row joins too
	}
	rows := Evaluate(q, tuples)
	if len(rows) != 2 {
		t.Fatalf("rows %v", rows)
	}
}

func TestEvaluateRespectsInsertTime(t *testing.T) {
	q := twoWay()
	q.InsertTime = 5
	tuples := []*relation.Tuple{
		tup(schR, 1, 7, 10), // too early
		tup(schS, 6, 7, 20),
		tup(schR, 7, 7, 11),
	}
	rows := Evaluate(q, tuples)
	if len(rows) != 1 || rows[0][0].Int != 11 {
		t.Fatalf("rows %v", rows)
	}
}

func TestEvaluateSelections(t *testing.T) {
	q := twoWay()
	q.Selections = []query.SelCond{{Col: query.ColRef{Rel: "S", Attr: "B"}, Val: relation.Int64(20)}}
	tuples := []*relation.Tuple{
		tup(schR, 1, 7, 10),
		tup(schS, 2, 7, 20),
		tup(schS, 3, 7, 21),
	}
	rows := Evaluate(q, tuples)
	if len(rows) != 1 || rows[0][1].Int != 20 {
		t.Fatalf("rows %v", rows)
	}
}

func TestEvaluateThreeWayChain(t *testing.T) {
	q := &query.Query{
		Select:    []query.SelectItem{{Col: query.ColRef{Rel: "T", Attr: "B"}}},
		Relations: []string{"R", "S", "T"},
		Joins: []query.JoinCond{
			{Left: query.ColRef{Rel: "R", Attr: "A"}, Right: query.ColRef{Rel: "S", Attr: "A"}},
			{Left: query.ColRef{Rel: "S", Attr: "B"}, Right: query.ColRef{Rel: "T", Attr: "A"}},
		},
	}
	tuples := []*relation.Tuple{
		tup(schR, 1, 5, 0),
		tup(schS, 2, 5, 9),
		tup(schT, 3, 9, 42),
		tup(schT, 4, 8, 43), // wrong join key
	}
	rows := Evaluate(q, tuples)
	if len(rows) != 1 || rows[0][0].Int != 42 {
		t.Fatalf("rows %v", rows)
	}
}

func TestWindowSemanticsSpanVsAnchor(t *testing.T) {
	q := &query.Query{
		Select:    []query.SelectItem{{Col: query.ColRef{Rel: "T", Attr: "B"}}},
		Relations: []string{"R", "S", "T"},
		Joins: []query.JoinCond{
			{Left: query.ColRef{Rel: "R", Attr: "A"}, Right: query.ColRef{Rel: "S", Attr: "A"}},
			{Left: query.ColRef{Rel: "S", Attr: "A"}, Right: query.ColRef{Rel: "T", Attr: "A"}},
		},
		Window: query.WindowSpec{Kind: query.WindowTuples, Size: 10},
	}
	// Clocks 1, 10, 19: span 19 > 10 (span rejects), but anchored at 10
	// both others are within the window (anchor accepts).
	tuples := []*relation.Tuple{
		tup(schR, 10, 5, 0),
		tup(schS, 1, 5, 0),
		tup(schT, 19, 5, 7),
	}
	if rows := EvaluateSpan(q, tuples); len(rows) != 0 {
		t.Fatalf("span accepted %v", rows)
	}
	if rows := EvaluateAnchor(q, tuples); len(rows) != 1 {
		t.Fatalf("anchor rejected: %v", rows)
	}
	// Tight clocks: both accept.
	tight := []*relation.Tuple{
		tup(schR, 10, 5, 0), tup(schS, 11, 5, 0), tup(schT, 12, 5, 7),
	}
	if len(EvaluateSpan(q, tight)) != 1 || len(EvaluateAnchor(q, tight)) != 1 {
		t.Fatal("tight combo rejected")
	}
}

func TestEvaluateIgnoresWindowByDefault(t *testing.T) {
	q := twoWay()
	q.Window = query.WindowSpec{Kind: query.WindowTuples, Size: 2}
	tuples := []*relation.Tuple{tup(schR, 1, 7, 10), tup(schS, 100, 7, 20)}
	if len(Evaluate(q, tuples)) != 1 {
		t.Fatal("Evaluate must ignore windows")
	}
	if len(EvaluateSpan(q, tuples)) != 0 {
		t.Fatal("EvaluateSpan must enforce windows")
	}
}

func TestDistinct(t *testing.T) {
	rows := []Row{
		{relation.Int64(1)}, {relation.Int64(2)}, {relation.Int64(1)},
	}
	d := Distinct(rows)
	if len(d) != 2 {
		t.Fatalf("distinct %v", d)
	}
}

func TestEqualAndSubBags(t *testing.T) {
	a := []Row{{relation.Int64(1)}, {relation.Int64(2)}}
	b := []Row{{relation.Int64(2)}, {relation.Int64(1)}}
	c := []Row{{relation.Int64(1)}, {relation.Int64(1)}}
	if !EqualBags(a, b) {
		t.Fatal("order must not matter")
	}
	if EqualBags(a, c) {
		t.Fatal("multiplicity must matter")
	}
	if !SubBag(a[:1], a) || SubBag(c, a) {
		t.Fatal("SubBag wrong")
	}
	if !SubBag(nil, a) || SubBag(a, nil) {
		t.Fatal("empty-bag cases wrong")
	}
}

func TestRowKeyDistinguishesBoundaries(t *testing.T) {
	// ("ab","c") must differ from ("a","bc").
	a := Row{relation.String64("ab"), relation.String64("c")}
	b := Row{relation.String64("a"), relation.String64("bc")}
	if a.Key() == b.Key() {
		t.Fatal("row key ambiguous")
	}
}

func TestTumblingSpanSemantics(t *testing.T) {
	q := twoWay()
	q.Window = query.WindowSpec{Kind: query.WindowTuples, Size: 10, Tumbling: true}
	sameEpoch := []*relation.Tuple{tup(schR, 11, 7, 10), tup(schS, 19, 7, 20)}
	crossEpoch := []*relation.Tuple{tup(schR, 19, 7, 10), tup(schS, 21, 7, 20)}
	if len(EvaluateSpan(q, sameEpoch)) != 1 {
		t.Fatal("same-epoch combo rejected")
	}
	if len(EvaluateSpan(q, crossEpoch)) != 0 {
		t.Fatal("cross-epoch combo accepted")
	}
}
