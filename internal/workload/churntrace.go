package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ChurnKind is one class of membership event.
type ChurnKind uint8

const (
	// ChurnJoin adds a node at a fresh identifier.
	ChurnJoin ChurnKind = iota
	// ChurnLeave removes a node gracefully (state handover).
	ChurnLeave
	// ChurnCrash removes a node abruptly (state loss).
	ChurnCrash
)

// String implements fmt.Stringer.
func (k ChurnKind) String() string {
	switch k {
	case ChurnJoin:
		return "join"
	case ChurnLeave:
		return "leave"
	case ChurnCrash:
		return "crash"
	default:
		return "unknown"
	}
}

// ChurnEvent is one scheduled membership change of a churn trace.
type ChurnEvent struct {
	At   int64 // virtual time in ticks
	Kind ChurnKind
}

// ChurnConfig describes a churn workload by its event rates, expressed
// as expected events per 1000 ticks of virtual time — the natural unit
// for comparing against message delays of a few ticks. Zero rates
// disable the corresponding event class.
type ChurnConfig struct {
	JoinRate  float64
	LeaveRate float64
	CrashRate float64
}

// Enabled reports whether the config produces any events at all.
func (c ChurnConfig) Enabled() bool {
	return c.JoinRate > 0 || c.LeaveRate > 0 || c.CrashRate > 0
}

// Validate rejects negative rates.
func (c ChurnConfig) Validate() error {
	if c.JoinRate < 0 || c.LeaveRate < 0 || c.CrashRate < 0 {
		return fmt.Errorf("workload: negative churn rate %+v", c)
	}
	return nil
}

// ChurnTrace draws a deterministic membership-event schedule over
// [0, horizon): each event class arrives as a Poisson process at its
// configured rate (exponential inter-arrival times), the standard
// session-time model of DHT churn studies. The merged trace is sorted
// by time, with ties broken join < leave < crash so replays are exact.
func ChurnTrace(cfg ChurnConfig, horizon int64, seed int64) ([]ChurnEvent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if horizon < 0 {
		return nil, fmt.Errorf("workload: negative churn horizon %d", horizon)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []ChurnEvent
	draw := func(kind ChurnKind, rate float64) {
		if rate <= 0 {
			return
		}
		mean := 1000.0 / rate // mean inter-arrival in ticks
		at := 0.0
		for {
			// Inverse-CDF exponential draw from the shared source, so
			// one seed fixes the whole trace.
			at += -mean * math.Log(1-rng.Float64())
			if int64(at) >= horizon {
				return
			}
			out = append(out, ChurnEvent{At: int64(at), Kind: kind})
		}
	}
	draw(ChurnJoin, cfg.JoinRate)
	draw(ChurnLeave, cfg.LeaveRate)
	draw(ChurnCrash, cfg.CrashRate)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Kind < out[j].Kind
	})
	return out, nil
}

// MustChurnTrace is ChurnTrace that panics on error.
func MustChurnTrace(cfg ChurnConfig, horizon int64, seed int64) []ChurnEvent {
	tr, err := ChurnTrace(cfg, horizon, seed)
	if err != nil {
		panic(err)
	}
	return tr
}
