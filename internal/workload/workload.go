// Package workload generates the paper's experimental workload
// (Section 8): a schema of 10 relations with 10 attributes each, value
// domains of 100 values, tuples drawn with a Zipf distribution both for
// the relation and for every attribute value (default θ = 0.9, "highly
// skewed"), and k-way chain-join queries whose adjacent joins share a
// relation, with relations and attributes chosen randomly.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"rjoin/internal/query"
	"rjoin/internal/relation"
)

// Zipf draws ranks from a Zipf distribution P(i) ∝ 1/(i+1)^θ over
// [0, n). θ = 0 is uniform; the paper's default is θ = 0.9. (The
// standard library's rand.Zipf requires s > 1, which cannot express the
// paper's θ < 1 range, so the CDF is computed directly.)
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes the distribution for n ranks with skew theta.
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf over empty domain")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Next draws one rank using the provided source.
func (z *Zipf) Next(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the domain size.
func (z *Zipf) N() int { return len(z.cdf) }

// Config describes a workload in the paper's terms.
type Config struct {
	Relations  int     // number of relations in the schema
	Attributes int     // attributes per relation
	Values     int     // value-domain size per attribute
	Theta      float64 // Zipf skew for relations and values
	JoinArity  int     // k in k-way join queries (k relations, k-1 joins)
}

// PaperConfig is the default workload of Section 8: 10 relations × 10
// attributes, 100 values, θ = 0.9, 4-way joins.
func PaperConfig() Config {
	return Config{Relations: 10, Attributes: 10, Values: 100, Theta: 0.9, JoinArity: 4}
}

// Generator produces tuples and queries deterministically from a seed.
type Generator struct {
	Cfg Config

	catalog *relation.Catalog
	schemas []*relation.Schema
	relZipf *Zipf
	valZipf *Zipf
	rng     *rand.Rand
}

// NewGenerator validates the config and builds the schema catalog with
// relations R0..R{n-1} and attributes A0..A{m-1}.
func NewGenerator(cfg Config, seed int64) (*Generator, error) {
	if cfg.Relations <= 0 || cfg.Attributes <= 0 || cfg.Values <= 0 {
		return nil, fmt.Errorf("workload: non-positive schema dimensions %+v", cfg)
	}
	if cfg.JoinArity < 2 || cfg.JoinArity > cfg.Relations {
		return nil, fmt.Errorf("workload: join arity %d outside [2, %d]", cfg.JoinArity, cfg.Relations)
	}
	g := &Generator{
		Cfg:     cfg,
		relZipf: NewZipf(cfg.Relations, cfg.Theta),
		valZipf: NewZipf(cfg.Values, cfg.Theta),
		rng:     rand.New(rand.NewSource(seed)),
	}
	attrs := make([]string, cfg.Attributes)
	for j := range attrs {
		attrs[j] = fmt.Sprintf("A%d", j)
	}
	g.schemas = make([]*relation.Schema, cfg.Relations)
	schemas := make([]*relation.Schema, cfg.Relations)
	for i := range schemas {
		s, err := relation.NewSchema(fmt.Sprintf("R%d", i), attrs...)
		if err != nil {
			return nil, err
		}
		g.schemas[i] = s
		schemas[i] = s
	}
	cat, err := relation.NewCatalog(schemas...)
	if err != nil {
		return nil, err
	}
	g.catalog = cat
	return g, nil
}

// MustGenerator is NewGenerator that panics on error.
func MustGenerator(cfg Config, seed int64) *Generator {
	g, err := NewGenerator(cfg, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Catalog returns the generated schema catalog.
func (g *Generator) Catalog() *relation.Catalog { return g.catalog }

// Rand exposes the generator's random source (the experiment harness
// also draws publisher/owner nodes from it for determinism).
func (g *Generator) Rand() *rand.Rand { return g.rng }

// Tuple draws one tuple: the relation by Zipf rank, then every
// attribute value by an independent Zipf draw over the value domain.
func (g *Generator) Tuple() *relation.Tuple {
	s := g.schemas[g.relZipf.Next(g.rng)]
	vals := make([]relation.Value, s.Arity())
	for i := range vals {
		vals[i] = relation.Int64(int64(g.valZipf.Next(g.rng)))
	}
	return relation.MustTuple(s, vals...)
}

// Query draws one k-way chain-join query: k distinct relations chosen
// uniformly at random, adjacent relations joined on randomly chosen
// attributes (so the where clause has the paper's shape
// "R.A = S.B and S.C = J.F and J.C = K.D"), selecting one attribute of
// the first and last relation.
func (g *Generator) Query() *query.Query {
	k := g.Cfg.JoinArity
	perm := g.rng.Perm(g.Cfg.Relations)[:k]
	rels := make([]string, k)
	for i, ri := range perm {
		rels[i] = g.schemas[ri].Relation
	}
	attr := func() string { return fmt.Sprintf("A%d", g.rng.Intn(g.Cfg.Attributes)) }
	q := &query.Query{
		Relations: rels,
		Select: []query.SelectItem{
			{Col: query.ColRef{Rel: rels[0], Attr: attr()}},
			{Col: query.ColRef{Rel: rels[k-1], Attr: attr()}},
		},
	}
	for i := 0; i+1 < k; i++ {
		q.Joins = append(q.Joins, query.JoinCond{
			Left:  query.ColRef{Rel: rels[i], Attr: attr()},
			Right: query.ColRef{Rel: rels[i+1], Attr: attr()},
		})
	}
	return q
}

// WindowQuery is Query with a window restriction attached.
func (g *Generator) WindowQuery(w query.WindowSpec) *query.Query {
	q := g.Query()
	q.Window = w
	return q
}

// GroupQuery draws one aggregate chain-join query: the same join shape
// as Query, grouped by the first relation's selected attribute and
// aggregating the last relation's with COUNT(*), SUM and MAX. It draws
// exactly Query's random numbers, so generator streams stay aligned
// across plain and aggregate workloads.
func (g *Generator) GroupQuery() *query.Query {
	q := g.Query()
	group := q.Select[0].Col
	arg := q.Select[1].Col
	q.Select = []query.SelectItem{
		{Col: group},
		{IsConst: true, Const: relation.Int64(1), Agg: query.AggCount, Star: true},
		{Col: arg, Agg: query.AggSum},
		{Col: arg, Agg: query.AggMax},
	}
	q.GroupBy = []query.ColRef{group}
	return q
}
