package workload

import (
	"math"
	"math/rand"
	"testing"

	"rjoin/internal/query"
)

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(10, 0)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next(rng)]++
	}
	for i, c := range counts {
		p := float64(c) / n
		if math.Abs(p-0.1) > 0.01 {
			t.Fatalf("theta=0 rank %d probability %.3f, want ~0.1", i, p)
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	z := NewZipf(100, 0.9)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 100)
	for i := 0; i < 200000; i++ {
		counts[z.Next(rng)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[50] {
		t.Fatalf("zipf not decreasing: c0=%d c10=%d c50=%d", counts[0], counts[10], counts[50])
	}
	// With θ=0.9 over 100 ranks, rank 0 should capture roughly 1/8 of
	// the mass (1 / (H_{100,0.9})).
	p0 := float64(counts[0]) / 200000
	if p0 < 0.08 || p0 > 0.20 {
		t.Fatalf("rank-0 probability %.3f outside plausible θ=0.9 range", p0)
	}
}

func TestZipfHigherThetaMoreSkew(t *testing.T) {
	rng1 := rand.New(rand.NewSource(3))
	rng2 := rand.New(rand.NewSource(3))
	lo, hi := NewZipf(100, 0.3), NewZipf(100, 0.9)
	var cLo, cHi int
	for i := 0; i < 100000; i++ {
		if lo.Next(rng1) == 0 {
			cLo++
		}
		if hi.Next(rng2) == 0 {
			cHi++
		}
	}
	if cHi <= cLo {
		t.Fatalf("θ=0.9 head count %d <= θ=0.3 head count %d", cHi, cLo)
	}
}

func TestZipfPanicsOnEmptyDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(0, 0.9)
}

func TestGeneratorConfigValidation(t *testing.T) {
	if _, err := NewGenerator(Config{Relations: 0, Attributes: 1, Values: 1, JoinArity: 2}, 1); err == nil {
		t.Fatal("zero relations accepted")
	}
	if _, err := NewGenerator(Config{Relations: 3, Attributes: 1, Values: 1, JoinArity: 5}, 1); err == nil {
		t.Fatal("arity above relation count accepted")
	}
	if _, err := NewGenerator(Config{Relations: 3, Attributes: 1, Values: 1, JoinArity: 1}, 1); err == nil {
		t.Fatal("arity 1 accepted")
	}
}

func TestGeneratedTuplesMatchSchema(t *testing.T) {
	g := MustGenerator(PaperConfig(), 7)
	for i := 0; i < 1000; i++ {
		tup := g.Tuple()
		if tup.Schema.Arity() != 10 {
			t.Fatalf("tuple arity %d", tup.Schema.Arity())
		}
		for _, v := range tup.Values {
			if v.Int < 0 || v.Int >= 100 {
				t.Fatalf("value %d outside domain", v.Int)
			}
		}
		if _, ok := g.Catalog().Schema(tup.Relation()); !ok {
			t.Fatalf("tuple of unknown relation %s", tup.Relation())
		}
	}
}

func TestGeneratedQueriesValid(t *testing.T) {
	for _, k := range []int{2, 4, 6, 8} {
		cfg := PaperConfig()
		cfg.JoinArity = k
		g := MustGenerator(cfg, 11)
		for i := 0; i < 500; i++ {
			q := g.Query()
			if err := q.Validate(g.Catalog()); err != nil {
				t.Fatalf("k=%d: generated invalid query %s: %v", k, q, err)
			}
			if len(q.Relations) != k || len(q.Joins) != k-1 {
				t.Fatalf("k=%d: got %d relations, %d joins", k, len(q.Relations), len(q.Joins))
			}
			// Chain property: adjacent joins share a relation.
			for j := 0; j+1 < len(q.Joins); j++ {
				if q.Joins[j].Right.Rel != q.Joins[j+1].Left.Rel {
					t.Fatalf("k=%d: joins not chained: %s", k, q)
				}
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := MustGenerator(PaperConfig(), 42)
	b := MustGenerator(PaperConfig(), 42)
	for i := 0; i < 100; i++ {
		if a.Tuple().String() != b.Tuple().String() {
			t.Fatal("same seed, different tuples")
		}
		if a.Query().String() != b.Query().String() {
			t.Fatal("same seed, different queries")
		}
	}
}

func TestWindowQueryCarriesSpec(t *testing.T) {
	g := MustGenerator(PaperConfig(), 1)
	w := query.WindowSpec{Kind: query.WindowTuples, Size: 100}
	q := g.WindowQuery(w)
	if q.Window != w {
		t.Fatalf("window %+v", q.Window)
	}
}

func TestRelationFrequencyFollowsZipf(t *testing.T) {
	g := MustGenerator(PaperConfig(), 5)
	counts := make(map[string]int)
	for i := 0; i < 50000; i++ {
		counts[g.Tuple().Relation()]++
	}
	if counts["R0"] <= counts["R5"] || counts["R5"] <= 0 {
		t.Fatalf("relation skew missing: R0=%d R5=%d", counts["R0"], counts["R5"])
	}
}
