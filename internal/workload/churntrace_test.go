package workload

import (
	"math"
	"testing"
)

func TestChurnTraceDeterministic(t *testing.T) {
	cfg := ChurnConfig{JoinRate: 5, LeaveRate: 3, CrashRate: 1}
	a := MustChurnTrace(cfg, 100000, 42)
	b := MustChurnTrace(cfg, 100000, 42)
	if len(a) == 0 {
		t.Fatal("trace empty at these rates")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed gave %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestChurnTraceSortedAndBounded(t *testing.T) {
	tr := MustChurnTrace(ChurnConfig{JoinRate: 10, LeaveRate: 10, CrashRate: 10}, 5000, 7)
	last := int64(-1)
	for _, ev := range tr {
		if ev.At < last {
			t.Fatalf("trace not time-sorted: %d after %d", ev.At, last)
		}
		if ev.At < 0 || ev.At >= 5000 {
			t.Fatalf("event at %d outside horizon", ev.At)
		}
		last = ev.At
	}
}

// Rates are per 1000 ticks: over a long horizon the per-kind counts
// must land near rate*horizon/1000.
func TestChurnTraceRates(t *testing.T) {
	cfg := ChurnConfig{JoinRate: 8, LeaveRate: 4, CrashRate: 2}
	horizon := int64(1 << 20)
	tr := MustChurnTrace(cfg, horizon, 11)
	counts := map[ChurnKind]float64{}
	for _, ev := range tr {
		counts[ev.Kind]++
	}
	expect := func(kind ChurnKind, rate float64) {
		want := rate * float64(horizon) / 1000
		got := counts[kind]
		if math.Abs(got-want) > 0.15*want {
			t.Errorf("%v: %v events, want ~%v", kind, got, want)
		}
	}
	expect(ChurnJoin, cfg.JoinRate)
	expect(ChurnLeave, cfg.LeaveRate)
	expect(ChurnCrash, cfg.CrashRate)
}

func TestChurnTraceValidation(t *testing.T) {
	if _, err := ChurnTrace(ChurnConfig{JoinRate: -1}, 100, 1); err == nil {
		t.Fatal("negative rate must be rejected")
	}
	if _, err := ChurnTrace(ChurnConfig{JoinRate: 1}, -5, 1); err == nil {
		t.Fatal("negative horizon must be rejected")
	}
	tr, err := ChurnTrace(ChurnConfig{}, 10000, 1)
	if err != nil || len(tr) != 0 {
		t.Fatalf("zero rates must give an empty trace, got %d events, err %v", len(tr), err)
	}
}
