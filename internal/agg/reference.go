package agg

import (
	"sort"

	"rjoin/internal/query"
	"rjoin/internal/relation"
)

// ViewRow is one entry of a query's aggregate view: the latest
// finalized aggregates of one group in one epoch. Group is the
// injective group-key encoding (GroupKey), so view rows sort and
// compare deterministically.
type ViewRow struct {
	Group string
	Epoch int64
	Row   []relation.Value
	// Lineage is the sorted union of the lineage of every answer row
	// folded into this view row — the contributing base tuples by
	// (publisher, pubSeq) with their rewrite hop nodes. Populated only
	// by the engine when provenance is enabled; Reference leaves it nil.
	Lineage []query.LineageStep
}

// SortViewRows orders view rows by (group key, epoch) — the canonical
// presentation order of an aggregate view.
func SortViewRows(rows []ViewRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Group != rows[j].Group {
			return rows[i].Group < rows[j].Group
		}
		return rows[i].Epoch < rows[j].Epoch
	})
}

// Reference computes the aggregate view of q from scratch, given the
// full answer multiset with per-row completion clocks — the centralized
// one-shot fold the distributed incremental machinery must equal. Tests
// feed it refeval's brute-forced answer bag.
func Reference(q *query.Query, rows [][]relation.Value, clocks []int64) []ViewRow {
	s := SpecOf(q)
	if s == nil {
		return nil
	}
	type bucket struct {
		group []relation.Value
		parts map[int64]*Partial
	}
	groups := make(map[string]*bucket)
	for i, row := range rows {
		gk := s.GroupKey(row)
		b, ok := groups[gk]
		if !ok {
			b = &bucket{group: s.GroupValues(row), parts: make(map[int64]*Partial)}
			groups[gk] = b
		}
		e := s.Window.EpochOf(clocks[i])
		p, ok := b.parts[e]
		if !ok {
			p = NewPartial(s)
			b.parts[e] = p
		}
		p.Add(s, row)
	}
	var out []ViewRow
	for gk, b := range groups {
		// A view row exists for every epoch holding rows; a sliding view
		// additionally has a row for the epoch after each occupied one
		// (windows ending there still see the previous epoch's rows).
		epochs := make(map[int64]bool, len(b.parts))
		for e := range b.parts {
			epochs[e] = true
			if s.Sliding() {
				epochs[e+1] = true
			}
		}
		for e := range epochs {
			parts := []*Partial{b.parts[e]}
			if s.Sliding() {
				parts = append(parts, b.parts[e-1])
			}
			out = append(out, ViewRow{Group: gk, Epoch: e, Row: s.FinalizeRow(b.group, parts...)})
		}
	}
	SortViewRows(out)
	return out
}
