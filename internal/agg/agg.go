// Package agg implements the in-network continuous-aggregation
// subsystem's data plane: the aggregate specification derived from a
// GROUP BY query, the mergeable per-(group, epoch) partial state
// aggregator nodes maintain, and the one-shot reference fold tests
// compare the distributed machinery against.
//
// Answer rows of an aggregate query are partitioned into epochs by
// their completion clock (the maximum window-clock over the combined
// tuples): unwindowed queries use the single epoch 0, windowed queries
// use epochs of one window length. Partials are mergeable — and kept
// per epoch rather than as one running value — because MIN and MAX are
// not invertible: a sliding view cannot subtract expired rows, so it
// merges the ring of epoch partials that overlap the window instead.
//
//   - Tumbling windows: every valid combination's tuples share one
//     epoch, so the per-epoch partial finalizes into exactly the
//     window's aggregate.
//   - Sliding windows: a window ending at clock c in epoch e spans at
//     most epochs e-1 and e, so the view row for epoch e merges those
//     two partials — the aggregate over every answer visible in some
//     window ending in that epoch.
//   - No window: one running aggregate per group in epoch 0.
package agg

import (
	"strconv"

	"rjoin/internal/query"
	"rjoin/internal/relation"
)

// Spec is the aggregation layout of one query, immutable after
// submission: which select positions are grouping columns and which
// carry which aggregate function.
type Spec struct {
	// Width is the select-list length (= answer-row length).
	Width int
	// Fns holds the aggregate function per position (AggNone for plain
	// group/constant positions).
	Fns []query.AggFunc
	// Distinct marks COUNT(DISTINCT col) positions.
	Distinct []bool
	// GroupPos lists the non-aggregate positions, in select order; the
	// values at these positions identify the row's group.
	GroupPos []int
	// Window is the query's window parameter block, which fixes the
	// epoch length and the sliding/tumbling finalization rule.
	Window query.WindowSpec
}

// SpecOf derives the aggregation spec of a validated aggregate query.
// It returns nil for non-aggregate queries.
func SpecOf(q *query.Query) *Spec {
	if !q.IsAggregate() {
		return nil
	}
	s := &Spec{
		Width:    len(q.Select),
		Fns:      make([]query.AggFunc, len(q.Select)),
		Distinct: make([]bool, len(q.Select)),
		Window:   q.Window,
	}
	for i, it := range q.Select {
		s.Fns[i] = it.Agg
		s.Distinct[i] = it.AggDistinct
		if it.Agg == query.AggNone {
			s.GroupPos = append(s.GroupPos, i)
		}
	}
	return s
}

// Sliding reports whether view rows merge adjacent epoch partials.
func (s *Spec) Sliding() bool { return s.Window.Enabled() && !s.Window.Tumbling }

// GroupKey renders the group identity of an answer row: the values at
// the grouping positions under the shared injective encoding
// (relation.AppendCanonical), so no choice of values can make two
// distinct groups collide.
func (s *Spec) GroupKey(row []relation.Value) string {
	var b []byte
	for _, i := range s.GroupPos {
		b = relation.AppendCanonical(b, row[i])
	}
	return string(b)
}

// GroupValues extracts (copies of) the grouping values of a row, in
// group-position order.
func (s *Spec) GroupValues(row []relation.Value) []relation.Value {
	out := make([]relation.Value, len(s.GroupPos))
	for k, i := range s.GroupPos {
		out[k] = row[i]
	}
	return out
}

// Less is the total order MIN/MAX aggregate under: integers before
// strings, then by value.
func Less(a, b relation.Value) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Kind == relation.KindInt {
		return a.Int < b.Int
	}
	return a.Str < b.Str
}

// colPartial is the per-position incremental state of one partial.
type colPartial struct {
	sum      int64                       // running sum of integer values (SUM, AVG)
	ints     int64                       // integer rows folded (AVG denominator)
	min, max relation.Value              // extrema under Less
	have     bool                        // min/max initialised
	distinct map[relation.Value]struct{} // COUNT(DISTINCT) memory
}

// Partial is the mergeable aggregate state of one (group, epoch): a row
// count plus per-position column state. Partials move between nodes on
// membership handover and merge associatively, so any partition of an
// answer stream across aggregator incarnations folds to the same final
// values.
type Partial struct {
	rows int64
	cols []colPartial
}

// NewPartial returns the empty state for a spec.
func NewPartial(s *Spec) *Partial {
	return &Partial{cols: make([]colPartial, s.Width)}
}

// Rows returns how many answer rows this partial has folded in — the
// monotone version stamp aggregate-update messages carry so reordered
// deliveries cannot regress the subscriber's view.
func (p *Partial) Rows() int64 { return p.rows }

// Add folds one answer row into the partial.
func (p *Partial) Add(s *Spec, row []relation.Value) {
	p.rows++
	for i := range s.Fns {
		fn := s.Fns[i]
		if fn == query.AggNone {
			continue
		}
		c := &p.cols[i]
		v := row[i]
		switch fn {
		case query.AggCount:
			if s.Distinct[i] {
				if c.distinct == nil {
					c.distinct = make(map[relation.Value]struct{})
				}
				c.distinct[v] = struct{}{}
			}
		case query.AggSum, query.AggAvg:
			if v.Kind == relation.KindInt {
				c.sum += v.Int
				c.ints++
			}
		case query.AggMin, query.AggMax:
			if !c.have {
				c.min, c.max, c.have = v, v, true
			} else {
				if Less(v, c.min) {
					c.min = v
				}
				if Less(c.max, v) {
					c.max = v
				}
			}
		}
	}
}

// Clone returns a deep copy of the partial. The replication layer
// mirrors aggregator state across nodes; a mirror must own its partials
// outright, since the live copy keeps folding rows in.
func (p *Partial) Clone() *Partial {
	cp := &Partial{rows: p.rows, cols: make([]colPartial, len(p.cols))}
	copy(cp.cols, p.cols)
	for i := range cp.cols {
		if d := p.cols[i].distinct; d != nil {
			nd := make(map[relation.Value]struct{}, len(d))
			for v := range d {
				nd[v] = struct{}{}
			}
			cp.cols[i].distinct = nd
		}
	}
	return cp
}

// Merge folds another partial into p. Merging commutes and associates.
func (p *Partial) Merge(o *Partial) {
	p.rows += o.rows
	for i := range o.cols {
		oc := &o.cols[i]
		c := &p.cols[i]
		c.sum += oc.sum
		c.ints += oc.ints
		if oc.have {
			if !c.have {
				c.min, c.max, c.have = oc.min, oc.max, true
			} else {
				if Less(oc.min, c.min) {
					c.min = oc.min
				}
				if Less(c.max, oc.max) {
					c.max = oc.max
				}
			}
		}
		for v := range oc.distinct {
			if c.distinct == nil {
				c.distinct = make(map[relation.Value]struct{}, len(oc.distinct))
			}
			c.distinct[v] = struct{}{}
		}
	}
}

// FinalizeRow renders the aggregate view row of a group from one or
// more epoch partials (a sliding view passes the ring of overlapping
// epochs; nil entries are skipped): grouping positions carry the
// group's values, aggregate positions the finalized aggregates. An
// aggregate over zero contributing values (MIN/MAX/AVG with no rows at
// that position) renders the placeholder string "-".
func (s *Spec) FinalizeRow(group []relation.Value, parts ...*Partial) []relation.Value {
	merged := NewPartial(s)
	for _, p := range parts {
		if p != nil {
			merged.Merge(p)
		}
	}
	out := make([]relation.Value, s.Width)
	gi := 0
	for i := range s.Fns {
		c := &merged.cols[i]
		switch s.Fns[i] {
		case query.AggNone:
			out[i] = group[gi]
			gi++
		case query.AggCount:
			if s.Distinct[i] {
				out[i] = relation.Int64(int64(len(c.distinct)))
			} else {
				out[i] = relation.Int64(merged.rows)
			}
		case query.AggSum:
			out[i] = relation.Int64(c.sum)
		case query.AggMin:
			if !c.have {
				out[i] = relation.String64("-")
			} else {
				out[i] = c.min
			}
		case query.AggMax:
			if !c.have {
				out[i] = relation.String64("-")
			} else {
				out[i] = c.max
			}
		case query.AggAvg:
			if c.ints == 0 {
				out[i] = relation.String64("-")
			} else {
				out[i] = relation.String64(strconv.FormatFloat(
					float64(c.sum)/float64(c.ints), 'g', -1, 64))
			}
		}
	}
	return out
}

// MergedRows returns the version stamp of a view row built from the
// given partials: the total answer rows folded into them.
func MergedRows(parts ...*Partial) int64 {
	var n int64
	for _, p := range parts {
		if p != nil {
			n += p.rows
		}
	}
	return n
}
