package agg

import (
	"reflect"
	"testing"

	"rjoin/internal/query"
	"rjoin/internal/relation"
	"rjoin/internal/sqlparse"
)

func iv(v int64) relation.Value  { return relation.Int64(v) }
func sv(s string) relation.Value { return relation.String64(s) }

var testCat = func() *relation.Catalog {
	cat, _ := relation.NewCatalog(
		relation.MustSchema("R", "A", "B"),
		relation.MustSchema("S", "A", "B"),
	)
	return cat
}()

func parse(t *testing.T, sql string) *query.Query {
	t.Helper()
	return sqlparse.MustParse(sql, testCat)
}

func TestSpecOf(t *testing.T) {
	q := parse(t, "select R.A, count(*), sum(S.B), count(distinct S.B) from R,S where R.A=S.A group by R.A")
	s := SpecOf(q)
	if s == nil {
		t.Fatal("aggregate query produced no spec")
	}
	if s.Width != 4 || !reflect.DeepEqual(s.GroupPos, []int{0}) {
		t.Fatalf("bad spec: %+v", s)
	}
	if s.Fns[1] != query.AggCount || s.Fns[2] != query.AggSum || !s.Distinct[3] {
		t.Fatalf("bad fns: %+v", s)
	}
	if SpecOf(parse(t, "select R.A from R,S where R.A=S.A")) != nil {
		t.Fatal("plain query produced a spec")
	}
}

// Folding rows one at a time must equal folding them through merged
// partials split at every possible point — the property handover and
// sliding-ring merging rely on.
func TestPartialMergeAssociativity(t *testing.T) {
	q := parse(t, "select R.A, count(*), sum(S.B), min(S.B), max(S.B), avg(S.B), count(distinct S.B) from R,S where R.A=S.A group by R.A")
	s := SpecOf(q)
	rows := [][]relation.Value{
		{iv(1), iv(1), iv(5), iv(5), iv(5), iv(5), iv(5)},
		{iv(1), iv(1), iv(2), iv(2), iv(2), iv(2), iv(2)},
		{iv(1), iv(1), iv(9), iv(9), iv(9), iv(9), iv(9)},
		{iv(1), iv(1), iv(2), iv(2), iv(2), iv(2), iv(2)},
	}
	group := []relation.Value{iv(1)}

	whole := NewPartial(s)
	for _, r := range rows {
		whole.Add(s, r)
	}
	want := s.FinalizeRow(group, whole)

	for split := 0; split <= len(rows); split++ {
		a, b := NewPartial(s), NewPartial(s)
		for _, r := range rows[:split] {
			a.Add(s, r)
		}
		for _, r := range rows[split:] {
			b.Add(s, r)
		}
		a.Merge(b)
		if got := s.FinalizeRow(group, a); !reflect.DeepEqual(got, want) {
			t.Fatalf("split %d: merged fold diverged: got %v want %v", split, got, want)
		}
	}

	// count=4, sum=18, min=2, max=9, avg=4.5, distinct=3
	exp := []relation.Value{iv(1), iv(4), iv(18), iv(2), iv(9), sv("4.5"), iv(3)}
	if !reflect.DeepEqual(want, exp) {
		t.Fatalf("final row wrong: got %v want %v", want, exp)
	}
}

func TestGroupKeyInjective(t *testing.T) {
	q := parse(t, "select R.A, R.B, count(*) from R,S where R.A=S.A group by R.A, R.B")
	s := SpecOf(q)
	a := s.GroupKey([]relation.Value{sv("x\x00y"), sv("z"), iv(1)})
	b := s.GroupKey([]relation.Value{sv("x"), sv("\x00yz"), iv(1)})
	if a == b {
		t.Fatal("NUL-straddling groups collided")
	}
	c := s.GroupKey([]relation.Value{iv(12), sv("z"), iv(1)})
	d := s.GroupKey([]relation.Value{sv("12"), sv("z"), iv(1)})
	if c == d {
		t.Fatal("int 12 and string \"12\" groups collided")
	}
}

func TestValueOrder(t *testing.T) {
	if !Less(iv(3), iv(5)) || Less(iv(5), iv(3)) {
		t.Fatal("int order wrong")
	}
	if !Less(iv(99), sv("a")) {
		t.Fatal("ints must order before strings")
	}
	if !Less(sv("a"), sv("b")) {
		t.Fatal("string order wrong")
	}
}

// Reference: tumbling epochs finalize independently; sliding view rows
// merge the previous epoch's partial.
func TestReferenceEpochs(t *testing.T) {
	q := parse(t, "select R.A, max(S.B) from R,S where R.A=S.A group by R.A within 10 tuples tumbling")
	rows := [][]relation.Value{
		{iv(1), iv(5)},
		{iv(1), iv(7)},
		{iv(1), iv(3)},
	}
	clocks := []int64{2, 8, 15} // epochs 0, 0, 1
	view := Reference(q, rows, clocks)
	if len(view) != 2 {
		t.Fatalf("tumbling view rows: got %d want 2", len(view))
	}
	if view[0].Epoch != 0 || !view[0].Row[1].Equal(iv(7)) {
		t.Fatalf("epoch 0 row wrong: %+v", view[0])
	}
	if view[1].Epoch != 1 || !view[1].Row[1].Equal(iv(3)) {
		t.Fatalf("epoch 1 row wrong: %+v", view[1])
	}

	qs := parse(t, "select R.A, max(S.B) from R,S where R.A=S.A group by R.A within 10 tuples")
	slide := Reference(qs, rows, clocks)
	// Sliding: epochs 0, 1 (merging 0) and 2 (merging 1).
	if len(slide) != 3 {
		t.Fatalf("sliding view rows: got %d want 3", len(slide))
	}
	if slide[1].Epoch != 1 || !slide[1].Row[1].Equal(iv(7)) {
		t.Fatalf("sliding epoch 1 must merge epoch 0's max: %+v", slide[1])
	}
	if slide[2].Epoch != 2 || !slide[2].Row[1].Equal(iv(3)) {
		t.Fatalf("sliding epoch 2 row wrong: %+v", slide[2])
	}
}
