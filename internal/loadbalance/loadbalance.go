// Package loadbalance implements the identifier-movement load balancing
// the paper layers under RJoin in its Figure 9 experiment (Karger &
// Ruhl, "Simple Efficient Load Balancing Algorithms for Peer-to-Peer
// Systems", SPAA'04): a lightly loaded node changes its position on the
// identifier circle to split the arc of a heavily loaded node, taking
// over responsibility for part of its keys. The policy lives here; the
// mechanics (rejoining at a new identifier and re-homing stored state)
// are provided by the core engine's MoveNode.
package loadbalance

import (
	"sort"

	"rjoin/internal/chord"
	"rjoin/internal/core"
	"rjoin/internal/id"
)

// Balancer periodically rebalances stored occupancy across nodes by id
// movement.
type Balancer struct {
	// MovesPerRound bounds how many light nodes are relocated in one
	// Rebalance call (default 1/16 of the network).
	MovesPerRound int
	// Imbalance is the heavy/light occupancy ratio that justifies a
	// move (Karger–Ruhl uses a constant ε-fraction test; 4 keeps moves
	// rare and effective).
	Imbalance float64
}

// New returns a balancer with the default policy.
func New() *Balancer { return &Balancer{Imbalance: 4} }

// Rebalance performs one round: it pairs the most loaded nodes with the
// least loaded ones, and moves each light node to the midpoint of its
// heavy partner's arc so the heavy node sheds half its key range. It
// returns the number of id movements performed.
func (b *Balancer) Rebalance(eng *core.Engine) int {
	ring := eng.Ring()
	nodes := append([]*chord.Node(nil), ring.Nodes()...)
	if len(nodes) < 4 {
		return 0
	}
	moves := b.MovesPerRound
	if moves <= 0 {
		moves = len(nodes) / 16
		if moves == 0 {
			moves = 1
		}
	}
	imb := b.Imbalance
	if imb <= 1 {
		imb = 4
	}

	type loaded struct {
		n   *chord.Node
		occ int
	}
	byLoad := make([]loaded, len(nodes))
	for i, n := range nodes {
		byLoad[i] = loaded{n, eng.StoredOccupancy(n)}
	}
	sort.Slice(byLoad, func(i, j int) bool { return byLoad[i].occ > byLoad[j].occ })

	performed := 0
	for i := 0; i < moves && i < len(byLoad)/2; i++ {
		heavy := byLoad[i]
		light := byLoad[len(byLoad)-1-i]
		if heavy.occ < int(imb*float64(light.occ+1)) {
			break // remaining pairs are balanced enough
		}
		target, ok := splitPoint(heavy.n)
		if !ok {
			continue
		}
		if _, err := eng.MoveNode(light.n, target); err != nil {
			continue
		}
		performed++
	}
	return performed
}

// splitPoint returns the midpoint of the heavy node's arc
// (pred, heavy], the identifier at which a joining node takes over half
// the heavy node's key range.
func splitPoint(heavy *chord.Node) (id.ID, bool) {
	pred := heavy.Predecessor()
	if pred == nil || pred == heavy {
		return 0, false
	}
	span := id.Dist(pred.ID(), heavy.ID())
	if span < 2 {
		return 0, false
	}
	return pred.ID().Add(span / 2), true
}
