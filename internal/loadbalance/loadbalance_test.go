package loadbalance

import (
	"math/rand"
	"testing"

	"rjoin/internal/chord"
	"rjoin/internal/core"
	"rjoin/internal/id"
	"rjoin/internal/overlay"
	"rjoin/internal/refeval"
	"rjoin/internal/relation"
	"rjoin/internal/sim"
	"rjoin/internal/workload"
)

func buildEngine(t testing.TB, n int, seed int64) (*core.Engine, []*chord.Node) {
	t.Helper()
	ring := chord.NewRing()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for {
			if _, err := ring.Join(id.ID(rng.Uint64())); err == nil {
				break
			}
		}
	}
	ring.BuildPerfect()
	se := sim.NewEngine(seed)
	nw := overlay.MustNetwork(ring, se, overlay.DefaultConfig())
	eng := core.NewEngine(ring, se, nw, core.DefaultConfig())
	return eng, ring.Nodes()
}

// loadedEngine drives a skewed workload so occupancy concentrates.
func loadedEngine(t testing.TB, seed int64, nQ, nT int) (*core.Engine, *workload.Generator, []*chord.Node) {
	t.Helper()
	eng, nodes := buildEngine(t, 64, seed)
	wcfg := workload.Config{Relations: 6, Attributes: 4, Values: 10, Theta: 0.9, JoinArity: 3}
	gen := workload.MustGenerator(wcfg, seed)
	rng := rand.New(rand.NewSource(seed + 3))
	for i := 0; i < nQ; i++ {
		if _, err := eng.SubmitQuery(nodes[rng.Intn(len(nodes))], gen.Query()); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	for i := 0; i < nT; i++ {
		eng.PublishTuple(nodes[rng.Intn(len(nodes))], gen.Tuple())
		eng.Run()
	}
	return eng, gen, nodes
}

func maxOccupancy(eng *core.Engine) int {
	m := 0
	for _, n := range eng.Ring().Nodes() {
		if o := eng.StoredOccupancy(n); o > m {
			m = o
		}
	}
	return m
}

func TestRebalanceReducesMaxOccupancy(t *testing.T) {
	eng, _, _ := loadedEngine(t, 1, 200, 60)
	before := maxOccupancy(eng)
	b := New()
	moved := 0
	for i := 0; i < 4; i++ {
		moved += b.Rebalance(eng)
	}
	if moved == 0 {
		t.Fatal("no id movements performed on a skewed workload")
	}
	after := maxOccupancy(eng)
	if after >= before {
		t.Fatalf("max occupancy did not drop: before=%d after=%d", before, after)
	}
}

// TestRebalancePreservesCorrectness: answers after rebalancing match
// the reference — state handoff loses nothing.
func TestRebalancePreservesCorrectness(t *testing.T) {
	eng, nodes := buildEngine(t, 64, 7)
	wcfg := workload.Config{Relations: 3, Attributes: 3, Values: 3, Theta: 0.9, JoinArity: 2}
	gen := workload.MustGenerator(wcfg, 7)
	rng := rand.New(rand.NewSource(8))
	q := gen.Query()
	// Owner must keep its position so answers stay addressable; submit
	// from a node and never move it (the balancer may move others).
	owner := nodes[0]
	qid, err := eng.SubmitQuery(owner, q)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	q.InsertTime = 0
	b := New()
	b.MovesPerRound = 2
	var tuples []*relation.Tuple
	for i := 0; i < 50; i++ {
		tu := gen.Tuple()
		eng.PublishTuple(nodes[rng.Intn(len(nodes))], tu)
		eng.Run()
		tuples = append(tuples, tu)
		if i%10 == 9 {
			// The balancer moves light nodes and may pick the owner;
			// answers then go astray, which voids the scenario.
			b.Rebalance(eng)
			if eng.Ring().Node(owner.ID()) == nil {
				t.Skip("owner moved; scenario void for this seed")
			}
		}
	}
	want := refeval.Evaluate(q, tuples)
	got := make([]refeval.Row, 0)
	for _, a := range eng.Answers(qid) {
		got = append(got, refeval.Row(a.Values))
	}
	if !refeval.EqualBags(got, want) {
		t.Fatalf("rebalancing changed answers: got %d want %d", len(got), len(want))
	}
}

func TestRebalanceNoOpOnTinyRing(t *testing.T) {
	eng, _ := buildEngine(t, 3, 9)
	if New().Rebalance(eng) != 0 {
		t.Fatal("rebalanced a 3-node ring")
	}
}

func TestRebalanceSkipsBalancedNetwork(t *testing.T) {
	eng, _ := buildEngine(t, 32, 10)
	// No load at all: nothing to move.
	if n := New().Rebalance(eng); n != 0 {
		t.Fatalf("moved %d nodes in an idle network", n)
	}
}
