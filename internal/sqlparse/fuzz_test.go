package sqlparse

import "testing"

// FuzzParse asserts the parser's two structural guarantees on arbitrary
// input: Parse never panics, and the grammar round-trips — any query
// that parses renders (query.Query.String) to SQL that re-parses to a
// query with the identical rendering. The corpus seeds every clause
// the grammar has: windows, DISTINCT, aggregates, GROUP BY, quoted
// strings, negative integers and the error shapes nearby.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"select S.B from S where 3=S.A",
		"select R.B, S.B from R,S where R.A=S.A",
		"select distinct S.B from R,S where R.A=S.A",
		"select R.B, S.B from R,S where R.A=S.A within 40 tuples",
		"select R.B from R,S where R.A=S.A within 64 ticks tumbling",
		"select S.B from R,S where R.A=S.A once",
		"select 5, S.B from S,P where 3=S.A and S.B=P.B",
		"select 'x''y', S.B from S where S.A='a b'",
		"select -3 from R where R.A=-7",
		"select R.A, count(*) from R,S where R.A=S.A group by R.A",
		"select R.A, count(distinct S.B) from R,S where R.A=S.A group by R.A",
		"select R.A, sum(S.B), min(S.B), max(S.B), avg(S.B) from R,S where R.A=S.A group by R.A",
		"select R.A, R.B, count(*) from R,S where R.A=S.A group by R.A, R.B within 32 tuples",
		"select count(*) from R,S where R.A=S.A group by R.A within 8 ticks tumbling",
		"select count(S.B) from R,S where R.A=S.A",
		"select count( * ) from R",
		"select sum(*) from R",
		"select group.by from from",
		"select count(distinct) from R",
		"select R.A from R group by",
		"select",
		"'",
		"-",
		"select \x00 from R",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// No catalog: the fuzz target is the grammar, not schema
		// validation (which needs a consistent relation universe).
		q, err := Parse(src, nil)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered, nil)
		if err != nil {
			t.Fatalf("rendered SQL does not re-parse:\ninput    %q\nrendered %q\nerror    %v", src, rendered, err)
		}
		if again := q2.String(); again != rendered {
			t.Fatalf("rendering is not a fixed point:\ninput  %q\nfirst  %q\nsecond %q", src, rendered, again)
		}
	})
}
