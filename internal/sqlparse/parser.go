package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"rjoin/internal/query"
	"rjoin/internal/relation"
)

// Parse turns SQL text into a query.Query and validates it against the
// catalog. The returned query has no ID/Owner/InsertTime yet — the
// engine assigns those at submission.
func Parse(src string, cat *relation.Catalog) (*query.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if cat != nil {
		if err := q.Validate(cat); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// MustParse is Parse that panics on error, for tests and generators.
func MustParse(src string, cat *relation.Catalog) *query.Query {
	q, err := Parse(src, cat)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }

// peek2 returns the token after the next one (EOF when input ends).
func (p *parser) peek2() token {
	if p.i+1 >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.i+1]
}

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlparse: %s (at offset %d in %q)",
		fmt.Sprintf(format, args...), p.peek().pos, p.src)
}

// keyword consumes the next token if it is the given keyword
// (case-insensitive) and reports whether it did.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %s, found %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

var reservedWords = map[string]bool{
	"select": true, "distinct": true, "from": true, "where": true,
	"and": true, "within": true, "tuples": true, "ticks": true,
	"tumbling": true, "once": true, "group": true, "by": true,
}

// aggFuncs maps function names to their AggFunc; function names are not
// reserved words — "count" only acts as one when followed by '('.
var aggFuncs = map[string]query.AggFunc{
	"count": query.AggCount,
	"sum":   query.AggSum,
	"min":   query.AggMin,
	"max":   query.AggMax,
	"avg":   query.AggAvg,
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %s", t)
	}
	if reservedWords[strings.ToLower(t.text)] {
		return "", p.errf("reserved word %q used as identifier", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseQuery() (*query.Query, error) {
	q := &query.Query{}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q.Distinct = p.keyword("distinct")

	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		rel, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		q.Relations = append(q.Relations, rel)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}

	if p.keyword("where") {
		for {
			if err := p.parseConjunct(q); err != nil {
				return nil, err
			}
			if !p.keyword("and") {
				break
			}
		}
	}

	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}

	if p.keyword("once") {
		q.OneTime = true
	}
	if p.keyword("within") {
		if err := p.parseWindow(q); err != nil {
			return nil, err
		}
	}

	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf("trailing input starting with %s", t)
	}
	if len(q.Select) == 0 {
		return nil, p.errf("empty select list")
	}
	return q, nil
}

func (p *parser) parseSelectItem() (query.SelectItem, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return query.SelectItem{}, p.errf("bad integer %q", t.text)
		}
		return query.SelectItem{IsConst: true, Const: relation.Int64(n)}, nil
	case tokString:
		p.next()
		return query.SelectItem{IsConst: true, Const: relation.String64(t.text)}, nil
	case tokIdent:
		if fn, ok := aggFuncs[strings.ToLower(t.text)]; ok && p.peek2().kind == tokLParen {
			return p.parseAggregate(fn)
		}
		col, err := p.parseColRef()
		if err != nil {
			return query.SelectItem{}, err
		}
		return query.SelectItem{Col: col}, nil
	default:
		return query.SelectItem{}, p.errf("expected select item, found %s", t)
	}
}

// parseAggregate parses fn(...) with the function-name token still
// pending: COUNT(*), COUNT([DISTINCT] col), SUM/MIN/MAX/AVG(col).
func (p *parser) parseAggregate(fn query.AggFunc) (query.SelectItem, error) {
	p.next() // function name
	p.next() // '('
	item := query.SelectItem{Agg: fn}
	switch {
	case p.peek().kind == tokStar:
		if fn != query.AggCount {
			return query.SelectItem{}, p.errf("%s(*) is not supported (only COUNT(*))", fn)
		}
		p.next()
		// COUNT(*) needs no argument; the constant 1 rides in the row.
		item.IsConst = true
		item.Const = relation.Int64(1)
		item.Star = true
	default:
		if p.keyword("distinct") {
			if fn != query.AggCount {
				return query.SelectItem{}, p.errf("DISTINCT inside %s (only COUNT(DISTINCT col))", fn)
			}
			item.AggDistinct = true
		}
		col, err := p.parseColRef()
		if err != nil {
			return query.SelectItem{}, err
		}
		item.Col = col
	}
	if p.peek().kind != tokRParen {
		return query.SelectItem{}, p.errf("expected ')' closing %s(, found %s", fn, p.peek())
	}
	p.next()
	return item, nil
}

func (p *parser) parseColRef() (query.ColRef, error) {
	rel, err := p.expectIdent()
	if err != nil {
		return query.ColRef{}, err
	}
	if p.peek().kind != tokDot {
		return query.ColRef{}, p.errf("expected '.' after relation name %q", rel)
	}
	p.next()
	attr, err := p.expectIdent()
	if err != nil {
		return query.ColRef{}, err
	}
	return query.ColRef{Rel: rel, Attr: attr}, nil
}

// term is either a column reference or a constant.
type term struct {
	isConst bool
	val     relation.Value
	col     query.ColRef
}

func (p *parser) parseTerm() (term, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return term{}, p.errf("bad integer %q", t.text)
		}
		return term{isConst: true, val: relation.Int64(n)}, nil
	case tokString:
		p.next()
		return term{isConst: true, val: relation.String64(t.text)}, nil
	case tokIdent:
		col, err := p.parseColRef()
		if err != nil {
			return term{}, err
		}
		return term{col: col}, nil
	default:
		return term{}, p.errf("expected column or constant, found %s", t)
	}
}

func (p *parser) parseConjunct(q *query.Query) error {
	left, err := p.parseTerm()
	if err != nil {
		return err
	}
	if p.peek().kind != tokEquals {
		return p.errf("expected '=', found %s", p.peek())
	}
	p.next()
	right, err := p.parseTerm()
	if err != nil {
		return err
	}
	switch {
	case !left.isConst && !right.isConst:
		q.Joins = append(q.Joins, query.JoinCond{Left: left.col, Right: right.col})
	case left.isConst && !right.isConst:
		q.Selections = append(q.Selections, query.SelCond{Col: right.col, Val: left.val})
	case !left.isConst && right.isConst:
		q.Selections = append(q.Selections, query.SelCond{Col: left.col, Val: right.val})
	default:
		return p.errf("constant = constant conjunct is not a join or selection")
	}
	return nil
}

func (p *parser) parseWindow(q *query.Query) error {
	t := p.peek()
	if t.kind != tokNumber {
		return p.errf("expected window size after WITHIN, found %s", t)
	}
	p.next()
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil || n <= 0 {
		return p.errf("window size must be a positive integer, got %q", t.text)
	}
	switch {
	case p.keyword("tuples"):
		q.Window = query.WindowSpec{Kind: query.WindowTuples, Size: n}
	case p.keyword("ticks"):
		q.Window = query.WindowSpec{Kind: query.WindowTime, Size: n}
	default:
		return p.errf("expected TUPLES or TICKS after window size, found %s", p.peek())
	}
	if p.keyword("tumbling") {
		q.Window.Tumbling = true
	}
	return nil
}
