// Package sqlparse implements the SQL subset the paper's continuous
// queries are written in:
//
//	SELECT [DISTINCT] item, ...
//	FROM Rel, ...
//	[WHERE term = term AND ...]
//	[GROUP BY Rel.Attr, ...]
//	[WITHIN n TUPLES|TICKS [TUMBLING]]
//
// where an item or term is a column reference Rel.Attr, an integer, or
// a single-quoted string. A select item may also be an aggregate:
// COUNT(*), COUNT(col), COUNT(DISTINCT col), SUM(col), MIN(col),
// MAX(col) or AVG(col); aggregate queries feed the in-network
// aggregation subsystem (internal/agg). The WITHIN clause expresses the
// window parameters of Section 5 (the paper introduces them as
// out-of-band query parameters; surfacing them as syntax keeps examples
// runnable as plain text).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokEquals
	tokStar
	tokLParen
	tokRParen
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex splits src into tokens. Identifiers keep their case; keyword
// comparison downstream is case-insensitive.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == ',':
			l.emit(tokComma, ",")
		case c == '.':
			l.emit(tokDot, ".")
		case c == '=':
			l.emit(tokEquals, "=")
		case c == '*':
			l.emit(tokStar, "*")
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '-' || (c >= '0' && c <= '9'):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, l.pos)
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
	return l.tokens, nil
}

func (l *lexer) emit(k tokenKind, text string) {
	l.tokens = append(l.tokens, token{kind: k, text: text, pos: l.pos})
	l.pos += len(text)
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote inside the string.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated string starting at offset %d", start)
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
		if l.pos >= len(l.src) || l.src[l.pos] < '0' || l.src[l.pos] > '9' {
			return fmt.Errorf("sqlparse: dangling '-' at offset %d", start)
		}
	}
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			l.pos++
			continue
		}
		break
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}
