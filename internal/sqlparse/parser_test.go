package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"

	"rjoin/internal/query"
	"rjoin/internal/relation"
)

func testCatalog() *relation.Catalog {
	cat, _ := relation.NewCatalog(
		relation.MustSchema("R", "A", "B", "C"),
		relation.MustSchema("S", "A", "B", "C"),
		relation.MustSchema("J", "A", "B", "C"),
		relation.MustSchema("M", "A", "B", "C"),
	)
	return cat
}

func TestParseFigure1Query(t *testing.T) {
	q, err := Parse(
		"Select S.B, M.A From R,S,J,M Where R.A=S.A AND S.B=J.B AND J.C=M.C",
		testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 2 || q.Select[0].Col != (query.ColRef{Rel: "S", Attr: "B"}) {
		t.Fatalf("select list %v", q.Select)
	}
	if len(q.Relations) != 4 || len(q.Joins) != 3 || len(q.Selections) != 0 {
		t.Fatalf("clauses: rel=%d joins=%d sels=%d", len(q.Relations), len(q.Joins), len(q.Selections))
	}
	if q.Distinct {
		t.Fatal("spurious DISTINCT")
	}
}

func TestParseRewrittenStyleQuery(t *testing.T) {
	// The paper writes rewritten queries with constants in the select
	// list and value-first selections: "select 6, M.A from J,M where
	// 6=J.B and J.C=M.C".
	q, err := Parse("select 6, M.A from J,M where 6=J.B and J.C=M.C", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if !q.Select[0].IsConst || q.Select[0].Const.Int != 6 {
		t.Fatalf("constant select item not parsed: %v", q.Select[0])
	}
	if len(q.Selections) != 1 || q.Selections[0].Val.Int != 6 || q.Selections[0].Col.Rel != "J" {
		t.Fatalf("selection not parsed: %v", q.Selections)
	}
}

func TestParseSelectionOnRightSide(t *testing.T) {
	q, err := Parse("select R.A from R,S where R.A=S.A and S.B=7", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Selections) != 1 || q.Selections[0].Col != (query.ColRef{Rel: "S", Attr: "B"}) {
		t.Fatalf("selections %v", q.Selections)
	}
}

func TestParseDistinct(t *testing.T) {
	q, err := Parse("select distinct R.A, S.B from R,S where R.A=S.A", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct {
		t.Fatal("DISTINCT not parsed")
	}
}

func TestParseWindows(t *testing.T) {
	cases := []struct {
		src  string
		want query.WindowSpec
	}{
		{"select R.A from R,S where R.A=S.A within 100 tuples",
			query.WindowSpec{Kind: query.WindowTuples, Size: 100}},
		{"select R.A from R,S where R.A=S.A within 500 ticks",
			query.WindowSpec{Kind: query.WindowTime, Size: 500}},
		{"select R.A from R,S where R.A=S.A within 50 tuples tumbling",
			query.WindowSpec{Kind: query.WindowTuples, Size: 50, Tumbling: true}},
	}
	for _, c := range cases {
		q, err := Parse(c.src, testCatalog())
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if q.Window != c.want {
			t.Fatalf("%s: window %+v, want %+v", c.src, q.Window, c.want)
		}
	}
}

func TestParseStringLiterals(t *testing.T) {
	cat, _ := relation.NewCatalog(relation.MustSchema("Ev", "Host", "Level"))
	q, err := Parse("select Ev.Host from Ev where Ev.Level='error'", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Selections) != 1 || q.Selections[0].Val.Str != "error" {
		t.Fatalf("selections %v", q.Selections)
	}
}

func TestParseEscapedQuote(t *testing.T) {
	cat, _ := relation.NewCatalog(relation.MustSchema("Ev", "Msg", "K"))
	q, err := Parse("select Ev.K from Ev where Ev.Msg='it''s'", cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.Selections[0].Val.Str != "it's" {
		t.Fatalf("escape not handled: %q", q.Selections[0].Val.Str)
	}
}

func TestParseErrors(t *testing.T) {
	cat := testCatalog()
	bad := []string{
		"",
		"select",
		"select from R",
		"select R.A R,S",                        // missing FROM
		"select R.A from R,S where R.A",         // incomplete conjunct
		"select R.A from R,S where R.A=S.A and", // dangling AND
		"select R.A from R,S where 1=2",         // const=const
		"select R.A from R,S where R.A=S.A within",          // missing size
		"select R.A from R,S where R.A=S.A within 0 tuples", // zero window
		"select R.A from R,S where R.A=S.A within 5 bananas",
		"select R.A from R,S where R.A=S.A trailing",
		"select R.A from R where R.A='unterminated",
		"select R.A from R,S where R.A = - and S.A=R.A", // dangling minus
		"select select from R",                          // reserved word as ident
		"select R..A from R",                            // double dot
	}
	for _, src := range bad {
		if _, err := Parse(src, cat); err == nil {
			t.Errorf("accepted invalid query %q", src)
		}
	}
}

func TestParseValidationAgainstCatalog(t *testing.T) {
	cat := testCatalog()
	if _, err := Parse("select X.A from X,S where X.A=S.A", cat); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := Parse("select R.Z from R,S where R.A=S.A", cat); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	// Without a catalog, structural parsing succeeds.
	if _, err := Parse("select X.A from X,Y where X.A=Y.A", nil); err != nil {
		t.Fatalf("nil catalog parse failed: %v", err)
	}
}

func TestMustParsePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("not sql", nil)
}

// Property: rendering a parsed query and re-parsing it yields the same
// structure (String() is a faithful round trip for parsed queries).
func TestParseRenderRoundTripProperty(t *testing.T) {
	cat := testCatalog()
	seeds := []string{
		"select S.B, M.A from R,S,J,M where R.A=S.A and S.B=J.B and J.C=M.C",
		"select 6, M.A from J,M where 6=J.B and J.C=M.C",
		"select distinct R.A from R,S where R.A=S.A within 100 tuples",
		"select R.A from R,S where R.A=S.A within 10 ticks tumbling",
	}
	for _, src := range seeds {
		q1 := MustParse(src, cat)
		q2, err := Parse(q1.String(), cat)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Fatalf("round trip changed query: %q vs %q", q1.String(), q2.String())
		}
	}
}

// Property: negative integer constants survive parsing.
func TestParseNegativeConstProperty(t *testing.T) {
	cat := testCatalog()
	f := func(n int32) bool {
		src := "select R.A from R,S where R.A=S.A and S.B=" + relation.Int64(int64(n)).String()
		q, err := Parse(src, cat)
		if err != nil {
			return false
		}
		return q.Selections[0].Val.Int == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLexerOffsetsInErrors(t *testing.T) {
	_, err := Parse("select R.A from R,S where R.A ? S.A", testCatalog())
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error without offset: %v", err)
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse(
		"select R.A, count(*), count(S.B), count(distinct S.B), sum(S.B), min(S.B), max(S.B), avg(S.B) from R,S where R.A=S.A group by R.A",
		testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsAggregate() {
		t.Fatal("aggregate query not flagged")
	}
	want := []struct {
		fn       query.AggFunc
		star     bool
		distinct bool
	}{
		{query.AggNone, false, false},
		{query.AggCount, true, false},
		{query.AggCount, false, false},
		{query.AggCount, false, true},
		{query.AggSum, false, false},
		{query.AggMin, false, false},
		{query.AggMax, false, false},
		{query.AggAvg, false, false},
	}
	for i, w := range want {
		it := q.Select[i]
		if it.Agg != w.fn || it.Star != w.star || it.AggDistinct != w.distinct {
			t.Fatalf("item %d: got fn=%v star=%v distinct=%v, want %+v", i, it.Agg, it.Star, it.AggDistinct, w)
		}
	}
	if q.Select[1].Const.Int != 1 || !q.Select[1].IsConst {
		t.Fatal("COUNT(*) must carry the constant 1")
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != (query.ColRef{Rel: "R", Attr: "A"}) {
		t.Fatalf("group by %v", q.GroupBy)
	}
	rendered := q.String()
	q2, err := Parse(rendered, testCatalog())
	if err != nil {
		t.Fatalf("rendered aggregate query does not re-parse: %q: %v", rendered, err)
	}
	if q2.String() != rendered {
		t.Fatalf("aggregate rendering unstable: %q vs %q", rendered, q2.String())
	}
}

func TestParseGroupByWithWindow(t *testing.T) {
	q, err := Parse(
		"select R.A, count(*) from R,S where R.A=S.A group by R.A within 32 tuples tumbling",
		testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if !q.Window.Enabled() || !q.Window.Tumbling || q.Window.Size != 32 {
		t.Fatalf("window %+v", q.Window)
	}
}

// Aggregate function names are not reserved: a relation or attribute
// may be called count/sum/... as long as no '(' follows.
func TestAggFuncNamesNotReserved(t *testing.T) {
	cat, _ := relation.NewCatalog(relation.MustSchema("count", "sum"))
	q, err := Parse("select count.sum from count where count.sum=3", cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.IsAggregate() {
		t.Fatal("plain column misparsed as aggregate")
	}
}

func TestParseAggregateErrors(t *testing.T) {
	for _, sql := range []string{
		"select count(* from R",
		"select count() from R",
		"select count(R.A from R",
		"select avg(*) from R",
		"select min(distinct R.A) from R",
		"select R.A from R group by R",
		"select R.A from R group R.A",
	} {
		if _, err := Parse(sql, nil); err == nil {
			t.Fatalf("%q parsed; want error", sql)
		}
	}
}
