package metrics

import (
	"encoding/csv"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"rjoin/internal/id"
)

func TestLoadAddGetTotal(t *testing.T) {
	l := NewLoad()
	l.Add(1, 5)
	l.Add(2, 3)
	l.Add(1, 2)
	if l.Get(1) != 7 || l.Get(2) != 3 || l.Get(3) != 0 {
		t.Fatalf("unexpected per-node loads: %d %d %d", l.Get(1), l.Get(2), l.Get(3))
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d, want 10", l.Total())
	}
	if l.PerNode(5) != 2.0 {
		t.Fatalf("per-node = %f, want 2", l.PerNode(5))
	}
}

func TestPerNodeEmptyNetwork(t *testing.T) {
	l := NewLoad()
	if l.PerNode(0) != 0 {
		t.Fatal("PerNode(0) must be 0")
	}
}

func TestParticipantsAndMax(t *testing.T) {
	l := NewLoad()
	l.Add(1, 4)
	l.Add(2, 0)
	l.Add(3, 9)
	if l.Participants() != 2 {
		t.Fatalf("participants = %d, want 2", l.Participants())
	}
	if l.Max() != 9 {
		t.Fatalf("max = %d, want 9", l.Max())
	}
}

func TestRankedSortedDescending(t *testing.T) {
	l := NewLoad()
	for i, v := range []int64{3, 9, 1, 7} {
		l.Add(id.ID(i), v)
	}
	r := l.Ranked()
	if !sort.SliceIsSorted(r, func(i, j int) bool { return r[i] > r[j] }) {
		t.Fatalf("ranked not descending: %v", r)
	}
	if len(r) != 4 || r[0] != 9 {
		t.Fatalf("ranked = %v", r)
	}
}

func TestRankedPadded(t *testing.T) {
	l := NewLoad()
	l.Add(1, 5)
	p := l.RankedPadded(4)
	if len(p) != 4 || p[0] != 5 || p[3] != 0 {
		t.Fatalf("padded = %v", p)
	}
}

func TestQuantile(t *testing.T) {
	l := NewLoad()
	for i := 1; i <= 10; i++ {
		l.Add(id.ID(i), int64(i))
	}
	if l.Quantile(0) != 10 {
		t.Fatalf("head quantile = %d, want 10", l.Quantile(0))
	}
	if l.Quantile(1) != 1 {
		t.Fatalf("tail quantile = %d, want 1", l.Quantile(1))
	}
}

func TestMergeCloneReset(t *testing.T) {
	a := NewLoad()
	a.Add(1, 2)
	b := NewLoad()
	b.Add(1, 3)
	b.Add(2, 4)
	a.Merge(b)
	if a.Get(1) != 5 || a.Get(2) != 4 || a.Total() != 9 {
		t.Fatalf("merge wrong: %d %d %d", a.Get(1), a.Get(2), a.Total())
	}
	c := a.Clone()
	c.Add(1, 1)
	if a.Get(1) != 5 {
		t.Fatal("clone aliases original")
	}
	a.Reset()
	if a.Total() != 0 || a.Participants() != 0 {
		t.Fatal("reset incomplete")
	}
}

// Property: Total always equals the sum of the ranked distribution.
func TestTotalMatchesRankedSumProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		l := NewLoad()
		for i, v := range vals {
			l.Add(id.ID(i), int64(v))
		}
		var sum int64
		for _, v := range l.Ranked() {
			sum += v
		}
		return sum == l.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteness(t *testing.T) {
	exp := map[string]int64{"a": 2, "b": 1, "c": 1}
	got := map[string]int64{"a": 1, "b": 3, "d": 1}
	c := CompareMultisets(exp, got)
	if c.Expected != 4 || c.Delivered != 5 {
		t.Fatalf("totals wrong: %+v", c)
	}
	if c.Lost != 2 { // one "a" and the "c"
		t.Fatalf("Lost = %d, want 2", c.Lost)
	}
	if c.Duplicated != 3 { // two extra "b", one unexpected "d"
		t.Fatalf("Duplicated = %d, want 3", c.Duplicated)
	}
	if c.Exact() {
		t.Fatal("mismatching multisets reported exact")
	}
	if got := c.Recall(); got != 0.5 {
		t.Fatalf("Recall = %v, want 0.5", got)
	}
}

func TestCompletenessExact(t *testing.T) {
	m := map[string]int64{"x": 2, "y": 1}
	c := CompareMultisets(m, m)
	if !c.Exact() || c.Recall() != 1 {
		t.Fatalf("identical multisets not exact: %+v", c)
	}
	empty := CompareMultisets(nil, nil)
	if !empty.Exact() || empty.Recall() != 1 {
		t.Fatalf("empty comparison not exact: %+v", empty)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Last() != 0 {
		t.Fatal("empty series Last must be 0")
	}
	s.Append(1, 10)
	s.Append(2, 20)
	if s.Len() != 2 || s.Last() != 20 {
		t.Fatalf("series state wrong: len=%d last=%f", s.Len(), s.Last())
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "Demo", Headers: []string{"k", "value"}}
	tab.AddRow("a", "1")
	tab.AddFloats("b", 2.345)
	out := tab.String()
	if !strings.Contains(out, "## Demo") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "2.35") {
		t.Fatalf("missing formatted float: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("unexpected line count %d: %q", len(lines), out)
	}
}

func TestTableAddInts(t *testing.T) {
	tab := &Table{Headers: []string{"k", "a", "b"}}
	tab.AddInts("row", 7, -3)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	want := []string{"row", "7", "-3"}
	for i, c := range tab.Rows[0] {
		if c != want[i] {
			t.Fatalf("cell %d = %q, want %q", i, c, want[i])
		}
	}
}

func TestRenameTransfersLoad(t *testing.T) {
	l := NewLoad()
	l.Add(1, 5)
	l.Add(2, 3)
	l.Rename(1, 9)
	if l.Get(1) != 0 || l.Get(9) != 5 || l.Total() != 8 {
		t.Fatalf("rename wrong: old=%d new=%d total=%d", l.Get(1), l.Get(9), l.Total())
	}
	// Renaming onto an existing id merges.
	l.Rename(9, 2)
	if l.Get(2) != 8 {
		t.Fatalf("merge rename wrong: %d", l.Get(2))
	}
	// Self-rename and missing-id rename are no-ops.
	l.Rename(2, 2)
	l.Rename(42, 43)
	if l.Get(2) != 8 || l.Total() != 8 {
		t.Fatal("no-op renames changed state")
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{
		Title:   "ignored in CSV",
		Headers: []string{"mode", "value"},
	}
	tab.AddRow("plain", "1")
	tab.AddRow(`quoted,"cell"`, "2")
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "mode,value\nplain,1\n\"quoted,\"\"cell\"\"\",2\n"
	if got != want {
		t.Fatalf("CSV rendering wrong:\ngot  %q\nwant %q", got, want)
	}
	r := csv.NewReader(strings.NewReader(got))
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[2][0] != `quoted,"cell"` {
		t.Fatalf("CSV did not round-trip: %v", rows)
	}
}
