// Package metrics implements the three load measures of the paper's
// experimental analysis (Section 8) and the aggregations its figures
// plot:
//
//   - network traffic: messages a node sends, both messages it creates
//     (indexing tuples/queries, RIC requests) and messages it routes for
//     the DHT;
//   - query processing load (QPL): rewritten queries received to search
//     local tuples + tuples received to search local queries;
//   - storage load (SL): rewritten queries plus tuples a node stores.
//
// Figures plot either per-node totals, ranked per-node distributions
// ("Ranked nodes (x100)" axes), or cumulative series over tuple
// arrivals; all three aggregations live here.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"rjoin/internal/id"
)

// Load is a per-node counter for one of the paper's load measures.
type Load struct {
	byNode map[id.ID]int64
	total  int64
}

// NewLoad returns an empty counter.
func NewLoad() *Load {
	return &Load{byNode: make(map[id.ID]int64)}
}

// Add charges n units of load to the given node.
func (l *Load) Add(node id.ID, n int64) {
	l.byNode[node] += n
	l.total += n
}

// Get returns the load charged to a node.
func (l *Load) Get(node id.ID) int64 { return l.byNode[node] }

// Total returns the network-wide total.
func (l *Load) Total() int64 { return l.total }

// PerNode returns total load divided by the number of nodes in the
// network — the y-axis of the paper's "per node" plots.
func (l *Load) PerNode(networkSize int) float64 {
	if networkSize == 0 {
		return 0
	}
	return float64(l.total) / float64(networkSize)
}

// Participants returns how many nodes carry non-zero load (the paper
// reports e.g. "940 nodes participate in query processing").
func (l *Load) Participants() int {
	n := 0
	for _, v := range l.byNode {
		if v > 0 {
			n++
		}
	}
	return n
}

// Max returns the load of the hottest node.
func (l *Load) Max() int64 {
	var m int64
	for _, v := range l.byNode {
		if v > m {
			m = v
		}
	}
	return m
}

// Ranked returns per-node loads sorted in decreasing order, the form of
// the paper's "Ranked nodes" distribution plots.
func (l *Load) Ranked() []int64 {
	out := make([]int64, 0, len(l.byNode))
	for _, v := range l.byNode {
		if v > 0 {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// RankedPadded is Ranked extended with zeros so that every node of the
// network appears, matching plots whose x-axis spans all N nodes.
func (l *Load) RankedPadded(networkSize int) []int64 {
	out := l.Ranked()
	for len(out) < networkSize {
		out = append(out, 0)
	}
	return out
}

// Quantile returns the load at fraction q (0 head, 1 tail) of the
// ranked distribution.
func (l *Load) Quantile(q float64) int64 {
	r := l.Ranked()
	if len(r) == 0 {
		return 0
	}
	i := int(q * float64(len(r)-1))
	return r[i]
}

// Rename transfers all load charged to one node identifier onto
// another. Identifier-movement load balancing changes a node's ring
// position; the physical node stays the same, so its accumulated load
// follows it.
func (l *Load) Rename(old, new id.ID) {
	if old == new {
		return
	}
	if v, ok := l.byNode[old]; ok {
		l.byNode[new] += v
		delete(l.byNode, old)
	}
}

// Merge adds every count of other into l.
func (l *Load) Merge(other *Load) {
	for n, v := range other.byNode {
		l.Add(n, v)
	}
}

// DrainInto moves every count of l into dst and leaves l empty,
// keeping l's map allocated for reuse. The parallel engine's per-shard
// accumulators drain into the public aggregates at every sync barrier,
// so this path avoids reallocating 64 maps per drain.
func (l *Load) DrainInto(dst *Load) {
	if l.total == 0 && len(l.byNode) == 0 {
		return
	}
	for n, v := range l.byNode {
		dst.Add(n, v)
	}
	clear(l.byNode)
	l.total = 0
}

// Clone returns a deep copy.
func (l *Load) Clone() *Load {
	c := NewLoad()
	c.Merge(l)
	return c
}

// Reset zeroes the counter.
func (l *Load) Reset() {
	l.byNode = make(map[id.ID]int64)
	l.total = 0
}

// Completeness compares a delivered answer multiset against a
// reference: how many expected rows arrived, how many were lost, and
// how many arrived more often than expected. Churn experiments use it
// to quantify answer loss under crashes and to certify exactly-once
// delivery under graceful leaves.
type Completeness struct {
	Expected   int64 // rows the reference contains
	Delivered  int64 // rows actually observed
	Lost       int64 // expected rows that never arrived
	Duplicated int64 // observed rows beyond their expected multiplicity
}

// CompareMultisets computes Completeness between two multisets given
// as value → multiplicity maps.
func CompareMultisets(expected, got map[string]int64) Completeness {
	var c Completeness
	for _, n := range expected {
		c.Expected += n
	}
	for _, n := range got {
		c.Delivered += n
	}
	for row, n := range expected {
		if g := got[row]; g < n {
			c.Lost += n - g
		}
	}
	for row, g := range got {
		if n := expected[row]; g > n {
			c.Duplicated += g - n
		}
	}
	return c
}

// Exact reports whether delivery matched the reference exactly — no
// loss, no duplication.
func (c Completeness) Exact() bool { return c.Lost == 0 && c.Duplicated == 0 }

// Recall returns the fraction of expected row instances delivered,
// counting multiplicity (1 for an empty reference).
func (c Completeness) Recall() float64 {
	if c.Expected == 0 {
		return 1
	}
	return float64(c.Expected-c.Lost) / float64(c.Expected)
}

// Series is an ordered sequence of (x, y) observations, used for the
// cumulative-load figures (Figure 8) and the per-knob summary rows.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append records one observation.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.X) }

// Last returns the final y value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// Table is a simple fixed-column table writer used by the experiment
// harness to print figure data in the shape the paper reports it.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddFloats appends a row of float cells formatted to 2 decimals after a
// leading label.
func (t *Table) AddFloats(label string, vals ...float64) {
	row := []string{label}
	for _, v := range vals {
		row = append(row, fmt.Sprintf("%.2f", v))
	}
	t.Rows = append(t.Rows, row)
}

// AddInts appends a row of integer cells after a leading label.
func (t *Table) AddInts(label string, vals ...int64) {
	row := []string{label}
	for _, v := range vals {
		row = append(row, fmt.Sprintf("%d", v))
	}
	t.Rows = append(t.Rows, row)
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b)
	return b.String()
}

// WriteCSV renders the table as RFC 4180 CSV — header row first, then
// data rows — so regenerated figures are plottable without scraping the
// aligned text tables. The title is not part of the CSV payload;
// callers typically encode it in the file name.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
