// Package relation implements the paper's data model (Section 2): the
// relational model with append-only relations, tuples carrying their
// publication time, and the two indexing keys RJoin derives from a tuple
// — the attribute-level key Rel+Attr and the value-level key
// Rel+Attr+Value.
package relation

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"rjoin/internal/id"
)

// Kind discriminates the value types the SQL subset supports.
type Kind uint8

const (
	// KindInt is a 64-bit integer value.
	KindInt Kind = iota
	// KindString is a string value.
	KindString
)

// Value is a typed attribute value. It is a comparable struct so values
// can key maps directly (duplicate elimination, candidate tables).
type Value struct {
	Kind Kind
	Int  int64
	Str  string
}

// Int64 returns an integer Value.
func Int64(v int64) Value { return Value{Kind: KindInt, Int: v} }

// String64 returns a string Value.
func String64(s string) Value { return Value{Kind: KindString, Str: s} }

// String renders the value the way it appears in keys and query text.
func (v Value) String() string {
	if v.Kind == KindInt {
		return strconv.FormatInt(v.Int, 10)
	}
	return v.Str
}

// Equal reports value equality (kind and payload).
func (v Value) Equal(o Value) bool { return v == o }

// ParseValue interprets a literal token: integers parse as KindInt,
// anything else (including quoted strings already unquoted by the lexer)
// is a KindString.
func ParseValue(tok string) Value {
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return Int64(n)
	}
	return String64(tok)
}

// AppendCanonical appends an injective binary encoding of the value —
// kind tag, uvarint length, payload — so concatenated encodings of
// value sequences collide only for equal sequences. It is the one
// encoding behind both the owner-side DISTINCT row filter and the
// aggregation group keys; keep them on this helper so the injectivity
// argument covers every user.
func AppendCanonical(b []byte, v Value) []byte {
	s := v.String()
	b = append(b, byte(v.Kind))
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Schema describes one relation: its name and ordered attribute names.
type Schema struct {
	Relation string
	Attrs    []string
	index    map[string]int
	attrKeys []Key // interned Rel+Attr keys, in Attrs order
}

// NewSchema builds a schema, validating that attribute names are unique
// and non-empty.
func NewSchema(relation string, attrs ...string) (*Schema, error) {
	if relation == "" {
		return nil, fmt.Errorf("relation: empty relation name")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: schema %s has no attributes", relation)
	}
	s := &Schema{Relation: relation, Attrs: attrs, index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation: schema %s has an empty attribute name", relation)
		}
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("relation: schema %s repeats attribute %s", relation, a)
		}
		s.index[a] = i
	}
	s.attrKeys = make([]Key, len(attrs))
	for i, a := range attrs {
		s.attrKeys[i] = AttrKeyOf(relation, a)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for literals in tests
// and generators.
func MustSchema(relation string, attrs ...string) *Schema {
	s, err := NewSchema(relation, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.Attrs) }

// AttrIndex returns the position of the named attribute and whether it
// exists.
func (s *Schema) AttrIndex(attr string) (int, bool) {
	i, ok := s.index[attr]
	return i, ok
}

// Tuple is one published row. PubTime is pubT(t), the virtual time the
// tuple entered the network; PubSeq is a network-wide publication
// sequence number used as the "tuple clock" for tuple-based windows and
// as a unique identity for bag semantics. Publisher is the ring
// identifier of the publishing node — with PubSeq it is the identity
// answer provenance reports a contributing base tuple by.
type Tuple struct {
	Schema    *Schema
	Values    []Value
	PubTime   int64
	PubSeq    int64
	Publisher uint64
}

// NewTuple validates arity and builds a tuple.
func NewTuple(s *Schema, values ...Value) (*Tuple, error) {
	if len(values) != s.Arity() {
		return nil, fmt.Errorf("relation: tuple arity %d does not match schema %s/%d",
			len(values), s.Relation, s.Arity())
	}
	return &Tuple{Schema: s, Values: values}, nil
}

// MustTuple is NewTuple that panics on error.
func MustTuple(s *Schema, values ...Value) *Tuple {
	t, err := NewTuple(s, values...)
	if err != nil {
		panic(err)
	}
	return t
}

// Relation returns the tuple's relation name.
func (t *Tuple) Relation() string { return t.Schema.Relation }

// Value returns the value of the named attribute.
func (t *Tuple) Value(attr string) (Value, bool) {
	i, ok := t.Schema.AttrIndex(attr)
	if !ok {
		return Value{}, false
	}
	return t.Values[i], true
}

// String renders the tuple as Rel(v1, v2, ...).
func (t *Tuple) String() string {
	parts := make([]string, len(t.Values))
	for i, v := range t.Values {
		parts[i] = v.String()
	}
	return t.Schema.Relation + "(" + strings.Join(parts, ", ") + ")"
}

// AttrKey returns the attribute-level index key Rel+Attr. The '+' is
// the paper's concatenation operator; using it literally keeps keys
// unambiguous because relation and attribute names exclude '+'.
func AttrKey(rel, attr string) string { return rel + "+" + attr }

// ValueKey returns the value-level index key Rel+Attr+Value.
func ValueKey(rel, attr string, v Value) string {
	return rel + "+" + attr + "+" + v.String()
}

// Key is an index key (Rel+Attr or Rel+Attr+Value) carrying both its
// string form and its ring identifier Hash(key), computed once. Every
// layer passes Keys instead of raw strings so the consistent hash —
// by far the most expensive step of routing — is never re-derived for
// a key the process has seen before. Key is comparable and can key
// maps directly.
type Key struct {
	s string
	h id.ID
}

// String returns the paper's textual key form.
func (k Key) String() string { return k.s }

// ID returns the cached ring identifier; it always equals
// id.HashKey(k.String()).
func (k Key) ID() id.ID { return k.h }

// IsZero reports whether k is the zero Key.
func (k Key) IsZero() bool { return k.s == "" }

// The intern tables memoize key → ring-identifier bindings process-wide.
// Contents are a pure function of the key text, so sharing them across
// concurrently running simulations is harmless and deterministic.
// Value-level keys are interned on the (rel, attr, value) triple so a
// hit skips the string concatenation as well as the hash. The tables
// grow with the number of distinct keys ever derived and are never
// evicted — the deliberate trade for a hash-free hot path; at the
// simulated scales (10^5-10^6 keys) this is a few tens of megabytes.
var (
	internByString sync.Map // string → Key
	internByTriple sync.Map // valueTriple → Key
)

type valueTriple struct {
	rel, attr string
	val       Value
}

// KeyOf returns the interned Key for an arbitrary key string.
func KeyOf(s string) Key {
	if k, ok := internByString.Load(s); ok {
		return k.(Key)
	}
	k := Key{s: s, h: id.HashKey(s)}
	internByString.Store(s, k)
	return k
}

// AttrKeyOf returns the interned attribute-level Key Rel+Attr.
func AttrKeyOf(rel, attr string) Key { return KeyOf(AttrKey(rel, attr)) }

// ValueKeyOf returns the interned value-level Key Rel+Attr+Value
// without materialising the key string on a hit.
func ValueKeyOf(rel, attr string, v Value) Key {
	t := valueTriple{rel: rel, attr: attr, val: v}
	if k, ok := internByTriple.Load(t); ok {
		return k.(Key)
	}
	k := KeyOf(ValueKey(rel, attr, v))
	internByTriple.Store(t, k)
	return k
}

// Keys returns the 2*k index keys of a k-attribute tuple, attribute
// level and value level for every attribute, in schema order — exactly
// the keys Procedure 1 publishes a new tuple under. The attribute-level
// slice is precomputed on the schema and shared; callers must not
// mutate it.
func (t *Tuple) Keys() (attrKeys, valueKeys []Key) {
	rel := t.Schema.Relation
	attrKeys = t.Schema.attrKeys
	valueKeys = make([]Key, len(t.Values))
	for i, attr := range t.Schema.Attrs {
		valueKeys[i] = ValueKeyOf(rel, attr, t.Values[i])
	}
	return attrKeys, valueKeys
}

// Catalog is a set of schemas addressed by relation name.
type Catalog struct {
	byName map[string]*Schema
}

// NewCatalog builds a catalog from schemas.
func NewCatalog(schemas ...*Schema) (*Catalog, error) {
	c := &Catalog{byName: make(map[string]*Schema, len(schemas))}
	for _, s := range schemas {
		if err := c.Add(s); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Add inserts a schema, rejecting duplicate relation names.
func (c *Catalog) Add(s *Schema) error {
	if _, dup := c.byName[s.Relation]; dup {
		return fmt.Errorf("relation: catalog already has relation %s", s.Relation)
	}
	c.byName[s.Relation] = s
	return nil
}

// Schema looks up a relation by name.
func (c *Catalog) Schema(name string) (*Schema, bool) {
	s, ok := c.byName[name]
	return s, ok
}

// Relations returns the number of relations in the catalog.
func (c *Catalog) Relations() int { return len(c.byName) }
