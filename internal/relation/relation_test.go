package relation

import (
	"testing"
	"testing/quick"

	"rjoin/internal/id"
)

func TestValueString(t *testing.T) {
	if Int64(42).String() != "42" {
		t.Fatal("int value string")
	}
	if String64("abc").String() != "abc" {
		t.Fatal("string value string")
	}
	if Int64(-7).String() != "-7" {
		t.Fatal("negative int value string")
	}
}

func TestParseValue(t *testing.T) {
	if v := ParseValue("123"); v.Kind != KindInt || v.Int != 123 {
		t.Fatalf("ParseValue(123) = %+v", v)
	}
	if v := ParseValue("hello"); v.Kind != KindString || v.Str != "hello" {
		t.Fatalf("ParseValue(hello) = %+v", v)
	}
	if v := ParseValue("12x"); v.Kind != KindString {
		t.Fatalf("ParseValue(12x) = %+v", v)
	}
}

func TestValueEqualityAndMapKey(t *testing.T) {
	m := map[Value]int{}
	m[Int64(5)] = 1
	m[String64("5")] = 2
	if len(m) != 2 {
		t.Fatal("int 5 and string 5 must be distinct map keys")
	}
	if !Int64(5).Equal(Int64(5)) || Int64(5).Equal(Int64(6)) {
		t.Fatal("Equal wrong for ints")
	}
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema("", "A"); err == nil {
		t.Fatal("empty relation name accepted")
	}
	if _, err := NewSchema("R"); err == nil {
		t.Fatal("schema with no attributes accepted")
	}
	if _, err := NewSchema("R", "A", "A"); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if _, err := NewSchema("R", ""); err == nil {
		t.Fatal("empty attribute accepted")
	}
	s, err := NewSchema("R", "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 2 {
		t.Fatal("arity")
	}
	if i, ok := s.AttrIndex("B"); !ok || i != 1 {
		t.Fatal("AttrIndex")
	}
	if _, ok := s.AttrIndex("Z"); ok {
		t.Fatal("missing attribute found")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema did not panic")
		}
	}()
	MustSchema("R", "A", "A")
}

func TestTupleArityChecked(t *testing.T) {
	s := MustSchema("R", "A", "B")
	if _, err := NewTuple(s, Int64(1)); err == nil {
		t.Fatal("short tuple accepted")
	}
	tp := MustTuple(s, Int64(1), Int64(2))
	if tp.Relation() != "R" {
		t.Fatal("relation name")
	}
	if v, ok := tp.Value("B"); !ok || v.Int != 2 {
		t.Fatal("Value lookup")
	}
	if _, ok := tp.Value("Z"); ok {
		t.Fatal("missing attr lookup succeeded")
	}
	if tp.String() != "R(1, 2)" {
		t.Fatalf("String() = %q", tp.String())
	}
}

func TestKeysMatchProcedure1(t *testing.T) {
	s := MustSchema("R", "A", "B", "C")
	tp := MustTuple(s, Int64(2), Int64(5), Int64(8))
	attrKeys, valueKeys := tp.Keys()
	wantAttr := []string{"R+A", "R+B", "R+C"}
	wantValue := []string{"R+A+2", "R+B+5", "R+C+8"}
	for i := range wantAttr {
		if attrKeys[i].String() != wantAttr[i] {
			t.Fatalf("attr key %d = %q, want %q", i, attrKeys[i], wantAttr[i])
		}
		if valueKeys[i].String() != wantValue[i] {
			t.Fatalf("value key %d = %q, want %q", i, valueKeys[i], wantValue[i])
		}
	}
}

func TestKeyCachesRingID(t *testing.T) {
	for _, s := range []string{"R+A", "R+A+2", "S+B+x", "R+A#r3"} {
		k := KeyOf(s)
		if k.String() != s {
			t.Fatalf("KeyOf(%q).String() = %q", s, k.String())
		}
		if k.ID() != id.HashKey(s) {
			t.Fatalf("KeyOf(%q).ID() = %v, want id.HashKey = %v", s, k.ID(), id.HashKey(s))
		}
	}
	// The triple-interned value key must agree with the string form.
	if ValueKeyOf("S", "B", Int64(6)) != KeyOf("S+B+6") {
		t.Fatal("ValueKeyOf and KeyOf disagree")
	}
	if AttrKeyOf("S", "B") != KeyOf("S+B") {
		t.Fatal("AttrKeyOf and KeyOf disagree")
	}
	if KeyOf("R+A").IsZero() || (Key{}).IsZero() == false {
		t.Fatal("IsZero")
	}
}

func TestKeyBuilders(t *testing.T) {
	if AttrKey("S", "B") != "S+B" {
		t.Fatal("AttrKey")
	}
	if ValueKey("S", "B", Int64(6)) != "S+B+6" {
		t.Fatal("ValueKey int")
	}
	if ValueKey("S", "B", String64("x")) != "S+B+x" {
		t.Fatal("ValueKey string")
	}
}

func TestCatalog(t *testing.T) {
	r := MustSchema("R", "A")
	s := MustSchema("S", "B")
	c, err := NewCatalog(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if c.Relations() != 2 {
		t.Fatal("relation count")
	}
	if got, ok := c.Schema("R"); !ok || got != r {
		t.Fatal("catalog lookup")
	}
	if _, ok := c.Schema("T"); ok {
		t.Fatal("missing relation found")
	}
	if err := c.Add(MustSchema("R", "X")); err == nil {
		t.Fatal("duplicate relation accepted")
	}
}

// Property: ParseValue(Int64(n).String()) round-trips every int64.
func TestParseValueRoundTripProperty(t *testing.T) {
	f := func(n int64) bool {
		v := ParseValue(Int64(n).String())
		return v.Kind == KindInt && v.Int == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: value-level keys are injective per attribute for int values
// (distinct values never share a key).
func TestValueKeyInjectiveProperty(t *testing.T) {
	f := func(a, b int64) bool {
		if a == b {
			return true
		}
		return ValueKey("R", "A", Int64(a)) != ValueKey("R", "A", Int64(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
