package query

import (
	"strings"
	"testing"
	"testing/quick"

	"rjoin/internal/relation"
)

var (
	schemaR = relation.MustSchema("R", "A", "B", "C")
	schemaS = relation.MustSchema("S", "A", "B", "C")
	schemaJ = relation.MustSchema("J", "A", "B", "C")
	schemaM = relation.MustSchema("M", "A", "B", "C")
)

// paperQuery builds the Section 3 example:
// select R.B, S.B from R,S,P where R.A=S.A and S.B=P.B
// (with P renamed to J to reuse schemas).
func sectionThreeQuery() *Query {
	return &Query{
		ID: "q1",
		Select: []SelectItem{
			{Col: ColRef{"R", "B"}},
			{Col: ColRef{"S", "B"}},
		},
		Relations: []string{"R", "S", "J"},
		Joins: []JoinCond{
			{ColRef{"R", "A"}, ColRef{"S", "A"}},
			{ColRef{"S", "B"}, ColRef{"J", "B"}},
		},
	}
}

func TestRewriteSectionThreeExample(t *testing.T) {
	// Incoming tuple t of R with t=(3,5,...) must produce
	// select 5, S.B from S,P where 3=S.A and S.B=P.B.
	q := sectionThreeQuery()
	tup := relation.MustTuple(schemaR, relation.Int64(3), relation.Int64(5), relation.Int64(0))
	q2, ok := Rewrite(q, tup)
	if !ok {
		t.Fatal("tuple failed to trigger query")
	}
	if q2.HasRelation("R") {
		t.Fatal("R still in FROM after rewrite")
	}
	if !q2.Select[0].IsConst || q2.Select[0].Const.Int != 5 {
		t.Fatalf("select item not substituted: %v", q2.Select[0])
	}
	if len(q2.Selections) != 1 || q2.Selections[0].Col != (ColRef{"S", "A"}) || q2.Selections[0].Val.Int != 3 {
		t.Fatalf("expected selection 3=S.A, got %v", q2.Selections)
	}
	if len(q2.Joins) != 1 || q2.Joins[0].Left != (ColRef{"S", "B"}) {
		t.Fatalf("expected remaining join S.B=J.B, got %v", q2.Joins)
	}
	if got := q2.String(); got != "select 5, S.B from S,J where 3=S.A and S.B=J.B" {
		t.Fatalf("rendered %q", got)
	}
	if q2.Depth != 1 {
		t.Fatalf("depth = %d, want 1", q2.Depth)
	}
}

// figure1Query is the Figure 1 input query:
// select S.B, M.A from R,S,J,M where R.A=S.A and S.B=J.B and J.C=M.C.
func figure1Query() *Query {
	return &Query{
		ID: "q",
		Select: []SelectItem{
			{Col: ColRef{"S", "B"}},
			{Col: ColRef{"M", "A"}},
		},
		Relations: []string{"R", "S", "J", "M"},
		Joins: []JoinCond{
			{ColRef{"R", "A"}, ColRef{"S", "A"}},
			{ColRef{"S", "B"}, ColRef{"J", "B"}},
			{ColRef{"J", "C"}, ColRef{"M", "C"}},
		},
	}
}

func TestPaperFigure1RewriteChain(t *testing.T) {
	q := figure1Query()

	// Event 2: t1=(2,5,8) of R.
	t1 := relation.MustTuple(schemaR, relation.Int64(2), relation.Int64(5), relation.Int64(8))
	q1, ok := Rewrite(q, t1)
	if !ok {
		t.Fatal("t1 did not trigger q")
	}
	if got := q1.String(); got != "select S.B, M.A from S,J,M where 2=S.A and S.B=J.B and J.C=M.C" {
		t.Fatalf("q1 = %q", got)
	}

	// Event 3: t2=(2,6,3) of S.
	t2 := relation.MustTuple(schemaS, relation.Int64(2), relation.Int64(6), relation.Int64(3))
	q2, ok := Rewrite(q1, t2)
	if !ok {
		t.Fatal("t2 did not trigger q1")
	}
	if got := q2.String(); got != "select 6, M.A from J,M where 6=J.B and J.C=M.C" {
		t.Fatalf("q2 = %q", got)
	}

	// Event 5: t4=(7,6,2) of J.
	t4 := relation.MustTuple(schemaJ, relation.Int64(7), relation.Int64(6), relation.Int64(2))
	q3, ok := Rewrite(q2, t4)
	if !ok {
		t.Fatal("t4 did not trigger q2")
	}
	if got := q3.String(); got != "select 6, M.A from M where 2=M.C" {
		t.Fatalf("q3 = %q", got)
	}

	// t3=(9,1,2) of M completes the query.
	t3 := relation.MustTuple(schemaM, relation.Int64(9), relation.Int64(1), relation.Int64(2))
	q4, ok := Rewrite(q3, t3)
	if !ok {
		t.Fatal("t3 did not trigger q3")
	}
	if !q4.IsComplete() {
		t.Fatal("q4 not complete")
	}
	vals := q4.AnswerValues()
	if len(vals) != 2 || vals[0].Int != 6 || vals[1].Int != 9 {
		t.Fatalf("answer = %v, want S.B=6, M.A=9", vals)
	}
}

func TestRewriteNonMatchingSelection(t *testing.T) {
	q := sectionThreeQuery()
	tR := relation.MustTuple(schemaR, relation.Int64(3), relation.Int64(5), relation.Int64(0))
	q2, _ := Rewrite(q, tR)
	// q2 requires 3=S.A; an S tuple with A=4 must not trigger it.
	bad := relation.MustTuple(schemaS, relation.Int64(4), relation.Int64(1), relation.Int64(0))
	if _, ok := Rewrite(q2, bad); ok {
		t.Fatal("selection-violating tuple triggered query")
	}
	// But A=3 must trigger.
	good := relation.MustTuple(schemaS, relation.Int64(3), relation.Int64(1), relation.Int64(0))
	if _, ok := Rewrite(q2, good); !ok {
		t.Fatal("selection-satisfying tuple rejected")
	}
}

func TestRewriteWrongRelation(t *testing.T) {
	q := sectionThreeQuery()
	tM := relation.MustTuple(schemaM, relation.Int64(1), relation.Int64(2), relation.Int64(3))
	if _, ok := Rewrite(q, tM); ok {
		t.Fatal("tuple of non-referenced relation triggered query")
	}
}

func TestRewriteIntraRelationJoin(t *testing.T) {
	// R.A = R.B is checked against the tuple directly.
	q := &Query{
		ID:        "qq",
		Select:    []SelectItem{{Col: ColRef{"R", "C"}}},
		Relations: []string{"R", "S"},
		Joins: []JoinCond{
			{ColRef{"R", "A"}, ColRef{"R", "B"}},
			{ColRef{"R", "C"}, ColRef{"S", "C"}},
		},
	}
	bad := relation.MustTuple(schemaR, relation.Int64(1), relation.Int64(2), relation.Int64(3))
	if _, ok := Rewrite(q, bad); ok {
		t.Fatal("tuple violating intra-relation join accepted")
	}
	good := relation.MustTuple(schemaR, relation.Int64(2), relation.Int64(2), relation.Int64(3))
	q2, ok := Rewrite(q, good)
	if !ok {
		t.Fatal("tuple satisfying intra-relation join rejected")
	}
	if len(q2.Joins) != 0 || len(q2.Selections) != 1 {
		t.Fatalf("unexpected clause after rewrite: %v", q2)
	}
}

func TestRewriteDoesNotMutateOriginal(t *testing.T) {
	q := figure1Query()
	before := q.String()
	tup := relation.MustTuple(schemaR, relation.Int64(2), relation.Int64(5), relation.Int64(8))
	if _, ok := Rewrite(q, tup); !ok {
		t.Fatal("rewrite failed")
	}
	if q.String() != before {
		t.Fatalf("original mutated: %q -> %q", before, q.String())
	}
}

func TestCandidatesInputQuery(t *testing.T) {
	q := figure1Query()
	cands := q.Candidates()
	// All candidates of an input query are attribute level.
	wantKeys := map[string]bool{"R+A": true, "S+A": true, "S+B": true, "J+B": true, "J+C": true, "M+C": true}
	if len(cands) != len(wantKeys) {
		t.Fatalf("got %d candidates, want %d: %v", len(cands), len(wantKeys), cands)
	}
	for _, c := range cands {
		if c.Level != AttrLevel {
			t.Fatalf("input query candidate at value level: %v", c)
		}
		if !wantKeys[c.Key.String()] {
			t.Fatalf("unexpected candidate key %q", c.Key)
		}
	}
}

func TestCandidatesRewrittenIncludeImplied(t *testing.T) {
	q := figure1Query()
	t1 := relation.MustTuple(schemaR, relation.Int64(2), relation.Int64(5), relation.Int64(8))
	q1, _ := Rewrite(q, t1)
	// q1: select S.B, M.A from S,J,M where 2=S.A and S.B=J.B and J.C=M.C
	cands := q1.Candidates()
	keys := make(map[string]Level)
	for _, c := range cands {
		keys[c.Key.String()] = c.Level
	}
	// (a) join pairs at attribute level.
	for _, k := range []string{"S+B", "J+B", "J+C", "M+C"} {
		if lvl, ok := keys[k]; !ok || lvl != AttrLevel {
			t.Fatalf("missing attribute-level candidate %s (keys=%v)", k, keys)
		}
	}
	// (b) explicit selection 2=S.A at value level.
	if lvl, ok := keys["S+A+2"]; !ok || lvl != ValueLevel {
		t.Fatalf("missing value-level candidate S+A+2")
	}
	// S.A participates in no remaining join; no implied triples exist
	// because the only selection's column joins nothing.
	if _, ok := keys["J+B+2"]; ok {
		t.Fatal("bogus implied candidate")
	}
}

func TestImpliedSelectionPropagation(t *testing.T) {
	// where 6=J.B and J.B=M.B implies M.B=6 → value candidate M+B+6.
	q := &Query{
		ID:        "impl",
		Select:    []SelectItem{{Col: ColRef{"M", "A"}}},
		Relations: []string{"J", "M"},
		Joins:     []JoinCond{{ColRef{"J", "B"}, ColRef{"M", "B"}}},
		Selections: []SelCond{
			{Col: ColRef{"J", "B"}, Val: relation.Int64(6)},
		},
	}
	keys := make(map[string]bool)
	for _, c := range q.Candidates() {
		keys[c.Key.String()] = true
	}
	if !keys["M+B+6"] {
		t.Fatalf("implied candidate M+B+6 missing: %v", keys)
	}
	if !keys["J+B+6"] {
		t.Fatalf("explicit candidate J+B+6 missing: %v", keys)
	}
}

func TestImpliedTransitivePropagation(t *testing.T) {
	// 7=A.X, A.X=B.Y, B.Y=C.Z implies C.Z=7 through two hops.
	q := &Query{
		ID:        "impl2",
		Select:    []SelectItem{{Col: ColRef{"C", "Z"}}},
		Relations: []string{"A", "B", "C"},
		Joins: []JoinCond{
			{ColRef{"A", "X"}, ColRef{"B", "Y"}},
			{ColRef{"B", "Y"}, ColRef{"C", "Z"}},
		},
		Selections: []SelCond{{Col: ColRef{"A", "X"}, Val: relation.Int64(7)}},
	}
	keys := make(map[string]bool)
	for _, c := range q.Candidates() {
		keys[c.Key.String()] = true
	}
	for _, want := range []string{"B+Y+7", "C+Z+7"} {
		if !keys[want] {
			t.Fatalf("missing transitive implied candidate %s: %v", want, keys)
		}
	}
}

func TestContradictory(t *testing.T) {
	q := &Query{
		Relations: []string{"S"},
		Joins:     []JoinCond{},
		Selections: []SelCond{
			{Col: ColRef{"S", "A"}, Val: relation.Int64(3)},
			{Col: ColRef{"S", "A"}, Val: relation.Int64(5)},
		},
	}
	if !q.Contradictory() {
		t.Fatal("conflicting selections not detected")
	}
	q2 := &Query{
		Relations: []string{"S", "J"},
		Joins:     []JoinCond{{ColRef{"S", "A"}, ColRef{"J", "B"}}},
		Selections: []SelCond{
			{Col: ColRef{"S", "A"}, Val: relation.Int64(3)},
			{Col: ColRef{"J", "B"}, Val: relation.Int64(4)},
		},
	}
	if !q2.Contradictory() {
		t.Fatal("join-implied contradiction not detected")
	}
	q3 := sectionThreeQuery()
	if q3.Contradictory() {
		t.Fatal("satisfiable query flagged contradictory")
	}
}

func TestWindowValidSliding(t *testing.T) {
	w := WindowSpec{Kind: WindowTuples, Size: 10}
	if !w.Valid(5, 14) {
		t.Fatal("|5-14|+1=10 <= 10 must be valid")
	}
	if w.Valid(5, 15) {
		t.Fatal("|5-15|+1=11 > 10 must be invalid")
	}
	if !w.Valid(14, 5) {
		t.Fatal("window must be symmetric")
	}
}

func TestWindowValidTumbling(t *testing.T) {
	w := WindowSpec{Kind: WindowTuples, Size: 10, Tumbling: true}
	if !w.Valid(11, 19) {
		t.Fatal("same epoch must be valid")
	}
	if w.Valid(9, 11) {
		t.Fatal("adjacent epochs must be invalid even if close")
	}
}

func TestWindowDisabled(t *testing.T) {
	var w WindowSpec
	if !w.Valid(0, 1<<40) {
		t.Fatal("disabled window must always be valid")
	}
	if w.Enabled() {
		t.Fatal("zero WindowSpec must be disabled")
	}
}

func TestWindowClock(t *testing.T) {
	tup := relation.MustTuple(schemaR, relation.Int64(1), relation.Int64(2), relation.Int64(3))
	tup.PubTime = 111
	tup.PubSeq = 222
	if (WindowSpec{Kind: WindowTime, Size: 5}).Clock(tup) != 111 {
		t.Fatal("time window clock")
	}
	if (WindowSpec{Kind: WindowTuples, Size: 5}).Clock(tup) != 222 {
		t.Fatal("tuple window clock")
	}
}

func TestTriggerProjectionCanonical(t *testing.T) {
	q := sectionThreeQuery()
	t1 := relation.MustTuple(schemaS, relation.Int64(3), relation.Int64(5), relation.Int64(7))
	t2 := relation.MustTuple(schemaS, relation.Int64(3), relation.Int64(5), relation.Int64(99))
	// S.C is not referenced by q, so projections must be equal.
	if q.TriggerProjection(t1) != q.TriggerProjection(t2) {
		t.Fatal("projection must ignore unreferenced attributes")
	}
	t3 := relation.MustTuple(schemaS, relation.Int64(4), relation.Int64(5), relation.Int64(7))
	if q.TriggerProjection(t1) == q.TriggerProjection(t3) {
		t.Fatal("projection must distinguish referenced attributes")
	}
}

func TestValidate(t *testing.T) {
	cat, _ := relation.NewCatalog(schemaR, schemaS, schemaJ, schemaM)
	if err := figure1Query().Validate(cat); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := figure1Query()
	bad.Relations = append(bad.Relations, "R") // duplicate FROM
	if err := bad.Validate(cat); err == nil {
		t.Fatal("duplicate FROM accepted")
	}
	bad2 := figure1Query()
	bad2.Joins[0].Left.Attr = "Z"
	if err := bad2.Validate(cat); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	bad3 := figure1Query()
	bad3.Relations = []string{"R", "S", "J", "M", "X"}
	if err := bad3.Validate(cat); err == nil {
		t.Fatal("unknown relation accepted")
	}
	cross := &Query{
		ID:        "cross",
		Select:    []SelectItem{{Col: ColRef{"R", "A"}}},
		Relations: []string{"R", "S"},
	}
	if err := cross.Validate(cat); err == nil {
		t.Fatal("cross product accepted")
	}
}

// Property: rewriting by a matching tuple always removes exactly one
// relation and never leaves conjuncts mentioning it.
func TestRewriteRemovesRelationProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		q := figure1Query()
		tup := relation.MustTuple(schemaR,
			relation.Int64(int64(a%10)), relation.Int64(int64(b%10)), relation.Int64(int64(c%10)))
		q1, ok := Rewrite(q, tup)
		if !ok {
			return false // figure1Query has no selections on R; R tuples always match
		}
		if len(q1.Relations) != len(q.Relations)-1 {
			return false
		}
		for _, j := range q1.Joins {
			if j.Left.Rel == "R" || j.Right.Rel == "R" {
				return false
			}
		}
		for _, s := range q1.Selections {
			if s.Col.Rel == "R" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a chain of rewrites over tuples that pairwise satisfy the
// join conditions always terminates in a complete query whose answer
// matches direct evaluation.
func TestFullRewriteChainProperty(t *testing.T) {
	f := func(av, bv uint8) bool {
		a, b := int64(av%20), int64(bv%20)
		q := &Query{
			ID:        "p",
			Select:    []SelectItem{{Col: ColRef{"R", "B"}}, {Col: ColRef{"S", "B"}}},
			Relations: []string{"R", "S"},
			Joins:     []JoinCond{{ColRef{"R", "A"}, ColRef{"S", "A"}}},
		}
		tR := relation.MustTuple(schemaR, relation.Int64(a), relation.Int64(b), relation.Int64(0))
		tS := relation.MustTuple(schemaS, relation.Int64(a), relation.Int64(b+1), relation.Int64(0))
		q1, ok := Rewrite(q, tR)
		if !ok {
			return false
		}
		q2, ok := Rewrite(q1, tS)
		if !ok {
			return false
		}
		if !q2.IsComplete() {
			return false
		}
		vals := q2.AnswerValues()
		return vals[0].Int == b && vals[1].Int == b+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: rewrite order does not change the final answer (R then S
// vs S then R).
func TestRewriteOrderIndependenceProperty(t *testing.T) {
	f := func(av, bv, cv uint8) bool {
		a, b, c := int64(av%10), int64(bv%10), int64(cv%10)
		mk := func() *Query {
			return &Query{
				ID:        "p",
				Select:    []SelectItem{{Col: ColRef{"R", "C"}}, {Col: ColRef{"S", "C"}}},
				Relations: []string{"R", "S"},
				Joins:     []JoinCond{{ColRef{"R", "A"}, ColRef{"S", "A"}}},
			}
		}
		tR := relation.MustTuple(schemaR, relation.Int64(a), relation.Int64(0), relation.Int64(b))
		tS := relation.MustTuple(schemaS, relation.Int64(a), relation.Int64(0), relation.Int64(c))
		viaR, ok1 := Rewrite(mk(), tR)
		if !ok1 {
			return false
		}
		ansR, ok2 := Rewrite(viaR, tS)
		if !ok2 {
			return false
		}
		viaS, ok3 := Rewrite(mk(), tS)
		if !ok3 {
			return false
		}
		ansS, ok4 := Rewrite(viaS, tR)
		if !ok4 {
			return false
		}
		v1, v2 := ansR.AnswerValues(), ansS.AnswerValues()
		return v1[0] == v2[0] && v1[1] == v2[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAnswerValuesPanicsOnIncomplete(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	figure1Query().AnswerValues()
}

func TestStringRendersDistinctAndWindow(t *testing.T) {
	q := figure1Query()
	q.Distinct = true
	q.Window = WindowSpec{Kind: WindowTuples, Size: 100}
	s := q.String()
	if !strings.Contains(s, "distinct") || !strings.Contains(s, "within 100 tuples") {
		t.Fatalf("rendered %q", s)
	}
}
