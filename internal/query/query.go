// Package query implements the continuous-query representation RJoin
// rewrites: multi-way equi-join queries over the relational model, the
// rewriting step that substitutes an arriving tuple's values into a
// query (Section 3), the index-key candidate enumeration used to decide
// where a query is placed (Sections 3 and 6), and the sliding-window
// parameters of Section 5.
package query

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rjoin/internal/relation"
)

// ColRef names one attribute of one relation, e.g. R.A.
type ColRef struct {
	Rel  string
	Attr string
}

// String renders the reference as Rel.Attr.
func (c ColRef) String() string { return c.Rel + "." + c.Attr }

// AggFunc identifies the aggregate function applied to a select item.
// AggNone marks a plain (non-aggregate) item, so the zero value of
// SelectItem keeps its pre-aggregation meaning.
type AggFunc uint8

const (
	// AggNone marks a plain column or constant select item.
	AggNone AggFunc = iota
	// AggCount is COUNT(col) or COUNT(*) (Star set); with AggDistinct
	// it is COUNT(DISTINCT col).
	AggCount
	// AggSum sums integer values (string values are ignored).
	AggSum
	// AggMin takes the minimum under the total value order (integers
	// before strings, then by value).
	AggMin
	// AggMax takes the maximum under the same order.
	AggMax
	// AggAvg averages integer values; it finalizes to a decimal string.
	AggAvg
)

// String renders the function name as it appears in SQL text.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return "none"
	}
}

// SelectItem is one output column: either a column reference or, after
// rewriting substituted it, a constant. An aggregate item (Agg !=
// AggNone) travels through rewriting exactly like the plain item its
// argument column would — the rewrite machinery substitutes the
// argument's value — and only the aggregation layer interprets the Agg
// marker when folding completed answer rows into per-group state.
// COUNT(*) carries no argument: it is represented as the constant 1
// with Star set, so a completed row holds 1 at its position.
type SelectItem struct {
	IsConst bool
	Const   relation.Value
	Col     ColRef

	// Agg is the aggregate function applied to this position (AggNone
	// for plain items). Star marks COUNT(*); AggDistinct marks
	// COUNT(DISTINCT col).
	Agg         AggFunc
	Star        bool
	AggDistinct bool
}

// sqlValue renders a constant as SQL text: strings are single-quoted
// with ” escaping so that String() output re-parses to the same query
// (Value.String is the raw key form and cannot be changed — it is
// baked into index keys).
func sqlValue(v relation.Value) string {
	if v.Kind == relation.KindString {
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	}
	return v.String()
}

// String renders the item as it appears in SQL text.
func (s SelectItem) String() string {
	if s.Agg != AggNone {
		arg := s.Col.String()
		if s.Star {
			arg = "*"
		} else if s.AggDistinct {
			arg = "distinct " + arg
		}
		return s.Agg.String() + "(" + arg + ")"
	}
	if s.IsConst {
		return sqlValue(s.Const)
	}
	return s.Col.String()
}

// JoinCond is an equi-join conjunct Left = Right between two columns.
type JoinCond struct {
	Left  ColRef
	Right ColRef
}

// String renders the conjunct.
func (j JoinCond) String() string { return j.Left.String() + "=" + j.Right.String() }

// SelCond is a selection conjunct Col = Val, either written by the user
// or introduced by rewriting (the paper renders these "3=S.A").
type SelCond struct {
	Col ColRef
	Val relation.Value
}

// String renders the conjunct in the paper's value-first style, with
// string constants quoted as SQL so the rendering re-parses.
func (s SelCond) String() string { return sqlValue(s.Val) + "=" + s.Col.String() }

// WindowKind selects the window clock of Section 5.
type WindowKind uint8

const (
	// WindowNone evaluates the query over the entire stream suffix.
	WindowNone WindowKind = iota
	// WindowTime windows are measured on the virtual clock (pubT).
	WindowTime
	// WindowTuples windows are measured in network-wide tuple arrivals
	// (the publication sequence number).
	WindowTuples
)

// WindowSpec is the useWindows/window/start parameter block each query
// carries in Section 5, plus the sliding/tumbling distinction.
type WindowSpec struct {
	Kind     WindowKind
	Size     int64
	Tumbling bool
}

// Enabled reports whether window restrictions apply.
func (w WindowSpec) Enabled() bool { return w.Kind != WindowNone && w.Size > 0 }

// Clock extracts the window clock value from a tuple: publication time
// for time windows, publication sequence for tuple windows.
func (w WindowSpec) Clock(t *relation.Tuple) int64 {
	if w.Kind == WindowTuples {
		return t.PubSeq
	}
	return t.PubTime
}

// Valid reports whether a rewritten query with window start "start" may
// combine with a tuple observed at clock value "clock":
// sliding windows require |start-clock|+1 <= Size, tumbling windows
// require both to fall in the same window epoch.
func (w WindowSpec) Valid(start, clock int64) bool {
	if !w.Enabled() {
		return true
	}
	if w.Tumbling {
		return epoch(start, w.Size) == epoch(clock, w.Size)
	}
	d := start - clock
	if d < 0 {
		d = -d
	}
	return d+1 <= w.Size
}

func epoch(clock, size int64) int64 {
	if clock >= 0 {
		return clock / size
	}
	return (clock - size + 1) / size
}

// EpochOf returns the window epoch a clock value falls in: clock/Size
// (floor) for windowed queries, 0 for unwindowed ones. The aggregation
// subsystem partitions each query's answer stream into these epochs.
func (w WindowSpec) EpochOf(clock int64) int64 {
	if !w.Enabled() {
		return 0
	}
	return epoch(clock, w.Size)
}

// Query is a continuous multi-way equi-join, either an input query as
// submitted or a rewritten query produced by substituting tuples. The
// answer to the input query is the union of the answers of its
// rewrites.
type Query struct {
	// ID is Key(q): the key of the submitting node concatenated with a
	// positive integer, unique network-wide.
	ID string
	// Owner is the identifier of the node that submitted the input
	// query; answers are sent directly to it.
	Owner uint64
	// InsertTime is insT(q) for the input query; rewrites inherit it.
	// Only tuples with pubT >= InsertTime may contribute to answers.
	InsertTime int64
	// Distinct requests set semantics (duplicate elimination).
	Distinct bool
	// OneTime marks a one-time (snapshot) query: it combines only
	// tuples published at or before its insertion time, delivers the
	// answers present in the network at submission, and keeps no
	// standing state (Section 4's Δ = ∞ remark). Completeness at the
	// attribute level is bounded by the ALTT retention Δ.
	OneTime bool

	Select     []SelectItem
	Relations  []string
	Joins      []JoinCond
	Selections []SelCond

	// GroupBy lists the grouping columns of an aggregate query. Every
	// GroupBy column must appear as a plain item of the select list (so
	// the group's values ride in every answer row), and every plain
	// column item must appear in GroupBy.
	GroupBy []ColRef

	Window WindowSpec
	// Start is the window-start parameter of a rewritten query
	// (meaningless while Depth == 0).
	Start int64
	// AggClock is the maximum window-clock value over the tuples this
	// rewrite chain has combined — the completion clock that assigns a
	// finished answer row to its aggregation epoch. Maintained alongside
	// Start by the trigger sites; zero on input queries.
	AggClock int64
	// MinPub is the minimum publication time over the tuples this
	// rewrite chain has combined. The engine initialises it to MaxInt64
	// on input queries and the trigger sites min-update it alongside
	// AggClock; the multi-query sharing fan-out uses it to decide which
	// subscribers of a shared pipeline a completed row belongs to (a
	// subscriber may only see rows whose every tuple was published at or
	// after its own insertion time).
	MinPub int64
	// Depth counts how many rewriting steps produced this query; an
	// input query has Depth 0.
	Depth int
	// Exclude lists publication sequence numbers of tuples this query
	// (or an ancestor) has already combined with at a previous home.
	// It is populated only by query migration — the Section 10
	// future-work extension — and is inherited by every rewrite so a
	// migrated plan never recombines a tuple and duplicates answers.
	// Kept sorted for binary search.
	Exclude []int64
	// Lineage is the provenance of this rewrite chain: one step per
	// tuple combined, in rewrite order. It is populated only when the
	// engine runs with provenance enabled, and only by the core trigger
	// sites — Rewrite itself shares the parent's slice header (like
	// every other untouched slice), so appends MUST go through
	// AppendLineage, which always copies into a fresh slice.
	Lineage []LineageStep
}

// LineageStep records one tuple a rewrite chain combined: the base
// tuple's network-wide identity ((publisher, publication sequence))
// and the ring identifier of the node whose trigger consumed it — the
// rewrite hop path of an answer row.
type LineageStep struct {
	// Pub is the publishing node's ring identifier; Seq the tuple's
	// network-wide publication sequence number.
	Pub uint64 `json:"pub"`
	Seq int64  `json:"seq"`
	// Node is the ring identifier of the node where the rewrite step
	// consumed the tuple.
	Node uint64 `json:"node"`
}

// AppendLineage returns lin extended by step, always in freshly
// allocated backing storage: rewritten queries share their parent's
// slice headers, so an in-place append could corrupt a sibling
// rewrite's provenance.
func AppendLineage(lin []LineageStep, step LineageStep) []LineageStep {
	out := make([]LineageStep, len(lin)+1)
	copy(out, lin)
	out[len(lin)] = step
	return out
}

// SortLineage orders steps by (Pub, Seq, Node) — the canonical order
// lineage set unions are snapshotted in, so equal sets render equal
// slices regardless of fold order.
func SortLineage(lin []LineageStep) {
	sort.Slice(lin, func(i, j int) bool {
		a, b := lin[i], lin[j]
		if a.Pub != b.Pub {
			return a.Pub < b.Pub
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Node < b.Node
	})
}

// Excluded reports whether the tuple with the given publication
// sequence number has already been consumed by this query line.
func (q *Query) Excluded(pubSeq int64) bool {
	i := sort.Search(len(q.Exclude), func(i int) bool { return q.Exclude[i] >= pubSeq })
	return i < len(q.Exclude) && q.Exclude[i] == pubSeq
}

// Clone returns a deep copy; rewriting never mutates a stored query.
func (q *Query) Clone() *Query {
	c := *q
	c.Select = append([]SelectItem(nil), q.Select...)
	c.Relations = append([]string(nil), q.Relations...)
	c.Joins = append([]JoinCond(nil), q.Joins...)
	c.Selections = append([]SelCond(nil), q.Selections...)
	c.GroupBy = append([]ColRef(nil), q.GroupBy...)
	c.Exclude = append([]int64(nil), q.Exclude...)
	c.Lineage = append([]LineageStep(nil), q.Lineage...)
	return &c
}

// IsAggregate reports whether any select item carries an aggregate
// function. Select lists are short, so the scan is cheap; hot paths
// that trigger per tuple cache the result on the stored query.
func (q *Query) IsAggregate() bool {
	for i := range q.Select {
		if q.Select[i].Agg != AggNone {
			return true
		}
	}
	return false
}

// HasRelation reports whether rel still appears in the FROM list.
func (q *Query) HasRelation(rel string) bool {
	for _, r := range q.Relations {
		if r == rel {
			return true
		}
	}
	return false
}

// IsComplete reports whether the where clause has become equivalent to
// "true": no relations (hence no conjuncts) remain, and an answer can
// be formed.
func (q *Query) IsComplete() bool { return len(q.Relations) == 0 }

// AnswerValues returns the output row of a complete query. It panics if
// called on an incomplete query — callers must check IsComplete.
func (q *Query) AnswerValues() []relation.Value {
	out := make([]relation.Value, len(q.Select))
	for i, s := range q.Select {
		if !s.IsConst {
			panic(fmt.Sprintf("query: AnswerValues on incomplete query %s (column %s unresolved)", q.ID, s.Col))
		}
		out[i] = s.Const
	}
	return out
}

// Matches reports whether tuple t can trigger q for rewriting: t's
// relation is still joined in q and every selection conjunct on that
// relation is satisfied by t (including join conjuncts internal to the
// relation, e.g. R.A = R.B).
func (q *Query) Matches(t *relation.Tuple) bool {
	rel := t.Relation()
	if !q.HasRelation(rel) {
		return false
	}
	for _, s := range q.Selections {
		if s.Col.Rel != rel {
			continue
		}
		v, ok := t.Value(s.Col.Attr)
		if !ok || !v.Equal(s.Val) {
			return false
		}
	}
	for _, j := range q.Joins {
		if j.Left.Rel == rel && j.Right.Rel == rel {
			lv, lok := t.Value(j.Left.Attr)
			rv, rok := t.Value(j.Right.Attr)
			if !lok || !rok || !lv.Equal(rv) {
				return false
			}
		}
	}
	return true
}

// rewritePool recycles rewrite-churned Query structs. A triggered
// rewrite that completes into an answer or turns out contradictory
// lives for a few microseconds; recycling the struct keeps the rewrite
// hot path free of per-trigger header allocations. Only the struct is
// pooled — slices are either shared with the parent (copy-on-write) or
// freshly sized for the child.
var rewritePool = sync.Pool{New: func() interface{} { return new(Query) }}

// Release returns a rewritten query to the free list. Callers must
// guarantee no reference to q escaped (e.g. a rewrite that was dropped
// without being sent anywhere). Shared parent slices are unaffected.
func Release(q *Query) {
	*q = Query{}
	rewritePool.Put(q)
}

// RewriteComplete performs the final rewriting step for a query whose
// FROM list holds exactly one remaining relation: substituting a
// triggering tuple completes the query, so the answer row is produced
// directly, without materialising the intermediate child query that
// Rewrite would build only for dispatch to immediately tear down into
// AnswerValues. It returns ok=false when t does not trigger q, exactly
// like Rewrite.
func RewriteComplete(q *Query, t *relation.Tuple) ([]relation.Value, bool) {
	if len(q.Relations) != 1 || !q.Matches(t) {
		return nil, false
	}
	rel := t.Relation()
	out := make([]relation.Value, len(q.Select))
	for i, s := range q.Select {
		if s.IsConst {
			out[i] = s.Const
			continue
		}
		if s.Col.Rel != rel {
			// The general path would have produced an "complete" query
			// with an unresolved column and panicked in AnswerValues;
			// validated queries cannot reach this.
			panic(fmt.Sprintf("query: RewriteComplete on query %s (column %s unresolved)", q.ID, s.Col))
		}
		v, ok := t.Value(s.Col.Attr)
		if !ok {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// Rewrite substitutes tuple t into q, producing the query with one
// fewer relation (the paper's rewrite(q, t)). It returns ok=false when
// t does not trigger q. The caller is responsible for window-validity
// checks and for setting Start on the result.
//
// The result is copy-on-write: slices the substitution leaves untouched
// (Select when no column of rel appears, Joins when no conjunct touches
// rel, Selections when nothing is added or dropped, and always Exclude)
// are shared with the parent. Neither parent nor child is ever mutated
// after creation, so sharing is safe; anyone who needs an independent
// deep copy uses Clone.
func Rewrite(q *Query, t *relation.Tuple) (*Query, bool) {
	if !q.Matches(t) {
		return nil, false
	}
	rel := t.Relation()
	out := rewritePool.Get().(*Query)
	*out = *q // scalars copied, slice headers shared
	out.Depth = q.Depth + 1

	// FROM list loses the substituted relation.
	rels := make([]string, 0, len(q.Relations)-1)
	for _, r := range q.Relations {
		if r != rel {
			rels = append(rels, r)
		}
	}
	out.Relations = rels

	// Select columns of rel become constants; untouched lists stay
	// shared with the parent. Substitution sets only IsConst/Const, so
	// an aggregate item keeps its Agg marker (the aggregation layer
	// recognises the completed query by it) and the column it came from.
	for i, s := range q.Select {
		if !s.IsConst && s.Col.Rel == rel {
			sel := make([]SelectItem, len(q.Select))
			copy(sel, q.Select)
			for k := i; k < len(sel); k++ {
				if sc := sel[k]; !sc.IsConst && sc.Col.Rel == rel {
					v, ok := t.Value(sc.Col.Attr)
					if !ok {
						Release(out)
						return nil, false
					}
					sel[k].IsConst = true
					sel[k].Const = v
				}
			}
			out.Select = sel
			break
		}
	}

	// Size the surviving clauses in one counting pass: join conjuncts
	// with one side on rel become selections on the other side,
	// conjuncts fully on rel were validated by Matches and are dropped,
	// and selections on rel are likewise validated and dropped.
	keptJoins, converted := 0, 0
	for _, j := range q.Joins {
		lOn, rOn := j.Left.Rel == rel, j.Right.Rel == rel
		switch {
		case lOn && rOn:
		case lOn, rOn:
			converted++
		default:
			keptJoins++
		}
	}
	keptSels := 0
	for _, s := range q.Selections {
		if s.Col.Rel != rel {
			keptSels++
		}
	}

	if keptJoins < len(q.Joins) {
		joins := make([]JoinCond, 0, keptJoins)
		for _, j := range q.Joins {
			if j.Left.Rel != rel && j.Right.Rel != rel {
				joins = append(joins, j)
			}
		}
		out.Joins = joins
	}

	if converted > 0 || keptSels < len(q.Selections) {
		// Surviving selections keep clause order; selections converted
		// from join conjuncts follow, in join order — the same ordering
		// the pre-copy-on-write implementation produced.
		sels := make([]SelCond, 0, keptSels+converted)
		for _, s := range q.Selections {
			if s.Col.Rel != rel {
				sels = append(sels, s)
			}
		}
		for _, j := range q.Joins {
			lOn, rOn := j.Left.Rel == rel, j.Right.Rel == rel
			switch {
			case lOn && rOn:
			case lOn:
				v, _ := t.Value(j.Left.Attr)
				sels = append(sels, SelCond{Col: j.Right, Val: v})
			case rOn:
				v, _ := t.Value(j.Right.Attr)
				sels = append(sels, SelCond{Col: j.Left, Val: v})
			}
		}
		out.Selections = sels
	}
	return out, true
}

// Level distinguishes the two indexing granularities of Section 3.
type Level uint8

const (
	// AttrLevel indexes under Rel+Attr.
	AttrLevel Level = iota
	// ValueLevel indexes under Rel+Attr+Value.
	ValueLevel
)

// String implements fmt.Stringer.
func (l Level) String() string {
	if l == AttrLevel {
		return "attribute"
	}
	return "value"
}

// Candidate is one possible index placement for a query: a key (with
// its ring identifier precomputed), its level, and the column (and
// value, for value level) it derives from.
type Candidate struct {
	Key   relation.Key
	Level Level
	Col   ColRef
	Val   relation.Value
}

// Candidates enumerates the placements Section 6 considers for a query:
// (a) every relation-attribute pair in a join conjunct, (b) every
// explicit relation-attribute-value selection, and (c) every implied
// selection obtained by propagating selection values through the
// equi-join equivalence classes. Input queries (Depth 0, no
// selections) naturally yield only attribute-level candidates, matching
// Section 3. The result is deduplicated and deterministically ordered
// (joins and selections in clause order, implied triples last).
func (q *Query) Candidates() []Candidate {
	out := make([]Candidate, 0, 2*len(q.Joins)+len(q.Selections))
	// Candidate sets are small (one or two per clause), so dedup by
	// linear scan instead of a map — cheaper and allocation free.
	add := func(c Candidate) {
		for i := range out {
			if out[i].Key == c.Key {
				return
			}
		}
		out = append(out, c)
	}
	// (a) attribute-level pairs from join conjuncts.
	for _, j := range q.Joins {
		add(Candidate{Key: relation.AttrKeyOf(j.Left.Rel, j.Left.Attr), Level: AttrLevel, Col: j.Left})
		add(Candidate{Key: relation.AttrKeyOf(j.Right.Rel, j.Right.Attr), Level: AttrLevel, Col: j.Right})
	}
	// (b) explicit value-level triples from selections.
	for _, s := range q.Selections {
		add(Candidate{
			Key:   relation.ValueKeyOf(s.Col.Rel, s.Col.Attr, s.Val),
			Level: ValueLevel, Col: s.Col, Val: s.Val,
		})
	}
	// (c) implied triples: propagate selection values across join
	// equivalence classes.
	for _, imp := range q.impliedSelections() {
		add(Candidate{
			Key:   relation.ValueKeyOf(imp.Col.Rel, imp.Col.Attr, imp.Val),
			Level: ValueLevel, Col: imp.Col, Val: imp.Val,
		})
	}
	return out
}

// impliedSelections computes selections logically implied by the where
// clause: if R.A = v holds and R.A joins (transitively) with S.B, then
// S.B = v is implied.
func (q *Query) impliedSelections() []SelCond {
	if len(q.Selections) == 0 || len(q.Joins) == 0 {
		return nil
	}
	parent := make(map[ColRef]ColRef)
	var find func(c ColRef) ColRef
	find = func(c ColRef) ColRef {
		p, ok := parent[c]
		if !ok || p == c {
			return c
		}
		root := find(p)
		parent[c] = root
		return root
	}
	union := func(a, b ColRef) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	cols := make(map[ColRef]bool)
	for _, j := range q.Joins {
		union(j.Left, j.Right)
		cols[j.Left] = true
		cols[j.Right] = true
	}
	classValue := make(map[ColRef]relation.Value)
	explicit := make(map[ColRef]bool)
	for _, s := range q.Selections {
		classValue[find(s.Col)] = s.Val
		explicit[s.Col] = true
	}
	var out []SelCond
	for col := range cols {
		if explicit[col] {
			continue
		}
		if v, ok := classValue[find(col)]; ok {
			out = append(out, SelCond{Col: col, Val: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Col.Rel != out[j].Col.Rel {
			return out[i].Col.Rel < out[j].Col.Rel
		}
		return out[i].Col.Attr < out[j].Col.Attr
	})
	return out
}

// Contradictory reports whether the where clause is unsatisfiable
// because two different constants are forced onto the same join
// equivalence class (e.g. 3=S.A and 5=S.A, possibly through joins).
// RJoin discards such rewrites instead of indexing them.
func (q *Query) Contradictory() bool {
	// A contradiction needs two constants on one class, i.e. at least
	// two selection conjuncts.
	if len(q.Selections) < 2 {
		return false
	}
	// Without joins every column is its own class: compare selections
	// pairwise (clauses are few) instead of building the union-find.
	if len(q.Joins) == 0 {
		for i, a := range q.Selections {
			for _, b := range q.Selections[:i] {
				if a.Col == b.Col && !a.Val.Equal(b.Val) {
					return true
				}
			}
		}
		return false
	}
	parent := make(map[ColRef]ColRef)
	var find func(c ColRef) ColRef
	find = func(c ColRef) ColRef {
		p, ok := parent[c]
		if !ok || p == c {
			return c
		}
		root := find(p)
		parent[c] = root
		return root
	}
	for _, j := range q.Joins {
		ra, rb := find(j.Left), find(j.Right)
		if ra != rb {
			parent[ra] = rb
		}
	}
	classValue := make(map[ColRef]relation.Value)
	for _, s := range q.Selections {
		root := find(s.Col)
		if v, ok := classValue[root]; ok && !v.Equal(s.Val) {
			return true
		}
		classValue[root] = s.Val
	}
	return false
}

// TriggerProjection renders the projection pi_{A1..Ak}(t) over the
// attributes of t's relation mentioned in q's select or where clause —
// the duplicate-elimination memory of Section 4. The rendering is
// canonical (attributes in schema order) so equal projections compare
// equal as strings.
func (q *Query) TriggerProjection(t *relation.Tuple) string {
	rel := t.Relation()
	used := make(map[string]bool)
	for _, s := range q.Select {
		if !s.IsConst && s.Col.Rel == rel {
			used[s.Col.Attr] = true
		}
	}
	for _, j := range q.Joins {
		if j.Left.Rel == rel {
			used[j.Left.Attr] = true
		}
		if j.Right.Rel == rel {
			used[j.Right.Attr] = true
		}
	}
	for _, s := range q.Selections {
		if s.Col.Rel == rel {
			used[s.Col.Attr] = true
		}
	}
	var b strings.Builder
	for i, attr := range t.Schema.Attrs {
		if used[attr] {
			b.WriteString(attr)
			b.WriteByte('=')
			b.WriteString(t.Values[i].String())
			b.WriteByte('|')
		}
	}
	return b.String()
}

// String renders the query as SQL in the style of the paper's examples,
// e.g. "select 5, S.B from S,P where 3=S.A and S.B=P.B".
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("select ")
	if q.Distinct {
		b.WriteString("distinct ")
	}
	for i, s := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(" from ")
	b.WriteString(strings.Join(q.Relations, ","))
	var conj []string
	for _, s := range q.Selections {
		conj = append(conj, s.String())
	}
	for _, j := range q.Joins {
		conj = append(conj, j.String())
	}
	if len(conj) > 0 {
		b.WriteString(" where ")
		b.WriteString(strings.Join(conj, " and "))
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" group by ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if q.OneTime {
		b.WriteString(" once")
	}
	if q.Window.Enabled() {
		fmt.Fprintf(&b, " within %d ", q.Window.Size)
		if q.Window.Kind == WindowTuples {
			b.WriteString("tuples")
		} else {
			b.WriteString("ticks")
		}
		if q.Window.Tumbling {
			b.WriteString(" tumbling")
		}
	}
	return b.String()
}

// Validate checks structural well-formedness of an input query against
// a catalog: every referenced relation is in the FROM list and the
// catalog, every attribute exists, no relation repeats in FROM, and
// every FROM relation is connected to the where clause (adjacent joins
// share a relation is not required, but a cross product is rejected
// because RJoin has no key to index it under).
func (q *Query) Validate(cat *relation.Catalog) error {
	fromSet := make(map[string]bool)
	for _, r := range q.Relations {
		if fromSet[r] {
			return fmt.Errorf("query %s: relation %s repeated in FROM (self-joins are unsupported, as in the paper)", q.ID, r)
		}
		fromSet[r] = true
		if _, ok := cat.Schema(r); !ok {
			return fmt.Errorf("query %s: unknown relation %s", q.ID, r)
		}
	}
	checkCol := func(c ColRef) error {
		if !fromSet[c.Rel] {
			return fmt.Errorf("query %s: column %s references relation missing from FROM", q.ID, c)
		}
		s, _ := cat.Schema(c.Rel)
		if _, ok := s.AttrIndex(c.Attr); !ok {
			return fmt.Errorf("query %s: relation %s has no attribute %s", q.ID, c.Rel, c.Attr)
		}
		return nil
	}
	for _, s := range q.Select {
		if !s.IsConst {
			if err := checkCol(s.Col); err != nil {
				return err
			}
		}
	}
	if err := q.validateAggregates(checkCol); err != nil {
		return err
	}
	touched := make(map[string]bool)
	for _, j := range q.Joins {
		if err := checkCol(j.Left); err != nil {
			return err
		}
		if err := checkCol(j.Right); err != nil {
			return err
		}
		touched[j.Left.Rel] = true
		touched[j.Right.Rel] = true
	}
	for _, s := range q.Selections {
		if err := checkCol(s.Col); err != nil {
			return err
		}
		touched[s.Col.Rel] = true
	}
	// Walk the FROM list, not fromSet: with several unjoined relations
	// the reported offender must not depend on map iteration order.
	for _, r := range q.Relations {
		if !touched[r] && len(fromSet) > 1 {
			return fmt.Errorf("query %s: relation %s joins nothing (cross products are unsupported)", q.ID, r)
		}
	}
	if len(q.Joins)+len(q.Selections) == 0 && len(q.Relations) > 1 {
		return fmt.Errorf("query %s: no where clause over %d relations", q.ID, len(q.Relations))
	}
	if q.Window.Enabled() && q.Window.Size <= 0 {
		return fmt.Errorf("query %s: non-positive window size", q.ID)
	}
	if q.OneTime && q.Window.Enabled() {
		return fmt.Errorf("query %s: one-time queries cannot carry windows", q.ID)
	}
	return nil
}

// validateAggregates checks the grouping rules of an aggregate query:
// GROUP BY requires at least one aggregate item, every plain column of
// the select list must be a grouping column and vice versa (so group
// identity is fully determined by an answer row), aggregates exclude
// DISTINCT (set semantics on raw rows would change multiplicities under
// the aggregates) and one-time snapshots (aggregation is a property of
// the continuous answer stream).
func (q *Query) validateAggregates(checkCol func(ColRef) error) error {
	if !q.IsAggregate() {
		if len(q.GroupBy) > 0 {
			return fmt.Errorf("query %s: GROUP BY without an aggregate select item", q.ID)
		}
		return nil
	}
	if q.Distinct {
		return fmt.Errorf("query %s: DISTINCT cannot combine with aggregate functions", q.ID)
	}
	if q.OneTime {
		return fmt.Errorf("query %s: one-time queries cannot aggregate", q.ID)
	}
	grouped := make(map[ColRef]bool, len(q.GroupBy))
	for _, c := range q.GroupBy {
		if err := checkCol(c); err != nil {
			return err
		}
		grouped[c] = true
	}
	selected := make(map[ColRef]bool)
	for _, s := range q.Select {
		if s.Agg != AggNone {
			continue
		}
		if s.IsConst {
			continue // constants are group-invariant
		}
		if !grouped[s.Col] {
			return fmt.Errorf("query %s: select column %s is neither aggregated nor in GROUP BY", q.ID, s.Col)
		}
		selected[s.Col] = true
	}
	for _, c := range q.GroupBy {
		if !selected[c] {
			return fmt.Errorf("query %s: GROUP BY column %s missing from the select list", q.ID, c)
		}
	}
	return nil
}
