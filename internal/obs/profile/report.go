// Report assembly and rendering: the structured form Explain()
// returns, its EXPLAIN ANALYZE-style text rendering, and the FNV-64a
// digest the determinism tests pin. The engine fills the static plan
// (placement keys in candidate order, sharing attribution) and joins
// the profiler's merged counters in; everything here is pure
// formatting over that data, in canonical order.
package profile

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Placement is one index placement of a query's rewrite pipeline:
// static plan facts plus the observed per-placement counters.
type Placement struct {
	// Key is the placement's index key ("Rel+Attr" or "Rel+Attr+Value").
	Key string `json:"key"`
	// Rel is the relation the placement indexes ("" when the placement
	// was discovered at runtime and the engine no longer knows).
	Rel string `json:"rel,omitempty"`
	// Level is "attribute", "value", or "aggregate".
	Level string `json:"level"`
	// Clause is the placement's position in the query's static
	// candidate order (the arrival-order baseline RJoin rewrites in),
	// or -1 for placements reached only through rewriting.
	Clause int `json:"clause"`

	// Observed counters (zero when profiling is off).
	Arrivals    int64 `json:"arrivals"`
	Evals       int64 `json:"evals"`
	Stored      int64 `json:"stored"`
	Rewrites    int64 `json:"rewrites"`
	Completions int64 `json:"completions"`
	CTHits      int64 `json:"ct_hits"`
	CTMisses    int64 `json:"ct_misses"`
	StateBytes  int64 `json:"state_bytes"`
	AggPartials int64 `json:"agg_partials"`
}

// triggers is the rewrite work the placement performed.
func (pl *Placement) triggers() int64 { return pl.Rewrites + pl.Completions }

// Selectivity is the rewrite steps triggered per arrival at this
// placement (above 1 when one arrival meets several stored rewrites),
// the quantity a rate-ordered planner would sort placements by. -1
// when no arrivals were observed.
func (pl *Placement) Selectivity() float64 {
	if pl.Arrivals == 0 {
		return -1
	}
	return float64(pl.triggers()) / float64(pl.Arrivals)
}

// StatePoint is one window of a query's state-footprint series.
type StatePoint struct {
	// Win is the window's start tick; Bytes the estimated retained
	// rewrite-state bytes at the end of it.
	Win   int64 `json:"win"`
	Bytes int64 `json:"bytes"`
}

// Report is the structured result of Explain(): the query's placement
// plan with per-placement observations, its sharing attribution, and
// subscriber-side delivery totals.
type Report struct {
	// Query is the subscription's query ID; SQL its rendered text.
	Query string `json:"query"`
	SQL   string `json:"sql"`
	// Now is the virtual time the report was taken at.
	Now int64 `json:"now"`

	// Pipeline is the query ID whose rewrite pipeline does this
	// query's in-network work — its own ID, or the shared class
	// leader's when multi-query sharing attached it.
	Pipeline string `json:"pipeline"`
	// Subscribers counts queries fanning out of that pipeline.
	Subscribers int `json:"subscribers"`
	// Residual renders this subscriber's residual filter/projection
	// ("" when the pipeline's completions are delivered as-is).
	Residual string `json:"residual,omitempty"`

	// Placements is the pipeline's placements: static candidates in
	// clause order first, then runtime-discovered keys sorted.
	Placements []Placement `json:"placements"`
	// Series is the pipeline's state-footprint series.
	Series []StatePoint `json:"series,omitempty"`

	// Delivery totals for this subscriber.
	Answers    int64 `json:"answers"`
	AggUpdates int64 `json:"agg_updates"`
	FanoutRows int64 `json:"fanout_rows"`

	// Profiled and Provenance report which collection layers were on.
	Profiled   bool `json:"profiled"`
	Provenance bool `json:"provenance"`
}

// frac renders a ratio with stable precision, "-" for undefined.
func frac(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.4f", v)
}

// Text renders the report in an EXPLAIN ANALYZE-like layout. The
// rendering is canonical: equal reports produce equal text, which is
// what Digest pins.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE %s (at tick %d)\n", r.Query, r.Now)
	fmt.Fprintf(&b, "  %s\n", r.SQL)
	if r.Pipeline != r.Query {
		fmt.Fprintf(&b, "  shared pipeline: %s (%d subscribers)\n", r.Pipeline, r.Subscribers)
	} else if r.Subscribers > 1 {
		fmt.Fprintf(&b, "  pipeline shared by %d subscribers\n", r.Subscribers)
	}
	if r.Residual != "" {
		fmt.Fprintf(&b, "  residual: %s\n", r.Residual)
	}
	if !r.Profiled {
		b.WriteString("  (profiling off: static plan only — set Options.Profile)\n")
	}
	for i := range r.Placements {
		pl := &r.Placements[i]
		pos := "runtime"
		if pl.Clause >= 0 {
			pos = fmt.Sprintf("clause %d", pl.Clause)
		}
		fmt.Fprintf(&b, "  -> %s [%s, %s]", pl.Key, pl.Level, pos)
		if r.Profiled {
			fmt.Fprintf(&b, " arrivals=%d evals=%d stored=%d rewrites=%d completions=%d ct=%d/%d state=%dB agg=%d sel=%s",
				pl.Arrivals, pl.Evals, pl.Stored, pl.Rewrites, pl.Completions,
				pl.CTHits, pl.CTMisses, pl.StateBytes, pl.AggPartials, frac(pl.Selectivity()))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  delivered: answers=%d agg_updates=%d fanout_rows=%d provenance=%v\n",
		r.Answers, r.AggUpdates, r.FanoutRows, r.Provenance)
	if len(r.Series) > 0 {
		b.WriteString("  state footprint:")
		for _, pt := range r.Series {
			fmt.Fprintf(&b, " t%d=%dB", pt.Win, pt.Bytes)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Digest folds the report's canonical text rendering into one 64-bit
// FNV-1a value; the explain-determinism tests pin it across worker
// counts.
func (r *Report) Digest() uint64 {
	h := fnv.New64a()
	h.Write([]byte(r.Text()))
	return h.Sum64()
}
