package profile

import (
	"reflect"
	"testing"

	"rjoin/internal/sim"
)

// TestCounterMerge: counts written from different shards for the same
// (query, key, metric) must fold into one merged sum at Flush,
// regardless of which shard contributed what.
func TestCounterMerge(t *testing.T) {
	p := New(0)
	p.Add(0, "q1", "R+A", Rewrites, 2)
	p.Add(1, "q1", "R+A", Rewrites, 3)
	p.Add(sim.NoShard, "q1", "R+A", Rewrites, 1)
	p.Add(0, "q2", "R+A", Rewrites, 7) // different query: separate counter
	p.Add(0, "q1", "S+B", Evals, 4)    // different key and metric
	if got := p.Count("q1", "R+A", Rewrites); got != 0 {
		t.Fatalf("pre-Flush count leaked: %d", got)
	}
	p.Flush()
	if got := p.Count("q1", "R+A", Rewrites); got != 6 {
		t.Fatalf("merged count = %d, want 6", got)
	}
	if got := p.Count("q2", "R+A", Rewrites); got != 7 {
		t.Fatalf("q2 count = %d, want 7", got)
	}
	if got := p.Count("q1", "S+B", Evals); got != 4 {
		t.Fatalf("eval count = %d, want 4", got)
	}
	// Flush drains: a second Flush must not double anything.
	p.Flush()
	if got := p.Count("q1", "R+A", Rewrites); got != 6 {
		t.Fatalf("second Flush changed count to %d", got)
	}
}

// TestKeysSorted: Keys returns every placement key attributed under a
// query, sorted, and excludes the key-less query-level counters.
func TestKeysSorted(t *testing.T) {
	p := New(0)
	p.Add(0, "q", "S+B", Evals, 1)
	p.Add(0, "q", "R+A", Rewrites, 1)
	p.Add(0, "q", "R+A", Evals, 1) // same key twice: no duplicate
	p.Add(0, "q", "", FanoutRows, 5)
	p.Add(0, "other", "Z+Z", Evals, 1)
	p.Flush()
	if got := p.Keys("q"); !reflect.DeepEqual(got, []string{"R+A", "S+B"}) {
		t.Fatalf("Keys = %v", got)
	}
}

// TestStateSeries: state deltas bucket into interval-aligned windows by
// event time, merge across shards, and SeriesFor reports the running
// footprint in window order.
func TestStateSeries(t *testing.T) {
	p := New(10)
	p.State(0, 3, "q", 100)   // window 0
	p.State(1, 7, "q", 50)    // window 0, different shard: merged
	p.State(0, 25, "q", -30)  // window 20
	p.State(0, 14, "q2", 999) // other query: invisible to q
	p.Flush()
	got := p.SeriesFor("q")
	want := []StatePoint{{Win: 0, Bytes: 150}, {Win: 20, Bytes: 120}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SeriesFor = %+v, want %+v", got, want)
	}
}

// TestNilProfilerInert: every method of a nil profiler is a no-op that
// returns zero values — the disabled-observability contract.
func TestNilProfilerInert(t *testing.T) {
	var p *Profiler
	p.Add(0, "q", "k", Rewrites, 1)
	p.State(0, 5, "q", 10)
	p.Flush()
	p.Reset()
	if p.Count("q", "k", Rewrites) != 0 || p.Keys("q") != nil ||
		p.SeriesFor("q") != nil || p.Interval() != 0 {
		t.Fatal("nil profiler must be inert")
	}
}

// TestNilProfilerZeroAlloc pins the off-path cost: with profiling
// disabled (nil receiver) the hook calls must allocate nothing.
func TestNilProfilerZeroAlloc(t *testing.T) {
	var p *Profiler
	if n := testing.AllocsPerRun(100, func() {
		p.Add(2, "q", "R+A", Rewrites, 1)
		p.State(2, 17, "q", 64)
		p.Flush()
	}); n != 0 {
		t.Fatalf("nil profiler allocated %.1f times per run", n)
	}
}

// TestReset: Reset discards both merged and unmerged attribution.
func TestReset(t *testing.T) {
	p := New(0)
	p.Add(0, "q", "k", Evals, 3)
	p.Flush()
	p.Add(1, "q", "k", Evals, 2) // unmerged at Reset time
	p.Reset()
	p.Flush()
	if got := p.Count("q", "k", Evals); got != 0 {
		t.Fatalf("count after Reset = %d", got)
	}
}

// TestMetricStrings: every metric renders a distinct stable name.
func TestMetricStrings(t *testing.T) {
	seen := map[string]bool{}
	for m := Metric(0); m < metricCount; m++ {
		s := m.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Fatalf("metric %d name %q invalid or duplicated", m, s)
		}
		seen[s] = true
	}
	if metricCount.String() != "unknown" {
		t.Fatal("out-of-range metric must render unknown")
	}
}
