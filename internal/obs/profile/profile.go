// Package profile is the per-query, per-placement profiler behind
// Explain(): it attributes rewrites, evals, candidate-table hits and
// misses, stored-state bytes, sharing fan-out rows and aggregation
// partials to the (query, relation-placement) that caused them, all on
// the virtual clock.
//
// Determinism: every counter is a commutative sum attributed to a
// stable identity — a query ID and a placement key string, never a
// goroutine, worker or wall-clock value. Worker contexts accumulate
// into per-shard cells (the same discipline as obs.Metrics); the
// driver merges them at barriers with Flush, so reports built after a
// Sync are pure functions of (seed, workload, options) and invariant
// across worker counts on workloads whose event timeline is itself
// schedule-independent. The state-footprint series buckets by event
// timestamp (the virtual time the mutation was scheduled at), not by
// observation time, for the same reason.
//
// A nil *Profiler is a valid no-op receiver and every hook site also
// guards with a nil check, so the disabled path costs one branch and
// allocates nothing.
package profile

import (
	"sort"

	"rjoin/internal/sim"
)

// Metric enumerates the per-(query, placement) counters.
type Metric uint8

const (
	// Arrivals counts tuples delivered to a placement key. It is
	// attributed per key (query ID ""): the arrival stream at an index
	// key is shared by every query placed there.
	Arrivals Metric = iota
	// Evals counts query placements (eval messages) processed at a key.
	Evals
	// StoredQueries counts query copies stored at a key (both levels).
	StoredQueries
	// Rewrites counts rewrite steps a trigger at this placement
	// produced that did not complete the query.
	Rewrites
	// Completions counts rewrite steps at this placement that completed
	// the query into an answer row.
	Completions
	// CTHits / CTMisses count candidate-table outcomes for this
	// placement key while placing the query's rewrites.
	CTHits
	CTMisses
	// StateBytes accumulates the estimated bytes of rewrite state
	// retained at this placement (cumulative; see the window series for
	// the net footprint over time).
	StateBytes
	// FanoutRows counts per-subscriber rows produced for this query at
	// shared-pipeline completion fan-outs (attributed per query,
	// placement key "").
	FanoutRows
	// AggPartials counts answer rows folded into aggregation partials
	// at this placement (the aggregator key).
	AggPartials

	metricCount
)

var metricNames = [metricCount]string{
	"arrivals", "evals", "stored", "rewrites", "completions",
	"ct_hits", "ct_misses", "state_bytes", "fanout_rows", "agg_partials",
}

func (m Metric) String() string {
	if int(m) < len(metricNames) {
		return metricNames[m]
	}
	return "unknown"
}

// ckey identifies one counter: a query, a placement key and a metric.
// The query ID is "" for per-key attribution shared across queries
// (arrivals); the placement key is "" for query-level attribution with
// no single placement (fan-out rows).
type ckey struct {
	qid, key string
	m        Metric
}

// skey identifies one window of a query's state-footprint series.
type skey struct {
	qid string
	win int64
}

// cell is one execution context's unmerged attribution. Worker shards
// write only their own cell; the driver's Flush drains all of them.
type cell struct {
	counts map[ckey]int64
	series map[skey]int64
}

// Profiler accumulates per-(query, placement) attribution. Method
// receivers are nil-safe: a nil Profiler ignores every call.
type Profiler struct {
	interval int64
	shards   [sim.ShardSlots]cell

	// Merged at Flush (driver context only).
	counts map[ckey]int64
	series map[skey]int64
}

// New returns an empty profiler. interval is the window width of the
// state-footprint series in virtual ticks; 0 or negative means 64.
func New(interval int64) *Profiler {
	if interval <= 0 {
		interval = 64
	}
	return &Profiler{
		interval: interval,
		counts:   make(map[ckey]int64),
		series:   make(map[skey]int64),
	}
}

// Interval returns the state-series window width in ticks.
func (p *Profiler) Interval() int64 {
	if p == nil {
		return 0
	}
	return p.interval
}

// Add bumps one counter from the given scheduling shard (sim.NoShard
// for driver/global context).
func (p *Profiler) Add(shard int, qid, key string, m Metric, d int64) {
	if p == nil || d == 0 {
		return
	}
	c := &p.shards[sim.ShardSlot(shard)]
	if c.counts == nil {
		c.counts = make(map[ckey]int64)
	}
	c.counts[ckey{qid: qid, key: key, m: m}] += d
}

// State records a net change of d bytes in the query's retained
// rewrite state at virtual time at, bucketed into the series window
// the event falls in.
func (p *Profiler) State(shard int, at int64, qid string, d int64) {
	if p == nil || d == 0 {
		return
	}
	c := &p.shards[sim.ShardSlot(shard)]
	if c.series == nil {
		c.series = make(map[skey]int64)
	}
	c.series[skey{qid: qid, win: at - at%p.interval}] += d
}

// Flush folds every shard cell into the merged maps. Driver context
// only (Engine.Sync barriers), like obs.Tracer.Flush: sums are
// commutative, so the merge order cannot influence the result.
func (p *Profiler) Flush() {
	if p == nil {
		return
	}
	for i := range p.shards {
		c := &p.shards[i]
		for k, v := range c.counts {
			p.counts[k] += v
			delete(c.counts, k)
		}
		for k, v := range c.series {
			p.series[k] += v
			delete(c.series, k)
		}
	}
}

// Reset discards all attribution (driver context only).
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	for i := range p.shards {
		p.shards[i] = cell{}
	}
	p.counts = make(map[ckey]int64)
	p.series = make(map[skey]int64)
}

// Count returns one merged counter. Call after Flush.
func (p *Profiler) Count(qid, key string, m Metric) int64 {
	if p == nil {
		return 0
	}
	return p.counts[ckey{qid: qid, key: key, m: m}]
}

// Keys returns, sorted, every placement key with attribution under the
// given query ID. Call after Flush.
func (p *Profiler) Keys(qid string) []string {
	if p == nil {
		return nil
	}
	seen := make(map[string]bool)
	for k := range p.counts {
		if k.qid == qid && k.key != "" && !seen[k.key] {
			seen[k.key] = true
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SeriesFor returns the query's state-footprint series: one point per
// window that saw a net change, sorted by window start, with Bytes the
// running footprint at the end of that window. Call after Flush.
func (p *Profiler) SeriesFor(qid string) []StatePoint {
	if p == nil {
		return nil
	}
	var wins []int64
	for k := range p.series {
		if k.qid == qid {
			wins = append(wins, k.win)
		}
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i] < wins[j] })
	pts := make([]StatePoint, 0, len(wins))
	var run int64
	for _, w := range wins {
		run += p.series[skey{qid: qid, win: w}]
		pts = append(pts, StatePoint{Win: w, Bytes: run})
	}
	return pts
}
