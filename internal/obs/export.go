// Trace exporters: newline-delimited JSON for programmatic analysis and
// the Chrome trace-event format for visual inspection in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Virtual ticks map to
// microseconds — trace viewers require a real time unit, and 1 tick =
// 1 µs keeps the numbers readable — and every node gets its own lane
// (one "thread" per node under a single "process", named by the node's
// ring identifier), so causal chains read left-to-right across lanes.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// jsonlEvent is the JSONL wire form of one Event.
type jsonlEvent struct {
	At    int64  `json:"at"`
	Kind  string `json:"kind"`
	Node  string `json:"node"`
	Trace string `json:"trace,omitempty"`
	Key   string `json:"key,omitempty"`
	Arg   int64  `json:"arg"`
}

// WriteJSONL writes the merged stream as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		if err := enc.Encode(jsonlEvent{
			At:    ev.At,
			Kind:  ev.Kind.String(),
			Node:  fmt.Sprintf("%016x", ev.Node),
			Trace: ev.Trace,
			Key:   ev.Key,
			Arg:   ev.Arg,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace-event JSON array. Only
// the fields Perfetto reads are emitted: instant events ("ph":"i",
// thread scope) on pid 1, tid = the node's lane, plus flow events
// ("ph":"s"/"t"/"f") that draw each tuple's causal chain as arrows
// across lanes.
type chromeEvent struct {
	Name  string                 `json:"name"`
	Cat   string                 `json:"cat,omitempty"`
	Phase string                 `json:"ph"`
	Scope string                 `json:"s,omitempty"`
	ID    int64                  `json:"id,omitempty"`
	BP    string                 `json:"bp,omitempty"`
	TS    int64                  `json:"ts"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// WriteChromeTrace writes the merged stream in Chrome trace-event
// format. Load the file at ui.perfetto.dev (or chrome://tracing): one
// lane per node, ordered by ring identifier, with every event an
// instant marker carrying its trace ID, key and argument.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()

	// Lane assignment: rank of the node among the sorted distinct node
	// identifiers, so lanes are stable across runs of the same workload.
	laneOf := make(map[uint64]int)
	nodes := make([]uint64, 0, 64)
	for _, ev := range events {
		if _, ok := laneOf[ev.Node]; !ok {
			laneOf[ev.Node] = 0
			nodes = append(nodes, ev.Node)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for i, n := range nodes {
		laneOf[n] = i
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		buf, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		_, err = bw.Write(buf)
		return err
	}
	for i, n := range nodes {
		if err := emit(chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   i,
			Args:  map[string]interface{}{"name": fmt.Sprintf("node %016x", n)},
		}); err != nil {
			return err
		}
	}
	for _, ev := range events {
		args := map[string]interface{}{"arg": ev.Arg}
		if ev.Trace != "" {
			args["trace"] = ev.Trace
		}
		if ev.Key != "" {
			args["key"] = ev.Key
		}
		if err := emit(chromeEvent{
			Name:  ev.Kind.String(),
			Cat:   "rjoin",
			Phase: "i",
			Scope: "t",
			TS:    ev.At, // 1 virtual tick = 1 µs
			PID:   1,
			TID:   laneOf[ev.Node],
			Args:  args,
		}); err != nil {
			return err
		}
	}
	// Flow events: one arrow chain per trace ID (the tuple's lineage
	// identity, derived from publisher and publish sequence), linking
	// publish → each rewrite hop → answer delivery across node lanes.
	// The chain id is the trace's rank in first-appearance order — the
	// stream is canonically ordered, so ids are deterministic. ph "s"
	// opens the chain at the trace's first event, "t" continues it, "f"
	// with bp "e" closes it; each flow event shares the ts/tid of the
	// instant event it decorates. Single-event traces draw no arrow and
	// are skipped.
	flowID := make(map[string]int64)
	chains := make([][]int, 0, 64)
	for i, ev := range events {
		if ev.Trace == "" {
			continue
		}
		id, ok := flowID[ev.Trace]
		if !ok {
			id = int64(len(chains)) + 1 // ids are 1-based: 0 is omitted by the encoder
			flowID[ev.Trace] = id
			chains = append(chains, nil)
		}
		chains[id-1] = append(chains[id-1], i)
	}
	for ci, chain := range chains {
		if len(chain) < 2 {
			continue
		}
		for pos, ei := range chain {
			ev := events[ei]
			ce := chromeEvent{
				Name: "lineage",
				Cat:  "rjoin.flow",
				ID:   int64(ci) + 1,
				TS:   ev.At,
				PID:  1,
				TID:  laneOf[ev.Node],
				Args: map[string]interface{}{"trace": ev.Trace},
			}
			switch {
			case pos == 0:
				ce.Phase = "s"
			case pos == len(chain)-1:
				ce.Phase = "f"
				ce.BP = "e"
			default:
				ce.Phase = "t"
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
