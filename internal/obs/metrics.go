// Virtual-time metrics: allocation-free fixed-bucket histograms over
// virtual-tick measurements and a windowed rate sampler emitting
// per-node / per-message-tag / per-query time series.
//
// Determinism: histogram updates are commutative atomic adds, so a
// snapshot taken at a sync barrier depends only on the multiset of
// observed values — identical across worker counts whenever the
// workload's event multiset is. Rate-series samples are attributed to
// windows by the EVENT's virtual timestamp, not by when the sampler
// happens to run, so the series too is schedule-independent; the
// background sim.EveryBg sampler merely drains completed windows out
// of the per-shard cells into the ordered series.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync/atomic"

	"rjoin/internal/sim"
)

// HistBuckets is the fixed bucket count of every Histogram: bucket i
// holds values in (2^(i-1), 2^i] (bucket 0 holds v <= 1), with the last
// bucket catching everything larger.
const HistBuckets = 20

// Histogram is a fixed-bucket power-of-two histogram. Observe is
// allocation-free and safe for concurrent use (atomic adds, which are
// commutative — worker scheduling cannot change a barrier snapshot).
// The zero value is ready to use; a nil *Histogram discards
// observations.
type Histogram struct {
	count   int64
	sum     int64
	min     int64 // valid iff count > 0
	max     int64
	buckets [HistBuckets]int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1)) // ceil(log2 v)
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) int64 {
	if i >= HistBuckets-1 {
		return int64(1) << 62 // effectively +inf
	}
	return int64(1) << uint(i)
}

// Observe records one value. Negative values clamp to zero (latency
// and depth measurements are non-negative by construction; the clamp
// keeps a miswired hook from corrupting bucket math). Safe on a nil
// receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, v)
	atomic.AddInt64(&h.buckets[bucketOf(v)], 1)
	for {
		cur := atomic.LoadInt64(&h.min)
		if atomic.LoadInt64(&h.count) > 1 && cur <= v {
			break
		}
		if atomic.CompareAndSwapInt64(&h.min, cur, v) {
			break
		}
	}
	for {
		cur := atomic.LoadInt64(&h.max)
		if cur >= v {
			break
		}
		if atomic.CompareAndSwapInt64(&h.max, cur, v) {
			break
		}
	}
}

// LatencySummary is a point-in-time digest of a histogram. Quantiles
// are bucket upper bounds (the histogram stores counts, not samples),
// so they are exact to within one power of two.
type LatencySummary struct {
	Count    int64
	Sum      int64
	Min, Max int64
	Mean     float64
	P50, P99 int64
	Buckets  [HistBuckets]int64
}

// Summary snapshots the histogram. Call from driver context (between
// Runs); a zero summary comes back from a nil receiver.
func (h *Histogram) Summary() LatencySummary {
	var s LatencySummary
	if h == nil {
		return s
	}
	s.Count = atomic.LoadInt64(&h.count)
	s.Sum = atomic.LoadInt64(&h.sum)
	if s.Count > 0 {
		s.Min = atomic.LoadInt64(&h.min)
		s.Max = atomic.LoadInt64(&h.max)
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	for i := range s.Buckets {
		s.Buckets[i] = atomic.LoadInt64(&h.buckets[i])
	}
	s.P50 = s.quantile(0.50)
	s.P99 = s.quantile(0.99)
	return s
}

// quantile returns the upper bound of the bucket containing the q-th
// quantile observation.
func (s *LatencySummary) quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var seen int64
	for i, c := range s.Buckets {
		seen += c
		if seen > target {
			return BucketBound(i)
		}
	}
	return BucketBound(HistBuckets - 1)
}

// Sample is one windowed rate measurement: Count events of one Name
// within one Scope whose virtual timestamps fall in
// [Win, Win+interval).
type Sample struct {
	// Win is the window's start tick.
	Win int64
	// Scope is "node", "tag" or "query".
	Scope string
	// Name identifies the series within the scope: a node's ring
	// identifier in hex, a message tag, or a query ID.
	Name string
	// Count is the number of events attributed to the window.
	Count int64
}

// winKey addresses one counter cell: a window start plus a series name
// (node identifiers are rendered to hex lazily, at drain).
type winKey struct {
	win  int64
	name string
}

type nodeWinKey struct {
	win  int64
	node uint64
}

// cell is one execution context's private window counters. Only its
// own shard's handlers write it; the drain reads all cells from
// driver/global context while no handlers run.
type cell struct {
	node  map[nodeWinKey]int64
	tag   map[winKey]int64
	query map[winKey]int64
}

// Metrics is the virtual-time metrics registry: the fixed histogram
// set, per-query latency histograms, and the windowed rate series. A
// nil *Metrics is a valid disabled registry — every method is a no-op
// — and hook sites additionally nil-guard so the disabled path makes
// no calls at all.
type Metrics struct {
	// interval is the rate-series window width in ticks.
	interval int64

	// AnswerLatency observes answer-delivery vtime minus triggering
	// publish vtime, for plain answers and aggregate updates alike.
	AnswerLatency *Histogram
	// RewriteDepth observes the rewrite chain depth of every completed
	// query.
	RewriteDepth *Histogram
	// HopCount observes the DHT routing path length of every keyed
	// send.
	HopCount *Histogram
	// RetransmitRounds observes the retry number of every reliable-
	// channel retransmission.
	RetransmitRounds *Histogram

	// queries holds per-query answer-latency histograms. Written only
	// at query submission (driver context), read concurrently by
	// handlers afterwards — the same publication discipline the
	// engine's aggregate-spec table uses.
	queries map[string]*Histogram

	cells  [sim.ShardSlots]cell
	series []Sample
}

// NewMetrics returns an enabled registry with the given rate-series
// window width in ticks (<= 0 selects 64).
func NewMetrics(interval int64) *Metrics {
	if interval <= 0 {
		interval = 64
	}
	return &Metrics{
		interval:         interval,
		AnswerLatency:    &Histogram{},
		RewriteDepth:     &Histogram{},
		HopCount:         &Histogram{},
		RetransmitRounds: &Histogram{},
		queries:          make(map[string]*Histogram),
	}
}

// Interval returns the rate-series window width (0 on nil).
func (m *Metrics) Interval() int64 {
	if m == nil {
		return 0
	}
	return m.interval
}

// Start schedules the background window drain on the engine. Virtual
// background events never keep Run alive, and window attribution is by
// event timestamp, so the sampler's own scheduling cannot perturb the
// series (or the workload).
func (m *Metrics) Start(se *sim.Engine) {
	if m == nil {
		return
	}
	se.EveryBg(sim.Duration(m.interval), func(now sim.Time) bool {
		m.Drain(int64(now))
		return true
	})
}

func (m *Metrics) win(at int64) int64 { return at - at%m.interval }

// IncNode counts one delivery at a node. shard is the executing
// handler's shard (sim.NoShard from driver/global context); at is the
// event's virtual time. Safe on a nil receiver.
func (m *Metrics) IncNode(shard int, at int64, node uint64) {
	if m == nil {
		return
	}
	c := &m.cells[sim.ShardSlot(shard)]
	if c.node == nil {
		c.node = make(map[nodeWinKey]int64)
	}
	c.node[nodeWinKey{m.win(at), node}]++
}

// IncTag counts n sends under a message tag ("" is recorded as "app").
func (m *Metrics) IncTag(shard int, at int64, tag string, n int64) {
	if m == nil || n == 0 {
		return
	}
	if tag == "" {
		tag = "app"
	}
	c := &m.cells[sim.ShardSlot(shard)]
	if c.tag == nil {
		c.tag = make(map[winKey]int64)
	}
	c.tag[winKey{m.win(at), tag}] += n
}

// IncQuery counts one answer (or aggregate update) delivered for a
// query.
func (m *Metrics) IncQuery(shard int, at int64, qid string) {
	if m == nil {
		return
	}
	c := &m.cells[sim.ShardSlot(shard)]
	if c.query == nil {
		c.query = make(map[winKey]int64)
	}
	c.query[winKey{m.win(at), qid}]++
}

// RegisterQuery creates the per-query latency histogram. Must be
// called from driver context (query submission), before handlers can
// observe the query.
func (m *Metrics) RegisterQuery(qid string) {
	if m == nil {
		return
	}
	if _, ok := m.queries[qid]; !ok {
		m.queries[qid] = &Histogram{}
	}
}

// QueryHist returns a query's latency histogram (nil when unknown or
// on a nil receiver) — nil is safe to Observe on.
func (m *Metrics) QueryHist(qid string) *Histogram {
	if m == nil {
		return nil
	}
	return m.queries[qid]
}

// ObserveLatency feeds one answer latency into both the global and the
// per-query histogram.
func (m *Metrics) ObserveLatency(qid string, v int64) {
	if m == nil {
		return
	}
	m.AnswerLatency.Observe(v)
	m.queries[qid].Observe(v)
}

// Drain folds every window that closed strictly before `now` out of
// the per-shard cells into the ordered series. Must run from
// driver/global context (no handlers executing): the engine schedules
// it as a global background event, which the parallel engine executes
// serially between shard rounds.
func (m *Metrics) Drain(now int64) {
	if m == nil {
		return
	}
	m.drainBefore(m.win(now))
}

// drainAll folds everything, including the still-open window; used at
// export time.
func (m *Metrics) drainAll() {
	if m == nil {
		return
	}
	m.drainBefore(int64(1) << 62)
}

func (m *Metrics) drainBefore(cutoff int64) {
	start := len(m.series)
	for i := range m.cells {
		c := &m.cells[i]
		for k, v := range c.node {
			if k.win < cutoff {
				m.series = append(m.series, Sample{k.win, "node", fmt.Sprintf("%016x", k.node), v})
				delete(c.node, k)
			}
		}
		for k, v := range c.tag {
			if k.win < cutoff {
				m.series = append(m.series, Sample{k.win, "tag", k.name, v})
				delete(c.tag, k)
			}
		}
		for k, v := range c.query {
			if k.win < cutoff {
				m.series = append(m.series, Sample{k.win, "query", k.name, v})
				delete(c.query, k)
			}
		}
	}
	chunk := m.series[start:]
	// Merge duplicate (win, scope, name) rows from different shards,
	// then order canonically: map iteration order must not leak into
	// the output.
	sort.Slice(chunk, func(i, j int) bool { return sampleLess(chunk[i], chunk[j]) })
	out := m.series[:start]
	for _, s := range chunk {
		if n := len(out); n > start && out[n-1].Win == s.Win && out[n-1].Scope == s.Scope && out[n-1].Name == s.Name {
			out[n-1].Count += s.Count
		} else {
			out = append(out, s)
		}
	}
	m.series = out
}

func sampleLess(a, b Sample) bool {
	if a.Win != b.Win {
		return a.Win < b.Win
	}
	if a.Scope != b.Scope {
		return a.Scope < b.Scope
	}
	return a.Name < b.Name
}

// Reset zeroes every histogram, window cell and the drained series, so
// measurements can exclude a warmup phase (the engine's ResetMetrics
// calls this). Driver context only. Safe on a nil receiver.
func (m *Metrics) Reset() {
	if m == nil {
		return
	}
	*m.AnswerLatency = Histogram{}
	*m.RewriteDepth = Histogram{}
	*m.HopCount = Histogram{}
	*m.RetransmitRounds = Histogram{}
	for _, h := range m.queries {
		*h = Histogram{}
	}
	for i := range m.cells {
		m.cells[i] = cell{}
	}
	m.series = m.series[:0]
}

// Samples returns the full rate series (draining open windows first).
// Call from driver context. Nil-safe.
func (m *Metrics) Samples() []Sample {
	if m == nil {
		return nil
	}
	m.drainAll()
	return m.series
}

// WriteCSV writes the rate series as CSV:
// window_start,interval,scope,name,count.
func (m *Metrics) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "window_start,interval,scope,name,count"); err != nil {
		return err
	}
	for _, s := range m.Samples() {
		if _, err := fmt.Fprintf(bw, "%d,%d,%s,%s,%d\n", s.Win, m.Interval(), s.Scope, s.Name, s.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}
