// Package obs is the observability layer of the simulated RJoin
// deployment: a deterministic causal tracer and a virtual-time metrics
// registry, both designed so that (a) the disabled path is free — every
// hook in the engine is nil-guarded and a nil *Tracer / *Metrics method
// receiver is a no-op — and (b) the enabled path stays deterministic
// across the serial engine and every parallel worker count.
//
// # Determinism
//
// Trace identity never touches a wall clock or a random stream: a
// tuple's trace ID is derived from (publisher node, publication
// sequence number), a query's from its network-wide query ID. Both are
// assigned in coordinator context and are bit-identical across worker
// counts.
//
// Event ORDER, however, is schedule-dependent: the parallel engine
// executes same-timestamp events shard-concurrently. The tracer
// therefore buffers events per logical shard (one slot per sim shard
// plus one for coordinator context, so no lock is ever taken on the hot
// path) and canonicalizes at merge points: every Flush sorts the
// accumulated batch by (At, Kind, Node, Trace, Key, Arg). Flushes
// happen at engine sync barriers, which are driver-driven and therefore
// occur at the same virtual times for every worker count; the flushed
// stream is bit-identical whenever the event multiset is.
//
// The resulting guarantee mirrors the engine's own replay model
// exactly: a trace replays bit-identically run over run, and is
// bit-identical across every parallel worker count (Workers ∈ {2, 4,
// 8, ...}), because the barrier schedule is keyed by the fixed
// logical-shard space, never the worker count. Serial traces are
// pinned separately — the serial heap interleaves same-tick deliveries
// in a different (equally deterministic) order, which moves
// schedule-sensitive intermediate state such as candidate-table
// hit/miss outcomes, exactly as the repo's separate serial and
// parallel golden Stats digests already document.
package obs

import (
	"fmt"
	"hash/fnv"
	"sort"

	"rjoin/internal/sim"
)

// Kind enumerates trace event kinds, covering the full tuple lifecycle
// (publish → index placement → lookups → rewrite hops → completion →
// aggregation → delivery) plus transport-level annotations.
type Kind uint8

const (
	// KindPublish is the root span of a tuple trace: a tuple enters the
	// network at its publisher. Arg is the publication sequence number.
	KindPublish Kind = iota
	// KindTupleArrive is a tuple copy reaching an index node. Arg is
	// the indexing level (0 attribute, 1 value).
	KindTupleArrive
	// KindTupleStore is a value-level insertion into a node's tuple
	// index.
	KindTupleStore
	// KindALTTStore is an attribute-level insertion into a node's ALTT.
	KindALTTStore
	// KindSubmit is the root span of a query trace: a continuous query
	// enters at its subscriber node.
	KindSubmit
	// KindEval is a query (or rewritten query) arriving at an index
	// node for evaluation. Arg is the rewrite depth.
	KindEval
	// KindCTHit / KindCTMiss are candidate-table lookups during query
	// placement (Section 7's one-hop cache).
	KindCTHit
	KindCTMiss
	// KindRICWalk is a rate-information walk issued for placement
	// candidates the candidate table could not answer. Arg is the
	// number of keys requested.
	KindRICWalk
	// KindRewrite is one recursive rewrite hop: a stored query combined
	// with a matching tuple produces a smaller query shipped onward.
	// Arg is the new rewrite depth.
	KindRewrite
	// KindComplete is the final rewrite: all joins satisfied, the
	// result row leaves for the subscriber (or aggregator). Arg is the
	// completed depth.
	KindComplete
	// KindAnswer is an answer row delivered at the subscriber. Arg is
	// the answer latency in ticks (delivery vtime − publish vtime).
	KindAnswer
	// KindAggPartial is a completion row folded into an aggregator
	// node's group state. Arg is the window epoch.
	KindAggPartial
	// KindAggUpdate is a finalized group update delivered at the
	// subscriber. Arg is the answer latency in ticks.
	KindAggUpdate
	// KindReplFanout is one replica-group fan-out of a keyed state
	// mutation batch. Arg is the number of replicas addressed.
	KindReplFanout
	// KindRetransmit is a reliable-channel timer resending an
	// unacknowledged message. Arg is the retry number within the
	// current backoff ladder.
	KindRetransmit
	// KindAck is a standalone acknowledgement carrying a receiver's
	// cumulative sequence watermark (Arg).
	KindAck
	// KindBounce is a message arriving at a node that no longer owns
	// its key and being re-routed to the current owner.
	KindBounce
	// KindHandover is one chunk of state handed over during a graceful
	// leave or join. Arg is the number of entries in the chunk.
	KindHandover

	kindCount
)

var kindNames = [kindCount]string{
	"publish", "tuple.arrive", "tuple.store", "altt.store",
	"query.submit", "query.eval", "ct.hit", "ct.miss", "ric.walk",
	"rewrite", "complete", "answer", "agg.partial", "agg.update",
	"repl.fanout", "retransmit", "ack", "bounce", "handover",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// PubTrace derives a tuple's trace identifier from its publisher and
// publication sequence number — both assigned in coordinator context,
// so the ID is bit-identical across worker counts.
func PubTrace(publisher uint64, pubSeq int64) string {
	return fmt.Sprintf("pub:%016x#%d", publisher, pubSeq)
}

// Event is one trace event. All fields are virtual-time or identity
// data; nothing here depends on the wall clock or the schedule.
type Event struct {
	// At is the virtual tick the event occurred on.
	At int64
	// Kind classifies the event.
	Kind Kind
	// Node is the 64-bit ring identifier of the node the event occurred
	// at.
	Node uint64
	// Trace is the causal trace this event belongs to: a tuple trace
	// (PubTrace) or a query ID. Empty for pure transport annotations.
	Trace string
	// Key is the DHT key involved, when one is ("" otherwise).
	Key string
	// Arg is a kind-specific small integer (depth, epoch, latency,
	// fan-out, retry number — see the Kind constants).
	Arg int64
}

// less is the canonical event order used at merge points and in the
// digest: virtual time first, then identity fields. Two distinct
// executions producing the same event multiset sort to the same
// sequence.
func (e Event) less(o Event) bool {
	if e.At != o.At {
		return e.At < o.At
	}
	if e.Kind != o.Kind {
		return e.Kind < o.Kind
	}
	if e.Node != o.Node {
		return e.Node < o.Node
	}
	if e.Trace != o.Trace {
		return e.Trace < o.Trace
	}
	if e.Key != o.Key {
		return e.Key < o.Key
	}
	return e.Arg < o.Arg
}

// Tracer collects trace events. It must be used from at most one
// network: shard slots mirror the sim engine's shard layout. The zero
// of *Tracer (nil) is a valid, disabled tracer: every method is a
// no-op, and callers additionally nil-guard at hook sites so the
// disabled hot path does not even make the call.
type Tracer struct {
	// limit caps the retained event count (0 = unbounded); overflow is
	// truncated deterministically at flush and counted in dropped.
	limit   int64
	dropped int64

	// shards holds per-execution-context append buffers: one slot per
	// logical shard plus one (the last) for coordinator/global context.
	// A shard's handlers are single-threaded within a sub-round and
	// only ever touch their own slot, so no lock is needed.
	shards [sim.ShardSlots][]Event

	// events is the merged, canonically ordered stream.
	events []Event
}

// NewTracer returns an enabled tracer. maxEvents caps retained events
// (0 = unbounded).
func NewTracer(maxEvents int64) *Tracer {
	return &Tracer{limit: maxEvents}
}

// Emit records one event from the given execution shard (sim.NoShard
// for coordinator context). Safe on a nil receiver.
func (t *Tracer) Emit(shard int, ev Event) {
	if t == nil {
		return
	}
	s := sim.ShardSlot(shard)
	t.shards[s] = append(t.shards[s], ev)
}

// Flush merges the per-shard buffers into the canonical stream. It must
// be called from driver context at a sync barrier (no handlers
// running); the engine does this in Sync. Safe on a nil receiver.
func (t *Tracer) Flush() {
	if t == nil {
		return
	}
	start := len(t.events)
	for i := range t.shards {
		if len(t.shards[i]) == 0 {
			continue
		}
		t.events = append(t.events, t.shards[i]...)
		t.shards[i] = t.shards[i][:0]
	}
	batch := t.events[start:]
	sort.Slice(batch, func(i, j int) bool { return batch[i].less(batch[j]) })
	if t.limit > 0 && int64(len(t.events)) > t.limit {
		t.dropped += int64(len(t.events)) - t.limit
		t.events = t.events[:t.limit]
	}
}

// Events returns the merged stream (flushing any buffered stragglers
// first). The slice is owned by the tracer; callers must not mutate it.
// Returns nil on a nil receiver.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.Flush()
	return t.events
}

// Dropped reports events truncated by the MaxEvents cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Digest folds the canonical stream into one FNV-64a value. Two runs
// with the same event multiset and the same flush barrier times — in
// particular, the same workload on any worker count — digest
// identically. Returns 0 on a nil receiver.
func (t *Tracer) Digest() uint64 {
	if t == nil {
		return 0
	}
	h := fnv.New64a()
	for _, ev := range t.Events() {
		fmt.Fprintf(h, "%d|%d|%016x|%s|%s|%d;", ev.At, ev.Kind, ev.Node, ev.Trace, ev.Key, ev.Arg)
	}
	return h.Sum64()
}
