package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rjoin/internal/sim"
)

// TestTracerCanonicalOrder: the merged stream must not depend on which
// execution shard an event was emitted from, only on the canonical
// (At, Kind, Node, ...) order — that is the whole determinism argument.
func TestTracerCanonicalOrder(t *testing.T) {
	evs := []Event{
		{At: 2, Kind: KindRewrite, Node: 7, Trace: "q1", Arg: 1},
		{At: 1, Kind: KindPublish, Node: 3, Trace: PubTrace(3, 0)},
		{At: 2, Kind: KindTupleArrive, Node: 9, Trace: PubTrace(3, 0), Key: "R.A=3"},
		{At: 1, Kind: KindSubmit, Node: 5, Trace: "q1", Arg: 2},
	}
	a := NewTracer(0)
	for i, ev := range evs {
		a.Emit(i%sim.Shards, ev) // scatter across shards
	}
	b := NewTracer(0)
	for i := len(evs) - 1; i >= 0; i-- {
		b.Emit(sim.NoShard, evs[i]) // reverse order, coordinator slot
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digest depends on emit shard/order: %x vs %x", a.Digest(), b.Digest())
	}
	got := a.Events()
	for i := 1; i < len(got); i++ {
		if got[i].less(got[i-1]) {
			t.Fatalf("events not in canonical order at %d: %+v before %+v", i, got[i-1], got[i])
		}
	}
}

// TestTracerFlushBatches: events flushed in separate batches keep batch
// order (later flush, later position) even when their timestamps
// interleave — batches model sim barriers, which only ever move forward.
func TestTracerFlushBatches(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(0, Event{At: 5, Kind: KindPublish, Node: 1})
	tr.Flush()
	tr.Emit(1, Event{At: 5, Kind: KindAnswer, Node: 2})
	tr.Flush()
	got := tr.Events()
	if len(got) != 2 || got[0].Kind != KindPublish || got[1].Kind != KindAnswer {
		t.Fatalf("batch order lost: %+v", got)
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 10; i++ {
		tr.Emit(sim.NoShard, Event{At: int64(i), Kind: KindPublish, Node: 1})
	}
	if got := len(tr.Events()); got != 3 {
		t.Fatalf("limit 3 retained %d events", got)
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, Event{})
	tr.Flush()
	if tr.Events() != nil || tr.Digest() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be inert")
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestExportJSONL(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(0, Event{At: 1, Kind: KindPublish, Node: 3, Trace: PubTrace(3, 0)})
	tr.Emit(0, Event{At: 4, Kind: KindAnswer, Node: 9, Trace: "q1", Arg: 3})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d: %q", len(lines), buf.String())
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %q not valid JSON: %v", ln, err)
		}
	}
}

// TestExportChromeTrace: the Chrome trace-event output must be one valid
// JSON array with per-node thread-name metadata plus one instant event
// per trace event — the shape Perfetto's JSON importer accepts.
func TestExportChromeTrace(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(0, Event{At: 1, Kind: KindPublish, Node: 3})
	tr.Emit(0, Event{At: 2, Kind: KindTupleArrive, Node: 5, Key: "R.A=1"})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome trace not a JSON array: %v\n%s", err, buf.String())
	}
	var meta, inst int
	for _, e := range evs {
		switch e["ph"] {
		case "M":
			meta++
		case "i":
			inst++
		}
	}
	if meta != 2 || inst != 2 {
		t.Fatalf("want 2 metadata + 2 instant events, got %d + %d", meta, inst)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 2, 3, 100, -5} {
		h.Observe(v)
	}
	s := h.Summary()
	if s.Count != 6 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 0 || s.Max != 100 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	if s.P50 > s.P99 {
		t.Fatalf("P50 %d > P99 %d", s.P50, s.P99)
	}
	var total int64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	if s := h.Summary(); s.Count != 0 {
		t.Fatal("nil histogram must be inert")
	}
}

// TestMetricsWindows: counts land in the window of the event timestamp
// regardless of drain timing, duplicate (win, scope, name) rows from
// different shards merge, and the CSV renders every completed window.
func TestMetricsWindows(t *testing.T) {
	m := NewMetrics(10)
	m.IncNode(0, 3, 0xa)
	m.IncNode(1, 7, 0xa) // same node, different shard, same window
	m.IncTag(0, 12, "ric", 2)
	m.IncQuery(2, 5, "q1")
	m.Drain(20) // completes windows 0 and 10
	samples := m.Samples()
	byKey := map[string]int64{}
	for _, s := range samples {
		byKey[s.Scope+"/"+s.Name] += s.Count
	}
	if byKey["node/000000000000000a"] != 2 {
		t.Fatalf("node counts did not merge: %+v", samples)
	}
	if byKey["tag/ric"] != 2 || byKey["query/q1"] != 1 {
		t.Fatalf("unexpected samples: %+v", samples)
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(buf.String()), "\n"); len(lines) != 1+len(samples) {
		t.Fatalf("CSV rows %d != header + %d samples:\n%s", len(lines), len(samples), buf.String())
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.IncNode(0, 1, 2)
	m.IncTag(0, 1, "x", 1)
	m.IncQuery(0, 1, "q")
	m.ObserveLatency("q", 5)
	m.RegisterQuery("q")
	m.Drain(100)
	m.Reset()
	if m.Samples() != nil || m.QueryHist("q") != nil {
		t.Fatal("nil metrics must be inert")
	}
}

// TestObsDisabledZeroAlloc pins the disabled-path contract: with tracing
// and metrics off (nil receivers), every hook the hot paths call must
// allocate nothing.
func TestObsDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	var m *Metrics
	var h *Histogram
	if n := testing.AllocsPerRun(100, func() {
		tr.Emit(3, Event{At: 1, Kind: KindPublish, Node: 2})
		tr.Flush()
		m.IncNode(3, 1, 2)
		m.IncTag(3, 1, "ric", 1)
		m.IncQuery(3, 1, "q1")
		m.ObserveLatency("q1", 7)
		h.Observe(7)
	}); n != 0 {
		t.Fatalf("disabled observability allocated %.1f times per run", n)
	}
}

// TestEnabledHistogramZeroAlloc: the enabled histogram path must also be
// allocation-free — it is on the answer hot path.
func TestEnabledHistogramZeroAlloc(t *testing.T) {
	h := &Histogram{}
	if n := testing.AllocsPerRun(100, func() { h.Observe(42) }); n != 0 {
		t.Fatalf("Histogram.Observe allocated %.1f times per run", n)
	}
}
