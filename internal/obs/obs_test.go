package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rjoin/internal/sim"
)

// TestTracerCanonicalOrder: the merged stream must not depend on which
// execution shard an event was emitted from, only on the canonical
// (At, Kind, Node, ...) order — that is the whole determinism argument.
func TestTracerCanonicalOrder(t *testing.T) {
	evs := []Event{
		{At: 2, Kind: KindRewrite, Node: 7, Trace: "q1", Arg: 1},
		{At: 1, Kind: KindPublish, Node: 3, Trace: PubTrace(3, 0)},
		{At: 2, Kind: KindTupleArrive, Node: 9, Trace: PubTrace(3, 0), Key: "R.A=3"},
		{At: 1, Kind: KindSubmit, Node: 5, Trace: "q1", Arg: 2},
	}
	a := NewTracer(0)
	for i, ev := range evs {
		a.Emit(i%sim.Shards, ev) // scatter across shards
	}
	b := NewTracer(0)
	for i := len(evs) - 1; i >= 0; i-- {
		b.Emit(sim.NoShard, evs[i]) // reverse order, coordinator slot
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digest depends on emit shard/order: %x vs %x", a.Digest(), b.Digest())
	}
	got := a.Events()
	for i := 1; i < len(got); i++ {
		if got[i].less(got[i-1]) {
			t.Fatalf("events not in canonical order at %d: %+v before %+v", i, got[i-1], got[i])
		}
	}
}

// TestTracerFlushBatches: events flushed in separate batches keep batch
// order (later flush, later position) even when their timestamps
// interleave — batches model sim barriers, which only ever move forward.
func TestTracerFlushBatches(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(0, Event{At: 5, Kind: KindPublish, Node: 1})
	tr.Flush()
	tr.Emit(1, Event{At: 5, Kind: KindAnswer, Node: 2})
	tr.Flush()
	got := tr.Events()
	if len(got) != 2 || got[0].Kind != KindPublish || got[1].Kind != KindAnswer {
		t.Fatalf("batch order lost: %+v", got)
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 10; i++ {
		tr.Emit(sim.NoShard, Event{At: int64(i), Kind: KindPublish, Node: 1})
	}
	if got := len(tr.Events()); got != 3 {
		t.Fatalf("limit 3 retained %d events", got)
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, Event{})
	tr.Flush()
	if tr.Events() != nil || tr.Digest() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be inert")
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestExportJSONL(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(0, Event{At: 1, Kind: KindPublish, Node: 3, Trace: PubTrace(3, 0)})
	tr.Emit(0, Event{At: 4, Kind: KindAnswer, Node: 9, Trace: "q1", Arg: 3})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d: %q", len(lines), buf.String())
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %q not valid JSON: %v", ln, err)
		}
	}
}

// TestExportChromeTrace: the Chrome trace-event output must be one valid
// JSON array with per-node thread-name metadata plus one instant event
// per trace event — the shape Perfetto's JSON importer accepts.
func TestExportChromeTrace(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(0, Event{At: 1, Kind: KindPublish, Node: 3})
	tr.Emit(0, Event{At: 2, Kind: KindTupleArrive, Node: 5, Key: "R.A=1"})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome trace not a JSON array: %v\n%s", err, buf.String())
	}
	var meta, inst int
	for _, e := range evs {
		switch e["ph"] {
		case "M":
			meta++
		case "i":
			inst++
		}
	}
	if meta != 2 || inst != 2 {
		t.Fatalf("want 2 metadata + 2 instant events, got %d + %d", meta, inst)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 2, 3, 100, -5} {
		h.Observe(v)
	}
	s := h.Summary()
	if s.Count != 6 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 0 || s.Max != 100 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	if s.P50 > s.P99 {
		t.Fatalf("P50 %d > P99 %d", s.P50, s.P99)
	}
	var total int64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	if s := h.Summary(); s.Count != 0 {
		t.Fatal("nil histogram must be inert")
	}
}

// TestMetricsWindows: counts land in the window of the event timestamp
// regardless of drain timing, duplicate (win, scope, name) rows from
// different shards merge, and the CSV renders every completed window.
func TestMetricsWindows(t *testing.T) {
	m := NewMetrics(10)
	m.IncNode(0, 3, 0xa)
	m.IncNode(1, 7, 0xa) // same node, different shard, same window
	m.IncTag(0, 12, "ric", 2)
	m.IncQuery(2, 5, "q1")
	m.Drain(20) // completes windows 0 and 10
	samples := m.Samples()
	byKey := map[string]int64{}
	for _, s := range samples {
		byKey[s.Scope+"/"+s.Name] += s.Count
	}
	if byKey["node/000000000000000a"] != 2 {
		t.Fatalf("node counts did not merge: %+v", samples)
	}
	if byKey["tag/ric"] != 2 || byKey["query/q1"] != 1 {
		t.Fatalf("unexpected samples: %+v", samples)
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(buf.String()), "\n"); len(lines) != 1+len(samples) {
		t.Fatalf("CSV rows %d != header + %d samples:\n%s", len(lines), len(samples), buf.String())
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.IncNode(0, 1, 2)
	m.IncTag(0, 1, "x", 1)
	m.IncQuery(0, 1, "q")
	m.ObserveLatency("q", 5)
	m.RegisterQuery("q")
	m.Drain(100)
	m.Reset()
	if m.Samples() != nil || m.QueryHist("q") != nil {
		t.Fatal("nil metrics must be inert")
	}
}

// TestObsDisabledZeroAlloc pins the disabled-path contract: with tracing
// and metrics off (nil receivers), every hook the hot paths call must
// allocate nothing.
func TestObsDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	var m *Metrics
	var h *Histogram
	if n := testing.AllocsPerRun(100, func() {
		tr.Emit(3, Event{At: 1, Kind: KindPublish, Node: 2})
		tr.Flush()
		m.IncNode(3, 1, 2)
		m.IncTag(3, 1, "ric", 1)
		m.IncQuery(3, 1, "q1")
		m.ObserveLatency("q1", 7)
		h.Observe(7)
	}); n != 0 {
		t.Fatalf("disabled observability allocated %.1f times per run", n)
	}
}

// TestEnabledHistogramZeroAlloc: the enabled histogram path must also be
// allocation-free — it is on the answer hot path.
func TestEnabledHistogramZeroAlloc(t *testing.T) {
	h := &Histogram{}
	if n := testing.AllocsPerRun(100, func() { h.Observe(42) }); n != 0 {
		t.Fatalf("Histogram.Observe allocated %.1f times per run", n)
	}
}

// TestExportChromeTraceFlows: events sharing a trace ID must emit a
// flow-event chain — ph "s" at the first event, "t" in the middle, "f"
// with bp "e" at the last, all under one id — while traces with a
// single event draw no arrows.
func TestExportChromeTraceFlows(t *testing.T) {
	tr := NewTracer(0)
	chain := PubTrace(3, 0)
	tr.Emit(0, Event{At: 1, Kind: KindPublish, Node: 3, Trace: chain})
	tr.Emit(0, Event{At: 2, Kind: KindRewrite, Node: 5, Trace: chain})
	tr.Emit(0, Event{At: 4, Kind: KindAnswer, Node: 9, Trace: chain})
	tr.Emit(0, Event{At: 6, Kind: KindPublish, Node: 3, Trace: PubTrace(3, 1)}) // lone trace: no flow
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome trace not a JSON array: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	var ids []any
	for _, e := range evs {
		ph := e["ph"].(string)
		phases[ph]++
		switch ph {
		case "s", "t", "f":
			ids = append(ids, e["id"])
			if e["cat"] != "rjoin.flow" || e["name"] != "lineage" {
				t.Fatalf("flow event mislabelled: %v", e)
			}
			if ph == "f" && e["bp"] != "e" {
				t.Fatalf(`final flow event must bind with bp "e": %v`, e)
			}
		}
	}
	if phases["s"] != 1 || phases["t"] != 1 || phases["f"] != 1 {
		t.Fatalf("want one s/t/f chain, got %v", phases)
	}
	if phases["i"] != 4 {
		t.Fatalf("instant events must be unaffected: %v", phases)
	}
	for _, id := range ids {
		if id != ids[0] {
			t.Fatalf("flow chain ids diverge: %v", ids)
		}
	}
}

// TestHistogramZeroObservations: an untouched histogram summarizes to
// all zeros — no phantom min/max, quantiles zero, empty buckets.
func TestHistogramZeroObservations(t *testing.T) {
	h := &Histogram{}
	s := h.Summary()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 || s.Mean != 0 {
		t.Fatalf("zero-observation summary not zero: %+v", s)
	}
	if s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("quantiles of empty histogram must be 0, got P50=%d P99=%d", s.P50, s.P99)
	}
	for i, c := range s.Buckets {
		if c != 0 {
			t.Fatalf("bucket %d nonzero on empty histogram", i)
		}
	}
}

// TestHistogramSingleBucket: identical observations land in exactly one
// bucket, and every quantile is that bucket's bound.
func TestHistogramSingleBucket(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 7; i++ {
		h.Observe(5) // bucket (4, 8]
	}
	s := h.Summary()
	if s.Count != 7 || s.Min != 5 || s.Max != 5 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	occupied := -1
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if occupied != -1 {
			t.Fatalf("observations spread over buckets %d and %d", occupied, i)
		}
		if c != 7 {
			t.Fatalf("bucket %d holds %d of 7", i, c)
		}
		occupied = i
	}
	if occupied != bucketOf(5) {
		t.Fatalf("landed in bucket %d, want %d", occupied, bucketOf(5))
	}
	if s.P50 != BucketBound(occupied) || s.P99 != BucketBound(occupied) {
		t.Fatalf("quantiles %d/%d, want both %d", s.P50, s.P99, BucketBound(occupied))
	}
}

// TestHistogramMaxValueOverflow: values beyond the last finite bucket
// bound clamp into the overflow bucket without corrupting count, sum,
// max or the quantile walk.
func TestHistogramMaxValueOverflow(t *testing.T) {
	h := &Histogram{}
	huge := int64(1) << 60 // far past BucketBound(HistBuckets-2)
	h.Observe(huge)
	h.Observe(1 << 62)
	h.Observe(3) // one small value for contrast
	s := h.Summary()
	if s.Count != 3 || s.Max != 1<<62 || s.Min != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if got := s.Buckets[HistBuckets-1]; got != 2 {
		t.Fatalf("overflow bucket holds %d, want 2", got)
	}
	if s.P99 != BucketBound(HistBuckets-1) {
		t.Fatalf("P99 = %d, want overflow bound %d", s.P99, BucketBound(HistBuckets-1))
	}
	if s.P50 != BucketBound(HistBuckets-1) {
		// 3 observations: the median (index 1) is in the overflow bucket.
		t.Fatalf("P50 = %d, want overflow bound %d", s.P50, BucketBound(HistBuckets-1))
	}
}

// TestMetricsCSVEmptyRegistry: a registry that never saw an event must
// still write valid CSV — the header alone, no phantom rows.
func TestMetricsCSVEmptyRegistry(t *testing.T) {
	m := NewMetrics(10)
	m.Drain(100)
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "window_start") {
		t.Fatalf("empty registry CSV should be header only:\n%s", buf.String())
	}
}
