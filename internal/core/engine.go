package core

import (
	"fmt"
	"math"
	"sync"

	"rjoin/internal/agg"
	"rjoin/internal/chord"
	"rjoin/internal/id"
	"rjoin/internal/metrics"
	"rjoin/internal/obs"
	"rjoin/internal/obs/profile"
	"rjoin/internal/overlay"
	"rjoin/internal/query"
	"rjoin/internal/relation"
	"rjoin/internal/share"
	"rjoin/internal/sim"
)

// TagRIC is the traffic tag under which all RIC-request traffic is
// charged, so the experiment harness can report it separately (the
// "Request RIC" series of the figures).
const TagRIC = "ric"

// TagChurn is the traffic tag under which membership-change traffic is
// charged: state handover chunks, their forwarding hops, and crash
// recovery re-submissions.
const TagChurn = "churn"

// Answer is one result row delivered to a query owner.
type Answer struct {
	QueryID string
	Values  []relation.Value
	At      sim.Time
}

// Counters aggregates engine-wide event counts, useful for tests,
// ablations and the experiment reports.
type Counters struct {
	TuplesPublished      int64
	TuplesReceived       int64
	TuplesStored         int64
	TuplesCollected      int64
	ALTTStored           int64
	ALTTExpired          int64
	QueriesSubmitted     int64
	InputQueriesStored   int64
	RewritesCreated      int64
	DeepRewrites         int64 // rewrites of already-rewritten queries (Depth >= 2)
	RewritesStored       int64
	QueriesExpired       int64
	AnswersDelivered     int64
	AnswerDupesFiltered  int64
	DuplicatesSuppressed int64
	ContradictoryDropped int64
	UnplaceableDropped   int64
	RICRequests          int64
	QueriesMigrated      int64
	RICReplies           int64

	// In-network aggregation (see agg.go). AggPartials counts answer
	// rows folded into aggregation state (at aggregator nodes, or at the
	// subscriber under SubscriberSideAgg); AggUpdates counts finalized
	// group-update rows delivered to subscribers; AggStateLost counts
	// (group, epoch) partials dropped by crashes or unrecoverable
	// departures.
	AggPartials  int64
	AggUpdates   int64
	AggStateLost int64

	// Churn bookkeeping (see handover.go).
	HandoverMessages int64 // handover chunks shipped between nodes
	HandoverEntries  int64 // state entries those chunks carried
	MessagesRerouted int64 // deliveries corrected by the ownership check
	QueriesRecovered int64 // input-query placements re-indexed after a crash
	QueriesLost      int64 // input-query state dropped with no recovery possible
	RewritesLost     int64 // rewritten-query state dropped by crashes
	TuplesLost       int64 // stored tuples and ALTT entries dropped by crashes

	// Multi-query sharing (see share.go). QueriesShared counts
	// submissions that attached to an existing pipeline instead of
	// placing their own; QueriesUnsubscribed counts Unsubscribe calls;
	// SharedFanoutRows counts answer rows emitted through completion
	// fan-out tables; ContainmentRewrites counts partial rewrites
	// spawned by replaying a parent class's completed row through a
	// containment child's pipeline.
	QueriesShared       int64
	QueriesUnsubscribed int64
	SharedFanoutRows    int64
	ContainmentRewrites int64

	// Replication bookkeeping (see replicate.go).
	ReplUpdates         int64 // replica-update messages shipped (batches × targets)
	ReplOps             int64 // state operations those messages carried
	ReplStale           int64 // batches dropped as replays, reorder remnants or misdirections
	ReplSyncs           int64 // full-snapshot streams opened by group repair
	ReplPromotions      int64 // crashed nodes whose mirror a replica promoted
	ReplEntriesPromoted int64 // state entries re-indexed by those promotions
}

// add accumulates every count of o into c — the barrier merge of the
// parallel engine's per-shard accumulators. Addition commutes, so the
// merged totals are deterministic no matter which worker ran which
// shard.
func (c *Counters) add(o *Counters) {
	c.TuplesPublished += o.TuplesPublished
	c.TuplesReceived += o.TuplesReceived
	c.TuplesStored += o.TuplesStored
	c.TuplesCollected += o.TuplesCollected
	c.ALTTStored += o.ALTTStored
	c.ALTTExpired += o.ALTTExpired
	c.QueriesSubmitted += o.QueriesSubmitted
	c.InputQueriesStored += o.InputQueriesStored
	c.RewritesCreated += o.RewritesCreated
	c.DeepRewrites += o.DeepRewrites
	c.RewritesStored += o.RewritesStored
	c.QueriesExpired += o.QueriesExpired
	c.AnswersDelivered += o.AnswersDelivered
	c.AnswerDupesFiltered += o.AnswerDupesFiltered
	c.DuplicatesSuppressed += o.DuplicatesSuppressed
	c.ContradictoryDropped += o.ContradictoryDropped
	c.UnplaceableDropped += o.UnplaceableDropped
	c.RICRequests += o.RICRequests
	c.QueriesMigrated += o.QueriesMigrated
	c.RICReplies += o.RICReplies
	c.AggPartials += o.AggPartials
	c.AggUpdates += o.AggUpdates
	c.AggStateLost += o.AggStateLost
	c.QueriesShared += o.QueriesShared
	c.QueriesUnsubscribed += o.QueriesUnsubscribed
	c.SharedFanoutRows += o.SharedFanoutRows
	c.ContainmentRewrites += o.ContainmentRewrites
	c.HandoverMessages += o.HandoverMessages
	c.HandoverEntries += o.HandoverEntries
	c.MessagesRerouted += o.MessagesRerouted
	c.QueriesRecovered += o.QueriesRecovered
	c.QueriesLost += o.QueriesLost
	c.RewritesLost += o.RewritesLost
	c.TuplesLost += o.TuplesLost
	c.ReplUpdates += o.ReplUpdates
	c.ReplOps += o.ReplOps
	c.ReplStale += o.ReplStale
	c.ReplSyncs += o.ReplSyncs
	c.ReplPromotions += o.ReplPromotions
	c.ReplEntriesPromoted += o.ReplEntriesPromoted
}

// Engine runs RJoin over an overlay: it owns one Proc per DHT node,
// assigns query identities, publishes tuples (Procedure 1) and collects
// answers.
type Engine struct {
	Cfg      Config
	Counters Counters

	// QPL and SL are the paper's query-processing-load and
	// storage-load measures.
	QPL *metrics.Load
	SL  *metrics.Load

	ring  *chord.Ring
	sim   *sim.Engine
	net   *overlay.Network
	procs map[id.ID]*Proc

	answersMu  sync.Mutex // guards answers, seenRows and the aggregate views (parallel owners)
	answers    map[string][]Answer
	distinctQs map[string]bool
	seenRows   map[string]map[string]bool // owner-side DISTINCT filter

	// Aggregation registry and owner-side views. aggSpecs is written at
	// submission (coordinator context) and immutable afterwards, so
	// worker reads need no lock; the views are guarded by answersMu.
	aggSpecs map[string]*agg.Spec
	aggViews map[string]map[viewKey]viewEntry
	aggLocal map[string]map[string]*localAggGroup // SubscriberSideAgg fold state

	// Multi-query sharing state (see share.go). All four structures are
	// written only from coordinator context (SubmitQuery, Unsubscribe);
	// handlers read them lock-free, the same discipline aggSpecs
	// follows. fanouts maps a shared pipeline's QID to the immutable
	// completion fan-out snapshot — mutation replaces the snapshot
	// wholesale. retiredS marks unsubscribed subscriber QIDs (their
	// in-flight answers are dropped at the owner); retiredQ marks
	// torn-down pipeline QIDs (their in-flight rewrites are dropped
	// instead of being re-indexed, including on the handover, promotion
	// and crash-recovery resurrection paths).
	reg      *share.Registry
	fanouts  map[string]*share.Fanout
	retiredS map[string]bool
	retiredQ map[string]bool

	delta    int64
	pubSeq   int64
	queryCnt int64
	reqCnt   int64
	lossy    bool // unreliable network: senders retain messages, no pooling

	// trace and obsM mirror Cfg.Trace/Cfg.Metrics for direct hot-path
	// access. Both nil unless observability is enabled; every hook site
	// nil-guards before building an event, so the disabled path costs
	// one predictable branch and zero allocations.
	trace *obs.Tracer
	obsM  *obs.Metrics

	// prof/prov mirror Cfg.Profile/Cfg.Provenance under the same
	// discipline: nil/false disables every hook with one branch.
	// submitted retains each submitted query (coordinator-written at
	// SubmitQuery, immutable afterwards) so Explain can render the
	// static plan; provRows holds, when provenance is on, each
	// delivered answer's lineage index-aligned with answers (guarded by
	// answersMu like the answers themselves).
	prof      *profile.Profiler
	prov      bool
	submitted map[string]*query.Query
	provRows  map[string][][]query.LineageStep

	// Parallel-mode accumulators: while workers run, every hot-path
	// count goes to the acting node's shard slot and merges into the
	// public Counters/QPL/SL at the next Sync. Nil on a serial engine.
	par      bool
	shardCtr []Counters
	shardQPL []*metrics.Load
	shardSL  []*metrics.Load
	shardReq []int64 // per-shard RIC request id counters
}

// NewEngine attaches an RJoin processor to every node of the ring. The
// ring must already contain its nodes (changes in membership are
// supported afterwards via NodeJoined/NodeLeft).
func NewEngine(ring *chord.Ring, se *sim.Engine, net *overlay.Network, cfg Config) *Engine {
	if cfg.RICWindow <= 0 {
		cfg.RICWindow = DefaultConfig().RICWindow
	}
	if cfg.CTValidity <= 0 {
		cfg.CTValidity = DefaultConfig().CTValidity
	}
	e := &Engine{
		Cfg:        cfg,
		QPL:        metrics.NewLoad(),
		SL:         metrics.NewLoad(),
		ring:       ring,
		sim:        se,
		net:        net,
		procs:      make(map[id.ID]*Proc),
		answers:    make(map[string][]Answer),
		distinctQs: make(map[string]bool),
		seenRows:   make(map[string]map[string]bool),
		aggSpecs:   make(map[string]*agg.Spec),
		aggViews:   make(map[string]map[viewKey]viewEntry),
		aggLocal:   make(map[string]map[string]*localAggGroup),
		reg:        share.NewRegistry(),
		fanouts:    make(map[string]*share.Fanout),
		retiredS:   make(map[string]bool),
		retiredQ:   make(map[string]bool),
	}
	e.delta = cfg.Delta
	if cfg.Delta == 0 {
		e.delta = net.MaxDelta()
	}
	e.lossy = net.Lossy()
	e.trace = cfg.Trace
	e.obsM = cfg.Metrics
	e.prof = cfg.Profile
	e.prov = cfg.Provenance
	e.submitted = make(map[string]*query.Query)
	if e.prov {
		e.provRows = make(map[string][][]query.LineageStep)
	}
	if se.Workers() > 0 {
		e.par = true
		e.shardCtr = make([]Counters, sim.Shards)
		e.shardQPL = make([]*metrics.Load, sim.Shards)
		e.shardSL = make([]*metrics.Load, sim.Shards)
		e.shardReq = make([]int64, sim.Shards)
		for i := 0; i < sim.Shards; i++ {
			e.shardQPL[i] = metrics.NewLoad()
			e.shardSL[i] = metrics.NewLoad()
		}
	}
	for _, n := range ring.Nodes() {
		e.NodeJoined(n)
	}
	// Establish the initial replica groups. Streams open lazily with
	// their first update batch — no state exists yet — so a fresh engine
	// pays no replication traffic until something mutates.
	e.replRepair()
	return e
}

// Ring exposes the underlying overlay ring.
func (e *Engine) Ring() *chord.Ring { return e.ring }

// Net exposes the messaging layer (for traffic metrics).
func (e *Engine) Net() *overlay.Network { return e.net }

// Sim exposes the event engine.
func (e *Engine) Sim() *sim.Engine { return e.sim }

// Delta returns the effective ALTT retention.
func (e *Engine) Delta() int64 { return e.delta }

// NodeJoined attaches a processor to a node that joined the overlay.
func (e *Engine) NodeJoined(n *chord.Node) *Proc {
	p := newProc(e, n)
	e.procs[n.ID()] = p
	e.net.Attach(n, p)
	return p
}

// NodeLeft detaches a node's processor; its stored state is lost, as in
// a real failure.
func (e *Engine) NodeLeft(n *chord.Node) {
	e.net.Detach(n)
	delete(e.procs, n.ID())
}

// Proc returns the processor of a node (tests and the load balancer
// introspect node state through it).
func (e *Engine) Proc(n *chord.Node) *Proc { return e.procs[n.ID()] }

func (e *Engine) nextReqID() int64 {
	e.reqCnt++
	return e.reqCnt
}

// oracleRate is the simulator-level ground truth used by
// StrategyWorst: the actual current rate at the node responsible for a
// key. RJoin proper never calls this. It reads another processor's
// rate table, which is why StrategyWorst is rejected in parallel mode:
// a worker peeking across shards mid-round would race the owner.
func (e *Engine) oracleRate(key relation.Key, now sim.Time) float64 {
	owner := e.ring.Owner(key.ID())
	if owner == nil {
		return 0
	}
	p, ok := e.procs[owner.ID()]
	if !ok {
		return 0
	}
	return p.rate(key, now)
}

// SubmitQuery registers an input query owned by the given node, stamps
// its identity and insertion time, and indexes it in the network using
// the placement strategy. It returns the query ID answers will be
// reported under. The query must already be validated.
func (e *Engine) SubmitQuery(owner *chord.Node, q *query.Query) (string, error) {
	p, ok := e.procs[owner.ID()]
	if !ok {
		return "", fmt.Errorf("core: owner node %s has no processor", owner.ID())
	}
	if len(q.Relations) == 0 {
		return "", fmt.Errorf("core: query joins no relations")
	}
	e.queryCnt++
	q = q.Clone()
	q.ID = fmt.Sprintf("%s#%d", owner.ID(), e.queryCnt)
	q.Owner = uint64(owner.ID())
	q.InsertTime = int64(e.sim.Now())
	q.Depth = 0
	q.MinPub = math.MaxInt64
	e.Counters.QueriesSubmitted++
	qid := q.ID
	e.submitted[qid] = q
	if q.Distinct {
		e.distinctQs[qid] = true
	}
	if spec := agg.SpecOf(q); spec != nil {
		e.aggSpecs[qid] = spec
	}
	e.obsM.RegisterQuery(qid)
	if tr := e.trace; tr != nil {
		tr.Emit(sim.NoShard, obs.Event{
			At: int64(e.sim.Now()), Kind: obs.KindSubmit,
			Node: uint64(owner.ID()), Trace: qid, Arg: int64(len(q.Relations)),
		})
	}
	// The sharing registry decides what actually gets indexed: the query
	// itself (no sharing possible), a canonical full-row pipeline (first
	// member of a new equivalence class), or nothing (attached to an
	// existing pipeline's fan-out). place may drop (and pool-Release) an
	// unplaceable query, so the ID was captured before it runs.
	if pq := e.shareSubmit(q); pq != nil {
		p.place(e.sim.Now(), pq)
	}
	// Submission runs in coordinator context, outside any handler, so
	// the placement walk it may have mirrored (opAddPending) must flush
	// here — otherwise a crash of the submitting node before its next
	// handled message would lose the walk without any mirror knowing.
	p.replFlush()
	return qid, nil
}

// PublishTuple implements Procedure 1: the publisher indexes the tuple
// under the attribute-level and value-level keys of every attribute,
// delivering all 2k messages with one grouped multiSend. The engine
// stamps publication time and sequence.
func (e *Engine) PublishTuple(publisher *chord.Node, t *relation.Tuple) {
	e.pubSeq++
	t.PubSeq = e.pubSeq
	t.PubTime = int64(e.sim.Now())
	t.Publisher = uint64(publisher.ID())
	e.Counters.TuplesPublished++
	if tr := e.trace; tr != nil {
		tr.Emit(sim.NoShard, obs.Event{
			At: t.PubTime, Kind: obs.KindPublish, Node: uint64(publisher.ID()),
			Trace: obs.PubTrace(uint64(publisher.ID()), t.PubSeq), Arg: t.PubSeq,
		})
	}

	attrKeys, valueKeys := t.Keys()
	msgs := make([]overlay.Message, 0, 2*len(attrKeys))
	ids := make([]id.ID, 0, 2*len(attrKeys))
	for i := range attrKeys {
		// With attribute-level replication each tuple is delivered to
		// exactly one replica of its Rel+Attr key, chosen round robin.
		akey := e.attrKey(attrKeys[i], t.PubSeq)
		msgs = append(msgs, newTupleMsg(t, akey, query.AttrLevel, publisher.ID()))
		ids = append(ids, akey.ID())
		msgs = append(msgs, newTupleMsg(t, valueKeys[i], query.ValueLevel, publisher.ID()))
		ids = append(ids, valueKeys[i].ID())
	}
	e.net.MultiSend(publisher, msgs, ids)
}

// attrKey maps a base attribute-level key to the replica that should
// receive the tuple with the given publication sequence.
func (e *Engine) attrKey(base relation.Key, pubSeq int64) relation.Key {
	if e.Cfg.AttrReplicas < 2 {
		return base
	}
	return replicaKey(base, int(pubSeq%int64(e.Cfg.AttrReplicas)))
}

// replicaCache memoizes (base key, replica index) → replica Key so the
// per-publish round-robin pays neither the Sprintf nor the hash after
// the first derivation of each replica.
var replicaCache sync.Map // replicaRef → relation.Key

type replicaRef struct {
	base string
	i    int
}

// replicaKey derives the i-th replica key of an attribute-level key.
// Replica 0 keeps the base name so single-replica deployments are
// byte-compatible.
func replicaKey(base relation.Key, i int) relation.Key {
	if i == 0 {
		return base
	}
	ref := replicaRef{base: base.String(), i: i}
	if k, ok := replicaCache.Load(ref); ok {
		return k.(relation.Key)
	}
	k := relation.KeyOf(fmt.Sprintf("%s#r%d", base, i))
	replicaCache.Store(ref, k)
	return k
}

// recordAnswer collects an answer at its owner, applying the owner-side
// set-semantics filter for DISTINCT queries (a final local safety net on
// top of the distributed projection rule). p is the owner's processor
// (its counter slot, shard and node identity). The mutex serializes
// only the shared map bookkeeping: per-query delivery order is already
// fixed by the owner's shard schedule, so locking cannot perturb it.
func (e *Engine) recordAnswer(now sim.Time, m *answerMsg, p *Proc) {
	if e.retiredS[m.QueryID] {
		return // unsubscribed while the answer was in flight
	}
	e.answersMu.Lock()
	defer e.answersMu.Unlock()
	if e.distinctQs[m.QueryID] {
		rows, ok := e.seenRows[m.QueryID]
		if !ok {
			rows = make(map[string]bool)
			e.seenRows[m.QueryID] = rows
		}
		key := rowKey(m.Values)
		if rows[key] {
			p.ctr.AnswerDupesFiltered++
			return
		}
		rows[key] = true
	}
	p.ctr.AnswersDelivered++
	e.answers[m.QueryID] = append(e.answers[m.QueryID], Answer{
		QueryID: m.QueryID,
		Values:  m.Values,
		At:      now,
	})
	if e.prov {
		// Index-aligned with answers: suppressed duplicates returned
		// above, so row i's lineage is provRows[qid][i].
		e.provRows[m.QueryID] = append(e.provRows[m.QueryID], m.Lineage)
	}
	lat := int64(now) - m.PubAt
	if om := e.obsM; om != nil {
		om.ObserveLatency(m.QueryID, lat)
		om.IncQuery(p.shard, int64(now), m.QueryID)
	}
	if tr := e.trace; tr != nil {
		tr.Emit(p.shard, obs.Event{
			At: int64(now), Kind: obs.KindAnswer, Node: p.nid(),
			Trace: m.QueryID, Arg: lat,
		})
	}
}

// rowKey canonicalizes a row for the DISTINCT filter using the shared
// injective encoding (relation.AppendCanonical — kind tag plus
// length-prefixed payload): no choice of values — strings containing
// NUL, strings resembling a separator, or an integer rendering
// identically to a string (Int64(12) vs String64("12")) — can make two
// distinct rows collide, which a bare separator-joined rendering
// allowed (rows differing only in where a NUL fell deduplicated
// against each other, silently dropping a real answer).
func rowKey(vals []relation.Value) string {
	var b []byte
	for _, v := range vals {
		b = relation.AppendCanonical(b, v)
	}
	return string(b)
}

// Answers returns the rows delivered so far for a query, in delivery
// order. The returned slice is shared; callers must not mutate it.
func (e *Engine) Answers(queryID string) []Answer { return e.answers[queryID] }

// AnswerLineages returns, index-aligned with Answers, each delivered
// row's provenance: the (publisher, pubSeq, node) steps of the rewrite
// chain that produced it. Nil unless Config.Provenance was set. The
// returned slices are shared; callers must not mutate them.
func (e *Engine) AnswerLineages(queryID string) [][]query.LineageStep {
	if !e.prov {
		return nil
	}
	return e.provRows[queryID]
}

// AllAnswers returns a snapshot of every query's delivered answers
// keyed by query ID: the map, its slices and each answer's value row
// are copies, so callers may mutate or retain them without corrupting
// engine state. The churn experiments use this to compare whole answer
// sets against a reference run.
func (e *Engine) AllAnswers() map[string][]Answer {
	out := make(map[string][]Answer, len(e.answers))
	for qid, list := range e.answers {
		cp := make([]Answer, len(list))
		for i, a := range list {
			a.Values = append([]relation.Value(nil), a.Values...)
			cp[i] = a
		}
		out[qid] = cp
	}
	return out
}

// TotalAnswers returns the number of answers delivered across all
// queries.
func (e *Engine) TotalAnswers() int64 {
	e.Sync()
	return e.Counters.AnswersDelivered
}

// Sync merges the parallel engine's per-shard accumulators — counters,
// QPL/SL and the overlay's traffic lanes — into the public aggregates.
// It runs after every drain and before metric reads; on a serial
// engine it is a no-op. Must be called from coordinator context only.
func (e *Engine) Sync() {
	// Trace flushes belong to sync barriers: Sync runs from driver
	// context only (no handlers executing), at virtual times that are a
	// pure function of the driving program — identical for every worker
	// count — so flush batches, and with them the canonicalized event
	// order, line up bit-for-bit across serial and parallel runs.
	e.trace.Flush()
	// The profiler merges at the same barriers for the same reason: its
	// per-shard sums are commutative, and draining them only at driver
	// barriers keeps reports a pure function of the event timeline.
	e.prof.Flush()
	if !e.par {
		return
	}
	for i := range e.shardCtr {
		e.Counters.add(&e.shardCtr[i])
		e.shardCtr[i] = Counters{}
	}
	for i := range e.shardQPL {
		e.shardQPL[i].DrainInto(e.QPL)
		e.shardSL[i].DrainInto(e.SL)
	}
	e.net.Sync()
}

// Run drains all scheduled work (message deliveries and their
// cascades) to quiescence, then flushes dirty aggregator state into
// group-update emissions and drains again until the aggregate views are
// complete. On an engine with no aggregate queries the flush loop exits
// immediately and Run behaves exactly as before aggregation existed.
//
// In unreliable-network mode quiescence can be reached while messages
// are still unacknowledged (their retransmit timers are background
// events, so they never keep Run alive by themselves); the drain loop
// then advances the clock to the earliest outstanding retransmit
// deadline and drains the retransmission's cascade, repeating until
// every channel is acknowledged. Escalation ladders are bounded, so the
// loop terminates on any plan whose partitions end.
func (e *Engine) Run() {
	for {
		e.sim.Run()
		e.Sync()
		if t, ok := e.net.NextRetransmit(); ok {
			e.sim.RunUntil(t)
			continue
		}
		if !e.flushAggregates() {
			break
		}
	}
}

// RunUntil processes work up to the given virtual time.
func (e *Engine) RunUntil(t sim.Time) {
	e.sim.RunUntil(t)
	e.Sync()
}

// ResetMetrics zeroes the engine's load measures, event counters and
// the overlay's traffic accounting, without touching stored state or
// the virtual clock. The experiment harness calls it after a warmup
// stream so that measurements cover only the experiment proper.
func (e *Engine) ResetMetrics() {
	e.Sync() // fold pending shard deltas in so they are zeroed too
	e.QPL.Reset()
	e.SL.Reset()
	e.Counters = Counters{}
	e.net.ResetTraffic()
	e.obsM.Reset()
	e.prof.Reset()
}

// SweepALTT prunes expired ALTT entries on every node. Expiry is
// otherwise lazy (entries are checked when their key is touched); the
// harness calls this between measurement points to keep memory bounded.
func (e *Engine) SweepALTT() {
	now := e.sim.Now()
	for _, p := range e.procs {
		for key := range p.altt {
			p.alttScan(key, now)
		}
	}
}

// StoredState reports the total live stored queries and tuples across
// the network (instantaneous occupancy, unlike the cumulative SL
// metric). Used by window tests to show state stays bounded.
func (e *Engine) StoredState() (queries, tuples, altt int) {
	for _, p := range e.procs {
		for _, qs := range p.queries {
			queries += len(qs)
		}
		for _, ts := range p.tuples {
			tuples += len(ts)
		}
		for _, es := range p.altt {
			altt += len(es)
		}
	}
	return
}
