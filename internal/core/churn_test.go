package core

import (
	"sort"
	"testing"

	"rjoin/internal/chord"
	"rjoin/internal/overlay"
	"rjoin/internal/refeval"
	"rjoin/internal/relation"
	"rjoin/internal/sqlparse"
)

// churnNetCfg is the overlay configuration churn runs under: bouncing
// enabled so in-flight messages survive their addressee's departure.
func churnNetCfg() overlay.Config {
	cfg := overlay.DefaultConfig()
	cfg.Bounce = true
	return cfg
}

// answerBag renders the delivered answers of a query as a sorted
// multiset of row strings.
func answerBag(eng *Engine, qid string) []string {
	var rows []string
	for _, a := range eng.Answers(qid) {
		rows = append(rows, refeval.Row(a.Values).Key())
	}
	sort.Strings(rows)
	return rows
}

// expectedBag brute-forces the reference answer bag for q over the
// published tuples.
func expectedBag(t *testing.T, q string, tuples []*relation.Tuple) []string {
	t.Helper()
	parsed := sqlparse.MustParse(q, testCat)
	var rows []string
	for _, r := range refeval.Evaluate(parsed, tuples) {
		rows = append(rows, r.Key())
	}
	sort.Strings(rows)
	return rows
}

func bagsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rewriteHolder returns the node storing the most rewritten (Depth > 0)
// queries, ties broken by identifier so the choice is deterministic.
func rewriteHolder(eng *Engine) *chord.Node {
	var best *chord.Node
	bestCount := 0
	for _, p := range eng.procs {
		c := 0
		for _, list := range p.queries {
			for _, sq := range list {
				if sq.q.Depth > 0 {
					c++
				}
			}
		}
		if c > bestCount || (c == bestCount && c > 0 && best != nil && p.node.ID() < best.ID()) {
			best, bestCount = p.node, c
		}
	}
	return best
}

// inputHolder returns a node storing an input (Depth 0) query.
func inputHolder(eng *Engine) *chord.Node {
	var best *chord.Node
	for _, p := range eng.procs {
		for _, list := range p.queries {
			for _, sq := range list {
				if sq.q.Depth == 0 && (best == nil || p.node.ID() < best.ID()) {
					best = p.node
				}
			}
		}
	}
	return best
}

// TestGracefulLeaveExactlyOnce is the churn subsystem's completeness
// criterion: tuples are published, the node holding rewritten state is
// removed gracefully mid-stream (with further tuples in flight), and
// every answer the reference evaluator expects is delivered exactly
// once — no loss from the departure, no duplication from the handover.
func TestGracefulLeaveExactlyOnce(t *testing.T) {
	eng, nodes := testNet(t, 48, 3, DefaultConfig(), churnNetCfg())
	q := "select R.B, S.B from R,S where R.A=S.A"
	qid, err := eng.SubmitQuery(nodes[0], sqlparse.MustParse(q, testCat))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()

	var published []*relation.Tuple
	pub := func(i int, tu *relation.Tuple) {
		published = append(published, tu)
		eng.PublishTuple(nodes[i%len(nodes)], tu)
	}
	// First wave: R tuples create rewritten queries stored at S-side
	// keys across the network.
	for i := 0; i < 12; i++ {
		pub(i, mkTuple("R", int64(i%4), int64(i), 0))
	}
	eng.Run()

	victim := rewriteHolder(eng)
	if victim == nil {
		t.Fatal("no node holds rewritten state; workload too weak")
	}

	// Second wave: S tuples race the departure — some are still in
	// flight (addressed to the victim, among others) when it leaves.
	for i := 0; i < 12; i++ {
		pub(i, mkTuple("S", int64(i%4), int64(100+i), 0))
	}
	eng.RunUntil(eng.Sim().Now() + 1) // deliveries now mid-flight
	if err := eng.LeaveNode(victim); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	// Third wave lands after the departure: the handed-over rewritten
	// state must still combine.
	for i := 0; i < 8; i++ {
		pub(i, mkTuple("S", int64(i%4), int64(200+i), 0))
		pub(i+1, mkTuple("R", int64(i%4), int64(300+i), 0))
	}
	eng.Run()

	want := expectedBag(t, q, published)
	got := answerBag(eng, qid)
	if len(want) == 0 {
		t.Fatal("reference produced no answers; workload too weak")
	}
	if !bagsEqual(got, want) {
		t.Fatalf("answers under graceful leave diverged:\ngot  %d rows\nwant %d rows", len(got), len(want))
	}
	if eng.Counters.HandoverMessages == 0 || eng.Counters.HandoverEntries == 0 {
		t.Fatal("leave performed no handover; the test removed an empty node")
	}
	if eng.Counters.RewritesLost != 0 || eng.Counters.TuplesLost != 0 {
		t.Fatalf("graceful leave lost state: %d rewrites, %d tuples",
			eng.Counters.RewritesLost, eng.Counters.TuplesLost)
	}
}

// A sequence of graceful leaves — a third of the ring departing one by
// one between publications — must still deliver the exact reference
// bag.
func TestRepeatedLeavesStayComplete(t *testing.T) {
	eng, nodes := testNet(t, 36, 7, DefaultConfig(), churnNetCfg())
	q := "select R.B, S.C from R,S where R.A=S.A and R.C=S.C"
	qid, err := eng.SubmitQuery(nodes[5], sqlparse.MustParse(q, testCat))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()

	var published []*relation.Tuple
	for round := 0; round < 12; round++ {
		r := mkTuple("R", int64(round%3), int64(round), int64(round%2))
		s := mkTuple("S", int64(round%3), int64(50+round), int64(round%2))
		published = append(published, r, s)
		alive := eng.Ring().Nodes()
		eng.PublishTuple(alive[round%len(alive)], r)
		eng.PublishTuple(alive[(round+1)%len(alive)], s)
		eng.RunUntil(eng.Sim().Now() + 2)
		alive = eng.Ring().Nodes()
		if len(alive) > 24 {
			if err := eng.LeaveNode(alive[(round*5)%len(alive)]); err != nil {
				t.Fatal(err)
			}
			eng.Ring().TickStabilize()
		}
		eng.Run()
	}
	eng.Run()

	want := expectedBag(t, q, published)
	got := answerBag(eng, qid)
	if len(want) == 0 {
		t.Fatal("reference produced no answers")
	}
	if !bagsEqual(got, want) {
		t.Fatalf("answers diverged after repeated leaves: got %d rows, want %d", len(got), len(want))
	}
}

// CrashNode drops state, but input queries are re-indexed from their
// owner's side with identity and insertion time preserved: tuples
// published after the crash still produce their answers.
func TestCrashRecoversInputQueries(t *testing.T) {
	eng, nodes := testNet(t, 48, 11, DefaultConfig(), churnNetCfg())
	q := "select R.B, S.B from R,S where R.A=S.A"
	qid, err := eng.SubmitQuery(nodes[2], sqlparse.MustParse(q, testCat))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()

	victim := inputHolder(eng)
	if victim == nil {
		t.Fatal("input query not stored anywhere")
	}
	if err := eng.CrashNode(victim); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		eng.Ring().TickStabilize()
	}
	eng.Run() // recovery re-submission lands

	if eng.Counters.QueriesRecovered == 0 {
		t.Fatal("crash of the input query's home triggered no recovery")
	}

	var published []*relation.Tuple
	for i := 0; i < 10; i++ {
		r := mkTuple("R", int64(i%3), int64(i), 0)
		s := mkTuple("S", int64(i%3), int64(40+i), 0)
		published = append(published, r, s)
		alive := eng.Ring().Nodes()
		eng.PublishTuple(alive[i%len(alive)], r)
		eng.PublishTuple(alive[(i+3)%len(alive)], s)
		eng.Run()
	}

	want := expectedBag(t, q, published)
	got := answerBag(eng, qid)
	if len(want) == 0 {
		t.Fatal("reference produced no answers")
	}
	if !bagsEqual(got, want) {
		t.Fatalf("post-crash answers diverged: got %d rows, want %d", len(got), len(want))
	}
}

// A crash that takes rewritten state down loses exactly the answers
// that state would have produced — and the loss is visible in the
// counters, not silent.
func TestCrashCountsLostState(t *testing.T) {
	eng, nodes := testNet(t, 48, 13, DefaultConfig(), churnNetCfg())
	_, err := eng.SubmitQuery(nodes[1], sqlparse.MustParse(
		"select R.B, S.B from R,S where R.A=S.A", testCat))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for i := 0; i < 16; i++ {
		eng.PublishTuple(nodes[i%len(nodes)], mkTuple("R", int64(i%4), int64(i), 0))
	}
	eng.Run()
	victim := rewriteHolder(eng)
	if victim == nil {
		t.Fatal("no rewritten state to crash")
	}
	if err := eng.CrashNode(victim); err != nil {
		t.Fatal(err)
	}
	if eng.Counters.RewritesLost == 0 {
		t.Fatal("crash dropped rewritten state without counting it")
	}
}

// JoinNode splits an existing node's arc: the stored state in the new
// arc moves to the joiner, and a workload spanning the join stays
// exactly-once.
func TestJoinNodeTakesOverArc(t *testing.T) {
	eng, nodes := testNet(t, 32, 17, DefaultConfig(), churnNetCfg())
	q := "select R.B, S.B from R,S where R.A=S.A"
	qid, err := eng.SubmitQuery(nodes[4], sqlparse.MustParse(q, testCat))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()

	var published []*relation.Tuple
	for i := 0; i < 10; i++ {
		r := mkTuple("R", int64(i%3), int64(i), 0)
		published = append(published, r)
		eng.PublishTuple(nodes[i%len(nodes)], r)
	}
	eng.Run()

	// Join directly on top of a stored rewritten query's key, so the
	// new node must take over that query to stay complete.
	holder := rewriteHolder(eng)
	if holder == nil {
		t.Fatal("no rewritten state stored")
	}
	hp := eng.procs[holder.ID()]
	var targetKey relation.Key
	for _, key := range sortedStateKeys(hp.queries) {
		for _, sq := range hp.queries[key] {
			if sq.q.Depth > 0 {
				targetKey = key
			}
		}
	}
	if targetKey.IsZero() {
		t.Fatal("holder has no rewritten key")
	}
	joined, err := eng.JoinNode(targetKey.ID())
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	jp := eng.procs[joined.ID()]
	if len(jp.queries[targetKey]) == 0 {
		t.Fatal("joined node did not receive the stored queries of its arc")
	}
	for i := 0; i < 4; i++ {
		eng.Ring().TickStabilize()
	}

	for i := 0; i < 10; i++ {
		s := mkTuple("S", int64(i%3), int64(70+i), 0)
		published = append(published, s)
		alive := eng.Ring().Nodes()
		eng.PublishTuple(alive[i%len(alive)], s)
		eng.Run()
	}

	want := expectedBag(t, q, published)
	got := answerBag(eng, qid)
	if len(want) == 0 {
		t.Fatal("reference produced no answers")
	}
	if !bagsEqual(got, want) {
		t.Fatalf("answers diverged across a runtime join: got %d rows, want %d", len(got), len(want))
	}
}
