// Package core implements RJoin, the paper's primary contribution: the
// recursive evaluation of continuous multi-way equi-joins on top of a
// DHT. Tuples are indexed at attribute and value level (Procedure 1);
// nodes receiving tuples trigger and rewrite locally stored queries
// (Procedure 2); nodes receiving rewritten queries store them and match
// them against locally stored tuples (Procedure 3); completed rewrites
// become answers delivered directly to the query owner. The package
// also implements the ALTT completeness mechanism of Section 4,
// duplicate elimination for DISTINCT queries, the sliding/tumbling
// window rules of Section 5, and the RIC-informed placement machinery
// of Sections 6–7 (rate statistics, candidate tables, piggy-backed RIC
// info, chained RIC request walks).
package core

import (
	"rjoin/internal/obs"
	"rjoin/internal/obs/profile"
	"rjoin/internal/relation"
)

// Strategy selects how nextKey() places input and rewritten queries
// among their index candidates (Sections 3 and 6). The experiments of
// Figure 2 compare the three.
type Strategy uint8

const (
	// StrategyRIC is RJoin proper: poll candidates for their observed
	// rate of incoming tuples and index the query where the predicted
	// rate is lowest.
	StrategyRIC Strategy = iota
	// StrategyRandom picks a candidate uniformly at random.
	StrategyRandom
	// StrategyWorst is the paper's adversarial baseline: always place
	// the query at the candidate with the highest rate of incoming
	// tuples. It consults the simulator's ground truth (an oracle), so
	// it pays no RIC traffic, only the consequences of bad placement.
	StrategyWorst
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyRIC:
		return "RJoin"
	case StrategyRandom:
		return "Random"
	case StrategyWorst:
		return "Worst"
	default:
		return "unknown"
	}
}

// Config tunes the RJoin engine. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// Strategy is the query-placement strategy.
	Strategy Strategy

	// Delta is the ALTT retention Δ of Section 4 in virtual-time ticks.
	// Zero selects an automatic bound derived from the overlay's
	// maximum message delay (Network.MaxDelta), which preserves
	// eventual completeness. Negative disables the ALTT entirely
	// (used by ablation benchmarks to demonstrate lost answers).
	Delta int64

	// RICWindow is the length in ticks of the rate-measurement epoch:
	// a key's predicted rate is the number of tuple arrivals observed
	// in the last complete epoch ("we observe what has happened during
	// the last time window and assume a similar behavior").
	RICWindow int64

	// CTValidity bounds how long a candidate-table entry is trusted
	// before a fresh RIC poll is required (Section 7).
	CTValidity int64

	// UseCT enables the candidate-table cache of Section 7. Disabling
	// it forces a RIC poll for every unknown candidate (ablation).
	UseCT bool

	// PiggybackRIC attaches the sender's RIC knowledge about a
	// rewritten query's candidates to the Eval message (Section 7), so
	// the receiver typically needs to poll only the one candidate the
	// rewriting step introduced.
	PiggybackRIC bool

	// AllowAttrRewrites permits rewritten queries to be indexed at
	// attribute-level candidates, the full candidate set of Section 6.
	// It is off by default because attribute-level nodes only retain Δ
	// of tuple history (the ALTT), so a rewritten query anchored
	// out of publication order can miss tuples older than Δ — the
	// eventual-completeness proof of Theorem 1 covers the generalized
	// placement only under in-order anchoring. With the flag off,
	// rewritten queries use value-level candidates (Section 3's rule),
	// whose tuple stores are unbounded, preserving completeness.
	AllowAttrRewrites bool

	// AttrReplicas spreads attribute-level load over r replica keys
	// per Rel+Attr pair — the replication remedy of [18] the paper
	// points to for attribute-level hotspots ("a node responsible for
	// R.B receives more tuples to process than a node responsible for
	// R.B+v"). Queries indexed at attribute level are stored at every
	// replica; each tuple is delivered to exactly one replica (round
	// robin on its publication sequence), so every (query, tuple) pair
	// still meets exactly once and both completeness and bag semantics
	// are unchanged. Values < 2 disable replication.
	//
	// AttrReplicas is load spreading, not durability: the copies are
	// key aliases on different nodes, each holding a distinct slice of
	// the stream. Durability — surviving a node crash with state
	// intact — is ReplicationFactor's job.
	AttrReplicas int

	// ReplicationFactor k mirrors every keyed state entry — stored
	// queries with their DISTINCT projection memory, value-level
	// tuples, ALTT and candidate-table entries, aggregator group
	// partials — on the owner plus its k−1 ring successors, the key's
	// successor-list replica group. Mutations batch per handler and fan
	// out as replica-update messages (overlay.TagRepl); on a crash the
	// surviving replica the ring now routes to promotes its mirror, so
	// single-node crashes lose no keyed state (RewritesLost, TuplesLost
	// and AggStateLost stay zero) and the factor is restored by
	// re-replication. Values < 2 disable replication and keep the
	// counted-loss crash model.
	//
	// ReplicationFactor is durability, not load spreading: replicas are
	// passive mirrors that serve no traffic until promoted. To spread a
	// hot attribute-level key over several nodes, use AttrReplicas.
	ReplicationFactor int

	// EnableMigration turns on the future-work extension the paper
	// sketches in Section 10: on-line adaptation of the distributed
	// query plan by query migration. A stored value-level rewritten
	// query that keeps being triggered at a hot key relocates itself to
	// the coldest of its candidates (judged from the node's candidate
	// table), carrying an exclusion set of already-combined tuples so
	// no answer is duplicated. Migration is restricted to value-level
	// rewritten queries, whose destination tuple stores are unbounded,
	// so eventual completeness is preserved.
	EnableMigration bool

	// MigrationMinTriggers is how many local triggers a stored query
	// must accumulate before migration is considered (default 8).
	MigrationMinTriggers int

	// MigrationFactor requires the local key's observed rate to exceed
	// the best alternative candidate's rate by this factor before a
	// migration fires (default 4).
	MigrationFactor float64

	// SubscriberSideAgg disables in-network aggregation: completed
	// answer rows of aggregate queries ship directly to the subscriber,
	// which folds them into the aggregate view locally. The final view
	// is identical to the in-network one — this is the ablation baseline
	// the aggregation experiment compares message load against, and a
	// cross-check for the distributed fold's exactness.
	SubscriberSideAgg bool

	// TupleGC drops stored value-level tuples that can no longer fall
	// inside any window of size <= MaxWindowHint. It reduces memory
	// only; the storage-load metric counts store events and is
	// unaffected.
	TupleGC bool

	// MaxWindowHint is the largest window size any submitted query
	// uses, consulted by TupleGC. Zero disables tuple GC even when
	// TupleGC is set.
	MaxWindowHint int64

	// ShareExact enables the multi-query registry's byte-identical
	// duplicate detection (see share.go): a submitted query whose
	// canonical SQL rendering matches an already-live query attaches to
	// that query's pipeline instead of indexing a second copy, and the
	// completion node fans answer rows out to every subscriber.
	// Attaching mid-stream is only sound when completions of tuples
	// published at the attach tick happen strictly later (the fan-out
	// table must be visible first), so ShareExact requires every message
	// to take at least one tick — the rjoin layer enables it exactly
	// when MinHopDelay >= 1. Off by default: the bare engine keeps the
	// one-pipeline-per-submission behaviour.
	ShareExact bool

	// ShareQueries enables full canonical-form sharing: queries that
	// differ only in constants, filter predicates or projection lists
	// share one canonical full-row pipeline per join-graph equivalence
	// class, with per-subscriber residuals applied at the completion
	// node, and a query whose join graph strictly contains an existing
	// class's attaches to that class's completions (containment
	// sharing). Requires Catalog and implies the ShareExact timing
	// constraint (MinHopDelay >= 1).
	ShareQueries bool

	// Catalog supplies relation schemas to the canonicalizer; required
	// by ShareQueries (a canonical pipeline selects every attribute of
	// every relation, which needs the schemas). A nil Catalog disables
	// canonical sharing but leaves exact-duplicate sharing intact.
	Catalog *relation.Catalog

	// Trace, when non-nil, receives a causal trace event for every
	// step of the tuple and query lifecycle (see internal/obs). Every
	// hook is nil-guarded: a nil Trace costs nothing on the hot path
	// and leaves all golden digests byte-identical.
	Trace *obs.Tracer

	// Metrics, when non-nil, receives latency/depth histogram
	// observations and windowed per-node/per-query rate counts. Same
	// nil-guard discipline as Trace.
	Metrics *obs.Metrics

	// Profile, when non-nil, receives per-(query, placement)
	// attribution — arrivals, evals, stored copies, rewrite steps,
	// candidate-table outcomes, state bytes, aggregation partials —
	// merged at Sync barriers and read back by Engine.Explain. Same
	// nil-guard discipline as Trace.
	Profile *profile.Profiler

	// Provenance threads answer lineage through the rewrite pipeline:
	// every rewrite step appends the consumed tuple's (publisher,
	// pubSeq, node) to the query's Lineage, completed rows carry it to
	// the subscriber (through sharing fan-out and aggregation, whose
	// group lineage is the union of contributing rows'), and
	// Engine.AnswerLineages / ViewRow.Lineage expose it. Off by
	// default: the hot path then never touches lineage slices and
	// allocates nothing for them.
	Provenance bool
}

// DefaultConfig returns the configuration the paper's experiments run
// under: RIC placement with candidate-table caching and piggy-backed
// RIC info.
func DefaultConfig() Config {
	return Config{
		Strategy:     StrategyRIC,
		Delta:        0, // auto
		RICWindow:    2048,
		CTValidity:   16384,
		UseCT:        true,
		PiggybackRIC: true,
	}
}
