package core

import (
	"sort"

	"rjoin/internal/agg"
	"rjoin/internal/id"
	"rjoin/internal/obs"
	"rjoin/internal/obs/profile"
	"rjoin/internal/query"
	"rjoin/internal/relation"
	"rjoin/internal/sim"
)

// This file implements the control plane of in-network continuous
// aggregation (the data plane — specs, mergeable partials, epochs —
// lives in internal/agg). A completed answer row of an aggregate query
// is not shipped to the subscriber: the completion node hashes the
// row's group key to a deterministic aggregator key on the DHT and
// routes a partial there. The aggregator folds partials into
// per-(group, epoch) state and emits finalized group-update rows to
// the subscriber — at quiescence flushes, coalescing any number of
// partials into one update per touched (group, epoch).

// TagAgg is the traffic tag under which aggregation traffic is charged:
// partials routed to aggregators and group updates sent to subscribers
// (and, under SubscriberSideAgg, the raw rows shipped instead). The
// aggregation experiment reports this share separately.
const TagAgg = "agg"

// aggKeyPrefix namespaces aggregator keys away from the Rel+Attr[+Value]
// index keys; identifiers cannot contain NUL, so no relation or
// attribute name can collide with it.
const aggKeyPrefix = "\x00agg\x00"

// aggKeyOf derives the aggregator key of one group of one query. Every
// group of a query hashes to its own ring position, so aggregation load
// spreads over the overlay instead of concentrating at the subscriber.
func aggKeyOf(queryID, groupKey string) relation.Key {
	return relation.KeyOf(aggKeyPrefix + queryID + "\x00" + groupKey)
}

// aggGroup is the aggregator-node state of one group of one aggregate
// query: the ring of per-epoch mergeable partials plus the dirty set of
// epochs whose view rows changed since the last flush. It is keyed
// under its aggregator key in Proc.aggs, which makes it a first-class
// citizen of membership handover: graceful leaves drain it to the
// successor, runtime joins carve it out by arc, and crashes count it
// as loss.
type aggGroup struct {
	qid    string
	owner  id.ID
	gkey   string           // canonical group key (agg.Spec.GroupKey)
	group  []relation.Value // grouping values, in group-position order
	epochs map[int64]*agg.Partial
	dirty  map[int64]bool

	// pubAt is the group's latency watermark: the maximum triggering
	// publication vtime over all folded partials. Max commutes, so the
	// watermark is deterministic under any fold order; it rides on
	// emitted group updates so the subscriber can measure answer
	// latency for aggregates the same way it does for plain answers.
	pubAt int64

	// lins is the group's per-epoch provenance: the union of the
	// lineage steps of every row folded into the epoch's partial. Set
	// union commutes like the pubAt max, so the union is deterministic
	// under any fold order; flushes snapshot it sorted. Nil unless
	// Config.Provenance is set.
	lins map[int64]map[query.LineageStep]struct{}
}

// foldLineage unions one row's lineage into an epoch's provenance set.
func (g *aggGroup) foldLineage(epoch int64, lin []query.LineageStep) {
	if len(lin) == 0 {
		return
	}
	if g.lins == nil {
		g.lins = make(map[int64]map[query.LineageStep]struct{})
	}
	set, ok := g.lins[epoch]
	if !ok {
		set = make(map[query.LineageStep]struct{}, len(lin))
		g.lins[epoch] = set
	}
	for _, s := range lin {
		set[s] = struct{}{}
	}
}

// lineageOf snapshots the sorted union of the given epochs' provenance
// sets; nil when provenance is off or the epochs are empty.
func (g *aggGroup) lineageOf(epochs ...int64) []query.LineageStep {
	if g.lins == nil {
		return nil
	}
	n := 0
	for _, ep := range epochs {
		n += len(g.lins[ep])
	}
	if n == 0 {
		return nil
	}
	out := make([]query.LineageStep, 0, n)
	seen := make(map[query.LineageStep]struct{}, n)
	for _, ep := range epochs {
		for s := range g.lins[ep] {
			if _, dup := seen[s]; !dup {
				seen[s] = struct{}{}
				out = append(out, s)
			}
		}
	}
	query.SortLineage(out)
	return out
}

// mergeInto folds g into dst (the handover-collision path: partials for
// the same group arrived at the new owner before the handed-over state
// did). Per-epoch merges are commutative and associative, so the final
// state is independent of arrival interleaving. Every transferred
// epoch is marked dirty on dst so the next flush re-emits its row.
func (g *aggGroup) mergeInto(sliding bool, dst *aggGroup) {
	if g.pubAt > dst.pubAt {
		dst.pubAt = g.pubAt
	}
	for e, set := range g.lins {
		if dst.lins == nil {
			dst.lins = make(map[int64]map[query.LineageStep]struct{})
		}
		dstSet, ok := dst.lins[e]
		if !ok {
			dstSet = make(map[query.LineageStep]struct{}, len(set))
			dst.lins[e] = dstSet
		}
		for s := range set {
			dstSet[s] = struct{}{}
		}
	}
	for e, part := range g.epochs {
		if cur, ok := dst.epochs[e]; ok {
			cur.Merge(part)
		} else {
			dst.epochs[e] = part
		}
		dst.dirty[e] = true
		if sliding {
			dst.dirty[e+1] = true
		}
	}
}

// epochCount reports the stored (group, epoch) partials — the unit the
// loss counters charge when aggregator state dies with a node.
func (g *aggGroup) epochCount() int64 { return int64(len(g.epochs)) }

// aggSpec returns the immutable aggregation spec of a query. Specs are
// registered at submission (coordinator context) and never mutated, so
// worker-context reads are safe without locking.
func (e *Engine) aggSpec(queryID string) *agg.Spec { return e.aggSpecs[queryID] }

// emitCompletion routes one completed answer row: plain queries ship it
// directly to the owner (the pre-aggregation behaviour), aggregate
// queries fold it into the aggregation pipeline. clock is the
// completion clock — the maximum window-clock over the combined tuples
// — which assigns the row to its epoch.
func (p *Proc) emitCompletion(now sim.Time, q *query.Query, vals []relation.Value, clock int64, pubAt int64, lin []query.LineageStep) {
	p.emitTo(now, q.ID, id.ID(q.Owner), p.eng.aggSpec(q.ID), vals, clock, pubAt, lin)
}

// emitTo is emitCompletion with the routing identity (query ID, owner,
// spec) supplied by the caller instead of read off a query object: the
// shared-pipeline fan-out emits one subscriber-shaped row per attached
// query, each under its own identity and aggregation spec, through
// exactly this path.
func (p *Proc) emitTo(now sim.Time, qid string, owner id.ID, spec *agg.Spec, vals []relation.Value, clock int64, pubAt int64, lin []query.LineageStep) {
	if spec == nil {
		p.eng.net.SendDirect(p.node, owner, newAnswerMsg(qid, owner, vals, pubAt, lin))
		return
	}
	epoch := spec.Window.EpochOf(clock)
	if p.eng.Cfg.SubscriberSideAgg {
		p.eng.net.WithTag(p.node, TagAgg, func() {
			p.eng.net.SendDirect(p.node, owner, newAggRowMsg(qid, owner, epoch, vals, pubAt, lin))
		})
		return
	}
	key := aggKeyOf(qid, spec.GroupKey(vals))
	msg := newAggPartialMsg(qid, key, owner, epoch, vals, pubAt, lin)
	p.eng.net.WithTag(p.node, TagAgg, func() {
		// One-hop fast path: the candidate table remembers which node a
		// previous partial for this group was routed to (the same trick
		// Section 7 plays for Eval messages); the ground-truth ownership
		// check guards against stale addresses mid-churn.
		if ent, ok := p.ct.fresh(key, now, p.eng.Cfg.CTValidity); ok {
			if tgt := p.eng.ring.Node(ent.Addr); tgt != nil && p.stillOwns(tgt.ID(), key) {
				p.eng.net.SendDirect(p.node, tgt.ID(), msg)
				return
			}
		}
		if owner := p.eng.net.Send(p.node, key.ID(), msg); owner != nil {
			p.ctMerge(ricInfo{Key: key, Addr: owner.ID(), At: now})
		}
	})
}

// onAggPartial folds one partial into the aggregator state of its
// group. Aggregation work is query processing, so it is charged to the
// QPL; a group's first partial also charges one unit of storage load.
func (p *Proc) onAggPartial(now sim.Time, m *aggPartialMsg) {
	spec := p.eng.aggSpec(m.QueryID)
	if spec == nil {
		return // unknown query (cannot happen in-run; dropped defensively)
	}
	if p.eng.retiredSub(m.QueryID) {
		return // unsubscribed while the partial was in flight
	}
	p.qpl.Add(p.node.ID(), 1)
	p.ctr.AggPartials++
	if pf := p.eng.prof; pf != nil {
		pf.Add(p.shard, m.QueryID, m.Key.String(), profile.AggPartials, 1)
	}
	if tr := p.eng.trace; tr != nil {
		tr.Emit(p.shard, obs.Event{
			At: int64(now), Kind: obs.KindAggPartial, Node: p.nid(),
			Trace: m.QueryID, Key: m.Key.String(), Arg: m.Epoch,
		})
	}
	g, ok := p.aggs[m.Key]
	if !ok {
		g = &aggGroup{
			qid:    m.QueryID,
			owner:  m.Owner,
			gkey:   spec.GroupKey(m.Row),
			group:  spec.GroupValues(m.Row),
			epochs: make(map[int64]*agg.Partial),
			dirty:  make(map[int64]bool),
		}
		p.aggs[m.Key] = g
		p.sl.Add(p.node.ID(), 1)
	}
	part, ok := g.epochs[m.Epoch]
	if !ok {
		part = agg.NewPartial(spec)
		g.epochs[m.Epoch] = part
	}
	part.Add(spec, m.Row)
	if m.PubAt > g.pubAt {
		g.pubAt = m.PubAt
	}
	if p.eng.prov {
		g.foldLineage(m.Epoch, m.Lineage)
	}
	g.dirty[m.Epoch] = true
	if spec.Sliding() {
		// The next epoch's sliding view merges this epoch's partial, so
		// its row changed too.
		g.dirty[m.Epoch+1] = true
	}
	p.replAggFold(m.Key, m.QueryID, m.Owner, m.Epoch, m.Row, m.Lineage)
}

// viewKey addresses one row of a query's aggregate view.
type viewKey struct {
	group string
	epoch int64
}

// viewEntry is the latest version of one view row.
type viewEntry struct {
	row []relation.Value
	ver int64
	// lin is the row's provenance snapshot (see aggUpdateMsg.Lineage);
	// nil unless Config.Provenance is set.
	lin []query.LineageStep
}

// recordAggUpdate installs a group-update row into the owner-side
// aggregate view, keeping the highest version per (group, epoch) so
// reordered deliveries cannot regress the view. p is the owner's
// processor.
func (e *Engine) recordAggUpdate(now sim.Time, m *aggUpdateMsg, p *Proc) {
	if e.retiredS[m.QueryID] {
		return // unsubscribed while the update was in flight
	}
	e.answersMu.Lock()
	defer e.answersMu.Unlock()
	p.ctr.AggUpdates++
	lat := int64(now) - m.PubAt
	if om := e.obsM; om != nil {
		om.ObserveLatency(m.QueryID, lat)
		om.IncQuery(p.shard, int64(now), m.QueryID)
	}
	if tr := e.trace; tr != nil {
		tr.Emit(p.shard, obs.Event{
			At: int64(now), Kind: obs.KindAggUpdate, Node: p.nid(),
			Trace: m.QueryID, Key: m.Group, Arg: m.Epoch,
		})
	}
	vw, ok := e.aggViews[m.QueryID]
	if !ok {
		vw = make(map[viewKey]viewEntry)
		e.aggViews[m.QueryID] = vw
	}
	k := viewKey{group: m.Group, epoch: m.Epoch}
	if cur, ok := vw[k]; ok && cur.ver > m.Ver {
		return
	}
	vw[k] = viewEntry{row: m.Row, ver: m.Ver, lin: m.Lineage}
}

// localAggGroup is the subscriber-side fold state of one group when
// in-network aggregation is disabled.
type localAggGroup struct {
	group  []relation.Value
	epochs map[int64]*agg.Partial
	// lins mirrors aggGroup.lins for the subscriber-side fold; nil
	// unless Config.Provenance is set.
	lins map[int64]map[query.LineageStep]struct{}
}

// recordAggRow folds a raw answer row into the owner-held aggregate
// state (the SubscriberSideAgg ablation) and refreshes the affected
// view rows immediately — the subscriber pays one message per raw row,
// which is exactly the load the aggregation figure measures against.
func (e *Engine) recordAggRow(now sim.Time, m *aggRowMsg, p *Proc) {
	spec := e.aggSpec(m.QueryID)
	if spec == nil || e.retiredS[m.QueryID] {
		return
	}
	e.answersMu.Lock()
	defer e.answersMu.Unlock()
	p.ctr.AggPartials++
	if om := e.obsM; om != nil {
		om.ObserveLatency(m.QueryID, int64(now)-m.PubAt)
		om.IncQuery(p.shard, int64(now), m.QueryID)
	}
	if tr := e.trace; tr != nil {
		tr.Emit(p.shard, obs.Event{
			At: int64(now), Kind: obs.KindAggPartial, Node: p.nid(),
			Trace: m.QueryID, Arg: m.Epoch,
		})
	}
	groups, ok := e.aggLocal[m.QueryID]
	if !ok {
		groups = make(map[string]*localAggGroup)
		e.aggLocal[m.QueryID] = groups
	}
	gk := spec.GroupKey(m.Row)
	lg, ok := groups[gk]
	if !ok {
		lg = &localAggGroup{group: spec.GroupValues(m.Row), epochs: make(map[int64]*agg.Partial)}
		groups[gk] = lg
	}
	part, ok := lg.epochs[m.Epoch]
	if !ok {
		part = agg.NewPartial(spec)
		lg.epochs[m.Epoch] = part
	}
	part.Add(spec, m.Row)
	if e.prov && len(m.Lineage) > 0 {
		if lg.lins == nil {
			lg.lins = make(map[int64]map[query.LineageStep]struct{})
		}
		set, ok := lg.lins[m.Epoch]
		if !ok {
			set = make(map[query.LineageStep]struct{}, len(m.Lineage))
			lg.lins[m.Epoch] = set
		}
		for _, s := range m.Lineage {
			set[s] = struct{}{}
		}
	}

	vw, ok := e.aggViews[m.QueryID]
	if !ok {
		vw = make(map[viewKey]viewEntry)
		e.aggViews[m.QueryID] = vw
	}
	refresh := func(epoch int64) {
		parts := []*agg.Partial{lg.epochs[epoch]}
		if spec.Sliding() {
			parts = append(parts, lg.epochs[epoch-1])
		}
		if agg.MergedRows(parts...) == 0 {
			return
		}
		var lin []query.LineageStep
		if lg.lins != nil {
			g := aggGroup{lins: lg.lins}
			if spec.Sliding() {
				lin = g.lineageOf(epoch, epoch-1)
			} else {
				lin = g.lineageOf(epoch)
			}
		}
		vw[viewKey{group: gk, epoch: epoch}] = viewEntry{
			row: spec.FinalizeRow(lg.group, parts...),
			ver: agg.MergedRows(parts...),
			lin: lin,
		}
	}
	refresh(m.Epoch)
	if spec.Sliding() {
		refresh(m.Epoch + 1)
	}
}

// flushAggregates emits one group-update row per dirty (group, epoch)
// across every aggregator node, in deterministic order (node, key,
// epoch), and reports whether anything was emitted. It runs from
// coordinator context between drains; Engine.Run loops until a drain
// produces no new dirty state.
func (e *Engine) flushAggregates() bool {
	if len(e.aggSpecs) == 0 || e.Cfg.SubscriberSideAgg {
		return false
	}
	// Enumerate only procs with dirty groups: the loop's final
	// iteration (and every Run on a quiet engine) must not pay the
	// per-proc key sort just to discover there is nothing to emit.
	ids := make([]id.ID, 0, len(e.procs))
	for nid, p := range e.procs {
		for _, g := range p.aggs {
			if len(g.dirty) > 0 {
				ids = append(ids, nid)
				break
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	emitted := false
	for _, nid := range ids {
		p := e.procs[nid]
		for _, key := range sortedStateKeys(p.aggs) {
			g := p.aggs[key]
			if len(g.dirty) == 0 {
				continue
			}
			spec := e.aggSpec(g.qid)
			epochs := make([]int64, 0, len(g.dirty))
			for ep := range g.dirty {
				epochs = append(epochs, ep)
			}
			sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
			for _, ep := range epochs {
				parts := []*agg.Partial{g.epochs[ep]}
				if spec.Sliding() {
					parts = append(parts, g.epochs[ep-1])
				}
				if agg.MergedRows(parts...) == 0 {
					continue // dirty via a neighbour that has no data yet
				}
				var lin []query.LineageStep
				if spec.Sliding() {
					lin = g.lineageOf(ep, ep-1)
				} else {
					lin = g.lineageOf(ep)
				}
				msg := &aggUpdateMsg{
					QueryID: g.qid,
					Owner:   g.owner,
					Group:   g.gkey,
					Epoch:   ep,
					Ver:     agg.MergedRows(parts...),
					Row:     spec.FinalizeRow(g.group, parts...),
					PubAt:   g.pubAt,
					Lineage: lin,
				}
				e.net.WithTag(p.node, TagAgg, func() {
					e.net.SendDirect(p.node, g.owner, msg)
				})
				emitted = true
			}
			g.dirty = make(map[int64]bool)
		}
	}
	return emitted
}

// AggRows returns the current aggregate view of a query: the latest
// finalized row of every (group, epoch), sorted by group key then
// epoch. Aggregate views are complete as of the last Run() quiescence
// flush.
func (e *Engine) AggRows(queryID string) []agg.ViewRow {
	e.answersMu.Lock()
	defer e.answersMu.Unlock()
	vw := e.aggViews[queryID]
	out := make([]agg.ViewRow, 0, len(vw))
	for k, ent := range vw {
		out = append(out, agg.ViewRow{Group: k.group, Epoch: k.epoch, Row: ent.row, Lineage: ent.lin})
	}
	agg.SortViewRows(out)
	return out
}
