package core

import (
	"math/rand"
	"testing"

	"rjoin/internal/overlay"
	"rjoin/internal/query"
	"rjoin/internal/refeval"
	"rjoin/internal/relation"
	"rjoin/internal/sqlparse"
	"rjoin/internal/workload"
)

// windowRun publishes nTuples in publication order (draining between
// publications so clocks are strictly ordered) against window queries.
func windowRun(t *testing.T, seed int64, w query.WindowSpec, nQueries, nTuples int) (*Engine, []string, []*query.Query, []*relation.Tuple) {
	t.Helper()
	eng, nodes := testNet(t, 48, seed, DefaultConfig(), overlay.DefaultConfig())
	wcfg := workload.Config{Relations: 3, Attributes: 3, Values: 3, Theta: 0.9, JoinArity: 2}
	gen := workload.MustGenerator(wcfg, seed)
	rng := rand.New(rand.NewSource(seed + 5))
	var qids []string
	var queries []*query.Query
	for i := 0; i < nQueries; i++ {
		q := gen.WindowQuery(w)
		qid, err := eng.SubmitQuery(nodes[rng.Intn(len(nodes))], q)
		if err != nil {
			t.Fatal(err)
		}
		qids = append(qids, qid)
		q.InsertTime = 0
		queries = append(queries, q)
	}
	eng.Run()
	var tuples []*relation.Tuple
	for i := 0; i < nTuples; i++ {
		tu := gen.Tuple()
		eng.PublishTuple(nodes[rng.Intn(len(nodes))], tu)
		eng.Run()
		tuples = append(tuples, tu)
	}
	return eng, qids, queries, tuples
}

// TestTupleWindowTwoWayExact: for 2-way joins the span and anchor
// semantics coincide, so RJoin must match the reference exactly under
// in-order arrival.
func TestTupleWindowTwoWayExact(t *testing.T) {
	w := query.WindowSpec{Kind: query.WindowTuples, Size: 8}
	for seed := int64(30); seed < 33; seed++ {
		eng, qids, queries, tuples := windowRun(t, seed, w, 4, 50)
		for i, qid := range qids {
			want := refeval.EvaluateSpan(queries[i], tuples)
			got := answersToRows(eng.Answers(qid))
			if !refeval.EqualBags(got, want) {
				t.Fatalf("seed %d query %d (%s): got %d want %d",
					seed, i, queries[i], len(got), len(want))
			}
		}
	}
}

// TestTupleWindowRestrictsAnswers: windowed answers are a strict subset
// of unwindowed ones on a workload where matches span beyond the
// window.
func TestTupleWindowRestrictsAnswers(t *testing.T) {
	wide := query.WindowSpec{Kind: query.WindowTuples, Size: 1 << 40}
	narrow := query.WindowSpec{Kind: query.WindowTuples, Size: 4}
	// windowRun is deterministic per seed, so both runs see the same
	// workload and differ only in the window size.
	engWide, qw, _, _ := windowRun(t, 40, wide, 3, 60)
	engN, qn, _, _ := windowRun(t, 40, narrow, 3, 60)
	var wideTotal, narrowTotal int
	for i := range qw {
		wideTotal += len(engWide.Answers(qw[i]))
		narrowTotal += len(engN.Answers(qn[i]))
	}
	if narrowTotal >= wideTotal {
		t.Fatalf("narrow window answers (%d) not fewer than wide (%d)", narrowTotal, wideTotal)
	}
	if narrowTotal == 0 {
		t.Fatal("narrow window produced no answers at all; workload too sparse to be meaningful")
	}
}

// TestMultiWayWindowBracketed: for 3-way windows RJoin's answers fall
// between the span (lower) and anchor (upper) reference semantics.
func TestMultiWayWindowBracketed(t *testing.T) {
	w := query.WindowSpec{Kind: query.WindowTuples, Size: 10}
	for seed := int64(44); seed < 47; seed++ {
		eng, qids, queries, tuples := func() (*Engine, []string, []*query.Query, []*relation.Tuple) {
			eng, nodes := testNet(t, 48, seed, DefaultConfig(), overlay.DefaultConfig())
			wcfg := workload.Config{Relations: 3, Attributes: 2, Values: 3, Theta: 0.9, JoinArity: 3}
			gen := workload.MustGenerator(wcfg, seed)
			rng := rand.New(rand.NewSource(seed + 5))
			var qids []string
			var queries []*query.Query
			for i := 0; i < 3; i++ {
				q := gen.WindowQuery(w)
				qid, err := eng.SubmitQuery(nodes[rng.Intn(len(nodes))], q)
				if err != nil {
					t.Fatal(err)
				}
				qids = append(qids, qid)
				q.InsertTime = 0
				queries = append(queries, q)
			}
			eng.Run()
			var tuples []*relation.Tuple
			for i := 0; i < 45; i++ {
				tu := gen.Tuple()
				eng.PublishTuple(nodes[rng.Intn(len(nodes))], tu)
				eng.Run()
				tuples = append(tuples, tu)
			}
			return eng, qids, queries, tuples
		}()
		for i, qid := range qids {
			got := answersToRows(eng.Answers(qid))
			lower := refeval.EvaluateSpan(queries[i], tuples)
			upper := refeval.EvaluateAnchor(queries[i], tuples)
			if !refeval.SubBag(lower, got) {
				t.Fatalf("seed %d query %d: span answers missing (got %d, lower bound %d)",
					seed, i, len(got), len(lower))
			}
			if !refeval.SubBag(got, upper) {
				t.Fatalf("seed %d query %d: answers exceed anchor semantics (got %d, upper bound %d)",
					seed, i, len(got), len(upper))
			}
		}
	}
}

// TestTimeWindow exercises the WindowTime clock: two tuples far apart
// in virtual time do not join; close together they do.
func TestTimeWindow(t *testing.T) {
	eng, nodes := testNet(t, 32, 50, DefaultConfig(), overlay.DefaultConfig())
	q := sqlparse.MustParse(
		"select R.B, S.B from R,S where R.A=S.A within 100 ticks", testCat)
	qid, _ := eng.SubmitQuery(nodes[0], q)
	eng.Run()

	eng.PublishTuple(nodes[1], mkTuple("R", 1, 10, 0))
	eng.Run()
	// Within the window: joins.
	eng.PublishTuple(nodes[1], mkTuple("S", 1, 20, 0))
	eng.Run()
	if n := len(eng.Answers(qid)); n != 1 {
		t.Fatalf("in-window join: %d answers, want 1", n)
	}
	// Push the clock far beyond the window, then publish the partner.
	eng.RunUntil(eng.Sim().Now() + 10_000)
	eng.PublishTuple(nodes[1], mkTuple("S", 1, 30, 0))
	eng.Run()
	if n := len(eng.Answers(qid)); n != 1 {
		t.Fatalf("out-of-window tuple joined: %d answers", n)
	}
}

// TestTumblingWindow: tuples in the same epoch join; straddling an
// epoch boundary they do not, even when close.
func TestTumblingWindow(t *testing.T) {
	eng, nodes := testNet(t, 32, 51, DefaultConfig(), overlay.DefaultConfig())
	q := sqlparse.MustParse(
		"select R.B, S.B from R,S where R.A=S.A within 10 tuples tumbling", testCat)
	qid, _ := eng.SubmitQuery(nodes[0], q)
	eng.Run()
	// Seq numbers start at 1. Publish R at seq 1, S at seq 2: same
	// epoch [0,10) — join.
	eng.PublishTuple(nodes[1], mkTuple("R", 1, 1, 0))
	eng.Run()
	eng.PublishTuple(nodes[1], mkTuple("S", 1, 2, 0))
	eng.Run()
	if n := len(eng.Answers(qid)); n != 1 {
		t.Fatalf("same-epoch join: %d answers, want 1", n)
	}
	// Burn sequence numbers to the end of the epoch with non-matching
	// tuples, then publish a matching R at seq 9 and S at seq 11:
	// adjacent epochs, no join despite distance 2.
	for eng.Counters.TuplesPublished < 8 {
		eng.PublishTuple(nodes[1], mkTuple("M", 99, 99, 99))
		eng.Run()
	}
	eng.PublishTuple(nodes[1], mkTuple("R", 2, 3, 0)) // seq 9
	eng.Run()
	eng.PublishTuple(nodes[1], mkTuple("M", 99, 99, 99)) // seq 10
	eng.Run()
	eng.PublishTuple(nodes[1], mkTuple("S", 2, 4, 0)) // seq 11, next epoch
	eng.Run()
	if n := len(eng.Answers(qid)); n != 1 {
		t.Fatalf("cross-epoch tuples joined: %d answers", n)
	}
	// A matching S inside the new epoch with a new R also inside joins.
	eng.PublishTuple(nodes[1], mkTuple("R", 3, 5, 0)) // seq 12
	eng.Run()
	eng.PublishTuple(nodes[1], mkTuple("S", 3, 6, 0)) // seq 13
	eng.Run()
	if n := len(eng.Answers(qid)); n != 2 {
		t.Fatalf("new-epoch join failed: %d answers, want 2", n)
	}
}

// TestWindowsBoundState is the Figure 8 claim in miniature: with small
// windows, expired rewritten queries are dropped so live state stays
// far below the unwindowed run.
func TestWindowsBoundState(t *testing.T) {
	measure := func(w query.WindowSpec) int {
		eng, _, _, _ := windowRun(t, 60, w, 6, 80)
		queries, _, _ := eng.StoredState()
		return queries
	}
	unbounded := measure(query.WindowSpec{}) // no window
	small := measure(query.WindowSpec{Kind: query.WindowTuples, Size: 4})
	if small >= unbounded {
		t.Fatalf("small window live queries (%d) not below unwindowed (%d)", small, unbounded)
	}
}

// TestWindowExpiryCounter: expired rewritten queries are counted and
// removed when out-of-window tuples arrive at their key.
func TestWindowExpiryCounter(t *testing.T) {
	eng, nodes := testNet(t, 32, 61, DefaultConfig(), overlay.DefaultConfig())
	q := sqlparse.MustParse(
		"select R.B, S.B from R,S where R.A=S.A within 3 tuples", testCat)
	if _, err := eng.SubmitQuery(nodes[0], q); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// R at seq 1 creates a rewritten query anchored at 1 stored at
	// S+A+1; non-matching filler pushes the window past it; then a
	// "matching" S arrives at the same key and must expire the query.
	eng.PublishTuple(nodes[1], mkTuple("R", 1, 1, 0))
	eng.Run()
	for i := 0; i < 5; i++ {
		eng.PublishTuple(nodes[1], mkTuple("M", 99, 99, 99))
		eng.Run()
	}
	eng.PublishTuple(nodes[1], mkTuple("S", 1, 2, 0)) // seq 7: out of window
	eng.Run()
	if eng.Counters.QueriesExpired == 0 {
		t.Fatal("out-of-window trigger did not expire the stored query")
	}
	if eng.Counters.AnswersDelivered != 0 {
		t.Fatal("expired query still answered")
	}
}
