package core

import (
	"math/rand"
	"testing"

	"rjoin/internal/chord"
	"rjoin/internal/id"
	"rjoin/internal/overlay"
	"rjoin/internal/query"
	"rjoin/internal/refeval"
	"rjoin/internal/relation"
	"rjoin/internal/sim"
	"rjoin/internal/sqlparse"
	"rjoin/internal/workload"
)

func simTime(v int64) sim.Time { return sim.Time(v) }

// testNet builds a converged n-node overlay with an RJoin engine.
func testNet(t testing.TB, n int, seed int64, cfg Config, netCfg overlay.Config) (*Engine, []*chord.Node) {
	t.Helper()
	ring := chord.NewRing()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for {
			if _, err := ring.Join(id.ID(rng.Uint64())); err == nil {
				break
			}
		}
	}
	ring.BuildPerfect()
	se := sim.NewEngine(seed)
	nw := overlay.MustNetwork(ring, se, netCfg)
	eng := NewEngine(ring, se, nw, cfg)
	return eng, ring.Nodes()
}

var testCat = func() *relation.Catalog {
	cat, _ := relation.NewCatalog(
		relation.MustSchema("R", "A", "B", "C"),
		relation.MustSchema("S", "A", "B", "C"),
		relation.MustSchema("J", "A", "B", "C"),
		relation.MustSchema("M", "A", "B", "C"),
	)
	return cat
}()

func mkTuple(rel string, vals ...int64) *relation.Tuple {
	s, ok := testCat.Schema(rel)
	if !ok {
		panic("unknown relation " + rel)
	}
	vv := make([]relation.Value, len(vals))
	for i, v := range vals {
		vv[i] = relation.Int64(v)
	}
	return relation.MustTuple(s, vv...)
}

// TestPaperFigure1Example runs the full Figure 1 scenario end to end on
// a real overlay: the 4-way join, tuples t1..t4 arriving in the
// figure's order (including t3 of M arriving before the rewritten query
// reaches its node), and exactly the answer S.B=6, M.A=9.
func TestPaperFigure1Example(t *testing.T) {
	for _, strat := range []Strategy{StrategyRIC, StrategyRandom, StrategyWorst} {
		cfg := DefaultConfig()
		cfg.Strategy = strat
		eng, nodes := testNet(t, 64, 1, cfg, overlay.DefaultConfig())
		q := sqlparse.MustParse(
			"select S.B, M.A from R,S,J,M where R.A=S.A and S.B=J.B and J.C=M.C", testCat)
		qid, err := eng.SubmitQuery(nodes[0], q)
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		pub := func(tu *relation.Tuple) {
			eng.PublishTuple(nodes[1], tu)
			eng.Run()
		}
		pub(mkTuple("R", 2, 5, 8))
		pub(mkTuple("S", 2, 6, 3))
		pub(mkTuple("M", 9, 1, 2)) // arrives before the query needs it: stored at value level
		pub(mkTuple("J", 7, 6, 2))
		ans := eng.Answers(qid)
		if len(ans) != 1 {
			t.Fatalf("strategy %v: got %d answers, want 1", strat, len(ans))
		}
		if ans[0].Values[0].Int != 6 || ans[0].Values[1].Int != 9 {
			t.Fatalf("strategy %v: answer %v, want (6, 9)", strat, ans[0].Values)
		}
	}
}

// TestTupleBeforeQueryExcluded checks the Definition 1 semantics: only
// tuples published at or after query submission count.
func TestTupleBeforeQueryExcluded(t *testing.T) {
	eng, nodes := testNet(t, 32, 2, DefaultConfig(), overlay.DefaultConfig())
	early := mkTuple("R", 1, 1, 0)
	eng.PublishTuple(nodes[3], early)
	eng.Run()
	q := sqlparse.MustParse("select R.B, S.B from R,S where R.A=S.A", testCat)
	qid, _ := eng.SubmitQuery(nodes[0], q)
	eng.Run()
	eng.PublishTuple(nodes[4], mkTuple("S", 1, 2, 0))
	eng.Run()
	if n := len(eng.Answers(qid)); n != 0 {
		t.Fatalf("%d answers produced from a pre-submission tuple", n)
	}
	// A fresh R tuple after submission does produce the answer.
	eng.PublishTuple(nodes[5], mkTuple("R", 1, 7, 0))
	eng.Run()
	ans := eng.Answers(qid)
	if len(ans) != 1 || ans[0].Values[0].Int != 7 {
		t.Fatalf("answers %v", ans)
	}
}

// randomRun publishes a random stream against a set of random queries
// and returns the engine, query ids and the published tuples.
func randomRun(t *testing.T, cfg Config, netCfg overlay.Config, seed int64,
	nQueries, nTuples, arity int) (*Engine, []string, []*query.Query, []*relation.Tuple) {
	t.Helper()
	eng, nodes := testNet(t, 48, seed, cfg, netCfg)
	wcfg := workload.Config{Relations: 4, Attributes: 3, Values: 4, Theta: 0.9, JoinArity: arity}
	gen := workload.MustGenerator(wcfg, seed)
	rng := rand.New(rand.NewSource(seed + 999))

	var qids []string
	var queries []*query.Query
	for i := 0; i < nQueries; i++ {
		q := gen.Query()
		qid, err := eng.SubmitQuery(nodes[rng.Intn(len(nodes))], q)
		if err != nil {
			t.Fatal(err)
		}
		qids = append(qids, qid)
		queries = append(queries, q)
	}
	eng.Run()
	// Stamp insertion times on the reference copies (SubmitQuery stamps
	// its clone).
	for _, q := range queries {
		q.InsertTime = 0
	}
	var tuples []*relation.Tuple
	for i := 0; i < nTuples; i++ {
		tu := gen.Tuple()
		eng.PublishTuple(nodes[rng.Intn(len(nodes))], tu)
		eng.Run()
		tuples = append(tuples, tu)
	}
	return eng, qids, queries, tuples
}

// TestSoundAndCompleteTwoWay compares RJoin's answer bag against the
// reference evaluator for random 2-way workloads: Theorems 1 and 2 —
// every reference answer is delivered, exactly once.
func TestSoundAndCompleteTwoWay(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		eng, qids, queries, tuples := randomRun(t, DefaultConfig(), overlay.DefaultConfig(), seed, 6, 40, 2)
		for i, qid := range qids {
			want := refeval.Evaluate(queries[i], tuples)
			got := answersToRows(eng.Answers(qid))
			if !refeval.EqualBags(got, want) {
				t.Fatalf("seed %d query %d (%s): got %d answers, want %d\n got=%v\nwant=%v",
					seed, i, queries[i], len(got), len(want),
					refeval.SortedKeys(got), refeval.SortedKeys(want))
			}
		}
	}
}

// TestSoundAndCompleteMultiWay is the same check for 3-way joins.
func TestSoundAndCompleteMultiWay(t *testing.T) {
	for seed := int64(4); seed <= 6; seed++ {
		eng, qids, queries, tuples := randomRun(t, DefaultConfig(), overlay.DefaultConfig(), seed, 4, 30, 3)
		for i, qid := range qids {
			want := refeval.Evaluate(queries[i], tuples)
			got := answersToRows(eng.Answers(qid))
			if !refeval.EqualBags(got, want) {
				t.Fatalf("seed %d query %d (%s): got %d answers, want %d",
					seed, i, queries[i], len(got), len(want))
			}
		}
	}
}

// TestCompletenessUnderRandomDelays is the Theorem 1 scenario: messages
// take random bounded delays, so tuples can overtake queries; the ALTT
// must repair every such race.
func TestCompletenessUnderRandomDelays(t *testing.T) {
	netCfg := overlay.Config{MinHopDelay: 1, MaxHopDelay: 25, GroupMultiSend: true}
	for seed := int64(7); seed <= 9; seed++ {
		eng, qids, queries, tuples := randomRun(t, DefaultConfig(), netCfg, seed, 4, 30, 2)
		for i, qid := range qids {
			want := refeval.Evaluate(queries[i], tuples)
			got := answersToRows(eng.Answers(qid))
			if !refeval.EqualBags(got, want) {
				t.Fatalf("seed %d query %d: got %d answers, want %d", seed, i, len(got), len(want))
			}
		}
	}
}

// TestDelayedStreamInterleaving publishes tuples without waiting for
// the network to quiesce, so queries, tuples, RIC walks and rewrites
// are all in flight concurrently — then checks exact bag equality.
func TestDelayedStreamInterleaving(t *testing.T) {
	netCfg := overlay.Config{MinHopDelay: 1, MaxHopDelay: 10, GroupMultiSend: true}
	eng, nodes := testNet(t, 48, 11, DefaultConfig(), netCfg)
	wcfg := workload.Config{Relations: 3, Attributes: 3, Values: 3, Theta: 0.9, JoinArity: 2}
	gen := workload.MustGenerator(wcfg, 11)
	rng := rand.New(rand.NewSource(12))

	var qids []string
	var queries []*query.Query
	for i := 0; i < 5; i++ {
		q := gen.Query()
		qid, err := eng.SubmitQuery(nodes[rng.Intn(len(nodes))], q)
		if err != nil {
			t.Fatal(err)
		}
		qids = append(qids, qid)
		q.InsertTime = 0
		queries = append(queries, q)
	}
	var tuples []*relation.Tuple
	for i := 0; i < 30; i++ {
		tu := gen.Tuple()
		eng.PublishTuple(nodes[rng.Intn(len(nodes))], tu)
		// Advance the clock a little without draining, so deliveries
		// interleave with later publications.
		eng.RunUntil(eng.Sim().Now() + 3)
		tuples = append(tuples, tu)
	}
	eng.Run()
	for i, qid := range qids {
		want := refeval.Evaluate(queries[i], tuples)
		got := answersToRows(eng.Answers(qid))
		if !refeval.EqualBags(got, want) {
			t.Fatalf("query %d (%s): got %d answers, want %d", i, queries[i], len(got), len(want))
		}
	}
}

// racedRun submits queries and publishes tuples without draining the
// network in between, so tuples genuinely race their queries through
// the overlay (the Example 1 scenario of Section 4).
func racedRun(t *testing.T, cfg Config, seed int64) (*Engine, []string, []*query.Query, []*relation.Tuple) {
	t.Helper()
	netCfg := overlay.Config{MinHopDelay: 1, MaxHopDelay: 30, GroupMultiSend: true}
	eng, nodes := testNet(t, 48, seed, cfg, netCfg)
	wcfg := workload.Config{Relations: 3, Attributes: 3, Values: 3, Theta: 0.9, JoinArity: 2}
	gen := workload.MustGenerator(wcfg, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	var qids []string
	var queries []*query.Query
	for i := 0; i < 5; i++ {
		q := gen.Query()
		qid, err := eng.SubmitQuery(nodes[rng.Intn(len(nodes))], q)
		if err != nil {
			t.Fatal(err)
		}
		qids = append(qids, qid)
		q.InsertTime = 0
		queries = append(queries, q)
	}
	var tuples []*relation.Tuple
	for i := 0; i < 25; i++ {
		tu := gen.Tuple()
		eng.PublishTuple(nodes[rng.Intn(len(nodes))], tu)
		tuples = append(tuples, tu)
	}
	eng.Run()
	return eng, qids, queries, tuples
}

// TestALTTRepairsRaces checks Theorem 1 under racing: with the ALTT on,
// nothing is lost even though tuples overtake queries.
func TestALTTRepairsRaces(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		eng, qids, queries, tuples := racedRun(t, DefaultConfig(), seed)
		for i, qid := range qids {
			want := refeval.Evaluate(queries[i], tuples)
			got := answersToRows(eng.Answers(qid))
			if !refeval.EqualBags(got, want) {
				t.Fatalf("seed %d query %d (%s): got %d answers, want %d",
					seed, i, queries[i], len(got), len(want))
			}
		}
	}
}

// TestALTTDisabledLosesAnswers demonstrates why the ALTT exists
// (Example 1 of the paper): with the ALTT off, tuples that overtake
// their queries are lost — but never invented (soundness holds).
func TestALTTDisabledLosesAnswers(t *testing.T) {
	lost := 0
	for seed := int64(20); seed < 26; seed++ {
		cfg := DefaultConfig()
		cfg.Delta = -1 // disable ALTT
		eng, qids, queries, tuples := racedRun(t, cfg, seed)
		for i, qid := range qids {
			want := refeval.Evaluate(queries[i], tuples)
			got := answersToRows(eng.Answers(qid))
			if !refeval.SubBag(got, want) {
				t.Fatalf("seed %d: unsound answers without ALTT", seed)
			}
			lost += len(want) - len(got)
		}
	}
	if lost == 0 {
		t.Fatal("expected at least one lost answer across seeds with ALTT disabled and racing on")
	}
}

// TestDuplicateExample2 reproduces Example 2: bag semantics delivers
// (1, b) twice; DISTINCT delivers it once.
func TestDuplicateExample2(t *testing.T) {
	run := func(distinct bool) []Answer {
		eng, nodes := testNet(t, 32, 3, DefaultConfig(), overlay.DefaultConfig())
		src := "select R.A, S.A from R,S where R.B=S.B"
		if distinct {
			src = "select distinct R.A, S.A from R,S where R.B=S.B"
		}
		q := sqlparse.MustParse(src, testCat)
		qid, _ := eng.SubmitQuery(nodes[0], q)
		eng.Run()
		for _, tu := range []*relation.Tuple{
			mkTuple("R", 1, 2, 3),
			mkTuple("S", 50, 2, 60), // S.A=50 joins R.B=2
			mkTuple("S", 50, 2, 61), // same projection on S.A, S.B
		} {
			eng.PublishTuple(nodes[1], tu)
			eng.Run()
		}
		return eng.Answers(qid)
	}
	bag := run(false)
	if len(bag) != 2 {
		t.Fatalf("bag semantics: %d answers, want 2", len(bag))
	}
	set := run(true)
	if len(set) != 1 {
		t.Fatalf("set semantics: %d answers, want 1", len(set))
	}
	if set[0].Values[0].Int != 1 || set[0].Values[1].Int != 50 {
		t.Fatalf("distinct answer %v", set[0].Values)
	}
}

// TestDistinctMatchesReferenceSet checks DISTINCT equals the reference
// set for random workloads.
func TestDistinctMatchesReferenceSet(t *testing.T) {
	eng, nodes := testNet(t, 48, 13, DefaultConfig(), overlay.DefaultConfig())
	wcfg := workload.Config{Relations: 3, Attributes: 3, Values: 3, Theta: 0.9, JoinArity: 2}
	gen := workload.MustGenerator(wcfg, 13)
	rng := rand.New(rand.NewSource(14))
	var qids []string
	var queries []*query.Query
	for i := 0; i < 4; i++ {
		q := gen.Query()
		q.Distinct = true
		qid, err := eng.SubmitQuery(nodes[rng.Intn(len(nodes))], q)
		if err != nil {
			t.Fatal(err)
		}
		qids = append(qids, qid)
		q.InsertTime = 0
		queries = append(queries, q)
	}
	eng.Run()
	var tuples []*relation.Tuple
	for i := 0; i < 40; i++ {
		tu := gen.Tuple()
		eng.PublishTuple(nodes[rng.Intn(len(nodes))], tu)
		eng.Run()
		tuples = append(tuples, tu)
	}
	for i, qid := range qids {
		want := refeval.Distinct(refeval.Evaluate(queries[i], tuples))
		got := answersToRows(eng.Answers(qid))
		if !refeval.EqualBags(got, want) {
			t.Fatalf("query %d (%s): distinct mismatch got %d want %d",
				i, queries[i], len(got), len(want))
		}
	}
}

func answersToRows(ans []Answer) []refeval.Row {
	rows := make([]refeval.Row, len(ans))
	for i, a := range ans {
		rows[i] = refeval.Row(a.Values)
	}
	return rows
}
