package core

import (
	"sort"
	"testing"

	"rjoin/internal/chord"
	"rjoin/internal/id"
	"rjoin/internal/overlay"
	"rjoin/internal/refeval"
	"rjoin/internal/relation"
	"rjoin/internal/sim"
	"rjoin/internal/sqlparse"
)

// lossyNetCfg is the overlay configuration the exactness-under-loss
// suite runs on: default delays, bouncing (faults require it), and the
// given fault plan.
func lossyNetCfg(f *overlay.Faults) overlay.Config {
	cfg := overlay.DefaultConfig()
	cfg.Bounce = true
	cfg.Faults = f
	return cfg
}

// lossyPlan is the acceptance-criterion fault plan: ten percent drops,
// five percent duplication, occasional delay spikes.
func lossyPlan() *overlay.Faults {
	return &overlay.Faults{DropProb: 0.10, DupProb: 0.05, SpikeProb: 0.05, SpikeMax: 4}
}

// lossyNet builds an engine on a faulty overlay, optionally parallel.
func lossyNet(t testing.TB, n int, seed int64, workers int, cfg Config, netCfg overlay.Config) (*Engine, []*chord.Node) {
	t.Helper()
	ring := chord.NewRing()
	rng := sim.NewRNG(seed, 0, 0)
	for i := 0; i < n; i++ {
		for {
			if _, err := ring.Join(id.ID(rng.Uint64())); err == nil {
				break
			}
		}
	}
	ring.BuildPerfect()
	se := sim.NewEngine(seed)
	if workers > 1 {
		se.SetWorkers(workers)
	}
	nw := overlay.MustNetwork(ring, se, netCfg)
	eng := NewEngine(ring, se, nw, cfg)
	return eng, ring.Nodes()
}

// splitPartition bisects the current membership into a partition window
// [start, end): the identifier-ordered first half against the rest.
func splitPartition(t *testing.T, eng *Engine, start, end sim.Time) {
	t.Helper()
	nodes := eng.Ring().Nodes()
	side := make(map[id.ID]bool, len(nodes)/2)
	for _, n := range nodes[:len(nodes)/2] {
		side[n.ID()] = true
	}
	if err := eng.Net().AddPartition(overlay.Partition{Start: start, End: end, Side: side}); err != nil {
		t.Fatal(err)
	}
}

// faultCounters asserts the fault machinery both fired and fully
// masked: transmissions were dropped and duplicated, retransmissions
// recovered them, and nothing was abandoned.
func faultCounters(t *testing.T, eng *Engine, label string) {
	t.Helper()
	nw := eng.Net()
	if nw.Dropped == 0 || nw.Retransmits == 0 {
		t.Fatalf("%s: fault machinery idle (dropped %d, retransmits %d); plan too weak", label, nw.Dropped, nw.Retransmits)
	}
	if nw.Abandoned != 0 {
		t.Fatalf("%s: %d messages abandoned — reliable delivery gave up", label, nw.Abandoned)
	}
}

// TestLossyExactlyOnce is the tentpole's acceptance criterion: a
// replicated network at a ten percent transmission drop rate, with
// duplication, delay spikes and one partition/heal cycle mid-stream,
// still delivers the refeval-exact answer bag — recall 1.0, zero
// duplicate answers — for plain, three-way and racing queries.
func TestLossyExactlyOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationFactor = 2
	eng, nodes := lossyNet(t, 48, 11, 0, cfg, lossyNetCfg(lossyPlan()))
	queries := []string{
		"select R.B, S.B from R,S where R.A=S.A",
		"select R.B, J.B from R,S,J where R.A=S.A and S.B=J.B",
	}
	var qids []string
	for i, q := range queries {
		qid, err := eng.SubmitQuery(nodes[i], sqlparse.MustParse(q, testCat))
		if err != nil {
			t.Fatal(err)
		}
		qids = append(qids, qid)
	}
	eng.Run()

	var published []*relation.Tuple
	pub := func(i int, tu *relation.Tuple) {
		published = append(published, tu)
		eng.PublishTuple(nodes[i%len(nodes)], tu)
	}
	for i := 0; i < 10; i++ {
		pub(i, mkTuple("R", int64(i%4), int64(i), 0))
		pub(i+1, mkTuple("S", int64(i%4), int64(i%5), 0))
		eng.Run()
	}
	// One partition/heal cycle with tuples crossing it in flight: the
	// first half of the ring against the rest, while both sides keep
	// publishing. Run() is withheld until after the heal, so deliveries
	// race the window.
	start := eng.Sim().Now() + 2
	splitPartition(t, eng, start, start+60)
	for i := 0; i < 12; i++ {
		pub(i, mkTuple("R", int64(i%4), int64(100+i), 0))
		pub(i+3, mkTuple("S", int64(i%4), int64(i%5), 0))
		pub(i+5, mkTuple("J", 0, int64(i%5), 0))
		eng.RunUntil(eng.Sim().Now() + 4)
	}
	eng.Run()
	for i := 0; i < 8; i++ {
		pub(i, mkTuple("R", int64(i%4), int64(200+i), 0))
		pub(i+1, mkTuple("J", 0, int64(i%5), 0))
	}
	eng.Run()

	for i, q := range queries {
		want := expectedBag(t, q, published)
		got := answerBag(eng, qids[i])
		if len(want) == 0 {
			t.Fatalf("reference for %q produced no answers; workload too weak", q)
		}
		if !bagsEqual(got, want) {
			t.Fatalf("answers for %q diverged under loss: got %d rows, want %d (loss or duplication)",
				q, len(got), len(want))
		}
	}
	faultCounters(t, eng, "exactly-once")
	if eng.Net().Duplicated == 0 {
		t.Fatal("duplication draw never fired; plan too weak")
	}
}

// TestLossyDistinctNoDuplicates: DISTINCT's consumed-projection memory
// must hold up under retransmission — a duplicate delivery that leaked
// past dedup would re-trigger a consumed projection and surface as an
// extra row.
func TestLossyDistinctNoDuplicates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationFactor = 2
	eng, nodes := lossyNet(t, 48, 13, 0, cfg, lossyNetCfg(&overlay.Faults{DropProb: 0.15, DupProb: 0.25}))
	q := "select distinct S.B from R,S where R.A=S.A"
	qid, err := eng.SubmitQuery(nodes[0], sqlparse.MustParse(q, testCat))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var published []*relation.Tuple
	// A small value domain so the same projections recur across waves.
	for i := 0; i < 24; i++ {
		r := mkTuple("R", int64(i%3), int64(i), 0)
		s := mkTuple("S", int64(i%3), int64(i%4), 0)
		published = append(published, r, s)
		eng.PublishTuple(nodes[i%len(nodes)], r)
		eng.PublishTuple(nodes[(i+7)%len(nodes)], s)
		if i%4 == 3 {
			eng.Run()
		} else {
			eng.RunUntil(eng.Sim().Now() + 3)
		}
	}
	eng.Run()

	parsed := sqlparse.MustParse(q, testCat)
	var want []string
	for _, r := range refeval.Distinct(refeval.Evaluate(parsed, published)) {
		want = append(want, r.Key())
	}
	sort.Strings(want)
	got := answerBag(eng, qid)
	if len(want) == 0 {
		t.Fatal("reference produced no answers")
	}
	if !bagsEqual(got, want) {
		t.Fatalf("DISTINCT under duplication: got %d rows, want %d", len(got), len(want))
	}
	faultCounters(t, eng, "distinct")
}

// TestLossyAggViews: in-network aggregation views stay exact under
// drops and a partition — every partial reaches its aggregator exactly
// once, and the finalized views equal the centralized reference fold.
// Only unwindowed aggregates run here: a window's content is defined by
// arrival order, which faults legitimately reorder.
func TestLossyAggViews(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationFactor = 2
	eng, nodes := lossyNet(t, 48, 17, 0, cfg, lossyNetCfg(lossyPlan()))
	queries := []string{
		"select R.A, count(*), sum(S.B), min(S.B), max(S.B), avg(S.B), count(distinct S.B) from R,S where R.A=S.A group by R.A",
		"select count(*), max(R.B) from R,S where R.A=S.A",
		"select S.A, sum(R.B), avg(R.B) from R,S where R.A=S.A group by S.A",
	}
	var qids []string
	for i, sql := range queries {
		qid, err := eng.SubmitQuery(nodes[i%len(nodes)], sqlparse.MustParse(sql, testCat))
		if err != nil {
			t.Fatal(err)
		}
		qids = append(qids, qid)
	}
	eng.Run()

	var published []*relation.Tuple
	start := eng.Sim().Now() + 30
	splitPartition(t, eng, start, start+50)
	for round := 0; round < 30; round++ {
		r := mkTuple("R", int64(round%4), int64(round%7), 0)
		s := mkTuple("S", int64(round%4), int64(round%5), 0)
		published = append(published, r, s)
		eng.PublishTuple(nodes[round%len(nodes)], r)
		eng.PublishTuple(nodes[(round+11)%len(nodes)], s)
		if round%5 == 4 {
			eng.Run()
		} else {
			eng.RunUntil(eng.Sim().Now() + 2)
		}
	}
	eng.Run()

	for i, qid := range qids {
		aggViewsMatch(t, "lossy", queries[i], eng, qid, published)
	}
	if eng.Counters.AggStateLost != 0 {
		t.Fatalf("faults lost %d aggregation partials", eng.Counters.AggStateLost)
	}
	faultCounters(t, eng, "agg")
}

// TestLossyExactlyOnceParallel runs the drop-and-partition exactness
// check on the parallel engine: the barrier schedule, per-node fault
// streams and background retransmit timers must compose, and the final
// bag must be exact for every worker count.
func TestLossyExactlyOnceParallel(t *testing.T) {
	for _, workers := range []int{2, 4} {
		cfg := DefaultConfig()
		cfg.ReplicationFactor = 2
		eng, nodes := lossyNet(t, 48, 19, workers, cfg, lossyNetCfg(lossyPlan()))
		q := "select R.B, S.B from R,S where R.A=S.A"
		qid, err := eng.SubmitQuery(nodes[2], sqlparse.MustParse(q, testCat))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		var published []*relation.Tuple
		start := eng.Sim().Now() + 10
		splitPartition(t, eng, start, start+40)
		for i := 0; i < 20; i++ {
			r := mkTuple("R", int64(i%4), int64(i), 0)
			s := mkTuple("S", int64(i%4), int64(i%5), 0)
			published = append(published, r, s)
			eng.PublishTuple(nodes[i%len(nodes)], r)
			eng.PublishTuple(nodes[(i+9)%len(nodes)], s)
			eng.RunUntil(eng.Sim().Now() + 3)
		}
		eng.Run()
		eng.Sync()

		want := expectedBag(t, q, published)
		got := answerBag(eng, qid)
		if len(want) == 0 {
			t.Fatal("reference produced no answers")
		}
		if !bagsEqual(got, want) {
			t.Fatalf("workers %d: answers diverged under loss: got %d rows, want %d",
				workers, len(got), len(want))
		}
		faultCounters(t, eng, "parallel")
	}
}
