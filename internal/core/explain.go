package core

// Engine.Explain assembles the per-query introspection report: the
// static placement plan (the pipeline's index candidates in clause
// order), the per-placement counters the profiler attributed to them,
// sharing attribution from the multi-query registry, the state
// footprint series and the subscriber-side delivery totals. It runs
// from driver context between drains — the same contexts Answers and
// Stats are read from — so reading the merged profiler maps and the
// registry is race-free. Everything it reads is either static plan
// structure or a Sync-merged deterministic counter, so a report taken
// at a drained virtual time is bit-identical across worker counts.

import (
	"fmt"
	"strings"

	"rjoin/internal/obs/profile"
	"rjoin/internal/query"
	"rjoin/internal/share"
)

// Explain returns the introspection report of one submitted query.
// With Config.Profile unset the report still carries the static plan
// and delivery totals; the observed counters are zero and the report
// says so. Unknown (never-submitted) query IDs error.
func (e *Engine) Explain(queryID string) (*profile.Report, error) {
	q, ok := e.submitted[queryID]
	if !ok {
		return nil, fmt.Errorf("core: Explain of unknown query %s", queryID)
	}
	r := &profile.Report{
		Query:       queryID,
		SQL:         q.String(),
		Now:         int64(e.sim.Now()),
		Pipeline:    queryID,
		Subscribers: 1,
		Profiled:    e.prof != nil,
		Provenance:  e.prov,
	}
	// Sharing attribution: whose rewrite pipeline does this query's
	// in-network work, how many subscribers ride it, and what residual
	// this subscriber applies at the completion node.
	pipe := q
	if cls := e.reg.ClassOf(queryID); cls != nil {
		r.Pipeline = cls.QID
		r.Subscribers = len(cls.Subs)
		if cls.Pipeline != nil {
			pipe = cls.Pipeline
		}
		for _, s := range cls.Subs {
			if s.QID == queryID && s.Res != nil {
				r.Residual = residualText(s.Res)
			}
		}
	}

	// Static placements: the pipeline's candidate set in clause order —
	// the arrival-order baseline a rate-informed planner is compared
	// against. Runtime-discovered keys (rewrites indexed at value-level
	// keys derived from tuple contents, aggregator group keys) follow,
	// sorted, marked clause -1.
	seen := make(map[string]bool)
	for i, c := range pipe.Candidates() {
		seen[c.Key.String()] = true
		r.Placements = append(r.Placements, profile.Placement{
			Key: c.Key.String(), Rel: c.Col.Rel,
			Level: c.Level.String(), Clause: i,
		})
	}
	if pf := e.prof; pf != nil {
		for _, k := range pf.Keys(r.Pipeline) {
			if !seen[k] {
				r.Placements = append(r.Placements, profile.Placement{
					Key: k, Level: levelOfKey(k), Clause: -1,
				})
			}
		}
		for i := range r.Placements {
			pl := &r.Placements[i]
			pl.Arrivals = pf.Count("", pl.Key, profile.Arrivals)
			pl.Evals = pf.Count(r.Pipeline, pl.Key, profile.Evals)
			pl.Stored = pf.Count(r.Pipeline, pl.Key, profile.StoredQueries)
			pl.Rewrites = pf.Count(r.Pipeline, pl.Key, profile.Rewrites)
			pl.Completions = pf.Count(r.Pipeline, pl.Key, profile.Completions)
			pl.CTHits = pf.Count(r.Pipeline, pl.Key, profile.CTHits)
			pl.CTMisses = pf.Count(r.Pipeline, pl.Key, profile.CTMisses)
			pl.StateBytes = pf.Count(r.Pipeline, pl.Key, profile.StateBytes)
			pl.AggPartials = pf.Count(r.Pipeline, pl.Key, profile.AggPartials)
		}
		r.FanoutRows = pf.Count(queryID, "", profile.FanoutRows)
		r.Series = pf.SeriesFor(r.Pipeline)
	}

	e.answersMu.Lock()
	r.Answers = int64(len(e.answers[queryID]))
	r.AggUpdates = int64(len(e.aggViews[queryID]))
	e.answersMu.Unlock()
	return r, nil
}

// levelOfKey classifies a runtime-discovered profiling key: aggregator
// group keys carry the NUL-fenced agg prefix, value-level index keys
// have at least two '+' separators (Rel+Attr+Value), attribute-level
// ones exactly one.
func levelOfKey(k string) string {
	if strings.HasPrefix(k, aggKeyPrefix) {
		return "aggregate"
	}
	if strings.Count(k, "+") >= 2 {
		return query.ValueLevel.String()
	}
	return query.AttrLevel.String()
}

// residualText renders a subscriber's residual deterministically:
// filter conjuncts over full-row positions, then the projection.
func residualText(res *share.Residual) string {
	var b strings.Builder
	b.WriteString("filter[")
	for i, p := range res.Preds {
		if i > 0 {
			b.WriteString(" and ")
		}
		fmt.Fprintf(&b, "row[%d]=%s", p.Pos, p.Val)
	}
	b.WriteString("] project[")
	for i, it := range res.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.IsConst {
			b.WriteString(it.Const.String())
		} else {
			fmt.Fprintf(&b, "row[%d]", it.Pos)
		}
	}
	b.WriteString("]")
	return b.String()
}
