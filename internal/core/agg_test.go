package core

import (
	"testing"

	"rjoin/internal/agg"
	"rjoin/internal/chord"
	"rjoin/internal/refeval"
	"rjoin/internal/relation"
	"rjoin/internal/sqlparse"
)

// aggTestQueries spans the aggregation matrix: grouped and global,
// every aggregate function, unwindowed, tumbling and sliding windows,
// and a 3-way join feeding a grouped count. The windowed entries are
// 2-way joins, where RJoin's operational window rules coincide with
// refeval's span semantics, so the reference is exact.
func aggTestQueries() []string {
	return []string{
		"select R.A, count(*), sum(S.B), min(S.B), max(S.B), avg(S.B), count(distinct S.B) from R,S where R.A=S.A group by R.A",
		"select count(*), max(R.B) from R,S where R.A=S.A",
		"select R.A, count(*), sum(S.B) from R,S where R.A=S.A group by R.A within 16 tuples tumbling",
		"select R.A, count(*), max(S.B) from R,S where R.A=S.A group by R.A within 16 tuples",
		"select R.A, count(*) from R,S,J where R.A=S.A and S.B=J.B group by R.A",
		// No COUNT(*): every aggregate item is a substitutable column, so
		// this guards the Rewrite path that must preserve Agg markers.
		"select S.A, sum(R.B), avg(R.B) from R,S where R.A=S.A group by S.A",
	}
}

// aggHolder returns the node holding the most aggregator groups, ties
// broken by identifier.
func aggHolder(eng *Engine) *chord.Node {
	var best *chord.Node
	bestCount := 0
	for _, p := range eng.procs {
		c := len(p.aggs)
		if c > bestCount || (c == bestCount && c > 0 && best != nil && p.node.ID() < best.ID()) {
			best, bestCount = p.node, c
		}
	}
	return best
}

// runAggWorkload submits the aggregation test queries and drives a
// mixed R/S/J stream; with churn enabled it gracefully removes first
// the heaviest aggregator mid-stream (forcing an aggregation-state
// handover) and then the heaviest rewritten-query holder. It returns
// the published tuples and the query IDs in aggTestQueries order.
func runAggWorkload(t *testing.T, eng *Engine, nodes []*chord.Node, churn bool) ([]*relation.Tuple, []string) {
	t.Helper()
	var qids []string
	for i, sql := range aggTestQueries() {
		qid, err := eng.SubmitQuery(nodes[i%len(nodes)], sqlparse.MustParse(sql, testCat))
		if err != nil {
			t.Fatal(err)
		}
		qids = append(qids, qid)
	}
	eng.Run()

	var published []*relation.Tuple
	pub := func(i int, tu *relation.Tuple) {
		published = append(published, tu)
		alive := eng.Ring().Nodes()
		eng.PublishTuple(alive[i%len(alive)], tu)
	}
	for round := 0; round < 30; round++ {
		pub(round, mkTuple("R", int64(round%4), int64(round%7), 0))
		pub(round+1, mkTuple("S", int64(round%4), int64(round%5), 0))
		if round%3 == 0 {
			pub(round+2, mkTuple("J", 0, int64(round%5), 0))
		}
		if round%4 == 3 {
			eng.Run()
		} else {
			eng.RunUntil(eng.Sim().Now() + 2) // leave deliveries in flight
		}
		if churn && (round == 11 || round == 21) {
			victim := aggHolder(eng)
			if round == 21 {
				victim = rewriteHolder(eng)
			}
			if victim == nil {
				t.Fatal("no churn victim with state; workload too weak")
			}
			if err := eng.LeaveNode(victim); err != nil {
				t.Fatal(err)
			}
			eng.Ring().TickStabilize()
		}
	}
	eng.Run()
	return published, qids
}

// aggViewsMatch compares an engine's aggregate view for one query
// against the reference fold of the full answer multiset.
func aggViewsMatch(t *testing.T, label, sql string, eng *Engine, qid string, published []*relation.Tuple) {
	t.Helper()
	parsed := sqlparse.MustParse(sql, testCat)
	refRows, clocks := refeval.EvaluateSpanClocked(parsed, published)
	rows := make([][]relation.Value, len(refRows))
	for i, r := range refRows {
		rows[i] = r
	}
	want := agg.Reference(parsed, rows, clocks)
	got := eng.AggRows(qid)
	if len(want) == 0 {
		t.Fatalf("%s: reference view for %q is empty; workload too weak", label, sql)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: view size diverged for %q: got %d rows, want %d", label, sql, len(got), len(want))
	}
	for i := range want {
		if got[i].Group != want[i].Group || got[i].Epoch != want[i].Epoch {
			t.Fatalf("%s: view row %d of %q addresses (%x, %d), want (%x, %d)",
				label, i, sql, got[i].Group, got[i].Epoch, want[i].Group, want[i].Epoch)
		}
		for j := range want[i].Row {
			if !got[i].Row[j].Equal(want[i].Row[j]) {
				t.Fatalf("%s: view row %d of %q diverged at position %d: got %s, want %s",
					label, i, sql, j, got[i].Row[j], want[i].Row[j])
			}
		}
	}
}

// TestAggExactness is the aggregation subsystem's completeness
// criterion: for every query shape the in-network aggregate view —
// built from partials routed to per-group aggregator keys, folded
// incrementally, and flushed as coalesced group updates — must equal
// the reference aggregates computed centrally from the full answer
// multiset (internal/refeval), on a static overlay and under
// graceful-leave churn that forces aggregator-state handover
// mid-stream.
func TestAggExactness(t *testing.T) {
	for _, churn := range []bool{false, true} {
		label := "static"
		if churn {
			label = "graceful-leave"
		}
		eng, nodes := testNet(t, 48, 5, DefaultConfig(), churnNetCfg())
		published, qids := runAggWorkload(t, eng, nodes, churn)
		queries := aggTestQueries()
		for i, qid := range qids {
			aggViewsMatch(t, label, queries[i], eng, qid, published)
		}
		if eng.Counters.AggPartials == 0 || eng.Counters.AggUpdates == 0 {
			t.Fatalf("%s: aggregation pipeline unused (partials %d, updates %d)",
				label, eng.Counters.AggPartials, eng.Counters.AggUpdates)
		}
		if churn {
			if eng.Counters.HandoverMessages == 0 {
				t.Fatal("churn run performed no handover")
			}
			if eng.Counters.AggStateLost != 0 {
				t.Fatalf("graceful leaves lost %d aggregation partials", eng.Counters.AggStateLost)
			}
		}
	}
}

// Subscriber-side aggregation is the semantics oracle for the
// distributed pipeline: the same workload folded entirely at the
// subscriber must produce bit-identical views.
func TestAggSubscriberSideEquivalence(t *testing.T) {
	run := func(subscriberSide bool) (*Engine, []string) {
		cfg := DefaultConfig()
		cfg.SubscriberSideAgg = subscriberSide
		eng, nodes := testNet(t, 48, 5, cfg, churnNetCfg())
		_, qids := runAggWorkload(t, eng, nodes, false)
		return eng, qids
	}
	inNet, qids := run(false)
	subSide, qids2 := run(true)
	for i, qid := range qids {
		a, b := inNet.AggRows(qid), subSide.AggRows(qids2[i])
		if len(a) != len(b) {
			t.Fatalf("query %d: view sizes diverged: in-network %d, subscriber-side %d", i, len(a), len(b))
		}
		for k := range a {
			if a[k].Group != b[k].Group || a[k].Epoch != b[k].Epoch {
				t.Fatalf("query %d row %d: addresses diverged", i, k)
			}
			for j := range a[k].Row {
				if !a[k].Row[j].Equal(b[k].Row[j]) {
					t.Fatalf("query %d row %d position %d: %s vs %s", i, k, j, a[k].Row[j], b[k].Row[j])
				}
			}
		}
	}
	if subSide.Counters.AggUpdates != 0 {
		t.Fatal("subscriber-side mode emitted group updates")
	}
	if inNet.Counters.AggPartials != subSide.Counters.AggPartials {
		t.Fatalf("modes folded different row counts: %d vs %d",
			inNet.Counters.AggPartials, subSide.Counters.AggPartials)
	}
}

// A crash that takes aggregator state down counts it as loss instead of
// silently shrinking the view.
func TestCrashCountsLostAggState(t *testing.T) {
	eng, nodes := testNet(t, 48, 5, DefaultConfig(), churnNetCfg())
	_, err := eng.SubmitQuery(nodes[0], sqlparse.MustParse(
		"select R.A, count(*) from R,S where R.A=S.A group by R.A", testCat))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for i := 0; i < 12; i++ {
		eng.PublishTuple(nodes[i%len(nodes)], mkTuple("R", int64(i%3), int64(i), 0))
		eng.PublishTuple(nodes[(i+5)%len(nodes)], mkTuple("S", int64(i%3), int64(i%4), 0))
	}
	eng.Run()
	victim := aggHolder(eng)
	if victim == nil || len(eng.procs[victim.ID()].aggs) == 0 {
		t.Fatal("no aggregator state accumulated")
	}
	if err := eng.CrashNode(victim); err != nil {
		t.Fatal(err)
	}
	if eng.Counters.AggStateLost == 0 {
		t.Fatal("crash dropped aggregator state without counting it")
	}
}

// Regression: rewriting substitutes aggregate-argument columns into
// constants; the substituted item must keep its Agg marker, or a query
// with no COUNT(*) (whose constant item is never substituted) loses
// IsAggregate mid-rewrite and leaks raw rows to the subscriber instead
// of feeding the aggregation pipeline. Both trigger orders are covered:
// the aggregate-argument relation arriving first and last.
func TestAggWithoutCountStarStaysAggregate(t *testing.T) {
	const sql = "select S.A, sum(R.B) from R,S where R.A=S.A group by S.A"
	for _, rFirst := range []bool{true, false} {
		eng, nodes := testNet(t, 32, 9, DefaultConfig(), churnNetCfg())
		qid, err := eng.SubmitQuery(nodes[0], sqlparse.MustParse(sql, testCat))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		r := mkTuple("R", 1, 5, 0)
		s := mkTuple("S", 1, 2, 0)
		first, second := r, s
		if !rFirst {
			first, second = s, r
		}
		eng.PublishTuple(nodes[1], first)
		eng.Run()
		eng.PublishTuple(nodes[2], second)
		eng.Run()

		if raw := eng.Answers(qid); len(raw) != 0 {
			t.Fatalf("rFirst=%v: %d raw rows leaked to the subscriber", rFirst, len(raw))
		}
		view := eng.AggRows(qid)
		if len(view) != 1 {
			t.Fatalf("rFirst=%v: aggregate view has %d rows, want 1", rFirst, len(view))
		}
		row := view[0].Row
		if !row[0].Equal(relation.Int64(1)) || !row[1].Equal(relation.Int64(5)) {
			t.Fatalf("rFirst=%v: view row %v, want [1 5]", rFirst, row)
		}
	}
}

// Aggregate queries reject the combinations Validate rules out.
func TestAggValidateRejections(t *testing.T) {
	bad := []string{
		"select R.A, count(*) from R,S where R.A=S.A",                       // bare column not grouped
		"select count(*) from R,S where R.A=S.A group by R.A",               // group col missing from select
		"select R.A from R,S where R.A=S.A group by R.A",                    // GROUP BY without aggregate
		"select distinct R.A, count(*) from R,S where R.A=S.A group by R.A", // DISTINCT + aggregate
		"select R.A, count(*) from R,S where R.A=S.A group by R.A once",     // one-time + aggregate
		"select sum(*) from R,S where R.A=S.A",                              // * outside COUNT
		"select sum(distinct R.A) from R,S where R.A=S.A",                   // DISTINCT outside COUNT
	}
	for _, sql := range bad {
		if _, err := sqlparse.Parse(sql, testCat); err == nil {
			t.Fatalf("%q parsed and validated; want rejection", sql)
		}
	}
}
