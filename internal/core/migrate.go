package core

import (
	"fmt"

	"rjoin/internal/chord"
	"rjoin/internal/id"
	"rjoin/internal/relation"
)

// MoveNode implements identifier movement (Karger–Ruhl, used by the
// paper's Figure 9 experiment): the node leaves its current ring
// position and rejoins at newID, keeping its RJoin state. Stored keys
// across the network are then re-homed to their current owners, which
// models the key handoff that accompanies an id change. It returns the
// node's new ring handle.
func (e *Engine) MoveNode(n *chord.Node, newID id.ID) (*chord.Node, error) {
	p, ok := e.procs[n.ID()]
	if !ok {
		return nil, fmt.Errorf("core: node %s has no processor", n.ID())
	}
	e.net.Detach(n)
	delete(e.procs, n.ID())
	e.ring.Leave(n)
	nn, err := e.ring.Join(newID)
	if err != nil {
		return nil, err
	}
	e.ring.BuildPerfect()
	p.node = nn
	e.procs[nn.ID()] = p
	e.net.Attach(nn, p)
	// The physical node keeps its accumulated load; only its ring
	// position changed.
	e.QPL.Rename(n.ID(), nn.ID())
	e.SL.Rename(n.ID(), nn.ID())
	e.net.RenameNode(n.ID(), nn.ID())
	e.replForgetOrigin(n.ID()) // mirrors of the vacated identifier are dead
	e.RehomeKeys()
	return nn, nil
}

// RehomeKeys moves every stored query, tuple and ALTT entry to the node
// currently responsible for its key. It must be called after membership
// changes that redistribute the identifier space (joins, id movement)
// so that subsequent deliveries find the stored state. It returns the
// number of list entries moved.
func (e *Engine) RehomeKeys() int {
	moved := 0
	owner := func(key relation.Key) *Proc {
		o := e.ring.Owner(key.ID())
		if o == nil {
			return nil
		}
		return e.procs[o.ID()]
	}
	for _, p := range e.procs {
		for key, list := range p.queries {
			dst := owner(key)
			if dst == nil || dst == p {
				continue
			}
			// Replication identities are per-proc namespaces: a moved
			// query must be re-numbered at its destination, or the
			// resync snapshot would emit colliding sqIDs.
			for _, sq := range list {
				sq.replID = 0
			}
			dst.queries[key] = append(dst.queries[key], list...)
			delete(p.queries, key)
			moved += len(list)
		}
		for key, list := range p.tuples {
			dst := owner(key)
			if dst == nil || dst == p {
				continue
			}
			dst.tuples[key] = append(dst.tuples[key], list...)
			delete(p.tuples, key)
			moved += len(list)
		}
		for key, list := range p.altt {
			dst := owner(key)
			if dst == nil || dst == p {
				continue
			}
			dst.altt[key] = append(dst.altt[key], list...)
			delete(p.altt, key)
			moved += len(list)
		}
	}
	// Identifier movement redistributes keys wholesale; incremental
	// drop/add mirroring cannot track it, so replication rebuilds every
	// stream from a fresh snapshot.
	e.replResyncAll()
	return moved
}

// StoredOccupancy returns the node's instantaneous stored-entry count
// (live queries + tuples + ALTT entries), the quantity identifier
// movement balances.
func (e *Engine) StoredOccupancy(n *chord.Node) int {
	p, ok := e.procs[n.ID()]
	if !ok {
		return 0
	}
	total := 0
	for _, l := range p.queries {
		total += len(l)
	}
	for _, l := range p.tuples {
		total += len(l)
	}
	for _, l := range p.altt {
		total += len(l)
	}
	return total
}
