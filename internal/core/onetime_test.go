package core

import (
	"math/rand"
	"testing"

	"rjoin/internal/overlay"
	"rjoin/internal/query"
	"rjoin/internal/refeval"
	"rjoin/internal/relation"
	"rjoin/internal/sqlparse"
	"rjoin/internal/workload"
)

// TestOneTimeQuerySnapshot: a one-time query returns exactly the
// answers derivable from tuples published before submission and ignores
// everything after.
func TestOneTimeQuerySnapshot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Delta = 1 << 40 // Δ = "infinity": retain attribute-level history
	eng, nodes := testNet(t, 48, 140, cfg, overlay.DefaultConfig())

	var tuples []*relation.Tuple
	pub := func(tu *relation.Tuple) {
		eng.PublishTuple(nodes[1], tu)
		eng.Run()
		tuples = append(tuples, tu)
	}
	pub(mkTuple("R", 1, 10, 0))
	pub(mkTuple("S", 1, 20, 0))
	pub(mkTuple("R", 2, 11, 0))
	pub(mkTuple("S", 2, 21, 0))

	q := sqlparse.MustParse("select R.B, S.B from R,S where R.A=S.A once", testCat)
	qid, err := eng.SubmitQuery(nodes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	q.InsertTime = int64(eng.Sim().Now())
	eng.Run()

	// Post-submission tuples must not extend the result.
	pub(mkTuple("R", 3, 12, 0))
	pub(mkTuple("S", 3, 22, 0))

	want := refeval.Evaluate(q, tuples) // respects OneTime snapshot semantics
	got := answersToRows(eng.Answers(qid))
	if len(want) != 2 {
		t.Fatalf("reference should have 2 snapshot answers, got %d", len(want))
	}
	if !refeval.EqualBags(got, want) {
		t.Fatalf("snapshot mismatch: got %v want %v",
			refeval.SortedKeys(got), refeval.SortedKeys(want))
	}
}

// TestOneTimeRandomWorkload compares one-time answers against the
// reference for random multi-way workloads.
func TestOneTimeRandomWorkload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Delta = 1 << 40
	for seed := int64(141); seed < 144; seed++ {
		eng, nodes := testNet(t, 48, seed, cfg, overlay.DefaultConfig())
		wcfg := workload.Config{Relations: 3, Attributes: 3, Values: 3, Theta: 0.9, JoinArity: 3}
		gen := workload.MustGenerator(wcfg, seed)
		rng := rand.New(rand.NewSource(seed + 9))
		var tuples []*relation.Tuple
		for i := 0; i < 30; i++ {
			tu := gen.Tuple()
			eng.PublishTuple(nodes[rng.Intn(len(nodes))], tu)
			eng.Run()
			tuples = append(tuples, tu)
		}
		var qids []string
		var queries []*query.Query
		for i := 0; i < 4; i++ {
			q := gen.Query()
			q.OneTime = true
			qid, err := eng.SubmitQuery(nodes[rng.Intn(len(nodes))], q)
			if err != nil {
				t.Fatal(err)
			}
			q.InsertTime = int64(eng.Sim().Now())
			qids = append(qids, qid)
			queries = append(queries, q)
		}
		eng.Run()
		for i, qid := range qids {
			want := refeval.Evaluate(queries[i], tuples)
			got := answersToRows(eng.Answers(qid))
			if !refeval.EqualBags(got, want) {
				t.Fatalf("seed %d query %d (%s): got %d answers, want %d",
					seed, i, queries[i], len(got), len(want))
			}
		}
	}
}

// TestOneTimeKeepsNoState: after a one-time query resolves, no standing
// query state remains anywhere.
func TestOneTimeKeepsNoState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Delta = 1 << 40
	eng, nodes := testNet(t, 32, 145, cfg, overlay.DefaultConfig())
	eng.PublishTuple(nodes[1], mkTuple("R", 1, 10, 0))
	eng.Run()
	before, _, _ := eng.StoredState()
	q := sqlparse.MustParse("select R.B, S.B from R,S where R.A=S.A once", testCat)
	if _, err := eng.SubmitQuery(nodes[0], q); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	after, _, _ := eng.StoredState()
	if after != before {
		t.Fatalf("one-time query left standing state: %d -> %d stored queries", before, after)
	}
}

// TestOneTimeBoundedByDelta: with a small Δ, attribute-level history is
// gone and a one-time query anchored there sees only a partial (but
// sound) snapshot.
func TestOneTimeBoundedByDelta(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Delta = 10 // tiny retention
	eng, nodes := testNet(t, 32, 146, cfg, overlay.DefaultConfig())
	var tuples []*relation.Tuple
	tu1 := mkTuple("R", 1, 10, 0)
	eng.PublishTuple(nodes[1], tu1)
	eng.Run()
	tuples = append(tuples, tu1)
	tu2 := mkTuple("S", 1, 20, 0)
	eng.PublishTuple(nodes[1], tu2)
	eng.Run()
	tuples = append(tuples, tu2)
	eng.RunUntil(eng.Sim().Now() + 10_000) // let the ALTT expire

	q := sqlparse.MustParse("select R.B, S.B from R,S where R.A=S.A once", testCat)
	qid, _ := eng.SubmitQuery(nodes[0], q)
	q.InsertTime = int64(eng.Sim().Now())
	eng.Run()
	want := refeval.Evaluate(q, tuples)
	got := answersToRows(eng.Answers(qid))
	if !refeval.SubBag(got, want) {
		t.Fatal("unsound one-time answers")
	}
	if len(got) >= len(want) {
		t.Fatalf("expected partial snapshot with tiny Delta: got %d of %d", len(got), len(want))
	}
}

// TestOneTimeSQLRoundTrip: the ONCE keyword parses and renders.
func TestOneTimeSQLRoundTrip(t *testing.T) {
	q := sqlparse.MustParse("select R.A from R,S where R.A=S.A once", testCat)
	if !q.OneTime {
		t.Fatal("ONCE not parsed")
	}
	q2 := sqlparse.MustParse(q.String(), testCat)
	if !q2.OneTime {
		t.Fatalf("ONCE lost in round trip: %q", q.String())
	}
	if _, err := sqlparse.Parse(
		"select R.A from R,S where R.A=S.A once within 5 tuples", testCat); err == nil {
		t.Fatal("one-time window query accepted")
	}
}
