package core

import (
	"math/rand"
	"testing"

	"rjoin/internal/overlay"
	"rjoin/internal/query"
	"rjoin/internal/refeval"
	"rjoin/internal/relation"
	"rjoin/internal/sqlparse"
)

// starCat is a schema where one hub relation joins two spokes on the
// same attribute — rewrites of the star query get two value-level
// candidates, so migration has somewhere to go.
var starCat = func() *relation.Catalog {
	cat, _ := relation.NewCatalog(
		relation.MustSchema("H", "A", "B"),
		relation.MustSchema("X", "A", "B"),
		relation.MustSchema("Y", "A", "B"),
	)
	return cat
}()

func starTuple(rel string, a, b int64) *relation.Tuple {
	s, _ := starCat.Schema(rel)
	return relation.MustTuple(s, relation.Int64(a), relation.Int64(b))
}

// migrationRun drives the workload-shift scenario Section 10's
// future-work sketch motivates: the stream makes Y-keys look hot, so
// RIC places the rewritten star query on the X-key; the workload then
// flips and X floods, so the query (which learned Y's rate from
// piggy-backed RIC info) relocates to the now-colder Y-key.
func migrationRun(t *testing.T, migrate bool, seed int64) (*Engine, string, *query.Query, []*relation.Tuple) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.EnableMigration = migrate
	cfg.MigrationMinTriggers = 3
	cfg.MigrationFactor = 2
	eng, nodes := testNet(t, 48, seed, cfg, overlay.DefaultConfig())
	rng := rand.New(rand.NewSource(seed))

	pubAny := func(tu *relation.Tuple) {
		eng.PublishTuple(nodes[rng.Intn(len(nodes))], tu)
		eng.Run()
	}
	// Warmup (before the query exists): Y(5, ...) arrives a few times,
	// so Y+A+5 reads as the hotter value key at placement time.
	for i := 0; i < 4; i++ {
		pubAny(starTuple("Y", 5, int64(900+i)))
	}

	q := sqlparse.MustParse(
		"select H.B, X.B from H,X,Y where H.A=X.A and H.A=Y.A", starCat)
	qid, err := eng.SubmitQuery(nodes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	q.InsertTime = int64(eng.Sim().Now())

	var tuples []*relation.Tuple
	pub := func(tu *relation.Tuple) {
		eng.PublishTuple(nodes[rng.Intn(len(nodes))], tu)
		eng.Run()
		tuples = append(tuples, tu)
	}
	// The hub tuple spawns the rewritten query, placed at the colder
	// X+A+5. The workload then flips: X floods that key.
	pub(starTuple("H", 5, 100))
	for i := 0; i < 30; i++ {
		pub(starTuple("X", 5, int64(i)))
	}
	// Fresh Y and trailing X tuples complete combinations on both
	// sides of any migration.
	pub(starTuple("Y", 5, 200))
	for i := 30; i < 40; i++ {
		pub(starTuple("X", 5, int64(i)))
	}
	return eng, qid, q, tuples
}

// TestMigrationPreservesAnswers: with migration on, the answer bag is
// exactly the reference — nothing duplicated by the move, nothing lost.
func TestMigrationPreservesAnswers(t *testing.T) {
	for _, migrate := range []bool{false, true} {
		eng, qid, q, tuples := migrationRun(t, migrate, 31)
		want := refeval.Evaluate(q, tuples)
		got := answersToRows(eng.Answers(qid))
		if !refeval.EqualBags(got, want) {
			t.Fatalf("migrate=%v: got %d answers, want %d", migrate, len(got), len(want))
		}
		if migrate && eng.Counters.QueriesMigrated == 0 {
			t.Fatal("hot-key workload triggered no migrations")
		}
		if !migrate && eng.Counters.QueriesMigrated != 0 {
			t.Fatal("migrations occurred while disabled")
		}
	}
}

// TestMigrationExclusionPreventsDuplicates constructs the exact
// re-combination hazard: a query migrates after combining with stored
// tuples; its new home's scan must skip them.
func TestMigrationExclusionPreventsDuplicates(t *testing.T) {
	eng, qid, q, tuples := migrationRun(t, true, 33)
	want := refeval.Evaluate(q, tuples)
	got := answersToRows(eng.Answers(qid))
	if !refeval.SubBag(got, want) {
		t.Fatalf("duplicate answers after migration: got %d, reference %d", len(got), len(want))
	}
}

// TestMigrationDistinctNeverMigrates: DISTINCT queries stay put.
func TestMigrationDistinctNeverMigrates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableMigration = true
	cfg.MigrationMinTriggers = 1
	cfg.MigrationFactor = 1.1
	cfg.Strategy = StrategyRandom
	eng, nodes := testNet(t, 32, 35, cfg, overlay.DefaultConfig())
	q := sqlparse.MustParse(
		"select distinct H.B, X.B from H,X,Y where H.A=X.A and H.A=Y.A", starCat)
	if _, err := eng.SubmitQuery(nodes[0], q); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	eng.PublishTuple(nodes[1], starTuple("H", 1, 1))
	eng.Run()
	for i := 0; i < 20; i++ {
		eng.PublishTuple(nodes[1], starTuple("X", 1, int64(i)))
		eng.Run()
	}
	if eng.Counters.QueriesMigrated != 0 {
		t.Fatalf("DISTINCT query migrated %d times", eng.Counters.QueriesMigrated)
	}
}

// TestExcludePropagatesThroughRewrite: descendants of a migrated query
// inherit the exclusion set.
func TestExcludePropagatesThroughRewrite(t *testing.T) {
	q := sqlparse.MustParse(
		"select H.B, X.B from H,X,Y where H.A=X.A and H.A=Y.A", starCat)
	q.Exclude = []int64{3, 7}
	h := starTuple("H", 1, 1)
	h.PubSeq = 1
	q1, ok := query.Rewrite(q, h)
	if !ok {
		t.Fatal("rewrite failed")
	}
	if !q1.Excluded(3) || !q1.Excluded(7) || q1.Excluded(4) {
		t.Fatalf("exclusion set not inherited: %v", q1.Exclude)
	}
}

func TestMergeExclude(t *testing.T) {
	got := mergeExclude([]int64{1, 5, 9}, []int64{5, 2, 9, 12})
	want := []int64{1, 2, 5, 9, 12}
	if len(got) != len(want) {
		t.Fatalf("merge %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge %v, want %v", got, want)
		}
	}
	if out := mergeExclude([]int64{1}, nil); len(out) != 1 {
		t.Fatalf("nil merge %v", out)
	}
}
