package core

import (
	"rjoin/internal/id"
	"rjoin/internal/relation"
	"rjoin/internal/sim"
)

// rateStat measures the rate of incoming tuples for one index key at
// the node responsible for it — the RIC information of Section 6. The
// estimate is epoch-based: time is divided into fixed windows of
// Config.RICWindow ticks, and the prediction for the next window is the
// count observed in the last complete window (falling back to the
// current, still-open window when no complete one exists yet, so that
// freshly hot keys are visible immediately).
type rateStat struct {
	epoch     int64 // index of the epoch countCur refers to
	countCur  int64
	countPrev int64
}

func epochOf(now sim.Time, window int64) int64 {
	if window <= 0 {
		return 0
	}
	return int64(now) / window
}

// record notes one tuple arrival at time now.
func (r *rateStat) record(now sim.Time, window int64) {
	e := epochOf(now, window)
	switch {
	case e == r.epoch:
		r.countCur++
	case e == r.epoch+1:
		r.countPrev = r.countCur
		r.epoch = e
		r.countCur = 1
	default:
		r.countPrev = 0
		r.epoch = e
		r.countCur = 1
	}
}

// rate predicts the next window's arrival count.
func (r *rateStat) rate(now sim.Time, window int64) float64 {
	e := epochOf(now, window)
	switch {
	case e == r.epoch:
		if r.countPrev > 0 {
			return float64(r.countPrev)
		}
		return float64(r.countCur)
	case e == r.epoch+1:
		return float64(r.countCur)
	default:
		return 0 // key has gone quiet
	}
}

// ctEntry is one row of the candidate table (CT) of Section 7: the most
// recent RIC information a node holds about a key, together with the
// address of the node responsible for it so future queries can reach
// that candidate in one hop.
type ctEntry struct {
	Rate float64
	Addr id.ID
	At   sim.Time
}

// candidateTable caches RIC information learned from replies and from
// RIC info piggy-backed on rewritten queries, keeping the most recent
// report per key.
type candidateTable struct {
	entries map[relation.Key]ctEntry
}

func newCandidateTable() *candidateTable {
	return &candidateTable{entries: make(map[relation.Key]ctEntry)}
}

// merge records a report, keeping the newest per key.
func (ct *candidateTable) merge(info ricInfo) {
	if cur, ok := ct.entries[info.Key]; ok && cur.At >= info.At {
		return
	}
	ct.entries[info.Key] = ctEntry{Rate: info.Rate, Addr: info.Addr, At: info.At}
}

// fresh returns the entry for key if it exists and was learned within
// validity ticks of now.
func (ct *candidateTable) fresh(key relation.Key, now sim.Time, validity int64) (ctEntry, bool) {
	e, ok := ct.entries[key]
	if !ok || int64(now-e.At) > validity {
		return ctEntry{}, false
	}
	return e, true
}

// get returns the entry regardless of freshness.
func (ct *candidateTable) get(key relation.Key) (ctEntry, bool) {
	e, ok := ct.entries[key]
	return e, ok
}

// size returns the number of cached keys.
func (ct *candidateTable) size() int { return len(ct.entries) }
