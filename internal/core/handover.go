package core

import (
	"fmt"
	"sort"

	"rjoin/internal/chord"
	"rjoin/internal/id"
	"rjoin/internal/obs"
	"rjoin/internal/query"
	"rjoin/internal/relation"
	"rjoin/internal/sim"
)

// This file implements runtime membership changes: graceful leave with
// state handover, abrupt crash with engine-level recovery, and runtime
// join with arc transfer. The policy deciding *when* nodes churn lives
// in internal/churn; the mechanics of moving RJoin state live here,
// next to the stores they drain and fill.

// handoverChunk bounds how many state entries ride in one handover
// message, so the traffic charged for a handover scales with the state
// moved rather than being a single flat message.
const handoverChunk = 48

// sortedStateKeys returns a map's keys ordered by their string form —
// the deterministic iteration order every handover is built in, so
// equal seeds replay identically regardless of map layout.
func sortedStateKeys[V any](m map[relation.Key]V) []relation.Key {
	keys := make([]relation.Key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}

// sortedReqIDs is sortedStateKeys for the pending-placement table: the
// one deterministic iteration order shared by handover construction
// and crash recovery.
func sortedReqIDs(pending map[int64]*pendingPlacement) []int64 {
	reqIDs := make([]int64, 0, len(pending))
	for reqID := range pending {
		reqIDs = append(reqIDs, reqID)
	}
	sort.Slice(reqIDs, func(i, j int) bool { return reqIDs[i] < reqIDs[j] })
	return reqIDs
}

// handoverBuilder accumulates state entries into chunked messages.
type handoverBuilder struct {
	from, to id.ID
	msgs     []*handoverMsg
}

func (b *handoverBuilder) chunk() *handoverMsg {
	if n := len(b.msgs); n > 0 && b.msgs[n-1].entryCount() < handoverChunk {
		return b.msgs[n-1]
	}
	m := &handoverMsg{From: b.from, To: b.to}
	b.msgs = append(b.msgs, m)
	return m
}

// buildFullHandover drains every piece of a processor's state — stored
// queries (both levels), value-level tuples, ALTT entries, rate
// statistics, candidate-table entries and in-flight placements — into
// handover messages for the given recipient. The processor is left
// empty.
func buildFullHandover(p *Proc, to id.ID) []*handoverMsg {
	b := &handoverBuilder{from: p.node.ID(), to: to}
	for _, key := range sortedStateKeys(p.queries) {
		for _, sq := range p.queries[key] {
			c := b.chunk()
			c.Queries = append(c.Queries, sq)
		}
	}
	for _, key := range sortedStateKeys(p.tuples) {
		for _, t := range p.tuples[key] {
			c := b.chunk()
			c.Tuples = append(c.Tuples, handedTuple{Key: key, T: t})
		}
	}
	for _, key := range sortedStateKeys(p.altt) {
		for _, e := range p.altt[key] {
			c := b.chunk()
			c.ALTT = append(c.ALTT, handedALTT{Key: key, E: e})
		}
	}
	for _, key := range sortedStateKeys(p.stats) {
		c := b.chunk()
		c.Stats = append(c.Stats, handedStat{Key: key, S: *p.stats[key]})
	}
	for _, key := range sortedStateKeys(p.ct.entries) {
		e := p.ct.entries[key]
		c := b.chunk()
		c.CT = append(c.CT, ricInfo{Key: key, Rate: e.Rate, Addr: e.Addr, At: e.At})
	}
	for _, reqID := range sortedReqIDs(p.pending) {
		c := b.chunk()
		c.Pending = append(c.Pending, handedPending{ReqID: reqID, PP: p.pending[reqID]})
	}
	for _, key := range sortedStateKeys(p.aggs) {
		c := b.chunk()
		c.Aggs = append(c.Aggs, handedAgg{Key: key, G: p.aggs[key]})
	}
	p.queries = make(map[relation.Key][]*storedQuery)
	p.tuples = make(map[relation.Key][]*relation.Tuple)
	p.altt = make(map[relation.Key][]alttEntry)
	p.aggs = make(map[relation.Key]*aggGroup)
	p.stats = make(map[relation.Key]*rateStat)
	p.ct = newCandidateTable()
	p.pending = make(map[int64]*pendingPlacement)
	return b.msgs
}

// buildArcHandover extracts from sp the stored state whose keys now
// belong to the freshly joined node n (ground truth after the join) and
// returns it as handover messages addressed to n. Candidate-table
// entries and pending placements stay: they are bound to sp itself, not
// to the keys it stores. Every moved key is dropped from sp's replica
// mirrors (it is no longer sp's to guarantee; n re-replicates it on
// arrival), keeping groups consistent as ownership moves.
func buildArcHandover(e *Engine, sp *Proc, n *chord.Node) []*handoverMsg {
	moved := func(key relation.Key) bool {
		o := e.ring.Owner(key.ID())
		return o != nil && o.ID() == n.ID()
	}
	dropped := make(map[relation.Key]bool)
	drop := func(key relation.Key) {
		if !dropped[key] {
			dropped[key] = true
			sp.replDropKey(key)
		}
	}
	b := &handoverBuilder{from: sp.node.ID(), to: n.ID()}
	for _, key := range sortedStateKeys(sp.queries) {
		if !moved(key) {
			continue
		}
		for _, sq := range sp.queries[key] {
			c := b.chunk()
			c.Queries = append(c.Queries, sq)
		}
		delete(sp.queries, key)
		drop(key)
	}
	for _, key := range sortedStateKeys(sp.tuples) {
		if !moved(key) {
			continue
		}
		for _, t := range sp.tuples[key] {
			c := b.chunk()
			c.Tuples = append(c.Tuples, handedTuple{Key: key, T: t})
		}
		delete(sp.tuples, key)
		drop(key)
	}
	for _, key := range sortedStateKeys(sp.altt) {
		if !moved(key) {
			continue
		}
		for _, en := range sp.altt[key] {
			c := b.chunk()
			c.ALTT = append(c.ALTT, handedALTT{Key: key, E: en})
		}
		delete(sp.altt, key)
		drop(key)
	}
	for _, key := range sortedStateKeys(sp.stats) {
		if !moved(key) {
			continue
		}
		c := b.chunk()
		c.Stats = append(c.Stats, handedStat{Key: key, S: *sp.stats[key]})
		delete(sp.stats, key)
	}
	for _, key := range sortedStateKeys(sp.aggs) {
		if !moved(key) {
			continue
		}
		c := b.chunk()
		c.Aggs = append(c.Aggs, handedAgg{Key: key, G: sp.aggs[key]})
		delete(sp.aggs, key)
		drop(key)
	}
	sp.replFlush()
	return b.msgs
}

// sendHandover ships prepared handover chunks as instantaneous
// transfers, charged under the churn traffic tag.
func (e *Engine) sendHandover(from *chord.Node, to id.ID, msgs []*handoverMsg) {
	e.net.WithTag(from, TagChurn, func() {
		for _, m := range msgs {
			if m.entryCount() == 0 {
				continue
			}
			e.Counters.HandoverMessages++
			e.Counters.HandoverEntries += int64(m.entryCount())
			if tr := e.trace; tr != nil {
				// Handover runs from churn-manager (coordinator) context.
				tr.Emit(sim.NoShard, obs.Event{
					At: int64(e.sim.Now()), Kind: obs.KindHandover,
					Node: uint64(from.ID()), Arg: int64(m.entryCount()),
				})
			}
			e.net.Transfer(from, to, m)
		}
	})
}

// onHandover merges transferred state into the local stores. Entries
// whose key this node does not own (the ring moved again while the
// handover was in flight, or a chunk was bounced past its intended
// recipient) are forwarded to their key's current owner, up to the
// rerouting budget.
func (p *Proc) onHandover(now sim.Time, m *handoverMsg) {
	e := p.eng
	var fwdKeys []relation.Key
	fwd := make(map[relation.Key]*handoverMsg)
	forward := func(key relation.Key) *handoverMsg {
		f, ok := fwd[key]
		if !ok {
			f = &handoverMsg{From: p.node.ID(), To: key.ID(), Hops: m.Hops + 1}
			fwd[key] = f
			fwdKeys = append(fwdKeys, key)
		}
		return f
	}
	canForward := m.Hops < maxReroutes
	// strayed reports an entry that reached a node that does not own
	// its key after the forwarding budget ran out (the ring changed
	// ownership repeatedly while the handover was in flight). Such an
	// entry is dropped and counted as lost exactly once — storing it
	// here would leave state no traffic can reach while exposing it to
	// double counting by a later crash of this node.
	strayed := func(key relation.Key) bool {
		return !canForward && !p.ownsKey(key)
	}

	for _, sq := range m.Queries {
		if p.eng.retiredPipeline(sq.q.ID) {
			continue // pipeline torn down while the handover was in flight
		}
		if !p.ownsKey(sq.key) {
			if canForward {
				f := forward(sq.key)
				f.Queries = append(f.Queries, sq)
			} else if sq.q.Depth == 0 {
				p.ctr.QueriesLost++
			} else {
				p.ctr.RewritesLost++
			}
			continue
		}
		p.queries[sq.key] = append(p.queries[sq.key], sq)
		p.replQueryAdd(sq) // handed-over state re-replicates at its new home
	}
	for _, h := range m.Tuples {
		if canForward && !p.ownsKey(h.Key) {
			f := forward(h.Key)
			f.Tuples = append(f.Tuples, h)
			continue
		}
		if strayed(h.Key) {
			p.ctr.TuplesLost++
			continue
		}
		p.tuples[h.Key] = append(p.tuples[h.Key], h.T)
		p.replTupleAdd(h.Key, h.T)
	}
	for _, h := range m.ALTT {
		if canForward && !p.ownsKey(h.Key) {
			f := forward(h.Key)
			f.ALTT = append(f.ALTT, h)
			continue
		}
		if strayed(h.Key) {
			p.ctr.TuplesLost++
			continue
		}
		p.insertALTT(h.Key, h.E)
		p.replALTTAdd(h.Key, h.E)
	}
	for _, h := range m.Stats {
		if canForward && !p.ownsKey(h.Key) {
			f := forward(h.Key)
			f.Stats = append(f.Stats, h)
			continue
		}
		if cur, ok := p.stats[h.Key]; ok {
			// Keep whichever estimate saw traffic more recently.
			if h.S.epoch > cur.epoch {
				*cur = h.S
			}
		} else {
			s := h.S
			p.stats[h.Key] = &s
		}
	}
	for _, info := range m.CT {
		p.ctMerge(info)
	}
	for _, h := range m.Pending {
		if p.eng.retiredPipeline(h.PP.q.ID) {
			continue // pipeline torn down while the handover was in flight
		}
		p.pending[h.ReqID] = h.PP
		p.replPendingAdd(h.ReqID, h.PP.q)
	}
	for _, h := range m.Aggs {
		if p.eng.retiredSub(h.G.qid) {
			continue // subscriber gone; its aggregator state is moot
		}
		if canForward && !p.ownsKey(h.Key) {
			f := forward(h.Key)
			f.Aggs = append(f.Aggs, h)
			continue
		}
		if strayed(h.Key) {
			p.ctr.AggStateLost += h.G.epochCount()
			continue
		}
		// Mirror the transferred delta before merging: mergeInto moves
		// the partial pointers into the destination group.
		p.replAggMerge(h.Key, h.G)
		if cur, ok := p.aggs[h.Key]; ok {
			// Partials for this group reached the new owner before the
			// handover landed: merge the transferred epochs in and mark
			// them dirty so the next flush re-emits their rows.
			h.G.mergeInto(p.eng.aggSpec(h.G.qid).Sliding(), cur)
		} else {
			p.aggs[h.Key] = h.G
		}
	}

	for _, key := range fwdKeys {
		f := fwd[key]
		p.ctr.MessagesRerouted++
		e.net.WithTag(p.node, TagChurn, func() {
			e.net.Send(p.node, key.ID(), f)
		})
	}
}

// insertALTT splices a transferred ALTT entry into the expiry-ordered
// list for its key, preserving the invariant alttScan relies on (the
// expired prefix is contiguous). Like every other handed-over state
// class, a moved entry is not a new admission: ALTTStored counted it
// when it first entered the network.
func (p *Proc) insertALTT(key relation.Key, e alttEntry) {
	list := p.altt[key]
	i := len(list)
	for i > 0 && list[i-1].expireAt > e.expireAt {
		i--
	}
	list = append(list, alttEntry{})
	copy(list[i+1:], list[i:])
	list[i] = e
	p.altt[key] = list
}

// JoinNode adds a node with the given identifier to a running network:
// the node joins the ring, attaches a processor, and receives from its
// successor the slice of stored state falling in its new arc — the key
// handoff of Chord's join protocol, charged as churn traffic. Routing
// state elsewhere converges through periodic stabilization; until then,
// stale deliveries heal through the ownership re-route path.
func (e *Engine) JoinNode(nid id.ID) (*chord.Node, error) {
	// Clear any mirrors an earlier incarnation of this identifier left
	// behind, so its dead streams cannot shadow the new node's.
	e.replForgetOrigin(nid)
	n, err := e.ring.Join(nid)
	if err != nil {
		return nil, err
	}
	e.NodeJoined(n)
	succ := n.Successor()
	if succ != n {
		if sp, ok := e.procs[succ.ID()]; ok {
			e.sendHandover(succ, n.ID(), buildArcHandover(e, sp, n))
		}
	}
	// The join shifts the successor lists of the new node's
	// predecessors: re-form the affected replica groups.
	e.replRepair()
	return n, nil
}

// LeaveNode removes a node gracefully: it flushes its batched outbox,
// drains its entire RJoin state to its successor as handover messages
// (counted in the churn traffic share), and departs the ring. Messages
// already in flight to the departed node bounce to the same successor,
// and the handover lands instantaneously, so a graceful leave loses no
// state and duplicates no answers. The exception is a node with no
// live successor (the last node, or one whose whole successor list
// died first): there is nobody to hand to, and its state — pending
// placements included — is counted as lost.
func (e *Engine) LeaveNode(n *chord.Node) error {
	p, ok := e.procs[n.ID()]
	if !ok {
		return fmt.Errorf("core: node %s has no processor", n.ID())
	}
	e.net.FlushNode(n)
	succ := n.Successor()
	if succ != n && succ.Alive() {
		e.sendHandover(n, succ.ID(), buildFullHandover(p, succ.ID()))
	} else {
		e.countLostState(p)
	}
	// The departed node's mirrors are obsolete: its state lives on at
	// the successor (which re-replicates it as its own on arrival), or
	// is already counted lost. Update batches still in flight to a
	// dropped mirror are discarded by the stream versioning.
	if p.repl != nil {
		p.repl.outbox = nil
		for _, t := range p.repl.links.Targets() {
			e.replDropMirror(n.ID(), t)
		}
	}
	e.ring.Leave(n)
	e.NodeLeft(n)
	e.replRepair()
	return nil
}

// CrashNode removes a node abruptly. Without replication its stored
// state is gone: the engine re-indexes every input (Depth 0) continuous
// query the dead node was storing or placing from its owner's side
// (preserving identity and insertion time so the stream picks up where
// the crash cut it), while rewritten queries, stored tuples and
// aggregator partials are lost and counted — answers they would have
// produced are the crash's answer loss.
//
// With ReplicationFactor >= 2 and a surviving replica, nothing is
// lost: the first live member of the dead node's replica group — the
// node the ring now routes its keys to — promotes its mirror,
// re-indexing the state at its exact keys and re-replicating it.
// Promotion is scheduled rather than inline so replica updates the dead
// node flushed before crashing (strictly earlier event sequence
// numbers) land in the mirror first; every message bounced off the
// dead node re-routes with a later sequence and finds the promoted
// state. In-flight placement walks are mirrored too (rewrites included
// — without the mirror they exist only at the walk's origin) and
// restart at the promotee.
func (e *Engine) CrashNode(n *chord.Node) error {
	p, ok := e.procs[n.ID()]
	if !ok {
		return fmt.Errorf("core: node %s has no processor", n.ID())
	}
	e.ring.Fail(n)
	e.NodeLeft(n)

	// Mirrors the dead node held for other origins died with it: a
	// promotion already scheduled against one of them must count loss
	// instead of resurrecting state through its stale pointer.
	for _, ib := range p.replInboxes {
		ib.dead = true
	}

	now := e.sim.Now()
	promotee, replicated := e.replPromotee(p)

	// Lost placements of input queries, deterministically ordered.
	// Under promotion the stored queries survive in the mirror, so only
	// the pending placement walks need engine-side recovery.
	type lostPlacement struct {
		q     *query.Query
		key   relation.Key
		level query.Level
	}
	var lost []lostPlacement
	if !replicated {
		for _, key := range sortedStateKeys(p.queries) {
			for _, sq := range p.queries[key] {
				switch {
				case e.retiredQ[sq.q.ID]:
					// torn-down shared pipeline: nothing to recover or count
				case sq.q.Depth == 0 && !sq.q.OneTime:
					lost = append(lost, lostPlacement{q: sq.q, key: sq.key, level: sq.level})
				case sq.q.Depth == 0:
					e.Counters.QueriesLost++
				default:
					e.Counters.RewritesLost++
				}
			}
		}
	}
	// In-flight placement walks. Under promotion the mirror carries
	// them — every walk restarts at the promotee, rewrites included —
	// so the engine-side pass only runs for the unreplicated model.
	var rePlace []*query.Query
	if !replicated {
		for _, reqID := range sortedReqIDs(p.pending) {
			pp := p.pending[reqID]
			switch {
			case e.retiredQ[pp.q.ID]:
				// torn-down shared pipeline: nothing to recover or count
			case pp.q.Depth == 0 && !pp.q.OneTime:
				rePlace = append(rePlace, pp.q)
			case pp.q.Depth == 0:
				e.Counters.QueriesLost++
			default:
				e.Counters.RewritesLost++
			}
		}
	}
	if replicated {
		// Surviving replicas other than the promotee hold mirrors of the
		// dead node that will never be promoted; discard them. The
		// promotee's mirror stays (referenced by the scheduled
		// promotion, which consumes it even if the promotee departs
		// before the event fires — or counts it as loss if it cannot).
		var promoIb *replInbox
		if pp, ok := e.procs[promotee]; ok {
			promoIb = pp.replInboxes[n.ID()]
		}
		for _, t := range p.repl.links.Targets() {
			if t != promotee {
				e.replDropMirror(n.ID(), t)
			}
		}
		e.schedulePromotion(n.ID(), promotee, promoIb)
	} else {
		// No promotion possible: count the loss and discard every
		// mirror of the dead origin so nothing lingers unconsumed.
		e.countLostTuples(p)
		e.countLostAggState(p)
		if p.repl != nil {
			for _, t := range p.repl.links.Targets() {
				e.replDropMirror(n.ID(), t)
			}
		}
	}

	// Coordinator-context section: crash recovery sends originate from
	// many different recovery homes, so the tag scopes to every lane.
	e.net.WithTagAll(TagChurn, func() {
		// Re-index each lost input placement at exactly the key it was
		// stored under: with attribute-level replication the surviving
		// replicas keep their copies, so recovering only the lost
		// replica restores completeness without duplicating answers.
		for _, lp := range lost {
			home := e.recoveryHome(lp.q)
			if home == nil {
				e.Counters.QueriesLost++ // ring emptied out: nobody left to recover to
				continue
			}
			e.Counters.QueriesRecovered++
			e.net.Send(home, lp.key.ID(), newEvalMsg(lp.q.Clone(), lp.key, lp.level, nil))
		}
		// Placements that never completed restart from scratch.
		for _, q := range rePlace {
			home := e.recoveryHome(q)
			if home == nil {
				e.Counters.QueriesLost++
				continue
			}
			hp := e.procs[home.ID()]
			if hp == nil {
				e.Counters.QueriesLost++
				continue
			}
			e.Counters.QueriesRecovered++
			hp.place(now, q.Clone())
			hp.replFlush() // coordinator context: ship the walk's mirror op now
		}
	})
	// Every group the dead node belonged to lost a member: re-form them
	// (origins stream fresh snapshots to their new k−1th successors).
	e.replRepair()
	return nil
}

// recoveryHome returns the node that re-submits a recovered query: the
// owner if alive, else the current successor of the owner's identifier
// (where the owner's answers are bounced to as well).
func (e *Engine) recoveryHome(q *query.Query) *chord.Node {
	return e.ring.Owner(id.ID(q.Owner))
}

// countLostState charges every entry of a processor that disappears
// without handover — a departure with no live successor to hand to —
// to the loss counters, pending placements included.
func (e *Engine) countLostState(p *Proc) {
	for _, list := range p.queries {
		for _, sq := range list {
			if sq.q.Depth == 0 {
				e.Counters.QueriesLost++
			} else {
				e.Counters.RewritesLost++
			}
		}
	}
	for _, pp := range p.pending {
		if pp.q.Depth == 0 {
			e.Counters.QueriesLost++
		} else {
			e.Counters.RewritesLost++
		}
	}
	e.countLostTuples(p)
	e.countLostAggState(p)
}

// countLostAggState charges every (group, epoch) aggregation partial
// that dies with a node; the answers folded into it are the aggregate
// view's loss.
func (e *Engine) countLostAggState(p *Proc) {
	for _, g := range p.aggs {
		e.Counters.AggStateLost += g.epochCount()
	}
}

func (e *Engine) countLostTuples(p *Proc) {
	for _, list := range p.tuples {
		e.Counters.TuplesLost += int64(len(list))
	}
	for _, list := range p.altt {
		e.Counters.TuplesLost += int64(len(list))
	}
}
