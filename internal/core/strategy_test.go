package core

import (
	"math/rand"
	"testing"

	"rjoin/internal/overlay"
	"rjoin/internal/query"
	"rjoin/internal/refeval"
	"rjoin/internal/relation"
	"rjoin/internal/workload"
)

// strategyRun drives a moderately skewed workload under one engine
// configuration and returns the engine for metric inspection.
func strategyRun(t testing.TB, cfg Config, seed int64, nQueries, nTuples int) *Engine {
	t.Helper()
	eng, nodes := testNet(t, 128, seed, cfg, overlay.DefaultConfig())
	wcfg := workload.Config{Relations: 8, Attributes: 5, Values: 20, Theta: 0.9, JoinArity: 4}
	gen := workload.MustGenerator(wcfg, seed)
	rng := rand.New(rand.NewSource(seed + 77))
	for i := 0; i < nQueries; i++ {
		if _, err := eng.SubmitQuery(nodes[rng.Intn(len(nodes))], gen.Query()); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	for i := 0; i < nTuples; i++ {
		eng.PublishTuple(nodes[rng.Intn(len(nodes))], gen.Tuple())
		eng.Run()
	}
	return eng
}

// TestStrategyOrdering reproduces the Figure 2 shape at test scale:
// Worst placement generates more traffic and query-processing load than
// RIC-informed placement.
func TestStrategyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy comparison is a heavier test")
	}
	mk := func(s Strategy) *Engine {
		cfg := DefaultConfig()
		cfg.Strategy = s
		return strategyRun(t, cfg, 42, 400, 150)
	}
	ric := mk(StrategyRIC)
	worst := mk(StrategyWorst)

	ricTraffic := ric.Net().Traffic.Total()
	worstTraffic := worst.Net().Traffic.Total()
	if worstTraffic <= ricTraffic {
		t.Fatalf("Worst traffic %d not above RIC traffic %d", worstTraffic, ricTraffic)
	}
	if worst.QPL.Total() <= ric.QPL.Total() {
		t.Fatalf("Worst QPL %d not above RIC QPL %d", worst.QPL.Total(), ric.QPL.Total())
	}
	// The RIC-request overhead must be a modest share of RIC's total.
	ricShare := float64(ric.Net().TaggedTraffic(TagRIC).Total()) / float64(ricTraffic)
	if ricShare <= 0 || ricShare >= 0.9 {
		t.Fatalf("RIC request share %.2f implausible", ricShare)
	}
}

// TestCandidateTableReducesRICTraffic is the Section 7 ablation: with
// the CT cache off, every placement polls every candidate, so tagged
// RIC traffic rises.
func TestCandidateTableReducesRICTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is a heavier test")
	}
	withCT := DefaultConfig()
	noCT := DefaultConfig()
	noCT.UseCT = false
	noCT.PiggybackRIC = false
	a := strategyRun(t, withCT, 43, 200, 80)
	b := strategyRun(t, noCT, 43, 200, 80)
	ricA := a.Net().TaggedTraffic(TagRIC).Total()
	ricB := b.Net().TaggedTraffic(TagRIC).Total()
	if ricB <= ricA {
		t.Fatalf("disabling CT+piggyback did not increase RIC traffic: with=%d without=%d", ricA, ricB)
	}
}

// TestStrategiesAgreeOnAnswers: placement strategy affects cost, never
// correctness — all three deliver the same answer bags.
func TestStrategiesAgreeOnAnswers(t *testing.T) {
	results := make([]int64, 0, 3)
	for _, s := range []Strategy{StrategyRIC, StrategyRandom, StrategyWorst} {
		cfg := DefaultConfig()
		cfg.Strategy = s
		eng := strategyRun(t, cfg, 44, 60, 60)
		results = append(results, eng.Counters.AnswersDelivered)
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Fatalf("strategies delivered different answer counts: %v", results)
	}
}

// TestAttrRewritePlacementStillSound: with the Section 6 generalized
// candidate set enabled, answers remain a subset of the reference
// (completeness may be sacrificed, soundness may not).
func TestAttrRewritePlacementStillSound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AllowAttrRewrites = true
	for seed := int64(70); seed < 73; seed++ {
		eng, qids, queries, tuples := randomRun(t, cfg, overlay.DefaultConfig(), seed, 4, 30, 3)
		for i, qid := range qids {
			want := refeval.Evaluate(queries[i], tuples)
			got := answersToRows(eng.Answers(qid))
			if !refeval.SubBag(got, want) {
				t.Fatalf("seed %d query %d: unsound answers with attr-level rewrites", seed, i)
			}
		}
	}
}

// TestChurnSurvival: nodes fail mid-stream; after stabilization the
// network keeps processing and never delivers an unsound answer.
func TestChurnSurvival(t *testing.T) {
	eng, nodes := testNet(t, 96, 80, DefaultConfig(), overlay.DefaultConfig())
	wcfg := workload.Config{Relations: 3, Attributes: 3, Values: 3, Theta: 0.9, JoinArity: 2}
	gen := workload.MustGenerator(wcfg, 80)
	rng := rand.New(rand.NewSource(81))

	owner := nodes[0] // keep the owner alive so answers are observable
	var qids []string
	var queries []*query.Query
	for i := 0; i < 5; i++ {
		q := gen.Query()
		qid, err := eng.SubmitQuery(owner, q)
		if err != nil {
			t.Fatal(err)
		}
		qids = append(qids, qid)
		q.InsertTime = 0
		queries = append(queries, q)
	}
	eng.Run()

	var tuples []*relation.Tuple
	for i := 0; i < 60; i++ {
		if i == 20 || i == 40 {
			// Fail three random non-owner nodes abruptly.
			for k := 0; k < 3; k++ {
				alive := eng.Ring().Nodes()
				victim := alive[1+rng.Intn(len(alive)-1)]
				eng.Ring().Fail(victim)
				eng.NodeLeft(victim)
			}
			for r := 0; r < 3; r++ {
				eng.Ring().StabilizeAll()
			}
		}
		tu := gen.Tuple()
		eng.PublishTuple(nodes[0], tu)
		eng.Run()
		tuples = append(tuples, tu)
	}
	for i, qid := range qids {
		want := refeval.Evaluate(queries[i], tuples)
		got := answersToRows(eng.Answers(qid))
		if !refeval.SubBag(got, want) {
			t.Fatalf("churn produced unsound answers for query %d", i)
		}
	}
}

// TestNodeJoinMidStream: a node joining mid-run takes over part of the
// key space without breaking soundness.
func TestNodeJoinMidStream(t *testing.T) {
	eng, nodes := testNet(t, 64, 90, DefaultConfig(), overlay.DefaultConfig())
	wcfg := workload.Config{Relations: 3, Attributes: 3, Values: 3, Theta: 0.9, JoinArity: 2}
	gen := workload.MustGenerator(wcfg, 90)
	q := gen.Query()
	qid, err := eng.SubmitQuery(nodes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	q.InsertTime = 0
	var tuples []*relation.Tuple
	for i := 0; i < 40; i++ {
		if i == 15 {
			n, err := eng.Ring().Join(424242)
			if err != nil {
				t.Fatal(err)
			}
			eng.NodeJoined(n)
			eng.Ring().StabilizeAll()
		}
		tu := gen.Tuple()
		eng.PublishTuple(nodes[1], tu)
		eng.Run()
		tuples = append(tuples, tu)
	}
	want := refeval.Evaluate(q, tuples)
	got := answersToRows(eng.Answers(qid))
	if !refeval.SubBag(got, want) {
		t.Fatal("join churn produced unsound answers")
	}
}

// TestCountersConsistency sanity-checks the engine counters after a
// run: published tuples produce 2k receptions (k attribute keys, k
// value keys), stored value tuples equal k per published tuple, and
// every RIC request gets exactly one reply.
func TestCountersConsistency(t *testing.T) {
	eng := strategyRun(t, DefaultConfig(), 91, 50, 40)
	c := eng.Counters
	if c.TuplesPublished != 40 {
		t.Fatalf("published %d", c.TuplesPublished)
	}
	// 5 attributes per tuple → 10 deliveries per publication.
	if c.TuplesReceived != c.TuplesPublished*10 {
		t.Fatalf("received %d, want %d", c.TuplesReceived, c.TuplesPublished*10)
	}
	if c.TuplesStored != c.TuplesPublished*5 {
		t.Fatalf("stored %d, want %d", c.TuplesStored, c.TuplesPublished*5)
	}
	if c.RICRequests != c.RICReplies {
		t.Fatalf("RIC requests %d != replies %d", c.RICRequests, c.RICReplies)
	}
	if c.QueriesSubmitted != 50 || c.InputQueriesStored != 50 {
		t.Fatalf("queries submitted %d stored %d", c.QueriesSubmitted, c.InputQueriesStored)
	}
	if c.RewritesStored > c.RewritesCreated {
		t.Fatalf("stored %d rewrites > created %d", c.RewritesStored, c.RewritesCreated)
	}
	qpl := eng.QPL.Total()
	if qpl != c.TuplesReceived+c.RewritesStored {
		t.Fatalf("QPL %d != tuples received %d + rewrites received %d",
			qpl, c.TuplesReceived, c.RewritesStored)
	}
	sl := eng.SL.Total()
	if sl != c.TuplesStored+c.RewritesStored {
		t.Fatalf("SL %d != tuples stored %d + rewrites stored %d",
			sl, c.TuplesStored, c.RewritesStored)
	}
}
