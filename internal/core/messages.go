package core

import (
	"sync"

	"rjoin/internal/id"
	"rjoin/internal/query"
	"rjoin/internal/relation"
	"rjoin/internal/sim"
)

// The high-volume message kinds — tuple deliveries, query placements
// and answers — are pooled. Every such message is delivered at most
// once and its receiver copies out whatever it retains, so the handler
// dispatch loop can recycle the struct as soon as the handler returns.
// Messages dropped by the overlay (dead or detached recipient) simply
// fall to the garbage collector; only delivery recycles.
var (
	tupleMsgPool      = sync.Pool{New: func() interface{} { return new(tupleMsg) }}
	evalMsgPool       = sync.Pool{New: func() interface{} { return new(evalMsg) }}
	answerMsgPool     = sync.Pool{New: func() interface{} { return new(answerMsg) }}
	aggPartialMsgPool = sync.Pool{New: func() interface{} { return new(aggPartialMsg) }}
	aggRowMsgPool     = sync.Pool{New: func() interface{} { return new(aggRowMsg) }}
)

func newTupleMsg(t *relation.Tuple, key relation.Key, level query.Level, publisher id.ID) *tupleMsg {
	m := tupleMsgPool.Get().(*tupleMsg)
	*m = tupleMsg{T: t, Key: key, Level: level, Publisher: publisher}
	return m
}

func newEvalMsg(q *query.Query, key relation.Key, level query.Level, ric []ricInfo) *evalMsg {
	m := evalMsgPool.Get().(*evalMsg)
	*m = evalMsg{Q: q, Key: key, Level: level, RIC: ric}
	return m
}

func newAnswerMsg(queryID string, owner id.ID, values []relation.Value, pubAt int64, lin []query.LineageStep) *answerMsg {
	m := answerMsgPool.Get().(*answerMsg)
	*m = answerMsg{QueryID: queryID, Owner: owner, Values: values, PubAt: pubAt, Lineage: lin}
	return m
}

// tupleMsg is Procedure 1's newTuple(t, Key, IP(x), Level) message: one
// copy per index key of the tuple. Reroutes counts ownership
// corrections applied mid-churn (see Proc.reroute).
type tupleMsg struct {
	T         *relation.Tuple
	Key       relation.Key
	Level     query.Level
	Publisher id.ID
	Reroutes  uint8
}

// RingKey implements overlay.Rekeyable: an undeliverable tuple message
// is bound to its index key.
func (m *tupleMsg) RingKey() id.ID { return m.Key.ID() }

// evalMsg carries an input or rewritten query to the node that will
// store it (the paper's Eval(q, Key, Owner(q)) message; input-query
// indexing uses the same shape). RIC entries learned by the sender are
// piggy-backed per Section 7.
type evalMsg struct {
	Q        *query.Query
	Key      relation.Key
	Level    query.Level
	RIC      []ricInfo
	Reroutes uint8
}

// RingKey implements overlay.Rekeyable.
func (m *evalMsg) RingKey() id.ID { return m.Key.ID() }

// answerMsg delivers one answer row directly to the input query's
// owner. Owner is carried so that an answer in flight to a node that
// just departed can be bounced to the successor of the owner's
// identifier — the node applications reach when they look the owner up
// after the departure.
type answerMsg struct {
	QueryID string
	Owner   id.ID
	Values  []relation.Value
	// PubAt is the publication vtime of the tuple whose arrival
	// completed the rewrite chain — the trigger of this answer. The
	// owner's answer-latency measurement is delivery vtime minus PubAt.
	PubAt int64
	// Lineage is the answer's provenance — the (publisher, pubSeq,
	// node) of every tuple the rewrite chain consumed, in consumption
	// order. Nil unless Config.Provenance is set.
	Lineage []query.LineageStep
}

// RingKey implements overlay.Rekeyable: answers re-route to the
// current successor of the owner's ring position.
func (m *answerMsg) RingKey() id.ID { return m.Owner }

func newAggPartialMsg(queryID string, key relation.Key, owner id.ID, epoch int64, row []relation.Value, pubAt int64, lin []query.LineageStep) *aggPartialMsg {
	m := aggPartialMsgPool.Get().(*aggPartialMsg)
	*m = aggPartialMsg{QueryID: queryID, Key: key, Owner: owner, Epoch: epoch, Row: row, PubAt: pubAt, Lineage: lin}
	return m
}

func newAggRowMsg(queryID string, owner id.ID, epoch int64, row []relation.Value, pubAt int64, lin []query.LineageStep) *aggRowMsg {
	m := aggRowMsgPool.Get().(*aggRowMsg)
	*m = aggRowMsg{QueryID: queryID, Owner: owner, Epoch: epoch, Row: row, PubAt: pubAt, Lineage: lin}
	return m
}

// aggPartialMsg carries one completed answer row of an aggregate query
// from its completion node to the aggregator responsible for the row's
// group: the node owning Key = Hash(agg + queryID + groupKey). Owner
// rides along so the aggregator knows where group updates go.
type aggPartialMsg struct {
	QueryID string
	Key     relation.Key
	Owner   id.ID
	Epoch   int64
	Row     []relation.Value
	// PubAt is the triggering tuple's publication vtime (see
	// answerMsg.PubAt); the aggregator folds it into the group's
	// latency watermark.
	PubAt    int64
	Reroutes uint8
	// Lineage is the row's provenance (see answerMsg.Lineage); the
	// aggregator folds it into the group's per-epoch lineage union.
	Lineage []query.LineageStep
}

// RingKey implements overlay.Rekeyable: a partial in flight to a
// departed aggregator re-routes to its group key's new owner.
func (m *aggPartialMsg) RingKey() id.ID { return m.Key.ID() }

// aggRowMsg is the subscriber-side-aggregation counterpart of
// aggPartialMsg: the raw completed row ships directly to the query
// owner, which folds it into the aggregate view locally.
type aggRowMsg struct {
	QueryID string
	Owner   id.ID
	Epoch   int64
	Row     []relation.Value
	// PubAt is the triggering tuple's publication vtime (see
	// answerMsg.PubAt).
	PubAt int64
	// Lineage is the row's provenance (see answerMsg.Lineage).
	Lineage []query.LineageStep
}

// RingKey implements overlay.Rekeyable.
func (m *aggRowMsg) RingKey() id.ID { return m.Owner }

// aggUpdateMsg delivers one finalized aggregate view row — the latest
// aggregates of one group in one epoch — from an aggregator node to the
// query owner. Ver is the number of answer rows folded into the row,
// which only grows for a given (group, epoch), so deliveries reordered
// by random hop delays (or an aggregator handover) can never regress
// the subscriber's view.
type aggUpdateMsg struct {
	QueryID string
	Owner   id.ID
	Group   string
	Epoch   int64
	Ver     int64
	Row     []relation.Value
	// PubAt is the group's latency watermark: the latest triggering
	// publication vtime folded into the row (a commutative max, so it
	// is deterministic under any fold order).
	PubAt int64
	// Lineage is the sorted snapshot of the group's per-epoch lineage
	// union — every (publisher, pubSeq, node) step of every row folded
	// into the view row. Nil unless Config.Provenance is set.
	Lineage []query.LineageStep
}

// RingKey implements overlay.Rekeyable: updates re-route to the current
// successor of the owner's ring position.
func (m *aggUpdateMsg) RingKey() id.ID { return m.Owner }

// ricInfo is one candidate's report: the key it is responsible for, the
// rate of incoming tuples it observes for that key, its address (so the
// decision maker can reach it in one hop), and when the report was
// produced.
type ricInfo struct {
	Key  relation.Key
	Rate float64
	Addr id.ID
	At   sim.Time
}

// ricRequestMsg implements the chained RIC collection walk of Section
// 6: the message visits each pending candidate key in turn, every
// visited node appends its report, and the last node returns the
// collected reports directly to the origin.
type ricRequestMsg struct {
	Origin  id.ID
	ReqID   int64
	Pending []relation.Key // candidate keys not yet visited, in visit order
	Got     []ricInfo
}

// RingKey implements overlay.Rekeyable: the walk continues at the
// next pending candidate's owner.
func (m *ricRequestMsg) RingKey() id.ID {
	if len(m.Pending) > 0 {
		return m.Pending[0].ID()
	}
	return m.Origin
}

// ricReplyMsg returns the collected reports to the origin. Origin is
// carried so a reply whose origin departed mid-walk can follow the
// pending placement to the origin's successor (graceful leaves hand
// pending placements over with the rest of the node's state).
type ricReplyMsg struct {
	ReqID  int64
	Origin id.ID
	Got    []ricInfo
}

// RingKey implements overlay.Rekeyable.
func (m *ricReplyMsg) RingKey() id.ID { return m.Origin }

// handoverMsg moves RJoin state between nodes during membership
// changes: a gracefully leaving node drains its entire store to its
// successor, and a freshly joined node receives the slice of its
// successor's store that falls in its new arc. Entries are ordered
// deterministically (keys sorted by their string form) and chunked so
// the traffic charged for a handover scales with the state moved.
type handoverMsg struct {
	From id.ID
	// To is the intended recipient, kept for bouncing: if the recipient
	// dies before the handover lands, the chunk re-routes to the
	// current successor of this identifier.
	To   id.ID
	Hops uint8 // forwarding steps taken by entries that missed their owner

	Queries []*storedQuery
	Tuples  []handedTuple
	ALTT    []handedALTT
	Stats   []handedStat
	CT      []ricInfo
	Pending []handedPending
	Aggs    []handedAgg
}

// RingKey implements overlay.Rekeyable.
func (m *handoverMsg) RingKey() id.ID { return m.To }

// entryCount returns how many state entries the chunk carries.
func (m *handoverMsg) entryCount() int {
	return len(m.Queries) + len(m.Tuples) + len(m.ALTT) +
		len(m.Stats) + len(m.CT) + len(m.Pending) + len(m.Aggs)
}

type handedTuple struct {
	Key relation.Key
	T   *relation.Tuple
}

type handedALTT struct {
	Key relation.Key
	E   alttEntry
}

type handedStat struct {
	Key relation.Key
	S   rateStat
}

type handedPending struct {
	ReqID int64
	PP    *pendingPlacement
}

type handedAgg struct {
	Key relation.Key
	G   *aggGroup
}
