package core

import (
	"sync"

	"rjoin/internal/id"
	"rjoin/internal/query"
	"rjoin/internal/relation"
	"rjoin/internal/sim"
)

// The high-volume message kinds — tuple deliveries, query placements
// and answers — are pooled. Every such message is delivered at most
// once and its receiver copies out whatever it retains, so the handler
// dispatch loop can recycle the struct as soon as the handler returns.
// Messages dropped by the overlay (dead or detached recipient) simply
// fall to the garbage collector; only delivery recycles.
var (
	tupleMsgPool  = sync.Pool{New: func() interface{} { return new(tupleMsg) }}
	evalMsgPool   = sync.Pool{New: func() interface{} { return new(evalMsg) }}
	answerMsgPool = sync.Pool{New: func() interface{} { return new(answerMsg) }}
)

func newTupleMsg(t *relation.Tuple, key relation.Key, level query.Level, publisher id.ID) *tupleMsg {
	m := tupleMsgPool.Get().(*tupleMsg)
	*m = tupleMsg{T: t, Key: key, Level: level, Publisher: publisher}
	return m
}

func newEvalMsg(q *query.Query, key relation.Key, level query.Level, ric []ricInfo) *evalMsg {
	m := evalMsgPool.Get().(*evalMsg)
	*m = evalMsg{Q: q, Key: key, Level: level, RIC: ric}
	return m
}

func newAnswerMsg(queryID string, values []relation.Value) *answerMsg {
	m := answerMsgPool.Get().(*answerMsg)
	*m = answerMsg{QueryID: queryID, Values: values}
	return m
}

// tupleMsg is Procedure 1's newTuple(t, Key, IP(x), Level) message: one
// copy per index key of the tuple.
type tupleMsg struct {
	T         *relation.Tuple
	Key       relation.Key
	Level     query.Level
	Publisher id.ID
}

// evalMsg carries an input or rewritten query to the node that will
// store it (the paper's Eval(q, Key, Owner(q)) message; input-query
// indexing uses the same shape). RIC entries learned by the sender are
// piggy-backed per Section 7.
type evalMsg struct {
	Q     *query.Query
	Key   relation.Key
	Level query.Level
	RIC   []ricInfo
}

// answerMsg delivers one answer row directly to the input query's
// owner.
type answerMsg struct {
	QueryID string
	Values  []relation.Value
}

// ricInfo is one candidate's report: the key it is responsible for, the
// rate of incoming tuples it observes for that key, its address (so the
// decision maker can reach it in one hop), and when the report was
// produced.
type ricInfo struct {
	Key  relation.Key
	Rate float64
	Addr id.ID
	At   sim.Time
}

// ricRequestMsg implements the chained RIC collection walk of Section
// 6: the message visits each pending candidate key in turn, every
// visited node appends its report, and the last node returns the
// collected reports directly to the origin.
type ricRequestMsg struct {
	Origin  id.ID
	ReqID   int64
	Pending []relation.Key // candidate keys not yet visited, in visit order
	Got     []ricInfo
}

// ricReplyMsg returns the collected reports to the origin.
type ricReplyMsg struct {
	ReqID int64
	Got   []ricInfo
}
