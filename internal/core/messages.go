package core

import (
	"rjoin/internal/id"
	"rjoin/internal/query"
	"rjoin/internal/relation"
	"rjoin/internal/sim"
)

// tupleMsg is Procedure 1's newTuple(t, Key, IP(x), Level) message: one
// copy per index key of the tuple.
type tupleMsg struct {
	T         *relation.Tuple
	Key       string
	Level     query.Level
	Publisher id.ID
}

// evalMsg carries an input or rewritten query to the node that will
// store it (the paper's Eval(q, Key, Owner(q)) message; input-query
// indexing uses the same shape). RIC entries learned by the sender are
// piggy-backed per Section 7.
type evalMsg struct {
	Q     *query.Query
	Key   string
	Level query.Level
	RIC   []ricInfo
}

// answerMsg delivers one answer row directly to the input query's
// owner.
type answerMsg struct {
	QueryID string
	Values  []relation.Value
}

// ricInfo is one candidate's report: the key it is responsible for, the
// rate of incoming tuples it observes for that key, its address (so the
// decision maker can reach it in one hop), and when the report was
// produced.
type ricInfo struct {
	Key  string
	Rate float64
	Addr id.ID
	At   sim.Time
}

// ricRequestMsg implements the chained RIC collection walk of Section
// 6: the message visits each pending candidate key in turn, every
// visited node appends its report, and the last node returns the
// collected reports directly to the origin.
type ricRequestMsg struct {
	Origin  id.ID
	ReqID   int64
	Pending []string // candidate keys not yet visited, in visit order
	Got     []ricInfo
}

// ricReplyMsg returns the collected reports to the origin.
type ricReplyMsg struct {
	ReqID int64
	Got   []ricInfo
}
