package core

// This file wires the multi-query sharing subsystem (internal/share)
// into the engine: submission-time registration/attachment, the
// completion-node fan-out, containment replay, and the unsubscribe /
// teardown path. The registry and both tombstone maps are written only
// from coordinator context (SubmitQuery, Unsubscribe run between
// drains); handlers read them lock-free, exactly like aggSpecs. Fan-out
// tables are immutable snapshots replaced wholesale on every membership
// change, so a handler either sees the old table or the new one, never
// a partially updated list.

import (
	"fmt"
	"math"
	"sort"

	"rjoin/internal/id"
	"rjoin/internal/obs/profile"
	"rjoin/internal/query"
	"rjoin/internal/relation"
	"rjoin/internal/share"
	"rjoin/internal/sim"
)

// fanoutOf returns the completion fan-out of a shared pipeline, nil for
// pipelines that deliver to exactly their own QID (the legacy path —
// byte-identical behaviour to the pre-sharing engine).
func (e *Engine) fanoutOf(qid string) *share.Fanout { return e.fanouts[qid] }

// retiredPipeline reports whether qid names a torn-down shared
// pipeline: its straggler rewrites must be dropped, not re-indexed.
func (e *Engine) retiredPipeline(qid string) bool { return e.retiredQ[qid] }

// retiredSub reports whether qid names an unsubscribed subscriber: its
// in-flight answers and aggregation partials must be dropped.
func (e *Engine) retiredSub(qid string) bool { return e.retiredS[qid] }

// SharedClasses reports the number of live pipeline equivalence
// classes (every live subscription belongs to exactly one).
func (e *Engine) SharedClasses() int { return e.reg.Classes() }

// shareSubmit registers a freshly stamped input query with the sharing
// registry and decides what to index: it returns the query to place
// (the input itself, or a canonical full-row pipeline standing in for
// it), or nil when the submission attached to an existing pipeline and
// nothing new needs placing. Every submission is registered — even with
// all sharing off the class bookkeeping is what makes Unsubscribe able
// to find and tear down the pipeline later.
func (e *Engine) shareSubmit(q *query.Query) *query.Query {
	sub := &share.Subscriber{QID: q.ID, Owner: q.Owner, InsertTime: q.InsertTime}
	if q.OneTime {
		// One-time snapshots never share: they keep no standing state to
		// share, and an attacher's snapshot semantics would differ.
		// Registered with no Exact key so nothing ever attaches.
		e.reg.Register(&share.Class{QID: q.ID, Pipeline: q}, sub)
		return q
	}
	exact := q.String()
	if cls := e.reg.LookupExact(exact); cls != nil && e.canAttach(cls, q) {
		if e.attach(cls, sub, q) {
			return nil
		}
	}
	if e.Cfg.ShareQueries {
		if can, ok := share.Canonicalize(q, e.Cfg.Catalog); ok {
			if cls := e.reg.LookupForm(can.Form); cls != nil && cls.Canonical {
				if e.attach(cls, sub, q) {
					return nil
				}
			} else if pipe := e.registerCanonical(can, sub, q, exact); pipe != nil {
				return pipe
			} else if e.reg.ClassOf(q.ID) != nil {
				return nil // containment child: registered, nothing placed
			}
		}
	}
	// No sharing possible: the query is its own singleton class and its
	// own pipeline.
	e.reg.Register(&share.Class{QID: q.ID, Exact: exact, Pipeline: q}, sub)
	return q
}

// canAttach reports whether a new subscriber may ride an existing
// class's pipeline. Sharing must be enabled; mid-stream attachment is
// only sound when completions cannot happen on the attach tick itself
// (ShareExact is gated on MinHopDelay >= 1 by the caller). DISTINCT
// queries may not attach to a non-canonical pipeline: that pipeline
// suppresses repeated trigger projections in-network, so a late
// attacher would silently miss rows that are first-time answers for
// it. Canonical pipelines carry no DISTINCT marker — set semantics are
// enforced per-subscriber at the owner — so they are safe for anyone.
func (e *Engine) canAttach(cls *share.Class, q *query.Query) bool {
	if !e.Cfg.ShareExact && !e.Cfg.ShareQueries {
		return false
	}
	if cls.Pipeline == nil || cls.Pipeline.OneTime {
		return false
	}
	if q.Distinct && !cls.Canonical {
		return false
	}
	return true
}

// attach adds a subscriber to an existing class and publishes the
// refreshed fan-out snapshot. For canonical classes the subscriber's
// residual (predicates over constants, projection) is extracted
// against the class form; for exact classes the residual is nil and
// rows pass through unchanged. Returns false if the residual cannot be
// built (a column outside the form — impossible for queries that
// canonicalized to it, kept as a safe fallback).
func (e *Engine) attach(cls *share.Class, sub *share.Subscriber, q *query.Query) bool {
	if cls.Canonical {
		res, ok := cls.Can.ResidualOf(q)
		if !ok {
			return false
		}
		sub.Res = res
	}
	e.reg.Attach(cls, sub)
	e.fanouts[cls.QID] = cls.Snapshot()
	e.Counters.QueriesShared++
	return true
}

// registerCanonical opens a new canonical equivalence class for q. If
// an existing class's join graph is a strict prefix of can's, the new
// class becomes a containment child: it places no pipeline of its own
// (the parent's completions are replayed through it) and the function
// returns nil. Otherwise the canonical full-row pipeline is returned
// for placement. A nil return with no registered class means the
// residual could not be built and the caller should fall back to a
// singleton.
func (e *Engine) registerCanonical(can *share.Canonical, sub *share.Subscriber, q *query.Query, exact string) *query.Query {
	res, ok := can.ResidualOf(q)
	if !ok {
		return nil
	}
	sub.Res = res
	pipe := can.Pipeline()
	pipe.ID = q.ID
	pipe.Owner = q.Owner
	pipe.InsertTime = q.InsertTime
	pipe.Depth = 0
	pipe.MinPub = math.MaxInt64
	cls := &share.Class{
		QID: q.ID, Exact: exact, Form: can.Form,
		Canonical: true, Pipeline: pipe, Can: can,
	}
	if parent := e.reg.FindParent(can); parent != nil {
		cls.Parent = parent
		parent.Kids = append(parent.Kids, &share.Kid{
			QID: q.ID, Pipeline: pipe, InsertTime: q.InsertTime,
			Rels: parent.Can.RelSlices(),
		})
		e.reg.Register(cls, sub)
		e.fanouts[q.ID] = cls.Snapshot()
		e.fanouts[parent.QID] = parent.Snapshot()
		e.Counters.QueriesShared++
		return nil
	}
	e.reg.Register(cls, sub)
	e.fanouts[q.ID] = cls.Snapshot()
	return pipe
}

// Unsubscribe removes a live subscription: the subscriber leaves its
// class's fan-out, its owner-side answer and aggregate state is
// released, and — when it was the class's last member — the shared
// pipeline itself is torn down network-wide. Safe under churn and
// replication: the tombstone maps make every resurrection path
// (handover, mirror promotion, crash recovery) skip retired state, and
// in-flight messages for retired IDs are dropped at their destination.
func (e *Engine) Unsubscribe(subQID string) error {
	cls := e.reg.Detach(subQID)
	if cls == nil {
		return fmt.Errorf("core: unknown or already-removed subscription %s", subQID)
	}
	e.retiredS[subQID] = true
	e.Counters.QueriesUnsubscribed++
	e.answersMu.Lock()
	delete(e.answers, subQID)
	delete(e.seenRows, subQID)
	delete(e.aggViews, subQID)
	delete(e.aggLocal, subQID)
	delete(e.provRows, subQID)
	e.answersMu.Unlock()
	delete(e.distinctQs, subQID)
	// aggSpecs is deliberately kept: in-flight partials and mirrored
	// aggregator groups look their spec up by QID, and a nil spec on
	// those paths would be indistinguishable from a bug. One immutable
	// spec per departed aggregate query is the price of that safety.
	e.sweepSubscriberAggState(subQID)
	if cls.Empty() {
		e.teardownClass(cls)
	} else {
		e.fanouts[cls.QID] = cls.Snapshot()
	}
	return nil
}

// teardownClass retires a class nobody references any more: its
// pipeline QID is tombstoned, its stored rewrites are swept off every
// node, and a containment child detaches from its parent (cascading if
// the parent thereby empties).
func (e *Engine) teardownClass(cls *share.Class) {
	e.retiredQ[cls.QID] = true
	delete(e.fanouts, cls.QID)
	e.reg.Drop(cls)
	if cls.Parent != nil {
		// Containment children place no pipeline: detaching from the
		// parent's fan-out is the whole teardown.
		e.reg.DetachKid(cls.Parent, cls.QID)
		if cls.Parent.Empty() {
			e.teardownClass(cls.Parent)
		} else {
			e.fanouts[cls.Parent.QID] = cls.Parent.Snapshot()
		}
		return
	}
	e.sweepPipeline(cls.QID)
}

// sweepPipeline removes every stored copy and pending placement of a
// retired pipeline (the input query and all its rewrites share its
// QID), in deterministic node/key order, mirroring each removal to the
// replica group. Rewrites still in flight are caught by the retiredQ
// guard when they arrive.
func (e *Engine) sweepPipeline(qid string) {
	for _, nid := range sortedProcIDs(e.procs) {
		p := e.procs[nid]
		touched := false
		for _, key := range sortedStateKeys(p.queries) {
			list := p.queries[key]
			kept := list[:0]
			for _, sq := range list {
				if sq.q.ID == qid {
					p.replQueryRemove(sq)
					touched = true
					continue
				}
				kept = append(kept, sq)
			}
			if len(kept) == 0 {
				delete(p.queries, key)
			} else {
				p.queries[key] = kept
			}
		}
		for _, reqID := range sortedReqIDs(p.pending) {
			if p.pending[reqID].q.ID == qid {
				delete(p.pending, reqID)
				p.replPendingRemove(reqID)
				touched = true
			}
		}
		if touched {
			p.replFlush() // coordinator context: ship the removals now
		}
	}
}

// sweepSubscriberAggState removes every aggregator group of an
// unsubscribed aggregate query, in deterministic node/key order. New
// partials for the QID are dropped by the retiredS guard in
// onAggPartial.
func (e *Engine) sweepSubscriberAggState(subQID string) {
	for _, nid := range sortedProcIDs(e.procs) {
		p := e.procs[nid]
		touched := false
		for _, key := range sortedStateKeys(p.aggs) {
			if p.aggs[key].qid == subQID {
				delete(p.aggs, key)
				p.replDropKey(key)
				touched = true
			}
		}
		if touched {
			p.replFlush()
		}
	}
}

// sortedProcIDs returns the engine's node identifiers in ascending
// order — the deterministic iteration sequence for coordinator-side
// sweeps.
func sortedProcIDs(procs map[id.ID]*Proc) []id.ID {
	ids := make([]id.ID, 0, len(procs))
	for nid := range procs {
		ids = append(ids, nid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// fanoutComplete delivers one completed pipeline row through the
// class's fan-out table: each subscriber whose insertion time the row
// predates is skipped (a subscriber may only see rows whose every
// tuple was published at or after its own insertion — exactly the
// reference semantics), each residual predicate is evaluated, the
// subscriber-shaped projection is built, and the row ships to the
// subscriber — or into its per-subscriber aggregation pipeline. Then
// every containment child replays the row through its own pipeline.
// lin is the completed row's provenance (nil unless Config.Provenance):
// every subscriber's copy of the row shares it, and containment replays
// inherit it — the child's rows are built from exactly the parent
// row's base tuples.
func (p *Proc) fanoutComplete(now sim.Time, fo *share.Fanout, vals []relation.Value, clock, minPub, pubAt int64, lin []query.LineageStep) {
	for i := range fo.Subs {
		s := &fo.Subs[i]
		if minPub < s.InsertTime {
			continue
		}
		if s.Res != nil && !s.Res.Eval(vals) {
			continue
		}
		row := vals
		if s.Res != nil {
			row = s.Res.Project(vals)
		}
		p.ctr.SharedFanoutRows++
		if pf := p.eng.prof; pf != nil {
			pf.Add(p.shard, s.QID, "", profile.FanoutRows, 1)
		}
		owner := id.ID(s.Owner)
		if spec := p.eng.aggSpec(s.QID); spec != nil {
			p.emitTo(now, s.QID, owner, spec, row, clock, pubAt, lin)
		} else {
			p.eng.net.SendDirect(p.node, owner, newAnswerMsg(s.QID, owner, row, pubAt, lin))
		}
	}
	for _, kid := range fo.Kids {
		if minPub < kid.InsertTime {
			continue
		}
		p.spawnContainment(now, kid, vals, clock, minPub, pubAt, lin)
	}
}

// spawnContainment replays a completed parent-class row through a
// containment child's pipeline: one pseudo-tuple per parent relation
// (carved out of the full row by the parent's layout) is substituted
// in sequence, enforcing along the way any conjunct the child is
// stricter about, and the resulting partial rewrite — depth equal to
// the parent's relation count, with the child's remaining relations
// still open — is dispatched from the completion node exactly as a
// locally triggered rewrite would be. The pseudo-tuples carry the
// row's minimum publication time so downstream subscriber filtering
// stays exact; they are never stored, only substituted.
func (p *Proc) spawnContainment(now sim.Time, kid *share.Kid, vals []relation.Value, clock, minPub, pubAt int64, lin []query.LineageStep) {
	cur := kid.Pipeline
	owned := false
	for _, rs := range kid.Rels {
		t := relation.MustTuple(rs.Schema, vals[rs.Off:rs.Off+rs.Schema.Arity()]...)
		t.PubTime = minPub
		next, ok := query.Rewrite(cur, t)
		if owned {
			query.Release(cur)
		}
		if !ok {
			return // a child-stricter conjunct rejected the row
		}
		cur, owned = next, true
	}
	cur.MinPub = minPub
	cur.AggClock = clock
	// The pseudo-tuples are carved out of the parent row, so the
	// replayed rewrite's provenance is the parent row's, not new steps.
	cur.Lineage = lin
	p.ctr.ContainmentRewrites++
	p.dispatch(now, cur, pubAt)
}
