package core

import (
	"sort"

	"rjoin/internal/agg"
	"rjoin/internal/chord"
	"rjoin/internal/id"
	"rjoin/internal/overlay"
	"rjoin/internal/query"
	"rjoin/internal/relation"
	"rjoin/internal/reliable"
	"rjoin/internal/sim"
)

// This file implements durable state replication over successor-list
// replica groups. Every key a node owns shares the same replica group —
// the node plus its ReplicationFactor−1 ring successors — so each node
// mirrors its keyed RJoin state (stored queries with their DISTINCT
// projection memory, value-level tuples, ALTT entries, candidate-table
// entries, aggregator group partials) along one versioned update stream
// per replica target. Mutations batch per handler invocation and fan
// out as replica-update messages charged under overlay.TagRepl;
// delivery is Transfer-like (instantaneous, one counted message per
// target), the simulation's rendering of a primary-backup protocol that
// acknowledges a mutation only once its backups hold it.
//
// On a crash, the surviving replica the ring now routes the dead node's
// keys to — its first live successor — promotes its mirror: the dead
// node's state is re-indexed at its exact keys and re-replicated to the
// promotee's own targets, instead of being counted lost. Promotion is
// scheduled as a zero-delay event rather than performed inline so that
// replica-update batches already in flight from the dead node (their
// event sequence numbers predate the crash) land in the mirror first.
// Graceful leaves and runtime joins keep groups consistent through the
// handover hooks (merged state re-replicates at its new owner, moved
// keys are dropped from stale mirrors), and every membership change
// ends in a repair pass that diffs each node's replica targets against
// its current successor list, streaming a full state snapshot to every
// new member and discarding mirrors held by former ones.

// replChunk bounds how many operations ride in one full-sync snapshot
// message, so re-replication traffic scales with the state moved —
// the same unit economics as handoverChunk.
const replChunk = 48

// replOpKind enumerates the mirrored mutation classes.
type replOpKind uint8

const (
	opAddQuery replOpKind = iota
	opRemoveQuery
	opTrigger
	opAddTuple
	opAddALTT
	opAggFold
	opAggMerge
	opCT
	opDropKey
	opAddPending
	opRemovePending
	opRemoveTuple
)

// replOp is one mirrored state mutation. It is a union struct like the
// handover entry kinds: only the fields of its kind are set. Pointer
// fields reference immutable objects (queries are frozen once stored,
// tuples always); mutable state (projection memory, combined sets,
// aggregation partials) is carried as copies owned by the operation so
// concurrent application at several replicas never shares writes.
type replOp struct {
	kind replOpKind
	key  relation.Key
	sqID int64 // opAddQuery / opRemoveQuery / opTrigger; the request id for opAddPending / opRemovePending

	q        *query.Query    // opAddQuery
	level    query.Level     // opAddQuery
	seen     map[string]bool // opAddQuery: projection memory snapshot
	combined []int64         // opAddQuery: migration combine memory snapshot

	proj   string // opTrigger: DISTINCT projection consumed ("" none)
	pubSeq int64  // opTrigger: combined publication sequence (0 none)

	t        *relation.Tuple // opAddTuple / opAddALTT
	expireAt sim.Time        // opAddALTT

	qid   string                 // opAggFold / opAggMerge
	owner id.ID                  // opAggFold / opAggMerge
	epoch int64                  // opAggFold
	row   []relation.Value       // opAggFold
	lin   []query.LineageStep    // opAggFold: the folded row's provenance
	gkey  string                 // opAggMerge: canonical group key
	group []relation.Value       // opAggMerge: grouping values copy
	parts map[int64]*agg.Partial // opAggMerge: cloned delta partials by epoch
	// lins is opAggMerge's cloned per-epoch lineage sets — mirrored
	// alongside the partials so a promoted group's provenance matches
	// what the dead primary would have emitted.
	lins map[int64]map[query.LineageStep]struct{}

	info ricInfo // opCT
}

// replUpdateMsg carries one batch of mirrored mutations from an origin
// to one replica target. Gen/First version the batch within the
// (origin, target) stream — see internal/reliable for the
// idempotency rules. Reset marks the head of a stream (always the batch
// starting at sequence 1): the receiver discards any previous mirror of
// this origin before applying.
type replUpdateMsg struct {
	From  id.ID
	To    id.ID
	Gen   int64
	First int64
	Reset bool
	Ops   []replOp
}

// RingKey implements overlay.Rekeyable: a batch in flight to a replica
// that just departed re-routes to its ring position's new owner, which
// discards it (To no longer matches) — the repair pass has already
// superseded the stream with a fresh snapshot.
func (m *replUpdateMsg) RingKey() id.ID { return m.To }

// procRepl is the origin-side replication state of one processor.
type procRepl struct {
	links  *reliable.Links
	outbox []replOp
	sqCtr  int64 // stored-query identities for remove/trigger ops
}

// replInbox is the replica-side state one node keeps per origin: the
// versioned stream tracker and the mirror it materializes into. dead
// marks a mirror whose holder crashed before a scheduled promotion
// could consume it — the contents died with the holder and must be
// counted as loss, not resurrected through a stale pointer.
type replInbox struct {
	in     *reliable.Inbox
	mirror *replMirror
	dead   bool
}

// replMirror is a passive copy of one origin's keyed state. It is never
// consulted by query processing — only promotion reads it back.
type replMirror struct {
	queries map[relation.Key][]*mirrorQuery
	bySq    map[int64]*mirrorQuery
	tuples  map[relation.Key][]*relation.Tuple
	altt    map[relation.Key][]alttEntry
	aggs    map[relation.Key]*aggGroup
	ct      map[relation.Key]ctEntry
	pending map[int64]*query.Query // in-flight placement walks by request id
}

// mirrorQuery is the mirrored form of one stored query: the immutable
// query object shared by pointer, the mutable projection/combine memory
// owned by the mirror.
type mirrorQuery struct {
	sqID     int64
	q        *query.Query
	key      relation.Key
	level    query.Level
	seen     map[string]bool
	combined []int64
}

func newReplMirror() *replMirror {
	return &replMirror{
		queries: make(map[relation.Key][]*mirrorQuery),
		bySq:    make(map[int64]*mirrorQuery),
		tuples:  make(map[relation.Key][]*relation.Tuple),
		altt:    make(map[relation.Key][]alttEntry),
		aggs:    make(map[relation.Key]*aggGroup),
		ct:      make(map[relation.Key]ctEntry),
		pending: make(map[int64]*query.Query),
	}
}

func copySeen(m map[string]bool) map[string]bool {
	if len(m) == 0 {
		return nil
	}
	cp := make(map[string]bool, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

func copyCombined(s []int64) []int64 {
	if len(s) == 0 {
		return nil
	}
	return append([]int64(nil), s...)
}

// ---------------------------------------------------------------------
// Origin side: mutation hooks, batching, flushing.

// replOn reports whether this processor mirrors its mutations. Every
// hook fast-exits through it, so a network without replication pays one
// nil check per mutation and nothing else.
func (p *Proc) replOn() bool { return p.repl != nil }

func (p *Proc) replEnqueue(op replOp) { p.repl.outbox = append(p.repl.outbox, op) }

// replQueryAdd mirrors the admission of a stored query, assigning the
// identity later trigger/remove operations reference. Called wherever a
// storedQuery enters p.queries: Eval arrival, handover merge, mirror
// promotion.
func (p *Proc) replQueryAdd(sq *storedQuery) {
	if !p.replOn() {
		return
	}
	p.repl.sqCtr++
	sq.replID = p.repl.sqCtr
	p.replEnqueue(replOp{
		kind: opAddQuery, key: sq.key, sqID: sq.replID,
		q: sq.q, level: sq.level,
		seen: copySeen(sq.seen), combined: copyCombined(sq.combined),
	})
}

// replQueryRemove mirrors a stored query's departure (window expiry,
// migration to a colder key).
func (p *Proc) replQueryRemove(sq *storedQuery) {
	if !p.replOn() {
		return
	}
	p.replEnqueue(replOp{kind: opRemoveQuery, key: sq.key, sqID: sq.replID})
}

// replTrigger mirrors the per-query memory a successful trigger leaves
// behind: the DISTINCT projection it consumed (proj, as returned by
// markTrigger — rendered once, not re-derived here) and, under
// migration, the combined publication sequence. Plain queries leave no
// memory and emit nothing.
func (p *Proc) replTrigger(sq *storedQuery, t *relation.Tuple, proj string) {
	if !p.replOn() {
		return
	}
	var ps int64
	if p.eng.Cfg.EnableMigration {
		ps = t.PubSeq
	}
	if proj == "" && ps == 0 {
		return
	}
	p.replEnqueue(replOp{kind: opTrigger, key: sq.key, sqID: sq.replID, proj: proj, pubSeq: ps})
}

// replTupleAdd mirrors a value-level tuple store.
func (p *Proc) replTupleAdd(key relation.Key, t *relation.Tuple) {
	if !p.replOn() {
		return
	}
	p.replEnqueue(replOp{kind: opAddTuple, key: key, t: t})
}

// replTupleRemove mirrors a garbage-collected tuple (identified by its
// unique publication sequence), so mirrors track GC exactly instead of
// growing unboundedly relative to their primary.
func (p *Proc) replTupleRemove(key relation.Key, pubSeq int64) {
	if !p.replOn() {
		return
	}
	p.replEnqueue(replOp{kind: opRemoveTuple, key: key, pubSeq: pubSeq})
}

// replALTTAdd mirrors an ALTT admission. Expiry is not mirrored:
// entries carry their expiry time, so stale ones are filtered when (and
// only when) a mirror is promoted.
func (p *Proc) replALTTAdd(key relation.Key, e alttEntry) {
	if !p.replOn() {
		return
	}
	p.replEnqueue(replOp{kind: opAddALTT, key: key, t: e.t, expireAt: e.expireAt})
}

// replAggFold mirrors one partial folded into aggregator state; the
// replica folds the same row into its own mirror partial, which is
// bit-equal because every aggregate's fold is order-insensitive.
func (p *Proc) replAggFold(key relation.Key, qid string, owner id.ID, epoch int64, row []relation.Value, lin []query.LineageStep) {
	if !p.replOn() {
		return
	}
	p.replEnqueue(replOp{kind: opAggFold, key: key, qid: qid, owner: owner, epoch: epoch, row: row, lin: lin})
}

// replAggMerge mirrors a whole-group delta (handover merge, promotion
// re-replication): the replica merges the cloned partials into its
// mirror group, mirroring exactly the merge the live store performed.
// Must be called BEFORE the live merge — mergeInto moves partial
// pointers into the destination, so cloning afterwards would snapshot
// live state instead of the delta.
func (p *Proc) replAggMerge(key relation.Key, g *aggGroup) {
	if !p.replOn() {
		return
	}
	parts := make(map[int64]*agg.Partial, len(g.epochs))
	for e, part := range g.epochs {
		parts[e] = part.Clone()
	}
	p.replEnqueue(replOp{
		kind: opAggMerge, key: key, qid: g.qid, owner: g.owner,
		gkey: g.gkey, group: append([]relation.Value(nil), g.group...),
		parts: parts, lins: cloneLins(g.lins),
	})
}

// cloneLins deep-copies per-epoch lineage sets for an operation that
// will be applied at several replicas concurrently.
func cloneLins(lins map[int64]map[query.LineageStep]struct{}) map[int64]map[query.LineageStep]struct{} {
	if len(lins) == 0 {
		return nil
	}
	out := make(map[int64]map[query.LineageStep]struct{}, len(lins))
	for e, set := range lins {
		cp := make(map[query.LineageStep]struct{}, len(set))
		for s := range set {
			cp[s] = struct{}{}
		}
		out[e] = cp
	}
	return out
}

// ctMerge is the candidate-table write path: it merges the report into
// the live table and mirrors it. All CT mutations go through here so
// mirrored tables track the live one.
func (p *Proc) ctMerge(info ricInfo) {
	p.ct.merge(info)
	if !p.replOn() {
		return
	}
	p.replEnqueue(replOp{kind: opCT, key: info.Key, info: info})
}

// replPendingAdd mirrors an in-flight placement walk. Pending
// placements are the one piece of node-bound (rather than keyed) state
// replication must cover: a walk exists only at its origin, so without
// a mirror a crash silently un-places the query it was routing —
// a rewrite lost before it was ever indexed. The mirror keeps just the
// query; promotion restarts the walk from scratch, which is safe
// because an un-replied walk has indexed nothing, and the dead walk's
// eventual RIC reply bounces to a node that does not know its request
// id and is dropped.
func (p *Proc) replPendingAdd(reqID int64, q *query.Query) {
	if !p.replOn() {
		return
	}
	p.replEnqueue(replOp{kind: opAddPending, sqID: reqID, q: q})
}

// replPendingRemove mirrors a walk's completion.
func (p *Proc) replPendingRemove(reqID int64) {
	if !p.replOn() {
		return
	}
	p.replEnqueue(replOp{kind: opRemovePending, sqID: reqID})
}

// replDropKey mirrors the wholesale departure of a key (arc handover to
// a freshly joined node, key re-homing): the replica drops everything
// mirrored under it.
func (p *Proc) replDropKey(key relation.Key) {
	if !p.replOn() {
		return
	}
	p.replEnqueue(replOp{kind: opDropKey, key: key})
}

// replFlush ships the handler batch to every replica target: one
// message per target, each stamped with that stream's generation and
// next sequence range. The ops slice is shared read-only across the
// copies; anything a mirror must own is copied at application time.
// Runs at the end of every message handler and after coordinator-side
// mutations (promotion, handover construction).
func (p *Proc) replFlush() {
	if p.repl == nil || len(p.repl.outbox) == 0 {
		return
	}
	ops := p.repl.outbox
	p.repl.outbox = nil
	targets := p.repl.links.Targets()
	if len(targets) == 0 {
		// No replica group exists (ring smaller than the factor); the
		// repair pass snapshots everything when one forms.
		return
	}
	p.ctr.ReplUpdates += int64(len(targets))
	p.ctr.ReplOps += int64(len(ops) * len(targets))
	p.eng.net.ReplicateTo(p.node, targets, func(tgt id.ID) overlay.Message {
		s := p.repl.links.Stream(tgt)
		first := s.Next(len(ops))
		return &replUpdateMsg{
			From: p.node.ID(), To: tgt,
			Gen: s.Gen(), First: first, Reset: first == 1,
			Ops: ops,
		}
	})
}

// ---------------------------------------------------------------------
// Replica side: stream application into the mirror.

// onReplUpdate applies one received batch. Batches for a stream this
// node no longer hosts (bounced past a departed replica) and replayed
// or superseded ranges are dropped by the inbox — the idempotency the
// versioning exists for.
func (p *Proc) onReplUpdate(now sim.Time, m *replUpdateMsg) {
	if m.To != p.node.ID() {
		p.ctr.ReplStale++ // bounced to the ring position's new owner; repair supersedes it
		return
	}
	ib, ok := p.replInboxes[m.From]
	if !ok {
		ib = &replInbox{in: reliable.NewInbox(), mirror: newReplMirror()}
		p.replInboxes[m.From] = ib
	}
	pre := ib.in.Stale
	for _, d := range ib.in.Offer(m.Gen, m.Reset, m.First, len(m.Ops), m.Ops) {
		if d.Reset {
			ib.mirror = newReplMirror()
		}
		for i := range d.Payload.([]replOp) {
			ib.mirror.apply(p, &d.Payload.([]replOp)[i], now)
		}
	}
	p.ctr.ReplStale += ib.in.Stale - pre
}

// apply folds one operation into the mirror.
func (mr *replMirror) apply(p *Proc, op *replOp, now sim.Time) {
	switch op.kind {
	case opAddQuery:
		mq := &mirrorQuery{
			sqID: op.sqID, q: op.q, key: op.key, level: op.level,
			seen: copySeen(op.seen), combined: copyCombined(op.combined),
		}
		mr.queries[op.key] = append(mr.queries[op.key], mq)
		mr.bySq[op.sqID] = mq
	case opRemoveQuery:
		mq, ok := mr.bySq[op.sqID]
		if !ok {
			return
		}
		delete(mr.bySq, op.sqID)
		list := mr.queries[mq.key]
		for i, e := range list {
			if e == mq {
				mr.queries[mq.key] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(mr.queries[mq.key]) == 0 {
			delete(mr.queries, mq.key)
		}
	case opTrigger:
		mq, ok := mr.bySq[op.sqID]
		if !ok {
			return
		}
		if op.proj != "" {
			if mq.seen == nil {
				mq.seen = make(map[string]bool)
			}
			mq.seen[op.proj] = true
		}
		if op.pubSeq != 0 {
			mq.combined = append(mq.combined, op.pubSeq)
		}
	case opAddTuple:
		mr.tuples[op.key] = append(mr.tuples[op.key], op.t)
	case opAddALTT:
		// Origin admissions arrive in expiry order (constant Δ), so the
		// mirror list keeps the contiguous-expired-prefix invariant.
		mr.altt[op.key] = append(mr.altt[op.key], alttEntry{t: op.t, expireAt: op.expireAt})
	case opAggFold:
		spec := p.eng.aggSpec(op.qid)
		if spec == nil {
			return
		}
		g, ok := mr.aggs[op.key]
		if !ok {
			g = &aggGroup{
				qid: op.qid, owner: op.owner,
				gkey: spec.GroupKey(op.row), group: spec.GroupValues(op.row),
				epochs: make(map[int64]*agg.Partial),
				dirty:  make(map[int64]bool),
			}
			mr.aggs[op.key] = g
		}
		part, ok := g.epochs[op.epoch]
		if !ok {
			part = agg.NewPartial(spec)
			g.epochs[op.epoch] = part
		}
		part.Add(spec, op.row)
		g.foldLineage(op.epoch, op.lin)
	case opAggMerge:
		if p.eng.aggSpec(op.qid) == nil {
			return
		}
		g, ok := mr.aggs[op.key]
		if !ok {
			g = &aggGroup{
				qid: op.qid, owner: op.owner,
				gkey: op.gkey, group: append([]relation.Value(nil), op.group...),
				epochs: make(map[int64]*agg.Partial),
				dirty:  make(map[int64]bool),
			}
			mr.aggs[op.key] = g
		}
		for e, part := range op.parts {
			if cur, ok := g.epochs[e]; ok {
				cur.Merge(part)
			} else {
				g.epochs[e] = part.Clone() // op.parts is shared across replicas
			}
		}
		for e, set := range op.lins {
			if g.lins == nil {
				g.lins = make(map[int64]map[query.LineageStep]struct{})
			}
			dstSet, ok := g.lins[e]
			if !ok {
				dstSet = make(map[query.LineageStep]struct{}, len(set))
				g.lins[e] = dstSet
			}
			for s := range set {
				dstSet[s] = struct{}{}
			}
		}
	case opCT:
		if cur, ok := mr.ct[op.key]; ok && cur.At >= op.info.At {
			return
		}
		mr.ct[op.key] = ctEntry{Rate: op.info.Rate, Addr: op.info.Addr, At: op.info.At}
	case opDropKey:
		for _, mq := range mr.queries[op.key] {
			delete(mr.bySq, mq.sqID)
		}
		delete(mr.queries, op.key)
		delete(mr.tuples, op.key)
		delete(mr.altt, op.key)
		delete(mr.aggs, op.key)
	case opAddPending:
		mr.pending[op.sqID] = op.q
	case opRemovePending:
		delete(mr.pending, op.sqID)
	case opRemoveTuple:
		list := mr.tuples[op.key]
		for i, t := range list {
			if t.PubSeq == op.pubSeq {
				mr.tuples[op.key] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(mr.tuples[op.key]) == 0 {
			delete(mr.tuples, op.key)
		}
	}
}

// entryCount reports the mirrored entries, the unit promotion counts.
func (mr *replMirror) entryCount() (queries, tuples, altt int, aggEpochs int64) {
	for _, l := range mr.queries {
		queries += len(l)
	}
	for _, l := range mr.tuples {
		tuples += len(l)
	}
	for _, l := range mr.altt {
		altt += len(l)
	}
	for _, g := range mr.aggs {
		aggEpochs += g.epochCount()
	}
	return
}

// ---------------------------------------------------------------------
// Group maintenance: repair, snapshots, promotion.

// replTargetsOf computes a node's wanted replica targets from its
// current successor list.
func (e *Engine) replTargetsOf(n *chord.Node) []id.ID {
	succs := e.ring.SuccessorList(n, e.Cfg.ReplicationFactor-1)
	out := make([]id.ID, len(succs))
	for i, s := range succs {
		out[i] = s.ID()
	}
	return out
}

// replRepair reconciles every node's replica group with the ring after
// a membership change: new group members receive a full state snapshot
// on a fresh stream, former members discard their mirror. Runs in
// coordinator context (no handler in flight) at the end of every
// membership operation; on a static ring it settles immediately into
// no-ops. The scan is deliberately whole-ring rather than limited to
// the changed node's k−1 predecessors: only they can differ, but the
// full diff is self-evidently correct under any sequence of changes
// (mid-stabilization successor-list walks included) and costs O(N·k)
// map work per membership event — noise at simulation scale.
func (e *Engine) replRepair() {
	if e.Cfg.ReplicationFactor < 2 {
		return
	}
	for _, n := range e.ring.Nodes() { // identifier order: deterministic
		p := e.procs[n.ID()]
		if p == nil || p.repl == nil {
			continue
		}
		added, removed := p.repl.links.Sync(e.replTargetsOf(n))
		for _, t := range removed {
			e.replDropMirror(n.ID(), t)
		}
		for _, t := range added {
			e.replSendSnapshot(p, t)
		}
	}
}

// replDropMirror discards the mirror target holds for origin, closing
// the stream so in-flight remnants are rejected. A no-op when the
// target is gone or never opened the stream.
func (e *Engine) replDropMirror(origin, target id.ID) {
	tp, ok := e.procs[target]
	if !ok {
		return
	}
	if ib, ok := tp.replInboxes[origin]; ok {
		ib.in.Drop()
		delete(tp.replInboxes, origin)
	}
}

// replForgetOrigin clears every mirror of an identifier across the
// network — called when an identifier joins, so an earlier incarnation's
// streams (dead or departed) cannot shadow the new node's.
func (e *Engine) replForgetOrigin(nid id.ID) {
	if e.Cfg.ReplicationFactor < 2 {
		return
	}
	for _, p := range e.procs {
		delete(p.replInboxes, nid)
	}
}

// replResyncAll rebuilds every replication stream from scratch: all
// links restart on fresh generations and every target receives a full
// snapshot. The sledgehammer for operations that redistribute stored
// keys wholesale (identifier movement / RehomeKeys), where incremental
// drop/add bookkeeping would have to re-derive every moved key.
func (e *Engine) replResyncAll() {
	if e.Cfg.ReplicationFactor < 2 {
		return
	}
	for _, n := range e.ring.Nodes() {
		p := e.procs[n.ID()]
		if p == nil || p.repl == nil {
			continue
		}
		p.repl.outbox = nil // moved-state ops are superseded by the snapshots
		for _, t := range p.repl.links.Targets() {
			e.replDropMirror(n.ID(), t)
		}
		p.repl.links.Sync(nil)
	}
	e.replRepair()
}

// replSendSnapshot streams origin p's full keyed state to one new
// replica target in replChunk-sized batches. The first batch starts the
// stream (sequence 1 ⇒ Reset), so the receiver's mirror is rebuilt
// from scratch. A node with no keyed state sends nothing: the stream
// opens lazily with its first update batch, so establishing groups on a
// fresh engine costs no traffic.
func (e *Engine) replSendSnapshot(p *Proc, tgt id.ID) {
	ops := p.replSnapshotOps()
	if len(ops) == 0 {
		return
	}
	e.Counters.ReplSyncs++
	s := p.repl.links.Stream(tgt)
	e.net.WithTag(p.node, overlay.TagRepl, func() {
		for len(ops) > 0 {
			n := len(ops)
			if n > replChunk {
				n = replChunk
			}
			chunk := ops[:n]
			ops = ops[n:]
			first := s.Next(n)
			p.ctr.ReplUpdates++
			p.ctr.ReplOps += int64(n)
			e.net.Transfer(p.node, tgt, &replUpdateMsg{
				From: p.node.ID(), To: tgt,
				Gen: s.Gen(), First: first, Reset: first == 1,
				Ops: chunk,
			})
		}
	})
}

// replSnapshotOps encodes the processor's current keyed state as one
// deterministic operation sequence — the stream prefix a freshly added
// replica needs to be mirror-equal with incremental streaming.
func (p *Proc) replSnapshotOps() []replOp {
	var ops []replOp
	for _, key := range sortedStateKeys(p.queries) {
		for _, sq := range p.queries[key] {
			if sq.replID == 0 {
				p.repl.sqCtr++
				sq.replID = p.repl.sqCtr
			}
			ops = append(ops, replOp{
				kind: opAddQuery, key: key, sqID: sq.replID,
				q: sq.q, level: sq.level,
				seen: copySeen(sq.seen), combined: copyCombined(sq.combined),
			})
		}
	}
	for _, key := range sortedStateKeys(p.tuples) {
		for _, t := range p.tuples[key] {
			ops = append(ops, replOp{kind: opAddTuple, key: key, t: t})
		}
	}
	for _, key := range sortedStateKeys(p.altt) {
		for _, en := range p.altt[key] {
			ops = append(ops, replOp{kind: opAddALTT, key: key, t: en.t, expireAt: en.expireAt})
		}
	}
	for _, key := range sortedStateKeys(p.aggs) {
		g := p.aggs[key]
		parts := make(map[int64]*agg.Partial, len(g.epochs))
		for e, part := range g.epochs {
			parts[e] = part.Clone()
		}
		ops = append(ops, replOp{
			kind: opAggMerge, key: key, qid: g.qid, owner: g.owner,
			gkey: g.gkey, group: append([]relation.Value(nil), g.group...),
			parts: parts,
		})
	}
	for _, key := range sortedStateKeys(p.ct.entries) {
		en := p.ct.entries[key]
		ops = append(ops, replOp{kind: opCT, key: key, info: ricInfo{Key: key, Rate: en.Rate, Addr: en.Addr, At: en.At}})
	}
	for _, reqID := range sortedReqIDs(p.pending) {
		ops = append(ops, replOp{kind: opAddPending, sqID: reqID, q: p.pending[reqID].q})
	}
	return ops
}

// replPromotee selects the surviving replica that promotes a crashed
// node's mirror: the ground-truth new owner of the dead node's ring
// position — its first alive successor, which the repair pass keeps in
// every replica group. Targets() is sorted by identifier, not ring
// order, so the owner must be matched against the ring, not taken from
// the front of the list (with k >= 3 the numerically smallest target
// may be the second successor, which owns none of the dead arc).
func (e *Engine) replPromotee(p *Proc) (id.ID, bool) {
	if p.repl == nil {
		return 0, false
	}
	owner := e.ring.Owner(p.node.ID()) // post-Fail: the dead arc's new owner
	if owner == nil {
		return 0, false
	}
	for _, t := range p.repl.links.Targets() {
		if t == owner.ID() {
			if _, ok := e.procs[t]; ok {
				return t, true
			}
		}
	}
	return 0, false
}

// promoteCtx carries a scheduled promotion: the dead origin, the
// replica expected to hold its mirror, the mirror inbox as known at
// crash time (nil when the snapshot that materializes it is still in
// flight — it is re-resolved at fire time), and a hop budget for the
// pathological case where the promotee itself departs within the same
// tick and the promotion must chase the key range's current owner.
type promoteCtx struct {
	dead     id.ID
	promotee id.ID
	ib       *replInbox
	hops     int
}

// schedulePromotion queues the mirror promotion as a zero-delay event
// on the promotee's shard. Ordering does the heavy lifting: replica
// updates the dead node flushed before crashing carry earlier sequence
// numbers than anything scheduled from the crash itself, so they are
// applied to the mirror before this event fires, while every message
// bounced off the dead node re-routes with a fresh (later) sequence and
// therefore observes the promoted state.
func (e *Engine) schedulePromotion(dead, promotee id.ID, ib *replInbox) {
	dst := sim.NoShard
	if e.par {
		dst = sim.ShardOfID(uint64(promotee))
	}
	e.sim.AfterCtxShard(0, promoteEvent, sim.Ctx{A: e, B: &promoteCtx{dead: dead, promotee: promotee, ib: ib}}, sim.NoShard, dst)
}

// ctrAt returns the counter slot a promotion event may write: the shard
// slot of the node the event executes on (exclusively owned by the
// running worker), or the engine counters on a serial engine.
func (e *Engine) ctrAt(nid id.ID) *Counters {
	if !e.par {
		return &e.Counters
	}
	return &e.shardCtr[sim.ShardOfID(uint64(nid))]
}

// promoteEvent executes a scheduled promotion.
func promoteEvent(now sim.Time, c sim.Ctx) {
	e := c.A.(*Engine)
	pc := c.B.(*promoteCtx)
	p, ok := e.procs[pc.promotee]
	if !ok {
		// The promotee departed in the same tick. Chase the dead arc's
		// current owner, carrying the mirror pointer (the departed
		// promotee's inbox map is gone, but the mirror object survives
		// a graceful leave); if the chase exhausts its budget or the
		// ring emptied, the mirror is unrecoverable — count it, so the
		// zero-loss counters never lie.
		if owner := e.ring.Owner(pc.dead); owner != nil && pc.hops < maxReroutes {
			src, dst := sim.NoShard, sim.NoShard
			if e.par {
				src = sim.ShardOfID(uint64(pc.promotee)) // the shard this event ran on
				dst = sim.ShardOfID(uint64(owner.ID()))
			}
			pc.hops++
			pc.promotee = owner.ID()
			e.sim.AfterCtxShard(0, promoteEvent, c, src, dst)
			return
		}
		if pc.ib != nil {
			countMirrorLost(e.ctrAt(pc.promotee), pc.ib.mirror)
		}
		return
	}
	ib := pc.ib
	if ib == nil {
		ib = p.replInboxes[pc.dead] // snapshot landed after the crash scheduled us
	}
	if ib == nil {
		return // the origin had no mirrored state
	}
	delete(p.replInboxes, pc.dead)
	if ib.dead {
		// The mirror's holder crashed before this event fired: the
		// contents died with it.
		countMirrorLost(p.ctr, ib.mirror)
		return
	}
	e.promoteMirror(p, ib, now)
}

// countMirrorLost charges an unrecoverable mirror's contents to the
// loss counters — the accounting promotion normally replaces, restored
// for the corners (promotee crashing or vanishing before the promotion
// fires) where the recovered state really is gone.
func countMirrorLost(ctr *Counters, mr *replMirror) {
	for _, list := range mr.queries {
		for _, mq := range list {
			if mq.q.Depth == 0 {
				ctr.QueriesLost++
			} else {
				ctr.RewritesLost++
			}
		}
	}
	for _, list := range mr.tuples {
		ctr.TuplesLost += int64(len(list))
	}
	for _, list := range mr.altt {
		ctr.TuplesLost += int64(len(list))
	}
	for _, g := range mr.aggs {
		ctr.AggStateLost += g.epochCount()
	}
	for _, q := range mr.pending {
		if q.Depth == 0 {
			ctr.QueriesLost++
		} else {
			ctr.RewritesLost++
		}
	}
}

// promoteMirror re-indexes a dead origin's mirror into the promotee's
// live stores at its exact keys and re-replicates every promoted entry
// to the promotee's own replica group — the step that restores the
// replication factor for the recovered state.
func (e *Engine) promoteMirror(p *Proc, ib *replInbox, now sim.Time) {
	ib.in.Kill()
	mr := ib.mirror
	p.ctr.ReplPromotions++

	for _, key := range sortedStateKeys(mr.queries) {
		for _, mq := range mr.queries[key] {
			if e.retiredQ[mq.q.ID] {
				continue // torn-down shared pipeline: do not resurrect
			}
			sq := &storedQuery{
				q: mq.q, key: mq.key, level: mq.level, agg: mq.q.IsAggregate(),
				seen: mq.seen, combined: mq.combined, triggers: len(mq.combined),
			}
			p.queries[key] = append(p.queries[key], sq)
			p.replQueryAdd(sq)
			p.ctr.ReplEntriesPromoted++
			if mq.q.Depth == 0 && !mq.q.OneTime {
				p.ctr.QueriesRecovered++
			}
		}
	}
	for _, key := range sortedStateKeys(mr.tuples) {
		for _, t := range mr.tuples[key] {
			// GC removals are mirrored (opRemoveTuple), so the mirror
			// holds exactly what the primary held: nothing collected is
			// resurrected here.
			p.tuples[key] = append(p.tuples[key], t)
			p.replTupleAdd(key, t)
			p.ctr.ReplEntriesPromoted++
		}
	}
	for _, key := range sortedStateKeys(mr.altt) {
		for _, en := range mr.altt[key] {
			if en.expireAt < now {
				p.ctr.ALTTExpired++ // the entry would have lapsed at the primary too
				continue
			}
			p.insertALTT(key, en)
			p.replALTTAdd(key, en)
			p.ctr.ReplEntriesPromoted++
		}
	}
	for _, key := range sortedStateKeys(mr.aggs) {
		g := mr.aggs[key]
		if e.retiredS[g.qid] {
			continue // subscriber unsubscribed: its per-group state is dead
		}
		sliding := false
		if sp := p.eng.aggSpec(g.qid); sp != nil {
			sliding = sp.Sliding()
		}
		p.ctr.ReplEntriesPromoted += g.epochCount()
		p.replAggMerge(key, g) // delta first: mergeInto moves partials
		if cur, ok := p.aggs[key]; ok {
			g.mergeInto(sliding, cur) // marks the transferred epochs dirty on cur
		} else {
			for ep := range g.epochs {
				g.dirty[ep] = true
				if sliding {
					g.dirty[ep+1] = true
				}
			}
			p.aggs[key] = g
		}
	}
	for _, key := range sortedStateKeys(mr.ct) {
		en := mr.ct[key]
		p.ctMerge(ricInfo{Key: key, Rate: en.Rate, Addr: en.Addr, At: en.At})
	}
	// Placement walks die with their origin; restart each mirrored one
	// from here. Charged as churn traffic like the rest of crash
	// recovery — the walk is recovery work, not mirror maintenance.
	if len(mr.pending) > 0 {
		reqIDs := make([]int64, 0, len(mr.pending))
		for reqID := range mr.pending {
			reqIDs = append(reqIDs, reqID)
		}
		sort.Slice(reqIDs, func(i, j int) bool { return reqIDs[i] < reqIDs[j] })
		p.eng.net.WithTag(p.node, TagChurn, func() {
			for _, reqID := range reqIDs {
				q := mr.pending[reqID]
				if e.retiredQ[q.ID] {
					continue // torn-down shared pipeline: drop the walk
				}
				p.ctr.ReplEntriesPromoted++
				if q.Depth == 0 && !q.OneTime {
					p.ctr.QueriesRecovered++
				}
				p.place(now, q.Clone())
			}
		})
	}
	p.replFlush()
}
