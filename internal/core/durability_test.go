package core

import (
	"testing"

	"rjoin/internal/refeval"
	"rjoin/internal/relation"
	"rjoin/internal/sqlparse"
)

// replCfg is the engine configuration the durability tests run under:
// paper defaults plus successor-list replication at the given factor.
func replCfg(k int) Config {
	cfg := DefaultConfig()
	cfg.ReplicationFactor = k
	return cfg
}

// TestCrashPromotionExactlyOnce is the replication layer's completeness
// criterion, the crash analogue of TestGracefulLeaveExactlyOnce: with
// ReplicationFactor 2, the node holding the most rewritten state
// crashes mid-stream (tuples in flight), the surviving replica promotes
// its mirror, and the delivered answer bag still equals the reference
// exactly — nothing lost to the crash, nothing duplicated by the
// promotion.
func TestCrashPromotionExactlyOnce(t *testing.T) {
	eng, nodes := testNet(t, 48, 3, replCfg(2), churnNetCfg())
	q := "select R.B, S.B from R,S where R.A=S.A"
	qid, err := eng.SubmitQuery(nodes[0], sqlparse.MustParse(q, testCat))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()

	var published []*relation.Tuple
	pub := func(i int, tu *relation.Tuple) {
		published = append(published, tu)
		alive := eng.Ring().Nodes()
		eng.PublishTuple(alive[i%len(alive)], tu)
	}
	for i := 0; i < 12; i++ {
		pub(i, mkTuple("R", int64(i%4), int64(i), 0))
	}
	eng.Run()

	victim := rewriteHolder(eng)
	if victim == nil {
		t.Fatal("no node holds rewritten state; workload too weak")
	}
	for i := 0; i < 12; i++ {
		pub(i, mkTuple("S", int64(i%4), int64(100+i), 0))
	}
	eng.RunUntil(eng.Sim().Now() + 1) // deliveries mid-flight
	if err := eng.CrashNode(victim); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		eng.Ring().TickStabilize()
	}
	eng.Run()
	for i := 0; i < 8; i++ {
		pub(i, mkTuple("S", int64(i%4), int64(200+i), 0))
		pub(i+1, mkTuple("R", int64(i%4), int64(300+i), 0))
	}
	eng.Run()

	want := expectedBag(t, q, published)
	got := answerBag(eng, qid)
	if len(want) == 0 {
		t.Fatal("reference produced no answers; workload too weak")
	}
	if !bagsEqual(got, want) {
		t.Fatalf("answers across a crash with replication diverged:\ngot  %d rows\nwant %d rows", len(got), len(want))
	}
	if eng.Counters.ReplPromotions == 0 || eng.Counters.ReplEntriesPromoted == 0 {
		t.Fatalf("crash promoted nothing (promotions %d, entries %d): victim held no mirror",
			eng.Counters.ReplPromotions, eng.Counters.ReplEntriesPromoted)
	}
	if eng.Counters.RewritesLost != 0 || eng.Counters.TuplesLost != 0 || eng.Counters.QueriesLost != 0 {
		t.Fatalf("replicated crash counted loss: %d rewrites, %d tuples, %d queries",
			eng.Counters.RewritesLost, eng.Counters.TuplesLost, eng.Counters.QueriesLost)
	}
}

// TestRepeatedCrashesStayComplete drives a stream while a third of the
// ring crashes one node at a time: each crash promotes, re-replication
// restores the factor before the next one, and the final bag is exact
// with zero counted loss. Factor 3 matters here beyond redundancy — a
// crashed node then has several surviving replicas, and promotion must
// pick the one the ring actually routes the dead arc to (its first
// successor), not an arbitrary group member.
func TestRepeatedCrashesStayComplete(t *testing.T) {
	for _, k := range []int{2, 3} {
		eng, nodes := testNet(t, 36, 7, replCfg(k), churnNetCfg())
		q := "select R.B, S.C from R,S where R.A=S.A and R.C=S.C"
		qid, err := eng.SubmitQuery(nodes[5], sqlparse.MustParse(q, testCat))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()

		var published []*relation.Tuple
		for round := 0; round < 12; round++ {
			r := mkTuple("R", int64(round%3), int64(round), int64(round%2))
			s := mkTuple("S", int64(round%3), int64(50+round), int64(round%2))
			published = append(published, r, s)
			alive := eng.Ring().Nodes()
			eng.PublishTuple(alive[round%len(alive)], r)
			eng.PublishTuple(alive[(round+1)%len(alive)], s)
			eng.RunUntil(eng.Sim().Now() + 2)
			alive = eng.Ring().Nodes()
			if len(alive) > 24 {
				if err := eng.CrashNode(alive[(round*5)%len(alive)]); err != nil {
					t.Fatal(err)
				}
				eng.Ring().TickStabilize()
			}
			eng.Run()
		}
		eng.Run()

		want := expectedBag(t, q, published)
		got := answerBag(eng, qid)
		if len(want) == 0 {
			t.Fatal("reference produced no answers")
		}
		if !bagsEqual(got, want) {
			t.Fatalf("k=%d: answers diverged after repeated crashes: got %d rows, want %d", k, len(got), len(want))
		}
		if eng.Counters.RewritesLost != 0 || eng.Counters.TuplesLost != 0 || eng.Counters.QueriesLost != 0 {
			t.Fatalf("k=%d: replicated crashes counted loss: %d rewrites, %d tuples, %d queries",
				k, eng.Counters.RewritesLost, eng.Counters.TuplesLost, eng.Counters.QueriesLost)
		}
		if eng.Counters.ReplSyncs == 0 {
			t.Fatal("repeated crashes opened no repair snapshot streams")
		}
	}
}

// TestCrashPromotionDistinct guards the mirrored DISTINCT projection
// memory: the holder of a DISTINCT query's state crashes after
// consuming projections; if promotion resurrected the query without its
// memory, the post-crash stream would re-trigger consumed projections
// and deliver duplicate rows.
func TestCrashPromotionDistinct(t *testing.T) {
	eng, nodes := testNet(t, 48, 3, replCfg(2), churnNetCfg())
	q := "select distinct S.B from R,S where R.A=S.A"
	qid, err := eng.SubmitQuery(nodes[0], sqlparse.MustParse(q, testCat))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()

	var published []*relation.Tuple
	pub := func(i int, tu *relation.Tuple) {
		published = append(published, tu)
		alive := eng.Ring().Nodes()
		eng.PublishTuple(alive[i%len(alive)], tu)
	}
	// A small value domain so the same projections recur across waves.
	for i := 0; i < 10; i++ {
		pub(i, mkTuple("R", int64(i%3), int64(i), 0))
		pub(i+1, mkTuple("S", int64(i%3), int64(i%4), 0))
	}
	eng.Run()

	victim := rewriteHolder(eng)
	if victim == nil {
		t.Fatal("no rewritten state to crash")
	}
	if err := eng.CrashNode(victim); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		eng.Ring().TickStabilize()
	}
	eng.Run()
	// Replays of the same join values: consumed projections must stay
	// consumed across the promotion.
	for i := 0; i < 10; i++ {
		pub(i, mkTuple("S", int64(i%3), int64(i%4), 0))
		pub(i+1, mkTuple("R", int64(i%3), int64(100+i), 0))
	}
	eng.Run()

	parsed := sqlparse.MustParse(q, testCat)
	var want []string
	for _, r := range refeval.Distinct(refeval.Evaluate(parsed, published)) {
		want = append(want, r.Key())
	}
	got := answerBag(eng, qid)
	if len(want) == 0 {
		t.Fatal("reference produced no answers")
	}
	if len(got) != len(want) {
		t.Fatalf("DISTINCT across crash: got %d rows, want %d (duplicates or loss)", len(got), len(want))
	}
}

// TestCrashPromotionAggState: the heaviest aggregator node crashes
// mid-stream under replication; its per-(group, epoch) partials promote
// instead of counting into AggStateLost, and the final views equal the
// centralized reference fold.
func TestCrashPromotionAggState(t *testing.T) {
	eng, nodes := testNet(t, 48, 5, replCfg(2), churnNetCfg())
	var qids []string
	queries := aggTestQueries()
	for i, sql := range queries {
		qid, err := eng.SubmitQuery(nodes[i%len(nodes)], sqlparse.MustParse(sql, testCat))
		if err != nil {
			t.Fatal(err)
		}
		qids = append(qids, qid)
	}
	eng.Run()

	var published []*relation.Tuple
	pub := func(i int, tu *relation.Tuple) {
		published = append(published, tu)
		alive := eng.Ring().Nodes()
		eng.PublishTuple(alive[i%len(alive)], tu)
	}
	for round := 0; round < 30; round++ {
		pub(round, mkTuple("R", int64(round%4), int64(round%7), 0))
		pub(round+1, mkTuple("S", int64(round%4), int64(round%5), 0))
		if round%3 == 0 {
			pub(round+2, mkTuple("J", 0, int64(round%5), 0))
		}
		if round%4 == 3 {
			eng.Run()
		} else {
			eng.RunUntil(eng.Sim().Now() + 2)
		}
		if round == 11 || round == 21 {
			victim := aggHolder(eng)
			if round == 21 {
				victim = rewriteHolder(eng)
			}
			if victim == nil {
				t.Fatal("no crash victim with state; workload too weak")
			}
			if err := eng.CrashNode(victim); err != nil {
				t.Fatal(err)
			}
			eng.Ring().TickStabilize()
		}
	}
	eng.Run()

	for i, qid := range qids {
		aggViewsMatch(t, "replicated-crash", queries[i], eng, qid, published)
	}
	if eng.Counters.AggStateLost != 0 {
		t.Fatalf("replicated crashes lost %d aggregation partials", eng.Counters.AggStateLost)
	}
	if eng.Counters.ReplPromotions == 0 {
		t.Fatal("crashes promoted no mirror")
	}
}

// TestLeaveWithReplicationInFlight: a graceful leave while replica
// update batches are in flight. The leave drains the victim's state to
// its successor, in-flight batches addressed to the departed replica
// bounce to the ring position's new owner and are discarded by the
// stream versioning, and the repair snapshots supersede them — every
// reference answer is still delivered exactly once.
func TestLeaveWithReplicationInFlight(t *testing.T) {
	eng, nodes := testNet(t, 48, 3, replCfg(2), churnNetCfg())
	q := "select R.B, S.B from R,S where R.A=S.A"
	qid, err := eng.SubmitQuery(nodes[0], sqlparse.MustParse(q, testCat))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()

	var published []*relation.Tuple
	pub := func(i int, tu *relation.Tuple) {
		published = append(published, tu)
		alive := eng.Ring().Nodes()
		eng.PublishTuple(alive[i%len(alive)], tu)
	}
	for i := 0; i < 12; i++ {
		pub(i, mkTuple("R", int64(i%4), int64(i), 0))
	}
	eng.Run()

	victim := rewriteHolder(eng)
	if victim == nil {
		t.Fatal("no node holds rewritten state")
	}
	// Replica-group targets of the victim: removing one mid-stream
	// leaves its inbound update batches undeliverable.
	targets := eng.procs[victim.ID()].repl.links.Targets()
	if len(targets) == 0 {
		t.Fatal("victim has no replica targets")
	}
	replica := eng.Ring().Node(targets[0])
	if replica == nil {
		t.Fatal("victim's replica target not alive")
	}

	for i := 0; i < 12; i++ {
		pub(i, mkTuple("S", int64(i%4), int64(100+i), 0))
	}
	eng.RunUntil(eng.Sim().Now() + 1) // tuple deliveries and their update batches mid-flight
	if err := eng.LeaveNode(replica); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Sim().Now() + 1)
	if err := eng.LeaveNode(eng.Ring().Owner(victim.ID())); err != nil { // the primary itself
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		eng.Ring().TickStabilize()
	}
	eng.Run()
	for i := 0; i < 8; i++ {
		pub(i, mkTuple("S", int64(i%4), int64(200+i), 0))
		pub(i+1, mkTuple("R", int64(i%4), int64(300+i), 0))
	}
	eng.Run()

	want := expectedBag(t, q, published)
	got := answerBag(eng, qid)
	if len(want) == 0 {
		t.Fatal("reference produced no answers")
	}
	if !bagsEqual(got, want) {
		t.Fatalf("answers diverged across leaves with updates in flight: got %d rows, want %d", len(got), len(want))
	}
	if eng.Counters.RewritesLost != 0 || eng.Counters.TuplesLost != 0 {
		t.Fatalf("graceful leaves under replication counted loss: %d rewrites, %d tuples",
			eng.Counters.RewritesLost, eng.Counters.TuplesLost)
	}
}

// mirrorsTrackLiveState asserts the replication invariant at
// quiescence: for every node, every replica target holds a mirror equal
// to the node's live keyed state — same stored queries (by replication
// identity, with equal DISTINCT memory), same tuples, same unexpired
// ALTT entries, same aggregation row counts, same candidate table.
func mirrorsTrackLiveState(t *testing.T, eng *Engine) {
	t.Helper()
	now := eng.Sim().Now()
	checked := 0
	for _, n := range eng.Ring().Nodes() {
		p := eng.procs[n.ID()]
		for _, tgt := range p.repl.links.Targets() {
			tp := eng.procs[tgt]
			if tp == nil {
				t.Fatalf("node %s lists dead target %s", n.ID(), tgt)
			}
			ib := tp.replInboxes[n.ID()]
			var mr *replMirror
			if ib != nil {
				mr = ib.mirror
			} else {
				mr = newReplMirror() // stream never opened: state must be empty
			}
			checked++

			for key, list := range p.queries {
				if len(mr.queries[key]) != len(list) {
					t.Fatalf("node %s → %s: key %s mirrors %d queries, live %d",
						n.ID(), tgt, key, len(mr.queries[key]), len(list))
				}
				for _, sq := range list {
					mq := mr.bySq[sq.replID]
					if mq == nil || mq.q != sq.q {
						t.Fatalf("node %s → %s: stored query %d not mirrored", n.ID(), tgt, sq.replID)
					}
					if len(mq.seen) != len(sq.seen) {
						t.Fatalf("node %s → %s: query %d DISTINCT memory diverged: mirror %d, live %d",
							n.ID(), tgt, sq.replID, len(mq.seen), len(sq.seen))
					}
					for proj := range sq.seen {
						if !mq.seen[proj] {
							t.Fatalf("node %s → %s: query %d missing mirrored projection", n.ID(), tgt, sq.replID)
						}
					}
				}
			}
			for key, list := range p.tuples {
				if len(mr.tuples[key]) != len(list) {
					t.Fatalf("node %s → %s: key %s mirrors %d tuples, live %d",
						n.ID(), tgt, key, len(mr.tuples[key]), len(list))
				}
				for i, tu := range list {
					if mr.tuples[key][i] != tu {
						t.Fatalf("node %s → %s: tuple %d of key %s diverged", n.ID(), tgt, i, key)
					}
				}
			}
			unexpired := func(list []alttEntry) int {
				c := 0
				for _, e := range list {
					if e.expireAt >= now {
						c++
					}
				}
				return c
			}
			for key, list := range p.altt {
				if live := unexpired(list); unexpired(mr.altt[key]) != live {
					t.Fatalf("node %s → %s: key %s mirrors %d live ALTT entries, want %d",
						n.ID(), tgt, key, unexpired(mr.altt[key]), live)
				}
			}
			for key, g := range p.aggs {
				mg := mr.aggs[key]
				if mg == nil || len(mg.epochs) != len(g.epochs) {
					t.Fatalf("node %s → %s: agg group %s not mirrored", n.ID(), tgt, key)
				}
				for ep, part := range g.epochs {
					if mg.epochs[ep] == nil || mg.epochs[ep].Rows() != part.Rows() {
						t.Fatalf("node %s → %s: agg group %s epoch %d diverged", n.ID(), tgt, key, ep)
					}
				}
			}
			if len(mr.ct) != p.ct.size() {
				t.Fatalf("node %s → %s: candidate table mirrors %d entries, live %d",
					n.ID(), tgt, len(mr.ct), p.ct.size())
			}
			if len(mr.pending) != len(p.pending) {
				t.Fatalf("node %s → %s: mirrors %d pending walks, live %d",
					n.ID(), tgt, len(mr.pending), len(p.pending))
			}
			for reqID, pp := range p.pending {
				if mr.pending[reqID] != pp.q {
					t.Fatalf("node %s → %s: pending walk %d not mirrored", n.ID(), tgt, reqID)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no replica links to check")
	}
}

// TestMirrorsTrackLiveState drives a mixed workload — including an
// aggregate and a DISTINCT query, tuple GC, runtime joins, leaves and
// crashes — and asserts at quiescence that every mirror is exactly the
// primary's keyed state: the invariant promotion's zero-loss guarantee
// rests on. GC matters here: collected tuples must leave the mirror
// too (opRemoveTuple), or mirrors grow unboundedly relative to their
// primaries.
func TestMirrorsTrackLiveState(t *testing.T) {
	for _, k := range []int{2, 3} {
		cfg := replCfg(k)
		cfg.TupleGC = true
		cfg.MaxWindowHint = 8
		eng, nodes := testNet(t, 32, 19, cfg, churnNetCfg())
		for _, sql := range []string{
			"select R.B, S.B from R,S where R.A=S.A",
			"select distinct S.B from R,S where R.A=S.A",
			"select R.A, count(*) from R,S where R.A=S.A group by R.A",
		} {
			if _, err := eng.SubmitQuery(nodes[1], sqlparse.MustParse(sql, testCat)); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		for i := 0; i < 80; i++ {
			alive := eng.Ring().Nodes()
			eng.PublishTuple(alive[i%len(alive)], mkTuple("R", int64(i%2), int64(i), 0))
			eng.PublishTuple(alive[(i+3)%len(alive)], mkTuple("S", int64(i%2), int64(i%5), 0))
			eng.RunUntil(eng.Sim().Now() + 2)
			switch i {
			case 20:
				if _, err := eng.JoinNode(eng.Ring().Nodes()[0].ID() + 1); err != nil {
					t.Fatal(err)
				}
			case 40:
				alive := eng.Ring().Nodes()
				if err := eng.LeaveNode(alive[len(alive)/2]); err != nil {
					t.Fatal(err)
				}
			case 60:
				alive := eng.Ring().Nodes()
				if err := eng.CrashNode(alive[len(alive)/3]); err != nil {
					t.Fatal(err)
				}
			}
			eng.Ring().TickStabilize()
			eng.Run()
		}
		eng.Run()
		mirrorsTrackLiveState(t, eng)
		if eng.Counters.ReplUpdates == 0 || eng.Counters.ReplOps == 0 {
			t.Fatalf("k=%d: replication shipped nothing", k)
		}
		if eng.Counters.TuplesCollected == 0 {
			t.Fatalf("k=%d: tuple GC never fired; the GC-mirroring path went unexercised", k)
		}
	}
}

// TestPromoteeCrashCountsMirrorLoss: the promotee itself crashes in the
// same tick, before the scheduled promotion fires. The mirror died with
// it — the promotion must surface that as counted loss rather than
// silently dropping the dead node's state while the loss counters read
// zero (the accounting hole a replicated run must never have).
func TestPromoteeCrashCountsMirrorLoss(t *testing.T) {
	eng, nodes := testNet(t, 48, 13, replCfg(2), churnNetCfg())
	if _, err := eng.SubmitQuery(nodes[1], sqlparse.MustParse(
		"select R.B, S.B from R,S where R.A=S.A", testCat)); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for i := 0; i < 16; i++ {
		eng.PublishTuple(nodes[i%len(nodes)], mkTuple("R", int64(i%4), int64(i), 0))
	}
	eng.Run()
	victim := rewriteHolder(eng)
	if victim == nil {
		t.Fatal("no rewritten state to crash")
	}
	if err := eng.CrashNode(victim); err != nil {
		t.Fatal(err)
	}
	// Same tick, before the promotion event runs: the promotee goes
	// down too.
	promotee := eng.Ring().Owner(victim.ID())
	if promotee == nil {
		t.Fatal("no promotee")
	}
	if err := eng.CrashNode(promotee); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	lost := eng.Counters.RewritesLost + eng.Counters.TuplesLost + eng.Counters.QueriesLost
	if lost == 0 {
		t.Fatal("double crash silently dropped the first victim's mirror: loss counters all zero")
	}
}

// TestCrashDuringPlacementWalk: the submitting node crashes while the
// input query's RIC placement walk is still in flight — before any
// handler ran on it. The walk's mirror op must be flushed at
// submission (coordinator context has no trailing handler flush), so
// promotion restarts the walk and the stream stays exact.
func TestCrashDuringPlacementWalk(t *testing.T) {
	eng, nodes := testNet(t, 48, 21, replCfg(2), churnNetCfg())
	q := "select R.B, S.B from R,S where R.A=S.A"
	qid, err := eng.SubmitQuery(nodes[0], sqlparse.MustParse(q, testCat))
	if err != nil {
		t.Fatal(err)
	}
	// No Run: the walk is pending at nodes[0] when it crashes.
	if len(eng.procs[nodes[0].ID()].pending) == 0 {
		t.Fatal("submission left no pending walk; placement completed synchronously")
	}
	if err := eng.CrashNode(nodes[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		eng.Ring().TickStabilize()
	}
	eng.Run()

	var published []*relation.Tuple
	for i := 0; i < 10; i++ {
		r := mkTuple("R", int64(i%3), int64(i), 0)
		s := mkTuple("S", int64(i%3), int64(40+i), 0)
		published = append(published, r, s)
		alive := eng.Ring().Nodes()
		eng.PublishTuple(alive[i%len(alive)], r)
		eng.PublishTuple(alive[(i+3)%len(alive)], s)
		eng.Run()
	}

	want := expectedBag(t, q, published)
	got := answerBag(eng, qid)
	if len(want) == 0 {
		t.Fatal("reference produced no answers")
	}
	if !bagsEqual(got, want) {
		t.Fatalf("crash during the placement walk lost the query: got %d rows, want %d", len(got), len(want))
	}
	if eng.Counters.QueriesLost != 0 {
		t.Fatalf("replicated crash counted %d queries lost", eng.Counters.QueriesLost)
	}
}

// TestMoveNodeKeepsMirrorsConsistent: identifier movement re-homes
// stored keys wholesale; the forced resync must rebuild every mirror
// exactly, with moved queries re-numbered into their destination's
// replication-identity namespace (colliding sqIDs would corrupt the
// mirror's index and promote the wrong DISTINCT memory later).
func TestMoveNodeKeepsMirrorsConsistent(t *testing.T) {
	eng, nodes := testNet(t, 32, 23, replCfg(2), churnNetCfg())
	for _, sql := range []string{
		"select R.B, S.B from R,S where R.A=S.A",
		"select distinct S.B from R,S where R.A=S.A",
	} {
		if _, err := eng.SubmitQuery(nodes[1], sqlparse.MustParse(sql, testCat)); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	for i := 0; i < 16; i++ {
		eng.PublishTuple(nodes[i%len(nodes)], mkTuple("R", int64(i%3), int64(i), 0))
		eng.PublishTuple(nodes[(i+5)%len(nodes)], mkTuple("S", int64(i%3), int64(i%4), 0))
		eng.Run()
	}
	// Move the heaviest rewrite holder to the far side of the ring.
	victim := rewriteHolder(eng)
	if victim == nil {
		t.Fatal("no rewritten state stored")
	}
	if _, err := eng.MoveNode(victim, victim.ID()+1<<60); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	mirrorsTrackLiveState(t, eng)
}
