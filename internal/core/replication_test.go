package core

import (
	"strings"
	"testing"

	"rjoin/internal/overlay"
	"rjoin/internal/refeval"
	"rjoin/internal/relation"
)

// TestReplicationPreservesAnswers: with attribute-level replication the
// answer bag is exactly the reference — each (query, tuple) pair meets
// exactly once even though queries are stored r times.
func TestReplicationPreservesAnswers(t *testing.T) {
	for _, replicas := range []int{1, 3} {
		cfg := DefaultConfig()
		cfg.AttrReplicas = replicas
		for seed := int64(120); seed < 123; seed++ {
			eng, qids, queries, tuples := randomRun(t, cfg, overlay.DefaultConfig(), seed, 5, 35, 2)
			for i, qid := range qids {
				want := refeval.Evaluate(queries[i], tuples)
				got := answersToRows(eng.Answers(qid))
				if !refeval.EqualBags(got, want) {
					t.Fatalf("replicas=%d seed=%d query %d: got %d answers, want %d",
						replicas, seed, i, len(got), len(want))
				}
			}
		}
	}
}

// TestReplicationUnderRaces: replication composes with the ALTT
// machinery — racing tuples still never lose answers.
func TestReplicationUnderRaces(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AttrReplicas = 3
	for seed := int64(124); seed < 126; seed++ {
		eng, qids, queries, tuples := racedRun(t, cfg, seed)
		for i, qid := range qids {
			want := refeval.Evaluate(queries[i], tuples)
			got := answersToRows(eng.Answers(qid))
			if !refeval.EqualBags(got, want) {
				t.Fatalf("seed=%d query %d: got %d answers, want %d", seed, i, len(got), len(want))
			}
		}
	}
}

// TestReplicationSpreadsAttrLoad: the hottest attribute-level node
// receives fewer tuples when the key is split across replicas.
func TestReplicationSpreadsAttrLoad(t *testing.T) {
	maxAttrTuples := func(replicas int) int64 {
		cfg := DefaultConfig()
		cfg.AttrReplicas = replicas
		eng, nodes := testNet(t, 96, 127, cfg, overlay.DefaultConfig())
		// Hammer one relation so its attribute keys concentrate load.
		for i := 0; i < 300; i++ {
			eng.PublishTuple(nodes[i%len(nodes)], mkTuple("R", int64(i%5), int64(i%7), int64(i%3)))
			eng.Run()
		}
		// The node owning R+A receives every R tuple without
		// replication; with replication roughly 1/r of them.
		var max int64
		for _, base := range []string{"R+A", "R+B", "R+C"} {
			for i := 0; i < maxInt(replicas, 1); i++ {
				key := replicaKey(relation.KeyOf(base), i)
				owner := eng.Ring().Owner(key.ID())
				p := eng.Proc(owner)
				if st, ok := p.stats[key]; ok {
					total := st.countCur + st.countPrev
					if total > max {
						max = total
					}
				}
			}
		}
		return max
	}
	single := maxAttrTuples(1)
	replicated := maxAttrTuples(3)
	if replicated*2 > single {
		t.Fatalf("replication did not spread attribute load: single=%d replicated=%d", single, replicated)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestReplicaKeyStability(t *testing.T) {
	base := relation.KeyOf("R+A")
	if replicaKey(base, 0) != base {
		t.Fatal("replica 0 must keep the base key")
	}
	if replicaKey(base, 2).String() != "R+A#r2" {
		t.Fatalf("replica key %q", replicaKey(base, 2))
	}
	if !strings.HasPrefix(replicaKey(base, 1).String(), "R+A") {
		t.Fatal("replica keys must extend the base key")
	}
}

// TestReplicationTupleFanout: each tuple is still delivered 2k times (k
// value keys, k attribute replicas — one per attribute).
func TestReplicationTupleFanout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AttrReplicas = 4
	eng, nodes := testNet(t, 32, 128, cfg, overlay.DefaultConfig())
	eng.PublishTuple(nodes[0], mkTuple("R", 1, 2, 3))
	eng.Run()
	if eng.Counters.TuplesReceived != 6 { // 3 attrs: 3 value + 3 attr-replica deliveries
		t.Fatalf("tuple deliveries %d, want 6", eng.Counters.TuplesReceived)
	}
}
