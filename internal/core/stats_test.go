package core

import (
	"testing"
	"testing/quick"

	"rjoin/internal/relation"
)

func TestRateStatEpochRollover(t *testing.T) {
	const w = 100
	var r rateStat
	// 5 arrivals in epoch 0.
	for i := 0; i < 5; i++ {
		r.record(10, w)
	}
	if got := r.rate(50, w); got != 5 {
		t.Fatalf("rate within first epoch = %v, want current count 5", got)
	}
	// Arrival in epoch 1 promotes epoch 0's count to prev.
	r.record(110, w)
	if got := r.rate(150, w); got != 5 {
		t.Fatalf("rate in epoch 1 = %v, want prev 5", got)
	}
	// From epoch 2 with no arrivals, epoch 1's count is the estimate.
	if got := r.rate(250, w); got != 1 {
		t.Fatalf("rate one epoch later = %v, want 1", got)
	}
	// Far in the future the key is quiet.
	if got := r.rate(1000, w); got != 0 {
		t.Fatalf("rate after silence = %v, want 0", got)
	}
}

func TestRateStatGapResets(t *testing.T) {
	const w = 100
	var r rateStat
	for i := 0; i < 9; i++ {
		r.record(10, w)
	}
	// Next arrival several epochs later: the old burst must not count.
	r.record(1010, w)
	if got := r.rate(1020, w); got != 1 {
		t.Fatalf("rate after gap = %v, want 1", got)
	}
}

// Property: rate is never negative and never exceeds the total number
// of recorded arrivals.
func TestRateStatBoundsProperty(t *testing.T) {
	const w = 50
	f := func(times []uint16) bool {
		var r rateStat
		var last int64
		total := 0
		for _, dt := range times {
			last += int64(dt % 200)
			r.record(simTime(last), w)
			total++
			got := r.rate(simTime(last), w)
			if got < 0 || got > float64(total) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCandidateTableKeepsNewest(t *testing.T) {
	ct := newCandidateTable()
	ct.merge(ricInfo{Key: relation.KeyOf("R+A"), Rate: 5, Addr: 1, At: 100})
	ct.merge(ricInfo{Key: relation.KeyOf("R+A"), Rate: 9, Addr: 2, At: 50}) // older: ignored
	e, ok := ct.get(relation.KeyOf("R+A"))
	if !ok || e.Rate != 5 || e.Addr != 1 {
		t.Fatalf("entry %+v", e)
	}
	ct.merge(ricInfo{Key: relation.KeyOf("R+A"), Rate: 2, Addr: 3, At: 200}) // newer: wins
	e, _ = ct.get(relation.KeyOf("R+A"))
	if e.Rate != 2 || e.Addr != 3 {
		t.Fatalf("entry %+v after newer merge", e)
	}
	if ct.size() != 1 {
		t.Fatalf("size %d", ct.size())
	}
}

func TestCandidateTableFreshness(t *testing.T) {
	ct := newCandidateTable()
	ct.merge(ricInfo{Key: relation.KeyOf("k"), Rate: 1, At: 100})
	if _, ok := ct.fresh(relation.KeyOf("k"), 150, 100); !ok {
		t.Fatal("fresh entry rejected")
	}
	if _, ok := ct.fresh(relation.KeyOf("k"), 250, 100); ok {
		t.Fatal("stale entry accepted")
	}
	if _, ok := ct.fresh(relation.KeyOf("missing"), 0, 100); ok {
		t.Fatal("missing entry accepted")
	}
}
