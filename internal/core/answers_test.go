package core

import (
	"testing"

	"rjoin/internal/overlay"
	"rjoin/internal/relation"
	"rjoin/internal/sqlparse"
)

// TestRowKeyInjective is the regression test for the DISTINCT
// canonicalization bug: the old encoding joined values with a bare NUL
// separator, so rows whose string values straddled a NUL collided —
// ["a\x00", "b"] and ["a", "\x00b"] both encoded to "a\x00\x00b\x00"
// and the second real answer was silently dropped as a duplicate. The
// length-prefixed encoding must keep every distinct row distinct.
func TestRowKeyInjective(t *testing.T) {
	str := func(s string) relation.Value { return relation.String64(s) }
	cases := [][2][]relation.Value{
		// The original collision: a NUL moving across the value split.
		{{str("a\x00"), str("b")}, {str("a"), str("\x00b")}},
		// A value equal to the old separator vs an empty pair shift.
		{{str("\x00"), str("")}, {str(""), str("\x00")}},
		// Concatenation-equal rows with different arity splits.
		{{str("ab"), str("c")}, {str("a"), str("bc")}},
		// Numeric renderings that concatenate equally.
		{{relation.Int64(12), relation.Int64(3)}, {relation.Int64(1), relation.Int64(23)}},
		// Kind confusion: an integer and a string rendering identically
		// (Publish accepts mixed kinds per position, so both can reach
		// the same DISTINCT query).
		{{relation.Int64(12)}, {str("12")}},
	}
	for i, c := range cases {
		if rowKey(c[0]) == rowKey(c[1]) {
			t.Errorf("case %d: distinct rows %v and %v share a row key", i, c[0], c[1])
		}
	}
	// Equal rows must still share a key.
	a := []relation.Value{str("x\x00y"), relation.Int64(7)}
	b := []relation.Value{str("x\x00y"), relation.Int64(7)}
	if rowKey(a) != rowKey(b) {
		t.Error("equal rows produced different row keys")
	}
}

// TestAllAnswersSnapshot: the map AllAnswers returns must be detached
// from engine state — mutating it (as the churn experiments' multiset
// bookkeeping reasonably could) must not corrupt the live answer
// stream or the counters derived from it.
func TestAllAnswersSnapshot(t *testing.T) {
	eng, nodes := testNet(t, 16, 3, DefaultConfig(), overlay.DefaultConfig())
	q := sqlparse.MustParse("select R.B, S.B from R,S where R.A=S.A", testCat)
	qid, err := eng.SubmitQuery(nodes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	eng.PublishTuple(nodes[1], mkTuple("R", 1, 10, 0))
	eng.PublishTuple(nodes[2], mkTuple("S", 1, 20, 0))
	eng.Run()

	before := len(eng.Answers(qid))
	if before == 0 {
		t.Fatal("workload produced no answers")
	}
	snap := eng.AllAnswers()
	// Corrupt the snapshot every way a caller could, including mutating
	// the value rows in place (the slices must be deep copies).
	for k, list := range snap {
		for i := range list {
			list[i].QueryID = "corrupted"
			for j := range list[i].Values {
				list[i].Values[j] = relation.Int64(-999)
			}
			list[i].Values = nil
		}
		snap[k] = append(list, Answer{QueryID: "injected"})
	}
	delete(snap, qid)

	live := eng.Answers(qid)
	if len(live) != before {
		t.Fatalf("live answer stream length changed: %d -> %d", before, len(live))
	}
	for _, a := range live {
		if a.QueryID != qid || a.Values == nil {
			t.Fatalf("live answer corrupted through AllAnswers: %+v", a)
		}
		for _, v := range a.Values {
			if v.Kind == relation.KindInt && v.Int == -999 {
				t.Fatalf("live answer values mutated through shallow snapshot: %+v", a)
			}
		}
	}
	if again := eng.AllAnswers(); len(again[qid]) != before {
		t.Fatalf("second snapshot sees %d answers, want %d", len(again[qid]), before)
	}
}
