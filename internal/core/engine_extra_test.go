package core

import (
	"testing"

	"rjoin/internal/overlay"
	"rjoin/internal/query"
	"rjoin/internal/refeval"
	"rjoin/internal/relation"
	"rjoin/internal/sqlparse"
)

func TestSweepALTTRemovesExpired(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Delta = 50
	eng, nodes := testNet(t, 32, 100, cfg, overlay.DefaultConfig())
	eng.PublishTuple(nodes[0], mkTuple("R", 1, 2, 3))
	eng.Run()
	_, _, altt := eng.StoredState()
	if altt == 0 {
		t.Fatal("no ALTT entries after publication")
	}
	eng.RunUntil(eng.Sim().Now() + 1000) // far past Delta
	eng.SweepALTT()
	if _, _, after := eng.StoredState(); after != 0 {
		t.Fatalf("%d ALTT entries survive sweep past Delta", after)
	}
	if eng.Counters.ALTTExpired == 0 {
		t.Fatal("expiry not counted")
	}
}

func TestResetMetricsClearsEverything(t *testing.T) {
	eng, nodes := testNet(t, 32, 101, DefaultConfig(), overlay.DefaultConfig())
	q := sqlparse.MustParse("select R.B, S.B from R,S where R.A=S.A", testCat)
	if _, err := eng.SubmitQuery(nodes[0], q); err != nil {
		t.Fatal(err)
	}
	eng.PublishTuple(nodes[1], mkTuple("R", 1, 2, 3))
	eng.Run()
	if eng.QPL.Total() == 0 || eng.Net().Traffic.Total() == 0 {
		t.Fatal("no load before reset")
	}
	eng.ResetMetrics()
	if eng.QPL.Total() != 0 || eng.SL.Total() != 0 {
		t.Fatal("load metrics survive reset")
	}
	if eng.Net().Traffic.Total() != 0 || eng.Net().TaggedTraffic(TagRIC).Total() != 0 {
		t.Fatal("traffic survives reset")
	}
	if eng.Counters != (Counters{}) {
		t.Fatalf("counters survive reset: %+v", eng.Counters)
	}
	// Stored state must survive: the query still answers.
	queries, _, _ := eng.StoredState()
	if queries == 0 {
		t.Fatal("stored queries lost by metric reset")
	}
}

func TestDeltaAccessorAndAuto(t *testing.T) {
	eng, _ := testNet(t, 32, 102, DefaultConfig(), overlay.DefaultConfig())
	if eng.Delta() <= 0 {
		t.Fatalf("auto delta = %d", eng.Delta())
	}
	cfg := DefaultConfig()
	cfg.Delta = 123
	eng2, _ := testNet(t, 32, 103, cfg, overlay.DefaultConfig())
	if eng2.Delta() != 123 {
		t.Fatalf("explicit delta = %d", eng2.Delta())
	}
}

func TestTotalAnswersAndProcAccessor(t *testing.T) {
	eng, nodes := testNet(t, 32, 104, DefaultConfig(), overlay.DefaultConfig())
	if eng.Proc(nodes[0]) == nil {
		t.Fatal("Proc accessor nil")
	}
	q := sqlparse.MustParse("select R.B, S.B from R,S where R.A=S.A", testCat)
	qid, _ := eng.SubmitQuery(nodes[0], q)
	eng.Run()
	eng.PublishTuple(nodes[1], mkTuple("R", 1, 2, 3))
	eng.PublishTuple(nodes[1], mkTuple("S", 1, 9, 3))
	eng.Run()
	if eng.TotalAnswers() != 1 || len(eng.Answers(qid)) != 1 {
		t.Fatalf("answers: total=%d", eng.TotalAnswers())
	}
}

func TestMoveNodeTransfersState(t *testing.T) {
	eng, nodes := testNet(t, 48, 105, DefaultConfig(), overlay.DefaultConfig())
	q := sqlparse.MustParse("select R.B, S.B from R,S where R.A=S.A", testCat)
	qid, _ := eng.SubmitQuery(nodes[0], q)
	eng.Run()
	q.InsertTime = 0
	var tuples []*relation.Tuple
	pub := func(tu *relation.Tuple) {
		eng.PublishTuple(nodes[1], tu)
		eng.Run()
		tuples = append(tuples, tu)
	}
	pub(mkTuple("R", 1, 10, 0))
	// Move a non-owner node across the ring mid-run; stored state must
	// follow ownership and the join must still complete.
	victim := nodes[7]
	if victim == nodes[0] {
		victim = nodes[8]
	}
	if _, err := eng.MoveNode(victim, victim.ID()+1<<60); err != nil {
		t.Fatal(err)
	}
	pub(mkTuple("S", 1, 20, 0))
	want := refeval.Evaluate(q, tuples)
	got := answersToRows(eng.Answers(qid))
	if !refeval.EqualBags(got, want) {
		t.Fatalf("answers after MoveNode: got %d want %d", len(got), len(want))
	}
}

func TestMoveNodeUnknownNode(t *testing.T) {
	eng, _ := testNet(t, 8, 106, DefaultConfig(), overlay.DefaultConfig())
	other, _ := testNet(t, 8, 107, DefaultConfig(), overlay.DefaultConfig())
	foreign := other.Ring().Nodes()[0]
	if _, err := eng.MoveNode(foreign, 42); err == nil {
		t.Fatal("moving a foreign node succeeded")
	}
}

func TestRehomeKeysIdempotent(t *testing.T) {
	eng, nodes := testNet(t, 32, 108, DefaultConfig(), overlay.DefaultConfig())
	eng.PublishTuple(nodes[0], mkTuple("R", 1, 2, 3))
	eng.Run()
	if moved := eng.RehomeKeys(); moved != 0 {
		t.Fatalf("stable network rehomed %d entries", moved)
	}
}

func TestTupleGCDropsUnreachable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TupleGC = true
	cfg.MaxWindowHint = 10
	eng, nodes := testNet(t, 16, 109, cfg, overlay.DefaultConfig())
	// 96 identical tuples pile onto the same value keys; GC fires every
	// 32 stores per key and drops those outside the window hint.
	for i := 0; i < 96; i++ {
		eng.PublishTuple(nodes[0], mkTuple("R", 1, 1, 1))
		eng.RunUntil(eng.Sim().Now() + 20)
	}
	eng.Run()
	if eng.Counters.TuplesCollected == 0 {
		t.Fatal("tuple GC collected nothing")
	}
	_, live, _ := eng.StoredState()
	if live >= int(eng.Counters.TuplesStored) {
		t.Fatalf("GC did not shrink live store: %d live of %d stored",
			live, eng.Counters.TuplesStored)
	}
}

func TestSubmitQueryValidation(t *testing.T) {
	eng, nodes := testNet(t, 8, 110, DefaultConfig(), overlay.DefaultConfig())
	if _, err := eng.SubmitQuery(nodes[0], &query.Query{}); err == nil {
		t.Fatal("empty query accepted")
	}
	other, _ := testNet(t, 8, 111, DefaultConfig(), overlay.DefaultConfig())
	foreign := other.Ring().Nodes()[0]
	q := sqlparse.MustParse("select R.B, S.B from R,S where R.A=S.A", testCat)
	if _, err := eng.SubmitQuery(foreign, q); err == nil {
		t.Fatal("foreign owner accepted")
	}
}

func TestStrategyStringer(t *testing.T) {
	if StrategyRIC.String() != "RJoin" || StrategyRandom.String() != "Random" ||
		StrategyWorst.String() != "Worst" || Strategy(99).String() != "unknown" {
		t.Fatal("Strategy.String wrong")
	}
}
