package core

import (
	"sort"

	"rjoin/internal/chord"
	"rjoin/internal/id"
	"rjoin/internal/metrics"
	"rjoin/internal/obs"
	"rjoin/internal/obs/profile"
	"rjoin/internal/overlay"
	"rjoin/internal/query"
	"rjoin/internal/relation"
	"rjoin/internal/reliable"
	"rjoin/internal/sim"
)

// storedQuery is one query waiting at a node, input (Depth 0) or
// rewritten, together with the key it is indexed under and — for
// DISTINCT queries — the projection memory of Section 4's duplicate
// elimination rule.
type storedQuery struct {
	q     *query.Query
	key   relation.Key
	level query.Level
	agg   bool            // cached q.IsAggregate(), checked per trigger
	seen  map[string]bool // trigger projections already used (DISTINCT)

	// triggers counts how often this stored copy has been triggered;
	// combined records the publication sequences of the tuples it
	// consumed. Both drive the query-migration extension (Section 10
	// future work) and are maintained only when migration is enabled.
	triggers int
	combined []int64

	// replID is the identity replica-update streams reference this
	// stored copy by (see replicate.go); zero when replication is off.
	// It is local to the node currently storing the query: handover
	// re-assigns it at the new home.
	replID int64
}

// allowTrigger implements the DISTINCT rule: a tuple may trigger the
// query only if its projection over the attributes the query references
// has not triggered it before. Non-DISTINCT queries always pass.
func (sq *storedQuery) allowTrigger(t *relation.Tuple) bool {
	if !sq.q.Distinct {
		return true
	}
	return !sq.seen[sq.q.TriggerProjection(t)]
}

// markTrigger records a successful trigger's projection and returns it
// ("" for non-DISTINCT queries), so the replication hook can mirror the
// consumed projection without rendering it a second time.
func (sq *storedQuery) markTrigger(t *relation.Tuple) string {
	if !sq.q.Distinct {
		return ""
	}
	proj := sq.q.TriggerProjection(t)
	if sq.seen == nil {
		sq.seen = make(map[string]bool)
	}
	sq.seen[proj] = true
	return proj
}

// noteCombine records a successful combination for the migration
// extension; a no-op unless migration is enabled.
func (sq *storedQuery) noteCombine(enabled bool, t *relation.Tuple) {
	if !enabled {
		return
	}
	sq.triggers++
	sq.combined = append(sq.combined, t.PubSeq)
}

// pubQualifies implements the publication-time predicate of Definition
// 1: continuous queries combine tuples published at or after their
// insertion; one-time queries combine the snapshot published at or
// before it.
func pubQualifies(q *query.Query, t *relation.Tuple) bool {
	if q.OneTime {
		return t.PubTime <= q.InsertTime
	}
	return t.PubTime >= q.InsertTime
}

// alttEntry is one attribute-level tuple retained for Δ ticks (the
// attribute level tuple table of Section 4).
type alttEntry struct {
	t        *relation.Tuple
	expireAt sim.Time
}

// pendingPlacement is a query whose RIC walk is in flight; the decision
// completes when the reply returns.
type pendingPlacement struct {
	q     *query.Query
	cands []query.Candidate
	known []ricInfo
}

// findInfo scans a small report list for a key; candidate sets hold a
// handful of keys, so linear search beats a map and allocates nothing.
func findInfo(known []ricInfo, key relation.Key) (ricInfo, bool) {
	for i := range known {
		if known[i].Key == key {
			return known[i], true
		}
	}
	return ricInfo{}, false
}

// Proc is the RJoin processor running at one DHT node: the local query
// store, tuple store, ALTT, rate statistics and candidate table, plus
// the message handlers of Procedures 2 and 3.
//
// ctr, qpl and sl are the slots the processor's handlers count into.
// On a serial engine they alias the engine's public aggregates; on a
// parallel engine they point at the node's shard accumulator, which
// only the worker currently executing that shard touches, and which
// Engine.Sync merges at the next barrier.
type Proc struct {
	eng  *Engine
	node *chord.Node

	shard int           // logical shard (sim.NoShard on a serial engine)
	ctr   *Counters     // event-count slot
	qpl   *metrics.Load // query-processing-load slot
	sl    *metrics.Load // storage-load slot
	rng   *sim.RNG      // placement draws (nil: use the engine source)

	queries map[relation.Key][]*storedQuery    // by index key, both levels
	tuples  map[relation.Key][]*relation.Tuple // value-level tuple store
	altt    map[relation.Key][]alttEntry       // attribute-level tuple table
	aggs    map[relation.Key]*aggGroup         // aggregator state by group key

	stats   map[relation.Key]*rateStat
	ct      *candidateTable
	pending map[int64]*pendingPlacement

	// Replication state (see replicate.go): repl is the origin side
	// (targets, streams, the per-handler op batch), nil when
	// Config.ReplicationFactor < 2; replInboxes holds the mirrors this
	// node maintains as a replica, keyed by origin.
	repl        *procRepl
	replInboxes map[id.ID]*replInbox
}

func newProc(eng *Engine, node *chord.Node) *Proc {
	p := &Proc{
		eng:     eng,
		node:    node,
		queries: make(map[relation.Key][]*storedQuery),
		tuples:  make(map[relation.Key][]*relation.Tuple),
		altt:    make(map[relation.Key][]alttEntry),
		aggs:    make(map[relation.Key]*aggGroup),
		stats:   make(map[relation.Key]*rateStat),
		ct:      newCandidateTable(),
		pending: make(map[int64]*pendingPlacement),
	}
	if eng.Cfg.ReplicationFactor >= 2 {
		p.repl = &procRepl{links: reliable.NewLinks()}
		p.replInboxes = make(map[id.ID]*replInbox)
	}
	if eng.par {
		p.shard = sim.ShardOfID(uint64(node.ID()))
		p.ctr = &eng.shardCtr[p.shard]
		p.qpl = eng.shardQPL[p.shard]
		p.sl = eng.shardSL[p.shard]
		p.rng = sim.NewRNG(eng.sim.Seed(), uint64(node.ID()), 0x91ac)
	} else {
		p.shard = sim.NoShard
		p.ctr = &eng.Counters
		p.qpl = eng.QPL
		p.sl = eng.SL
	}
	return p
}

// nextReqID stamps a placement walk. Serial engines use one global
// counter; parallel engines use a per-shard counter folded with the
// shard index, which is globally unique (so handed-over pending
// placements can never collide) yet deterministic, because a shard's
// events execute sequentially no matter how many workers run.
func (p *Proc) nextReqID() int64 {
	if !p.eng.par {
		return p.eng.nextReqID()
	}
	p.eng.shardReq[p.shard]++
	return p.eng.shardReq[p.shard]*sim.Shards + int64(p.shard)
}

// HandleMessage dispatches overlay deliveries. The pooled message
// kinds are recycled once their handler returns — handlers copy out
// everything they retain. Keyed messages that arrive at a node that no
// longer owns their key (stale routing state mid-churn) are re-routed
// before any processing, and are not recycled on that path: they are
// still in flight. Handlers that mutate keyed state leave replication
// operations in the outbox; the trailing replFlush ships them as one
// batch per replica target, so a mirror is never more than one handler
// behind its primary.
func (p *Proc) HandleMessage(now sim.Time, msg overlay.Message) {
	// In unreliable-network mode the sender retains every message for
	// possible retransmission, so consumed structs must not be recycled
	// into the pools — a reused struct would corrupt a retained copy.
	recycle := !p.eng.lossy
	switch m := msg.(type) {
	case *tupleMsg:
		if p.reroute(m.Key, &m.Reroutes, m) {
			return
		}
		p.onTuple(now, m)
		if recycle {
			*m = tupleMsg{}
			tupleMsgPool.Put(m)
		}
	case *evalMsg:
		if p.reroute(m.Key, &m.Reroutes, m) {
			return
		}
		p.onEval(now, m)
		if recycle {
			*m = evalMsg{}
			evalMsgPool.Put(m)
		}
	case *answerMsg:
		p.eng.recordAnswer(now, m, p)
		if recycle {
			*m = answerMsg{}
			answerMsgPool.Put(m)
		}
	case *aggPartialMsg:
		if p.reroute(m.Key, &m.Reroutes, m) {
			return
		}
		p.onAggPartial(now, m)
		if recycle {
			*m = aggPartialMsg{}
			aggPartialMsgPool.Put(m)
		}
	case *aggRowMsg:
		p.eng.recordAggRow(now, m, p)
		if recycle {
			*m = aggRowMsg{}
			aggRowMsgPool.Put(m)
		}
	case *aggUpdateMsg:
		p.eng.recordAggUpdate(now, m, p)
	case *ricRequestMsg:
		p.onRICRequest(now, m)
	case *ricReplyMsg:
		p.onRICReply(now, m)
	case *handoverMsg:
		p.onHandover(now, m)
	case *replUpdateMsg:
		p.onReplUpdate(now, m)
	}
	p.replFlush()
}

// maxReroutes bounds ownership-correction forwarding so a message
// cannot circulate forever between nodes with mutually stale views; a
// message that exhausts the budget is processed where it is.
const maxReroutes = 4

// reroute forwards a keyed message that was delivered to a node whose
// local routing state says it is not responsible for the key — the
// arrival-side half of churn healing (the overlay's bounce path covers
// dead recipients; this covers live-but-wrong ones). In a converged
// ring it never fires. Returns true when the message was forwarded.
func (p *Proc) reroute(key relation.Key, hops *uint8, m overlay.Message) bool {
	if *hops >= maxReroutes || p.ownsKey(key) {
		return false
	}
	*hops++
	p.ctr.MessagesRerouted++
	p.eng.net.Send(p.node, key.ID(), m)
	return true
}

// nid is the node's 64-bit identity as trace events carry it.
func (p *Proc) nid() uint64 { return uint64(p.node.ID()) }

// profTrigger attributes one trigger outcome — a rewrite step or a
// chain completion — to the (pipeline query, placement key) that
// performed it. Nil-guarded like every observability hook.
func (p *Proc) profTrigger(sq *storedQuery, complete bool) {
	pf := p.eng.prof
	if pf == nil {
		return
	}
	m := profile.Rewrites
	if complete {
		m = profile.Completions
	}
	pf.Add(p.shard, sq.q.ID, sq.key.String(), m, 1)
}

// stateSizeOf estimates the retained bytes of one stored query copy:
// the struct header plus its clause and select lists. A fixed counting
// rule rather than a measurement, so the estimate is identical across
// worker counts and Go versions.
func stateSizeOf(q *query.Query) int64 {
	return 112 +
		16*int64(len(q.Relations)) +
		48*int64(len(q.Select)) +
		32*int64(len(q.Joins)) +
		40*int64(len(q.Selections)) +
		8*int64(len(q.Exclude))
}

// profStateDrop debits a removed stored query's estimated footprint
// from its placement counter and the query's state-footprint series.
func (p *Proc) profStateDrop(now sim.Time, sq *storedQuery) {
	pf := p.eng.prof
	if pf == nil {
		return
	}
	sz := stateSizeOf(sq.q)
	pf.Add(p.shard, sq.q.ID, sq.key.String(), profile.StateBytes, -sz)
	pf.State(p.shard, int64(now), sq.q.ID, -sz)
}

func (p *Proc) recordArrival(key relation.Key, now sim.Time) {
	st, ok := p.stats[key]
	if !ok {
		st = &rateStat{epoch: epochOf(now, p.eng.Cfg.RICWindow)}
		p.stats[key] = st
	}
	st.record(now, p.eng.Cfg.RICWindow)
}

// rate returns the node's current RIC estimate for a key.
func (p *Proc) rate(key relation.Key, now sim.Time) float64 {
	st, ok := p.stats[key]
	if !ok {
		return 0
	}
	return st.rate(now, p.eng.Cfg.RICWindow)
}

// ownsKey reports whether this node is Successor(Hash(key)) according
// to its local routing state. The key's ring identifier is cached, so
// this is pure interval arithmetic. While the predecessor link is down
// (unknown, or pointing at a node that crashed and has not been
// stabilized away yet) the check falls back to ground truth, so a node
// whose predecessor just died does not disown the keys it inherited.
func (p *Proc) ownsKey(key relation.Key) bool {
	pred := p.node.Predecessor()
	if pred == nil || !pred.Alive() {
		o := p.eng.ring.Owner(key.ID())
		return o == nil || o.ID() == p.node.ID()
	}
	return id.BetweenRightIncl(key.ID(), pred.ID(), p.node.ID())
}

// onTuple is Procedure 2: a node receives newTuple(t, Key, Level).
// Stored queries under the delivery key are triggered and rewritten; at
// value level the tuple is then stored, at attribute level it enters
// the ALTT for Δ ticks.
func (p *Proc) onTuple(now sim.Time, m *tupleMsg) {
	p.recordArrival(m.Key, now)
	p.qpl.Add(p.node.ID(), 1)
	p.ctr.TuplesReceived++
	if pf := p.eng.prof; pf != nil {
		// Arrival counts are a property of the key, not of any one
		// query: profiled under the empty query ID, joined to each
		// query's placements by key at Explain time.
		pf.Add(p.shard, "", m.Key.String(), profile.Arrivals, 1)
	}
	if tr := p.eng.trace; tr != nil {
		tr.Emit(p.shard, obs.Event{
			At: int64(now), Kind: obs.KindTupleArrive, Node: p.nid(),
			Trace: obs.PubTrace(uint64(m.Publisher), m.T.PubSeq),
			Key:   m.Key.String(), Arg: int64(m.Level),
		})
	}

	list := p.queries[m.Key]
	if len(list) > 0 {
		kept := list[:0]
		for _, sq := range list {
			clock := sq.q.Window.Clock(m.T)
			// Section 5 rule: a rewritten query found outside its
			// window when triggered is deleted.
			if sq.q.Depth > 0 && sq.q.Window.Enabled() && !sq.q.Window.Valid(sq.q.Start, clock) {
				p.ctr.QueriesExpired++
				p.profStateDrop(now, sq)
				p.replQueryRemove(sq)
				continue
			}
			p.tryTrigger(now, sq, m.T)
			if p.eng.Cfg.EnableMigration && p.maybeMigrate(now, sq) {
				p.profStateDrop(now, sq)
				p.replQueryRemove(sq)
				continue // relocated to a colder candidate
			}
			kept = append(kept, sq)
		}
		if len(kept) == 0 {
			delete(p.queries, m.Key)
		} else {
			p.queries[m.Key] = kept
		}
	}

	if m.Level == query.ValueLevel {
		p.storeTuple(now, m.Key, m.T)
		if tr := p.eng.trace; tr != nil {
			tr.Emit(p.shard, obs.Event{
				At: int64(now), Kind: obs.KindTupleStore, Node: p.nid(),
				Trace: obs.PubTrace(uint64(m.Publisher), m.T.PubSeq),
				Key:   m.Key.String(),
			})
		}
	} else if p.eng.delta >= 0 {
		e := alttEntry{t: m.T, expireAt: now + sim.Time(p.eng.delta)}
		p.altt[m.Key] = append(p.altt[m.Key], e)
		p.ctr.ALTTStored++
		p.replALTTAdd(m.Key, e)
		if tr := p.eng.trace; tr != nil {
			tr.Emit(p.shard, obs.Event{
				At: int64(now), Kind: obs.KindALTTStore, Node: p.nid(),
				Trace: obs.PubTrace(uint64(m.Publisher), m.T.PubSeq),
				Key:   m.Key.String(), Arg: int64(p.eng.delta),
			})
		}
	}
}

// tryTrigger applies one incoming tuple to one stored query: the
// semantic checks (publication order, window validity, DISTINCT
// projection), the rewrite itself, and dispatch of the result.
func (p *Proc) tryTrigger(now sim.Time, sq *storedQuery, t *relation.Tuple) {
	if !pubQualifies(sq.q, t) {
		return
	}
	if sq.q.Excluded(t.PubSeq) {
		return // already combined at a previous home (migration)
	}
	if !sq.allowTrigger(t) {
		p.ctr.DuplicatesSuppressed++
		return
	}
	if len(sq.q.Relations) == 1 {
		p.completeTrigger(now, sq, t)
		return
	}
	q2, ok := query.Rewrite(sq.q, t)
	if !ok {
		return
	}
	clock := sq.q.Window.Clock(t)
	if sq.q.Depth == 0 {
		// Rule 1: rewrites of an input query start their window at the
		// triggering tuple's clock.
		q2.Start = clock
	} else {
		// Rule 2: rewrites triggered by an incoming tuple inherit the
		// window start.
		q2.Start = sq.q.Start
	}
	if clock > q2.AggClock {
		q2.AggClock = clock // completion clock: max over combined tuples
	}
	if t.PubTime < q2.MinPub {
		q2.MinPub = t.PubTime // fan-out filter: min over combined tuples
	}
	if p.eng.prov {
		q2.Lineage = query.AppendLineage(sq.q.Lineage,
			query.LineageStep{Pub: t.Publisher, Seq: t.PubSeq, Node: p.nid()})
	}
	proj := sq.markTrigger(t)
	sq.noteCombine(p.eng.Cfg.EnableMigration, t)
	p.replTrigger(sq, t, proj)
	p.profTrigger(sq, q2.IsComplete())
	p.dispatch(now, q2, t.PubTime)
}

// completeTrigger is the final-rewriting-step fast path shared by both
// trigger sites: the query has one remaining relation, so substitution
// completes it and the answer row is shipped directly to the owner —
// or, for aggregate queries, folded into the aggregation pipeline —
// without materialising the child query. Window start bookkeeping is
// skipped because a completed query never consults its window again;
// only the completion clock (max window-clock over combined tuples) is
// derived, for epoch assignment. The counters match what dispatch would
// have recorded for the materialised child.
func (p *Proc) completeTrigger(now sim.Time, sq *storedQuery, t *relation.Tuple) {
	vals, ok := query.RewriteComplete(sq.q, t)
	if !ok {
		return
	}
	proj := sq.markTrigger(t)
	sq.noteCombine(p.eng.Cfg.EnableMigration, t)
	p.replTrigger(sq, t, proj)
	p.ctr.RewritesCreated++
	if sq.q.Depth+1 >= 2 {
		p.ctr.DeepRewrites++
	}
	p.profTrigger(sq, true)
	p.observeComplete(now, sq.q.ID, int64(sq.q.Depth)+1)
	var lin []query.LineageStep
	if p.eng.prov {
		lin = query.AppendLineage(sq.q.Lineage,
			query.LineageStep{Pub: t.Publisher, Seq: t.PubSeq, Node: p.nid()})
	}
	clock := sq.q.Window.Clock(t)
	if sq.q.AggClock > clock {
		clock = sq.q.AggClock
	}
	minPub := t.PubTime
	if sq.q.MinPub < minPub {
		minPub = sq.q.MinPub
	}
	if fo := p.eng.fanoutOf(sq.q.ID); fo != nil {
		p.fanoutComplete(now, fo, vals, clock, minPub, t.PubTime, lin)
		return
	}
	if p.eng.retiredPipeline(sq.q.ID) {
		return // shared pipeline torn down; nobody is listening
	}
	if sq.agg {
		p.emitCompletion(now, sq.q, vals, clock, t.PubTime, lin)
		return
	}
	p.eng.net.SendDirect(p.node, id.ID(sq.q.Owner), newAnswerMsg(sq.q.ID, id.ID(sq.q.Owner), vals, t.PubTime, lin))
}

// observeComplete records one completed rewrite chain: its depth into
// the histogram and a completion trace event. Both trigger paths —
// tuple-meets-stored-query and query-meets-stored-tuple — converge
// here with identical event content, which is what keeps the trace
// multiset schedule-independent when a tuple and a query reach the
// same node on the same tick (the paths fire in engine-dependent
// order, but exactly one fires either way).
func (p *Proc) observeComplete(now sim.Time, qid string, depth int64) {
	if om := p.eng.obsM; om != nil {
		om.RewriteDepth.Observe(depth)
	}
	if tr := p.eng.trace; tr != nil {
		tr.Emit(p.shard, obs.Event{
			At: int64(now), Kind: obs.KindComplete, Node: p.nid(),
			Trace: qid, Arg: depth,
		})
	}
}

// storeTuple stores a value-level tuple (counted as storage load) and
// optionally garbage-collects stored tuples no window can reach.
func (p *Proc) storeTuple(now sim.Time, key relation.Key, t *relation.Tuple) {
	p.tuples[key] = append(p.tuples[key], t)
	p.sl.Add(p.node.ID(), 1)
	p.ctr.TuplesStored++
	p.replTupleAdd(key, t)

	cfg := p.eng.Cfg
	if cfg.TupleGC && cfg.MaxWindowHint > 0 && len(p.tuples[key])%32 == 0 {
		seqNow, timeNow := p.eng.pubSeq, int64(now)
		kept := p.tuples[key][:0]
		for _, old := range p.tuples[key] {
			// Conservative: drop only when out of reach on both clocks.
			if seqNow-old.PubSeq > cfg.MaxWindowHint && timeNow-old.PubTime > cfg.MaxWindowHint {
				p.ctr.TuplesCollected++
				p.replTupleRemove(key, old.PubSeq)
				continue
			}
			kept = append(kept, old)
		}
		p.tuples[key] = kept
	}
}

// alttScan returns the live ALTT entries for a key, pruning expired
// ones in passing.
func (p *Proc) alttScan(key relation.Key, now sim.Time) []alttEntry {
	entries := p.altt[key]
	// Entries expire in arrival order (constant Δ): pop the prefix.
	i := 0
	for i < len(entries) && entries[i].expireAt < now {
		i++
	}
	if i > 0 {
		entries = entries[i:]
		if len(entries) == 0 {
			delete(p.altt, key)
		} else {
			p.altt[key] = entries
		}
		p.ctr.ALTTExpired += int64(i)
	}
	return entries
}

// onEval is Procedure 3 (and the input-query indexing step): the node
// stores the query, then matches it against locally stored tuples —
// the value-level store for value-level keys, the ALTT for
// attribute-level keys (the Section 4 completeness rule, which also
// covers rewritten queries placed at attribute level per Section 6).
func (p *Proc) onEval(now sim.Time, m *evalMsg) {
	for _, info := range m.RIC {
		p.ctMerge(info)
	}
	if p.eng.retiredPipeline(m.Q.ID) {
		return // torn-down shared pipeline: never re-index stragglers
	}
	if tr := p.eng.trace; tr != nil {
		tr.Emit(p.shard, obs.Event{
			At: int64(now), Kind: obs.KindEval, Node: p.nid(),
			Trace: m.Q.ID, Key: m.Key.String(), Arg: int64(m.Q.Depth),
		})
	}
	if pf := p.eng.prof; pf != nil {
		pf.Add(p.shard, m.Q.ID, m.Key.String(), profile.Evals, 1)
	}
	sq := &storedQuery{q: m.Q, key: m.Key, level: m.Level, agg: m.Q.IsAggregate()}
	if m.Q.OneTime {
		// One-time queries keep no standing state: all qualifying
		// tuples were published before submission, so scanning the
		// local stores suffices and nothing waits for the future.
		if m.Q.Depth > 0 {
			p.qpl.Add(p.node.ID(), 1)
		}
	} else {
		p.queries[m.Key] = append(p.queries[m.Key], sq)
		p.replQueryAdd(sq)
		if pf := p.eng.prof; pf != nil {
			sz := stateSizeOf(m.Q)
			pf.Add(p.shard, m.Q.ID, m.Key.String(), profile.StoredQueries, 1)
			pf.Add(p.shard, m.Q.ID, m.Key.String(), profile.StateBytes, sz)
			pf.State(p.shard, int64(now), m.Q.ID, sz)
		}
		if m.Q.Depth > 0 {
			p.qpl.Add(p.node.ID(), 1)
			p.sl.Add(p.node.ID(), 1)
			p.ctr.RewritesStored++
		} else {
			p.ctr.InputQueriesStored++
		}
	}

	if m.Level == query.ValueLevel {
		for _, t := range p.tuples[m.Key] {
			p.scanTrigger(now, sq, t)
		}
	} else {
		for _, e := range p.alttScan(m.Key, now) {
			p.scanTrigger(now, sq, e.t)
		}
	}
}

// scanTrigger applies one locally stored tuple to a just-arrived query
// (Procedure 3's loop). Window rule 3: the result's start is
// max(start(q), clock(t)).
func (p *Proc) scanTrigger(now sim.Time, sq *storedQuery, t *relation.Tuple) {
	if !pubQualifies(sq.q, t) {
		return
	}
	if sq.q.Excluded(t.PubSeq) {
		return // already combined at a previous home (migration)
	}
	clock := sq.q.Window.Clock(t)
	if sq.q.Depth > 0 && sq.q.Window.Enabled() && !sq.q.Window.Valid(sq.q.Start, clock) {
		return // stored tuple outside the query's window: skip, keep query
	}
	if !sq.allowTrigger(t) {
		p.ctr.DuplicatesSuppressed++
		return
	}
	if len(sq.q.Relations) == 1 {
		p.completeTrigger(now, sq, t)
		return
	}
	q2, ok := query.Rewrite(sq.q, t)
	if !ok {
		return
	}
	if sq.q.Depth == 0 {
		q2.Start = clock
	} else {
		q2.Start = sq.q.Start
		if clock > q2.Start {
			q2.Start = clock
		}
	}
	if clock > q2.AggClock {
		q2.AggClock = clock
	}
	if t.PubTime < q2.MinPub {
		q2.MinPub = t.PubTime
	}
	if p.eng.prov {
		q2.Lineage = query.AppendLineage(sq.q.Lineage,
			query.LineageStep{Pub: t.Publisher, Seq: t.PubSeq, Node: p.nid()})
	}
	proj := sq.markTrigger(t)
	sq.noteCombine(p.eng.Cfg.EnableMigration, t)
	p.replTrigger(sq, t, proj)
	p.profTrigger(sq, q2.IsComplete())
	p.dispatch(now, q2, t.PubTime)
}

// maybeMigrate implements the Section 10 future-work extension:
// on-line adaptation of the distributed query plan. A value-level
// rewritten query that has been triggered repeatedly at a hot key
// relocates to the coldest alternative candidate the node's candidate
// table knows about, carrying the exclusion set of tuples it already
// combined so no answer is produced twice. DISTINCT queries do not
// migrate (their projection memory cannot travel with the query without
// re-deriving it, so the distributed dedup guarantee would weaken).
// Input queries and attribute-level placements do not migrate either:
// their destinations retain only Δ of tuple history, which would
// sacrifice completeness.
func (p *Proc) maybeMigrate(now sim.Time, sq *storedQuery) bool {
	cfg := p.eng.Cfg
	if sq.q.Depth == 0 || sq.level != query.ValueLevel || sq.q.Distinct {
		return false
	}
	minTrig := cfg.MigrationMinTriggers
	if minTrig <= 0 {
		minTrig = 8
	}
	if sq.triggers < minTrig {
		return false
	}
	factor := cfg.MigrationFactor
	if factor <= 1 {
		factor = 4
	}
	localRate := p.rate(sq.key, now)
	if localRate <= 0 {
		return false
	}
	// The best alternative the node knows about locally (CT entries
	// arrive with piggy-backed RIC info); migration is a local
	// decision, exactly like initial placement.
	best, found := 0.0, false
	for _, c := range sq.q.Candidates() {
		if c.Level != query.ValueLevel || c.Key == sq.key {
			continue
		}
		if e, ok := p.ct.fresh(c.Key, now, cfg.CTValidity); ok {
			if !found || e.Rate < best {
				best, found = e.Rate, true
			}
		}
	}
	if !found || localRate < factor*(best+1) {
		return false
	}
	q2 := sq.q.Clone()
	q2.Exclude = mergeExclude(q2.Exclude, sq.combined)
	p.ctr.QueriesMigrated++
	p.place(now, q2)
	return true
}

// mergeExclude merges newly combined publication sequences into a
// sorted exclusion set.
func mergeExclude(exclude, combined []int64) []int64 {
	if len(combined) == 0 {
		return exclude
	}
	merged := append(exclude, combined...)
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	out := merged[:0]
	for i, v := range merged {
		if i == 0 || v != merged[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// dispatch routes a freshly created rewrite: completed queries become
// answers sent directly to the owner; contradictory queries are
// discarded; everything else is indexed at the node the placement
// strategy selects. Dropped rewrites are returned to the free list —
// they never escaped this function. pubAt is the publication vtime of
// the tuple that triggered the rewrite, threaded to the answer path
// for the latency measurement.
func (p *Proc) dispatch(now sim.Time, q2 *query.Query, pubAt int64) {
	p.ctr.RewritesCreated++
	if q2.Depth >= 2 {
		p.ctr.DeepRewrites++
	}
	if q2.IsComplete() {
		p.observeComplete(now, q2.ID, int64(q2.Depth))
		if fo := p.eng.fanoutOf(q2.ID); fo != nil {
			p.fanoutComplete(now, fo, q2.AnswerValues(), q2.AggClock, q2.MinPub, pubAt, q2.Lineage)
		} else if p.eng.retiredPipeline(q2.ID) {
			// shared pipeline torn down; drop the straggler
		} else if q2.IsAggregate() {
			p.emitCompletion(now, q2, q2.AnswerValues(), q2.AggClock, pubAt, q2.Lineage)
		} else {
			p.eng.net.SendDirect(p.node, id.ID(q2.Owner), newAnswerMsg(q2.ID, id.ID(q2.Owner), q2.AnswerValues(), pubAt, q2.Lineage))
		}
		query.Release(q2)
		return
	}
	if tr := p.eng.trace; tr != nil {
		tr.Emit(p.shard, obs.Event{
			At: int64(now), Kind: obs.KindRewrite, Node: p.nid(),
			Trace: q2.ID, Arg: int64(q2.Depth),
		})
	}
	if q2.Contradictory() {
		p.ctr.ContradictoryDropped++
		query.Release(q2)
		return
	}
	p.place(now, q2)
}

// place implements nextKey(): choose the index candidate for a query
// according to the engine's strategy and send the Eval message.
func (p *Proc) place(now sim.Time, q *query.Query) {
	cands := q.Candidates()
	if q.Depth > 0 && !p.eng.Cfg.AllowAttrRewrites {
		// Default rule (Section 3): rewritten queries are indexed at
		// value level, where tuple stores are unbounded. See
		// Config.AllowAttrRewrites for the Section 6 generalization.
		// Candidates returned a fresh slice, so filter it in place.
		vcands := cands[:0]
		for _, c := range cands {
			if c.Level == query.ValueLevel {
				vcands = append(vcands, c)
			}
		}
		if len(vcands) > 0 {
			cands = vcands
		}
	}
	if len(cands) == 0 {
		p.ctr.UnplaceableDropped++
		query.Release(q)
		return
	}
	switch p.eng.Cfg.Strategy {
	case StrategyRandom:
		var c query.Candidate
		if p.rng != nil {
			c = cands[p.rng.Intn(len(cands))]
		} else {
			c = cands[p.eng.sim.Rand().Intn(len(cands))]
		}
		p.sendEval(q, c, nil, false)
	case StrategyWorst:
		best := cands[0]
		bestRate := p.eng.oracleRate(best.Key, now)
		for _, c := range cands[1:] {
			if r := p.eng.oracleRate(c.Key, now); r > bestRate {
				best, bestRate = c, r
			}
		}
		p.sendEval(q, best, nil, false)
	default: // StrategyRIC
		p.placeRIC(now, q, cands)
	}
}

// placeRIC is Sections 6–7: consult the candidate table for fresh RIC
// info, poll only unknown candidates with a chained RIC request, and on
// reply index the query at the candidate with the lowest predicted
// rate, directly (one hop) because the reply carried its address.
func (p *Proc) placeRIC(now sim.Time, q *query.Query, cands []query.Candidate) {
	var known []ricInfo
	var unknown []relation.Key
	tr := p.eng.trace
	for _, c := range cands {
		if p.eng.Cfg.UseCT {
			if e, ok := p.ct.fresh(c.Key, now, p.eng.Cfg.CTValidity); ok {
				known = append(known, ricInfo{Key: c.Key, Rate: e.Rate, Addr: e.Addr, At: e.At})
				if pf := p.eng.prof; pf != nil {
					pf.Add(p.shard, q.ID, c.Key.String(), profile.CTHits, 1)
				}
				if tr != nil {
					tr.Emit(p.shard, obs.Event{
						At: int64(now), Kind: obs.KindCTHit, Node: p.nid(),
						Trace: q.ID, Key: c.Key.String(),
					})
				}
				continue
			}
			if pf := p.eng.prof; pf != nil {
				pf.Add(p.shard, q.ID, c.Key.String(), profile.CTMisses, 1)
			}
			if tr != nil {
				tr.Emit(p.shard, obs.Event{
					At: int64(now), Kind: obs.KindCTMiss, Node: p.nid(),
					Trace: q.ID, Key: c.Key.String(),
				})
			}
		}
		unknown = append(unknown, c.Key)
	}
	if len(unknown) == 0 {
		p.decide(q, cands, known)
		return
	}
	// Visit unknown candidates in clockwise ring order from here (the
	// "optimal order to contact these nodes").
	sort.Slice(unknown, func(i, j int) bool {
		return id.Dist(p.node.ID(), unknown[i].ID()) <
			id.Dist(p.node.ID(), unknown[j].ID())
	})
	reqID := p.nextReqID()
	p.pending[reqID] = &pendingPlacement{q: q, cands: cands, known: known}
	p.replPendingAdd(reqID, q)
	p.ctr.RICRequests++
	if tr != nil {
		// The walk visits the unknown candidates in ring order; the
		// event carries how many keys it must resolve. The request ID
		// itself is deliberately absent: request numbering differs
		// between the serial and parallel engines.
		tr.Emit(p.shard, obs.Event{
			At: int64(now), Kind: obs.KindRICWalk, Node: p.nid(),
			Trace: q.ID, Key: unknown[0].String(), Arg: int64(len(unknown)),
		})
	}
	req := &ricRequestMsg{Origin: p.node.ID(), ReqID: reqID, Pending: unknown}
	p.eng.net.WithTag(p.node, TagRIC, func() {
		p.eng.net.Send(p.node, unknown[0].ID(), req)
	})
}

// onRICRequest handles one step of the chained walk: report the rate
// for every pending key this node is responsible for, then forward the
// walk or return the collected reports to the origin.
func (p *Proc) onRICRequest(now sim.Time, m *ricRequestMsg) {
	// On an unreliable network the upstream sender retains its copy for
	// retransmission, so this step must not mutate the received struct:
	// operate on a fresh walk message with its own slice headers.
	if p.eng.lossy {
		fwd := &ricRequestMsg{Origin: m.Origin, ReqID: m.ReqID}
		fwd.Pending = append(fwd.Pending, m.Pending...)
		fwd.Got = append(fwd.Got, m.Got...)
		m = fwd
	}
	// The message was addressed to Hash(Pending[0]), so this node owns
	// at least that key; it may own later pending keys too.
	reported := false
	for len(m.Pending) > 0 && (!reported || p.ownsKey(m.Pending[0])) {
		key := m.Pending[0]
		m.Pending = m.Pending[1:]
		m.Got = append(m.Got, ricInfo{Key: key, Rate: p.rate(key, now), Addr: p.node.ID(), At: now})
		reported = true
	}
	p.eng.net.WithTag(p.node, TagRIC, func() {
		if len(m.Pending) == 0 {
			p.eng.net.SendDirect(p.node, m.Origin, &ricReplyMsg{ReqID: m.ReqID, Origin: m.Origin, Got: m.Got})
		} else {
			p.eng.net.Send(p.node, m.Pending[0].ID(), m)
		}
	})
}

// onRICReply completes a pending placement.
func (p *Proc) onRICReply(now sim.Time, m *ricReplyMsg) {
	pp, ok := p.pending[m.ReqID]
	if !ok {
		return
	}
	delete(p.pending, m.ReqID)
	p.replPendingRemove(m.ReqID)
	p.ctr.RICReplies++
	for _, info := range m.Got {
		p.ctMerge(info)
		pp.known = append(pp.known, info)
	}
	p.decide(pp.q, pp.cands, pp.known)
}

// decide picks the candidate with the lowest predicted rate (ties
// resolve to clause order, which is deterministic) and sends the query
// there — in one hop when the candidate's address is known.
func (p *Proc) decide(q *query.Query, cands []query.Candidate, known []ricInfo) {
	best := cands[0]
	bestInfo, haveBest := findInfo(known, best.Key)
	for _, c := range cands[1:] {
		info, ok := findInfo(known, c.Key)
		if !ok {
			continue
		}
		// Strictly lower rate wins; ties prefer value level, which
		// distributes load better (Section 3).
		better := !haveBest || info.Rate < bestInfo.Rate ||
			(info.Rate == bestInfo.Rate && best.Level == query.AttrLevel && c.Level == query.ValueLevel)
		if better {
			best, bestInfo, haveBest = c, info, true
		}
	}
	var piggy []ricInfo
	if p.eng.Cfg.PiggybackRIC {
		// Every known report concerns a candidate key (CT hits come
		// from the candidate scan, walk replies cover exactly the
		// unknown candidates), so the piggy-backed set is the known
		// set itself — no copy needed. Receivers only merge it into
		// their candidate tables, which is order-insensitive.
		piggy = known
	}
	p.sendEval(q, best, piggy, haveBest)
}

// sendEval ships the Eval message: directly when the target's address
// is known (the RIC reply contains candidate IPs), routed otherwise.
// Attribute-level placements under replication fan out to every replica
// key, since a tuple is delivered to only one of them.
func (p *Proc) sendEval(q *query.Query, c query.Candidate, piggy []ricInfo, direct bool) {
	if c.Level == query.AttrLevel && p.eng.Cfg.AttrReplicas >= 2 {
		r := p.eng.Cfg.AttrReplicas
		msgs := make([]overlay.Message, r)
		keys := make([]id.ID, r)
		for i := 0; i < r; i++ {
			rk := replicaKey(c.Key, i)
			msgs[i] = newEvalMsg(q, rk, c.Level, piggy)
			keys[i] = rk.ID()
		}
		p.eng.net.MultiSend(p.node, msgs, keys)
		return
	}
	msg := newEvalMsg(q, c.Key, c.Level, piggy)
	if direct {
		// The address may be stale (node left); fall back to routing.
		if tgt := p.eng.ring.Node(p.addrFor(c.Key, piggy)); tgt != nil && p.stillOwns(tgt.ID(), c.Key) {
			p.eng.net.SendDirect(p.node, tgt.ID(), msg)
			return
		}
	}
	p.eng.net.Send(p.node, c.Key.ID(), msg)
}

func (p *Proc) addrFor(key relation.Key, piggy []ricInfo) id.ID {
	if e, ok := p.ct.get(key); ok {
		return e.Addr
	}
	for _, info := range piggy {
		if info.Key == key {
			return info.Addr
		}
	}
	return 0
}

// stillOwns verifies a cached address still owns the key before sending
// directly.
func (p *Proc) stillOwns(addr id.ID, key relation.Key) bool {
	owner := p.eng.ring.Owner(key.ID())
	return owner != nil && owner.ID() == addr
}
