package experiments

import (
	"fmt"
	"math/rand"

	"rjoin/internal/churn"
	"rjoin/internal/core"
	"rjoin/internal/metrics"
	"rjoin/internal/overlay"
	"rjoin/internal/query"
	"rjoin/internal/refeval"
	"rjoin/internal/relation"
	"rjoin/internal/workload"
)

// sharingDupRatios are the duplicate-ratio checkpoints of the sharing
// figure: the fraction of submissions that are clause-order/projection
// variants of an earlier query rather than a fresh join graph.
var sharingDupRatios = []float64{0, 0.5, 0.9}

// sharingWorkload is the sharing figure's workload shape: 2-way joins
// over a compact value domain, so the reference evaluator certifying
// per-subscriber exactness stays cheap while the answer stream is
// thick enough to exercise every fan-out path.
func sharingWorkload() workload.Config {
	cfg := workload.PaperConfig()
	cfg.JoinArity = 2
	cfg.Values = 20
	return cfg
}

// sharingStream builds the query submission stream for one duplicate
// ratio: each entry is a fresh generator query with probability 1-dup,
// otherwise a semantically equivalent variant of an earlier one —
// shuffled FROM list, shuffled/flipped join conjuncts, and a fresh
// projection over the same relations, so the duplicate is byte-distinct
// and must be caught by canonicalization, not string matching.
func sharingStream(gen *workload.Generator, rng *rand.Rand, n int, dup float64) []*query.Query {
	var protos []*query.Query
	out := make([]*query.Query, 0, n)
	attr := func() string { return fmt.Sprintf("A%d", rng.Intn(gen.Cfg.Attributes)) }
	for i := 0; i < n; i++ {
		if len(protos) > 0 && rng.Float64() < dup {
			v := protos[rng.Intn(len(protos))].Clone()
			rng.Shuffle(len(v.Relations), func(i, j int) {
				v.Relations[i], v.Relations[j] = v.Relations[j], v.Relations[i]
			})
			rng.Shuffle(len(v.Joins), func(i, j int) { v.Joins[i], v.Joins[j] = v.Joins[j], v.Joins[i] })
			for k := range v.Joins {
				if rng.Intn(2) == 0 {
					v.Joins[k].Left, v.Joins[k].Right = v.Joins[k].Right, v.Joins[k].Left
				}
			}
			v.Select = []query.SelectItem{
				{Col: query.ColRef{Rel: v.Relations[rng.Intn(len(v.Relations))], Attr: attr()}},
				{Col: query.ColRef{Rel: v.Relations[rng.Intn(len(v.Relations))], Attr: attr()}},
			}
			out = append(out, v)
			continue
		}
		q := gen.Query()
		protos = append(protos, q.Clone())
		out = append(out, q)
	}
	return out
}

// sharingRun drives one configured network through a fixed stream:
// submit every query (remembering its insertion time for the reference
// evaluator), then publish the measured tuple stream, collecting the
// published tuples. churnMgr, when non-nil, is running throughout and
// the clock steps between publications so its cadences fire.
type sharingResult struct {
	queries  int
	classes  int
	stored   int
	rewrites int64
	messages int64
	fanout   int64
	checked  int
	exact    int
}

func runSharing(p Params, stream []*query.Query, share bool, rf int, rates workload.ChurnConfig) sharingResult {
	cfg := core.DefaultConfig()
	cfg.ReplicationFactor = rf
	netCfg := overlay.DefaultConfig()
	netCfg.Bounce = true
	r := newRunNet(p, cfg, sharingWorkload(), netCfg)
	if share {
		// The catalog only exists once the generator does, so sharing is
		// switched on after construction; the engine reads these fields
		// at submission time only.
		r.eng.Cfg.ShareExact = true
		r.eng.Cfg.ShareQueries = true
		r.eng.Cfg.Catalog = r.gen.Catalog()
	}
	var mgr *churn.Manager
	if rates.Enabled() {
		mgr = churn.New(r.eng, churn.Config{
			Rates:    rates,
			Interval: 16,
			MinNodes: p.Nodes * 3 / 4,
			Seed:     p.Seed + 7,
		})
		mgr.Start()
	}
	r.warmup(p.scaled(200))

	type subRef struct {
		qid string
		q   *query.Query
	}
	var subs []subRef
	for _, q := range stream {
		orig := q.Clone()
		orig.InsertTime = int64(r.eng.Sim().Now())
		qid, err := r.eng.SubmitQuery(r.node(), q.Clone())
		if err != nil {
			panic(err) // generator output is valid by construction
		}
		subs = append(subs, subRef{qid: qid, q: orig})
	}
	r.eng.Run()

	preMsgs := r.eng.Net().Traffic.Total()
	preRewrites := r.eng.Counters.RewritesCreated
	tuples := p.scaled(1600)
	published := make([]*relation.Tuple, 0, tuples)
	for i := 0; i < tuples; i++ {
		t := r.gen.Tuple()
		published = append(published, t)
		r.eng.PublishTuple(r.node(), t)
		if mgr != nil {
			r.eng.RunUntil(r.eng.Sim().Now() + 8)
		}
		r.eng.Run()
	}
	r.eng.Run()
	if mgr != nil {
		mgr.Stop()
		r.eng.Run()
	}

	res := sharingResult{
		queries:  len(stream),
		classes:  r.eng.SharedClasses(),
		rewrites: r.eng.Counters.RewritesCreated - preRewrites,
		messages: r.eng.Net().Traffic.Total() - preMsgs,
		fanout:   r.eng.Counters.SharedFanoutRows,
	}
	res.stored, _, _ = r.eng.StoredState()

	// Certify every subscriber against the reference evaluator: the
	// delivered bag must equal Definition 1 over the published stream
	// and the subscriber's own query — selections, projection and
	// insertion-time cutoff included.
	for _, s := range subs {
		want := make(map[string]int64)
		for _, row := range refeval.Evaluate(s.q, published) {
			want[row.Key()]++
		}
		got := make(map[string]int64)
		for _, a := range r.eng.Answers(s.qid) {
			got[refeval.Row(a.Values).Key()]++
		}
		res.checked++
		if multisetsEqual(want, got) {
			res.exact++
		}
	}
	return res
}

func multisetsEqual(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// FigSharing measures multi-query sharing: the same submission stream —
// fresh join graphs mixed with byte-distinct duplicates at a controlled
// ratio — runs with sharing on and off, and the figure reports stored
// state and rewriting work per query as the duplicate ratio sweeps 0 to
// 90%, plus the per-subscriber exactness certificate. The final row
// re-runs the 90% stream under membership churn with ReplicationFactor
// 2: sharing must stay exact when pipelines hand over, crash and get
// promoted from replica mirrors.
func FigSharing(p Params) []*metrics.Table {
	queries := p.scaled(240)

	cost := &metrics.Table{
		Title: "Fig S(a) Sharing: cost per query vs duplicate ratio",
		Headers: []string{"dup ratio", "queries", "classes",
			"stored/query (shared)", "stored/query (none)", "state reduction",
			"rewrites/query (shared)", "rewrites/query (none)", "rewrite reduction",
			"msgs/query (shared)", "msgs/query (none)"},
	}
	exact := &metrics.Table{
		Title:   "Fig S(b) Sharing: per-subscriber exactness vs reference evaluator",
		Headers: []string{"scenario", "subscribers", "exact", "fan-out rows"},
	}

	for _, dup := range sharingDupRatios {
		gen := workload.MustGenerator(sharingWorkload(), p.Seed+11)
		stream := sharingStream(gen, rand.New(rand.NewSource(p.Seed+13)), queries, dup)
		on := runSharing(p, stream, true, 0, workload.ChurnConfig{})
		off := runSharing(p, stream, false, 0, workload.ChurnConfig{})
		nq := float64(on.queries)
		ratio := func(a, b int64) string {
			if a == 0 {
				return "inf"
			}
			return fmt.Sprintf("%.2fx", float64(b)/float64(a))
		}
		cost.AddRow(
			fmt.Sprintf("%.0f%%", dup*100),
			fmt.Sprintf("%d", on.queries),
			fmt.Sprintf("%d", on.classes),
			fmt.Sprintf("%.2f", float64(on.stored)/nq),
			fmt.Sprintf("%.2f", float64(off.stored)/nq),
			ratio(int64(on.stored), int64(off.stored)),
			fmt.Sprintf("%.2f", float64(on.rewrites)/nq),
			fmt.Sprintf("%.2f", float64(off.rewrites)/nq),
			ratio(on.rewrites, off.rewrites),
			fmt.Sprintf("%.2f", float64(on.messages)/nq),
			fmt.Sprintf("%.2f", float64(off.messages)/nq),
		)
		exact.AddRow(
			fmt.Sprintf("shared dup=%.0f%%", dup*100),
			fmt.Sprintf("%d", on.checked),
			fmt.Sprintf("%d", on.exact),
			fmt.Sprintf("%d", on.fanout),
		)
	}

	// Churn + replication: the 90% duplicate stream under joins, leaves
	// and crashes with every keyed state entry mirrored on two nodes.
	gen := workload.MustGenerator(sharingWorkload(), p.Seed+11)
	stream := sharingStream(gen, rand.New(rand.NewSource(p.Seed+13)), queries, 0.9)
	ch := runSharing(p, stream, true, 2,
		workload.ChurnConfig{JoinRate: 8, LeaveRate: 8, CrashRate: 4})
	exact.AddRow("shared dup=90% churn rf=2",
		fmt.Sprintf("%d", ch.checked),
		fmt.Sprintf("%d", ch.exact),
		fmt.Sprintf("%d", ch.fanout),
	)
	return []*metrics.Table{cost, exact}
}
