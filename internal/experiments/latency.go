package experiments

import (
	"fmt"
	"sort"

	"rjoin/internal/core"
	"rjoin/internal/metrics"
	"rjoin/internal/obs"
	"rjoin/internal/overlay"
	"rjoin/internal/query"
	"rjoin/internal/workload"
)

// FigLatency is this reproduction's observability figure: the same
// continuous-query machinery the traffic figures measure, seen through
// the virtual-time metrics registry instead of the load counters. One
// instrumented run reports (a) the end-to-end answer latency
// distribution — delivery tick minus the triggering publication's tick,
// threaded through every rewrite hop — (b) summary quantiles for the
// latency, rewrite-depth and routing-path histograms, and (c)/(d) the
// windowed per-tag and per-node message rate series the sampler emits.
// The workload uses 2-way joins over a small value domain (as the
// aggregation figure does) so the answer stream is thick enough for the
// latency histogram to have a real tail at test scales.
func FigLatency(p Params) []*metrics.Table {
	tabs, _, _ := FigLatencyObs(p)
	return tabs
}

// FigLatencyObs is FigLatency returning the live observability objects
// too, so the harness can export the raw artifacts behind the tables —
// the Chrome/Perfetto trace and the full rate-series CSV.
func FigLatencyObs(p Params) ([]*metrics.Table, *obs.Tracer, *obs.Metrics) {
	om := obs.NewMetrics(0)
	tr := obs.NewTracer(1 << 22)
	cfg := core.DefaultConfig()
	cfg.Trace, cfg.Metrics = tr, om
	netCfg := overlay.DefaultConfig()
	netCfg.Trace, netCfg.Metrics = tr, om

	wcfg := workload.PaperConfig()
	wcfg.JoinArity = 2
	wcfg.Values = 20

	r := newRunNet(p, cfg, wcfg, netCfg)
	om.Start(r.eng.Sim())
	r.warmup(p.scaled(400))
	r.submitQueries(p.scaled(p.Queries), query.WindowSpec{})
	r.publish(p.scaled(1000))

	lat := om.AnswerLatency.Summary()
	hist := &metrics.Table{
		Title:   "Fig L(a) Answer latency distribution (virtual ticks)",
		Headers: []string{"latency <=", "answers", "cum %"},
	}
	var cum int64
	for i, c := range lat.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		bound := fmt.Sprintf("%d", obs.BucketBound(i))
		if i == obs.HistBuckets-1 {
			bound = "inf"
		}
		hist.AddRow(bound, fmt.Sprintf("%d", c),
			fmt.Sprintf("%.1f", 100*float64(cum)/float64(lat.Count)))
	}

	sum := &metrics.Table{
		Title:   "Fig L(b) Virtual-time histogram summaries",
		Headers: []string{"measure", "observations", "min", "p50", "p99", "max"},
	}
	for _, h := range []struct {
		name string
		s    obs.LatencySummary
	}{
		{"answer latency (ticks)", lat},
		{"rewrite depth (hops)", om.RewriteDepth.Summary()},
		{"routing path length", om.HopCount.Summary()},
	} {
		sum.AddInts(h.name, h.s.Count, h.s.Min, h.s.P50, h.s.P99, h.s.Max)
	}

	samples := om.Samples()
	return []*metrics.Table{
		hist, sum,
		tagRateTable(samples, om.Interval()),
		nodeRateTable(samples, om.Interval()),
	}, tr, om
}

// tagRateTable pivots the tag-scope rate samples into one row per
// window with one column per message tag.
func tagRateTable(samples []obs.Sample, interval int64) *metrics.Table {
	type wk struct {
		win int64
		tag string
	}
	counts := map[wk]int64{}
	tagSet := map[string]bool{}
	winSet := map[int64]bool{}
	for _, s := range samples {
		if s.Scope != "tag" {
			continue
		}
		counts[wk{s.Win, s.Name}] += s.Count
		tagSet[s.Name] = true
		winSet[s.Win] = true
	}
	var tags []string
	for tg := range tagSet {
		tags = append(tags, tg)
	}
	sort.Strings(tags)
	wins := sortedWins(winSet)

	t := &metrics.Table{
		Title:   fmt.Sprintf("Fig L(c) Message rate by tag (per %d-tick window)", interval),
		Headers: append([]string{"window"}, tags...),
	}
	for _, w := range wins {
		vals := make([]int64, len(tags))
		for i, tg := range tags {
			vals[i] = counts[wk{w, tg}]
		}
		t.AddInts(fmt.Sprintf("%d", w), vals...)
	}
	return t
}

// nodeRateTable summarizes the node-scope rate samples per window: how
// many nodes took deliveries, how skewed the window was (busiest vs
// median node), and the window's total.
func nodeRateTable(samples []obs.Sample, interval int64) *metrics.Table {
	perWin := map[int64][]int64{}
	winSet := map[int64]bool{}
	for _, s := range samples {
		if s.Scope != "node" {
			continue
		}
		perWin[s.Win] = append(perWin[s.Win], s.Count)
		winSet[s.Win] = true
	}
	t := &metrics.Table{
		Title:   fmt.Sprintf("Fig L(d) Per-node delivery rate (per %d-tick window)", interval),
		Headers: []string{"window", "active nodes", "busiest", "median", "deliveries"},
	}
	for _, w := range sortedWins(winSet) {
		cs := perWin[w]
		sort.Slice(cs, func(i, j int) bool { return cs[i] > cs[j] })
		var total int64
		for _, c := range cs {
			total += c
		}
		t.AddInts(fmt.Sprintf("%d", w),
			int64(len(cs)), cs[0], cs[len(cs)/2], total)
	}
	return t
}

func sortedWins(set map[int64]bool) []int64 {
	wins := make([]int64, 0, len(set))
	for w := range set {
		wins = append(wins, w)
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i] < wins[j] })
	return wins
}
